#ifndef AGORAEO_CACHE_CACHE_STATS_H_
#define AGORAEO_CACHE_CACHE_STATS_H_

#include <cstddef>
#include <cstdint>

namespace agoraeo::cache {

/// Counters describing one cache's lifetime activity and current
/// occupancy.  Per-shard counters are aggregated into one of these by
/// ShardedLruCache::Stats().
struct CacheStats {
  // Lifetime counters.
  uint64_t hits = 0;
  uint64_t misses = 0;       ///< includes stale and expired drops
  uint64_t puts = 0;         ///< admitted inserts/replacements only
  uint64_t rejected_puts = 0;  ///< values larger than one shard's budget
  uint64_t evictions = 0;    ///< capacity-driven LRU evictions
  uint64_t stale_drops = 0;  ///< entries dropped by epoch mismatch on Get
  uint64_t expired_drops = 0;  ///< entries dropped by TTL expiry on Get

  // Current occupancy.
  uint64_t entries = 0;
  uint64_t bytes = 0;
  uint64_t capacity_bytes = 0;

  double hit_rate() const {
    const uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }

  CacheStats& operator+=(const CacheStats& o) {
    hits += o.hits;
    misses += o.misses;
    puts += o.puts;
    rejected_puts += o.rejected_puts;
    evictions += o.evictions;
    stale_drops += o.stale_drops;
    expired_drops += o.expired_drops;
    entries += o.entries;
    bytes += o.bytes;
    capacity_bytes += o.capacity_bytes;
    return *this;
  }
};

}  // namespace agoraeo::cache

#endif  // AGORAEO_CACHE_CACHE_STATS_H_
