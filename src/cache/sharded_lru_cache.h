#ifndef AGORAEO_CACHE_SHARDED_LRU_CACHE_H_
#define AGORAEO_CACHE_SHARDED_LRU_CACHE_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/cache_stats.h"
#include "cache/epoch.h"

namespace agoraeo::cache {

/// Configuration of a ShardedLruCache.
struct ShardedLruCacheOptions {
  /// Total byte budget, split evenly across shards.  An item larger than
  /// one shard's budget is never admitted.
  size_t capacity_bytes = 64u << 20;
  /// Number of independent mutex-guarded shards; rounded up to a power
  /// of two so shard selection is a mask.  More shards = less contention.
  size_t num_shards = 16;
  /// Entries older than this are dropped on access; zero disables aging.
  std::chrono::milliseconds ttl{0};
  /// When set, entries recorded under an older epoch are dropped on
  /// access (see EpochValidator).  Not owned; must outlive the cache.
  const EpochValidator* validator = nullptr;
  /// Time source for TTL bookkeeping; tests inject a fake clock to avoid
  /// sleeping.  Null uses std::chrono::steady_clock.
  std::function<std::chrono::steady_clock::time_point()> clock;
};

/// A thread-safe, sharded, byte-accounted LRU cache.
///
/// Keys hash onto one of N shards; each shard holds its own mutex, LRU
/// list and hash map, so concurrent lookups of different keys rarely
/// contend.  Every entry carries an explicit byte size (the caller
/// measures its own values); shards evict least-recently-used entries
/// whenever their share of the byte budget overflows.  Optional TTL and
/// epoch validation both invalidate lazily: entries are checked when
/// touched, never swept.
///
/// Get returns a copy of the stored value — entries may be evicted by
/// another thread the moment the shard lock is released, so references
/// into the cache are never exposed.  Cache large values as
/// std::shared_ptr<const V> to make that copy cheap.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLruCache {
 public:
  explicit ShardedLruCache(ShardedLruCacheOptions options)
      : options_(std::move(options)) {
    size_t shards = 1;
    while (shards < options_.num_shards) shards <<= 1;
    shard_mask_ = shards - 1;
    shards_.reserve(shards);
    for (size_t i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
    per_shard_capacity_ = options_.capacity_bytes / shards;
  }

  /// Looks a key up, refreshing its LRU position.  Stale (old-epoch) and
  /// expired (TTL) entries are dropped and reported as misses.
  std::optional<Value> Get(const Key& key) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      ++shard.stats.misses;
      return std::nullopt;
    }
    if (options_.validator != nullptr &&
        it->second->epoch != options_.validator->Current()) {
      ++shard.stats.stale_drops;
      ++shard.stats.misses;
      RemoveLocked(shard, it);
      return std::nullopt;
    }
    if (options_.ttl.count() > 0 && Now() >= it->second->expiry) {
      ++shard.stats.expired_drops;
      ++shard.stats.misses;
      RemoveLocked(shard, it);
      return std::nullopt;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    ++shard.stats.hits;
    return it->second->value;
  }

  /// Inserts or replaces an entry accounted at `size_bytes`; returns
  /// whether the entry was admitted.  Values larger than one shard's
  /// byte budget are not admitted (the cache stays a cache, not an
  /// accidental copy of the whole result set); a rejected Put leaves any
  /// existing entry for the key untouched and does not count as a put.
  ///
  /// `computed_at_epoch` is the epoch the value was derived under —
  /// callers MUST snapshot validator->Current() BEFORE reading the
  /// source data, not at insertion time: a mutation that lands between
  /// the read and the Put bumps the epoch, and an entry stamped with
  /// the later epoch would serve pre-mutation data as fresh forever.
  /// With the early snapshot such an entry is simply stale on its first
  /// Get.  Ignored when no validator is configured; nullopt stamps the
  /// current epoch (only correct when no mutation can race this Put).
  bool Put(const Key& key, Value value, size_t size_bytes,
           std::optional<uint64_t> computed_at_epoch = std::nullopt) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (size_bytes > per_shard_capacity_) {
      // Counted so a misconfigured cache (budget below typical value
      // size) is distinguishable from one that sees no repeat traffic.
      ++shard.stats.rejected_puts;
      return false;
    }
    ++shard.stats.puts;
    auto it = shard.map.find(key);
    if (it != shard.map.end()) RemoveLocked(shard, it);
    Entry entry;
    entry.key = key;
    entry.value = std::move(value);
    entry.bytes = size_bytes;
    if (options_.validator != nullptr) {
      entry.epoch = computed_at_epoch.has_value()
                        ? *computed_at_epoch
                        : options_.validator->Current();
    }
    if (options_.ttl.count() > 0) entry.expiry = Now() + options_.ttl;
    shard.lru.push_front(std::move(entry));
    shard.map.emplace(key, shard.lru.begin());
    shard.bytes += size_bytes;
    while (shard.bytes > per_shard_capacity_) {
      auto victim = shard.map.find(shard.lru.back().key);
      RemoveLocked(shard, victim);
      ++shard.stats.evictions;
    }
    return true;
  }

  /// Removes one key; returns whether it was present.
  bool Erase(const Key& key) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) return false;
    RemoveLocked(shard, it);
    return true;
  }

  /// Drops every entry (lifetime counters are kept).
  void Clear() {
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->lru.clear();
      shard->map.clear();
      shard->bytes = 0;
    }
  }

  /// Current entry count across shards.
  size_t size() const {
    size_t n = 0;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      n += shard->map.size();
    }
    return n;
  }

  /// Aggregated counters and occupancy.
  CacheStats Stats() const {
    CacheStats out;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      out += shard->stats;
      out.entries += shard->map.size();
      out.bytes += shard->bytes;
    }
    out.capacity_bytes = options_.capacity_bytes;
    return out;
  }

  size_t num_shards() const { return shards_.size(); }

 private:
  struct Entry {
    Key key;
    Value value;
    size_t bytes = 0;
    uint64_t epoch = 0;
    std::chrono::steady_clock::time_point expiry{};
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<Key, typename std::list<Entry>::iterator, Hash> map;
    size_t bytes = 0;
    CacheStats stats;  ///< counters only; occupancy is derived
  };

  Shard& ShardFor(const Key& key) {
    // Mix the hash so std::hash's identity-like output for integers
    // still spreads across shards.
    uint64_t h = static_cast<uint64_t>(Hash{}(key));
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return *shards_[h & shard_mask_];
  }

  std::chrono::steady_clock::time_point Now() const {
    return options_.clock ? options_.clock()
                          : std::chrono::steady_clock::now();
  }

  void RemoveLocked(Shard& shard,
                    typename decltype(Shard::map)::iterator it) {
    shard.bytes -= it->second->bytes;
    shard.lru.erase(it->second);
    shard.map.erase(it);
  }

  ShardedLruCacheOptions options_;
  size_t shard_mask_ = 0;
  size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;  ///< Shard holds a mutex
};

}  // namespace agoraeo::cache

#endif  // AGORAEO_CACHE_SHARDED_LRU_CACHE_H_
