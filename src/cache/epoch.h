#ifndef AGORAEO_CACHE_EPOCH_H_
#define AGORAEO_CACHE_EPOCH_H_

#include <atomic>
#include <cstdint>

namespace agoraeo::cache {

/// A monotonically increasing generation counter that lazily invalidates
/// cache entries.  Every entry records the epoch current at insertion;
/// a Get whose entry epoch no longer matches Current() treats the entry
/// as a miss and drops it.  Bump() therefore invalidates the entire
/// cache in O(1) — no sweep, no lock, stale entries are reclaimed as
/// they are touched (or as LRU pressure evicts them).
///
/// One validator can back several caches: EarthQube points its response
/// and allowlist caches at the same validator so one archive ingest
/// invalidates both.
class EpochValidator {
 public:
  uint64_t Current() const { return epoch_.load(std::memory_order_acquire); }

  /// Invalidates every entry inserted under earlier epochs.
  void Bump() { epoch_.fetch_add(1, std::memory_order_acq_rel); }

 private:
  std::atomic<uint64_t> epoch_{0};
};

}  // namespace agoraeo::cache

#endif  // AGORAEO_CACHE_EPOCH_H_
