#ifndef AGORAEO_COMMON_LOGGING_H_
#define AGORAEO_COMMON_LOGGING_H_

#include <ostream>
#include <sstream>
#include <string>

namespace agoraeo {

/// Severity levels for the library logger, in increasing order.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.  Defaults to
/// kInfo.  Thread-safe (the level is an atomic).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it to stderr on destruction.
/// Used via the AGORAEO_LOG macro; not part of the public API.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Discards a streamed expression; lets the macro below be a single
/// expression usable in if/else without braces.
class LogMessageVoidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace internal

/// Usage: AGORAEO_LOG(kInfo) << "indexed " << n << " patches";
#define AGORAEO_LOG(severity)                                          \
  (::agoraeo::LogLevel::severity < ::agoraeo::GetLogLevel())           \
      ? (void)0                                                        \
      : ::agoraeo::internal::LogMessageVoidify() &                     \
            ::agoraeo::internal::LogMessage(                           \
                ::agoraeo::LogLevel::severity, __FILE__, __LINE__)     \
                .stream()

}  // namespace agoraeo

#endif  // AGORAEO_COMMON_LOGGING_H_
