#ifndef AGORAEO_COMMON_STRING_UTIL_H_
#define AGORAEO_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace agoraeo {

/// Splits `input` on `delim`; empty pieces are kept ("a,,b" -> {a,"",b}).
std::vector<std::string> StrSplit(std::string_view input, char delim);

/// Joins `parts` with `sep` between consecutive elements.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string StrTrim(std::string_view input);

/// ASCII lower-casing (locale independent).
std::string StrToLower(std::string_view input);

/// True when `text` starts with / ends with / contains `piece`.
bool StrStartsWith(std::string_view text, std::string_view prefix);
bool StrEndsWith(std::string_view text, std::string_view suffix);
bool StrContains(std::string_view text, std::string_view piece);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Pads `s` on the left with `fill` to width `width` (no-op when already
/// that wide).
std::string PadLeft(std::string_view s, size_t width, char fill = ' ');

/// Formats a count with thousands separators ("1234567" -> "1,234,567").
std::string WithThousandsSeparators(int64_t value);

}  // namespace agoraeo

#endif  // AGORAEO_COMMON_STRING_UTIL_H_
