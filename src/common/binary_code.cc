#include "common/binary_code.h"

#include <cassert>

#include "common/simd/hamming_kernels.h"

namespace agoraeo {

BinaryCode BinaryCode::FromSigns(const std::vector<float>& values) {
  BinaryCode code(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i] > 0.0f) code.SetBit(i, true);
  }
  return code;
}

BinaryCode BinaryCode::FromBits(const std::vector<int>& bits) {
  BinaryCode code(bits.size());
  for (size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) code.SetBit(i, true);
  }
  return code;
}

BinaryCode BinaryCode::FromBitString(const std::string& text) {
  BinaryCode code(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '1') code.SetBit(i, true);
  }
  return code;
}

BinaryCode BinaryCode::FromWords(size_t num_bits, std::vector<uint64_t> words) {
  BinaryCode code(num_bits);
  words.resize((num_bits + 63) / 64, 0);
  // Mask stray bits above num_bits so equality against a bit-built code
  // holds even if the input words carried garbage there.
  if (num_bits % 64 != 0 && !words.empty()) {
    words.back() &= (1ULL << (num_bits % 64)) - 1;
  }
  code.words_ = std::move(words);
  return code;
}

size_t BinaryCode::PopCount() const {
  size_t total = 0;
  for (uint64_t w : words_) total += static_cast<size_t>(PopcountWord(w));
  return total;
}

size_t BinaryCode::HammingDistance(const BinaryCode& other) const {
  assert(num_bits_ == other.num_bits_);
  // Routed through the runtime-dispatched kernel layer's pair distance,
  // so candidate verification in the bucketed indexes shares the same
  // (hardware-popcount or vector) code path as the flat scans.
  return static_cast<size_t>(
      simd::PairDistance(words_.data(), other.words_.data(), words_.size()));
}

BinaryCode BinaryCode::Substring(size_t begin, size_t len) const {
  assert(begin + len <= num_bits_);
  BinaryCode out(len);
  for (size_t i = 0; i < len; ++i) {
    if (GetBit(begin + i)) out.SetBit(i, true);
  }
  return out;
}

std::string BinaryCode::ToBitString() const {
  std::string out(num_bits_, '0');
  for (size_t i = 0; i < num_bits_; ++i) {
    if (GetBit(i)) out[i] = '1';
  }
  return out;
}

std::string BinaryCode::ToHexString() const {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(words_.size() * 16);
  for (uint64_t w : words_) {
    for (int nibble = 0; nibble < 16; ++nibble) {
      out.push_back(kHex[(w >> (nibble * 4)) & 0xf]);
    }
  }
  return out;
}

size_t BinaryCodeHash::operator()(const BinaryCode& code) const {
  uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  for (uint64_t w : code.words()) {
    for (int b = 0; b < 8; ++b) {
      h ^= (w >> (b * 8)) & 0xff;
      h *= 1099511628211ULL;  // FNV prime
    }
  }
  h ^= code.size();
  h *= 1099511628211ULL;
  return static_cast<size_t>(h);
}

}  // namespace agoraeo
