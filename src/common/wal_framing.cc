#include "common/wal_framing.h"

#include <cerrno>
#include <cstring>
#include <filesystem>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "common/crc32.h"

namespace agoraeo {

WalFrameWriter::~WalFrameWriter() { Close(); }

Status WalFrameWriter::Open(const std::string& path, WalSyncMode sync) {
  Close();
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::IOError("cannot open WAL " + path + ": " +
                           std::strerror(errno));
  }
  path_ = path;
  sync_ = sync;
  return Status::OK();
}

Status WalFrameWriter::Append(const std::vector<uint8_t>& payload) {
  if (file_ == nullptr) return Status::FailedPrecondition("WAL not open");
  const uint32_t length = static_cast<uint32_t>(payload.size());
  const uint32_t crc = Crc32(payload);
  if (std::fwrite(&length, sizeof(length), 1, file_) != 1 ||
      std::fwrite(&crc, sizeof(crc), 1, file_) != 1 ||
      (length > 0 &&
       std::fwrite(payload.data(), 1, payload.size(), file_) !=
           payload.size())) {
    return Status::IOError("WAL append failed: " +
                           std::string(std::strerror(errno)));
  }
  {
    obs::ScopedTimer sync_timer(sync_ == WalSyncMode::kNone ? nullptr
                                                            : sync_histogram_);
    switch (sync_) {
      case WalSyncMode::kNone:
        break;
      case WalSyncMode::kFlush:
        if (std::fflush(file_) != 0) {
          return Status::IOError("WAL flush failed");
        }
        break;
      case WalSyncMode::kFsync:
        if (std::fflush(file_) != 0) {
          return Status::IOError("WAL flush failed");
        }
#ifndef _WIN32
        if (::fsync(fileno(file_)) != 0) {
          return Status::IOError("WAL fsync failed: " +
                                 std::string(std::strerror(errno)));
        }
#endif
        break;
    }
  }
  ++appended_;
  bytes_appended_ += sizeof(length) + sizeof(crc) + payload.size();
  return Status::OK();
}

Status WalFrameWriter::Reset() {
  if (file_ == nullptr) return Status::FailedPrecondition("WAL not open");
  const std::string path = path_;
  const WalSyncMode sync = sync_;
  Close();
  std::FILE* truncated = std::fopen(path.c_str(), "wb");
  if (truncated == nullptr) {
    return Status::IOError("cannot truncate WAL " + path);
  }
  std::fclose(truncated);
  return Open(path, sync);
}

void WalFrameWriter::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

StatusOr<WalFrameReplayResult> ReplayWalFrames(
    const std::string& path,
    const std::function<Status(const std::vector<uint8_t>&)>& apply) {
  WalFrameReplayResult result;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return result;  // missing log == empty log

  while (true) {
    uint32_t length = 0, crc = 0;
    const size_t got_len = std::fread(&length, sizeof(length), 1, f);
    if (got_len != 1) break;  // clean EOF (or torn length word)
    if (std::fread(&crc, sizeof(crc), 1, f) != 1) {
      result.tail_discarded = true;
      break;
    }
    // Guard against a corrupted length word asking for gigabytes.
    if (length > (1u << 30)) {
      result.tail_discarded = true;
      break;
    }
    std::vector<uint8_t> payload(length);
    if (length > 0 && std::fread(payload.data(), 1, length, f) != length) {
      result.tail_discarded = true;  // torn payload
      break;
    }
    if (Crc32(payload) != crc) {
      result.tail_discarded = true;  // bit rot or torn write
      break;
    }
    const Status applied = apply(payload);
    if (!applied.ok()) {
      if (applied.IsCorruption()) {
        // The frame checksummed but its payload does not decode — the
        // same trust boundary as a torn frame: keep what came before.
        result.tail_discarded = true;
        break;
      }
      std::fclose(f);
      return applied;
    }
    ++result.frames_applied;
    result.valid_bytes +=
        sizeof(length) + sizeof(crc) + static_cast<uint64_t>(length);
  }
  std::fclose(f);
  return result;
}

Status TruncateFile(const std::string& path, uint64_t size) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return Status::OK();
  std::filesystem::resize_file(path, size, ec);
  if (ec) {
    return Status::IOError("cannot truncate " + path + ": " + ec.message());
  }
  return Status::OK();
}

}  // namespace agoraeo
