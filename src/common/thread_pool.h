#ifndef AGORAEO_COMMON_THREAD_POOL_H_
#define AGORAEO_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace agoraeo {

/// Fixed-size worker pool used to parallelise archive synthesis, feature
/// extraction and training minibatch preparation.
///
/// Tasks are void() closures; Wait() blocks until the queue drains and all
/// in-flight tasks finish.  The destructor waits for outstanding work.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (>=1; 0 is clamped to 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.  Must not be called after destruction begins.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has completed.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Pins worker i to CPU i % hardware_concurrency — the opt-in
  /// affinity mode behind CbirConfig::pin_shard_threads, for measured
  /// shard-scaling runs where scheduler migration blurs each scan
  /// shard's cache residency.  Returns the number of workers actually
  /// pinned (0 on platforms without pthread affinity).
  size_t PinThreads();

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Work is divided into contiguous chunks, one batch per worker.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace agoraeo

#endif  // AGORAEO_COMMON_THREAD_POOL_H_
