#ifndef AGORAEO_COMMON_TIME_UTIL_H_
#define AGORAEO_COMMON_TIME_UTIL_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace agoraeo {

/// Meteorological season of an acquisition; BigEarthNet metadata tags
/// patches with the season of their acquisition date.
enum class Season { kWinter = 0, kSpring = 1, kSummer = 2, kAutumn = 3 };

const char* SeasonToString(Season s);
StatusOr<Season> SeasonFromString(const std::string& name);

/// A calendar date (proleptic Gregorian), used for acquisition dates.
/// Stored as year/month/day; convertible to/from a day ordinal so ranges
/// can be compared and sampled in O(1).
class CivilDate {
 public:
  CivilDate() : year_(1970), month_(1), day_(1) {}
  CivilDate(int year, int month, int day)
      : year_(year), month_(month), day_(day) {}

  int year() const { return year_; }
  int month() const { return month_; }
  int day() const { return day_; }

  /// Days since 1970-01-01 (can be negative).
  int64_t ToOrdinal() const;

  /// Inverse of ToOrdinal.
  static CivilDate FromOrdinal(int64_t days);

  /// Parses "YYYY-MM-DD"; validates calendar correctness (rejects Feb 30).
  static StatusOr<CivilDate> Parse(const std::string& text);

  /// True when the date is a real calendar date.
  bool IsValid() const;

  /// "YYYY-MM-DD".
  std::string ToString() const;

  /// Meteorological season (Dec-Feb winter, Mar-May spring, ...).
  Season GetSeason() const;

  bool operator==(const CivilDate& o) const {
    return year_ == o.year_ && month_ == o.month_ && day_ == o.day_;
  }
  bool operator!=(const CivilDate& o) const { return !(*this == o); }
  bool operator<(const CivilDate& o) const {
    return ToOrdinal() < o.ToOrdinal();
  }
  bool operator<=(const CivilDate& o) const {
    return ToOrdinal() <= o.ToOrdinal();
  }
  bool operator>(const CivilDate& o) const { return o < *this; }
  bool operator>=(const CivilDate& o) const { return o <= *this; }

  static bool IsLeapYear(int year);
  static int DaysInMonth(int year, int month);

 private:
  int year_;
  int month_;
  int day_;
};

/// Inclusive date interval [begin, end]; `Contains` is false for invalid
/// (begin > end) ranges.
struct DateRange {
  CivilDate begin;
  CivilDate end;

  bool Contains(const CivilDate& d) const {
    return begin <= d && d <= end;
  }
  /// Number of days in the range (0 when begin > end).
  int64_t NumDays() const {
    int64_t n = end.ToOrdinal() - begin.ToOrdinal() + 1;
    return n > 0 ? n : 0;
  }
};

}  // namespace agoraeo

#endif  // AGORAEO_COMMON_TIME_UTIL_H_
