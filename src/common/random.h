#ifndef AGORAEO_COMMON_RANDOM_H_
#define AGORAEO_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace agoraeo {

/// Deterministic PCG32 pseudo-random generator (O'Neill, PCG-XSH-RR).
///
/// Every stochastic component in the library (archive synthesis, weight
/// initialisation, triplet sampling, benchmark workloads) draws from an
/// explicitly seeded Rng so runs are reproducible bit-for-bit.
class Rng {
 public:
  /// Seeds the generator.  Two Rngs with the same (seed, stream) produce
  /// identical sequences.
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL, uint64_t stream = 1);

  /// Uniform 32-bit value.
  uint32_t NextUint32();

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound) using Lemire rejection; bound must be
  /// nonzero.
  uint32_t UniformInt(uint32_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Standard normal via Box-Muller (cached second value).
  double Normal();

  /// Normal with given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Bernoulli trial with probability p of true.
  bool Bernoulli(double p);

  /// Samples an index in [0, weights.size()) proportionally to weights;
  /// weights must be non-negative with positive sum.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = UniformInt(static_cast<uint32_t>(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t state_;
  uint64_t inc_;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace agoraeo

#endif  // AGORAEO_COMMON_RANDOM_H_
