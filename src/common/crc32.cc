#include "common/crc32.h"

namespace agoraeo {

namespace {

/// Table generated at first use from the reflected polynomial.
const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32Update(uint32_t crc, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  const uint32_t* table = Crc32Table();
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32(const void* data, size_t n) { return Crc32Update(0, data, n); }

}  // namespace agoraeo
