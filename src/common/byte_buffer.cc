#include "common/byte_buffer.h"

#include <cstdio>

namespace agoraeo {

StatusOr<uint8_t> ByteReader::GetU8() {
  AGORAEO_RETURN_IF_ERROR(Need(1));
  return data_[pos_++];
}

StatusOr<uint32_t> ByteReader::GetU32() {
  AGORAEO_RETURN_IF_ERROR(Need(4));
  uint32_t v;
  std::memcpy(&v, data_ + pos_, 4);
  pos_ += 4;
  return v;
}

StatusOr<uint64_t> ByteReader::GetU64() {
  AGORAEO_RETURN_IF_ERROR(Need(8));
  uint64_t v;
  std::memcpy(&v, data_ + pos_, 8);
  pos_ += 8;
  return v;
}

StatusOr<int64_t> ByteReader::GetI64() {
  AGORAEO_RETURN_IF_ERROR(Need(8));
  int64_t v;
  std::memcpy(&v, data_ + pos_, 8);
  pos_ += 8;
  return v;
}

StatusOr<float> ByteReader::GetF32() {
  AGORAEO_RETURN_IF_ERROR(Need(4));
  float v;
  std::memcpy(&v, data_ + pos_, 4);
  pos_ += 4;
  return v;
}

StatusOr<double> ByteReader::GetF64() {
  AGORAEO_RETURN_IF_ERROR(Need(8));
  double v;
  std::memcpy(&v, data_ + pos_, 8);
  pos_ += 8;
  return v;
}

StatusOr<std::string> ByteReader::GetString() {
  AGORAEO_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  AGORAEO_RETURN_IF_ERROR(Need(len));
  std::string out(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return out;
}

StatusOr<std::vector<float>> ByteReader::GetF32Vector() {
  AGORAEO_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  AGORAEO_RETURN_IF_ERROR(Need(static_cast<size_t>(len) * sizeof(float)));
  std::vector<float> out(len);
  std::memcpy(out.data(), data_ + pos_, static_cast<size_t>(len) * sizeof(float));
  pos_ += static_cast<size_t>(len) * sizeof(float);
  return out;
}

Status WriteFileBytes(const std::string& path,
                      const std::vector<uint8_t>& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open for write: " + path);
  }
  size_t written = data.empty() ? 0 : std::fwrite(data.data(), 1, data.size(), f);
  int close_rc = std::fclose(f);
  if (written != data.size() || close_rc != 0) {
    return Status::IOError("short write: " + path);
  }
  return Status::OK();
}

StatusOr<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open for read: " + path);
  }
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    return Status::IOError("cannot stat: " + path);
  }
  std::vector<uint8_t> data(static_cast<size_t>(size));
  size_t got = data.empty() ? 0 : std::fread(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (got != data.size()) {
    return Status::IOError("short read: " + path);
  }
  return data;
}

}  // namespace agoraeo
