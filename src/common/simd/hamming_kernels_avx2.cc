/// AVX2 Hamming kernel: XOR + vpshufb nibble-LUT byte popcount +
/// vpsadbw per-word sums (the Mula/Harley-Seal positional-popcount
/// family's bulk building block).  Compiled with per-function target
/// attributes so the TU builds under the portable baseline flags and
/// the dispatch table decides at runtime whether the CPU may enter.
#include "common/simd/kernel_impl.h"

#if defined(__x86_64__) && defined(__GNUC__) && !defined(AGORAEO_DISABLE_SIMD)

#include <immintrin.h>

#include <bit>

namespace agoraeo::simd::internal {
namespace {

#define AGORAEO_AVX2 \
  __attribute__((target("avx2,popcnt"), always_inline)) inline

/// Byte-wise popcount of a 256-bit vector via two 16-entry nibble LUTs.
AGORAEO_AVX2 __m256i PopcountBytes(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                         _mm256_shuffle_epi8(lut, hi));
}

/// Per-64-bit-word popcounts of (v XOR pattern), one u64 per lane.
AGORAEO_AVX2 __m256i WordCounts(__m256i v, __m256i pattern) {
  return _mm256_sad_epu8(PopcountBytes(_mm256_xor_si256(v, pattern)),
                         _mm256_setzero_si256());
}

/// stride 1: each ymm holds four whole rows.
__attribute__((target("avx2,popcnt"))) void BatchStride1(const uint64_t* rows,
                                                  size_t n,
                                                  const uint64_t* query,
                                                  uint32_t* dist) {
  const __m256i pattern = _mm256_set1_epi64x(static_cast<int64_t>(query[0]));
  // Packs the four u64 lane counts into four u32s in the low half.
  const __m256i pack = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i counts = WordCounts(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows + i)),
        pattern);
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(dist + i),
        _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(counts, pack)));
  }
  for (; i < n; ++i) {
    dist[i] = static_cast<uint32_t>(std::popcount(rows[i] ^ query[0]));
  }
}

/// stride 2 (128-bit codes): each ymm holds two rows.
__attribute__((target("avx2,popcnt"))) void BatchStride2(const uint64_t* rows,
                                                  size_t n,
                                                  const uint64_t* query,
                                                  uint32_t* dist) {
  const __m256i pattern = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(query)));
  const __m256i pack = _mm256_setr_epi32(0, 4, 0, 0, 0, 0, 0, 0);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m256i counts = WordCounts(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows + i * 2)),
        pattern);
    // Lane sums per row: lane0+lane1 and lane2+lane3.
    const __m256i sums =
        _mm256_add_epi64(counts, _mm256_bsrli_epi128(counts, 8));
    _mm_storel_epi64(
        reinterpret_cast<__m128i*>(dist + i),
        _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(sums, pack)));
  }
  if (i < n) {
    const uint64_t* row = rows + i * 2;
    dist[i] = static_cast<uint32_t>(std::popcount(row[0] ^ query[0]) +
                                    std::popcount(row[1] ^ query[1]));
  }
}

/// stride 4 and every multiple of 4 above it: whole ymms per row.
__attribute__((target("avx2,popcnt"))) void BatchStride4N(const uint64_t* rows,
                                                   size_t n, size_t stride,
                                                   const uint64_t* query,
                                                   uint32_t* dist) {
  const size_t vecs = stride / 4;
  const uint64_t* row = rows;
  for (size_t i = 0; i < n; ++i, row += stride) {
    __m256i acc = _mm256_setzero_si256();
    for (size_t v = 0; v < vecs; ++v) {
      acc = _mm256_add_epi64(
          acc,
          WordCounts(_mm256_loadu_si256(
                         reinterpret_cast<const __m256i*>(row + v * 4)),
                     _mm256_loadu_si256(
                         reinterpret_cast<const __m256i*>(query + v * 4))));
    }
    const __m256i pair = _mm256_add_epi64(acc, _mm256_bsrli_epi128(acc, 8));
    const __m128i total = _mm_add_epi64(_mm256_castsi256_si128(pair),
                                        _mm256_extracti128_si256(pair, 1));
    dist[i] = static_cast<uint32_t>(_mm_cvtsi128_si64(total));
  }
}

void Batch(const uint64_t* rows, size_t n, size_t stride,
           const uint64_t* query, uint32_t* dist) {
  switch (stride) {
    case 1:
      BatchStride1(rows, n, query, dist);
      return;
    case 2:
      BatchStride2(rows, n, query, dist);
      return;
    default:
      // PaddedStride only produces 1, 2, 4 or multiples of 8.
      BatchStride4N(rows, n, stride, query, dist);
      return;
  }
}

/// Pair distances are dominated by tiny word counts (2–8) where the
/// LUT's setup cost loses to back-to-back hardware popcnt; stay scalar.
__attribute__((target("popcnt"))) uint64_t Pair(const uint64_t* a, const uint64_t* b, size_t n_words) {
  uint64_t total = 0;
  for (size_t w = 0; w < n_words; ++w) {
    total += static_cast<uint64_t>(std::popcount(a[w] ^ b[w]));
  }
  return total;
}

bool Supported() { return __builtin_cpu_supports("avx2") != 0 &&
         __builtin_cpu_supports("popcnt") != 0; }

constexpr HammingKernel kAvx2{"avx2", Supported, Batch, Pair};

}  // namespace

const HammingKernel* Avx2Kernel() { return &kAvx2; }

}  // namespace agoraeo::simd::internal

#else  // non-x86 or SIMD disabled

namespace agoraeo::simd::internal {
const HammingKernel* Avx2Kernel() { return nullptr; }
}  // namespace agoraeo::simd::internal

#endif
