#ifndef AGORAEO_COMMON_SIMD_KERNEL_IMPL_H_
#define AGORAEO_COMMON_SIMD_KERNEL_IMPL_H_

/// Internal wiring between the dispatch table (hamming_kernels.cc) and
/// the per-ISA translation units.  Each accessor returns the kernel
/// descriptor when its TU was compiled for this target, nullptr
/// otherwise — so the registry is assembled from whatever the build
/// produced, and -DAGORAEO_DISABLE_SIMD=ON strips every vector TU
/// without touching the dispatch logic.

#include "common/simd/hamming_kernels.h"

namespace agoraeo::simd::internal {

const HammingKernel* ScalarKernel();  ///< always non-null
const HammingKernel* PopcntKernel();  ///< x86-64 builds only
const HammingKernel* Avx2Kernel();    ///< x86-64 builds only
const HammingKernel* Avx512Kernel();  ///< x86-64 builds only
const HammingKernel* NeonKernel();    ///< AArch64 builds only

}  // namespace agoraeo::simd::internal

#endif  // AGORAEO_COMMON_SIMD_KERNEL_IMPL_H_
