/// Hardware-popcount scalar kernel (x86 POPCNT): the same word loop as
/// the portable scalar kernel, compiled with target("popcnt") so
/// std::popcount lowers to the popcnt instruction instead of libgcc's
/// table walk.  This is the honest scalar rung of the dispatch ladder
/// on x86 — CPUs too old for AVX2 but new enough for SSE4.2 land here
/// instead of paying the software-popcount fallback.
#include "common/simd/kernel_impl.h"

#if defined(__x86_64__) && defined(__GNUC__) && !defined(AGORAEO_DISABLE_SIMD)

#include <bit>

namespace agoraeo::simd::internal {
namespace {

__attribute__((target("popcnt"))) void Batch(const uint64_t* rows, size_t n,
                                             size_t stride,
                                             const uint64_t* query,
                                             uint32_t* dist) {
  const uint64_t* row = rows;
  for (size_t i = 0; i < n; ++i, row += stride) {
    uint32_t d = 0;
    for (size_t w = 0; w < stride; ++w) {
      d += static_cast<uint32_t>(std::popcount(row[w] ^ query[w]));
    }
    dist[i] = d;
  }
}

__attribute__((target("popcnt"))) uint64_t Pair(const uint64_t* a,
                                                const uint64_t* b,
                                                size_t n_words) {
  uint64_t total = 0;
  for (size_t w = 0; w < n_words; ++w) {
    total += static_cast<uint64_t>(std::popcount(a[w] ^ b[w]));
  }
  return total;
}

bool Supported() { return __builtin_cpu_supports("popcnt") != 0; }

constexpr HammingKernel kPopcnt{"popcnt", Supported, Batch, Pair};

}  // namespace

const HammingKernel* PopcntKernel() { return &kPopcnt; }

}  // namespace agoraeo::simd::internal

#else  // non-x86 or SIMD disabled

namespace agoraeo::simd::internal {
const HammingKernel* PopcntKernel() { return nullptr; }
}  // namespace agoraeo::simd::internal

#endif
