#include "common/simd/hamming_kernels.h"

#include <bit>
#include <cstdlib>
#include <mutex>

#include "common/logging.h"
#include "common/simd/kernel_impl.h"

namespace agoraeo::simd {

namespace internal {
namespace {

uint64_t ScalarPair(const uint64_t* a, const uint64_t* b, size_t n_words) {
  uint64_t total = 0;
  for (size_t w = 0; w < n_words; ++w) {
    total += static_cast<uint64_t>(std::popcount(a[w] ^ b[w]));
  }
  return total;
}

void ScalarBatch(const uint64_t* rows, size_t n, size_t stride,
                 const uint64_t* query, uint32_t* dist) {
  const uint64_t* row = rows;
  for (size_t i = 0; i < n; ++i, row += stride) {
    uint32_t d = 0;
    for (size_t w = 0; w < stride; ++w) {
      d += static_cast<uint32_t>(std::popcount(row[w] ^ query[w]));
    }
    dist[i] = d;
  }
}

constexpr HammingKernel kScalar{"scalar", [] { return true; }, ScalarBatch,
                                ScalarPair};

}  // namespace

const HammingKernel* ScalarKernel() { return &kScalar; }

}  // namespace internal

namespace {

/// Registry + selection state.  The registry itself is immutable after
/// construction; only the active pointer and the forced flag change,
/// both behind atomics so scans on other threads always read a
/// consistent (if momentarily stale) kernel.
struct Dispatch {
  std::vector<const HammingKernel*> compiled;  ///< strongest first
  std::vector<std::atomic<uint64_t>> counts;   ///< per-kernel scan passes
  std::atomic<const HammingKernel*> active{nullptr};
  std::atomic<bool> forced{false};

  Dispatch() {
    auto add = [this](const HammingKernel* k) {
      if (k != nullptr) compiled.push_back(k);
    };
    add(internal::Avx512Kernel());
    add(internal::Avx2Kernel());
    add(internal::NeonKernel());
    add(internal::PopcntKernel());
    add(internal::ScalarKernel());
    counts = std::vector<std::atomic<uint64_t>>(compiled.size());
    Select();
  }

  const HammingKernel* BestSupported() const {
    for (const HammingKernel* k : compiled) {
      if (k->supported()) return k;
    }
    return internal::ScalarKernel();  // unreachable: scalar supports all
  }

  const HammingKernel* Find(const std::string& name) const {
    for (const HammingKernel* k : compiled) {
      if (name == k->name) return k;
    }
    return nullptr;
  }

  /// Startup selection: AGORAEO_FORCE_KERNEL when usable, else the
  /// strongest supported kernel.
  void Select() {
    const char* env = std::getenv("AGORAEO_FORCE_KERNEL");
    if (env != nullptr && env[0] != '\0') {
      const HammingKernel* k = Find(env);
      if (k != nullptr && k->supported()) {
        active.store(k, std::memory_order_release);
        forced.store(true, std::memory_order_release);
        return;
      }
      AGORAEO_LOG(kWarning)
          << "AGORAEO_FORCE_KERNEL=" << env
          << (k == nullptr ? " is not compiled into this binary"
                           : " is not supported by this CPU")
          << "; using automatic kernel selection";
    }
    active.store(BestSupported(), std::memory_order_release);
    forced.store(false, std::memory_order_release);
  }
};

Dispatch& GetDispatch() {
  static Dispatch dispatch;
  return dispatch;
}

}  // namespace

const std::vector<const HammingKernel*>& CompiledKernels() {
  return GetDispatch().compiled;
}

const HammingKernel* ActiveKernel() {
  return GetDispatch().active.load(std::memory_order_acquire);
}

const HammingKernel* KernelByName(const std::string& name) {
  return GetDispatch().Find(name);
}

bool ForceKernel(const std::string& name) {
  Dispatch& dispatch = GetDispatch();
  if (name.empty()) {
    dispatch.active.store(dispatch.BestSupported(),
                          std::memory_order_release);
    dispatch.forced.store(false, std::memory_order_release);
    return true;
  }
  const HammingKernel* k = dispatch.Find(name);
  if (k == nullptr || !k->supported()) return false;
  dispatch.active.store(k, std::memory_order_release);
  dispatch.forced.store(true, std::memory_order_release);
  return true;
}

bool KernelForced() {
  return GetDispatch().forced.load(std::memory_order_acquire);
}

uint64_t DispatchCount(size_t kernel_index) {
  Dispatch& dispatch = GetDispatch();
  if (kernel_index >= dispatch.counts.size()) return 0;
  return dispatch.counts[kernel_index].load(std::memory_order_relaxed);
}

void CountDispatch(const HammingKernel* kernel) {
  Dispatch& dispatch = GetDispatch();
  for (size_t i = 0; i < dispatch.compiled.size(); ++i) {
    if (dispatch.compiled[i] == kernel) {
      dispatch.counts[i].fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
}

}  // namespace agoraeo::simd
