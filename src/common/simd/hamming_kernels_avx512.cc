/// AVX-512 Hamming kernel: XOR + native vpopcntq per 64-bit lane, then
/// in-register lane folds down to per-row distances.  Requires F+BW+VL
/// (lane shuffles / converts) and VPOPCNTDQ (Ice Lake+, Zen 4+); CPUs
/// with only the F+BW base set fall back to the AVX2 kernel at dispatch
/// time rather than getting an emulated popcount here.
#include "common/simd/kernel_impl.h"

#if defined(__x86_64__) && defined(__GNUC__) && !defined(AGORAEO_DISABLE_SIMD)

#include <immintrin.h>

#include <bit>

// GCC's avx512 intrinsic headers model "undefined" result operands as a
// self-initialized local, which -Wall flags as (maybe-)uninitialized
// when inlined here; the reads are intentional per the intrinsics'
// contract.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

namespace agoraeo::simd::internal {
namespace {

#define AGORAEO_AVX512 \
  __attribute__((target("avx512f,avx512bw,avx512dq,avx512vl,avx512vpopcntdq,popcnt")))

/// Per-64-bit-word popcounts of (v XOR pattern), one u64 per lane.
AGORAEO_AVX512 __attribute__((always_inline)) inline __m512i WordCounts(
    __m512i v, __m512i pattern) {
  return _mm512_popcnt_epi64(_mm512_xor_si512(v, pattern));
}

/// stride 1: each zmm holds eight whole rows.
AGORAEO_AVX512 void BatchStride1(const uint64_t* rows, size_t n,
                                 const uint64_t* query, uint32_t* dist) {
  const __m512i pattern = _mm512_set1_epi64(static_cast<int64_t>(query[0]));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i counts =
        WordCounts(_mm512_loadu_si512(rows + i), pattern);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dist + i),
                        _mm512_cvtepi64_epi32(counts));
  }
  for (; i < n; ++i) {
    dist[i] = static_cast<uint32_t>(std::popcount(rows[i] ^ query[0]));
  }
}

/// stride 2 (128-bit codes): each zmm holds four rows.
AGORAEO_AVX512 void BatchStride2(const uint64_t* rows, size_t n,
                                 const uint64_t* query, uint32_t* dist) {
  const __m512i pattern = _mm512_broadcast_i32x4(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(query)));
  const __m512i gather_rows = _mm512_setr_epi64(0, 2, 4, 6, 0, 0, 0, 0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m512i counts =
        WordCounts(_mm512_loadu_si512(rows + i * 2), pattern);
    // Fold word pairs: lanes 0,2,4,6 become the four row distances.
    const __m512i sums =
        _mm512_add_epi64(counts, _mm512_bsrli_epi128(counts, 8));
    const __m512i packed = _mm512_permutexvar_epi64(gather_rows, sums);
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(dist + i),
        _mm256_castsi256_si128(_mm512_cvtepi64_epi32(packed)));
  }
  for (; i < n; ++i) {
    const uint64_t* row = rows + i * 2;
    dist[i] = static_cast<uint32_t>(std::popcount(row[0] ^ query[0]) +
                                    std::popcount(row[1] ^ query[1]));
  }
}

/// stride 4 (256-bit codes): each zmm holds two rows.
AGORAEO_AVX512 void BatchStride4(const uint64_t* rows, size_t n,
                                 const uint64_t* query, uint32_t* dist) {
  const __m512i pattern = _mm512_broadcast_i64x4(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(query)));
  const __m512i gather_rows = _mm512_setr_epi64(0, 4, 0, 0, 0, 0, 0, 0);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m512i counts =
        WordCounts(_mm512_loadu_si512(rows + i * 4), pattern);
    const __m512i pairs =
        _mm512_add_epi64(counts, _mm512_bsrli_epi128(counts, 8));
    // pairs lanes {0,2} and {4,6} hold each row's two halves; swap the
    // 128-bit pairs within each 256-bit half and add to finish the fold.
    const __m512i sums = _mm512_add_epi64(
        pairs, _mm512_permutex_epi64(pairs, _MM_SHUFFLE(1, 0, 3, 2)));
    const __m512i packed = _mm512_permutexvar_epi64(gather_rows, sums);
    _mm_storel_epi64(
        reinterpret_cast<__m128i*>(dist + i),
        _mm256_castsi256_si128(_mm512_cvtepi64_epi32(packed)));
  }
  if (i < n) {
    const uint64_t* row = rows + i * 4;
    uint32_t d = 0;
    for (size_t w = 0; w < 4; ++w) {
      d += static_cast<uint32_t>(std::popcount(row[w] ^ query[w]));
    }
    dist[i] = d;
  }
}

/// stride 8 and every multiple: whole zmms per row.
AGORAEO_AVX512 void BatchStride8N(const uint64_t* rows, size_t n,
                                  size_t stride, const uint64_t* query,
                                  uint32_t* dist) {
  const size_t vecs = stride / 8;
  const uint64_t* row = rows;
  for (size_t i = 0; i < n; ++i, row += stride) {
    __m512i acc = _mm512_setzero_si512();
    for (size_t v = 0; v < vecs; ++v) {
      acc = _mm512_add_epi64(
          acc, WordCounts(_mm512_loadu_si512(row + v * 8),
                          _mm512_loadu_si512(query + v * 8)));
    }
    dist[i] = static_cast<uint32_t>(_mm512_reduce_add_epi64(acc));
  }
}

void Batch(const uint64_t* rows, size_t n, size_t stride,
           const uint64_t* query, uint32_t* dist) {
  switch (stride) {
    case 1:
      BatchStride1(rows, n, query, dist);
      return;
    case 2:
      BatchStride2(rows, n, query, dist);
      return;
    case 4:
      BatchStride4(rows, n, query, dist);
      return;
    default:
      // PaddedStride only produces 1, 2, 4 or multiples of 8.
      BatchStride8N(rows, n, stride, query, dist);
      return;
  }
}

/// Whole-zmm pair distances for wide codes; scalar below one vector.
AGORAEO_AVX512 uint64_t Pair(const uint64_t* a, const uint64_t* b,
                             size_t n_words) {
  uint64_t total = 0;
  size_t w = 0;
  if (n_words >= 8) {
    __m512i acc = _mm512_setzero_si512();
    for (; w + 8 <= n_words; w += 8) {
      acc = _mm512_add_epi64(
          acc, _mm512_popcnt_epi64(_mm512_xor_si512(
                   _mm512_loadu_si512(a + w), _mm512_loadu_si512(b + w))));
    }
    total = static_cast<uint64_t>(_mm512_reduce_add_epi64(acc));
  }
  for (; w < n_words; ++w) {
    total += static_cast<uint64_t>(std::popcount(a[w] ^ b[w]));
  }
  return total;
}

bool Supported() {
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512bw") != 0 &&
         __builtin_cpu_supports("avx512dq") != 0 &&
         __builtin_cpu_supports("avx512vl") != 0 &&
         __builtin_cpu_supports("avx512vpopcntdq") != 0 &&
         __builtin_cpu_supports("popcnt") != 0;
}

constexpr HammingKernel kAvx512{"avx512", Supported, Batch, Pair};

}  // namespace

const HammingKernel* Avx512Kernel() { return &kAvx512; }

}  // namespace agoraeo::simd::internal

#pragma GCC diagnostic pop

#else  // non-x86 or SIMD disabled

namespace agoraeo::simd::internal {
const HammingKernel* Avx512Kernel() { return nullptr; }
}  // namespace agoraeo::simd::internal

#endif
