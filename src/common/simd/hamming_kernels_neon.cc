/// NEON Hamming kernel (AArch64): XOR + vcnt byte popcount + vaddv
/// horizontal sums.  NEON is architecturally guaranteed on AArch64, so
/// there is no runtime feature probe beyond being an AArch64 build.
#include "common/simd/kernel_impl.h"

#if defined(__aarch64__) && !defined(AGORAEO_DISABLE_SIMD)

#include <arm_neon.h>

#include <bit>

namespace agoraeo::simd::internal {
namespace {

/// Popcount of one 128-bit register (two words) as a scalar.
inline uint32_t Count128(uint64x2_t v) {
  return vaddvq_u8(vcntq_u8(vreinterpretq_u8_u64(v)));
}

void Batch(const uint64_t* rows, size_t n, size_t stride,
           const uint64_t* query, uint32_t* dist) {
  if (stride == 1) {
    for (size_t i = 0; i < n; ++i) {
      dist[i] = static_cast<uint32_t>(std::popcount(rows[i] ^ query[0]));
    }
    return;
  }
  // Every other padded stride is a multiple of 2: whole q-registers.
  const size_t vecs = stride / 2;
  const uint64_t* row = rows;
  for (size_t i = 0; i < n; ++i, row += stride) {
    uint32_t d = 0;
    for (size_t v = 0; v < vecs; ++v) {
      d += Count128(veorq_u64(vld1q_u64(row + v * 2),
                              vld1q_u64(query + v * 2)));
    }
    dist[i] = d;
  }
}

uint64_t Pair(const uint64_t* a, const uint64_t* b, size_t n_words) {
  uint64_t total = 0;
  size_t w = 0;
  for (; w + 2 <= n_words; w += 2) {
    total += Count128(veorq_u64(vld1q_u64(a + w), vld1q_u64(b + w)));
  }
  for (; w < n_words; ++w) {
    total += static_cast<uint64_t>(std::popcount(a[w] ^ b[w]));
  }
  return total;
}

bool Supported() { return true; }

constexpr HammingKernel kNeon{"neon", Supported, Batch, Pair};

}  // namespace

const HammingKernel* NeonKernel() { return &kNeon; }

}  // namespace agoraeo::simd::internal

#else  // non-AArch64 or SIMD disabled

namespace agoraeo::simd::internal {
const HammingKernel* NeonKernel() { return nullptr; }
}  // namespace agoraeo::simd::internal

#endif
