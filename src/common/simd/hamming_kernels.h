#ifndef AGORAEO_COMMON_SIMD_HAMMING_KERNELS_H_
#define AGORAEO_COMMON_SIMD_HAMMING_KERNELS_H_

/// The vectorized Hamming-distance kernel layer.
///
/// Every scan loop above this header — the linear scan's blocked batch
/// kernels, the hash/multi-index candidate verification, the BK-tree's
/// per-node distances — reduces to XOR + popcount over packed 64-bit
/// words.  This module centralises that primitive behind a runtime
/// CPU-dispatch table so one build serves every ISA:
///
///   kernel    requires                           rows per vector (128-bit)
///   -------   --------------------------------   -------------------------
///   scalar    nothing (portable std::popcount)   1
///   avx2      AVX2 (vpshufb nibble-LUT popcnt)   2 per ymm
///   avx512    AVX-512 F+BW+VL+VPOPCNTDQ          4 per zmm
///   neon      AArch64 (vcnt)                     1 per q-register
///
/// The active kernel is chosen once, at first use: the strongest
/// compiled-in kernel the host CPU supports, overridable by the
/// AGORAEO_FORCE_KERNEL environment variable or ForceKernel() (the
/// CbirConfig::force_kernel plumbing and the parity tests' forced
/// dispatch matrix).  Selection is process-global — kernels are pure
/// functions, so there is nothing per-index about the choice.
///
/// Layout contract of the batch kernel: rows are stored row-major with a
/// *padded* stride of PaddedStride(words_per_code) words (pad words are
/// zero) in a 64-byte aligned buffer, and the query is padded the same
/// way; padding XORs to zero, so padded distances equal unpadded ones.
/// This header is std-only so common/, index/ and netsvc/ can all
/// include it without cycles.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <string>
#include <vector>

namespace agoraeo::simd {

/// Row stride (in 64-bit words) the kernel layer stores a
/// `words_per_code`-word code with: the next power of two up to 4, then
/// the next multiple of 8 — so every row is a whole number of SIMD
/// lanes on every compiled ISA.  PaddedStride(0) == 0.
inline size_t PaddedStride(size_t words_per_code) {
  if (words_per_code == 0) return 0;
  if (words_per_code <= 1) return 1;
  if (words_per_code <= 2) return 2;
  if (words_per_code <= 4) return 4;
  return (words_per_code + 7) / 8 * 8;
}

/// dist[i] = Hamming(rows[i*stride .. +stride), query[0..stride)).
/// `rows` holds n rows of `stride` words; stride must come from
/// PaddedStride.  Rows and query need not be aligned (kernels use
/// unaligned loads), but the index layer aligns its buffers to 64 bytes
/// so the loads are effectively aligned.
using BatchDistanceFn = void (*)(const uint64_t* rows, size_t n,
                                 size_t stride, const uint64_t* query,
                                 uint32_t* dist);

/// Hamming distance of one unpadded word pair sequence.
using PairDistanceFn = uint64_t (*)(const uint64_t* a, const uint64_t* b,
                                    size_t n_words);

/// One dispatchable kernel implementation.
struct HammingKernel {
  const char* name;          ///< "scalar", "avx2", "avx512", "neon"
  bool (*supported)();       ///< host CPU can execute it
  BatchDistanceFn batch;
  PairDistanceFn pair;
};

/// Every kernel compiled into this binary, strongest first.  The scalar
/// kernel is always present (and always last), so the list is never
/// empty — with -DAGORAEO_DISABLE_SIMD=ON it is the only entry.
const std::vector<const HammingKernel*>& CompiledKernels();

/// The kernel the dispatch table currently resolves to.  First call
/// performs selection: AGORAEO_FORCE_KERNEL if set and usable (unknown
/// or unsupported names log a warning and fall through), else the
/// strongest supported compiled kernel.  Never null.
const HammingKernel* ActiveKernel();

/// Looks a compiled kernel up by name; nullptr when not compiled in.
const HammingKernel* KernelByName(const std::string& name);

/// Forces dispatch to the named kernel (config plumbing and the parity
/// tests).  Returns false — leaving the active kernel unchanged — when
/// the name is unknown, not compiled in, or unsupported by this CPU.
/// An empty name reverts to automatic selection (env var ignored: an
/// explicit revert beats a startup default) and returns true.
bool ForceKernel(const std::string& name);

/// Whether the current selection came from ForceKernel or the
/// environment override rather than automatic CPU detection.
bool KernelForced();

/// Per-kernel dispatch counters: how many scan passes each kernel
/// served since process start.  Index-aligned with CompiledKernels().
uint64_t DispatchCount(size_t kernel_index);

/// Records one scan pass served by `kernel` (relaxed; hot-path cheap —
/// callers count per scan pass, not per block).
void CountDispatch(const HammingKernel* kernel);

/// Convenience: Hamming distance of two unpadded word sequences through
/// the active kernel — the single-pair truth BinaryCode::HammingDistance
/// and the probe-based indexes share with the blocked scans.
inline uint64_t PairDistance(const uint64_t* a, const uint64_t* b,
                             size_t n_words) {
  return ActiveKernel()->pair(a, b, n_words);
}

/// 64-byte-aligned allocator for the flat row buffers the batch kernels
/// stream (one cache line / one zmm register per 8 words).
template <typename T>
struct AlignedAllocator {
  using value_type = T;
  static constexpr std::align_val_t kAlign{64};

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) {}

  T* allocate(size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), kAlign));
  }
  void deallocate(T* p, size_t) noexcept { ::operator delete(p, kAlign); }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const {
    return true;
  }
};

/// The flat, padded, 64-byte-aligned row storage of the kernel layer.
using AlignedWordBuffer = std::vector<uint64_t, AlignedAllocator<uint64_t>>;

}  // namespace agoraeo::simd

#endif  // AGORAEO_COMMON_SIMD_HAMMING_KERNELS_H_
