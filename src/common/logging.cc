#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>

namespace agoraeo {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_log_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t t = std::chrono::system_clock::to_time_t(now);
  std::tm tm_buf;
  localtime_r(&t, &tm_buf);
  char ts[32];
  std::strftime(ts, sizeof(ts), "%H:%M:%S", &tm_buf);

  // Strip directories from the file path for compact output.
  const char* base = file_;
  for (const char* p = file_; *p; ++p) {
    if (*p == '/') base = p + 1;
  }

  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[%s %s %s:%d] %s\n", ts, LevelTag(level_), base, line_,
               stream_.str().c_str());
}

}  // namespace internal

}  // namespace agoraeo
