#include "common/time_util.h"

#include <cstdio>

#include "common/string_util.h"

namespace agoraeo {

const char* SeasonToString(Season s) {
  switch (s) {
    case Season::kWinter:
      return "Winter";
    case Season::kSpring:
      return "Spring";
    case Season::kSummer:
      return "Summer";
    case Season::kAutumn:
      return "Autumn";
  }
  return "?";
}

StatusOr<Season> SeasonFromString(const std::string& name) {
  std::string lower = StrToLower(name);
  if (lower == "winter") return Season::kWinter;
  if (lower == "spring") return Season::kSpring;
  if (lower == "summer") return Season::kSummer;
  if (lower == "autumn" || lower == "fall") return Season::kAutumn;
  return Status::InvalidArgument("unknown season: " + name);
}

bool CivilDate::IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int CivilDate::DaysInMonth(int year, int month) {
  static const int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (month < 1 || month > 12) return 0;
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[month - 1];
}

bool CivilDate::IsValid() const {
  return month_ >= 1 && month_ <= 12 && day_ >= 1 &&
         day_ <= DaysInMonth(year_, month_);
}

int64_t CivilDate::ToOrdinal() const {
  // Howard Hinnant's days_from_civil algorithm.
  int y = year_;
  const int m = month_;
  const int d = day_;
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);            // [0, 399]
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;           // [0, 146096]
  return static_cast<int64_t>(era) * 146097 + static_cast<int64_t>(doe) -
         719468;
}

CivilDate CivilDate::FromOrdinal(int64_t days) {
  // Howard Hinnant's civil_from_days algorithm.
  days += 719468;
  const int64_t era = (days >= 0 ? days : days - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(days - era * 146097);  // [0, 146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;  // [0, 399]
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                       // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;               // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                    // [1, 12]
  return CivilDate(static_cast<int>(y + (m <= 2)), static_cast<int>(m),
                   static_cast<int>(d));
}

StatusOr<CivilDate> CivilDate::Parse(const std::string& text) {
  int y = 0, m = 0, d = 0;
  char trailing = '\0';
  int matched = std::sscanf(text.c_str(), "%d-%d-%d%c", &y, &m, &d, &trailing);
  if (matched != 3) {
    return Status::InvalidArgument("date not in YYYY-MM-DD form: " + text);
  }
  CivilDate date(y, m, d);
  if (!date.IsValid()) {
    return Status::InvalidArgument("invalid calendar date: " + text);
  }
  return date;
}

std::string CivilDate::ToString() const {
  return StrFormat("%04d-%02d-%02d", year_, month_, day_);
}

Season CivilDate::GetSeason() const {
  switch (month_) {
    case 12:
    case 1:
    case 2:
      return Season::kWinter;
    case 3:
    case 4:
    case 5:
      return Season::kSpring;
    case 6:
    case 7:
    case 8:
      return Season::kSummer;
    default:
      return Season::kAutumn;
  }
}

}  // namespace agoraeo
