#ifndef AGORAEO_COMMON_BYTE_BUFFER_H_
#define AGORAEO_COMMON_BYTE_BUFFER_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace agoraeo {

/// Append-only little-endian binary writer used for model checkpoints,
/// docstore persistence and image payloads.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutRaw(&v, sizeof(v)); }
  void PutF32(float v) { PutRaw(&v, sizeof(v)); }
  void PutF64(double v) { PutRaw(&v, sizeof(v)); }

  /// Length-prefixed (u32) string.
  void PutString(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutRaw(s.data(), s.size());
  }

  /// Length-prefixed (u32) float vector.
  void PutF32Vector(const std::vector<float>& v) {
    PutU32(static_cast<uint32_t>(v.size()));
    PutRaw(v.data(), v.size() * sizeof(float));
  }

  void PutRaw(const void* data, size_t n) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  const std::vector<uint8_t>& data() const { return buf_; }
  std::vector<uint8_t> Release() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::vector<uint8_t> buf_;
};

/// Bounds-checked reader over a byte span written by ByteWriter.  All Get*
/// methods return Corruption when the buffer is exhausted.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size)
      : data_(data), size_(size), pos_(0) {}
  explicit ByteReader(const std::vector<uint8_t>& buf)
      : ByteReader(buf.data(), buf.size()) {}

  StatusOr<uint8_t> GetU8();
  StatusOr<uint32_t> GetU32();
  StatusOr<uint64_t> GetU64();
  StatusOr<int64_t> GetI64();
  StatusOr<float> GetF32();
  StatusOr<double> GetF64();
  StatusOr<std::string> GetString();
  StatusOr<std::vector<float>> GetF32Vector();

  /// Bytes not yet consumed.
  size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ >= size_; }

 private:
  Status Need(size_t n) {
    if (pos_ + n > size_) {
      return Status::Corruption("byte buffer exhausted");
    }
    return Status::OK();
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_;
};

/// Writes `data` to `path` atomically enough for tests (write + rename is
/// overkill here; plain write).  Returns IOError on failure.
Status WriteFileBytes(const std::string& path, const std::vector<uint8_t>& data);

/// Reads the whole file at `path`.
StatusOr<std::vector<uint8_t>> ReadFileBytes(const std::string& path);

}  // namespace agoraeo

#endif  // AGORAEO_COMMON_BYTE_BUFFER_H_
