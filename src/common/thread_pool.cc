#include "common/thread_pool.h"

#include <algorithm>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace agoraeo {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_task_.notify_all();
  for (auto& t : workers_) t.join();
}

size_t ThreadPool::PinThreads() {
#if defined(__linux__)
  const unsigned ncpu = std::max(1u, std::thread::hardware_concurrency());
  size_t pinned = 0;
  for (size_t i = 0; i < workers_.size(); ++i) {
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(static_cast<int>(i % ncpu), &set);
    if (pthread_setaffinity_np(workers_[i].native_handle(), sizeof(set),
                               &set) == 0) {
      ++pinned;
    }
  }
  return pinned;
#else
  return 0;
#endif
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t num_chunks = std::min(n, workers_.size());
  const size_t chunk = (n + num_chunks - 1) / num_chunks;
  // Completion is tracked with a per-call latch rather than Wait():
  // Wait() blocks until the pool's *global* queue drains, which would
  // couple concurrent ParallelFor callers sharing one pool.
  std::mutex mu;
  std::condition_variable cv;
  size_t pending = 0;
  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t begin = c * chunk;
    const size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    {
      std::lock_guard<std::mutex> lock(mu);
      ++pending;
    }
    Submit([begin, end, &fn, &mu, &cv, &pending] {
      for (size_t i = begin; i < end; ++i) fn(i);
      std::lock_guard<std::mutex> lock(mu);
      if (--pending == 0) cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&pending] { return pending == 0; });
}

}  // namespace agoraeo
