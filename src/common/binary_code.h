#ifndef AGORAEO_COMMON_BINARY_CODE_H_
#define AGORAEO_COMMON_BINARY_CODE_H_

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#if !defined(__cpp_lib_bitops) || __cpp_lib_bitops < 201907L
#if !defined(__GNUC__) && !defined(__clang__)
#error \
    "agoraeo requires std::popcount (<bit>, C++20) or a GNU-compatible " \
    "compiler providing __builtin_popcountll; build with -std=c++20."
#endif
#endif

namespace agoraeo {

/// Hardware popcount with a feature-test guard: C++20's std::popcount
/// when the standard library provides it, the GNU builtin otherwise, so
/// an accidental C++17 toolchain fails with the #error above instead of
/// a cryptic "popcount is not a member of std".
inline int PopcountWord(uint64_t word) {
#if defined(__cpp_lib_bitops) && __cpp_lib_bitops >= 201907L
  return std::popcount(word);
#else
  return __builtin_popcountll(word);
#endif
}

/// A fixed-length binary hash code (e.g. the 128-bit codes MiLaN assigns to
/// each BigEarthNet patch), packed into 64-bit words.
///
/// Bit i of the code is word i/64, bit i%64.  Codes of different lengths
/// never compare equal.  Hamming distance is computed with hardware popcount
/// (std::popcount).
class BinaryCode {
 public:
  /// An empty (0-bit) code.
  BinaryCode() : num_bits_(0) {}

  /// A code of `num_bits` zero bits.
  explicit BinaryCode(size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  /// Builds a code from +/- real-valued network outputs: bit i is 1 when
  /// values[i] > 0 (the sign binarization used by deep hashing methods).
  static BinaryCode FromSigns(const std::vector<float>& values);

  /// Builds a code from a 0/1 bit vector.
  static BinaryCode FromBits(const std::vector<int>& bits);

  /// Parses a string of '0'/'1' characters (most-significant textual first
  /// position is bit 0).  Returns an empty code for an empty string.
  static BinaryCode FromBitString(const std::string& text);

  /// Rebuilds a code from its packed words — the inverse of words(),
  /// used by index snapshot restore.  `words` is truncated or
  /// zero-padded to the (num_bits + 63) / 64 words the length implies.
  static BinaryCode FromWords(size_t num_bits, std::vector<uint64_t> words);

  size_t size() const { return num_bits_; }
  bool empty() const { return num_bits_ == 0; }

  bool GetBit(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }
  void SetBit(size_t i, bool value) {
    if (value)
      words_[i >> 6] |= (1ULL << (i & 63));
    else
      words_[i >> 6] &= ~(1ULL << (i & 63));
  }
  void FlipBit(size_t i) { words_[i >> 6] ^= (1ULL << (i & 63)); }

  /// Number of set bits.
  size_t PopCount() const;

  /// Hamming distance to another code of the same length.
  /// Precondition: other.size() == size().
  size_t HammingDistance(const BinaryCode& other) const;

  /// Extracts bits [begin, begin+len) as a new code (used by multi-index
  /// hashing to form substrings).  Requires begin+len <= size().
  BinaryCode Substring(size_t begin, size_t len) const;

  /// The low 64 bits interpreted as an integer (for codes <= 64 bits this
  /// is the whole code); used as a compact hash-table key for substrings.
  uint64_t LowWord() const { return words_.empty() ? 0 : words_[0]; }

  const std::vector<uint64_t>& words() const { return words_; }

  /// '0'/'1' string, bit 0 first.
  std::string ToBitString() const;

  /// Lowercase hex, low word first, zero padded; stable across platforms.
  std::string ToHexString() const;

  bool operator==(const BinaryCode& other) const {
    return num_bits_ == other.num_bits_ && words_ == other.words_;
  }
  bool operator!=(const BinaryCode& other) const { return !(*this == other); }
  /// Lexicographic over (length, words); gives codes a total order so they
  /// can key ordered containers.
  bool operator<(const BinaryCode& other) const {
    if (num_bits_ != other.num_bits_) return num_bits_ < other.num_bits_;
    return words_ < other.words_;
  }

 private:
  size_t num_bits_;
  std::vector<uint64_t> words_;
};

/// FNV-1a over the code's words; for unordered containers.
struct BinaryCodeHash {
  size_t operator()(const BinaryCode& code) const;
};

}  // namespace agoraeo

#endif  // AGORAEO_COMMON_BINARY_CODE_H_
