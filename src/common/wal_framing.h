#ifndef AGORAEO_COMMON_WAL_FRAMING_H_
#define AGORAEO_COMMON_WAL_FRAMING_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace agoraeo {

/// How durable each appended frame is when Append returns:
///   kFlush  — fflush to the OS (survives a process crash; the default,
///             matching the docstore journal's historical behaviour),
///   kFsync  — fflush + fsync (survives power loss; slowest),
///   kNone   — stdio-buffered only (fastest; a crash can lose the
///             buffered tail, which recovery treats as a torn frame).
enum class WalSyncMode : uint8_t { kFlush = 0, kFsync = 1, kNone = 2 };

/// The on-disk framing shared by every write-ahead log in the system
/// (the docstore journal and the CBIR index WAL).  Per frame:
///   [u32 payload length][u32 crc32(payload)][payload]
/// The CRC lets recovery distinguish a cleanly-ended log from a torn
/// tail (a crash mid-append): everything before the first bad frame is
/// trusted, the rest is discarded.
class WalFrameWriter {
 public:
  WalFrameWriter() = default;
  ~WalFrameWriter();
  WalFrameWriter(const WalFrameWriter&) = delete;
  WalFrameWriter& operator=(const WalFrameWriter&) = delete;

  /// Opens the log for appending (creating it when missing).
  Status Open(const std::string& path, WalSyncMode sync = WalSyncMode::kFlush);

  /// Appends one checksummed frame and applies the sync mode.
  Status Append(const std::vector<uint8_t>& payload);

  /// Truncates the log to empty (after a checkpoint made its contents
  /// redundant).
  Status Reset();

  void Close();

  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }
  WalSyncMode sync_mode() const { return sync_; }
  /// Frames appended through this writer (not counting pre-existing log
  /// content).
  size_t frames_appended() const { return appended_; }
  /// Bytes appended through this writer (frame headers included).
  uint64_t bytes_appended() const { return bytes_appended_; }

  /// Installs a latency histogram for the per-append sync step (the
  /// fflush/fsync, not the buffered write).  Null uninstalls; the
  /// writer does not own the histogram, which must outlive it.
  void set_sync_histogram(obs::Histogram* histogram) {
    sync_histogram_ = histogram;
  }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  WalSyncMode sync_ = WalSyncMode::kFlush;
  size_t appended_ = 0;
  uint64_t bytes_appended_ = 0;
  obs::Histogram* sync_histogram_ = nullptr;
};

/// Result of scanning a framed log during recovery.
struct WalFrameReplayResult {
  size_t frames_applied = 0;
  /// True when the log ended in a torn or corrupt frame that was
  /// discarded (expected after a crash mid-append; not an error).
  bool tail_discarded = false;
  /// File offset just past the last intact frame — the length the file
  /// should be truncated to before appending again, so new frames are
  /// never written after an unreadable tail.
  uint64_t valid_bytes = 0;
};

/// Reads a framed log and invokes `apply` on each intact frame's payload
/// in order.  Stops at the first truncated or checksum-failing frame.
/// A Corruption status from `apply` (a payload that framed cleanly but
/// does not decode) is treated as a torn tail as well; any other non-OK
/// status aborts the replay and is returned.  A missing file is an
/// empty log.
StatusOr<WalFrameReplayResult> ReplayWalFrames(
    const std::string& path,
    const std::function<Status(const std::vector<uint8_t>&)>& apply);

/// Truncates `path` to `size` bytes (used to cut a torn WAL tail before
/// reopening the log for append).
Status TruncateFile(const std::string& path, uint64_t size);

}  // namespace agoraeo

#endif  // AGORAEO_COMMON_WAL_FRAMING_H_
