#ifndef AGORAEO_COMMON_STATUS_H_
#define AGORAEO_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace agoraeo {

/// Error categories used across the library.  Modeled after the
/// Arrow/RocksDB status idiom: library code never throws; every fallible
/// operation returns a Status (or StatusOr<T> when it produces a value).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kIOError = 8,
  kCorruption = 9,
};

/// Returns a short human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: a code plus an optional message.
///
/// The OK status carries no allocation; error statuses carry a message
/// describing what went wrong.  Statuses are cheap to copy and move.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status.  Accessing the value of an
/// errored StatusOr is a programming error (checked with assert in debug
/// builds).
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value (success).
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}

  /// Implicit construction from an error status.  `status.ok()` must be
  /// false; constructing a StatusOr from an OK status without a value is a
  /// bug and is converted to an internal error.
  StatusOr(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed with OK status");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates an expression returning Status and returns it from the current
/// function if it is an error.
#define AGORAEO_RETURN_IF_ERROR(expr)          \
  do {                                         \
    ::agoraeo::Status _st = (expr);            \
    if (!_st.ok()) return _st;                 \
  } while (0)

#define AGORAEO_INTERNAL_CONCAT_INNER(a, b) a##b
#define AGORAEO_INTERNAL_CONCAT(a, b) AGORAEO_INTERNAL_CONCAT_INNER(a, b)

#define AGORAEO_INTERNAL_ASSIGN_OR_RETURN(var, lhs, expr) \
  auto var = (expr);                                      \
  if (!var.ok()) return var.status();                     \
  lhs = std::move(var).value();

/// Evaluates an expression returning StatusOr<T>, assigns the value to
/// `lhs` on success, and returns the error status otherwise.
#define AGORAEO_ASSIGN_OR_RETURN(lhs, expr)                               \
  AGORAEO_INTERNAL_ASSIGN_OR_RETURN(                                      \
      AGORAEO_INTERNAL_CONCAT(_status_or_, __LINE__), lhs, expr)

}  // namespace agoraeo

#endif  // AGORAEO_COMMON_STATUS_H_
