#include "common/random.h"

#include <cassert>
#include <cmath>
#include <numeric>

namespace agoraeo {

Rng::Rng(uint64_t seed, uint64_t stream) : state_(0), inc_((stream << 1u) | 1u) {
  NextUint32();
  state_ += seed;
  NextUint32();
}

uint32_t Rng::NextUint32() {
  uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
  uint32_t rot = static_cast<uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((-rot) & 31));
}

uint64_t Rng::NextUint64() {
  return (static_cast<uint64_t>(NextUint32()) << 32) | NextUint32();
}

uint32_t Rng::UniformInt(uint32_t bound) {
  assert(bound != 0);
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  uint64_t m = static_cast<uint64_t>(NextUint32()) * bound;
  uint32_t l = static_cast<uint32_t>(m);
  if (l < bound) {
    uint32_t t = -bound % bound;
    while (l < t) {
      m = static_cast<uint64_t>(NextUint32()) * bound;
      l = static_cast<uint32_t>(m);
    }
  }
  return static_cast<uint32_t>(m >> 32);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // full range
  // For spans that fit in 32 bits use the fast path.
  if (span <= 0xffffffffULL) {
    return lo + static_cast<int64_t>(UniformInt(static_cast<uint32_t>(span)));
  }
  // Rejection sampling over 64 bits.
  uint64_t limit = ~0ULL - (~0ULL % span);
  uint64_t v;
  do {
    v = NextUint64();
  } while (v >= limit);
  return lo + static_cast<int64_t>(v % span);
}

double Rng::UniformDouble() {
  // 53 random mantissa bits.
  return (NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1, u2;
  do {
    u1 = UniformDouble();
  } while (u1 <= 1e-300);
  u2 = UniformDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  assert(total > 0.0);
  double target = UniformDouble() * total;
  double cum = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cum += weights[i];
    if (target < cum) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  assert(k <= n);
  // Partial Fisher-Yates over an index vector; O(n) memory, O(n + k) time.
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + UniformInt(static_cast<uint32_t>(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace agoraeo
