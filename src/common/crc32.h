#ifndef AGORAEO_COMMON_CRC32_H_
#define AGORAEO_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace agoraeo {

/// CRC-32 (ISO-HDLC polynomial 0xEDB88320, the zlib/gzip variant) over a
/// byte span.  Used to checksum write-ahead-log records so torn or
/// corrupted tails are detected during recovery.
uint32_t Crc32(const void* data, size_t n);

inline uint32_t Crc32(const std::vector<uint8_t>& bytes) {
  return Crc32(bytes.data(), bytes.size());
}

/// Incremental form: feed `crc` from a previous call (start with 0).
uint32_t Crc32Update(uint32_t crc, const void* data, size_t n);

}  // namespace agoraeo

#endif  // AGORAEO_COMMON_CRC32_H_
