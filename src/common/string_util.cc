#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace agoraeo {

std::vector<std::string> StrSplit(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string StrTrim(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(input[begin])))
    ++begin;
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1])))
    --end;
  return std::string(input.substr(begin, end - begin));
}

std::string StrToLower(std::string_view input) {
  std::string out(input);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StrStartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool StrEndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool StrContains(std::string_view text, std::string_view piece) {
  return text.find(piece) != std::string_view::npos;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string PadLeft(std::string_view s, size_t width, char fill) {
  if (s.size() >= width) return std::string(s);
  std::string out(width - s.size(), fill);
  out.append(s);
  return out;
}

std::string WithThousandsSeparators(int64_t value) {
  std::string digits = std::to_string(value < 0 ? -value : value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (value < 0) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

}  // namespace agoraeo
