#include "earthqube/zip_writer.h"

#include <algorithm>

#include "common/byte_buffer.h"
#include "common/crc32.h"

namespace agoraeo::earthqube {

namespace {

constexpr uint32_t kLocalHeaderSig = 0x04034b50;
constexpr uint32_t kCentralHeaderSig = 0x02014b50;
constexpr uint32_t kEndOfCentralSig = 0x06054b50;
constexpr uint16_t kVersion = 20;        // 2.0 — store method
constexpr uint16_t kMethodStore = 0;
// Fixed DOS timestamp (2022-09-05 10:00, the VLDB demo week): archives
// are bit-reproducible.
constexpr uint16_t kDosTime = (10 << 11);
constexpr uint16_t kDosDate = ((2022 - 1980) << 9) | (9 << 5) | 5;

void PutU16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v & 0xFF));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

Status ZipWriter::Add(const std::string& name,
                      const std::vector<uint8_t>& content) {
  if (name.empty() || name.size() > 0xFFFF) {
    return Status::InvalidArgument("zip entry name empty or too long");
  }
  if (name.find('\\') != std::string::npos || name.front() == '/') {
    return Status::InvalidArgument(
        "zip entry names use relative '/' paths: " + name);
  }
  for (const Entry& e : entries_) {
    if (e.name == name) {
      return Status::AlreadyExists("duplicate zip entry: " + name);
    }
  }
  if (content.size() > 0xFFFFFFFFull) {
    return Status::InvalidArgument("entry too large for zip32: " + name);
  }
  Entry entry;
  entry.name = name;
  entry.content = content;
  entry.crc32 = Crc32(content);
  entries_.push_back(std::move(entry));
  return Status::OK();
}

Status ZipWriter::Add(const std::string& name, const std::string& content) {
  return Add(name,
             std::vector<uint8_t>(content.begin(), content.end()));
}

std::vector<uint8_t> ZipWriter::Finish() const {
  std::vector<uint8_t> out;
  std::vector<uint32_t> offsets;
  offsets.reserve(entries_.size());

  // Local file headers + payloads.
  for (const Entry& e : entries_) {
    offsets.push_back(static_cast<uint32_t>(out.size()));
    PutU32(&out, kLocalHeaderSig);
    PutU16(&out, kVersion);
    PutU16(&out, 0);  // flags
    PutU16(&out, kMethodStore);
    PutU16(&out, kDosTime);
    PutU16(&out, kDosDate);
    PutU32(&out, e.crc32);
    PutU32(&out, static_cast<uint32_t>(e.content.size()));  // compressed
    PutU32(&out, static_cast<uint32_t>(e.content.size()));  // uncompressed
    PutU16(&out, static_cast<uint16_t>(e.name.size()));
    PutU16(&out, 0);  // extra length
    out.insert(out.end(), e.name.begin(), e.name.end());
    out.insert(out.end(), e.content.begin(), e.content.end());
  }

  // Central directory.
  const uint32_t central_start = static_cast<uint32_t>(out.size());
  for (size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    PutU32(&out, kCentralHeaderSig);
    PutU16(&out, kVersion);  // made by
    PutU16(&out, kVersion);  // needed to extract
    PutU16(&out, 0);         // flags
    PutU16(&out, kMethodStore);
    PutU16(&out, kDosTime);
    PutU16(&out, kDosDate);
    PutU32(&out, e.crc32);
    PutU32(&out, static_cast<uint32_t>(e.content.size()));
    PutU32(&out, static_cast<uint32_t>(e.content.size()));
    PutU16(&out, static_cast<uint16_t>(e.name.size()));
    PutU16(&out, 0);  // extra
    PutU16(&out, 0);  // comment
    PutU16(&out, 0);  // disk number
    PutU16(&out, 0);  // internal attrs
    PutU32(&out, 0);  // external attrs
    PutU32(&out, offsets[i]);
    out.insert(out.end(), e.name.begin(), e.name.end());
  }
  const uint32_t central_size =
      static_cast<uint32_t>(out.size()) - central_start;

  // End of central directory.
  PutU32(&out, kEndOfCentralSig);
  PutU16(&out, 0);  // this disk
  PutU16(&out, 0);  // central-dir disk
  PutU16(&out, static_cast<uint16_t>(entries_.size()));
  PutU16(&out, static_cast<uint16_t>(entries_.size()));
  PutU32(&out, central_size);
  PutU32(&out, central_start);
  PutU16(&out, 0);  // comment length
  return out;
}

StatusOr<std::vector<std::pair<std::string, std::vector<uint8_t>>>>
ZipExtractAll(const std::vector<uint8_t>& archive) {
  std::vector<std::pair<std::string, std::vector<uint8_t>>> out;
  // Find the end-of-central-directory record (no comment in our subset,
  // so it is the final 22 bytes).
  if (archive.size() < 22) return Status::Corruption("zip too small");
  const size_t eocd = archive.size() - 22;
  if (GetU32(archive.data() + eocd) != kEndOfCentralSig) {
    return Status::Corruption("missing end-of-central-directory");
  }
  const uint16_t count = GetU16(archive.data() + eocd + 10);
  uint32_t pos = GetU32(archive.data() + eocd + 16);

  for (uint16_t i = 0; i < count; ++i) {
    if (pos + 46 > archive.size() ||
        GetU32(archive.data() + pos) != kCentralHeaderSig) {
      return Status::Corruption("bad central directory entry");
    }
    const uint16_t method = GetU16(archive.data() + pos + 10);
    if (method != kMethodStore) {
      return Status::Corruption("unsupported compression method");
    }
    const uint32_t crc = GetU32(archive.data() + pos + 16);
    const uint32_t size = GetU32(archive.data() + pos + 24);
    const uint16_t name_len = GetU16(archive.data() + pos + 28);
    const uint16_t extra_len = GetU16(archive.data() + pos + 30);
    const uint16_t comment_len = GetU16(archive.data() + pos + 32);
    const uint32_t local_offset = GetU32(archive.data() + pos + 42);
    if (pos + 46 + name_len > archive.size()) {
      return Status::Corruption("truncated central entry name");
    }
    const std::string name(
        reinterpret_cast<const char*>(archive.data() + pos + 46), name_len);

    // Jump to the local header for the payload.
    if (local_offset + 30 > archive.size() ||
        GetU32(archive.data() + local_offset) != kLocalHeaderSig) {
      return Status::Corruption("bad local header for " + name);
    }
    const uint16_t lname = GetU16(archive.data() + local_offset + 26);
    const uint16_t lextra = GetU16(archive.data() + local_offset + 28);
    const size_t data_start = local_offset + 30 + lname + lextra;
    if (data_start + size > archive.size()) {
      return Status::Corruption("truncated payload for " + name);
    }
    std::vector<uint8_t> content(archive.begin() + data_start,
                                 archive.begin() + data_start + size);
    if (Crc32(content) != crc) {
      return Status::Corruption("CRC mismatch for " + name);
    }
    out.emplace_back(name, std::move(content));
    pos += 46 + name_len + extra_len + comment_len;
  }
  return out;
}

}  // namespace agoraeo::earthqube
