#ifndef AGORAEO_EARTHQUBE_QUERY_H_
#define AGORAEO_EARTHQUBE_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "bigearthnet/clc_labels.h"
#include "common/time_util.h"
#include "docstore/filter.h"
#include "geo/geo.h"

namespace agoraeo::earthqube {

/// Geospatial restriction from the query panel's coordinates subsection:
/// a rectangle or circle typed in, or an arbitrary rectangle / circle /
/// polygon drawn on the map (paper Section 3.1).
struct GeoQuery {
  enum class Shape { kNone, kRectangle, kCircle, kPolygon };
  Shape shape = Shape::kNone;
  geo::BoundingBox rectangle;
  geo::Circle circle;
  geo::Polygon polygon;

  static GeoQuery None() { return {}; }
  static GeoQuery Rect(geo::BoundingBox box);
  static GeoQuery InCircle(geo::Circle c);
  static GeoQuery InPolygon(geo::Polygon p);
};

/// The three label-filtering operators of the label panel (Figure 2-2):
///  - Some: at least one of the selected labels is present;
///  - Exactly: the label set equals the selection;
///  - AtLeastAndMore: all selected labels present, extras allowed.
enum class LabelOperator { kSome, kExactly, kAtLeastAndMore };

const char* LabelOperatorToString(LabelOperator op);

/// Label restriction; `enabled == false` models the panel's switch button
/// in its initial position (no label-based filtering).
struct LabelFilter {
  bool enabled = false;
  LabelOperator op = LabelOperator::kSome;
  bigearthnet::LabelSet labels;

  static LabelFilter Off() { return {}; }
  static LabelFilter Some(bigearthnet::LabelSet labels);
  static LabelFilter Exactly(bigearthnet::LabelSet labels);
  static LabelFilter AtLeastAndMore(bigearthnet::LabelSet labels);

  /// Selects a whole Level-2 class (e.g. "Forests" selects the three
  /// Level-3 forest labels), as the hierarchical panel allows.
  static LabelFilter SomeLevel2(int level2_code);
};

/// A complete query-panel submission.
struct EarthQubeQuery {
  GeoQuery geo;
  std::optional<DateRange> date_range;
  std::vector<std::string> satellites;  ///< subset of {"S2A", "S2B"}
  std::vector<Season> seasons;
  LabelFilter label_filter;
  size_t limit = 0;  ///< 0 = unlimited

  /// Translates the panel state into a docstore filter over the metadata
  /// schema.  The Exactly operator compiles to an equality on the sorted
  /// labels_key string (hash-indexable); Some/AtLeastAndMore compile to
  /// In/All over the multikey labels array.  `ascii_labels` must match
  /// the LabelEncoding the collection was ingested with (the E7 ablation
  /// passes false to query full-string labels).
  docstore::Filter ToFilter(bool ascii_labels = true) const;
};

}  // namespace agoraeo::earthqube

#endif  // AGORAEO_EARTHQUBE_QUERY_H_
