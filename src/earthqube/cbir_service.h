#ifndef AGORAEO_EARTHQUBE_CBIR_SERVICE_H_
#define AGORAEO_EARTHQUBE_CBIR_SERVICE_H_

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"

#include "bigearthnet/feature_extractor.h"
#include "bigearthnet/patch.h"
#include "common/binary_code.h"
#include "common/status.h"
#include "common/wal_framing.h"
#include "index/frontier.h"
#include "index/hamming_index.h"
#include "index/index_wal.h"
#include "index/segmented_index.h"
#include "index/sharded_index.h"
#include "milan/milan_model.h"
#include "obs/observability.h"

namespace agoraeo::earthqube {

/// Which nearest-neighbour structure backs the service.
enum class CbirIndexKind { kHashTable, kMultiIndex, kLinearScan, kBkTree };

/// Construction knobs of the CBIR service.
struct CbirConfig {
  CbirIndexKind index_kind = CbirIndexKind::kHashTable;
  /// Pool the batch queries (and sharded passes) run across: 0 picks the
  /// hardware concurrency, 1 disables threading.  Created lazily.
  size_t query_threads = 0;
  /// Partitions of the Hamming index.  1 (the default) builds the plain
  /// monolithic index — exactly the pre-partition behaviour; > 1 wraps
  /// `index_kind` into an N-way ShardedHammingIndex: ingest is
  /// parallelised per shard and every batched query pass fans out one
  /// task per shard across the query pool.
  size_t num_shards = 1;

  /// Pin the query pool's workers to CPUs (worker i -> CPU i modulo the
  /// core count) when the pool is created.  Off by default; intended
  /// for measured shard-scaling runs where scheduler migration blurs
  /// per-core cache residency.  No-op on platforms without pthread
  /// affinity.
  bool pin_shard_threads = false;

  /// Force a specific Hamming kernel ("avx512", "avx2", "neon",
  /// "popcnt", "scalar") instead of the automatic strongest-supported
  /// selection.  Empty keeps auto-selection (which itself honours the
  /// AGORAEO_FORCE_KERNEL environment variable).  An unknown or
  /// unsupported name logs a warning and keeps the automatic choice.
  /// NOTE: kernel dispatch is process-global — the last service
  /// constructed with a non-empty value wins.
  std::string force_kernel;

  // --- persistence ---------------------------------------------------------

  /// Directory holding the index's durable state — one `shard-<s>.snap`
  /// per shard plus the `index.wal` ingest log.  Empty (the default)
  /// disables durability entirely: the index is in-memory only, exactly
  /// the pre-persistence behaviour.  Call Recover() before the first
  /// AddImage to restore and start logging.
  std::string snapshot_dir;

  /// Seal point of every shard's mutable segment: once it holds this
  /// many items it is frozen into the lock-free sealed list and a fresh
  /// mutable segment starts (0 = never auto-seal — one mutable segment,
  /// the pre-segment behaviour).  Doubles as the snapshot cadence: a
  /// shard's snapshot is refreshed after this many new items arrive.
  size_t seal_threshold = 0;

  /// Sealed-segment compaction point of every shard: once a shard holds
  /// MORE than this many sealed segments they are merged into one,
  /// bounding the per-query segment fan-out (0 = never compact).  See
  /// SegmentedHammingIndex.
  size_t compact_threshold = 0;

  /// Durability of each index WAL append (ignored without a
  /// snapshot_dir).  kFlush survives a process crash, kFsync survives
  /// power loss, kNone leaves the tail in stdio buffers.
  WalSyncMode wal_sync = WalSyncMode::kFlush;
};

/// Observability of the persistence layer (stats endpoint + tests).
struct CbirPersistenceStats {
  bool enabled = false;       ///< snapshot_dir configured and WAL open
  bool recovered = false;     ///< Recover() ran against this service
  uint64_t restored_items = 0;     ///< items restored from snapshots
  uint64_t replayed_items = 0;     ///< items caught up from the WAL
  uint64_t discarded_snapshots = 0;  ///< corrupt/mismatched files dropped
  uint64_t dropped_items = 0;  ///< items cut by the contiguous-prefix rule
  bool wal_tail_discarded = false;  ///< recovery found a torn WAL tail
  uint64_t wal_records = 0;         ///< records appended since open
  uint64_t snapshots_written = 0;   ///< shard snapshot files written
};

/// One retrieved image.
struct CbirResult {
  std::string patch_name;
  uint32_t hamming_distance;
};

/// A lazy, resumable stream of named CBIR hits in (distance, ingest
/// seq) order — what a code-level query returns when the caller wants
/// to pull results a page at a time instead of materialising the full
/// ranking.  Draining it yields exactly the corresponding eager call
/// (RadiusByCode[Restricted] / KnnByCode[Restricted]): the exclude name
/// is dropped and the cap applied as hits surface.  Single-consumer;
/// same ingest-vs-query discipline as every other read path (callers
/// serialise against concurrent AddImages themselves — the ranked-
/// access registry does it by epoch-invalidating handles on ingest).
class CbirHitStream {
 public:
  /// Appends up to `n` further results to `out`; returns the number
  /// appended, 0 once exhausted (sticky).
  size_t Next(size_t n, std::vector<CbirResult>* out);

 private:
  friend class CbirService;
  CbirHitStream() = default;

  std::unique_ptr<index::HitFrontier> frontier_;
  const std::vector<std::string>* name_by_id_ = nullptr;  ///< owner's map
  /// Keeps a caller-provided allowlist alive while the frontier borrows
  /// it (the hybrid pre-filter leg hands ownership to the stream).
  std::shared_ptr<const index::CandidateSet> allowed_pin_;
  std::string exclude_name_;
  size_t cap_ = 0;  ///< max results ever emitted; 0 = unlimited
  size_t emitted_ = 0;
  std::vector<index::SearchResult> buffer_;  ///< scratch per pull
};

/// The content-based image-retrieval service (paper Section 3.3): MiLaN
/// infers a binary code per archive image; an in-memory map from patch
/// name to code supports query-by-archive-image, the model produces
/// codes on the fly for external images, and a Hamming index returns all
/// images within a small radius of the query code.
class CbirService {
 public:
  /// Takes ownership of the trained model.  `extractor` must outlive the
  /// service.  See CbirConfig for the index kind, query pool and
  /// partition knobs.
  CbirService(std::unique_ptr<milan::MilanModel> model,
              const bigearthnet::FeatureExtractor* extractor,
              CbirConfig config);

  /// Legacy constructor kept for the pre-partition call sites.
  CbirService(std::unique_ptr<milan::MilanModel> model,
              const bigearthnet::FeatureExtractor* extractor,
              CbirIndexKind index_kind = CbirIndexKind::kHashTable,
              size_t query_threads = 0)
      : CbirService(std::move(model), extractor,
                    LegacyConfig(index_kind, query_threads)) {}

  /// Restores the index from config().snapshot_dir — per-shard
  /// snapshots first, then WAL catch-up — and opens the WAL so
  /// subsequent ingest is logged.  Boot sequence:
  ///   1. Read every shard's snapshot.  A corrupt file (CRC mismatch,
  ///      truncation, wrong shard/sharding) logs a warning and is
  ///      discarded — never fatal; that shard restores from the WAL.
  ///   2. Replay the WAL, skipping items a snapshot already covered.  A
  ///      torn tail (crash mid-append) is discarded silently.
  ///   3. Keep the longest contiguous id prefix (a discarded snapshot
  ///      can leave holes the WAL predates); anything past the first
  ///      hole is dropped so ids stay 0..n-1.
  ///   4. Bulk-load the index (BatchAdd of stored codes — NO model
  ///      inference, which is why restore beats re-ingest by orders of
  ///      magnitude) and rebuild the name/code maps.
  ///   5. After lossy recovery (steps 1 or 3 discarded anything), write
  ///      a full checkpoint immediately so disk is canonical again;
  ///      after a clean boot just truncate any torn WAL tail.
  /// A missing directory is created; no files at all is a cold start.
  /// No-op when snapshot_dir is empty.  Must run before the first
  /// AddImage — it refuses (FailedPrecondition) on a non-empty service.
  ///
  /// `keep` (optional) filters the recovered items by name — the
  /// cluster tier's slot-filtered boot: a node that migrated slots away
  /// passes "is this name's slot still mine", dropped items are
  /// discarded, survivors are renumbered to contiguous ids, and the
  /// recovery is treated as lossy (disk is re-checkpointed under the
  /// new ids).  A null predicate keeps everything.
  Status Recover() { return Recover(nullptr); }
  Status Recover(const std::function<bool(const std::string&)>& keep);

  /// Writes a full checkpoint on demand: seals every shard's mutable
  /// segment (so snapshot boundaries coincide with segment boundaries),
  /// writes every shard's snapshot at the current watermark, then
  /// resets the WAL (its records are now all covered).  FailedPrecondition
  /// without a snapshot_dir.
  Status Snapshot();

  /// Indexes one archive image with a precomputed feature vector.
  Status AddImage(const std::string& patch_name, const Tensor& feature);

  /// Indexes a feature matrix aligned with `names` (row i = names[i]).
  Status AddImages(const std::vector<std::string>& names,
                   const Tensor& features);

  /// Indexes images whose binary codes were computed elsewhere — no
  /// model inference.  The cluster tier uses this for routed ingest
  /// (the coordinator ships precomputed codes to slot owners) and for
  /// slot migration imports; ingest is WAL-logged exactly like
  /// AddImages.
  Status AddImagesWithCodes(const std::vector<std::string>& names,
                            const std::vector<BinaryCode>& codes);

  /// Query by an image already in the archive: looks the code up in the
  /// in-memory hash table (no model inference).  NotFound for unknown
  /// names.  Results exclude the query image itself.
  StatusOr<std::vector<CbirResult>> QueryByName(const std::string& patch_name,
                                                uint32_t radius,
                                                size_t max_results = 0) const;

  /// k-NN flavour of QueryByName.
  StatusOr<std::vector<CbirResult>> KnnByName(const std::string& patch_name,
                                              size_t k) const;

  /// Query by an external image (query-by-new-example): extracts
  /// features from pixels and infers the code on the fly.
  StatusOr<std::vector<CbirResult>> QueryByPatch(
      const bigearthnet::Patch& patch, uint32_t radius,
      size_t max_results = 0);

  /// Query by a raw feature vector (on-the-fly inference).
  std::vector<CbirResult> QueryByFeature(const Tensor& feature,
                                         uint32_t radius,
                                         size_t max_results = 0);

  // --- code-level queries (the unified executor's entry points) ------------
  //
  // Every query path above resolves its subject to a BinaryCode and runs
  // one of these.  `exclude_name` drops one archive image from the
  // result (the query image itself for query-by-archive-image).

  /// Radius search by explicit code.
  std::vector<CbirResult> RadiusByCode(const BinaryCode& code, uint32_t radius,
                                       size_t max_results = 0,
                                       const std::string& exclude_name = {}) const;

  /// k-NN search by explicit code.
  std::vector<CbirResult> KnnByCode(const BinaryCode& code, size_t k,
                                    const std::string& exclude_name = {}) const;

  /// Candidate-restricted flavours: only images in `allowed` can be
  /// returned — the pre-filter leg of hybrid (metadata ∧ similarity)
  /// queries.
  std::vector<CbirResult> RadiusByCodeRestricted(
      const BinaryCode& code, uint32_t radius, size_t max_results,
      const index::CandidateSet& allowed,
      const std::string& exclude_name = {}) const;
  std::vector<CbirResult> KnnByCodeRestricted(
      const BinaryCode& code, size_t k, const index::CandidateSet& allowed,
      const std::string& exclude_name = {}) const;

  /// Opens a lazy ranked stream over the index (the streaming
  /// counterpart of the four code-level calls above).  `radius` set:
  /// radius search, `cap` = max_results (0 = unlimited).  `radius`
  /// empty: k-NN with `cap` = k (cap 0 streams nothing, matching
  /// KnnByCode).  `allowed` (may be null) restricts candidates and is
  /// pinned inside the stream.  The stream snapshots the index at open
  /// but borrows this service's name map — it must not outlive the
  /// service.
  std::unique_ptr<CbirHitStream> OpenStream(
      const BinaryCode& code, std::optional<uint32_t> radius, size_t cap,
      std::shared_ptr<const index::CandidateSet> allowed,
      const std::string& exclude_name = {}) const;

  /// Builds the ItemId allowlist for a set of patch names; names not in
  /// the CBIR index are skipped (they cannot be similarity hits anyway).
  index::CandidateSet CandidatesFromNames(
      const std::vector<std::string>& names) const;

  /// Featurises and hashes an uploaded patch (query-by-new-example
  /// subject resolution).  InvalidArgument when bands are missing.
  StatusOr<BinaryCode> HashPatch(const bigearthnet::Patch& patch) const;

  // --- batch queries -------------------------------------------------------
  //
  // Slot i of every batch result equals what the corresponding
  // single-query call would return for input i.  Index lookups are
  // sharded across the service's query pool.

  /// Batch query-by-archive-image: radius search for each named image.
  /// NotFound (whole batch) when any name is unknown.
  StatusOr<std::vector<std::vector<CbirResult>>> QueryBatchByName(
      const std::vector<std::string>& names, uint32_t radius,
      size_t max_results = 0) const;

  /// k-NN flavour of QueryBatchByName.
  StatusOr<std::vector<std::vector<CbirResult>>> KnnBatchByName(
      const std::vector<std::string>& names, size_t k) const;

  /// Batch query-by-feature over a [B, feature_dim] matrix: the whole
  /// batch goes through ONE MiLaN forward pass (amortising inference),
  /// then one sharded batch index search.
  StatusOr<std::vector<std::vector<CbirResult>>> QueryBatch(
      const Tensor& features, uint32_t radius, size_t max_results = 0);

  // --- batch code-level queries (the execution engine's micro-batch
  // --- entry points) -------------------------------------------------------
  //
  // Per-slot caps and excludes: slot i equals the corresponding single
  // code-level call with max_results[i] / exclude_names[i].  The
  // `max_results` and `exclude_names` vectors must match `codes` in
  // length.

  std::vector<std::vector<CbirResult>> RadiusBatchByCode(
      const std::vector<BinaryCode>& codes, uint32_t radius,
      const std::vector<size_t>& max_results,
      const std::vector<std::string>& exclude_names) const;
  std::vector<std::vector<CbirResult>> KnnBatchByCode(
      const std::vector<BinaryCode>& codes, size_t k,
      const std::vector<std::string>& exclude_names) const;
  /// Candidate-restricted flavours (micro-batched pre-filter hybrids:
  /// many query codes against one shared allowlist).
  std::vector<std::vector<CbirResult>> RadiusBatchByCodeRestricted(
      const std::vector<BinaryCode>& codes, uint32_t radius,
      const std::vector<size_t>& max_results,
      const index::CandidateSet& allowed,
      const std::vector<std::string>& exclude_names) const;
  std::vector<std::vector<CbirResult>> KnnBatchByCodeRestricted(
      const std::vector<BinaryCode>& codes, size_t k,
      const index::CandidateSet& allowed,
      const std::vector<std::string>& exclude_names) const;

  /// The stored code of an archive image.
  StatusOr<BinaryCode> CodeOf(const std::string& patch_name) const;

  size_t num_indexed() const { return name_by_id_.size(); }
  /// Every indexed name in ItemId (ingestion) order — the slot
  /// migration export walks this to collect a slot's members.
  const std::vector<std::string>& indexed_names() const {
    return name_by_id_;
  }
  const milan::MilanModel& model() const { return *model_; }
  index::HammingIndex& hamming_index() { return *index_; }
  const index::HammingIndex& hamming_index() const { return *index_; }
  /// The partition layer, when this service was built with
  /// config.num_shards > 1 (nullptr for a monolithic index).  Feeds the
  /// per-shard observability endpoint.
  const index::ShardedHammingIndex* sharded_index() const { return sharded_; }
  /// The segment layer of a MONOLITHIC service built with
  /// seal_threshold > 0 (nullptr otherwise; sharded services segment
  /// inside each shard instead — see sharded_index()).
  const index::SegmentedHammingIndex* segmented_index() const {
    return segmented_;
  }
  const CbirConfig& config() const { return config_; }
  const CbirPersistenceStats& persistence_stats() const { return pstats_; }
  /// Bytes appended to the index WAL since it was opened (0 without
  /// persistence) — the WAL-volume metric.
  uint64_t wal_bytes_appended() const { return wal_.bytes_appended(); }

  /// Wires the service's hot paths onto an observability bundle:
  /// per-shard index scan time, WAL sync latency and snapshot write
  /// latency land in `obs` histograms.  `obs` must outlive the service;
  /// null (or metrics disabled) leaves the service uninstrumented.
  void AttachObservability(obs::Observability* obs);

 private:
  // Field-by-field assembly instead of aggregate init: brace-initialising
  // CbirConfig with omitted members trips -Wmissing-field-initializers in
  // every including TU, despite the defaults.
  static CbirConfig LegacyConfig(CbirIndexKind index_kind,
                                 size_t query_threads) {
    CbirConfig config;
    config.index_kind = index_kind;
    config.query_threads = query_threads;
    return config;
  }

  std::vector<CbirResult> ToResults(
      const std::vector<index::SearchResult>& hits, size_t max_results,
      const std::string& exclude_name) const;

  /// The lazily created query pool (nullptr when query_threads == 1).
  ThreadPool* QueryPool() const;

  /// Which snapshot shard an item belongs to (matches index routing for
  /// sharded services; everything is shard 0 for monolithic ones).
  size_t SnapshotShardOf(index::ItemId id) const;

  /// Writes shard `s`'s snapshot from the in-memory maps at the current
  /// watermark (tmp + rename; see WriteIndexSnapshot).
  Status WriteShardSnapshot(size_t s);

  /// The seal-cadence auto-snapshot hook: refreshes any shard whose
  /// new-item counter crossed seal_threshold since its last snapshot.
  Status MaybeSnapshotShards();

  /// Logs one applied ingest batch and runs the snapshot cadence.
  Status LogIngest(index::ItemId first_seq,
                   const std::vector<std::string>& names,
                   const std::vector<BinaryCode>& codes);

  std::unique_ptr<milan::MilanModel> model_;
  const bigearthnet::FeatureExtractor* extractor_;
  CbirConfig config_;
  std::unique_ptr<index::HammingIndex> index_;
  /// Non-owning view of index_ as the partition layer; null when
  /// num_shards <= 1.
  index::ShardedHammingIndex* sharded_ = nullptr;
  /// Non-owning view of index_ as the segment layer; null unless
  /// monolithic with seal_threshold > 0.
  index::SegmentedHammingIndex* segmented_ = nullptr;
  /// Ingest log; open only after Recover() with a snapshot_dir.
  index::IndexWalWriter wal_;
  /// Items landed per shard since its last snapshot (snapshot cadence).
  std::vector<size_t> items_since_snapshot_;
  CbirPersistenceStats pstats_;
  /// Snapshot-write latency sink (null = untimed).
  obs::Histogram* snapshot_write_ = nullptr;
  mutable std::mutex pool_mu_;  ///< guards lazy pool creation
  mutable std::unique_ptr<ThreadPool> pool_;
  /// The paper's in-memory hash table: patch name -> binary code.
  std::unordered_map<std::string, BinaryCode> code_by_name_;
  std::vector<std::string> name_by_id_;  ///< ItemId -> patch name
  std::unordered_map<std::string, index::ItemId> id_by_name_;
};

}  // namespace agoraeo::earthqube

#endif  // AGORAEO_EARTHQUBE_CBIR_SERVICE_H_
