#ifndef AGORAEO_EARTHQUBE_CBIR_SERVICE_H_
#define AGORAEO_EARTHQUBE_CBIR_SERVICE_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"

#include "bigearthnet/feature_extractor.h"
#include "bigearthnet/patch.h"
#include "common/binary_code.h"
#include "common/status.h"
#include "index/hamming_index.h"
#include "index/sharded_index.h"
#include "milan/milan_model.h"

namespace agoraeo::earthqube {

/// Which nearest-neighbour structure backs the service.
enum class CbirIndexKind { kHashTable, kMultiIndex, kLinearScan, kBkTree };

/// Construction knobs of the CBIR service.
struct CbirConfig {
  CbirIndexKind index_kind = CbirIndexKind::kHashTable;
  /// Pool the batch queries (and sharded passes) run across: 0 picks the
  /// hardware concurrency, 1 disables threading.  Created lazily.
  size_t query_threads = 0;
  /// Partitions of the Hamming index.  1 (the default) builds the plain
  /// monolithic index — exactly the pre-partition behaviour; > 1 wraps
  /// `index_kind` into an N-way ShardedHammingIndex: ingest is
  /// parallelised per shard and every batched query pass fans out one
  /// task per shard across the query pool.
  size_t num_shards = 1;
};

/// One retrieved image.
struct CbirResult {
  std::string patch_name;
  uint32_t hamming_distance;
};

/// The content-based image-retrieval service (paper Section 3.3): MiLaN
/// infers a binary code per archive image; an in-memory map from patch
/// name to code supports query-by-archive-image, the model produces
/// codes on the fly for external images, and a Hamming index returns all
/// images within a small radius of the query code.
class CbirService {
 public:
  /// Takes ownership of the trained model.  `extractor` must outlive the
  /// service.  See CbirConfig for the index kind, query pool and
  /// partition knobs.
  CbirService(std::unique_ptr<milan::MilanModel> model,
              const bigearthnet::FeatureExtractor* extractor,
              CbirConfig config);

  /// Legacy constructor kept for the pre-partition call sites.
  CbirService(std::unique_ptr<milan::MilanModel> model,
              const bigearthnet::FeatureExtractor* extractor,
              CbirIndexKind index_kind = CbirIndexKind::kHashTable,
              size_t query_threads = 0)
      : CbirService(std::move(model), extractor,
                    CbirConfig{index_kind, query_threads, /*num_shards=*/1}) {}

  /// Indexes one archive image with a precomputed feature vector.
  Status AddImage(const std::string& patch_name, const Tensor& feature);

  /// Indexes a feature matrix aligned with `names` (row i = names[i]).
  Status AddImages(const std::vector<std::string>& names,
                   const Tensor& features);

  /// Query by an image already in the archive: looks the code up in the
  /// in-memory hash table (no model inference).  NotFound for unknown
  /// names.  Results exclude the query image itself.
  StatusOr<std::vector<CbirResult>> QueryByName(const std::string& patch_name,
                                                uint32_t radius,
                                                size_t max_results = 0) const;

  /// k-NN flavour of QueryByName.
  StatusOr<std::vector<CbirResult>> KnnByName(const std::string& patch_name,
                                              size_t k) const;

  /// Query by an external image (query-by-new-example): extracts
  /// features from pixels and infers the code on the fly.
  StatusOr<std::vector<CbirResult>> QueryByPatch(
      const bigearthnet::Patch& patch, uint32_t radius,
      size_t max_results = 0);

  /// Query by a raw feature vector (on-the-fly inference).
  std::vector<CbirResult> QueryByFeature(const Tensor& feature,
                                         uint32_t radius,
                                         size_t max_results = 0);

  // --- code-level queries (the unified executor's entry points) ------------
  //
  // Every query path above resolves its subject to a BinaryCode and runs
  // one of these.  `exclude_name` drops one archive image from the
  // result (the query image itself for query-by-archive-image).

  /// Radius search by explicit code.
  std::vector<CbirResult> RadiusByCode(const BinaryCode& code, uint32_t radius,
                                       size_t max_results = 0,
                                       const std::string& exclude_name = {}) const;

  /// k-NN search by explicit code.
  std::vector<CbirResult> KnnByCode(const BinaryCode& code, size_t k,
                                    const std::string& exclude_name = {}) const;

  /// Candidate-restricted flavours: only images in `allowed` can be
  /// returned — the pre-filter leg of hybrid (metadata ∧ similarity)
  /// queries.
  std::vector<CbirResult> RadiusByCodeRestricted(
      const BinaryCode& code, uint32_t radius, size_t max_results,
      const index::CandidateSet& allowed,
      const std::string& exclude_name = {}) const;
  std::vector<CbirResult> KnnByCodeRestricted(
      const BinaryCode& code, size_t k, const index::CandidateSet& allowed,
      const std::string& exclude_name = {}) const;

  /// Builds the ItemId allowlist for a set of patch names; names not in
  /// the CBIR index are skipped (they cannot be similarity hits anyway).
  index::CandidateSet CandidatesFromNames(
      const std::vector<std::string>& names) const;

  /// Featurises and hashes an uploaded patch (query-by-new-example
  /// subject resolution).  InvalidArgument when bands are missing.
  StatusOr<BinaryCode> HashPatch(const bigearthnet::Patch& patch) const;

  // --- batch queries -------------------------------------------------------
  //
  // Slot i of every batch result equals what the corresponding
  // single-query call would return for input i.  Index lookups are
  // sharded across the service's query pool.

  /// Batch query-by-archive-image: radius search for each named image.
  /// NotFound (whole batch) when any name is unknown.
  StatusOr<std::vector<std::vector<CbirResult>>> QueryBatchByName(
      const std::vector<std::string>& names, uint32_t radius,
      size_t max_results = 0) const;

  /// k-NN flavour of QueryBatchByName.
  StatusOr<std::vector<std::vector<CbirResult>>> KnnBatchByName(
      const std::vector<std::string>& names, size_t k) const;

  /// Batch query-by-feature over a [B, feature_dim] matrix: the whole
  /// batch goes through ONE MiLaN forward pass (amortising inference),
  /// then one sharded batch index search.
  StatusOr<std::vector<std::vector<CbirResult>>> QueryBatch(
      const Tensor& features, uint32_t radius, size_t max_results = 0);

  // --- batch code-level queries (the execution engine's micro-batch
  // --- entry points) -------------------------------------------------------
  //
  // Per-slot caps and excludes: slot i equals the corresponding single
  // code-level call with max_results[i] / exclude_names[i].  The
  // `max_results` and `exclude_names` vectors must match `codes` in
  // length.

  std::vector<std::vector<CbirResult>> RadiusBatchByCode(
      const std::vector<BinaryCode>& codes, uint32_t radius,
      const std::vector<size_t>& max_results,
      const std::vector<std::string>& exclude_names) const;
  std::vector<std::vector<CbirResult>> KnnBatchByCode(
      const std::vector<BinaryCode>& codes, size_t k,
      const std::vector<std::string>& exclude_names) const;
  /// Candidate-restricted flavours (micro-batched pre-filter hybrids:
  /// many query codes against one shared allowlist).
  std::vector<std::vector<CbirResult>> RadiusBatchByCodeRestricted(
      const std::vector<BinaryCode>& codes, uint32_t radius,
      const std::vector<size_t>& max_results,
      const index::CandidateSet& allowed,
      const std::vector<std::string>& exclude_names) const;
  std::vector<std::vector<CbirResult>> KnnBatchByCodeRestricted(
      const std::vector<BinaryCode>& codes, size_t k,
      const index::CandidateSet& allowed,
      const std::vector<std::string>& exclude_names) const;

  /// The stored code of an archive image.
  StatusOr<BinaryCode> CodeOf(const std::string& patch_name) const;

  size_t num_indexed() const { return name_by_id_.size(); }
  const milan::MilanModel& model() const { return *model_; }
  index::HammingIndex& hamming_index() { return *index_; }
  const index::HammingIndex& hamming_index() const { return *index_; }
  /// The partition layer, when this service was built with
  /// config.num_shards > 1 (nullptr for a monolithic index).  Feeds the
  /// per-shard observability endpoint.
  const index::ShardedHammingIndex* sharded_index() const { return sharded_; }
  const CbirConfig& config() const { return config_; }

 private:
  std::vector<CbirResult> ToResults(
      const std::vector<index::SearchResult>& hits, size_t max_results,
      const std::string& exclude_name) const;

  /// The lazily created query pool (nullptr when query_threads == 1).
  ThreadPool* QueryPool() const;

  std::unique_ptr<milan::MilanModel> model_;
  const bigearthnet::FeatureExtractor* extractor_;
  CbirConfig config_;
  std::unique_ptr<index::HammingIndex> index_;
  /// Non-owning view of index_ as the partition layer; null when
  /// num_shards <= 1.
  const index::ShardedHammingIndex* sharded_ = nullptr;
  mutable std::mutex pool_mu_;  ///< guards lazy pool creation
  mutable std::unique_ptr<ThreadPool> pool_;
  /// The paper's in-memory hash table: patch name -> binary code.
  std::unordered_map<std::string, BinaryCode> code_by_name_;
  std::vector<std::string> name_by_id_;  ///< ItemId -> patch name
  std::unordered_map<std::string, index::ItemId> id_by_name_;
};

}  // namespace agoraeo::earthqube

#endif  // AGORAEO_EARTHQUBE_CBIR_SERVICE_H_
