#ifndef AGORAEO_EARTHQUBE_QUERY_REQUEST_H_
#define AGORAEO_EARTHQUBE_QUERY_REQUEST_H_

#include <optional>
#include <string>
#include <vector>

#include "bigearthnet/patch.h"
#include "common/binary_code.h"
#include "common/status.h"
#include "docstore/collection.h"
#include "earthqube/cbir_service.h"
#include "earthqube/query.h"
#include "earthqube/result_panel.h"
#include "earthqube/statistics.h"

namespace agoraeo::earthqube {

/// The similarity half of a unified query: what to search near (exactly
/// one subject) and how (radius or k-NN, exactly one mode).
struct SimilaritySpec {
  /// Subject — exactly one must be set.
  std::optional<std::string> archive_name;  ///< query-by-archive-image
  std::optional<bigearthnet::Patch> patch;  ///< query-by-new-example
  std::optional<BinaryCode> code;           ///< query-by-raw-code

  /// Mode — exactly one must be set.
  std::optional<uint32_t> radius;
  std::optional<size_t> k;

  /// Cap on returned hits (0 = unlimited; ignored in k-NN mode where k
  /// already bounds the result).
  size_t limit = 0;

  static SimilaritySpec NameRadius(std::string name, uint32_t radius,
                                   size_t limit = 0);
  static SimilaritySpec NameKnn(std::string name, size_t k);
  static SimilaritySpec PatchRadius(bigearthnet::Patch patch, uint32_t radius,
                                    size_t limit = 0);
  static SimilaritySpec CodeRadius(BinaryCode code, uint32_t radius,
                                   size_t limit = 0);
  static SimilaritySpec CodeKnn(BinaryCode code, size_t k);

  /// InvalidArgument unless exactly one subject and exactly one mode are
  /// set (`radius` and `k` together are ambiguous and rejected).
  Status Validate() const;
};

/// What the response materialises.
enum class Projection {
  kFullPanel,  ///< metadata join: result panel + label statistics
  kHitsOnly,   ///< raw (name, distance) hits; no join, no statistics
};

/// Planner control: kAuto picks pre- vs post-filter from the estimated
/// filter selectivity; the force modes pin a strategy (tests and the
/// crossover benchmark rely on both producing identical result sets).
enum class PlannerMode { kAuto, kForcePreFilter, kForcePostFilter };

/// One unified query submission: optional metadata panel, optional
/// similarity spec (both present = hybrid filter ∧ similarity), paging
/// and projection.  At least one of panel/similarity must be present.
struct QueryRequest {
  std::optional<EarthQubeQuery> panel;
  std::optional<SimilaritySpec> similarity;
  Projection projection = Projection::kFullPanel;
  PlannerMode planner = PlannerMode::kAuto;
  /// 0-based page over the materialised result; `page_size` of 0
  /// disables paging (everything in one response, no cursor).
  size_t page = 0;
  size_t page_size = kPageSize;

  Status Validate() const;
};

/// The plan the executor chose, reported back to the caller.
struct QueryPlan {
  enum class Strategy {
    kPanelOnly,   ///< docstore query, no similarity
    kCbirOnly,    ///< similarity search, no metadata filter
    kPreFilter,   ///< filter -> candidate set -> restricted Hamming search
    kPostFilter,  ///< Hamming search -> metadata join -> filter
  };
  Strategy strategy = Strategy::kPanelOnly;
  std::string description;
  /// Hybrid only: estimated fraction of the collection matching the
  /// metadata filter (what the pre/post decision was based on).
  double estimated_selectivity = 1.0;
  size_t estimated_filter_matches = 0;
};

const char* StrategyToString(QueryPlan::Strategy strategy);

/// The unified response: the full materialised result (serialisation
/// slices it to the requested page), the plan, and a continuation
/// cursor.
struct QueryResponse {
  ResultPanel panel{std::vector<ResultEntry>{}};
  std::vector<CbirResult> hits;  ///< set for similarity queries
  LabelStatistics statistics;
  docstore::QueryStats query_stats;
  QueryPlan plan;
  Projection projection = Projection::kFullPanel;
  size_t page = 0;
  size_t page_size = kPageSize;
  /// Opaque continuation cursor for the next page; empty when this page
  /// exhausts the result.
  std::string cursor;
  /// Ranked direct access: `hits`/`panel` hold ONLY the requested
  /// window (the executor streamed just past it instead of
  /// materialising the full ranking).  The serialiser must not slice
  /// again, and the reported total is a lower bound:
  /// page*page_size + window + 1 iff a further page exists.
  bool windowed = false;
  /// Whether this response was served from the query-response cache.
  /// The only field that may differ between a cached response and the
  /// equivalent freshly executed one.
  bool served_from_cache = false;

  /// Total result count (panel entries, or raw hits for kHitsOnly).
  size_t total() const;
};

/// Paging cursor: an opaque token encoding (page, page_size) plus an
/// optional ranked-access handle id.  With a handle the next page
/// resumes the pinned shard-frontier stream (O(k log shards)); without
/// one — or when the handle is gone — the page re-executes statelessly.
struct PageCursor {
  size_t page = 0;
  size_t page_size = kPageSize;
  /// Ranked-access handle id (RankedAccess::HandleIdFor of the
  /// page-free request fingerprint); empty = stateless v2 cursor.
  std::string handle;
};

/// Emits the legacy v2 token when `handle` is empty, v3 otherwise.
std::string EncodeCursor(const PageCursor& cursor);
/// Accepts both v2 and v3 tokens.  Rejects tokens whose page window
/// would overflow size_t arithmetic (cursor payloads are
/// client-controlled).  Every rejection is InvalidArgument with a
/// "cursor: " message prefix.
StatusOr<PageCursor> DecodeCursor(const std::string& token);

/// Whether a status is a cursor-decoding rejection — InvalidArgument
/// with the "cursor: " prefix DecodeCursor stamps (the HTTP tier maps
/// these onto the 410 `cursor_expired` error envelope instead of a
/// generic 400).
bool IsCursorRejection(const Status& status);

}  // namespace agoraeo::earthqube

#endif  // AGORAEO_EARTHQUBE_QUERY_REQUEST_H_
