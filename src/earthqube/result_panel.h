#ifndef AGORAEO_EARTHQUBE_RESULT_PANEL_H_
#define AGORAEO_EARTHQUBE_RESULT_PANEL_H_

#include <set>
#include <string>
#include <vector>

#include "bigearthnet/patch.h"
#include "common/status.h"
#include "geo/geo.h"

namespace agoraeo::earthqube {

/// Maximum images EarthQube renders on the map at once (Section 3.1).
inline constexpr size_t kMaxRenderedImages = 1000;
/// Images per result-panel page / per add-to-cart operation.
inline constexpr size_t kPageSize = 50;

/// One row of the image-patches view.
struct ResultEntry {
  std::string name;
  bigearthnet::LabelSet labels;
  std::string country;
  std::string acquisition_date;
  geo::GeoPoint map_location;  ///< marker position (patch center)
};

/// Server-side model of the result panel (paper Section 3.1): the full
/// list of matches with pagination, the download cart that can combine
/// images from different searches, and the plain-text name export.
class ResultPanel {
 public:
  explicit ResultPanel(std::vector<ResultEntry> entries)
      : entries_(std::move(entries)) {}

  size_t total() const { return entries_.size(); }
  size_t num_pages() const { return (entries_.size() + kPageSize - 1) / kPageSize; }

  /// Entries of page `page` (0-based); empty past the end.
  std::vector<const ResultEntry*> Page(size_t page) const;

  /// The names of all retrieved images as a plain-text payload (one name
  /// per line) — the "download names as text file" button.
  std::string NamesAsText() const;

  /// Whether the render-on-map toggle is allowed for this result size.
  bool CanRenderOnMap() const { return entries_.size() <= kMaxRenderedImages; }

  const std::vector<ResultEntry>& entries() const { return entries_; }

  /// Finds an entry by patch name (nullptr when absent) — the pop-up
  /// "locate in result panel" button.
  const ResultEntry* FindByName(const std::string& name) const;

 private:
  std::vector<ResultEntry> entries_;
};

/// The download cart: images accumulated across searches, downloaded
/// together as a single collection.
class DownloadCart {
 public:
  /// Adds one image; duplicates are kept once.
  void Add(const std::string& name);

  /// Adds the current page (up to kPageSize entries) of a panel.
  void AddPage(const ResultPanel& panel, size_t page);

  bool Contains(const std::string& name) const;
  size_t size() const { return names_.size(); }
  void Clear() { names_.clear(); }

  /// Cart contents in insertion order.
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
  std::set<std::string> seen_;
};

/// A marker cluster group on the map (zoomed-out view): nearby markers
/// collapse into one cluster with a count.
struct MarkerCluster {
  geo::GeoPoint center;  ///< mean position of the clustered markers
  size_t count;
  std::vector<size_t> entry_indices;  ///< indices into the panel entries
};

/// Grid-based marker clustering, the algorithm behind the map view's
/// cluster groups.  `zoom` in [1, 18]: higher zoom means finer cells
/// (markers separate); at low zoom whole regions collapse together.
std::vector<MarkerCluster> ClusterMarkers(
    const std::vector<ResultEntry>& entries, int zoom);

}  // namespace agoraeo::earthqube

#endif  // AGORAEO_EARTHQUBE_RESULT_PANEL_H_
