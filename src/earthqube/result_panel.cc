#include "earthqube/result_panel.h"

#include <cmath>
#include <map>

namespace agoraeo::earthqube {

std::vector<const ResultEntry*> ResultPanel::Page(size_t page) const {
  std::vector<const ResultEntry*> out;
  const size_t begin = page * kPageSize;
  if (begin >= entries_.size()) return out;
  const size_t end = std::min(entries_.size(), begin + kPageSize);
  out.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) out.push_back(&entries_[i]);
  return out;
}

std::string ResultPanel::NamesAsText() const {
  std::string out;
  for (const ResultEntry& e : entries_) {
    out += e.name;
    out += '\n';
  }
  return out;
}

const ResultEntry* ResultPanel::FindByName(const std::string& name) const {
  for (const ResultEntry& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

void DownloadCart::Add(const std::string& name) {
  if (seen_.insert(name).second) names_.push_back(name);
}

void DownloadCart::AddPage(const ResultPanel& panel, size_t page) {
  for (const ResultEntry* e : panel.Page(page)) Add(e->name);
}

bool DownloadCart::Contains(const std::string& name) const {
  return seen_.count(name) != 0;
}

std::vector<MarkerCluster> ClusterMarkers(
    const std::vector<ResultEntry>& entries, int zoom) {
  // Cell size halves per zoom level, from 45 degrees at zoom 1 — the
  // usual web-map tile pyramid geometry.
  zoom = std::max(1, std::min(18, zoom));
  const double cell = 90.0 / std::pow(2.0, zoom);

  std::map<std::pair<int64_t, int64_t>, MarkerCluster> cells;
  for (size_t i = 0; i < entries.size(); ++i) {
    const geo::GeoPoint& p = entries[i].map_location;
    const auto key = std::make_pair(
        static_cast<int64_t>(std::floor(p.lat / cell)),
        static_cast<int64_t>(std::floor(p.lon / cell)));
    MarkerCluster& cluster = cells[key];
    cluster.center.lat += p.lat;
    cluster.center.lon += p.lon;
    ++cluster.count;
    cluster.entry_indices.push_back(i);
  }

  std::vector<MarkerCluster> out;
  out.reserve(cells.size());
  for (auto& [key, cluster] : cells) {
    cluster.center.lat /= static_cast<double>(cluster.count);
    cluster.center.lon /= static_cast<double>(cluster.count);
    out.push_back(std::move(cluster));
  }
  return out;
}

}  // namespace agoraeo::earthqube
