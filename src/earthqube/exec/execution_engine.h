#ifndef AGORAEO_EARTHQUBE_EXEC_EXECUTION_ENGINE_H_
#define AGORAEO_EARTHQUBE_EXEC_EXECUTION_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "earthqube/exec/exec_config.h"
#include "earthqube/query_request.h"
#include "obs/observability.h"

namespace agoraeo::earthqube {

class EarthQube;

/// The staged execution engine behind EarthQube::Execute.
///
/// Stages, in order:
///   1. validate/plan — EarthQube::PreflightCheck plus the canonical
///      request fingerprint (the coalescer's and cache's shared key).
///   2. coalescer (singleflight) — a submission whose fingerprint
///      matches an in-flight execution attaches to it as a waiter
///      instead of executing again; all waiters of a flight share one
///      shared_ptr<const QueryResponse>.
///   3. cache probe — flight leaders (only) probe the response and
///      negative caches, so N coalesced identical misses cost exactly
///      one cache miss and one execution.
///   4. admission queue + micro-batcher — worker threads pop flights;
///      distinct batchable misses (CBIR-only, or pre-filter hybrids
///      sharing a panel filter) that are in flight within one
///      time/size window are fused into one batched index pass.
///   5. per-request materialisation — each waiter materialises its own
///      QueryResponse copy from the shared result (Get / callback).
///
/// Thread-safe.  The engine owns its worker threads; destruction drains
/// the queue (every outstanding waiter is completed) and joins.
class ExecutionEngine {
 public:
  struct Waiter;

  /// Completion callback; invoked exactly once, on an engine worker (or
  /// inline on the submitting thread for admission-time completions:
  /// validation errors, cache hits, rejections).
  using Callback = std::function<void(const StatusOr<QueryResponse>&)>;

  /// A handle on one submission.  Get() blocks until the underlying
  /// flight completes and materialises this waiter's response copy.
  class Ticket {
   public:
    Ticket() = default;
    StatusOr<QueryResponse> Get();
    bool valid() const { return waiter_ != nullptr; }

   private:
    friend class ExecutionEngine;
    explicit Ticket(std::shared_ptr<Waiter> waiter)
        : waiter_(std::move(waiter)) {}
    std::shared_ptr<Waiter> waiter_;
  };

  /// `system` must outlive the engine (EarthQube owns its engine and
  /// declares it last, so it is destroyed first).  `obs` (optional,
  /// must outlive the engine) registers the engine's stage histograms,
  /// batch-size histogram and queue-depth gauge.
  ExecutionEngine(const EarthQube* system, const ExecConfig& config,
                  obs::Observability* obs = nullptr);
  ~ExecutionEngine();

  ExecutionEngine(const ExecutionEngine&) = delete;
  ExecutionEngine& operator=(const ExecutionEngine&) = delete;

  /// Submits one request; the returned ticket's Get() is the blocking
  /// flavour EarthQube::Execute wraps.  The traced overloads thread a
  /// per-request Trace through the engine's stages (admit, coalesce,
  /// cache probe, queue wait, batch wait, index pass, materialize);
  /// null trace is the untraced fast path.
  Ticket Submit(const QueryRequest& request) {
    return Submit(request, nullptr);
  }
  Ticket Submit(const QueryRequest& request,
                std::shared_ptr<obs::Trace> trace);

  /// Submits one request with a completion callback — the deferred
  /// netsvc pipeline's entry point.  The callback must not block for
  /// long and must not re-enter the engine synchronously with a Get().
  void SubmitAsync(const QueryRequest& request, Callback done) {
    SubmitAsync(request, nullptr, std::move(done));
  }
  void SubmitAsync(const QueryRequest& request,
                   std::shared_ptr<obs::Trace> trace, Callback done);

  /// Submits a whole batch under one admission gate: workers are paused
  /// until every request is admitted, so identical requests coalesce
  /// deterministically and distinct batchable requests are guaranteed
  /// to land in one micro-batch window.
  std::vector<Ticket> SubmitBatch(const std::vector<QueryRequest>& requests);

  /// Pauses/resumes the workers' queue consumption (admissions still
  /// proceed).  Nests; used by SubmitBatch and by tests/benches that
  /// need deterministic coalescing.
  void Pause();
  void Resume();

  ExecStats Stats() const;
  const ExecConfig& config() const { return config_; }

 private:
  struct Flight;

  /// Stage 1–3 for one request; returns the submission's waiter.
  std::shared_ptr<Waiter> Admit(const QueryRequest& request, Callback done,
                                std::shared_ptr<obs::Trace> trace = nullptr);

  /// Completes every waiter of a flight with a shared result and
  /// retires the flight from the coalescer map.
  void CompleteFlight(const std::shared_ptr<Flight>& flight,
                      const Status& status,
                      std::shared_ptr<const QueryResponse> response);
  void CompleteWaiter(const std::shared_ptr<Waiter>& waiter,
                      const Status& status,
                      std::shared_ptr<const QueryResponse> response);

  /// Records that a flight completion pre-warmed the response cache
  /// under `fingerprint`, so a later admission-time hit on it can be
  /// attributed to the flight drain (warm_from_flight_hits).
  void RecordFlightWarm(const std::optional<std::string>& fingerprint);
  /// Whether `fingerprint` was pre-warmed by a flight completion.
  bool WasWarmedByFlight(const std::optional<std::string>& fingerprint) const;

  void WorkerLoop();
  /// Moves every queued flight whose batch key matches into `group`
  /// (caller holds mu_).
  void CollectMatching(const std::string& key,
                       std::vector<std::shared_ptr<Flight>>* group);
  void ExecuteDirect(const std::shared_ptr<Flight>& flight);
  void ExecuteGroup(const std::vector<std::shared_ptr<Flight>>& group);
  void ExecuteCbirGroup(const std::vector<std::shared_ptr<Flight>>& group);
  void ExecuteHybridGroup(const std::vector<std::shared_ptr<Flight>>& group);

  const EarthQube* system_;
  const ExecConfig config_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<Flight>> queue_;
  /// Coalescer: fingerprint -> the in-flight execution to attach to.
  std::unordered_map<std::string, std::shared_ptr<Flight>> in_flight_;
  size_t paused_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;

  /// Fingerprints whose cache entries were written by flight
  /// completions; bounded (cleared when it grows past kWarmedSetCap) —
  /// it only feeds attribution counters, so dropping history merely
  /// undercounts warm_from_flight_hits.
  static constexpr size_t kWarmedSetCap = 4096;
  mutable std::mutex warmed_mu_;
  std::unordered_set<std::string> warmed_by_flight_;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> negative_hits_{0};
  std::atomic<uint64_t> coalesced_{0};
  std::atomic<uint64_t> flights_{0};
  std::atomic<uint64_t> direct_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> batched_flights_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> flight_warms_{0};
  std::atomic<uint64_t> warm_from_flight_hits_{0};

  /// Observability hooks; all null when the engine runs uninstrumented
  /// (each record site is one null check).
  obs::Histogram* stage_admit_ = nullptr;
  obs::Histogram* stage_cache_probe_ = nullptr;
  obs::Histogram* stage_queue_wait_ = nullptr;
  obs::Histogram* stage_batch_wait_ = nullptr;
  obs::Histogram* stage_index_pass_ = nullptr;
  obs::Histogram* request_total_ = nullptr;
  obs::Histogram* batch_size_ = nullptr;
  obs::Gauge* queue_depth_ = nullptr;
};

}  // namespace agoraeo::earthqube

#endif  // AGORAEO_EARTHQUBE_EXEC_EXECUTION_ENGINE_H_
