#include "earthqube/exec/execution_engine.h"

#include <algorithm>
#include <chrono>

#include "earthqube/earthqube.h"

namespace agoraeo::earthqube {

/// One submission: the synchronisation point its Ticket blocks on and
/// its optional completion callback.  All waiters of a flight share the
/// same shared_ptr<const QueryResponse>; Get()/the callback materialise
/// a per-request copy from it.
struct ExecutionEngine::Waiter {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Status status = Status::OK();
  std::shared_ptr<const QueryResponse> response;
  Callback callback;
  /// Per-request trace (null for the untraced fast path) and the
  /// submission timestamp the total-latency histogram measures from.
  std::shared_ptr<obs::Trace> trace;
  uint64_t submit_ns = 0;
};

/// One underlying execution.  `waiters` is guarded by the engine mutex:
/// the coalescer appends to it until CompleteFlight retires the flight
/// from the in-flight map and takes the list.
struct ExecutionEngine::Flight {
  QueryRequest request;
  std::optional<std::string> fingerprint;
  /// Micro-batch compatibility class; nullopt = not batchable (panel-
  /// only, uploaded-patch subject, or micro-batching disabled).
  std::optional<std::string> batch_key;
  /// Epoch at admission: a later submission only coalesces onto this
  /// flight while the epoch is unchanged — a request admitted after an
  /// ingest must not share a response computed from pre-ingest state
  /// (the coalescer mirror of the cache's snapshot-before-execute rule).
  uint64_t admission_epoch = 0;
  std::vector<std::shared_ptr<Waiter>> waiters;
  /// Stage timestamps (0 = stage never reached): queued, popped by a
  /// worker, and execution begun after any micro-batch window.
  uint64_t enqueue_ns = 0;
  uint64_t pop_ns = 0;
  uint64_t exec_start_ns = 0;
};

namespace {

/// The micro-batcher's compatibility class: flights with equal keys can
/// share one (restricted) batch index pass.  Mode value (radius/k) must
/// match because the index pass takes one of them; per-request limit,
/// projection and paging stay free — they are applied during
/// materialisation.  Hybrids additionally pin the panel filter (the
/// shared allowlist) and the planner mode (the shared strategy choice).
std::optional<std::string> BatchKeyFor(const QueryRequest& request) {
  if (!request.similarity.has_value()) return std::nullopt;
  const SimilaritySpec& spec = *request.similarity;
  if (spec.patch.has_value()) return std::nullopt;  // no cheap fingerprint
  if (!spec.archive_name.has_value() && !spec.code.has_value()) {
    return std::nullopt;
  }
  if (!spec.radius.has_value() && !spec.k.has_value()) return std::nullopt;
  std::string key = spec.radius.has_value()
                        ? "r:" + std::to_string(*spec.radius)
                        : "k:" + std::to_string(*spec.k);
  if (request.panel.has_value()) {
    key += "|h:" + std::to_string(static_cast<int>(request.planner)) + "|" +
           QueryCache::PanelFingerprint(*request.panel,
                                        /*include_limit=*/false);
  }
  return key;
}

}  // namespace

ExecutionEngine::ExecutionEngine(const EarthQube* system,
                                 const ExecConfig& config,
                                 obs::Observability* obs)
    : system_(system), config_(config) {
  if (obs != nullptr && obs->metrics_enabled()) {
    auto stage = [&](const char* name) {
      return obs->HistogramOrNull(
          obs::LabeledName("agoraeo_engine_stage_ns", "stage", name));
    };
    stage_admit_ = stage("admit");
    stage_cache_probe_ = stage("cache_probe");
    stage_queue_wait_ = stage("queue_wait");
    stage_batch_wait_ = stage("batch_wait");
    stage_index_pass_ = stage("index_pass");
    request_total_ = obs->HistogramOrNull("agoraeo_engine_request_ns");
    batch_size_ = obs->registry().GetHistogram("agoraeo_engine_batch_size",
                                               /*min_ns=*/1,
                                               /*max_ns=*/4096);
    queue_depth_ = obs->GaugeOrNull("agoraeo_engine_queue_depth");
  }
  size_t workers = config_.num_workers;
  if (workers == 0) {
    workers = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ExecutionEngine::~ExecutionEngine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    // A paused engine must still drain: no waiter may block forever.
    paused_ = 0;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

StatusOr<QueryResponse> ExecutionEngine::Ticket::Get() {
  if (waiter_ == nullptr) {
    return Status::FailedPrecondition("empty execution ticket");
  }
  std::unique_lock<std::mutex> lock(waiter_->mu);
  waiter_->cv.wait(lock, [&] { return waiter_->done; });
  if (!waiter_->status.ok()) return waiter_->status;
  // Per-request materialisation: each waiter copies the shared
  // response (identical fingerprints imply identical paging and
  // projection, so the copy IS the materialised result).
  obs::ScopedSpan materialize_span(waiter_->trace.get(), "materialize");
  return QueryResponse(*waiter_->response);
}

void ExecutionEngine::CompleteWaiter(
    const std::shared_ptr<Waiter>& waiter, const Status& status,
    std::shared_ptr<const QueryResponse> response) {
  {
    std::lock_guard<std::mutex> lock(waiter->mu);
    waiter->done = true;
    waiter->status = status;
    waiter->response = std::move(response);
  }
  waiter->cv.notify_all();
  if (request_total_ != nullptr && waiter->submit_ns != 0) {
    request_total_->Record(obs::NowNanos() - waiter->submit_ns);
  }
  if (waiter->callback) {
    if (waiter->status.ok()) {
      const uint64_t materialize_start =
          waiter->trace != nullptr ? obs::NowNanos() : 0;
      StatusOr<QueryResponse> materialized(QueryResponse(*waiter->response));
      if (waiter->trace != nullptr) {
        waiter->trace->AddSpanEndingNow("materialize", materialize_start);
      }
      waiter->callback(materialized);
    } else {
      waiter->callback(StatusOr<QueryResponse>(waiter->status));
    }
    waiter->callback = nullptr;
  }
}

void ExecutionEngine::CompleteFlight(
    const std::shared_ptr<Flight>& flight, const Status& status,
    std::shared_ptr<const QueryResponse> response) {
  std::vector<std::shared_ptr<Waiter>> waiters;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (flight->fingerprint.has_value()) {
      auto it = in_flight_.find(*flight->fingerprint);
      if (it != in_flight_.end() && it->second == flight) in_flight_.erase(it);
    }
    waiters.swap(flight->waiters);
  }
  completed_.fetch_add(waiters.size());

  // Queue-stage observability, once per flight: durations into the
  // stage histograms, spans onto every traced waiter.
  const bool any_traced = [&] {
    for (const auto& waiter : waiters) {
      if (waiter->trace != nullptr) return true;
    }
    return false;
  }();
  if (flight->enqueue_ns != 0 &&
      (any_traced || stage_queue_wait_ != nullptr)) {
    const uint64_t end_ns = obs::NowNanos();
    const uint64_t pop_ns =
        flight->pop_ns != 0 ? flight->pop_ns : end_ns;
    const uint64_t exec_ns =
        flight->exec_start_ns != 0 ? flight->exec_start_ns : pop_ns;
    if (stage_queue_wait_ != nullptr) {
      stage_queue_wait_->Record(pop_ns - flight->enqueue_ns);
    }
    if (stage_batch_wait_ != nullptr && exec_ns > pop_ns) {
      stage_batch_wait_->Record(exec_ns - pop_ns);
    }
    if (stage_index_pass_ != nullptr) {
      stage_index_pass_->Record(end_ns - exec_ns);
    }
    for (const std::shared_ptr<Waiter>& waiter : waiters) {
      if (waiter->trace == nullptr) continue;
      waiter->trace->AddSpan("queue_wait", flight->enqueue_ns,
                             pop_ns - flight->enqueue_ns);
      if (exec_ns > pop_ns) {
        waiter->trace->AddSpan("batch_wait", pop_ns, exec_ns - pop_ns);
      }
      waiter->trace->AddSpan("index_pass", exec_ns, end_ns - exec_ns);
    }
  }
  for (const std::shared_ptr<Waiter>& waiter : waiters) {
    CompleteWaiter(waiter, status, response);
  }
}

std::shared_ptr<ExecutionEngine::Waiter> ExecutionEngine::Admit(
    const QueryRequest& request, Callback done,
    std::shared_ptr<obs::Trace> trace) {
  auto waiter = std::make_shared<Waiter>();
  waiter->callback = std::move(done);
  waiter->trace = std::move(trace);
  const bool timing = waiter->trace != nullptr || stage_admit_ != nullptr ||
                      request_total_ != nullptr;
  const uint64_t admit_start = timing ? obs::NowNanos() : 0;
  waiter->submit_ns = admit_start;
  submitted_.fetch_add(1);

  // Closes the admission stage: histogram + "admit" span cover
  // validation, fingerprinting, and the coalesce/enqueue decision.
  // Returns the stage's end timestamp so the next stage can reuse it
  // instead of re-reading the clock on the warm path.
  auto finish_admit_stage = [&]() -> uint64_t {
    if (admit_start == 0) return 0;
    const uint64_t now = obs::NowNanos();
    if (stage_admit_ != nullptr) {
      stage_admit_->Record(now - admit_start);
    }
    if (waiter->trace != nullptr) {
      waiter->trace->AddSpan("admit", admit_start, now - admit_start);
    }
    return now;
  };

  // Stage 1: validate.  Admission failures complete inline.
  const Status preflight = system_->PreflightCheck(request);
  if (!preflight.ok()) {
    finish_admit_stage();
    completed_.fetch_add(1);
    CompleteWaiter(waiter, preflight, nullptr);
    return waiter;
  }
  const std::optional<std::string> fingerprint =
      QueryCache::RequestFingerprint(request);
  const uint64_t epoch = system_->query_cache().epoch();

  // Stage 2: coalesce.  Checked before the cache probe so N identical
  // concurrent misses cost exactly one cache miss (the leader's).
  std::shared_ptr<Flight> flight;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      finish_admit_stage();
      completed_.fetch_add(1);
      CompleteWaiter(waiter,
                     Status::FailedPrecondition("execution engine shut down"),
                     nullptr);
      return waiter;
    }
    bool register_in_flight = config_.coalesce && fingerprint.has_value();
    if (register_in_flight) {
      auto it = in_flight_.find(*fingerprint);
      if (it != in_flight_.end()) {
        // Only share a flight admitted under the current epoch: after
        // an ingest, this submission must observe post-ingest state.
        if (it->second->admission_epoch == epoch) {
          it->second->waiters.push_back(waiter);
          coalesced_.fetch_add(1);
          if (waiter->trace != nullptr) {
            waiter->trace->AddSpanEndingNow("coalesce", admit_start);
          }
          if (stage_admit_ != nullptr && admit_start != 0) {
            stage_admit_->Record(obs::NowNanos() - admit_start);
          }
          return waiter;
        }
        register_in_flight = false;  // stale twin keeps the map slot
      }
    }
    if (queue_.size() >= config_.max_queue) {
      finish_admit_stage();
      rejected_.fetch_add(1);
      completed_.fetch_add(1);
      CompleteWaiter(
          waiter,
          Status::FailedPrecondition("execution engine admission queue full"),
          nullptr);
      return waiter;
    }
    flight = std::make_shared<Flight>();
    flight->request = request;
    flight->fingerprint = fingerprint;
    if (config_.micro_batch) flight->batch_key = BatchKeyFor(request);
    flight->admission_epoch = epoch;
    flight->waiters.push_back(waiter);
    if (register_in_flight) in_flight_[*fingerprint] = flight;
  }

  const uint64_t admit_end = finish_admit_stage();

  // Stage 3: leader-only cache probe.  Followers that attached above
  // (or attach while we probe) share the outcome.
  const uint64_t probe_start =
      waiter->trace != nullptr || stage_cache_probe_ != nullptr
          ? (admit_end != 0 ? admit_end : obs::NowNanos())
          : 0;
  auto finish_probe_stage = [&] {
    if (probe_start == 0) return;
    if (stage_cache_probe_ != nullptr) {
      stage_cache_probe_->Record(obs::NowNanos() - probe_start);
    }
    if (waiter->trace != nullptr) {
      waiter->trace->AddSpanEndingNow("cache_probe", probe_start);
    }
  };
  if (auto probed = system_->ProbeCaches(request, fingerprint)) {
    finish_probe_stage();
    if (probed->ok()) {
      cache_hits_.fetch_add(1);
      // Attribute the hit when a flight completion wrote the entry —
      // the pre-warm drain (satellite of the coalescer): waiters of the
      // original flight shared its response, and everyone after them is
      // served here without ever reaching the queue.
      if (WasWarmedByFlight(fingerprint)) {
        warm_from_flight_hits_.fetch_add(1);
      }
      CompleteFlight(flight, Status::OK(),
                     std::make_shared<const QueryResponse>(
                         std::move(probed->value())));
    } else {
      negative_hits_.fetch_add(1);
      CompleteFlight(flight, probed->status(), nullptr);
    }
    return waiter;
  }

  finish_probe_stage();

  // Stage 4: enqueue for the workers.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (timing || stage_queue_wait_ != nullptr) {
      flight->enqueue_ns = obs::NowNanos();
    }
    queue_.push_back(std::move(flight));
    flights_.fetch_add(1);
    if (queue_depth_ != nullptr) {
      queue_depth_->Set(static_cast<int64_t>(queue_.size()));
    }
  }
  work_cv_.notify_all();
  return waiter;
}

ExecutionEngine::Ticket ExecutionEngine::Submit(
    const QueryRequest& request, std::shared_ptr<obs::Trace> trace) {
  return Ticket(Admit(request, nullptr, std::move(trace)));
}

void ExecutionEngine::SubmitAsync(const QueryRequest& request,
                                  std::shared_ptr<obs::Trace> trace,
                                  Callback done) {
  Admit(request, std::move(done), std::move(trace));
}

std::vector<ExecutionEngine::Ticket> ExecutionEngine::SubmitBatch(
    const std::vector<QueryRequest>& requests) {
  std::vector<Ticket> out;
  out.reserve(requests.size());
  Pause();
  for (const QueryRequest& request : requests) {
    out.push_back(Ticket(Admit(request, nullptr)));
  }
  Resume();
  return out;
}

void ExecutionEngine::Pause() {
  std::lock_guard<std::mutex> lock(mu_);
  ++paused_;
}

void ExecutionEngine::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (paused_ > 0) --paused_;
  }
  work_cv_.notify_all();
}

void ExecutionEngine::CollectMatching(
    const std::string& key, std::vector<std::shared_ptr<Flight>>* group) {
  for (auto it = queue_.begin();
       it != queue_.end() && group->size() < config_.max_batch;) {
    if ((*it)->batch_key == key) {
      if ((*it)->enqueue_ns != 0) (*it)->pop_ns = obs::NowNanos();
      group->push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
}

void ExecutionEngine::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] {
      return shutdown_ || (!queue_.empty() && paused_ == 0);
    });
    if (queue_.empty()) {
      if (shutdown_) return;  // fully drained
      continue;
    }
    std::shared_ptr<Flight> flight = std::move(queue_.front());
    queue_.pop_front();
    if (flight->enqueue_ns != 0) flight->pop_ns = obs::NowNanos();
    const bool queue_was_empty = queue_.empty();

    std::vector<std::shared_ptr<Flight>> group;
    group.push_back(std::move(flight));
    if (group.front()->batch_key.has_value()) {
      const std::string key = *group.front()->batch_key;
      CollectMatching(key, &group);
      // Wait out the window only when there was concurrent traffic at
      // pop time (a lone request on an idle engine runs immediately)
      // AND nothing incompatible is left queued — the window must never
      // stall other pending work behind this worker.
      if (!shutdown_ && group.size() < config_.max_batch &&
          config_.batch_window_us > 0 && !queue_was_empty &&
          queue_.empty()) {
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::microseconds(config_.batch_window_us);
        while (!shutdown_ && group.size() < config_.max_batch &&
               queue_.empty() &&
               work_cv_.wait_until(lock, deadline) !=
                   std::cv_status::timeout) {
          CollectMatching(key, &group);
        }
        CollectMatching(key, &group);
      }
    }

    // Gate execution on Resume: flights collected while an admission
    // gate (SubmitBatch) is paused must not complete before the rest of
    // the batch is admitted, or identical slots would miss the
    // coalescer and re-execute.
    work_cv_.wait(lock, [&] { return shutdown_ || paused_ == 0; });
    if (queue_depth_ != nullptr) {
      queue_depth_->Set(static_cast<int64_t>(queue_.size()));
    }
    lock.unlock();
    if (batch_size_ != nullptr) {
      batch_size_->Record(static_cast<uint64_t>(group.size()));
    }
    {
      bool any_timed = false;
      for (const std::shared_ptr<Flight>& member : group) {
        if (member->enqueue_ns != 0) { any_timed = true; break; }
      }
      if (any_timed) {
        const uint64_t exec_start = obs::NowNanos();
        for (const std::shared_ptr<Flight>& member : group) {
          if (member->enqueue_ns != 0) member->exec_start_ns = exec_start;
        }
      }
    }
    if (group.size() > 1) {
      ExecuteGroup(group);
    } else {
      direct_.fetch_add(1);
      ExecuteDirect(group.front());
    }
    lock.lock();
  }
}

void ExecutionEngine::RecordFlightWarm(
    const std::optional<std::string>& fingerprint) {
  if (!fingerprint.has_value()) return;
  flight_warms_.fetch_add(1);
  std::lock_guard<std::mutex> lock(warmed_mu_);
  if (warmed_by_flight_.size() >= kWarmedSetCap) warmed_by_flight_.clear();
  warmed_by_flight_.insert(*fingerprint);
}

bool ExecutionEngine::WasWarmedByFlight(
    const std::optional<std::string>& fingerprint) const {
  if (!fingerprint.has_value()) return false;
  std::lock_guard<std::mutex> lock(warmed_mu_);
  return warmed_by_flight_.count(*fingerprint) != 0;
}

void ExecutionEngine::ExecuteDirect(const std::shared_ptr<Flight>& flight) {
  // The response-cache Put happens inside ExecuteAndCache, BEFORE the
  // waiters wake below: by the time any waiter observes completion, the
  // next identical request is already a cache hit.
  bool cached = false;
  StatusOr<QueryResponse> result =
      system_->ExecuteAndCache(flight->request, flight->fingerprint, &cached);
  if (cached) RecordFlightWarm(flight->fingerprint);
  if (result.ok()) {
    CompleteFlight(flight, Status::OK(),
                   std::make_shared<const QueryResponse>(
                       std::move(result).value()));
  } else {
    CompleteFlight(flight, result.status(), nullptr);
  }
}

void ExecutionEngine::ExecuteGroup(
    const std::vector<std::shared_ptr<Flight>>& group) {
  if (group.front()->request.panel.has_value()) {
    ExecuteHybridGroup(group);
  } else {
    ExecuteCbirGroup(group);
  }
}

void ExecutionEngine::ExecuteCbirGroup(
    const std::vector<std::shared_ptr<Flight>>& group) {
  batches_.fetch_add(1);
  batched_flights_.fetch_add(group.size());
  const CbirService* cbir = system_->cbir();
  // Epoch snapshot before any index read, one per shared pass.
  const uint64_t epoch_snapshot = system_->query_cache().epoch();

  // Resolve each flight's subject; NotFound names fail (and negative-
  // cache) individually instead of poisoning the batch.
  std::vector<std::shared_ptr<Flight>> live;
  std::vector<BinaryCode> codes;
  std::vector<size_t> limits;
  std::vector<std::string> excludes;
  live.reserve(group.size());
  codes.reserve(group.size());
  for (const std::shared_ptr<Flight>& flight : group) {
    const SimilaritySpec& spec = *flight->request.similarity;
    if (spec.archive_name.has_value()) {
      StatusOr<BinaryCode> code = cbir->CodeOf(*spec.archive_name);
      if (!code.ok()) {
        system_->MaybeCacheNegative(flight->request, flight->fingerprint,
                                    code.status(), epoch_snapshot);
        CompleteFlight(flight, code.status(), nullptr);
        continue;
      }
      codes.push_back(std::move(code).value());
      excludes.push_back(*spec.archive_name);
    } else {
      codes.push_back(*spec.code);
      excludes.push_back(std::string());
    }
    limits.push_back(spec.limit);
    live.push_back(flight);
  }
  if (live.empty()) return;

  const SimilaritySpec& mode = *live.front()->request.similarity;
  std::vector<std::vector<CbirResult>> hit_lists =
      mode.radius.has_value()
          ? cbir->RadiusBatchByCode(codes, *mode.radius, limits, excludes)
          : cbir->KnnBatchByCode(codes, *mode.k, excludes);

  for (size_t i = 0; i < live.size(); ++i) {
    StatusOr<QueryResponse> response = system_->BuildCbirResponse(
        live[i]->request, std::move(hit_lists[i]), epoch_snapshot);
    if (response.ok()) {
      if (system_->CacheResponse(live[i]->request, live[i]->fingerprint,
                                 *response, epoch_snapshot)) {
        RecordFlightWarm(live[i]->fingerprint);
      }
      CompleteFlight(live[i], Status::OK(),
                     std::make_shared<const QueryResponse>(
                         std::move(response).value()));
    } else {
      CompleteFlight(live[i], response.status(), nullptr);
    }
  }
}

void ExecutionEngine::ExecuteHybridGroup(
    const std::vector<std::shared_ptr<Flight>>& group) {
  const CbirService* cbir = system_->cbir();
  const QueryRequest& representative = group.front()->request;
  const docstore::Filter filter = representative.panel->ToFilter(
      system_->config().label_encoding == LabelEncoding::kAsciiCompressed);
  // Same panel fingerprint and planner mode across the group implies
  // one shared plan (the estimate is deterministic for a given filter).
  const EarthQube::HybridPlanInfo plan =
      system_->PlanHybrid(representative, filter);
  if (plan.strategy != QueryPlan::Strategy::kPreFilter) {
    // Post-filter hybrids have no shared index pass; run them directly.
    direct_.fetch_add(group.size());
    for (const std::shared_ptr<Flight>& flight : group) ExecuteDirect(flight);
    return;
  }
  batches_.fetch_add(1);
  batched_flights_.fetch_add(group.size());

  const uint64_t epoch_snapshot = system_->query_cache().epoch();
  StatusOr<std::shared_ptr<const CachedAllowlist>> allowlist =
      system_->ObtainAllowlist(*representative.panel, filter);
  if (!allowlist.ok()) {
    for (const std::shared_ptr<Flight>& flight : group) {
      CompleteFlight(flight, allowlist.status(), nullptr);
    }
    return;
  }

  std::vector<std::shared_ptr<Flight>> live;
  std::vector<BinaryCode> codes;
  std::vector<size_t> limits;
  std::vector<std::string> excludes;
  live.reserve(group.size());
  codes.reserve(group.size());
  for (const std::shared_ptr<Flight>& flight : group) {
    const SimilaritySpec& spec = *flight->request.similarity;
    if (spec.archive_name.has_value()) {
      StatusOr<BinaryCode> code = cbir->CodeOf(*spec.archive_name);
      if (!code.ok()) {
        system_->MaybeCacheNegative(flight->request, flight->fingerprint,
                                    code.status(), epoch_snapshot);
        CompleteFlight(flight, code.status(), nullptr);
        continue;
      }
      codes.push_back(std::move(code).value());
      excludes.push_back(*spec.archive_name);
    } else {
      codes.push_back(*spec.code);
      excludes.push_back(std::string());
    }
    limits.push_back(spec.limit);
    live.push_back(flight);
  }
  if (live.empty()) return;

  const SimilaritySpec& mode = *live.front()->request.similarity;
  const index::CandidateSet& allowed = (*allowlist)->candidates;
  std::vector<std::vector<CbirResult>> hit_lists =
      mode.radius.has_value()
          ? cbir->RadiusBatchByCodeRestricted(codes, *mode.radius, limits,
                                              allowed, excludes)
          : cbir->KnnBatchByCodeRestricted(codes, *mode.k, allowed, excludes);

  for (size_t i = 0; i < live.size(); ++i) {
    StatusOr<QueryResponse> response = system_->BuildHybridPreResponse(
        live[i]->request, plan, **allowlist, std::move(hit_lists[i]),
        epoch_snapshot);
    if (response.ok()) {
      if (system_->CacheResponse(live[i]->request, live[i]->fingerprint,
                                 *response, epoch_snapshot)) {
        RecordFlightWarm(live[i]->fingerprint);
      }
      CompleteFlight(live[i], Status::OK(),
                     std::make_shared<const QueryResponse>(
                         std::move(response).value()));
    } else {
      CompleteFlight(live[i], response.status(), nullptr);
    }
  }
}

ExecStats ExecutionEngine::Stats() const {
  ExecStats stats;
  stats.submitted = submitted_.load();
  stats.completed = completed_.load();
  stats.cache_hits = cache_hits_.load();
  stats.negative_hits = negative_hits_.load();
  stats.coalesced = coalesced_.load();
  stats.flights = flights_.load();
  stats.direct = direct_.load();
  stats.batches = batches_.load();
  stats.batched_flights = batched_flights_.load();
  stats.rejected = rejected_.load();
  stats.flight_warms = flight_warms_.load();
  stats.warm_from_flight_hits = warm_from_flight_hits_.load();
  return stats;
}

}  // namespace agoraeo::earthqube
