#ifndef AGORAEO_EARTHQUBE_EXEC_EXEC_CONFIG_H_
#define AGORAEO_EARTHQUBE_EXEC_EXEC_CONFIG_H_

#include <cstddef>
#include <cstdint>

namespace agoraeo::earthqube {

/// Knobs of the staged execution engine (EarthQubeConfig::exec).
///
/// The engine turns EarthQube::Execute from a per-caller synchronous
/// path into a staged pipeline — validate/plan, admission queue,
/// fingerprint-keyed coalescer, micro-batcher, per-request
/// materialisation — so concurrent interactive traffic shares work
/// instead of repeating it.
struct ExecConfig {
  /// Master switch.  Off = every entry point executes synchronously on
  /// the caller's thread (the pre-engine behaviour); the async facade
  /// methods then complete inline.
  bool enable = true;
  /// Singleflight: concurrent requests with identical canonical
  /// fingerprints collapse onto one in-flight execution and share the
  /// resulting response.
  bool coalesce = true;
  /// Micro-batching: distinct in-flight CBIR/hybrid misses with
  /// compatible shapes (same radius/k; for hybrids the same panel
  /// filter and planner mode) run through one batched index pass.
  bool micro_batch = true;
  /// How long a worker holding a batchable miss waits for further
  /// compatible misses before executing.  The window is only waited out
  /// when the admission queue was non-empty at pop time (i.e. there is
  /// concurrent traffic); a lone request on an idle engine executes
  /// immediately, so single-client latency does not pay the window.
  uint32_t batch_window_us = 200;
  /// Largest number of distinct requests fused into one batched pass.
  size_t max_batch = 128;
  /// Engine worker threads; 0 picks the hardware concurrency.
  size_t num_workers = 0;
  /// Admission-queue depth bound; submissions beyond it are rejected
  /// with FailedPrecondition instead of queueing unboundedly.
  size_t max_queue = 4096;
};

/// Lifetime counters of one engine, aggregated by ExecutionEngine::
/// Stats().  All counters are monotonic.
struct ExecStats {
  uint64_t submitted = 0;      ///< requests admitted via Submit*
  uint64_t completed = 0;      ///< waiters completed (incl. errors)
  uint64_t cache_hits = 0;     ///< flights served from the response cache
  uint64_t negative_hits = 0;  ///< flights served from the negative cache
  uint64_t coalesced = 0;      ///< waiters attached to an in-flight twin
  uint64_t flights = 0;        ///< underlying executions enqueued
  uint64_t direct = 0;         ///< flights executed alone
  uint64_t batches = 0;        ///< micro-batched index passes
  uint64_t batched_flights = 0;  ///< flights served by those passes
  uint64_t rejected = 0;       ///< submissions bounced off the full queue
  /// Flight completions whose shared response was admitted to the
  /// response cache before the waiters woke (the coalescer's pre-warm
  /// drain: the next identical request is a cache hit, not a flight).
  uint64_t flight_warms = 0;
  /// Admission-time response-cache hits whose entry was written by a
  /// flight completion (proof the pre-warm path serves real traffic).
  uint64_t warm_from_flight_hits = 0;
};

}  // namespace agoraeo::earthqube

#endif  // AGORAEO_EARTHQUBE_EXEC_EXEC_CONFIG_H_
