#ifndef AGORAEO_EARTHQUBE_QUERY_CACHE_H_
#define AGORAEO_EARTHQUBE_QUERY_CACHE_H_

#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "common/status.h"

#include "cache/cache_stats.h"
#include "cache/epoch.h"
#include "cache/sharded_lru_cache.h"
#include "docstore/collection.h"
#include "earthqube/query_request.h"
#include "index/hamming_index.h"

namespace agoraeo::earthqube {

/// Knobs of EarthQube's two query-path caches (EarthQubeConfig::cache).
struct QueryCacheConfig {
  /// Response cache: whole QueryResponses keyed by a canonical request
  /// fingerprint (CBIR-only and hybrid requests; paging-aware).
  bool enable_response_cache = true;
  /// Allowlist cache: the hybrid pre-filter leg's (panel filter ->
  /// CandidateSet) product, keyed by the panel-filter fingerprint, so
  /// repeated pre-filter hybrids skip the docstore filter pass.
  bool enable_allowlist_cache = true;
  /// Negative cache: NotFound similarity subjects (bad archive names)
  /// are remembered under a short TTL so repeated bad lookups don't
  /// touch the docstore or index.  Counted separately in the stats.
  bool enable_negative_cache = true;
  size_t response_capacity_bytes = 64u << 20;
  size_t allowlist_capacity_bytes = 16u << 20;
  size_t negative_capacity_bytes = 1u << 20;
  /// Shards per cache (rounded up to a power of two).
  size_t num_shards = 16;
  /// Age limit for entries in the response and allowlist caches; zero
  /// keeps entries until an epoch bump or LRU pressure removes them.
  std::chrono::milliseconds ttl{0};
  /// Age limit for negative entries.  Deliberately short: the epoch
  /// catches ingests through this facade, the TTL bounds how long a
  /// name that appeared through any other path keeps "not existing".
  std::chrono::milliseconds negative_ttl{2000};
  /// Time source for TTL bookkeeping across all three caches; tests
  /// inject a fake clock to avoid sleeping.  Null = steady_clock.
  std::function<std::chrono::steady_clock::time_point()> clock;
};

/// What the hybrid pre-filter leg caches per panel filter: the candidate
/// allowlist plus the docstore stats of the filter pass that produced
/// it.  The stats are replayed on a hit so a cached-allowlist response
/// stays byte-identical to an uncached one.
struct CachedAllowlist {
  index::CandidateSet candidates;
  docstore::QueryStats filter_stats;
};

/// EarthQube's query-cache subsystem: a response cache and an allowlist
/// cache over one shared EpochValidator.  Any archive mutation bumps the
/// epoch, lazily invalidating every entry of both caches without a
/// sweep.  Thread-safe; Get/Put may race with Invalidate freely.
class QueryCache {
 public:
  explicit QueryCache(const QueryCacheConfig& config);

  /// Canonical fingerprint of a panel query's filter semantics.
  /// `include_limit` distinguishes the response-cache use (limit changes
  /// the materialised panel) from the allowlist-cache use (the hybrid
  /// pre-filter pass ignores the panel limit).
  static std::string PanelFingerprint(const EarthQubeQuery& query,
                                      bool include_limit = true);

  /// Canonical fingerprint of a full request, covering the panel, the
  /// similarity spec, projection, planner mode and paging — requests
  /// with equal fingerprints produce byte-identical responses.
  /// nullopt for uploaded-patch subjects (hashing raw pixels would cost
  /// as much as the inference the cache is meant to skip).
  static std::optional<std::string> RequestFingerprint(
      const QueryRequest& request);

  /// Byte estimate of a response's heap footprint, for cache accounting.
  static size_t ApproxResponseBytes(const QueryResponse& response);

  // --- response cache ------------------------------------------------------
  //
  // Both Puts take the epoch snapshotted BEFORE the value was computed
  // (see ShardedLruCache::Put): a mutation racing the execution then
  // leaves the entry stale instead of serving pre-mutation data as
  // fresh.

  /// Returns the cached response (served_from_cache still false — the
  /// caller copies and flags it), or null on miss / cache disabled.
  std::shared_ptr<const QueryResponse> GetResponse(
      const std::string& fingerprint);
  /// Returns whether the response was admitted (false when the cache is
  /// disabled or the entry exceeds a shard's budget) — the engine's
  /// flight pre-warm counters hang off this.
  bool PutResponse(const std::string& fingerprint,
                   const QueryResponse& response, uint64_t computed_at_epoch);

  // --- allowlist cache -----------------------------------------------------

  std::shared_ptr<const CachedAllowlist> GetAllowlist(
      const std::string& fingerprint);
  void PutAllowlist(const std::string& fingerprint,
                    std::shared_ptr<const CachedAllowlist> allowlist,
                    uint64_t computed_at_epoch);

  // --- negative cache ------------------------------------------------------

  /// Returns the remembered NotFound for a request fingerprint, or
  /// nullopt on miss / cache disabled.
  std::optional<Status> GetNegative(const std::string& fingerprint);
  /// Remembers a NotFound outcome (non-NotFound statuses are ignored).
  void PutNegative(const std::string& fingerprint, const Status& status,
                   uint64_t computed_at_epoch);

  // --- invalidation & introspection ---------------------------------------

  /// Bumps the shared epoch: every currently cached entry of both caches
  /// becomes stale and is dropped lazily on its next access.
  void Invalidate() { epoch_.Bump(); }
  uint64_t epoch() const { return epoch_.Current(); }

  cache::CacheStats ResponseStats() const { return responses_.Stats(); }
  cache::CacheStats AllowlistStats() const { return allowlists_.Stats(); }
  cache::CacheStats NegativeStats() const { return negatives_.Stats(); }
  const QueryCacheConfig& config() const { return config_; }

 private:
  QueryCacheConfig config_;
  cache::EpochValidator epoch_;
  /// Values are shared_ptr so a hit hands out a reference instead of
  /// deep-copying a potentially large response under the shard mutex.
  cache::ShardedLruCache<std::string, std::shared_ptr<const QueryResponse>>
      responses_;
  cache::ShardedLruCache<std::string, std::shared_ptr<const CachedAllowlist>>
      allowlists_;
  cache::ShardedLruCache<std::string, Status> negatives_;
};

}  // namespace agoraeo::earthqube

#endif  // AGORAEO_EARTHQUBE_QUERY_CACHE_H_
