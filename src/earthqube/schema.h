#ifndef AGORAEO_EARTHQUBE_SCHEMA_H_
#define AGORAEO_EARTHQUBE_SCHEMA_H_

#include <string>

#include "bigearthnet/patch.h"
#include "common/status.h"
#include "docstore/value.h"

namespace agoraeo::earthqube {

/// Names of the four EarthQube data-tier collections (paper Section 3.2).
inline constexpr const char kMetadataCollection[] = "metadata";
inline constexpr const char kImageDataCollection[] = "image_data";
inline constexpr const char kRenderedCollection[] = "rendered_images";
inline constexpr const char kFeedbackCollection[] = "feedback";

/// Field paths of the metadata schema.
inline constexpr const char kFieldName[] = "name";
inline constexpr const char kFieldLocation[] = "location";
inline constexpr const char kFieldLabels[] = "properties.labels";
inline constexpr const char kFieldLabelsKey[] = "properties.labels_key";
inline constexpr const char kFieldCountry[] = "properties.country";
inline constexpr const char kFieldSeason[] = "properties.season";
inline constexpr const char kFieldSatellite[] = "properties.satellite";
inline constexpr const char kFieldDate[] = "properties.acquisition_date";
inline constexpr const char kFieldDateOrdinal[] = "properties.date_ordinal";

/// Controls how land-cover labels are stored in metadata documents.
///
/// The paper (Section 3.2): "to improve the performance of label-based
/// filtering, we map each (potentially multi-word) CLC label to an ASCII
/// character, thereby avoiding the manipulation of long strings."
/// kAsciiCompressed is EarthQube's production encoding; kFullStrings is
/// kept for the E7 ablation benchmark.
enum class LabelEncoding { kAsciiCompressed, kFullStrings };

/// Converts patch metadata to a metadata-collection document:
/// {
///   name: "S2A_MSIL2A_...",
///   location: {min_lat, min_lon, max_lat, max_lon},
///   properties: {
///     labels:      ["C", "n"] | ["Industrial or commercial units", ...],
///     labels_key:  "Cn",            // sorted concatenation, for Exactly
///     country:     "Portugal",
///     season:      "Summer",
///     satellite:   "S2A" | "S2B",
///     acquisition_date: "2017-07-17",
///     date_ordinal: 17364,          // days since epoch, for ranges
///   }
/// }
docstore::Document MetadataToDocument(const bigearthnet::PatchMetadata& meta,
                                      LabelEncoding encoding);

/// Reconstructs patch metadata from a metadata document (scene_id is not
/// stored and comes back as -1).
StatusOr<bigearthnet::PatchMetadata> DocumentToMetadata(
    const docstore::Document& doc);

/// The satellite tag encoded in a BigEarthNet patch name ("S2A"/"S2B").
std::string SatelliteFromName(const std::string& patch_name);

/// Serialises a full patch (all bands) into an image-data document:
/// {name, bands: [{name, resolution, width, height, pixels: binary}]}.
docstore::Document PatchToImageDocument(const bigearthnet::Patch& patch);

/// Inverse of PatchToImageDocument (metadata fields are not stored in the
/// image-data collection; only rasters are restored).
StatusOr<bigearthnet::Patch> ImageDocumentToPatch(
    const docstore::Document& doc);

/// Wraps an RGB rendering into a rendered-images document.
docstore::Document RenderedToDocument(const std::string& name,
                                      const std::vector<uint8_t>& rgb,
                                      int width, int height);

}  // namespace agoraeo::earthqube

#endif  // AGORAEO_EARTHQUBE_SCHEMA_H_
