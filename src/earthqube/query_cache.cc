#include "earthqube/query_cache.h"

#include <algorithm>
#include <cstdio>

namespace agoraeo::earthqube {

namespace {

cache::ShardedLruCacheOptions CacheOptions(size_t capacity_bytes,
                                           const QueryCacheConfig& config,
                                           const cache::EpochValidator* epoch) {
  cache::ShardedLruCacheOptions options;
  options.capacity_bytes = capacity_bytes;
  options.num_shards = config.num_shards;
  options.ttl = config.ttl;
  options.validator = epoch;
  options.clock = config.clock;
  return options;
}

cache::ShardedLruCacheOptions NegativeOptions(
    const QueryCacheConfig& config, const cache::EpochValidator* epoch) {
  cache::ShardedLruCacheOptions options =
      CacheOptions(config.negative_capacity_bytes, config, epoch);
  options.ttl = config.negative_ttl;
  return options;
}

/// Appends a double with full round-trip precision: fingerprints must
/// distinguish any two coordinates the filter itself distinguishes.
void AppendDouble(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

void AppendPoint(std::string* out, const geo::GeoPoint& p) {
  AppendDouble(out, p.lat);
  *out += ',';
  AppendDouble(out, p.lon);
}

}  // namespace

QueryCache::QueryCache(const QueryCacheConfig& config)
    : config_(config),
      responses_(CacheOptions(config.response_capacity_bytes, config, &epoch_)),
      allowlists_(
          CacheOptions(config.allowlist_capacity_bytes, config, &epoch_)),
      negatives_(NegativeOptions(config, &epoch_)) {}

std::string QueryCache::PanelFingerprint(const EarthQubeQuery& query,
                                         bool include_limit) {
  std::string fp = "geo:";
  switch (query.geo.shape) {
    case GeoQuery::Shape::kNone:
      fp += "none";
      break;
    case GeoQuery::Shape::kRectangle:
      fp += "rect(";
      AppendPoint(&fp, query.geo.rectangle.min);
      fp += ';';
      AppendPoint(&fp, query.geo.rectangle.max);
      fp += ')';
      break;
    case GeoQuery::Shape::kCircle:
      fp += "circle(";
      AppendPoint(&fp, query.geo.circle.center);
      fp += ';';
      AppendDouble(&fp, query.geo.circle.radius_meters);
      fp += ')';
      break;
    case GeoQuery::Shape::kPolygon:
      fp += "poly(";
      for (const geo::GeoPoint& v : query.geo.polygon.vertices) {
        AppendPoint(&fp, v);
        fp += ';';
      }
      fp += ')';
      break;
  }
  fp += "|date:";
  if (query.date_range.has_value()) {
    fp += std::to_string(query.date_range->begin.ToOrdinal()) + "-" +
          std::to_string(query.date_range->end.ToOrdinal());
  }
  // Satellites and seasons are order-insensitive filter terms; sort the
  // fingerprint components so permutations share one cache entry.
  fp += "|sat:";
  std::vector<std::string> sats = query.satellites;
  std::sort(sats.begin(), sats.end());
  for (const std::string& s : sats) fp += s + ",";
  fp += "|season:";
  std::vector<std::string> seasons;
  seasons.reserve(query.seasons.size());
  for (Season s : query.seasons) seasons.emplace_back(SeasonToString(s));
  std::sort(seasons.begin(), seasons.end());
  for (const std::string& s : seasons) fp += s + ",";
  fp += "|labels:";
  if (query.label_filter.enabled && !query.label_filter.labels.empty()) {
    fp += std::string(LabelOperatorToString(query.label_filter.op)) + ":" +
          query.label_filter.labels.ToAsciiKeys();  // sorted ASCII keys
  }
  if (include_limit) fp += "|limit:" + std::to_string(query.limit);
  return fp;
}

std::optional<std::string> QueryCache::RequestFingerprint(
    const QueryRequest& request) {
  if (request.similarity.has_value()) {
    // Uploaded-patch subjects have no cheap fingerprint; malformed specs
    // (no subject, no mode) are left for Validate() to reject.
    const SimilaritySpec& spec = *request.similarity;
    if (spec.patch.has_value() ||
        (!spec.archive_name.has_value() && !spec.code.has_value()) ||
        (!spec.radius.has_value() && !spec.k.has_value())) {
      return std::nullopt;
    }
  }
  std::string fp = "v2|panel{";
  if (request.panel.has_value()) fp += PanelFingerprint(*request.panel);
  fp += "}|sim{";
  if (request.similarity.has_value()) {
    const SimilaritySpec& spec = *request.similarity;
    if (spec.archive_name.has_value()) {
      fp += "name:" + *spec.archive_name;
    } else {
      fp += "code:" + spec.code->ToBitString();
    }
    fp += spec.radius.has_value() ? "|r:" + std::to_string(*spec.radius)
                                  : "|k:" + std::to_string(*spec.k);
    fp += "|lim:" + std::to_string(spec.limit);
  }
  fp += "}|proj:" + std::to_string(static_cast<int>(request.projection)) +
        "|planner:" + std::to_string(static_cast<int>(request.planner)) +
        "|page:" + std::to_string(request.page) + ":" +
        std::to_string(request.page_size);
  return fp;
}

size_t QueryCache::ApproxResponseBytes(const QueryResponse& response) {
  size_t bytes = sizeof(QueryResponse);
  for (const ResultEntry& entry : response.panel.entries()) {
    bytes += sizeof(ResultEntry) + entry.name.size() + entry.country.size() +
             entry.acquisition_date.size();
  }
  for (const CbirResult& hit : response.hits) {
    bytes += sizeof(CbirResult) + hit.patch_name.size();
  }
  for (const LabelBar& bar : response.statistics.bars()) {
    bytes += sizeof(LabelBar) + bar.label_name.size();
  }
  bytes += response.plan.description.size() + response.query_stats.plan.size() +
           response.cursor.size();
  return bytes;
}

std::shared_ptr<const QueryResponse> QueryCache::GetResponse(
    const std::string& fingerprint) {
  if (!config_.enable_response_cache) return nullptr;
  auto hit = responses_.Get(fingerprint);
  return hit.has_value() ? *hit : nullptr;
}

bool QueryCache::PutResponse(const std::string& fingerprint,
                             const QueryResponse& response,
                             uint64_t computed_at_epoch) {
  if (!config_.enable_response_cache) return false;
  return responses_.Put(fingerprint,
                        std::make_shared<const QueryResponse>(response),
                        ApproxResponseBytes(response), computed_at_epoch);
}

std::shared_ptr<const CachedAllowlist> QueryCache::GetAllowlist(
    const std::string& fingerprint) {
  if (!config_.enable_allowlist_cache) return nullptr;
  auto hit = allowlists_.Get(fingerprint);
  return hit.has_value() ? *hit : nullptr;
}

void QueryCache::PutAllowlist(const std::string& fingerprint,
                              std::shared_ptr<const CachedAllowlist> allowlist,
                              uint64_t computed_at_epoch) {
  if (!config_.enable_allowlist_cache || allowlist == nullptr) return;
  const size_t bytes = sizeof(CachedAllowlist) +
                       allowlist->candidates.size() * sizeof(index::ItemId) +
                       allowlist->filter_stats.plan.size();
  allowlists_.Put(fingerprint, std::move(allowlist), bytes, computed_at_epoch);
}

std::optional<Status> QueryCache::GetNegative(const std::string& fingerprint) {
  if (!config_.enable_negative_cache) return std::nullopt;
  return negatives_.Get(fingerprint);
}

void QueryCache::PutNegative(const std::string& fingerprint,
                             const Status& status,
                             uint64_t computed_at_epoch) {
  if (!config_.enable_negative_cache || !status.IsNotFound()) return;
  const size_t bytes =
      sizeof(Status) + fingerprint.size() + status.message().size();
  negatives_.Put(fingerprint, status, bytes, computed_at_epoch);
}

}  // namespace agoraeo::earthqube
