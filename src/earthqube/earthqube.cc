#include "earthqube/earthqube.h"

#include "earthqube/zip_writer.h"

#include "common/logging.h"

namespace agoraeo::earthqube {

using bigearthnet::LabelSet;
using docstore::Document;
using docstore::Filter;
using docstore::Value;

EarthQube::EarthQube(EarthQubeConfig config) : config_(config) {
  metadata_ = db_.GetOrCreateCollection(kMetadataCollection);
  image_data_ = db_.GetOrCreateCollection(kImageDataCollection);
  rendered_ = db_.GetOrCreateCollection(kRenderedCollection);
  feedback_ = db_.GetOrCreateCollection(kFeedbackCollection);
  if (config_.build_indexes) {
    // The image-data and rendered-images collections are keyed by patch
    // name (the paper: "automatically indexed by MongoDB").
    (void)image_data_->CreateHashIndex("name", /*unique=*/true);
    (void)rendered_->CreateHashIndex("name", /*unique=*/true);
  }
}

Status EarthQube::IngestArchive(const bigearthnet::Archive& archive) {
  if (config_.build_indexes && metadata_->size() == 0) {
    AGORAEO_RETURN_IF_ERROR(
        metadata_->CreateHashIndex(kFieldName, /*unique=*/true));
    AGORAEO_RETURN_IF_ERROR(metadata_->CreateMultikeyIndex(kFieldLabels));
    AGORAEO_RETURN_IF_ERROR(metadata_->CreateHashIndex(kFieldLabelsKey));
    AGORAEO_RETURN_IF_ERROR(metadata_->CreateGeoIndex(
        kFieldLocation, config_.geo_index_precision));
    // B+-tree over the day ordinal: acquisition-date range filters (the
    // query panel's date subsection) plan an interval scan instead of a
    // collection scan.
    AGORAEO_RETURN_IF_ERROR(metadata_->CreateRangeIndex(kFieldDateOrdinal));
  }
  for (const auto& meta : archive.patches) {
    auto inserted = metadata_->Insert(
        MetadataToDocument(meta, config_.label_encoding));
    if (!inserted.ok()) return inserted.status();
  }
  AGORAEO_LOG(kInfo) << "EarthQube ingested " << archive.patches.size()
                     << " patches (total " << metadata_->size() << ")";
  return Status::OK();
}

void EarthQube::AttachCbir(std::unique_ptr<CbirService> cbir) {
  cbir_ = std::move(cbir);
}

StatusOr<ResultEntry> EarthQube::EntryFromDocument(const Document& doc) const {
  AGORAEO_ASSIGN_OR_RETURN(bigearthnet::PatchMetadata meta,
                           DocumentToMetadata(doc));
  ResultEntry entry;
  entry.name = meta.name;
  entry.labels = meta.labels;
  entry.country = meta.country;
  entry.acquisition_date = meta.acquisition_date.ToString();
  entry.map_location = meta.bounds.Center();
  return entry;
}

StatusOr<SearchResponse> EarthQube::Search(const EarthQubeQuery& query) const {
  const Filter filter = query.ToFilter(
      config_.label_encoding == LabelEncoding::kAsciiCompressed);
  docstore::QueryStats stats;
  const auto docs = metadata_->Find(filter, query.limit, &stats);

  std::vector<ResultEntry> entries;
  std::vector<LabelSet> label_sets;
  entries.reserve(docs.size());
  label_sets.reserve(docs.size());
  for (const Document* doc : docs) {
    AGORAEO_ASSIGN_OR_RETURN(ResultEntry entry, EntryFromDocument(*doc));
    label_sets.push_back(entry.labels);
    entries.push_back(std::move(entry));
  }
  return SearchResponse{ResultPanel(std::move(entries)),
                        LabelStatistics::FromLabelSets(label_sets),
                        std::move(stats)};
}

size_t EarthQube::CountMatches(const EarthQubeQuery& query) const {
  return metadata_->Count(query.ToFilter(
      config_.label_encoding == LabelEncoding::kAsciiCompressed));
}

StatusOr<SearchResponse> EarthQube::ResponseFromCbirResults(
    const std::vector<CbirResult>& results) const {
  std::vector<ResultEntry> entries;
  std::vector<LabelSet> label_sets;
  entries.reserve(results.size());
  docstore::QueryStats stats;
  stats.plan = "CBIR";
  for (const CbirResult& r : results) {
    AGORAEO_ASSIGN_OR_RETURN(
        docstore::DocId id,
        metadata_->FindOneId(Filter::Eq(kFieldName, Value(r.patch_name))));
    const Document* doc = metadata_->Get(id);
    ++stats.docs_examined;
    AGORAEO_ASSIGN_OR_RETURN(ResultEntry entry, EntryFromDocument(*doc));
    label_sets.push_back(entry.labels);
    entries.push_back(std::move(entry));
  }
  return SearchResponse{ResultPanel(std::move(entries)),
                        LabelStatistics::FromLabelSets(label_sets),
                        std::move(stats)};
}

StatusOr<SearchResponse> EarthQube::SimilarToArchiveImage(
    const std::string& name, uint32_t radius, size_t max_results) const {
  if (cbir_ == nullptr) {
    return Status::FailedPrecondition("no CBIR service attached");
  }
  AGORAEO_ASSIGN_OR_RETURN(std::vector<CbirResult> results,
                           cbir_->QueryByName(name, radius, max_results));
  return ResponseFromCbirResults(results);
}

StatusOr<SearchResponse> EarthQube::NearestToArchiveImage(
    const std::string& name, size_t k) const {
  if (cbir_ == nullptr) {
    return Status::FailedPrecondition("no CBIR service attached");
  }
  AGORAEO_ASSIGN_OR_RETURN(std::vector<CbirResult> results,
                           cbir_->KnnByName(name, k));
  return ResponseFromCbirResults(results);
}

StatusOr<SearchResponse> EarthQube::SimilarToUploadedImage(
    const bigearthnet::Patch& patch, uint32_t radius,
    size_t max_results) const {
  if (cbir_ == nullptr) {
    return Status::FailedPrecondition("no CBIR service attached");
  }
  // Uploaded-image inference mutates no index state; the const_cast is
  // confined to the model's forward pass (dropout disabled at inference).
  auto* cbir = const_cast<CbirService*>(cbir_.get());
  AGORAEO_ASSIGN_OR_RETURN(std::vector<CbirResult> results,
                           cbir->QueryByPatch(patch, radius, max_results));
  return ResponseFromCbirResults(results);
}

StatusOr<std::vector<std::vector<CbirResult>>>
EarthQube::BatchSimilarToArchiveImages(const std::vector<std::string>& names,
                                       uint32_t radius,
                                       size_t max_results) const {
  if (cbir_ == nullptr) {
    return Status::FailedPrecondition("no CBIR service attached");
  }
  return cbir_->QueryBatchByName(names, radius, max_results);
}

StatusOr<std::vector<std::vector<CbirResult>>>
EarthQube::BatchNearestToArchiveImages(const std::vector<std::string>& names,
                                       size_t k) const {
  if (cbir_ == nullptr) {
    return Status::FailedPrecondition("no CBIR service attached");
  }
  return cbir_->KnnBatchByName(names, k);
}

Status EarthQube::StorePatchPixels(const bigearthnet::Patch& patch) {
  auto inserted = image_data_->Insert(PatchToImageDocument(patch));
  return inserted.ok() ? Status::OK() : inserted.status();
}

StatusOr<bigearthnet::Patch> EarthQube::LoadPatchPixels(
    const std::string& name) const {
  AGORAEO_ASSIGN_OR_RETURN(
      docstore::DocId id,
      image_data_->FindOneId(Filter::Eq("name", Value(name))));
  return ImageDocumentToPatch(*image_data_->Get(id));
}

Status EarthQube::StoreRenderedImage(const bigearthnet::Patch& patch) {
  const auto& band = patch.s2(bigearthnet::S2Band::kB04);
  const std::vector<uint8_t> rgb = bigearthnet::RenderRgb(patch);
  auto inserted = rendered_->Insert(
      RenderedToDocument(patch.meta.name, rgb, band.width, band.height));
  return inserted.ok() ? Status::OK() : inserted.status();
}

StatusOr<std::vector<uint8_t>> EarthQube::GetRenderedImage(
    const std::string& name) const {
  AGORAEO_ASSIGN_OR_RETURN(
      docstore::DocId id,
      rendered_->FindOneId(Filter::Eq("name", Value(name))));
  const Value* rgb = rendered_->Get(id)->Get("rgb");
  if (rgb == nullptr || !rgb->is_binary()) {
    return Status::Corruption("rendered image payload missing: " + name);
  }
  return rgb->as_binary();
}

StatusOr<std::vector<uint8_t>> EarthQube::ExportAsZip(
    const std::vector<std::string>& names) const {
  ZipWriter zip;
  std::string manifest;
  for (const std::string& name : names) {
    AGORAEO_ASSIGN_OR_RETURN(
        docstore::DocId id,
        metadata_->FindOneId(Filter::Eq(kFieldName, Value(name))));
    const docstore::Document* meta = metadata_->Get(id);
    AGORAEO_RETURN_IF_ERROR(
        zip.Add(name + "/metadata.json", meta->ToString()));
    manifest += name + "\n";

    // Raster payload, when the image-data collection holds it.
    auto pixels = image_data_->FindOneId(Filter::Eq("name", Value(name)));
    if (pixels.ok()) {
      ByteWriter bands;
      docstore::SerializeDocument(*image_data_->Get(*pixels), &bands);
      AGORAEO_RETURN_IF_ERROR(zip.Add(name + "/bands.bin", bands.data()));
    }
    // Rendered RGB preview, when present.
    auto rendered = GetRenderedImage(name);
    if (rendered.ok()) {
      AGORAEO_RETURN_IF_ERROR(zip.Add(name + "/preview.rgb", *rendered));
    }
  }
  AGORAEO_RETURN_IF_ERROR(zip.Add("manifest.txt", manifest));
  return zip.Finish();
}

Status EarthQube::SubmitFeedback(const std::string& text) {
  Document doc;
  doc.Set("text", Value(text));
  doc.Set("anonymous", Value(true));
  auto inserted = feedback_->Insert(std::move(doc));
  return inserted.ok() ? Status::OK() : inserted.status();
}

size_t EarthQube::NumFeedbackEntries() const {
  return feedback_->size();
}

StatusOr<bigearthnet::PatchMetadata> EarthQube::GetMetadata(
    const std::string& name) const {
  AGORAEO_ASSIGN_OR_RETURN(
      docstore::DocId id,
      metadata_->FindOneId(Filter::Eq(kFieldName, Value(name))));
  return DocumentToMetadata(*metadata_->Get(id));
}

size_t EarthQube::num_images() const { return metadata_->size(); }

}  // namespace agoraeo::earthqube
