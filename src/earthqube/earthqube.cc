#include "earthqube/earthqube.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <unordered_map>

#include "earthqube/exec/execution_engine.h"
#include "earthqube/zip_writer.h"

#include "common/logging.h"

namespace agoraeo::earthqube {

using bigearthnet::LabelSet;
using docstore::Document;
using docstore::Filter;
using docstore::Value;

namespace {

void PushCounter(std::vector<obs::Sample>* out, std::string name,
                 uint64_t value) {
  out->push_back({std::move(name), obs::SampleKind::kCounter,
                  static_cast<double>(value)});
}

void PushGauge(std::vector<obs::Sample>* out, std::string name,
               double value) {
  out->push_back({std::move(name), obs::SampleKind::kGauge, value});
}

}  // namespace

EarthQube::EarthQube(EarthQubeConfig config)
    : config_(config), obs_(config.obs), query_cache_(config.cache) {
  metadata_ = db_.GetOrCreateCollection(kMetadataCollection);
  image_data_ = db_.GetOrCreateCollection(kImageDataCollection);
  rendered_ = db_.GetOrCreateCollection(kRenderedCollection);
  feedback_ = db_.GetOrCreateCollection(kFeedbackCollection);
  if (config_.build_indexes) {
    // The image-data and rendered-images collections are keyed by patch
    // name (the paper: "automatically indexed by MongoDB").
    (void)image_data_->CreateHashIndex("name", /*unique=*/true);
    (void)rendered_->CreateHashIndex("name", /*unique=*/true);
  }
  if (config_.ranked.enable) {
    ranked_ = std::make_unique<RankedAccess>(config_.ranked);
    stage_ranked_resume_ = obs_.HistogramOrNull(
        obs::LabeledName("agoraeo_engine_stage_ns", "stage", "ranked_resume"));
  }
  if (config_.exec.enable) {
    engine_ = std::make_unique<ExecutionEngine>(this, config_.exec, &obs_);
  }
  if (obs_.metrics_enabled()) RegisterCollectors();
}

void EarthQube::RegisterCollectors() {
  // Scrape-time collectors keep one counting truth: the existing stats
  // structs stay authoritative and /metrics snapshots them on demand
  // instead of double-counting on the hot path.  They capture `this`;
  // the registry is a member of obs_, destroyed with this facade.
  obs_.registry().AddCollector([this](std::vector<obs::Sample>* out) {
    const struct {
      const char* name;
      cache::CacheStats stats;
    } caches[] = {
        {"response", query_cache_.ResponseStats()},
        {"allowlist", query_cache_.AllowlistStats()},
        {"negative", query_cache_.NegativeStats()},
    };
    for (const auto& c : caches) {
      const auto named = [&](const char* base) {
        return obs::LabeledName(base, "cache", c.name);
      };
      PushCounter(out, named("agoraeo_cache_hits_total"), c.stats.hits);
      PushCounter(out, named("agoraeo_cache_misses_total"), c.stats.misses);
      PushCounter(out, named("agoraeo_cache_puts_total"), c.stats.puts);
      PushCounter(out, named("agoraeo_cache_rejected_puts_total"),
                  c.stats.rejected_puts);
      PushCounter(out, named("agoraeo_cache_evictions_total"),
                  c.stats.evictions);
      PushCounter(out, named("agoraeo_cache_stale_drops_total"),
                  c.stats.stale_drops);
      PushCounter(out, named("agoraeo_cache_expired_drops_total"),
                  c.stats.expired_drops);
      PushGauge(out, named("agoraeo_cache_entries"),
                static_cast<double>(c.stats.entries));
      PushGauge(out, named("agoraeo_cache_bytes"),
                static_cast<double>(c.stats.bytes));
    }
  });
  obs_.registry().AddCollector([this](std::vector<obs::Sample>* out) {
    if (engine_ == nullptr) return;
    const ExecStats s = engine_->Stats();
    PushCounter(out, "agoraeo_engine_submitted_total", s.submitted);
    PushCounter(out, "agoraeo_engine_completed_total", s.completed);
    PushCounter(out, "agoraeo_engine_cache_hits_total", s.cache_hits);
    PushCounter(out, "agoraeo_engine_negative_hits_total", s.negative_hits);
    PushCounter(out, "agoraeo_engine_coalesced_total", s.coalesced);
    PushCounter(out, "agoraeo_engine_flights_total", s.flights);
    PushCounter(out, "agoraeo_engine_direct_total", s.direct);
    PushCounter(out, "agoraeo_engine_batches_total", s.batches);
    PushCounter(out, "agoraeo_engine_batched_flights_total",
                s.batched_flights);
    PushCounter(out, "agoraeo_engine_rejected_total", s.rejected);
    PushCounter(out, "agoraeo_engine_flight_warms_total", s.flight_warms);
    PushCounter(out, "agoraeo_engine_warm_from_flight_hits_total",
                s.warm_from_flight_hits);
  });
  obs_.registry().AddCollector([this](std::vector<obs::Sample>* out) {
    if (ranked_ == nullptr) return;
    const RankedAccessStats s = ranked_->Stats();
    const auto result = [](const char* r) {
      return obs::LabeledName("agoraeo_engine_cursor_resume_total", "result",
                              r);
    };
    PushCounter(out, result("hit"), s.hits);
    PushCounter(out, result("miss"), s.misses);
    PushCounter(out, result("expired"), s.expired + s.epoch_drops);
    PushCounter(out, "agoraeo_ranked_handles_registered_total", s.registered);
    PushCounter(out, "agoraeo_ranked_handles_evicted_total", s.evicted);
    PushGauge(out, "agoraeo_ranked_handles",
              static_cast<double>(s.handles));
    PushGauge(out, "agoraeo_ranked_handle_bytes",
              static_cast<double>(s.bytes));
  });
  obs_.registry().AddCollector([this](std::vector<obs::Sample>* out) {
    if (cbir_ == nullptr) return;
    PushGauge(out, "agoraeo_index_items",
              static_cast<double>(cbir_->num_indexed()));
    if (const index::ShardedHammingIndex* sharded = cbir_->sharded_index()) {
      const index::ShardedIndexStats s = sharded->Stats();
      PushGauge(out, "agoraeo_index_shards",
                static_cast<double>(s.num_shards));
      PushCounter(out, "agoraeo_index_seals_total", s.seals);
      PushCounter(out, "agoraeo_index_compactions_total", s.compactions);
      PushGauge(out, "agoraeo_index_sealed_items",
                static_cast<double>(s.sealed_items));
      PushGauge(out, "agoraeo_index_mutable_items",
                static_cast<double>(s.mutable_items));
      PushCounter(out, "agoraeo_index_single_fanouts_total",
                  s.single_fanouts);
      PushCounter(out, "agoraeo_index_batch_fanouts_total", s.batch_fanouts);
      PushCounter(out, "agoraeo_index_fanout_tasks_total", s.fanout_tasks);
      PushCounter(out, "agoraeo_index_merge_nanos_total", s.merge_nanos);
      for (size_t i = 0; i < s.shard_sizes.size(); ++i) {
        PushGauge(out,
                  obs::LabeledName("agoraeo_index_shard_items", "shard",
                                   std::to_string(i)),
                  static_cast<double>(s.shard_sizes[i]));
      }
    } else if (const index::SegmentedHammingIndex* segmented =
                   cbir_->segmented_index()) {
      const index::SegmentedIndexStats s = segmented->Stats();
      PushCounter(out, "agoraeo_index_seals_total", s.seals);
      PushCounter(out, "agoraeo_index_compactions_total", s.compactions);
      PushGauge(out, "agoraeo_index_sealed_items",
                static_cast<double>(s.sealed_items));
    }
    const CbirPersistenceStats& p = cbir_->persistence_stats();
    if (p.enabled) {
      PushCounter(out, "agoraeo_wal_records_total", p.wal_records);
      PushCounter(out, "agoraeo_wal_bytes_appended_total",
                  cbir_->wal_bytes_appended());
      PushCounter(out, "agoraeo_snapshots_written_total",
                  p.snapshots_written);
      PushCounter(out, "agoraeo_recovery_restored_items_total",
                  p.restored_items);
      PushCounter(out, "agoraeo_recovery_replayed_items_total",
                  p.replayed_items);
    }
  });
}

EarthQube::~EarthQube() = default;

Status EarthQube::IngestArchive(const bigearthnet::Archive& archive) {
  if (config_.build_indexes && metadata_->size() == 0) {
    AGORAEO_RETURN_IF_ERROR(
        metadata_->CreateHashIndex(kFieldName, /*unique=*/true));
    AGORAEO_RETURN_IF_ERROR(metadata_->CreateMultikeyIndex(kFieldLabels));
    AGORAEO_RETURN_IF_ERROR(metadata_->CreateHashIndex(kFieldLabelsKey));
    AGORAEO_RETURN_IF_ERROR(metadata_->CreateGeoIndex(
        kFieldLocation, config_.geo_index_precision));
    // B+-tree over the day ordinal: acquisition-date range filters (the
    // query panel's date subsection) plan an interval scan instead of a
    // collection scan.
    AGORAEO_RETURN_IF_ERROR(metadata_->CreateRangeIndex(kFieldDateOrdinal));
  }
  for (const auto& meta : archive.patches) {
    auto inserted = metadata_->Insert(
        MetadataToDocument(meta, config_.label_encoding));
    if (!inserted.ok()) {
      // Documents inserted before the failure are visible, so cached
      // query results may already be stale.
      query_cache_.Invalidate();
      return inserted.status();
    }
  }
  query_cache_.Invalidate();
  AGORAEO_LOG(kInfo) << "EarthQube ingested " << archive.patches.size()
                     << " patches (total " << metadata_->size() << ")";
  return Status::OK();
}

Status EarthQube::IngestArchiveWithCodes(
    const bigearthnet::Archive& archive,
    const std::vector<BinaryCode>& codes) {
  if (cbir_ == nullptr) {
    return Status::FailedPrecondition(
        "IngestArchiveWithCodes needs an attached CBIR service");
  }
  if (codes.size() != archive.patches.size()) {
    return Status::InvalidArgument("codes length mismatch with patches");
  }
  AGORAEO_RETURN_IF_ERROR(IngestArchive(archive));
  std::vector<std::string> names;
  names.reserve(archive.patches.size());
  for (const auto& meta : archive.patches) names.push_back(meta.name);
  AGORAEO_RETURN_IF_ERROR(cbir_->AddImagesWithCodes(names, codes));
  // IngestArchive already invalidated for the metadata writes; the code
  // index changed after that, so bump again.
  query_cache_.Invalidate();
  return Status::OK();
}

void EarthQube::AttachCbir(std::unique_ptr<CbirService> cbir) {
  // Live ranked handles hold streams borrowing the OLD service's name
  // map; drop them before that service is destroyed (the epoch bump
  // alone would only make them unreachable lazily).
  if (ranked_ != nullptr) ranked_->Clear();
  cbir_ = std::move(cbir);
  if (cbir_ != nullptr) cbir_->AttachObservability(&obs_);
  // A new code index changes every similarity result.
  query_cache_.Invalidate();
}

Status EarthQube::RecoverAndAttachCbir(std::unique_ptr<CbirService> cbir) {
  // Recover BEFORE attaching: queries keep hitting the old service (or
  // none) until the new index is fully rebuilt, and the epoch bumps
  // once, in AttachCbir, not per restored batch.
  AGORAEO_RETURN_IF_ERROR(cbir->Recover());
  AttachCbir(std::move(cbir));
  return Status::OK();
}

StatusOr<ResultEntry> EarthQube::EntryFromDocument(const Document& doc) const {
  AGORAEO_ASSIGN_OR_RETURN(bigearthnet::PatchMetadata meta,
                           DocumentToMetadata(doc));
  ResultEntry entry;
  entry.name = meta.name;
  entry.labels = meta.labels;
  entry.country = meta.country;
  entry.acquisition_date = meta.acquisition_date.ToString();
  entry.map_location = meta.bounds.Center();
  return entry;
}

// --- unified executor ---------------------------------------------------

void EarthQube::FinishPaging(const QueryRequest& request,
                             QueryResponse* response) {
  response->projection = request.projection;
  response->page = request.page;
  response->page_size = request.page_size;
  if (request.page_size > 0 &&
      (request.page + 1) * request.page_size < response->total()) {
    response->cursor = EncodeCursor({request.page + 1, request.page_size});
  }
}

StatusOr<BinaryCode> EarthQube::ResolveSimilarityCode(
    const SimilaritySpec& spec, std::string* exclude_name) const {
  exclude_name->clear();
  if (spec.archive_name.has_value()) {
    *exclude_name = *spec.archive_name;
    return cbir_->CodeOf(*spec.archive_name);
  }
  if (spec.patch.has_value()) return cbir_->HashPatch(*spec.patch);
  return *spec.code;
}

Status EarthQube::JoinHits(const std::vector<CbirResult>& hits,
                           QueryResponse* response) const {
  std::vector<ResultEntry> entries;
  std::vector<LabelSet> label_sets;
  entries.reserve(hits.size());
  label_sets.reserve(hits.size());
  for (const CbirResult& r : hits) {
    AGORAEO_ASSIGN_OR_RETURN(
        docstore::DocId id,
        metadata_->FindOneId(Filter::Eq(kFieldName, Value(r.patch_name))));
    ++response->query_stats.docs_examined;
    AGORAEO_ASSIGN_OR_RETURN(ResultEntry entry,
                             EntryFromDocument(*metadata_->Get(id)));
    label_sets.push_back(entry.labels);
    entries.push_back(std::move(entry));
  }
  response->panel = ResultPanel(std::move(entries));
  response->statistics = LabelStatistics::FromLabelSets(label_sets);
  return Status::OK();
}

StatusOr<QueryResponse> EarthQube::ExecutePanelOnly(
    const QueryRequest& request) const {
  const EarthQubeQuery& query = *request.panel;
  const Filter filter = query.ToFilter(
      config_.label_encoding == LabelEncoding::kAsciiCompressed);
  QueryResponse response;
  const auto docs =
      metadata_->Find(filter, query.limit, &response.query_stats);

  std::vector<ResultEntry> entries;
  std::vector<LabelSet> label_sets;
  entries.reserve(docs.size());
  label_sets.reserve(docs.size());
  for (const Document* doc : docs) {
    AGORAEO_ASSIGN_OR_RETURN(ResultEntry entry, EntryFromDocument(*doc));
    label_sets.push_back(entry.labels);
    entries.push_back(std::move(entry));
  }
  response.panel = ResultPanel(std::move(entries));
  response.statistics = LabelStatistics::FromLabelSets(label_sets);
  response.plan.strategy = QueryPlan::Strategy::kPanelOnly;
  response.plan.description = response.query_stats.plan;
  FinishPaging(request, &response);
  return response;
}

StatusOr<QueryResponse> EarthQube::BuildCbirResponse(
    const QueryRequest& request, std::vector<CbirResult> hits,
    uint64_t epoch_snapshot) const {
  const SimilaritySpec& spec = *request.similarity;
  QueryResponse response;
  response.hits = std::move(hits);
  response.query_stats.plan = "CBIR";
  response.plan.strategy = QueryPlan::Strategy::kCbirOnly;
  response.plan.description =
      spec.radius.has_value()
          ? "CBIR(" + cbir_->hamming_index().Name() +
                ", radius=" + std::to_string(*spec.radius) + ")"
          : "CBIR(" + cbir_->hamming_index().Name() +
                ", k=" + std::to_string(*spec.k) + ")";
  if (WindowedEligible(request)) {
    return WindowizeEager(request, std::move(response), epoch_snapshot);
  }
  if (request.projection == Projection::kFullPanel) {
    AGORAEO_RETURN_IF_ERROR(JoinHits(response.hits, &response));
  }
  FinishPaging(request, &response);
  return response;
}

StatusOr<QueryResponse> EarthQube::ExecuteCbirOnly(
    const QueryRequest& request) const {
  const SimilaritySpec& spec = *request.similarity;
  const uint64_t epoch_snapshot = query_cache_.epoch();
  std::string exclude;
  AGORAEO_ASSIGN_OR_RETURN(BinaryCode code,
                           ResolveSimilarityCode(spec, &exclude));
  std::vector<CbirResult> hits =
      spec.radius.has_value()
          ? cbir_->RadiusByCode(code, *spec.radius, spec.limit, exclude)
          : cbir_->KnnByCode(code, *spec.k, exclude);
  return BuildCbirResponse(request, std::move(hits), epoch_snapshot);
}

EarthQube::HybridPlanInfo EarthQube::PlanHybrid(const QueryRequest& request,
                                                const Filter& filter) const {
  // Cheap selectivity estimate: index candidate counts only, no
  // document verification.
  std::string estimate_plan;
  HybridPlanInfo info;
  info.estimated = metadata_->EstimateMatches(filter, &estimate_plan);
  const size_t collection_size = metadata_->size();
  info.selectivity = collection_size == 0
                         ? 1.0
                         : static_cast<double>(info.estimated) /
                               static_cast<double>(collection_size);
  switch (request.planner) {
    case PlannerMode::kForcePreFilter:
      info.strategy = QueryPlan::Strategy::kPreFilter;
      break;
    case PlannerMode::kForcePostFilter:
      info.strategy = QueryPlan::Strategy::kPostFilter;
      break;
    case PlannerMode::kAuto:
    default:
      info.strategy = info.selectivity <= config_.prefilter_selectivity_threshold
                          ? QueryPlan::Strategy::kPreFilter
                          : QueryPlan::Strategy::kPostFilter;
      break;
  }
  return info;
}

StatusOr<std::shared_ptr<const CachedAllowlist>> EarthQube::ObtainAllowlist(
    const EarthQubeQuery& panel, const Filter& filter) const {
  // Hot panel filters skip the docstore pass entirely via the allowlist
  // cache (the cached entry replays the original filter pass's stats so
  // the response stays byte-identical).
  std::optional<std::string> allowlist_fp;
  if (config_.cache.enable_allowlist_cache) {
    allowlist_fp = QueryCache::PanelFingerprint(panel,
                                                /*include_limit=*/false);
    if (auto cached = query_cache_.GetAllowlist(*allowlist_fp)) return cached;
  }
  // Epoch snapshot before the filter pass, for the same racing-ingest
  // reason as in ExecuteAndCache.
  const uint64_t epoch_snapshot = query_cache_.epoch();
  auto fresh = std::make_shared<CachedAllowlist>();
  const auto docs = metadata_->Find(filter, 0, &fresh->filter_stats);
  std::vector<std::string> names;
  names.reserve(docs.size());
  for (const Document* doc : docs) {
    const Value* name = doc->GetPath(kFieldName);
    if (name != nullptr && name->is_string()) {
      names.push_back(name->as_string());
    }
  }
  fresh->candidates = cbir_->CandidatesFromNames(names);
  if (allowlist_fp.has_value()) {
    query_cache_.PutAllowlist(*allowlist_fp, fresh, epoch_snapshot);
  }
  return std::shared_ptr<const CachedAllowlist>(std::move(fresh));
}

StatusOr<QueryResponse> EarthQube::BuildHybridPreResponse(
    const QueryRequest& request, const HybridPlanInfo& plan,
    const CachedAllowlist& allowlist, std::vector<CbirResult> hits,
    uint64_t epoch_snapshot) const {
  QueryResponse response;
  response.plan.strategy = plan.strategy;
  response.plan.estimated_selectivity = plan.selectivity;
  response.plan.estimated_filter_matches = plan.estimated;
  response.query_stats = allowlist.filter_stats;
  response.hits = std::move(hits);
  char sel_text[32];
  std::snprintf(sel_text, sizeof(sel_text), "%.4f", plan.selectivity);
  response.plan.description =
      "HYBRID(pre-filter: " + response.query_stats.plan + " -> " +
      std::to_string(allowlist.candidates.size()) +
      " candidates -> restricted " + cbir_->hamming_index().Name() +
      ", est_sel=" + sel_text + ")";
  response.query_stats.plan = response.plan.description;
  if (WindowedEligible(request)) {
    return WindowizeEager(request, std::move(response), epoch_snapshot);
  }
  if (request.projection == Projection::kFullPanel) {
    AGORAEO_RETURN_IF_ERROR(JoinHits(response.hits, &response));
  }
  FinishPaging(request, &response);
  return response;
}

StatusOr<QueryResponse> EarthQube::ExecuteHybrid(
    const QueryRequest& request) const {
  const SimilaritySpec& spec = *request.similarity;
  const uint64_t epoch_snapshot = query_cache_.epoch();
  const Filter filter = request.panel->ToFilter(
      config_.label_encoding == LabelEncoding::kAsciiCompressed);
  const HybridPlanInfo plan = PlanHybrid(request, filter);

  std::string exclude;
  AGORAEO_ASSIGN_OR_RETURN(BinaryCode code,
                           ResolveSimilarityCode(spec, &exclude));

  if (plan.strategy == QueryPlan::Strategy::kPreFilter) {
    // Filter first: the docstore produces the allowlist, then the
    // Hamming index searches only within it.
    AGORAEO_ASSIGN_OR_RETURN(std::shared_ptr<const CachedAllowlist> allowlist,
                             ObtainAllowlist(*request.panel, filter));
    const index::CandidateSet& allowed = allowlist->candidates;
    std::vector<CbirResult> hits =
        spec.radius.has_value()
            ? cbir_->RadiusByCodeRestricted(code, *spec.radius, spec.limit,
                                            allowed, exclude)
            : cbir_->KnnByCodeRestricted(code, *spec.k, allowed, exclude);
    return BuildHybridPreResponse(request, plan, *allowlist, std::move(hits),
                                  epoch_snapshot);
  }

  QueryResponse response;
  response.plan.strategy = plan.strategy;
  response.plan.estimated_selectivity = plan.selectivity;
  response.plan.estimated_filter_matches = plan.estimated;

  char sel_text[32];
  std::snprintf(sel_text, sizeof(sel_text), "%.4f", plan.selectivity);

  {
    // Search first: unrestricted Hamming search, then join each hit's
    // metadata and keep the filter survivors.
    std::vector<CbirResult> survivors;
    auto filter_hits = [&](const std::vector<CbirResult>& raw,
                           size_t cap) -> Status {
      survivors.clear();
      for (const CbirResult& r : raw) {
        AGORAEO_ASSIGN_OR_RETURN(
            docstore::DocId id,
            metadata_->FindOneId(
                Filter::Eq(kFieldName, Value(r.patch_name))));
        ++response.query_stats.docs_examined;
        if (!filter.Matches(*metadata_->Get(id))) continue;
        survivors.push_back(r);
        if (cap != 0 && survivors.size() >= cap) break;
      }
      return Status::OK();
    };
    if (spec.radius.has_value()) {
      const auto raw = cbir_->RadiusByCode(code, *spec.radius,
                                           /*max_results=*/0, exclude);
      AGORAEO_RETURN_IF_ERROR(filter_hits(raw, spec.limit));
    } else {
      // k-NN post-filter must over-fetch: the k nearest overall may not
      // survive the metadata filter.  Double the fetch until k
      // survivors are found or the index is exhausted.
      const size_t k = *spec.k;
      for (size_t fetch = std::max<size_t>(k, 1);; fetch *= 2) {
        const auto raw = cbir_->KnnByCode(code, fetch, exclude);
        AGORAEO_RETURN_IF_ERROR(filter_hits(raw, k));
        if (survivors.size() >= k || raw.size() < fetch) break;
      }
    }
    response.hits = std::move(survivors);
    response.plan.description =
        "HYBRID(post-filter: CBIR " + cbir_->hamming_index().Name() +
        " -> join -> " + filter.ToString() + ", est_sel=" + sel_text + ")";
  }
  response.query_stats.plan = response.plan.description;
  if (request.projection == Projection::kFullPanel) {
    AGORAEO_RETURN_IF_ERROR(JoinHits(response.hits, &response));
  }
  FinishPaging(request, &response);
  return response;
}

// --- ranked direct access (resumable windowed paging) --------------------

bool EarthQube::WindowedEligible(const QueryRequest& request) const {
  return ranked_ != nullptr && request.similarity.has_value() &&
         request.page_size > 0;
}

Status EarthQube::ExtendHandle(RankedHandle* handle, size_t need) const {
  const size_t cap = handle->survivor_cap_;
  const size_t target = cap == 0 ? need : std::min(need, cap);
  if (handle->kind() == RankedHandle::Kind::kPlain) {
    while (!handle->exhausted_ && handle->survivors_.size() < target) {
      if (handle->stream_ == nullptr ||
          handle->stream_->Next(target - handle->survivors_.size(),
                                &handle->survivors_) == 0) {
        handle->exhausted_ = true;
      }
    }
  } else {
    // Post-filter: join each raw hit's metadata and keep the filter
    // survivors.  Raw hits are pulled in fixed-size chunks and every
    // chunk is consumed whole, so the docs-examined watermarks are the
    // same whether a ranking is walked in one deep request or resumed
    // page by page.
    constexpr size_t kPostFilterPull = 16;
    std::vector<CbirResult> raw;
    while (!handle->exhausted_ && handle->survivors_.size() < target) {
      raw.clear();
      if (handle->stream_ == nullptr ||
          handle->stream_->Next(kPostFilterPull, &raw) == 0) {
        handle->exhausted_ = true;
        break;
      }
      for (const CbirResult& r : raw) {
        AGORAEO_ASSIGN_OR_RETURN(
            docstore::DocId id,
            metadata_->FindOneId(Filter::Eq(kFieldName, Value(r.patch_name))));
        ++handle->examined_total_;
        if (!handle->filter_.Matches(*metadata_->Get(id))) continue;
        handle->survivors_.push_back(r);
        handle->examined_after_.push_back(handle->examined_total_);
        if (cap != 0 && handle->survivors_.size() >= cap) break;
      }
    }
  }
  if (cap != 0 && handle->survivors_.size() >= cap) handle->exhausted_ = true;
  return Status::OK();
}

StatusOr<QueryResponse> EarthQube::ExecuteWindowed(
    const QueryRequest& request) const {
  const uint64_t start_ns =
      stage_ranked_resume_ != nullptr ? obs::NowNanos() : 0;
  const SimilaritySpec& spec = *request.similarity;
  const size_t begin = request.page * request.page_size;
  // One past the window: proves a further page exists without draining
  // the rest of the ranking.
  const size_t need = begin + request.page_size + 1;

  // The page-free fingerprint identifies the underlying ranking; its
  // hash is the handle id every node mints identically.
  QueryRequest stream_request = request;
  stream_request.page = 0;
  stream_request.page_size = 0;
  const std::optional<std::string> stream_fp =
      QueryCache::RequestFingerprint(stream_request);
  const std::string handle_id =
      stream_fp.has_value() ? RankedAccess::HandleIdFor(*stream_fp)
                            : std::string();
  // Epoch BEFORE any read: an ingest racing this page leaves the handle
  // stale (dropped on the next Get) instead of pinning pre-ingest state
  // as fresh.
  const uint64_t epoch_snapshot = query_cache_.epoch();

  // Resolve the subject first so a bad archive name fails identically
  // whether or not a handle is resident.
  std::string exclude;
  AGORAEO_ASSIGN_OR_RETURN(BinaryCode code,
                           ResolveSimilarityCode(spec, &exclude));

  // The shape-dependent response skeleton (plan + base stats) is built
  // on BOTH the resume and the fresh path, so a resumed page stays
  // byte-identical to a re-executed one.
  QueryResponse response;
  RankedHandle::Kind kind = RankedHandle::Kind::kPlain;
  Filter filter = Filter::True();
  std::shared_ptr<const CachedAllowlist> allowlist;
  if (!request.panel.has_value()) {
    response.query_stats.plan = "CBIR";
    response.plan.strategy = QueryPlan::Strategy::kCbirOnly;
    response.plan.description =
        spec.radius.has_value()
            ? "CBIR(" + cbir_->hamming_index().Name() +
                  ", radius=" + std::to_string(*spec.radius) + ")"
            : "CBIR(" + cbir_->hamming_index().Name() +
                  ", k=" + std::to_string(*spec.k) + ")";
  } else {
    filter = request.panel->ToFilter(
        config_.label_encoding == LabelEncoding::kAsciiCompressed);
    const HybridPlanInfo plan = PlanHybrid(request, filter);
    response.plan.strategy = plan.strategy;
    response.plan.estimated_selectivity = plan.selectivity;
    response.plan.estimated_filter_matches = plan.estimated;
    char sel_text[32];
    std::snprintf(sel_text, sizeof(sel_text), "%.4f", plan.selectivity);
    if (plan.strategy == QueryPlan::Strategy::kPreFilter) {
      AGORAEO_ASSIGN_OR_RETURN(allowlist,
                               ObtainAllowlist(*request.panel, filter));
      response.query_stats = allowlist->filter_stats;
      response.plan.description =
          "HYBRID(pre-filter: " + response.query_stats.plan + " -> " +
          std::to_string(allowlist->candidates.size()) +
          " candidates -> restricted " + cbir_->hamming_index().Name() +
          ", est_sel=" + sel_text + ")";
      response.query_stats.plan = response.plan.description;
    } else {
      kind = RankedHandle::Kind::kPostFilter;
      response.plan.description =
          "HYBRID(post-filter: CBIR " + cbir_->hamming_index().Name() +
          " -> join -> " + filter.ToString() + ", est_sel=" + sel_text + ")";
      response.query_stats.plan = response.plan.description;
    }
  }

  std::shared_ptr<RankedHandle> handle;
  if (!handle_id.empty()) {
    handle = ranked_->Get(handle_id, *stream_fp, epoch_snapshot);
  }
  if (handle == nullptr) {
    // Fresh (or fallen-back) execution: open the lazy stream and pin it
    // under the ranking's deterministic id.  Uploaded-patch subjects
    // have no fingerprint and stay ephemeral.
    auto fresh = std::make_shared<RankedHandle>(
        handle_id, stream_fp.value_or(std::string()), epoch_snapshot, kind);
    fresh->survivor_cap_ = spec.radius.has_value() ? spec.limit : *spec.k;
    if (kind == RankedHandle::Kind::kPlain) {
      std::shared_ptr<const index::CandidateSet> allowed;
      if (allowlist != nullptr) {
        allowed = std::shared_ptr<const index::CandidateSet>(
            allowlist, &allowlist->candidates);
      }
      fresh->stream_ = cbir_->OpenStream(
          code, spec.radius, fresh->survivor_cap_, std::move(allowed),
          exclude);
    } else {
      // Post-filter streams the UNCAPPED raw ranking (the cap applies
      // to filter survivors, not raw hits); k-NN mode needs the full
      // ranking, so ask for everything unless k is 0.
      const size_t raw_cap =
          spec.radius.has_value() ? 0 : (*spec.k == 0 ? 0 : SIZE_MAX);
      fresh->stream_ =
          cbir_->OpenStream(code, spec.radius, raw_cap, nullptr, exclude);
      fresh->filter_ = filter;
    }
    handle = handle_id.empty() ? std::move(fresh)
                               : ranked_->Register(std::move(fresh));
  }

  bool has_more = false;
  size_t touch_bytes = 0;
  {
    std::lock_guard<std::mutex> lock(handle->mu_);
    AGORAEO_RETURN_IF_ERROR(ExtendHandle(handle.get(), need));
    const std::vector<CbirResult>& survivors = handle->survivors_;
    const size_t end = std::min(survivors.size(), begin + request.page_size);
    if (begin < end) {
      response.hits.assign(survivors.begin() + begin, survivors.begin() + end);
    }
    has_more = survivors.size() >= need;
    if (handle->kind() == RankedHandle::Kind::kPostFilter) {
      // Deterministic join cost: what a fresh execution of exactly this
      // page would have examined, independent of how deep the pinned
      // stream has already been pulled.
      response.query_stats.docs_examined +=
          survivors.size() >= need ? handle->examined_after_[need - 1]
                                   : handle->examined_total_;
    }
    // Measured under handle->mu_: a concurrent resume of this cursor
    // may extend survivors_ the moment the lock drops, and Touch must
    // not walk the vector mid-reallocation.
    touch_bytes = RankedAccess::ApproxBytes(*handle);
  }
  if (!handle_id.empty()) ranked_->Touch(handle, touch_bytes);

  if (request.projection == Projection::kFullPanel) {
    AGORAEO_RETURN_IF_ERROR(JoinHits(response.hits, &response));
  }
  response.windowed = true;
  response.projection = request.projection;
  response.page = request.page;
  response.page_size = request.page_size;
  if (has_more) {
    response.cursor =
        EncodeCursor({request.page + 1, request.page_size, handle_id});
  }
  if (stage_ranked_resume_ != nullptr) {
    stage_ranked_resume_->Record(obs::NowNanos() - start_ns);
  }
  return response;
}

StatusOr<QueryResponse> EarthQube::WindowizeEager(const QueryRequest& request,
                                                  QueryResponse response,
                                                  uint64_t epoch_snapshot) const {
  QueryRequest stream_request = request;
  stream_request.page = 0;
  stream_request.page_size = 0;
  const std::optional<std::string> stream_fp =
      QueryCache::RequestFingerprint(stream_request);
  const size_t begin = request.page * request.page_size;
  const size_t end = std::min(response.hits.size(), begin + request.page_size);
  const bool has_more = response.hits.size() > begin + request.page_size;
  std::string handle_id;
  if (stream_fp.has_value()) {
    handle_id = RankedAccess::HandleIdFor(*stream_fp);
    // Register the full ranking as an already-exhausted handle so later
    // pages of this cursor resume from it instead of re-running the
    // micro-batched index pass.
    auto handle = std::make_shared<RankedHandle>(
        handle_id, *stream_fp, epoch_snapshot, RankedHandle::Kind::kPlain);
    handle->survivors_ = response.hits;
    handle->exhausted_ = true;
    ranked_->Register(std::move(handle));
  }
  std::vector<CbirResult> window;
  if (begin < end) {
    window.assign(response.hits.begin() + begin, response.hits.begin() + end);
  }
  response.hits = std::move(window);
  if (request.projection == Projection::kFullPanel) {
    AGORAEO_RETURN_IF_ERROR(JoinHits(response.hits, &response));
  }
  response.windowed = true;
  response.projection = request.projection;
  response.page = request.page;
  response.page_size = request.page_size;
  if (has_more) {
    response.cursor =
        EncodeCursor({request.page + 1, request.page_size, handle_id});
  }
  return response;
}

Status EarthQube::PreflightCheck(const QueryRequest& request) const {
  AGORAEO_RETURN_IF_ERROR(request.Validate());
  if (request.similarity.has_value() && cbir_ == nullptr) {
    return Status::FailedPrecondition("no CBIR service attached");
  }
  return Status::OK();
}

std::optional<StatusOr<QueryResponse>> EarthQube::ProbeCaches(
    const QueryRequest& request,
    const std::optional<std::string>& fingerprint) const {
  // Response cache: CBIR-only and hybrid requests (the hot interactive
  // shapes; uploaded-patch subjects have no cheap fingerprint).  A hit
  // replays the stored response byte-for-byte, flagged served_from_cache.
  if (!fingerprint.has_value() || !request.similarity.has_value()) {
    return std::nullopt;
  }
  if (config_.cache.enable_response_cache) {
    if (auto cached = query_cache_.GetResponse(*fingerprint)) {
      QueryResponse out = *cached;
      out.served_from_cache = true;
      return StatusOr<QueryResponse>(std::move(out));
    }
  }
  // Negative cache: a recently observed NotFound (bad archive name) is
  // replayed without touching the docstore or index; the short TTL and
  // the epoch bound how long a since-ingested name keeps failing.
  if (config_.cache.enable_negative_cache) {
    if (auto negative = query_cache_.GetNegative(*fingerprint)) {
      return StatusOr<QueryResponse>(*negative);
    }
  }
  return std::nullopt;
}

bool EarthQube::CacheResponse(const QueryRequest& request,
                              const std::optional<std::string>& fingerprint,
                              const QueryResponse& response,
                              uint64_t epoch_snapshot) const {
  if (!fingerprint.has_value() || !request.similarity.has_value()) {
    return false;
  }
  return query_cache_.PutResponse(*fingerprint, response, epoch_snapshot);
}

void EarthQube::MaybeCacheNegative(
    const QueryRequest& request,
    const std::optional<std::string>& fingerprint, const Status& status,
    uint64_t epoch_snapshot) const {
  if (!fingerprint.has_value() || !request.similarity.has_value()) return;
  if (!status.IsNotFound()) return;
  query_cache_.PutNegative(*fingerprint, status, epoch_snapshot);
}

StatusOr<QueryResponse> EarthQube::ExecuteAndCache(
    const QueryRequest& request,
    const std::optional<std::string>& fingerprint,
    bool* response_cached) const {
  // Snapshot the epoch BEFORE executing: an ingest racing this query
  // bumps it, leaving the entry we put below stale instead of serving
  // pre-ingest data as fresh.
  const uint64_t epoch_snapshot = query_cache_.epoch();
  if (response_cached != nullptr) *response_cached = false;
  auto response = ExecuteUncached(request);
  if (response.ok()) {
    const bool cached =
        CacheResponse(request, fingerprint, *response, epoch_snapshot);
    if (response_cached != nullptr) *response_cached = cached;
  } else {
    MaybeCacheNegative(request, fingerprint, response.status(),
                       epoch_snapshot);
  }
  return response;
}

StatusOr<QueryResponse> EarthQube::ExecuteSync(
    const QueryRequest& request) const {
  AGORAEO_RETURN_IF_ERROR(PreflightCheck(request));
  const std::optional<std::string> fingerprint =
      QueryCache::RequestFingerprint(request);
  if (auto probed = ProbeCaches(request, fingerprint)) return *probed;
  return ExecuteAndCache(request, fingerprint);
}

StatusOr<QueryResponse> EarthQube::Execute(const QueryRequest& request) const {
  return Execute(request, nullptr);
}

StatusOr<QueryResponse> EarthQube::Execute(
    const QueryRequest& request, std::shared_ptr<obs::Trace> trace) const {
  if (engine_ != nullptr) return engine_->Submit(request, std::move(trace)).Get();
  // Engine off: one span covers the whole synchronous execution.
  obs::ScopedSpan span(trace.get(), "execute_sync");
  return ExecuteSync(request);
}

void EarthQube::ExecuteAsync(
    const QueryRequest& request,
    std::function<void(const StatusOr<QueryResponse>&)> done) const {
  ExecuteAsync(request, nullptr, std::move(done));
}

void EarthQube::ExecuteAsync(
    const QueryRequest& request, std::shared_ptr<obs::Trace> trace,
    std::function<void(const StatusOr<QueryResponse>&)> done) const {
  if (engine_ != nullptr) {
    engine_->SubmitAsync(request, std::move(trace), std::move(done));
    return;
  }
  StatusOr<QueryResponse> result = [&]() -> StatusOr<QueryResponse> {
    obs::ScopedSpan span(trace.get(), "execute_sync");
    return ExecuteSync(request);
  }();
  done(result);
}

StatusOr<QueryResponse> EarthQube::ExecuteUncached(
    const QueryRequest& request) const {
  if (!request.similarity.has_value()) return ExecutePanelOnly(request);
  // Paged similarity requests stream hits lazily and resume from the
  // ranked-access handle table; unpaged ones materialise eagerly.
  if (WindowedEligible(request)) return ExecuteWindowed(request);
  if (!request.panel.has_value()) return ExecuteCbirOnly(request);
  return ExecuteHybrid(request);
}

StatusOr<std::vector<QueryResponse>> EarthQube::ExecuteBatch(
    const std::vector<QueryRequest>& requests) const {
  std::vector<QueryResponse> out;
  out.reserve(requests.size());
  if (engine_ != nullptr) {
    // One admission gate for the whole batch: identical requests
    // coalesce onto one execution (singleflight fan-out) and distinct
    // compatible CBIR/hybrid shapes fuse into micro-batched index
    // passes — the engine replaces both of the old ExecuteBatch
    // special cases (fingerprint dedup and the homogeneous by-name
    // fast path) with one code path shared with Execute.
    std::vector<ExecutionEngine::Ticket> tickets =
        engine_->SubmitBatch(requests);
    for (ExecutionEngine::Ticket& ticket : tickets) {
      AGORAEO_ASSIGN_OR_RETURN(QueryResponse response, ticket.Get());
      out.push_back(std::move(response));
    }
    return out;
  }
  // Engine off: per-request synchronous execution, with the same
  // fingerprint dedup the coalescer provides — identical requests
  // execute once and fan out (the pre-engine ExecuteBatch contract).
  out.resize(requests.size());
  std::unordered_map<std::string, size_t> first_slot_by_fp;
  std::vector<size_t> duplicate_of(requests.size(), SIZE_MAX);
  for (size_t i = 0; i < requests.size(); ++i) {
    const auto fingerprint = QueryCache::RequestFingerprint(requests[i]);
    if (fingerprint.has_value()) {
      auto [it, inserted] = first_slot_by_fp.emplace(*fingerprint, i);
      if (!inserted) {
        duplicate_of[i] = it->second;
        continue;
      }
    }
    AGORAEO_ASSIGN_OR_RETURN(out[i], ExecuteSync(requests[i]));
  }
  for (size_t i = 0; i < requests.size(); ++i) {
    if (duplicate_of[i] != SIZE_MAX) out[i] = out[duplicate_of[i]];
  }
  return out;
}

// --- v1 facade shims ----------------------------------------------------

StatusOr<SearchResponse> EarthQube::Search(const EarthQubeQuery& query) const {
  QueryRequest request;
  request.panel = query;
  request.page_size = 0;  // facade callers page the panel themselves
  AGORAEO_ASSIGN_OR_RETURN(QueryResponse response, Execute(request));
  return SearchResponse{std::move(response.panel),
                        std::move(response.statistics),
                        std::move(response.query_stats)};
}

size_t EarthQube::CountMatches(const EarthQubeQuery& query) const {
  return metadata_->Count(query.ToFilter(
      config_.label_encoding == LabelEncoding::kAsciiCompressed));
}

StatusOr<SearchResponse> EarthQube::SimilarToArchiveImage(
    const std::string& name, uint32_t radius, size_t max_results) const {
  QueryRequest request;
  request.similarity = SimilaritySpec::NameRadius(name, radius, max_results);
  request.page_size = 0;
  AGORAEO_ASSIGN_OR_RETURN(QueryResponse response, Execute(request));
  return SearchResponse{std::move(response.panel),
                        std::move(response.statistics),
                        std::move(response.query_stats)};
}

StatusOr<SearchResponse> EarthQube::NearestToArchiveImage(
    const std::string& name, size_t k) const {
  QueryRequest request;
  request.similarity = SimilaritySpec::NameKnn(name, k);
  request.page_size = 0;
  AGORAEO_ASSIGN_OR_RETURN(QueryResponse response, Execute(request));
  return SearchResponse{std::move(response.panel),
                        std::move(response.statistics),
                        std::move(response.query_stats)};
}

StatusOr<SearchResponse> EarthQube::SimilarToUploadedImage(
    const bigearthnet::Patch& patch, uint32_t radius,
    size_t max_results) const {
  QueryRequest request;
  request.similarity = SimilaritySpec::PatchRadius(patch, radius, max_results);
  request.page_size = 0;
  AGORAEO_ASSIGN_OR_RETURN(QueryResponse response, Execute(request));
  return SearchResponse{std::move(response.panel),
                        std::move(response.statistics),
                        std::move(response.query_stats)};
}

StatusOr<std::vector<std::vector<CbirResult>>>
EarthQube::BatchSimilarToArchiveImages(const std::vector<std::string>& names,
                                       uint32_t radius,
                                       size_t max_results) const {
  std::vector<QueryRequest> requests;
  requests.reserve(names.size());
  for (const std::string& name : names) {
    QueryRequest request;
    request.similarity = SimilaritySpec::NameRadius(name, radius, max_results);
    request.projection = Projection::kHitsOnly;
    request.page_size = 0;
    requests.push_back(std::move(request));
  }
  AGORAEO_ASSIGN_OR_RETURN(std::vector<QueryResponse> responses,
                           ExecuteBatch(requests));
  std::vector<std::vector<CbirResult>> out;
  out.reserve(responses.size());
  for (QueryResponse& response : responses) {
    out.push_back(std::move(response.hits));
  }
  return out;
}

StatusOr<std::vector<std::vector<CbirResult>>>
EarthQube::BatchNearestToArchiveImages(const std::vector<std::string>& names,
                                       size_t k) const {
  std::vector<QueryRequest> requests;
  requests.reserve(names.size());
  for (const std::string& name : names) {
    QueryRequest request;
    request.similarity = SimilaritySpec::NameKnn(name, k);
    request.projection = Projection::kHitsOnly;
    request.page_size = 0;
    requests.push_back(std::move(request));
  }
  AGORAEO_ASSIGN_OR_RETURN(std::vector<QueryResponse> responses,
                           ExecuteBatch(requests));
  std::vector<std::vector<CbirResult>> out;
  out.reserve(responses.size());
  for (QueryResponse& response : responses) {
    out.push_back(std::move(response.hits));
  }
  return out;
}

Status EarthQube::StorePatchPixels(const bigearthnet::Patch& patch) {
  auto inserted = image_data_->Insert(PatchToImageDocument(patch));
  return inserted.ok() ? Status::OK() : inserted.status();
}

StatusOr<bigearthnet::Patch> EarthQube::LoadPatchPixels(
    const std::string& name) const {
  AGORAEO_ASSIGN_OR_RETURN(
      docstore::DocId id,
      image_data_->FindOneId(Filter::Eq("name", Value(name))));
  return ImageDocumentToPatch(*image_data_->Get(id));
}

Status EarthQube::StoreRenderedImage(const bigearthnet::Patch& patch) {
  const auto& band = patch.s2(bigearthnet::S2Band::kB04);
  const std::vector<uint8_t> rgb = bigearthnet::RenderRgb(patch);
  auto inserted = rendered_->Insert(
      RenderedToDocument(patch.meta.name, rgb, band.width, band.height));
  return inserted.ok() ? Status::OK() : inserted.status();
}

StatusOr<std::vector<uint8_t>> EarthQube::GetRenderedImage(
    const std::string& name) const {
  AGORAEO_ASSIGN_OR_RETURN(
      docstore::DocId id,
      rendered_->FindOneId(Filter::Eq("name", Value(name))));
  const Value* rgb = rendered_->Get(id)->Get("rgb");
  if (rgb == nullptr || !rgb->is_binary()) {
    return Status::Corruption("rendered image payload missing: " + name);
  }
  return rgb->as_binary();
}

StatusOr<std::vector<uint8_t>> EarthQube::ExportAsZip(
    const std::vector<std::string>& names) const {
  ZipWriter zip;
  std::string manifest;
  for (const std::string& name : names) {
    AGORAEO_ASSIGN_OR_RETURN(
        docstore::DocId id,
        metadata_->FindOneId(Filter::Eq(kFieldName, Value(name))));
    const docstore::Document* meta = metadata_->Get(id);
    AGORAEO_RETURN_IF_ERROR(
        zip.Add(name + "/metadata.json", meta->ToString()));
    manifest += name + "\n";

    // Raster payload, when the image-data collection holds it.
    auto pixels = image_data_->FindOneId(Filter::Eq("name", Value(name)));
    if (pixels.ok()) {
      ByteWriter bands;
      docstore::SerializeDocument(*image_data_->Get(*pixels), &bands);
      AGORAEO_RETURN_IF_ERROR(zip.Add(name + "/bands.bin", bands.data()));
    }
    // Rendered RGB preview, when present.
    auto rendered = GetRenderedImage(name);
    if (rendered.ok()) {
      AGORAEO_RETURN_IF_ERROR(zip.Add(name + "/preview.rgb", *rendered));
    }
  }
  AGORAEO_RETURN_IF_ERROR(zip.Add("manifest.txt", manifest));
  return zip.Finish();
}

Status EarthQube::SubmitFeedback(const std::string& text) {
  Document doc;
  doc.Set("text", Value(text));
  doc.Set("anonymous", Value(true));
  auto inserted = feedback_->Insert(std::move(doc));
  return inserted.ok() ? Status::OK() : inserted.status();
}

size_t EarthQube::NumFeedbackEntries() const {
  return feedback_->size();
}

StatusOr<bigearthnet::PatchMetadata> EarthQube::GetMetadata(
    const std::string& name) const {
  AGORAEO_ASSIGN_OR_RETURN(
      docstore::DocId id,
      metadata_->FindOneId(Filter::Eq(kFieldName, Value(name))));
  return DocumentToMetadata(*metadata_->Get(id));
}

size_t EarthQube::num_images() const { return metadata_->size(); }

}  // namespace agoraeo::earthqube
