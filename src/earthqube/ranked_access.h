#ifndef AGORAEO_EARTHQUBE_RANKED_ACCESS_H_
#define AGORAEO_EARTHQUBE_RANKED_ACCESS_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "docstore/filter.h"
#include "earthqube/cbir_service.h"
#include "index/hamming_index.h"

namespace agoraeo::earthqube {

/// Knobs of the ranked direct-access registry (EarthQubeConfig::ranked):
/// resumable top-k cursors over lazily streamed shard frontiers.
struct RankedAccessConfig {
  /// Master switch: off restores the stateless eager paging path
  /// (responses materialise the full ranking and the serialiser slices).
  bool enable = true;
  /// Max live query handles; the least recently touched one is evicted
  /// past this (its next page transparently falls back to re-execution).
  size_t handle_capacity = 256;
  /// Byte budget across every handle's buffered survivors.
  size_t handle_max_bytes = 32u << 20;
  /// Age limit since last touch; zero keeps handles until eviction.
  std::chrono::milliseconds handle_ttl{60000};
  /// Time source for TTL bookkeeping; tests inject a fake clock to
  /// avoid sleeping.  Null = steady_clock.
  std::function<std::chrono::steady_clock::time_point()> clock;
};

/// Counters of the registry (the cursor_resume_total metric family and
/// the coordinator/engine stats endpoints read these).
struct RankedAccessStats {
  uint64_t hits = 0;         ///< resumes served from a live handle
  uint64_t misses = 0;       ///< no handle resident (fresh or fallen back)
  uint64_t expired = 0;      ///< handle dropped on TTL expiry
  uint64_t epoch_drops = 0;  ///< handle dropped on cluster/cache epoch bump
  uint64_t registered = 0;
  uint64_t evicted = 0;      ///< capacity/byte-pressure evictions
  size_t handles = 0;        ///< resident handles (gauge)
  size_t bytes = 0;          ///< buffered survivor bytes (gauge)
};

/// The pinned state of one paged ranking: the lazy stream plus every
/// survivor materialised so far, so page N costs only the pull from
/// survivor |seen| to begin+page_size — not a re-execution of pages
/// 0..N-1.  All mutable state is guarded by `mu`; two requests resuming
/// the same cursor serialise on it.  The identity triple (id,
/// fingerprint, epoch) is immutable after registration.
class RankedHandle {
 public:
  /// How survivors are produced from the raw stream.
  enum class Kind {
    kPlain,       ///< stream output IS the result (CBIR-only, pre-filter)
    kPostFilter,  ///< stream -> metadata join -> filter survivors
  };

  RankedHandle(std::string id, std::string fingerprint, uint64_t epoch,
               Kind kind)
      : id_(std::move(id)),
        fingerprint_(std::move(fingerprint)),
        epoch_(epoch),
        kind_(kind) {}

  const std::string& id() const { return id_; }
  const std::string& fingerprint() const { return fingerprint_; }
  uint64_t epoch() const { return epoch_; }
  Kind kind() const { return kind_; }

 private:
  friend class RankedAccess;
  friend class EarthQube;
  friend struct RankedAccessTestPeer;  ///< tests populate survivor state

  const std::string id_;
  const std::string fingerprint_;
  const uint64_t epoch_;
  const Kind kind_;

  std::mutex mu_;
  /// The lazy ranked stream; null for handles registered from an eager
  /// micro-batch pass (already exhausted).
  std::unique_ptr<CbirHitStream> stream_;
  /// Every survivor produced so far, in rank order.
  std::vector<CbirResult> survivors_;
  /// Post-filter only: cumulative docs examined when survivor i was
  /// admitted — replayed so a resumed page reports the same
  /// docs_examined a fresh execution of that page would.
  std::vector<uint64_t> examined_after_;
  uint64_t examined_total_ = 0;
  /// Survivor cap (the request's limit/k); 0 = unbounded.
  size_t survivor_cap_ = 0;
  bool exhausted_ = false;
  /// Post-filter only: the panel filter re-applied per raw hit.
  docstore::Filter filter_ = docstore::Filter::True();

  // Registry bookkeeping, guarded by the REGISTRY mutex (not mu_).
  size_t bytes_ = 0;
  std::chrono::steady_clock::time_point last_touch_{};
  std::list<std::string>::iterator lru_pos_{};
};

/// The bounded, TTL'd, epoch-validated table of live RankedHandles,
/// keyed by handle id (a deterministic hash of the page-free request
/// fingerprint, so every node of a cluster mints the same cursor for
/// the same ranking).  Thread-safe.  A lookup that fails for any reason
/// is not an error — the caller re-executes the page from a fresh
/// stream and re-registers.
class RankedAccess {
 public:
  explicit RankedAccess(const RankedAccessConfig& config);

  /// Deterministic handle id for a stream fingerprint: FNV-1a 64 in
  /// hex.  Not std::hash — the id travels inside cursors between
  /// processes, so it must be stable across implementations.
  static std::string HandleIdFor(const std::string& fingerprint);

  /// Returns the live handle for `id` iff it is resident, unexpired,
  /// was registered under `current_epoch` AND stores exactly
  /// `fingerprint`; null otherwise (counted as miss / expired /
  /// epoch_drop).  The full-fingerprint comparison closes the 64-bit
  /// FNV id space: two queries whose fingerprints collide under the
  /// non-cryptographic hash must not serve each other's ranking.  A
  /// returned handle is pinned by the shared_ptr — eviction can drop it
  /// from the table mid-use safely.
  std::shared_ptr<RankedHandle> Get(const std::string& id,
                                    const std::string& fingerprint,
                                    uint64_t current_epoch);

  /// Registers a freshly opened handle.  First-wins: when a concurrent
  /// request already registered this id under the same epoch and
  /// fingerprint, the resident handle is returned and `handle` is
  /// discarded (two racing page-0 executions must converge on one
  /// pinned stream).  A resident with the same id but a DIFFERENT
  /// fingerprint (FNV collision) keeps the slot; `handle` is returned
  /// unregistered and serves its one request ephemerally.
  std::shared_ptr<RankedHandle> Register(std::shared_ptr<RankedHandle> handle);

  /// Re-accounts a handle's survivor bytes after an extension and
  /// refreshes its LRU position; may evict colder handles.  `bytes` is
  /// the caller's ApproxBytes measurement, taken while it still held
  /// handle->mu_ — Touch itself must not walk survivors_, which a
  /// concurrent resume of the same cursor may be extending.
  void Touch(const std::shared_ptr<RankedHandle>& handle, size_t bytes);

  /// Approximate heap footprint of a handle's buffered survivor state.
  /// Callers must hold handle.mu_ (or own the handle exclusively).
  static size_t ApproxBytes(const RankedHandle& handle);

  /// Drops every handle (a new CBIR service invalidates the streams'
  /// borrowed name map, not just their results).
  void Clear();

  RankedAccessStats Stats() const;
  const RankedAccessConfig& config() const { return config_; }

 private:
  std::chrono::steady_clock::time_point Now() const;
  /// Evicts LRU handles past the count/byte budgets; `keep` survives.
  void EvictLocked(const RankedHandle* keep);
  void RemoveLocked(const std::string& id);

  const RankedAccessConfig config_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<RankedHandle>> handles_;
  /// Most recent at the front; RankedHandle::lru_pos_ points in here.
  std::list<std::string> lru_;
  size_t total_bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t expired_ = 0;
  uint64_t epoch_drops_ = 0;
  uint64_t registered_ = 0;
  uint64_t evicted_ = 0;
};

}  // namespace agoraeo::earthqube

#endif  // AGORAEO_EARTHQUBE_RANKED_ACCESS_H_
