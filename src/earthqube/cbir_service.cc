#include "earthqube/cbir_service.h"

#include <algorithm>
#include <filesystem>
#include <thread>

#include "common/logging.h"
#include "common/simd/hamming_kernels.h"
#include "index/bk_tree.h"
#include "index/hamming_table.h"
#include "index/index_snapshot.h"
#include "index/linear_scan.h"

namespace agoraeo::earthqube {

namespace {

std::unique_ptr<index::HammingIndex> MakeIndex(CbirIndexKind kind) {
  switch (kind) {
    case CbirIndexKind::kHashTable:
      return std::make_unique<index::HammingHashTable>();
    case CbirIndexKind::kMultiIndex:
      return std::make_unique<index::MultiIndexHashing>(4);
    case CbirIndexKind::kLinearScan:
      return std::make_unique<index::LinearScanIndex>();
    case CbirIndexKind::kBkTree:
      return std::make_unique<index::BkTree>();
  }
  return std::make_unique<index::HammingHashTable>();
}

std::string IndexWalPath(const std::string& dir) {
  return (std::filesystem::path(dir) / "index.wal").string();
}

}  // namespace

CbirService::CbirService(std::unique_ptr<milan::MilanModel> model,
                         const bigearthnet::FeatureExtractor* extractor,
                         CbirConfig config)
    : model_(std::move(model)), extractor_(extractor), config_(config) {
  if (config_.num_shards > 1) {
    // The partition layer: N hash-partitioned instances of the
    // configured kind behind one scatter–gather facade.  Each shard is
    // itself segment-structured (sealed segments read lock-free).
    auto sharded = std::make_unique<index::ShardedHammingIndex>(
        config_.num_shards,
        [kind = config_.index_kind] { return MakeIndex(kind); },
        config_.seal_threshold, config_.compact_threshold);
    sharded_ = sharded.get();
    index_ = std::move(sharded);
  } else if (config_.seal_threshold > 0) {
    // Monolithic but segment-structured: one shard's worth of segments.
    auto segmented = std::make_unique<index::SegmentedHammingIndex>(
        [kind = config_.index_kind] { return MakeIndex(kind); },
        config_.seal_threshold, config_.compact_threshold);
    segmented_ = segmented.get();
    index_ = std::move(segmented);
  } else {
    index_ = MakeIndex(config_.index_kind);
  }
  items_since_snapshot_.assign(std::max<size_t>(1, config_.num_shards), 0);
  if (!config_.force_kernel.empty() &&
      !simd::ForceKernel(config_.force_kernel)) {
    AGORAEO_LOG(kWarning) << "force_kernel=\"" << config_.force_kernel
                          << "\" is not a usable kernel on this host; "
                             "keeping automatic selection ("
                          << simd::ActiveKernel()->name << ")";
  }
}

size_t CbirService::SnapshotShardOf(index::ItemId id) const {
  return config_.num_shards > 1
             ? index::ShardedHammingIndex::ShardOf(id, config_.num_shards)
             : 0;
}

Status CbirService::Recover(
    const std::function<bool(const std::string&)>& keep) {
  if (config_.snapshot_dir.empty()) return Status::OK();
  if (num_indexed() != 0) {
    return Status::FailedPrecondition(
        "Recover() must run before any image is indexed");
  }
  std::error_code ec;
  std::filesystem::create_directories(config_.snapshot_dir, ec);
  if (ec) {
    return Status::IOError("cannot create snapshot dir: " + ec.message());
  }
  const size_t num_shards = std::max<size_t>(1, config_.num_shards);

  // 1. Snapshots.  Corruption is survivable by design: warn, discard,
  // let the WAL (or the contiguous-prefix cut) cover the difference.
  struct Restored {
    std::string name;
    BinaryCode code;
  };
  std::unordered_map<index::ItemId, Restored> items;
  for (size_t s = 0; s < num_shards; ++s) {
    const std::string path =
        index::ShardSnapshotPath(config_.snapshot_dir, s);
    auto snap_or = index::ReadIndexSnapshot(path);
    if (!snap_or.ok()) {
      if (snap_or.status().IsNotFound()) continue;
      AGORAEO_LOG(kWarning) << "discarding snapshot " << path << ": "
                            << snap_or.status().message();
      ++pstats_.discarded_snapshots;
      continue;
    }
    index::IndexSnapshot snap = std::move(snap_or).value();
    if (snap.shard_index != s || snap.num_shards != num_shards) {
      AGORAEO_LOG(kWarning) << "discarding snapshot " << path
                            << ": sharding mismatch (file says shard "
                            << snap.shard_index << "/" << snap.num_shards
                            << ", service has " << s << "/" << num_shards
                            << ")";
      ++pstats_.discarded_snapshots;
      continue;
    }
    for (size_t i = 0; i < snap.ids.size(); ++i) {
      std::vector<uint64_t> words(
          snap.code_words.begin() + i * snap.words_per_code,
          snap.code_words.begin() + (i + 1) * snap.words_per_code);
      items.emplace(snap.ids[i],
                    Restored{std::move(snap.names[i]),
                             BinaryCode::FromWords(snap.code_bits,
                                                   std::move(words))});
    }
    pstats_.restored_items += snap.ids.size();
  }

  // 2. WAL catch-up: records whose items a snapshot already covers are
  // skipped item-by-item (snapshot cadence is per shard, so one record
  // can be half-covered).
  const std::string wal_path = IndexWalPath(config_.snapshot_dir);
  AGORAEO_ASSIGN_OR_RETURN(
      index::IndexWalReplayResult replay,
      index::ReplayIndexWal(
          wal_path, [&](const index::IndexWalRecord& record) {
            for (size_t i = 0; i < record.names.size(); ++i) {
              const index::ItemId id = record.first_seq + i;
              if (items.emplace(id, Restored{record.names[i],
                                             record.codes[i]})
                      .second) {
                ++pstats_.replayed_items;
              }
            }
            return Status::OK();
          }));
  pstats_.wal_tail_discarded = replay.tail_discarded;

  // 3. Contiguous prefix: ids are assigned 0..n-1, so recovery must
  // surface a prefix of that sequence.  A discarded snapshot whose
  // items predate the WAL leaves holes; everything past the first hole
  // is dropped (and the checkpoint below re-canonicalises disk).
  index::ItemId prefix = 0;
  while (items.count(prefix) != 0) ++prefix;
  size_t dropped = 0;
  for (const auto& [id, item] : items) {
    if (id >= prefix) ++dropped;
  }
  if (dropped > 0) {
    AGORAEO_LOG(kWarning) << "index recovery dropped " << dropped
                          << " items past id " << prefix
                          << " (hole left by a lost snapshot)";
    pstats_.dropped_items = dropped;
  }

  // 4. Bulk-load: stored codes go straight into the index — no model
  // inference — and the maps are rebuilt in id order.  A keep predicate
  // (slot-filtered cluster boot) drops migrated-away items here and
  // renumbers the survivors contiguously; that diverges from the ids on
  // disk, so a filtered recovery is treated as lossy below and
  // re-checkpointed under the new ids.
  size_t filtered_out = 0;
  if (prefix > 0) {
    std::vector<index::ItemId> ids;
    std::vector<std::string> names;
    std::vector<BinaryCode> codes;
    ids.reserve(prefix);
    names.reserve(prefix);
    codes.reserve(prefix);
    for (index::ItemId id = 0; id < prefix; ++id) {
      auto node = items.extract(id);
      if (keep != nullptr && !keep(node.mapped().name)) {
        ++filtered_out;
        continue;
      }
      ids.push_back(ids.size());
      names.push_back(std::move(node.mapped().name));
      codes.push_back(std::move(node.mapped().code));
    }
    AGORAEO_RETURN_IF_ERROR(
        index_->BatchAdd(ids, codes, sharded_ != nullptr ? QueryPool() : nullptr));
    name_by_id_.reserve(ids.size());
    for (index::ItemId id = 0; id < ids.size(); ++id) {
      name_by_id_.push_back(names[id]);
      code_by_name_.emplace(names[id], std::move(codes[id]));
      id_by_name_.emplace(std::move(names[id]), id);
    }
  }
  pstats_.recovered = true;

  // 5. Make disk canonical again, then open the WAL for appending.
  const bool lossy =
      pstats_.discarded_snapshots > 0 || dropped > 0 || filtered_out > 0;
  if (lossy) {
    for (size_t s = 0; s < num_shards; ++s) {
      AGORAEO_RETURN_IF_ERROR(WriteShardSnapshot(s));
    }
    AGORAEO_RETURN_IF_ERROR(TruncateFile(wal_path, 0));
  } else if (replay.tail_discarded) {
    // Cut the torn tail so new frames never land after garbage.
    AGORAEO_RETURN_IF_ERROR(
        TruncateFile(wal_path, replay.valid_bytes));
  }
  AGORAEO_RETURN_IF_ERROR(wal_.Open(wal_path, config_.wal_sync));
  pstats_.enabled = true;
  AGORAEO_LOG(kInfo) << "CBIR index recovered: " << num_indexed()
                     << " items (" << pstats_.restored_items
                     << " from snapshots, " << pstats_.replayed_items
                     << " from WAL)";
  return Status::OK();
}

void CbirService::AttachObservability(obs::Observability* obs) {
  if (obs == nullptr || !obs->metrics_enabled()) return;
  if (sharded_ != nullptr) {
    sharded_->set_scan_histogram(
        obs->HistogramOrNull("agoraeo_index_shard_scan_ns"));
  }
  wal_.set_sync_histogram(obs->HistogramOrNull("agoraeo_wal_sync_ns"));
  snapshot_write_ = obs->HistogramOrNull("agoraeo_snapshot_write_ns");
  // Kernel dispatch counts live in the process-global dispatch table
  // (the kernels are shared by every index in the process); a collector
  // reads them at scrape time so the table stays the single counting
  // truth.
  obs->registry().AddCollector([](std::vector<obs::Sample>* out) {
    const auto& kernels = simd::CompiledKernels();
    for (size_t i = 0; i < kernels.size(); ++i) {
      obs::Sample sample;
      sample.name = obs::LabeledName("agoraeo_index_kernel_dispatch_total",
                                     "kernel", kernels[i]->name);
      sample.kind = obs::SampleKind::kCounter;
      sample.value = static_cast<double>(simd::DispatchCount(i));
      out->push_back(std::move(sample));
    }
  });
}

Status CbirService::WriteShardSnapshot(size_t s) {
  obs::ScopedTimer snapshot_timer(snapshot_write_);
  const size_t num_shards = std::max<size_t>(1, config_.num_shards);
  index::IndexSnapshot snap;
  snap.shard_index = static_cast<uint32_t>(s);
  snap.num_shards = static_cast<uint32_t>(num_shards);
  snap.watermark = num_indexed();
  for (index::ItemId id = 0; id < name_by_id_.size(); ++id) {
    if (SnapshotShardOf(id) != s) continue;
    const BinaryCode& code = code_by_name_.at(name_by_id_[id]);
    if (snap.code_bits == 0 && code.size() != 0) {
      snap.code_bits = static_cast<uint32_t>(code.size());
      snap.words_per_code = static_cast<uint32_t>(code.words().size());
    }
    snap.ids.push_back(id);
    snap.names.push_back(name_by_id_[id]);
    snap.code_words.insert(snap.code_words.end(), code.words().begin(),
                           code.words().end());
  }
  AGORAEO_RETURN_IF_ERROR(index::WriteIndexSnapshot(
      index::ShardSnapshotPath(config_.snapshot_dir, s), snap));
  items_since_snapshot_[s] = 0;
  ++pstats_.snapshots_written;
  return Status::OK();
}

Status CbirService::MaybeSnapshotShards() {
  if (config_.seal_threshold == 0) return Status::OK();
  for (size_t s = 0; s < items_since_snapshot_.size(); ++s) {
    if (items_since_snapshot_[s] >= config_.seal_threshold) {
      AGORAEO_RETURN_IF_ERROR(WriteShardSnapshot(s));
    }
  }
  return Status::OK();
}

Status CbirService::LogIngest(index::ItemId first_seq,
                              const std::vector<std::string>& names,
                              const std::vector<BinaryCode>& codes) {
  if (!wal_.is_open()) return Status::OK();
  index::IndexWalRecord record;
  record.first_seq = first_seq;
  record.names = names;
  record.codes = codes;
  AGORAEO_RETURN_IF_ERROR(wal_.Append(record));
  pstats_.wal_records = wal_.records_appended();
  for (size_t i = 0; i < names.size(); ++i) {
    ++items_since_snapshot_[SnapshotShardOf(first_seq + i)];
  }
  return MaybeSnapshotShards();
}

Status CbirService::Snapshot() {
  if (config_.snapshot_dir.empty()) {
    return Status::FailedPrecondition("service has no snapshot_dir");
  }
  if (!wal_.is_open()) {
    return Status::FailedPrecondition(
        "Recover() must open the persistence layer before Snapshot()");
  }
  // Align snapshot and segment boundaries: everything snapshotted is
  // also sealed, so post-snapshot reads of old data are all lock-free.
  if (sharded_ != nullptr) {
    AGORAEO_RETURN_IF_ERROR(sharded_->SealAll());
  } else if (segmented_ != nullptr) {
    AGORAEO_RETURN_IF_ERROR(segmented_->Seal());
  }
  const size_t num_shards = std::max<size_t>(1, config_.num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    AGORAEO_RETURN_IF_ERROR(WriteShardSnapshot(s));
  }
  // Every WAL record is now covered by a snapshot.
  return wal_.Reset();
}

ThreadPool* CbirService::QueryPool() const {
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (pool_ == nullptr) {
    size_t threads = config_.query_threads;
    if (threads == 0) {
      threads = std::max<size_t>(1, std::thread::hardware_concurrency());
    }
    if (threads == 1) return nullptr;  // sequential: no pool at all
    pool_ = std::make_unique<ThreadPool>(threads);
    if (config_.pin_shard_threads) {
      const size_t pinned = pool_->PinThreads();
      AGORAEO_LOG(kInfo) << "query pool: pinned " << pinned << "/"
                         << pool_->num_threads() << " workers to CPUs";
    }
  }
  return pool_.get();
}

Status CbirService::AddImage(const std::string& patch_name,
                             const Tensor& feature) {
  if (code_by_name_.count(patch_name) != 0) {
    return Status::AlreadyExists("image already indexed: " + patch_name);
  }
  const BinaryCode code = model_->HashOne(feature);
  const index::ItemId id = name_by_id_.size();
  AGORAEO_RETURN_IF_ERROR(index_->Add(id, code));
  name_by_id_.push_back(patch_name);
  code_by_name_.emplace(patch_name, code);
  id_by_name_.emplace(patch_name, id);
  return LogIngest(id, {patch_name}, {code});
}

Status CbirService::AddImages(const std::vector<std::string>& names,
                              const Tensor& features) {
  if (features.rank() != 2 || features.dim(0) != names.size()) {
    return Status::InvalidArgument("features shape mismatch with names");
  }
  return AddImagesWithCodes(names, model_->HashBatch(features));
}

Status CbirService::AddImagesWithCodes(const std::vector<std::string>& names,
                                       const std::vector<BinaryCode>& codes) {
  if (codes.size() != names.size()) {
    return Status::InvalidArgument("codes length mismatch with names");
  }
  // Pre-validate the whole batch (duplicate names, uniform code length)
  // so the parallel per-shard ingest below cannot fail halfway: all the
  // realistic Add errors are caught before the index is touched.
  std::unordered_map<std::string, size_t> batch_names;
  for (size_t i = 0; i < names.size(); ++i) {
    if (code_by_name_.count(names[i]) != 0 ||
        !batch_names.emplace(names[i], i).second) {
      return Status::AlreadyExists("image already indexed: " + names[i]);
    }
  }
  const size_t expected_bits =
      code_by_name_.empty() ? (codes.empty() ? 0 : codes.front().size())
                            : code_by_name_.begin()->second.size();
  if (expected_bits == 0 && !codes.empty()) {
    return Status::InvalidArgument("model produced empty binary codes");
  }
  for (const BinaryCode& code : codes) {
    if (code.size() != expected_bits) {
      return Status::InvalidArgument("code length mismatch within batch");
    }
  }
  std::vector<index::ItemId> ids(names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    ids[i] = name_by_id_.size() + i;
  }
  // Sharded indexes ingest every partition's slice in parallel on the
  // query pool; the monolithic default is a sequential loop, so don't
  // spin the pool up for it (it stays lazy until the first batch
  // query, as before the partition layer).
  AGORAEO_RETURN_IF_ERROR(
      index_->BatchAdd(ids, codes, sharded_ != nullptr ? QueryPool() : nullptr));
  const index::ItemId first_seq = ids.empty() ? 0 : ids.front();
  for (size_t i = 0; i < names.size(); ++i) {
    name_by_id_.push_back(names[i]);
    code_by_name_.emplace(names[i], codes[i]);
    id_by_name_.emplace(names[i], ids[i]);
  }
  if (names.empty()) return Status::OK();
  // One WAL frame per ingest batch: a torn frame loses the whole batch
  // cleanly, never half of it.
  return LogIngest(first_seq, names, codes);
}

std::vector<CbirResult> CbirService::ToResults(
    const std::vector<index::SearchResult>& hits, size_t max_results,
    const std::string& exclude_name) const {
  std::vector<CbirResult> out;
  out.reserve(hits.size());
  for (const auto& hit : hits) {
    const std::string& name = name_by_id_[hit.id];
    if (name == exclude_name) continue;
    out.push_back({name, hit.distance});
    if (max_results != 0 && out.size() >= max_results) break;
  }
  return out;
}

StatusOr<std::vector<CbirResult>> CbirService::QueryByName(
    const std::string& patch_name, uint32_t radius,
    size_t max_results) const {
  auto it = code_by_name_.find(patch_name);
  if (it == code_by_name_.end()) {
    return Status::NotFound("image not in archive index: " + patch_name);
  }
  return RadiusByCode(it->second, radius, max_results, patch_name);
}

StatusOr<std::vector<CbirResult>> CbirService::KnnByName(
    const std::string& patch_name, size_t k) const {
  auto it = code_by_name_.find(patch_name);
  if (it == code_by_name_.end()) {
    return Status::NotFound("image not in archive index: " + patch_name);
  }
  return KnnByCode(it->second, k, patch_name);
}

StatusOr<std::vector<CbirResult>> CbirService::QueryByPatch(
    const bigearthnet::Patch& patch, uint32_t radius, size_t max_results) {
  AGORAEO_ASSIGN_OR_RETURN(BinaryCode code, HashPatch(patch));
  return RadiusByCode(code, radius, max_results);
}

std::vector<CbirResult> CbirService::QueryByFeature(const Tensor& feature,
                                                    uint32_t radius,
                                                    size_t max_results) {
  return RadiusByCode(model_->HashOne(feature), radius, max_results);
}

std::vector<CbirResult> CbirService::RadiusByCode(
    const BinaryCode& code, uint32_t radius, size_t max_results,
    const std::string& exclude_name) const {
  return ToResults(index_->RadiusSearch(code, radius), max_results,
                   exclude_name);
}

std::vector<CbirResult> CbirService::KnnByCode(
    const BinaryCode& code, size_t k, const std::string& exclude_name) const {
  // k == 0 must return nothing: ToResults treats a 0 cap as "unlimited",
  // and the k+1 overfetch below would otherwise surface one neighbour.
  if (k == 0) return {};
  // Fetch one extra so a self-match can be dropped.
  const size_t fetch = exclude_name.empty() ? k : k + 1;
  return ToResults(index_->KnnSearch(code, fetch), k, exclude_name);
}

std::vector<CbirResult> CbirService::RadiusByCodeRestricted(
    const BinaryCode& code, uint32_t radius, size_t max_results,
    const index::CandidateSet& allowed, const std::string& exclude_name) const {
  return ToResults(index_->RadiusSearchIn(code, radius, allowed), max_results,
                   exclude_name);
}

std::vector<CbirResult> CbirService::KnnByCodeRestricted(
    const BinaryCode& code, size_t k, const index::CandidateSet& allowed,
    const std::string& exclude_name) const {
  if (k == 0) return {};
  const size_t fetch = exclude_name.empty() ? k : k + 1;
  return ToResults(index_->KnnSearchIn(code, fetch, allowed), k, exclude_name);
}

size_t CbirHitStream::Next(size_t n, std::vector<CbirResult>* out) {
  if (cap_ != 0) n = std::min(n, cap_ - emitted_);
  size_t produced = 0;
  while (produced < n) {
    buffer_.clear();
    if (frontier_->Next(n - produced, &buffer_) == 0) break;
    for (const auto& hit : buffer_) {
      const std::string& name = (*name_by_id_)[hit.id];
      if (name == exclude_name_) continue;
      out->push_back({name, hit.distance});
      ++produced;
    }
  }
  emitted_ += produced;
  return produced;
}

std::unique_ptr<CbirHitStream> CbirService::OpenStream(
    const BinaryCode& code, std::optional<uint32_t> radius, size_t cap,
    std::shared_ptr<const index::CandidateSet> allowed,
    const std::string& exclude_name) const {
  auto stream = std::unique_ptr<CbirHitStream>(new CbirHitStream());
  stream->name_by_id_ = &name_by_id_;
  stream->allowed_pin_ = std::move(allowed);
  stream->exclude_name_ = exclude_name;
  if (!radius.has_value() && cap == 0) {
    // k-NN with k == 0 streams nothing (KnnByCode parity); a cap of 0
    // everywhere else means "unlimited", so pin an exhausted frontier.
    stream->frontier_ = std::make_unique<index::MaterializedFrontier>(
        std::vector<index::SearchResult>{});
    return stream;
  }
  stream->cap_ = cap;
  index::FrontierOptions options;
  options.radius = radius;
  options.allowed = stream->allowed_pin_.get();
  stream->frontier_ = index_->OpenFrontier(code, options);
  return stream;
}

index::CandidateSet CbirService::CandidatesFromNames(
    const std::vector<std::string>& names) const {
  std::vector<index::ItemId> ids;
  ids.reserve(names.size());
  for (const std::string& name : names) {
    auto it = id_by_name_.find(name);
    if (it != id_by_name_.end()) ids.push_back(it->second);
  }
  return index::CandidateSet(std::move(ids));
}

StatusOr<BinaryCode> CbirService::HashPatch(
    const bigearthnet::Patch& patch) const {
  if (patch.s2_bands.size() != bigearthnet::kNumS2Bands ||
      patch.s1_channels.size() != bigearthnet::kNumS1Channels) {
    return Status::InvalidArgument(
        "uploaded patch must carry 12 Sentinel-2 bands and 2 Sentinel-1 "
        "channels");
  }
  const Tensor feature = extractor_->ExtractFromPixels(patch);
  // Inference mutates no service state; dropout is disabled outside
  // training, so the forward pass is logically const.
  return model_->HashOne(feature);
}

StatusOr<std::vector<std::vector<CbirResult>>> CbirService::QueryBatchByName(
    const std::vector<std::string>& names, uint32_t radius,
    size_t max_results) const {
  std::vector<BinaryCode> codes;
  codes.reserve(names.size());
  for (const std::string& name : names) {
    auto it = code_by_name_.find(name);
    if (it == code_by_name_.end()) {
      return Status::NotFound("image not in archive index: " + name);
    }
    codes.push_back(it->second);
  }
  const auto batch_hits = index_->BatchRadiusSearch(codes, radius, QueryPool());
  std::vector<std::vector<CbirResult>> out(names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    out[i] = ToResults(batch_hits[i], max_results, names[i]);
  }
  return out;
}

StatusOr<std::vector<std::vector<CbirResult>>> CbirService::KnnBatchByName(
    const std::vector<std::string>& names, size_t k) const {
  std::vector<BinaryCode> codes;
  codes.reserve(names.size());
  for (const std::string& name : names) {
    auto it = code_by_name_.find(name);
    if (it == code_by_name_.end()) {
      return Status::NotFound("image not in archive index: " + name);
    }
    codes.push_back(it->second);
  }
  // Same k == 0 guard as KnnByName (names were still validated above).
  if (k == 0) return std::vector<std::vector<CbirResult>>(names.size());
  // Fetch one extra per query so the self-match can be dropped.
  const auto batch_hits = index_->BatchKnnSearch(codes, k + 1, QueryPool());
  std::vector<std::vector<CbirResult>> out(names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    out[i] = ToResults(batch_hits[i], k, names[i]);
  }
  return out;
}

StatusOr<std::vector<std::vector<CbirResult>>> CbirService::QueryBatch(
    const Tensor& features, uint32_t radius, size_t max_results) {
  if (features.rank() != 2 ||
      features.dim(1) != model_->config().feature_dim) {
    return Status::InvalidArgument(
        "features must be [batch, feature_dim] for batch query");
  }
  // One forward pass through MiLaN for the whole matrix; per-query
  // inference is the dominant fixed cost this amortises.
  const std::vector<BinaryCode> codes = model_->HashBatch(features);
  const auto batch_hits = index_->BatchRadiusSearch(codes, radius, QueryPool());
  std::vector<std::vector<CbirResult>> out(codes.size());
  for (size_t i = 0; i < codes.size(); ++i) {
    out[i] = ToResults(batch_hits[i], max_results, /*exclude_name=*/"");
  }
  return out;
}

std::vector<std::vector<CbirResult>> CbirService::RadiusBatchByCode(
    const std::vector<BinaryCode>& codes, uint32_t radius,
    const std::vector<size_t>& max_results,
    const std::vector<std::string>& exclude_names) const {
  const auto batch_hits = index_->BatchRadiusSearch(codes, radius, QueryPool());
  std::vector<std::vector<CbirResult>> out(codes.size());
  for (size_t i = 0; i < codes.size(); ++i) {
    out[i] = ToResults(batch_hits[i], max_results[i], exclude_names[i]);
  }
  return out;
}

std::vector<std::vector<CbirResult>> CbirService::KnnBatchByCode(
    const std::vector<BinaryCode>& codes, size_t k,
    const std::vector<std::string>& exclude_names) const {
  std::vector<std::vector<CbirResult>> out(codes.size());
  if (k == 0) return out;  // same guard as KnnByCode
  // One extra per query so a self-match can be dropped; slots without
  // an exclusion take the first k of the canonical (distance, id)
  // order, which equals a direct k-fetch.
  const bool any_exclude =
      std::any_of(exclude_names.begin(), exclude_names.end(),
                  [](const std::string& name) { return !name.empty(); });
  const auto batch_hits =
      index_->BatchKnnSearch(codes, any_exclude ? k + 1 : k, QueryPool());
  for (size_t i = 0; i < codes.size(); ++i) {
    out[i] = ToResults(batch_hits[i], k, exclude_names[i]);
  }
  return out;
}

std::vector<std::vector<CbirResult>> CbirService::RadiusBatchByCodeRestricted(
    const std::vector<BinaryCode>& codes, uint32_t radius,
    const std::vector<size_t>& max_results, const index::CandidateSet& allowed,
    const std::vector<std::string>& exclude_names) const {
  const auto batch_hits =
      index_->BatchRadiusSearchIn(codes, radius, allowed, QueryPool());
  std::vector<std::vector<CbirResult>> out(codes.size());
  for (size_t i = 0; i < codes.size(); ++i) {
    out[i] = ToResults(batch_hits[i], max_results[i], exclude_names[i]);
  }
  return out;
}

std::vector<std::vector<CbirResult>> CbirService::KnnBatchByCodeRestricted(
    const std::vector<BinaryCode>& codes, size_t k,
    const index::CandidateSet& allowed,
    const std::vector<std::string>& exclude_names) const {
  std::vector<std::vector<CbirResult>> out(codes.size());
  if (k == 0) return out;
  const bool any_exclude =
      std::any_of(exclude_names.begin(), exclude_names.end(),
                  [](const std::string& name) { return !name.empty(); });
  const auto batch_hits = index_->BatchKnnSearchIn(
      codes, any_exclude ? k + 1 : k, allowed, QueryPool());
  for (size_t i = 0; i < codes.size(); ++i) {
    out[i] = ToResults(batch_hits[i], k, exclude_names[i]);
  }
  return out;
}

StatusOr<BinaryCode> CbirService::CodeOf(const std::string& patch_name) const {
  auto it = code_by_name_.find(patch_name);
  if (it == code_by_name_.end()) {
    return Status::NotFound("image not in archive index: " + patch_name);
  }
  return it->second;
}

}  // namespace agoraeo::earthqube
