#include "earthqube/cbir_service.h"

#include <algorithm>
#include <thread>

#include "index/bk_tree.h"
#include "index/hamming_table.h"
#include "index/linear_scan.h"

namespace agoraeo::earthqube {

namespace {

std::unique_ptr<index::HammingIndex> MakeIndex(CbirIndexKind kind) {
  switch (kind) {
    case CbirIndexKind::kHashTable:
      return std::make_unique<index::HammingHashTable>();
    case CbirIndexKind::kMultiIndex:
      return std::make_unique<index::MultiIndexHashing>(4);
    case CbirIndexKind::kLinearScan:
      return std::make_unique<index::LinearScanIndex>();
    case CbirIndexKind::kBkTree:
      return std::make_unique<index::BkTree>();
  }
  return std::make_unique<index::HammingHashTable>();
}

}  // namespace

CbirService::CbirService(std::unique_ptr<milan::MilanModel> model,
                         const bigearthnet::FeatureExtractor* extractor,
                         CbirConfig config)
    : model_(std::move(model)), extractor_(extractor), config_(config) {
  if (config_.num_shards > 1) {
    // The partition layer: N hash-partitioned instances of the
    // configured kind behind one scatter–gather facade.
    auto sharded = std::make_unique<index::ShardedHammingIndex>(
        config_.num_shards,
        [kind = config_.index_kind] { return MakeIndex(kind); });
    sharded_ = sharded.get();
    index_ = std::move(sharded);
  } else {
    index_ = MakeIndex(config_.index_kind);
  }
}

ThreadPool* CbirService::QueryPool() const {
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (pool_ == nullptr) {
    size_t threads = config_.query_threads;
    if (threads == 0) {
      threads = std::max<size_t>(1, std::thread::hardware_concurrency());
    }
    if (threads == 1) return nullptr;  // sequential: no pool at all
    pool_ = std::make_unique<ThreadPool>(threads);
  }
  return pool_.get();
}

Status CbirService::AddImage(const std::string& patch_name,
                             const Tensor& feature) {
  if (code_by_name_.count(patch_name) != 0) {
    return Status::AlreadyExists("image already indexed: " + patch_name);
  }
  const BinaryCode code = model_->HashOne(feature);
  const index::ItemId id = name_by_id_.size();
  AGORAEO_RETURN_IF_ERROR(index_->Add(id, code));
  name_by_id_.push_back(patch_name);
  code_by_name_.emplace(patch_name, code);
  id_by_name_.emplace(patch_name, id);
  return Status::OK();
}

Status CbirService::AddImages(const std::vector<std::string>& names,
                              const Tensor& features) {
  if (features.rank() != 2 || features.dim(0) != names.size()) {
    return Status::InvalidArgument("features shape mismatch with names");
  }
  const std::vector<BinaryCode> codes = model_->HashBatch(features);
  // Pre-validate the whole batch (duplicate names, uniform code length)
  // so the parallel per-shard ingest below cannot fail halfway: all the
  // realistic Add errors are caught before the index is touched.
  std::unordered_map<std::string, size_t> batch_names;
  for (size_t i = 0; i < names.size(); ++i) {
    if (code_by_name_.count(names[i]) != 0 ||
        !batch_names.emplace(names[i], i).second) {
      return Status::AlreadyExists("image already indexed: " + names[i]);
    }
  }
  const size_t expected_bits =
      code_by_name_.empty() ? (codes.empty() ? 0 : codes.front().size())
                            : code_by_name_.begin()->second.size();
  if (expected_bits == 0 && !codes.empty()) {
    return Status::InvalidArgument("model produced empty binary codes");
  }
  for (const BinaryCode& code : codes) {
    if (code.size() != expected_bits) {
      return Status::InvalidArgument("code length mismatch within batch");
    }
  }
  std::vector<index::ItemId> ids(names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    ids[i] = name_by_id_.size() + i;
  }
  // Sharded indexes ingest every partition's slice in parallel on the
  // query pool; the monolithic default is a sequential loop, so don't
  // spin the pool up for it (it stays lazy until the first batch
  // query, as before the partition layer).
  AGORAEO_RETURN_IF_ERROR(
      index_->BatchAdd(ids, codes, sharded_ != nullptr ? QueryPool() : nullptr));
  for (size_t i = 0; i < names.size(); ++i) {
    name_by_id_.push_back(names[i]);
    code_by_name_.emplace(names[i], codes[i]);
    id_by_name_.emplace(names[i], ids[i]);
  }
  return Status::OK();
}

std::vector<CbirResult> CbirService::ToResults(
    const std::vector<index::SearchResult>& hits, size_t max_results,
    const std::string& exclude_name) const {
  std::vector<CbirResult> out;
  out.reserve(hits.size());
  for (const auto& hit : hits) {
    const std::string& name = name_by_id_[hit.id];
    if (name == exclude_name) continue;
    out.push_back({name, hit.distance});
    if (max_results != 0 && out.size() >= max_results) break;
  }
  return out;
}

StatusOr<std::vector<CbirResult>> CbirService::QueryByName(
    const std::string& patch_name, uint32_t radius,
    size_t max_results) const {
  auto it = code_by_name_.find(patch_name);
  if (it == code_by_name_.end()) {
    return Status::NotFound("image not in archive index: " + patch_name);
  }
  return RadiusByCode(it->second, radius, max_results, patch_name);
}

StatusOr<std::vector<CbirResult>> CbirService::KnnByName(
    const std::string& patch_name, size_t k) const {
  auto it = code_by_name_.find(patch_name);
  if (it == code_by_name_.end()) {
    return Status::NotFound("image not in archive index: " + patch_name);
  }
  return KnnByCode(it->second, k, patch_name);
}

StatusOr<std::vector<CbirResult>> CbirService::QueryByPatch(
    const bigearthnet::Patch& patch, uint32_t radius, size_t max_results) {
  AGORAEO_ASSIGN_OR_RETURN(BinaryCode code, HashPatch(patch));
  return RadiusByCode(code, radius, max_results);
}

std::vector<CbirResult> CbirService::QueryByFeature(const Tensor& feature,
                                                    uint32_t radius,
                                                    size_t max_results) {
  return RadiusByCode(model_->HashOne(feature), radius, max_results);
}

std::vector<CbirResult> CbirService::RadiusByCode(
    const BinaryCode& code, uint32_t radius, size_t max_results,
    const std::string& exclude_name) const {
  return ToResults(index_->RadiusSearch(code, radius), max_results,
                   exclude_name);
}

std::vector<CbirResult> CbirService::KnnByCode(
    const BinaryCode& code, size_t k, const std::string& exclude_name) const {
  // k == 0 must return nothing: ToResults treats a 0 cap as "unlimited",
  // and the k+1 overfetch below would otherwise surface one neighbour.
  if (k == 0) return {};
  // Fetch one extra so a self-match can be dropped.
  const size_t fetch = exclude_name.empty() ? k : k + 1;
  return ToResults(index_->KnnSearch(code, fetch), k, exclude_name);
}

std::vector<CbirResult> CbirService::RadiusByCodeRestricted(
    const BinaryCode& code, uint32_t radius, size_t max_results,
    const index::CandidateSet& allowed, const std::string& exclude_name) const {
  return ToResults(index_->RadiusSearchIn(code, radius, allowed), max_results,
                   exclude_name);
}

std::vector<CbirResult> CbirService::KnnByCodeRestricted(
    const BinaryCode& code, size_t k, const index::CandidateSet& allowed,
    const std::string& exclude_name) const {
  if (k == 0) return {};
  const size_t fetch = exclude_name.empty() ? k : k + 1;
  return ToResults(index_->KnnSearchIn(code, fetch, allowed), k, exclude_name);
}

index::CandidateSet CbirService::CandidatesFromNames(
    const std::vector<std::string>& names) const {
  std::vector<index::ItemId> ids;
  ids.reserve(names.size());
  for (const std::string& name : names) {
    auto it = id_by_name_.find(name);
    if (it != id_by_name_.end()) ids.push_back(it->second);
  }
  return index::CandidateSet(std::move(ids));
}

StatusOr<BinaryCode> CbirService::HashPatch(
    const bigearthnet::Patch& patch) const {
  if (patch.s2_bands.size() != bigearthnet::kNumS2Bands ||
      patch.s1_channels.size() != bigearthnet::kNumS1Channels) {
    return Status::InvalidArgument(
        "uploaded patch must carry 12 Sentinel-2 bands and 2 Sentinel-1 "
        "channels");
  }
  const Tensor feature = extractor_->ExtractFromPixels(patch);
  // Inference mutates no service state; dropout is disabled outside
  // training, so the forward pass is logically const.
  return model_->HashOne(feature);
}

StatusOr<std::vector<std::vector<CbirResult>>> CbirService::QueryBatchByName(
    const std::vector<std::string>& names, uint32_t radius,
    size_t max_results) const {
  std::vector<BinaryCode> codes;
  codes.reserve(names.size());
  for (const std::string& name : names) {
    auto it = code_by_name_.find(name);
    if (it == code_by_name_.end()) {
      return Status::NotFound("image not in archive index: " + name);
    }
    codes.push_back(it->second);
  }
  const auto batch_hits = index_->BatchRadiusSearch(codes, radius, QueryPool());
  std::vector<std::vector<CbirResult>> out(names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    out[i] = ToResults(batch_hits[i], max_results, names[i]);
  }
  return out;
}

StatusOr<std::vector<std::vector<CbirResult>>> CbirService::KnnBatchByName(
    const std::vector<std::string>& names, size_t k) const {
  std::vector<BinaryCode> codes;
  codes.reserve(names.size());
  for (const std::string& name : names) {
    auto it = code_by_name_.find(name);
    if (it == code_by_name_.end()) {
      return Status::NotFound("image not in archive index: " + name);
    }
    codes.push_back(it->second);
  }
  // Same k == 0 guard as KnnByName (names were still validated above).
  if (k == 0) return std::vector<std::vector<CbirResult>>(names.size());
  // Fetch one extra per query so the self-match can be dropped.
  const auto batch_hits = index_->BatchKnnSearch(codes, k + 1, QueryPool());
  std::vector<std::vector<CbirResult>> out(names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    out[i] = ToResults(batch_hits[i], k, names[i]);
  }
  return out;
}

StatusOr<std::vector<std::vector<CbirResult>>> CbirService::QueryBatch(
    const Tensor& features, uint32_t radius, size_t max_results) {
  if (features.rank() != 2 ||
      features.dim(1) != model_->config().feature_dim) {
    return Status::InvalidArgument(
        "features must be [batch, feature_dim] for batch query");
  }
  // One forward pass through MiLaN for the whole matrix; per-query
  // inference is the dominant fixed cost this amortises.
  const std::vector<BinaryCode> codes = model_->HashBatch(features);
  const auto batch_hits = index_->BatchRadiusSearch(codes, radius, QueryPool());
  std::vector<std::vector<CbirResult>> out(codes.size());
  for (size_t i = 0; i < codes.size(); ++i) {
    out[i] = ToResults(batch_hits[i], max_results, /*exclude_name=*/"");
  }
  return out;
}

std::vector<std::vector<CbirResult>> CbirService::RadiusBatchByCode(
    const std::vector<BinaryCode>& codes, uint32_t radius,
    const std::vector<size_t>& max_results,
    const std::vector<std::string>& exclude_names) const {
  const auto batch_hits = index_->BatchRadiusSearch(codes, radius, QueryPool());
  std::vector<std::vector<CbirResult>> out(codes.size());
  for (size_t i = 0; i < codes.size(); ++i) {
    out[i] = ToResults(batch_hits[i], max_results[i], exclude_names[i]);
  }
  return out;
}

std::vector<std::vector<CbirResult>> CbirService::KnnBatchByCode(
    const std::vector<BinaryCode>& codes, size_t k,
    const std::vector<std::string>& exclude_names) const {
  std::vector<std::vector<CbirResult>> out(codes.size());
  if (k == 0) return out;  // same guard as KnnByCode
  // One extra per query so a self-match can be dropped; slots without
  // an exclusion take the first k of the canonical (distance, id)
  // order, which equals a direct k-fetch.
  const bool any_exclude =
      std::any_of(exclude_names.begin(), exclude_names.end(),
                  [](const std::string& name) { return !name.empty(); });
  const auto batch_hits =
      index_->BatchKnnSearch(codes, any_exclude ? k + 1 : k, QueryPool());
  for (size_t i = 0; i < codes.size(); ++i) {
    out[i] = ToResults(batch_hits[i], k, exclude_names[i]);
  }
  return out;
}

std::vector<std::vector<CbirResult>> CbirService::RadiusBatchByCodeRestricted(
    const std::vector<BinaryCode>& codes, uint32_t radius,
    const std::vector<size_t>& max_results, const index::CandidateSet& allowed,
    const std::vector<std::string>& exclude_names) const {
  const auto batch_hits =
      index_->BatchRadiusSearchIn(codes, radius, allowed, QueryPool());
  std::vector<std::vector<CbirResult>> out(codes.size());
  for (size_t i = 0; i < codes.size(); ++i) {
    out[i] = ToResults(batch_hits[i], max_results[i], exclude_names[i]);
  }
  return out;
}

std::vector<std::vector<CbirResult>> CbirService::KnnBatchByCodeRestricted(
    const std::vector<BinaryCode>& codes, size_t k,
    const index::CandidateSet& allowed,
    const std::vector<std::string>& exclude_names) const {
  std::vector<std::vector<CbirResult>> out(codes.size());
  if (k == 0) return out;
  const bool any_exclude =
      std::any_of(exclude_names.begin(), exclude_names.end(),
                  [](const std::string& name) { return !name.empty(); });
  const auto batch_hits = index_->BatchKnnSearchIn(
      codes, any_exclude ? k + 1 : k, allowed, QueryPool());
  for (size_t i = 0; i < codes.size(); ++i) {
    out[i] = ToResults(batch_hits[i], k, exclude_names[i]);
  }
  return out;
}

StatusOr<BinaryCode> CbirService::CodeOf(const std::string& patch_name) const {
  auto it = code_by_name_.find(patch_name);
  if (it == code_by_name_.end()) {
    return Status::NotFound("image not in archive index: " + patch_name);
  }
  return it->second;
}

}  // namespace agoraeo::earthqube
