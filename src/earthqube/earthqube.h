#ifndef AGORAEO_EARTHQUBE_EARTHQUBE_H_
#define AGORAEO_EARTHQUBE_EARTHQUBE_H_

#include <memory>
#include <string>
#include <vector>

#include <functional>

#include "bigearthnet/archive_generator.h"
#include "docstore/database.h"
#include "earthqube/cbir_service.h"
#include "earthqube/exec/exec_config.h"
#include "earthqube/query.h"
#include "earthqube/query_cache.h"
#include "earthqube/query_request.h"
#include "earthqube/ranked_access.h"
#include "earthqube/result_panel.h"
#include "earthqube/schema.h"
#include "earthqube/statistics.h"
#include "obs/observability.h"

namespace agoraeo::earthqube {

class ExecutionEngine;

/// Back-end configuration.
struct EarthQubeConfig {
  LabelEncoding label_encoding = LabelEncoding::kAsciiCompressed;
  /// Geohash precision of the metadata location index (5 chars ~ 4.9 km
  /// cells, matching the ~1.2 km patches and typical query extents).
  int geo_index_precision = 5;
  /// Whether to build the metadata indexes (name PK, labels multikey,
  /// labels_key hash, location geo).  Disabled only by the index-ablation
  /// benchmarks.
  bool build_indexes = true;
  /// Hybrid planner: estimated filter selectivities at or below this
  /// run pre-filter (filter -> candidate set -> restricted Hamming
  /// search); above it, post-filter (Hamming search -> metadata join ->
  /// filter).  bench_hybrid_query measures the crossover at ~2-8%
  /// selectivity (lower at larger archive sizes); 5% centres it.
  double prefilter_selectivity_threshold = 0.05;
  /// Query-cache subsystem: response cache (hot CBIR/hybrid requests)
  /// and allowlist cache (hot pre-filter panel filters), both epoch-
  /// invalidated by archive mutations.  See QueryCacheConfig.
  QueryCacheConfig cache;
  /// Staged execution engine: admission queue, cross-request miss
  /// coalescing (singleflight) and micro-batching of distinct in-flight
  /// misses.  See ExecConfig; disabling it restores the synchronous
  /// per-caller execution path.
  ExecConfig exec;
  /// Observability: the per-system metrics registry, request tracing
  /// and slow-query log.  See ObsConfig; disabling metrics/tracing
  /// makes every record site a dead branch.
  obs::ObsConfig obs;
  /// Ranked direct access: paged similarity requests stream hits
  /// lazily from the shard frontiers and pin the merged stream in a
  /// bounded handle table, so page N resumes in O(page_size log shards)
  /// instead of re-executing the whole ranking.  See RankedAccessConfig.
  RankedAccessConfig ranked;
};

/// A search response: the result panel model, the label-statistics view,
/// and the executed plan's statistics.  For similarity searches the
/// panel is ordered by ascending Hamming distance; for panel queries by
/// DocId (ingestion) order.
struct SearchResponse {
  ResultPanel panel;
  LabelStatistics statistics;
  docstore::QueryStats query_stats;
};

/// The EarthQube back-end server (paper Section 3.2): validates and
/// processes user queries against the MongoDB-like data tier, and
/// provides CBIR through the integrated MiLaN service.
class EarthQube {
 public:
  explicit EarthQube(EarthQubeConfig config = {});
  ~EarthQube();

  /// Loads an archive's metadata into the metadata collection and builds
  /// the configured indexes.
  Status IngestArchive(const bigearthnet::Archive& archive);

  /// Cluster-tier ingest: metadata plus PRECOMPUTED binary codes
  /// (codes[i] belongs to archive.patches[i]) — no model inference on
  /// this node.  Metadata lands in the collection, codes in the
  /// attached CBIR service (WAL-logged), and the cache epoch bumps
  /// once.  FailedPrecondition without an attached CBIR service.
  Status IngestArchiveWithCodes(const bigearthnet::Archive& archive,
                                const std::vector<BinaryCode>& codes);

  /// Attaches a CBIR service (trained MiLaN model + Hamming index) built
  /// by the caller; enables the similarity-search endpoints.
  void AttachCbir(std::unique_ptr<CbirService> cbir);

  /// The boot path of a durable CBIR service: runs the service's
  /// Recover() (snapshot restore + WAL catch-up), then attaches it.
  /// The cache epoch bumps exactly once — inside AttachCbir — however
  /// many items recovery restored; recovery failures leave the current
  /// service (if any) attached and untouched.
  Status RecoverAndAttachCbir(std::unique_ptr<CbirService> cbir);

  // --- unified query execution (API v2) -----------------------------------

  /// Executes one unified request — panel-only, CBIR-only, or hybrid
  /// (filter ∧ similarity).  Hybrid requests go through a small planner:
  /// when the metadata filter's estimated selectivity is at or below
  /// config().prefilter_selectivity_threshold the executor pre-filters
  /// (docstore filter -> candidate set -> restricted Hamming search);
  /// otherwise it post-filters (Hamming search -> metadata join ->
  /// filter).  Both strategies return identical result sets; the choice
  /// is reported in QueryResponse::plan.  Every other query entry point
  /// of this facade is a shim over this method.
  ///
  /// With the execution engine enabled (config().exec.enable, the
  /// default) this is a thin shim over engine Submit(...).Get():
  /// concurrent identical requests coalesce onto one execution and
  /// distinct in-flight misses may share one batched index pass.
  StatusOr<QueryResponse> Execute(const QueryRequest& request) const;

  /// Traced flavour of Execute: the engine stamps its stage spans
  /// (admit, cache probe, queue wait, batch wait, index pass,
  /// materialize) onto `trace`.  Null trace is exactly Execute.
  StatusOr<QueryResponse> Execute(const QueryRequest& request,
                                  std::shared_ptr<obs::Trace> trace) const;

  /// Asynchronous flavour of Execute: `done` is invoked exactly once
  /// with the response — on an engine worker thread, or inline when the
  /// request completes at admission (validation error, cache hit) or
  /// the engine is disabled.  The deferred netsvc pipeline parks
  /// requests on this instead of occupying an HTTP worker per in-flight
  /// query.
  void ExecuteAsync(
      const QueryRequest& request,
      std::function<void(const StatusOr<QueryResponse>&)> done) const;

  /// Traced flavour of ExecuteAsync.
  void ExecuteAsync(
      const QueryRequest& request, std::shared_ptr<obs::Trace> trace,
      std::function<void(const StatusOr<QueryResponse>&)> done) const;

  /// Executes a request batch: slot i holds what Execute(requests[i])
  /// would return.  The whole batch is admitted to the engine under one
  /// gate, so identical requests execute once (singleflight fan-out)
  /// and homogeneous CBIR shapes (the /cbir/batch_search pattern) fuse
  /// into micro-batched index passes.
  StatusOr<std::vector<QueryResponse>> ExecuteBatch(
      const std::vector<QueryRequest>& requests) const;

  // --- query panel (v1 shims over Execute) ---------------------------------

  /// Executes a query-panel submission.
  StatusOr<SearchResponse> Search(const EarthQubeQuery& query) const;

  /// Count without materialising results.
  size_t CountMatches(const EarthQubeQuery& query) const;

  // --- similarity search (Section 3.3) ------------------------------------

  /// Query-by-archive-image: retrieves all images within `radius` of the
  /// named image's code; the response panel is ordered by distance.
  StatusOr<SearchResponse> SimilarToArchiveImage(const std::string& name,
                                                 uint32_t radius,
                                                 size_t max_results = 0) const;

  /// k-NN flavour of the above.
  StatusOr<SearchResponse> NearestToArchiveImage(const std::string& name,
                                                 size_t k) const;

  /// Query-by-new-example: an uploaded patch is featurised and hashed on
  /// the fly.
  StatusOr<SearchResponse> SimilarToUploadedImage(
      const bigearthnet::Patch& patch, uint32_t radius,
      size_t max_results = 0) const;

  /// Batch query-by-archive-image: slot i holds what
  /// SimilarToArchiveImage(names[i], ...) would return as raw CBIR hits
  /// (name + Hamming distance, no metadata join — the batch path is the
  /// high-throughput interface).  The index lookups run as one sharded
  /// batch across the CBIR service's query pool.
  StatusOr<std::vector<std::vector<CbirResult>>> BatchSimilarToArchiveImages(
      const std::vector<std::string>& names, uint32_t radius,
      size_t max_results = 0) const;

  /// k-NN flavour of BatchSimilarToArchiveImages.
  StatusOr<std::vector<std::vector<CbirResult>>> BatchNearestToArchiveImages(
      const std::vector<std::string>& names, size_t k) const;

  // --- image payloads ------------------------------------------------------

  /// Stores a patch's raster stack in the image-data collection (unique
  /// by patch name).
  Status StorePatchPixels(const bigearthnet::Patch& patch);

  /// Loads a raster stack back.
  StatusOr<bigearthnet::Patch> LoadPatchPixels(const std::string& name) const;

  /// Renders and stores the RGB preview for a patch (rendered-images
  /// collection).
  Status StoreRenderedImage(const bigearthnet::Patch& patch);

  /// Returns the stored RGB payload (interleaved, 3 bytes per pixel).
  StatusOr<std::vector<uint8_t>> GetRenderedImage(
      const std::string& name) const;

  // --- downloads -----------------------------------------------------------

  /// Builds the download payload for a set of images (the result panel's
  /// "download as zip" button and the cart's combined download): one
  /// folder per image containing metadata.json, plus bands.bin and
  /// preview.rgb when the corresponding payloads are stored, plus a
  /// top-level manifest.txt.  NotFound when any name is unknown.
  StatusOr<std::vector<uint8_t>> ExportAsZip(
      const std::vector<std::string>& names) const;

  // --- feedback ------------------------------------------------------------

  /// Stores anonymous user feedback text.
  Status SubmitFeedback(const std::string& text);
  size_t NumFeedbackEntries() const;

  // --- metadata access -----------------------------------------------------

  /// Metadata of one archive image by patch name.
  StatusOr<bigearthnet::PatchMetadata> GetMetadata(
      const std::string& name) const;

  docstore::Database& database() { return db_; }
  const docstore::Database& database() const { return db_; }
  CbirService* cbir() { return cbir_.get(); }
  const CbirService* cbir() const { return cbir_.get(); }
  const EarthQubeConfig& config() const { return config_; }
  /// The query-cache subsystem (stats endpoint, tests, manual
  /// invalidation).  Mutations made through this facade bump its epoch
  /// automatically; callers mutating the CBIR service directly via
  /// cbir() must call query_cache().Invalidate() themselves.
  QueryCache& query_cache() const { return query_cache_; }
  /// The staged execution engine (stats endpoint, tests, benches);
  /// null when config().exec.enable is false.
  ExecutionEngine* exec_engine() const { return engine_.get(); }
  /// The ranked direct-access handle table (stats endpoint, tests);
  /// null when config().ranked.enable is false.
  RankedAccess* ranked_access() const { return ranked_.get(); }
  /// The observability bundle: metrics registry, tracing switch and
  /// slow-query log (the /metrics and debug endpoints read it; const
  /// query paths record into it).
  obs::Observability& obs() const { return obs_; }
  size_t num_images() const;

 private:
  friend class ExecutionEngine;

  StatusOr<ResultEntry> EntryFromDocument(const docstore::Document& doc) const;

  /// Registers the scrape-time collectors that export the existing
  /// stats structs (caches, engine, index, persistence) into obs_'s
  /// registry — one counting truth, sampled on demand.
  void RegisterCollectors();

  /// Stage-1 admission checks shared by the synchronous path and the
  /// engine: request validation plus the CBIR-attached precondition.
  Status PreflightCheck(const QueryRequest& request) const;

  /// Probes the response and negative caches for a fingerprintable
  /// similarity request.  Returns the replayed response (flagged
  /// served_from_cache), the cached NotFound, or nullopt on miss.
  std::optional<StatusOr<QueryResponse>> ProbeCaches(
      const QueryRequest& request,
      const std::optional<std::string>& fingerprint) const;

  /// One uncached execution bracketed by cache bookkeeping: the epoch
  /// is snapshotted before the reads, successful similarity responses
  /// are Put, and NotFound similarity subjects are negative-cached.
  /// `response_cached` (optional) reports whether the response-cache Put
  /// was admitted — the engine's flight pre-warm counter reads it.
  StatusOr<QueryResponse> ExecuteAndCache(
      const QueryRequest& request,
      const std::optional<std::string>& fingerprint,
      bool* response_cached = nullptr) const;

  /// The engine-off Execute body: preflight -> cache probe ->
  /// ExecuteAndCache, all on the caller's thread.
  StatusOr<QueryResponse> ExecuteSync(const QueryRequest& request) const;

  /// Cache-put halves of ExecuteAndCache, exposed to the engine's
  /// micro-batch paths (which snapshot one epoch per shared pass).
  /// CacheResponse returns whether the response cache admitted the
  /// entry (the flight pre-warm signal).
  bool CacheResponse(const QueryRequest& request,
                     const std::optional<std::string>& fingerprint,
                     const QueryResponse& response,
                     uint64_t epoch_snapshot) const;
  void MaybeCacheNegative(const QueryRequest& request,
                          const std::optional<std::string>& fingerprint,
                          const Status& status, uint64_t epoch_snapshot) const;

  /// Execute minus the response-cache layer.
  StatusOr<QueryResponse> ExecuteUncached(const QueryRequest& request) const;

  // Execute's three paths.
  StatusOr<QueryResponse> ExecutePanelOnly(const QueryRequest& request) const;
  StatusOr<QueryResponse> ExecuteCbirOnly(const QueryRequest& request) const;
  StatusOr<QueryResponse> ExecuteHybrid(const QueryRequest& request) const;

  // --- response materialisation, shared with the engine --------------------
  //
  // The engine's micro-batch passes produce raw hit lists; these build
  // the per-request QueryResponse exactly as the synchronous paths do,
  // so batched and direct executions stay byte-identical.

  /// Builds a CBIR-only response from raw hits (plan description, join
  /// for full-panel projection, paging).  `epoch_snapshot` is the cache
  /// epoch observed before the index pass that produced `hits`; paged
  /// requests register the ranking as a ranked-access handle under it.
  StatusOr<QueryResponse> BuildCbirResponse(const QueryRequest& request,
                                            std::vector<CbirResult> hits,
                                            uint64_t epoch_snapshot) const;

  /// The hybrid planner's decision for one request.
  struct HybridPlanInfo {
    QueryPlan::Strategy strategy = QueryPlan::Strategy::kPostFilter;
    double selectivity = 1.0;
    size_t estimated = 0;
  };
  HybridPlanInfo PlanHybrid(const QueryRequest& request,
                            const docstore::Filter& filter) const;

  /// Returns the pre-filter candidate allowlist for a panel filter,
  /// from the allowlist cache when warm, otherwise via a docstore
  /// filter pass (cached afterwards).
  StatusOr<std::shared_ptr<const CachedAllowlist>> ObtainAllowlist(
      const EarthQubeQuery& panel, const docstore::Filter& filter) const;

  /// Builds a pre-filter hybrid response from restricted-search hits.
  StatusOr<QueryResponse> BuildHybridPreResponse(
      const QueryRequest& request, const HybridPlanInfo& plan,
      const CachedAllowlist& allowlist, std::vector<CbirResult> hits,
      uint64_t epoch_snapshot) const;

  // --- ranked direct access (resumable windowed paging) --------------------

  /// Whether a request takes the windowed streaming path: similarity
  /// with paging on and the ranked-access layer enabled.
  bool WindowedEligible(const QueryRequest& request) const;

  /// The windowed executor: resumes the ranking's pinned stream (or
  /// opens and registers a fresh one) and materialises exactly the
  /// requested window.  Covers CBIR-only and both hybrid strategies.
  StatusOr<QueryResponse> ExecuteWindowed(const QueryRequest& request) const;

  /// Pulls the handle's stream until `need` survivors are buffered (or
  /// the stream/cap is exhausted).  Caller holds the handle's mutex.
  Status ExtendHandle(RankedHandle* handle, size_t need) const;

  /// The eager-window counterpart used by the engine's micro-batch
  /// paths: slices a fully materialised ranking to the request's window
  /// and registers it as an exhausted handle, producing a response
  /// byte-identical to the streamed path's.
  StatusOr<QueryResponse> WindowizeEager(const QueryRequest& request,
                                         QueryResponse response,
                                         uint64_t epoch_snapshot) const;

  /// Resolves a similarity spec's subject to (code, exclude_name).
  StatusOr<BinaryCode> ResolveSimilarityCode(const SimilaritySpec& spec,
                                             std::string* exclude_name) const;

  /// Joins CBIR hits against the metadata collection into a full-panel
  /// response body (entries in hit order + label statistics).
  Status JoinHits(const std::vector<CbirResult>& hits,
                  QueryResponse* response) const;

  /// Fills paging bookkeeping (page, page_size, continuation cursor).
  static void FinishPaging(const QueryRequest& request,
                           QueryResponse* response);

  EarthQubeConfig config_;
  /// Declared before every instrumented member: caches, index, engine
  /// and server all record into it, so it must outlive them.  Recording
  /// is not observable query state, so const paths may write it.
  mutable obs::Observability obs_;
  /// Caching is not observable query state, so const query paths may
  /// populate it.
  mutable QueryCache query_cache_;
  docstore::Database db_;
  docstore::Collection* metadata_;
  docstore::Collection* image_data_;
  docstore::Collection* rendered_;
  docstore::Collection* feedback_;
  std::unique_ptr<CbirService> cbir_;
  /// Handle-table population happens on const query paths (it is cached
  /// execution state, not observable results).  Declared after cbir_:
  /// its streams borrow the CBIR service's name map.
  mutable std::unique_ptr<RankedAccess> ranked_;
  /// Resume-path latency (extend + window materialisation), recorded
  /// under the engine's stage histogram family.
  obs::Histogram* stage_ranked_resume_ = nullptr;
  /// Declared last: the engine's workers reference every member above,
  /// so it must be destroyed (drained and joined) first.
  std::unique_ptr<ExecutionEngine> engine_;
};

}  // namespace agoraeo::earthqube

#endif  // AGORAEO_EARTHQUBE_EARTHQUBE_H_
