#include "earthqube/query_request.h"

#include "json/json.h"

namespace agoraeo::earthqube {

SimilaritySpec SimilaritySpec::NameRadius(std::string name, uint32_t radius,
                                          size_t limit) {
  SimilaritySpec spec;
  spec.archive_name = std::move(name);
  spec.radius = radius;
  spec.limit = limit;
  return spec;
}

SimilaritySpec SimilaritySpec::NameKnn(std::string name, size_t k) {
  SimilaritySpec spec;
  spec.archive_name = std::move(name);
  spec.k = k;
  return spec;
}

SimilaritySpec SimilaritySpec::PatchRadius(bigearthnet::Patch patch,
                                           uint32_t radius, size_t limit) {
  SimilaritySpec spec;
  spec.patch = std::move(patch);
  spec.radius = radius;
  spec.limit = limit;
  return spec;
}

SimilaritySpec SimilaritySpec::CodeRadius(BinaryCode code, uint32_t radius,
                                          size_t limit) {
  SimilaritySpec spec;
  spec.code = std::move(code);
  spec.radius = radius;
  spec.limit = limit;
  return spec;
}

SimilaritySpec SimilaritySpec::CodeKnn(BinaryCode code, size_t k) {
  SimilaritySpec spec;
  spec.code = std::move(code);
  spec.k = k;
  return spec;
}

Status SimilaritySpec::Validate() const {
  const int subjects = (archive_name.has_value() ? 1 : 0) +
                       (patch.has_value() ? 1 : 0) + (code.has_value() ? 1 : 0);
  if (subjects != 1) {
    return Status::InvalidArgument(
        "similarity needs exactly one of archive_name/patch/code");
  }
  if (radius.has_value() && k.has_value()) {
    return Status::InvalidArgument(
        "similarity cannot set both radius and k; pick one mode");
  }
  if (!radius.has_value() && !k.has_value()) {
    return Status::InvalidArgument("similarity needs radius or k");
  }
  return Status::OK();
}

Status QueryRequest::Validate() const {
  if (!panel.has_value() && !similarity.has_value()) {
    return Status::InvalidArgument(
        "query needs a metadata panel, a similarity spec, or both");
  }
  if (similarity.has_value()) {
    AGORAEO_RETURN_IF_ERROR(similarity->Validate());
  }
  if (projection == Projection::kHitsOnly && !similarity.has_value()) {
    return Status::InvalidArgument(
        "hits-only projection requires a similarity spec");
  }
  return Status::OK();
}

const char* StrategyToString(QueryPlan::Strategy strategy) {
  switch (strategy) {
    case QueryPlan::Strategy::kPanelOnly:
      return "panel_only";
    case QueryPlan::Strategy::kCbirOnly:
      return "cbir_only";
    case QueryPlan::Strategy::kPreFilter:
      return "pre_filter";
    case QueryPlan::Strategy::kPostFilter:
      return "post_filter";
  }
  return "unknown";
}

size_t QueryResponse::total() const {
  return projection == Projection::kHitsOnly ? hits.size() : panel.total();
}

std::string EncodeCursor(const PageCursor& cursor) {
  std::string raw;
  if (cursor.handle.empty()) {
    raw = "v2:" + std::to_string(cursor.page) + ":" +
          std::to_string(cursor.page_size);
  } else {
    raw = "v3:" + std::to_string(cursor.page) + ":" +
          std::to_string(cursor.page_size) + ":" + cursor.handle;
  }
  return json::Base64Encode(
      std::vector<uint8_t>(raw.begin(), raw.end()));
}

StatusOr<PageCursor> DecodeCursor(const std::string& token) {
  AGORAEO_ASSIGN_OR_RETURN(std::vector<uint8_t> raw,
                           json::Base64Decode(token));
  const std::string text(raw.begin(), raw.end());
  const bool v3 = text.rfind("v3:", 0) == 0;
  if (!v3 && text.rfind("v2:", 0) != 0) {
    return Status::InvalidArgument("unrecognised cursor");
  }
  const size_t sep = text.find(':', 3);
  if (sep == std::string::npos) {
    return Status::InvalidArgument("malformed cursor");
  }
  PageCursor cursor;
  std::string size_text = text.substr(sep + 1);
  if (v3) {
    const size_t handle_sep = size_text.find(':');
    if (handle_sep == std::string::npos) {
      return Status::InvalidArgument("malformed cursor");
    }
    cursor.handle = size_text.substr(handle_sep + 1);
    size_text.resize(handle_sep);
    if (cursor.handle.empty()) {
      return Status::InvalidArgument("malformed cursor");
    }
  }
  try {
    cursor.page = std::stoull(text.substr(3, sep - 3));
    cursor.page_size = std::stoull(size_text);
  } catch (const std::exception&) {
    return Status::InvalidArgument("malformed cursor");
  }
  return cursor;
}

bool IsCursorRejection(const Status& status) {
  if (!status.IsInvalidArgument()) return false;
  const std::string& message = status.message();
  return message == "unrecognised cursor" || message == "malformed cursor" ||
         message.find("base64") != std::string::npos;
}

}  // namespace agoraeo::earthqube
