#include "earthqube/query_request.h"

#include <limits>

#include "json/json.h"

namespace agoraeo::earthqube {

namespace {

/// True when the page window's arithmetic would wrap size_t: the engine
/// computes begin = page * page_size and need = begin + page_size + 1,
/// so (page + 1) * page_size + 1 must fit.  Cursor payloads are
/// client-controlled — a wrapped `need` of 0 would turn a bounds check
/// into an out-of-bounds read.
bool PageWindowOverflows(size_t page, size_t page_size) {
  if (page_size == 0) return false;
  constexpr size_t kMax = std::numeric_limits<size_t>::max();
  if (page == kMax) return true;
  return page_size > (kMax - 1) / (page + 1);
}

}  // namespace

SimilaritySpec SimilaritySpec::NameRadius(std::string name, uint32_t radius,
                                          size_t limit) {
  SimilaritySpec spec;
  spec.archive_name = std::move(name);
  spec.radius = radius;
  spec.limit = limit;
  return spec;
}

SimilaritySpec SimilaritySpec::NameKnn(std::string name, size_t k) {
  SimilaritySpec spec;
  spec.archive_name = std::move(name);
  spec.k = k;
  return spec;
}

SimilaritySpec SimilaritySpec::PatchRadius(bigearthnet::Patch patch,
                                           uint32_t radius, size_t limit) {
  SimilaritySpec spec;
  spec.patch = std::move(patch);
  spec.radius = radius;
  spec.limit = limit;
  return spec;
}

SimilaritySpec SimilaritySpec::CodeRadius(BinaryCode code, uint32_t radius,
                                          size_t limit) {
  SimilaritySpec spec;
  spec.code = std::move(code);
  spec.radius = radius;
  spec.limit = limit;
  return spec;
}

SimilaritySpec SimilaritySpec::CodeKnn(BinaryCode code, size_t k) {
  SimilaritySpec spec;
  spec.code = std::move(code);
  spec.k = k;
  return spec;
}

Status SimilaritySpec::Validate() const {
  const int subjects = (archive_name.has_value() ? 1 : 0) +
                       (patch.has_value() ? 1 : 0) + (code.has_value() ? 1 : 0);
  if (subjects != 1) {
    return Status::InvalidArgument(
        "similarity needs exactly one of archive_name/patch/code");
  }
  if (radius.has_value() && k.has_value()) {
    return Status::InvalidArgument(
        "similarity cannot set both radius and k; pick one mode");
  }
  if (!radius.has_value() && !k.has_value()) {
    return Status::InvalidArgument("similarity needs radius or k");
  }
  return Status::OK();
}

Status QueryRequest::Validate() const {
  if (!panel.has_value() && !similarity.has_value()) {
    return Status::InvalidArgument(
        "query needs a metadata panel, a similarity spec, or both");
  }
  if (similarity.has_value()) {
    AGORAEO_RETURN_IF_ERROR(similarity->Validate());
  }
  if (projection == Projection::kHitsOnly && !similarity.has_value()) {
    return Status::InvalidArgument(
        "hits-only projection requires a similarity spec");
  }
  if (PageWindowOverflows(page, page_size)) {
    return Status::InvalidArgument("page window out of range");
  }
  return Status::OK();
}

const char* StrategyToString(QueryPlan::Strategy strategy) {
  switch (strategy) {
    case QueryPlan::Strategy::kPanelOnly:
      return "panel_only";
    case QueryPlan::Strategy::kCbirOnly:
      return "cbir_only";
    case QueryPlan::Strategy::kPreFilter:
      return "pre_filter";
    case QueryPlan::Strategy::kPostFilter:
      return "post_filter";
  }
  return "unknown";
}

size_t QueryResponse::total() const {
  return projection == Projection::kHitsOnly ? hits.size() : panel.total();
}

std::string EncodeCursor(const PageCursor& cursor) {
  std::string raw;
  if (cursor.handle.empty()) {
    raw = "v2:" + std::to_string(cursor.page) + ":" +
          std::to_string(cursor.page_size);
  } else {
    raw = "v3:" + std::to_string(cursor.page) + ":" +
          std::to_string(cursor.page_size) + ":" + cursor.handle;
  }
  return json::Base64Encode(
      std::vector<uint8_t>(raw.begin(), raw.end()));
}

StatusOr<PageCursor> DecodeCursor(const std::string& token) {
  // Every rejection carries the "cursor: " prefix IsCursorRejection
  // keys on, so unrelated base64/parse failures elsewhere in the stack
  // are never mistaken for an expired cursor.
  StatusOr<std::vector<uint8_t>> raw = json::Base64Decode(token);
  if (!raw.ok()) {
    return Status::InvalidArgument("cursor: invalid base64");
  }
  const std::string text(raw->begin(), raw->end());
  const bool v3 = text.rfind("v3:", 0) == 0;
  if (!v3 && text.rfind("v2:", 0) != 0) {
    return Status::InvalidArgument("cursor: unrecognised version");
  }
  const size_t sep = text.find(':', 3);
  if (sep == std::string::npos) {
    return Status::InvalidArgument("cursor: malformed");
  }
  PageCursor cursor;
  std::string size_text = text.substr(sep + 1);
  if (v3) {
    const size_t handle_sep = size_text.find(':');
    if (handle_sep == std::string::npos) {
      return Status::InvalidArgument("cursor: malformed");
    }
    cursor.handle = size_text.substr(handle_sep + 1);
    size_text.resize(handle_sep);
    if (cursor.handle.empty()) {
      return Status::InvalidArgument("cursor: malformed");
    }
  }
  try {
    cursor.page = std::stoull(text.substr(3, sep - 3));
    cursor.page_size = std::stoull(size_text);
  } catch (const std::exception&) {
    return Status::InvalidArgument("cursor: malformed");
  }
  if (PageWindowOverflows(cursor.page, cursor.page_size)) {
    return Status::InvalidArgument("cursor: page window out of range");
  }
  return cursor;
}

bool IsCursorRejection(const Status& status) {
  return status.IsInvalidArgument() &&
         status.message().rfind("cursor: ", 0) == 0;
}

}  // namespace agoraeo::earthqube
