#include "earthqube/ranked_access.h"

#include <cstdio>

namespace agoraeo::earthqube {

RankedAccess::RankedAccess(const RankedAccessConfig& config)
    : config_(config) {}

std::string RankedAccess::HandleIdFor(const std::string& fingerprint) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : fingerprint) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001b3ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash));
  return std::string(buf);
}

std::chrono::steady_clock::time_point RankedAccess::Now() const {
  return config_.clock ? config_.clock() : std::chrono::steady_clock::now();
}

size_t RankedAccess::ApproxBytes(const RankedHandle& handle) {
  size_t bytes = sizeof(RankedHandle);
  bytes += handle.survivors_.capacity() * sizeof(CbirResult);
  for (const CbirResult& r : handle.survivors_) bytes += r.patch_name.size();
  bytes += handle.examined_after_.capacity() * sizeof(uint64_t);
  return bytes;
}

std::shared_ptr<RankedHandle> RankedAccess::Get(const std::string& id,
                                                const std::string& fingerprint,
                                                uint64_t current_epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = handles_.find(id);
  if (it == handles_.end()) {
    ++misses_;
    return nullptr;
  }
  std::shared_ptr<RankedHandle> handle = it->second;
  if (handle->fingerprint() != fingerprint) {
    // FNV id collision with another live query: the resident ranking
    // is NOT ours.  Miss (re-execute) rather than serve wrong results;
    // the resident handle stays — it is valid for its own query.
    ++misses_;
    return nullptr;
  }
  if (handle->epoch() != current_epoch) {
    // The index or metadata changed under the pinned ranking: drop it
    // now (frees the pinned segments) instead of waiting for the TTL.
    ++epoch_drops_;
    RemoveLocked(id);
    return nullptr;
  }
  if (config_.handle_ttl.count() > 0 &&
      Now() - handle->last_touch_ > config_.handle_ttl) {
    ++expired_;
    RemoveLocked(id);
    return nullptr;
  }
  ++hits_;
  handle->last_touch_ = Now();
  lru_.erase(handle->lru_pos_);
  lru_.push_front(id);
  handle->lru_pos_ = lru_.begin();
  return handle;
}

std::shared_ptr<RankedHandle> RankedAccess::Register(
    std::shared_ptr<RankedHandle> handle) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = handles_.find(handle->id());
  if (it != handles_.end()) {
    if (it->second->fingerprint() != handle->fingerprint()) {
      // FNV id collision: the slot belongs to a different query.  Hand
      // the new handle back unregistered — it serves this one request
      // ephemerally instead of evicting (or being served by) the
      // resident ranking.
      return handle;
    }
    // First-wins, but a stale resident (older epoch) yields to the
    // fresh registration.
    if (it->second->epoch() == handle->epoch()) return it->second;
    RemoveLocked(handle->id());
  }
  ++registered_;
  handle->bytes_ = ApproxBytes(*handle);
  handle->last_touch_ = Now();
  lru_.push_front(handle->id());
  handle->lru_pos_ = lru_.begin();
  total_bytes_ += handle->bytes_;
  handles_.emplace(handle->id(), handle);
  EvictLocked(handle.get());
  return handle;
}

void RankedAccess::Touch(const std::shared_ptr<RankedHandle>& handle,
                         size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = handles_.find(handle->id());
  if (it == handles_.end() || it->second != handle) return;  // evicted
  total_bytes_ += bytes - handle->bytes_;
  handle->bytes_ = bytes;
  handle->last_touch_ = Now();
  lru_.erase(handle->lru_pos_);
  lru_.push_front(handle->id());
  handle->lru_pos_ = lru_.begin();
  EvictLocked(handle.get());
}

void RankedAccess::EvictLocked(const RankedHandle* keep) {
  while (handles_.size() > config_.handle_capacity ||
         total_bytes_ > config_.handle_max_bytes) {
    if (lru_.empty()) break;
    const std::string victim = lru_.back();
    auto it = handles_.find(victim);
    if (it != handles_.end() && it->second.get() == keep) {
      // The handle being touched is the only one left and still over
      // budget: keep it anyway — evicting the page in flight would turn
      // every deep walk into a re-execution storm.
      break;
    }
    ++evicted_;
    RemoveLocked(victim);
  }
}

void RankedAccess::RemoveLocked(const std::string& id) {
  auto it = handles_.find(id);
  if (it == handles_.end()) return;
  total_bytes_ -= it->second->bytes_;
  lru_.erase(it->second->lru_pos_);
  handles_.erase(it);
}

void RankedAccess::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  handles_.clear();
  lru_.clear();
  total_bytes_ = 0;
}

RankedAccessStats RankedAccess::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  RankedAccessStats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.expired = expired_;
  stats.epoch_drops = epoch_drops_;
  stats.registered = registered_;
  stats.evicted = evicted_;
  stats.handles = handles_.size();
  stats.bytes = total_bytes_;
  return stats;
}

}  // namespace agoraeo::earthqube
