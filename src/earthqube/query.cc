#include "earthqube/query.h"

#include "earthqube/schema.h"

namespace agoraeo::earthqube {

using bigearthnet::LabelById;
using bigearthnet::LabelSet;
using docstore::Filter;
using docstore::Value;

GeoQuery GeoQuery::Rect(geo::BoundingBox box) {
  GeoQuery q;
  q.shape = Shape::kRectangle;
  q.rectangle = box;
  return q;
}

GeoQuery GeoQuery::InCircle(geo::Circle c) {
  GeoQuery q;
  q.shape = Shape::kCircle;
  q.circle = c;
  return q;
}

GeoQuery GeoQuery::InPolygon(geo::Polygon p) {
  GeoQuery q;
  q.shape = Shape::kPolygon;
  q.polygon = std::move(p);
  return q;
}

const char* LabelOperatorToString(LabelOperator op) {
  switch (op) {
    case LabelOperator::kSome:
      return "Some";
    case LabelOperator::kExactly:
      return "Exactly";
    case LabelOperator::kAtLeastAndMore:
      return "At least & more";
  }
  return "?";
}

LabelFilter LabelFilter::Some(LabelSet labels) {
  return {true, LabelOperator::kSome, std::move(labels)};
}

LabelFilter LabelFilter::Exactly(LabelSet labels) {
  return {true, LabelOperator::kExactly, std::move(labels)};
}

LabelFilter LabelFilter::AtLeastAndMore(LabelSet labels) {
  return {true, LabelOperator::kAtLeastAndMore, std::move(labels)};
}

LabelFilter LabelFilter::SomeLevel2(int level2_code) {
  return Some(LabelSet(bigearthnet::LabelsUnderLevel2(level2_code)));
}

docstore::Filter EarthQubeQuery::ToFilter(bool ascii_labels) const {
  std::vector<Filter> conjuncts;

  switch (geo.shape) {
    case GeoQuery::Shape::kNone:
      break;
    case GeoQuery::Shape::kRectangle:
      conjuncts.push_back(Filter::GeoIntersects(kFieldLocation, geo.rectangle));
      break;
    case GeoQuery::Shape::kCircle:
      conjuncts.push_back(Filter::GeoWithinCircle(kFieldLocation, geo.circle));
      break;
    case GeoQuery::Shape::kPolygon:
      conjuncts.push_back(
          Filter::GeoWithinPolygon(kFieldLocation, geo.polygon));
      break;
  }

  if (date_range.has_value()) {
    conjuncts.push_back(Filter::Gte(kFieldDateOrdinal,
                                    Value(date_range->begin.ToOrdinal())));
    conjuncts.push_back(
        Filter::Lte(kFieldDateOrdinal, Value(date_range->end.ToOrdinal())));
  }

  if (!satellites.empty()) {
    std::vector<Value> values;
    values.reserve(satellites.size());
    for (const std::string& s : satellites) values.emplace_back(s);
    conjuncts.push_back(Filter::In(kFieldSatellite, std::move(values)));
  }

  if (!seasons.empty()) {
    std::vector<Value> values;
    values.reserve(seasons.size());
    for (Season s : seasons) values.emplace_back(std::string(SeasonToString(s)));
    conjuncts.push_back(Filter::In(kFieldSeason, std::move(values)));
  }

  if (label_filter.enabled && !label_filter.labels.empty()) {
    std::vector<Value> keys;
    keys.reserve(label_filter.labels.size());
    for (bigearthnet::LabelId id : label_filter.labels.ids()) {
      if (ascii_labels) {
        keys.emplace_back(std::string(1, LabelById(id).ascii_key));
      } else {
        keys.emplace_back(std::string(LabelById(id).name));
      }
    }
    switch (label_filter.op) {
      case LabelOperator::kSome:
        conjuncts.push_back(Filter::In(kFieldLabels, std::move(keys)));
        break;
      case LabelOperator::kExactly:
        // The labels_key field stores the sorted ASCII keys, so exact
        // set equality is one string equality (hash-indexable).
        conjuncts.push_back(Filter::Eq(
            kFieldLabelsKey, Value(label_filter.labels.ToAsciiKeys())));
        break;
      case LabelOperator::kAtLeastAndMore:
        conjuncts.push_back(Filter::All(kFieldLabels, std::move(keys)));
        break;
    }
  }

  if (conjuncts.empty()) return Filter::True();
  if (conjuncts.size() == 1) return std::move(conjuncts[0]);
  return Filter::And(std::move(conjuncts));
}

}  // namespace agoraeo::earthqube
