#ifndef AGORAEO_EARTHQUBE_STATISTICS_H_
#define AGORAEO_EARTHQUBE_STATISTICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bigearthnet/clc_labels.h"
#include "common/status.h"

namespace agoraeo::earthqube {

/// One bar of the label-statistics chart (Figure 2-4): a land-cover
/// label, its occurrence count in the retrieval, and its predefined
/// representative colour.
struct LabelBar {
  bigearthnet::LabelId label;
  std::string label_name;
  size_t count;
  uint32_t color_rgb;
};

/// The label-statistics view: summarises the occurrence of land-cover
/// labels across a set of retrieved images, "a unique feature of
/// EarthQube" per the paper.
class LabelStatistics {
 public:
  /// Builds statistics from the label sets of retrieved images.
  static LabelStatistics FromLabelSets(
      const std::vector<bigearthnet::LabelSet>& retrievals);

  /// Bars sorted by descending count (ties by label id).
  const std::vector<LabelBar>& bars() const { return bars_; }

  /// Total label occurrences (sum over bars).
  size_t total_occurrences() const { return total_; }

  /// Number of images the statistics cover.
  size_t num_images() const { return num_images_; }

  /// Count for one label (0 when absent).
  size_t CountOf(bigearthnet::LabelId id) const;

  /// The dominant land-cover label (NotFound on empty statistics).
  StatusOr<bigearthnet::LabelId> DominantLabel() const;

  /// Renders the bar chart as fixed-width ASCII art, the CLI analogue of
  /// the UI's chart.  `width` is the maximum bar length in characters.
  std::string RenderAscii(size_t width = 40) const;

 private:
  std::vector<LabelBar> bars_;
  size_t total_ = 0;
  size_t num_images_ = 0;
};

}  // namespace agoraeo::earthqube

#endif  // AGORAEO_EARTHQUBE_STATISTICS_H_
