#include "earthqube/statistics.h"

#include <algorithm>
#include <array>
#include <sstream>

#include "common/string_util.h"

namespace agoraeo::earthqube {

using bigearthnet::kNumLabels;
using bigearthnet::LabelById;
using bigearthnet::LabelId;

LabelStatistics LabelStatistics::FromLabelSets(
    const std::vector<bigearthnet::LabelSet>& retrievals) {
  std::array<size_t, kNumLabels> counts{};
  for (const auto& labels : retrievals) {
    for (LabelId id : labels.ids()) ++counts[static_cast<size_t>(id)];
  }
  LabelStatistics stats;
  stats.num_images_ = retrievals.size();
  for (LabelId id = 0; id < kNumLabels; ++id) {
    const size_t c = counts[static_cast<size_t>(id)];
    if (c == 0) continue;
    const auto& label = LabelById(id);
    stats.bars_.push_back({id, label.name, c, label.color_rgb});
    stats.total_ += c;
  }
  std::sort(stats.bars_.begin(), stats.bars_.end(),
            [](const LabelBar& a, const LabelBar& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.label < b.label;
            });
  return stats;
}

size_t LabelStatistics::CountOf(LabelId id) const {
  for (const LabelBar& bar : bars_) {
    if (bar.label == id) return bar.count;
  }
  return 0;
}

StatusOr<LabelId> LabelStatistics::DominantLabel() const {
  if (bars_.empty()) return Status::NotFound("empty label statistics");
  return bars_[0].label;
}

std::string LabelStatistics::RenderAscii(size_t width) const {
  if (bars_.empty()) return "(no labels)\n";
  const size_t max_count = bars_[0].count;
  std::ostringstream out;
  for (const LabelBar& bar : bars_) {
    const size_t len =
        std::max<size_t>(1, bar.count * width / std::max<size_t>(1, max_count));
    std::string name = bar.label_name;
    if (name.size() > 42) name = name.substr(0, 39) + "...";
    out << StrFormat("%-42s |%s %zu (#%06x)\n", name.c_str(),
                     std::string(len, '#').c_str(), bar.count, bar.color_rgb);
  }
  return out.str();
}

}  // namespace agoraeo::earthqube
