#ifndef AGORAEO_EARTHQUBE_ZIP_WRITER_H_
#define AGORAEO_EARTHQUBE_ZIP_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace agoraeo::earthqube {

/// A minimal, spec-conformant ZIP archive writer (PKWARE APPNOTE layout:
/// local file headers + central directory + end-of-central-directory),
/// using the "store" method — image payloads are already binary rasters,
/// so compression is not the point; a downloadable container is.
///
/// Backs the result panel's "(iv) download the image as a zip" button and
/// the download cart's "download them together as a single collection"
/// (paper §3.1).  Any standard unzip tool can open the output.
class ZipWriter {
 public:
  /// Adds one file entry.  Names must be unique, non-empty, and use '/'
  /// separators; InvalidArgument otherwise.
  Status Add(const std::string& name, const std::vector<uint8_t>& content);
  Status Add(const std::string& name, const std::string& content);

  size_t num_entries() const { return entries_.size(); }

  /// Serialises the archive.  Valid (empty central directory) even with
  /// zero entries.
  std::vector<uint8_t> Finish() const;

 private:
  struct Entry {
    std::string name;
    std::vector<uint8_t> content;
    uint32_t crc32 = 0;
  };

  std::vector<Entry> entries_;
};

/// Reads back the entries of a store-method ZIP produced by ZipWriter
/// (used by tests and by clients that want to verify a download).
/// Corruption when the container deviates from the subset ZipWriter
/// emits, or when a CRC mismatches.
StatusOr<std::vector<std::pair<std::string, std::vector<uint8_t>>>>
ZipExtractAll(const std::vector<uint8_t>& archive);

}  // namespace agoraeo::earthqube

#endif  // AGORAEO_EARTHQUBE_ZIP_WRITER_H_
