#include "earthqube/schema.h"

#include "common/string_util.h"
#include "docstore/filter.h"

namespace agoraeo::earthqube {

using bigearthnet::LabelById;
using bigearthnet::LabelSet;
using bigearthnet::PatchMetadata;
using docstore::Document;
using docstore::Value;

Document MetadataToDocument(const PatchMetadata& meta,
                            LabelEncoding encoding) {
  Document doc;
  doc.Set(kFieldName, Value(meta.name));

  Document location;
  location.Set("min_lat", Value(meta.bounds.min.lat));
  location.Set("min_lon", Value(meta.bounds.min.lon));
  location.Set("max_lat", Value(meta.bounds.max.lat));
  location.Set("max_lon", Value(meta.bounds.max.lon));
  doc.Set("location", Value(std::move(location)));

  Document properties;
  std::vector<Value> labels;
  labels.reserve(meta.labels.size());
  for (bigearthnet::LabelId id : meta.labels.ids()) {
    if (encoding == LabelEncoding::kAsciiCompressed) {
      labels.emplace_back(std::string(1, LabelById(id).ascii_key));
    } else {
      labels.emplace_back(std::string(LabelById(id).name));
    }
  }
  properties.Set("labels", Value(std::move(labels)));
  properties.Set("labels_key", Value(meta.labels.ToAsciiKeys()));
  properties.Set("country", Value(meta.country));
  properties.Set("season", Value(std::string(SeasonToString(meta.season))));
  properties.Set("satellite", Value(SatelliteFromName(meta.name)));
  properties.Set("acquisition_date", Value(meta.acquisition_date.ToString()));
  properties.Set("date_ordinal", Value(meta.acquisition_date.ToOrdinal()));
  doc.Set("properties", Value(std::move(properties)));
  return doc;
}

StatusOr<PatchMetadata> DocumentToMetadata(const Document& doc) {
  PatchMetadata meta;
  const Value* name = doc.GetPath(kFieldName);
  if (name == nullptr || !name->is_string()) {
    return Status::Corruption("metadata document missing name");
  }
  meta.name = name->as_string();

  geo::BoundingBox box;
  if (!docstore::Filter::ReadStoredBox(doc, kFieldLocation, &box)) {
    return Status::Corruption("metadata document missing location: " +
                              meta.name);
  }
  meta.bounds = box;

  const Value* labels_key = doc.GetPath(kFieldLabelsKey);
  if (labels_key == nullptr || !labels_key->is_string()) {
    return Status::Corruption("metadata document missing labels_key: " +
                              meta.name);
  }
  AGORAEO_ASSIGN_OR_RETURN(meta.labels,
                           LabelSet::FromAsciiKeys(labels_key->as_string()));

  const Value* country = doc.GetPath(kFieldCountry);
  if (country != nullptr && country->is_string()) {
    meta.country = country->as_string();
  }
  const Value* date = doc.GetPath(kFieldDate);
  if (date == nullptr || !date->is_string()) {
    return Status::Corruption("metadata document missing date: " + meta.name);
  }
  AGORAEO_ASSIGN_OR_RETURN(meta.acquisition_date,
                           CivilDate::Parse(date->as_string()));
  meta.season = meta.acquisition_date.GetSeason();
  return meta;
}

std::string SatelliteFromName(const std::string& patch_name) {
  if (StrStartsWith(patch_name, "S2A")) return "S2A";
  if (StrStartsWith(patch_name, "S2B")) return "S2B";
  return "S2A";
}

Document PatchToImageDocument(const bigearthnet::Patch& patch) {
  Document doc;
  doc.Set("name", Value(patch.meta.name));
  auto band_to_value = [](const bigearthnet::BandRaster& band) {
    Document b;
    b.Set("name", Value(band.name));
    b.Set("resolution", Value(static_cast<int64_t>(band.resolution_m)));
    b.Set("width", Value(static_cast<int64_t>(band.width)));
    b.Set("height", Value(static_cast<int64_t>(band.height)));
    std::vector<uint8_t> bytes(band.pixels.size() * 2);
    for (size_t i = 0; i < band.pixels.size(); ++i) {
      bytes[2 * i] = static_cast<uint8_t>(band.pixels[i] & 0xff);
      bytes[2 * i + 1] = static_cast<uint8_t>(band.pixels[i] >> 8);
    }
    b.Set("pixels", Value(std::move(bytes)));
    return Value(std::move(b));
  };
  std::vector<Value> s2;
  for (const auto& band : patch.s2_bands) s2.push_back(band_to_value(band));
  doc.Set("s2_bands", Value(std::move(s2)));
  std::vector<Value> s1;
  for (const auto& band : patch.s1_channels) s1.push_back(band_to_value(band));
  doc.Set("s1_channels", Value(std::move(s1)));
  return doc;
}

namespace {

StatusOr<bigearthnet::BandRaster> ValueToBand(const Value& v) {
  if (!v.is_document()) return Status::Corruption("band is not a document");
  const Document& d = v.as_document();
  bigearthnet::BandRaster band;
  const Value* name = d.Get("name");
  const Value* resolution = d.Get("resolution");
  const Value* width = d.Get("width");
  const Value* height = d.Get("height");
  const Value* pixels = d.Get("pixels");
  if (name == nullptr || resolution == nullptr || width == nullptr ||
      height == nullptr || pixels == nullptr || !pixels->is_binary()) {
    return Status::Corruption("band document malformed");
  }
  band.name = name->as_string();
  band.resolution_m = static_cast<int>(resolution->as_int64());
  band.width = static_cast<int>(width->as_int64());
  band.height = static_cast<int>(height->as_int64());
  const auto& bytes = pixels->as_binary();
  if (bytes.size() != static_cast<size_t>(band.width) * band.height * 2) {
    return Status::Corruption("band pixel payload size mismatch");
  }
  band.pixels.resize(bytes.size() / 2);
  for (size_t i = 0; i < band.pixels.size(); ++i) {
    band.pixels[i] = static_cast<uint16_t>(bytes[2 * i] |
                                           (bytes[2 * i + 1] << 8));
  }
  return band;
}

}  // namespace

StatusOr<bigearthnet::Patch> ImageDocumentToPatch(const Document& doc) {
  bigearthnet::Patch patch;
  const Value* name = doc.Get("name");
  if (name == nullptr || !name->is_string()) {
    return Status::Corruption("image document missing name");
  }
  patch.meta.name = name->as_string();
  const Value* s2 = doc.Get("s2_bands");
  const Value* s1 = doc.Get("s1_channels");
  if (s2 == nullptr || !s2->is_array() || s1 == nullptr || !s1->is_array()) {
    return Status::Corruption("image document missing band arrays");
  }
  for (const Value& v : s2->as_array()) {
    AGORAEO_ASSIGN_OR_RETURN(bigearthnet::BandRaster band, ValueToBand(v));
    patch.s2_bands.push_back(std::move(band));
  }
  for (const Value& v : s1->as_array()) {
    AGORAEO_ASSIGN_OR_RETURN(bigearthnet::BandRaster band, ValueToBand(v));
    patch.s1_channels.push_back(std::move(band));
  }
  return patch;
}

Document RenderedToDocument(const std::string& name,
                            const std::vector<uint8_t>& rgb, int width,
                            int height) {
  Document doc;
  doc.Set("name", Value(name));
  doc.Set("width", Value(static_cast<int64_t>(width)));
  doc.Set("height", Value(static_cast<int64_t>(height)));
  doc.Set("rgb", Value(rgb));
  return doc;
}

}  // namespace agoraeo::earthqube
