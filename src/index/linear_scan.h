#ifndef AGORAEO_INDEX_LINEAR_SCAN_H_
#define AGORAEO_INDEX_LINEAR_SCAN_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/simd/hamming_kernels.h"
#include "index/hamming_index.h"
#include "tensor/tensor.h"

namespace agoraeo::index {

/// Exhaustive Hamming scan over all stored codes — the exact baseline
/// every hashing index is compared against in experiment E1.  All scan
/// paths (single-query, batched, restricted) stream a padded aligned
/// flat code array through the runtime-dispatched Hamming kernel layer
/// (common/simd), so distances are computed a block of rows at a time
/// with whatever ISA the host offers.
class LinearScanIndex : public HammingIndex {
 public:
  Status Add(ItemId id, const BinaryCode& code) override;
  /// Sequential Add loop with all storage reserved up front — the
  /// snapshot-restore fast path bulk-loads a whole shard through here.
  /// The whole batch is validated (uniform code width, no empty codes)
  /// before any storage is touched, so a bad batch leaves the index
  /// unchanged instead of failing partway through.
  Status BatchAdd(const std::vector<ItemId>& ids,
                  const std::vector<BinaryCode>& codes,
                  ThreadPool* pool = nullptr) override;
  std::vector<SearchResult> RadiusSearch(const BinaryCode& query,
                                         uint32_t radius,
                                         SearchStats* stats = nullptr) const override;
  std::vector<SearchResult> KnnSearch(const BinaryCode& query, size_t k,
                                      SearchStats* stats = nullptr) const override;

  /// Cache-blocked batch scan: queries are sharded across the pool, and
  /// each shard walks the code array in blocks so one block of codes
  /// stays cache-resident while it serves every query of the shard.
  std::vector<std::vector<SearchResult>> BatchRadiusSearch(
      const std::vector<BinaryCode>& queries, uint32_t radius,
      ThreadPool* pool = nullptr,
      std::vector<SearchStats>* stats = nullptr) const override;
  std::vector<std::vector<SearchResult>> BatchKnnSearch(
      const std::vector<BinaryCode>& queries, size_t k,
      ThreadPool* pool = nullptr,
      std::vector<SearchStats>* stats = nullptr) const override;

  /// Candidate-driven restricted searches: for a selective allowlist the
  /// scan touches only the allowed items' codes (O(|allowed|) popcounts
  /// instead of O(n)); a dense allowlist falls back to the full scan
  /// with a membership check.
  std::vector<SearchResult> RadiusSearchIn(
      const BinaryCode& query, uint32_t radius, const CandidateSet& allowed,
      SearchStats* stats = nullptr) const override;
  std::vector<SearchResult> KnnSearchIn(
      const BinaryCode& query, size_t k, const CandidateSet& allowed,
      SearchStats* stats = nullptr) const override;

  /// Lazy ranked access: one blocked kernel pass at open computes every
  /// (allowed) distance into per-distance buckets; buckets are id-sorted
  /// and drained only as far as the consumer actually pulls, so a page
  /// of near hits never pays for ordering the far tail.
  std::unique_ptr<HitFrontier> OpenFrontier(
      const BinaryCode& query, const FrontierOptions& options) const override;

  size_t size() const override { return ids_.size(); }
  std::string Name() const override { return "LinearScan"; }

 private:
  /// Runs the blocked kernel for queries [query_begin, query_end).
  void BlockedRadiusShard(const std::vector<BinaryCode>& queries,
                          size_t query_begin, size_t query_end,
                          uint32_t radius, const simd::HammingKernel* kernel,
                          std::vector<std::vector<SearchResult>>* out,
                          std::vector<SearchStats>* stats) const;
  void BlockedKnnShard(const std::vector<BinaryCode>& queries,
                       size_t query_begin, size_t query_end, size_t k,
                       const simd::HammingKernel* kernel,
                       std::vector<std::vector<SearchResult>>* out,
                       std::vector<SearchStats>* stats) const;

  std::vector<ItemId> ids_;
  /// ItemId -> row position, for the candidate-driven restricted scans
  /// (first position wins should an id be re-added).
  std::unordered_map<ItemId, size_t> pos_by_id_;
  /// Contiguous mirror of every code's words: [n, stride_] row-major,
  /// 64-byte aligned, rows zero-padded from words_per_code_ up to the
  /// kernel stride.  Every scan streams this array block-at-a-time
  /// through the dispatched kernel; the zero tail XORs to zero against
  /// the (equally padded) query, so padding never perturbs a distance.
  simd::AlignedWordBuffer flat_words_;
  size_t words_per_code_ = 0;
  size_t stride_ = 0;  ///< simd::PaddedStride(words_per_code_)
  size_t code_bits_ = 0;
};

/// One float-vector search hit.
struct FloatSearchResult {
  ItemId id;
  float distance;  ///< squared L2
};

/// Exact k-NN over raw float feature vectors (squared L2).  This is the
/// accuracy upper bound of experiment E2 and the latency strawman of E1:
/// what retrieval would cost without hashing.
class FloatLinearScan {
 public:
  /// `dim` is the fixed dimensionality of all added vectors.
  explicit FloatLinearScan(size_t dim) : dim_(dim) {}

  /// Adds a vector (must be rank-1 of length dim; asserted).
  void Add(ItemId id, const Tensor& vec);

  /// The k nearest vectors by squared L2 distance, ordered ascending.
  std::vector<FloatSearchResult> KnnSearch(const Tensor& query,
                                           size_t k) const;

  size_t size() const { return ids_.size(); }
  size_t dim() const { return dim_; }

 private:
  size_t dim_;
  std::vector<ItemId> ids_;
  std::vector<float> data_;  ///< row-major [n, dim]
};

}  // namespace agoraeo::index

#endif  // AGORAEO_INDEX_LINEAR_SCAN_H_
