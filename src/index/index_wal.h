#ifndef AGORAEO_INDEX_INDEX_WAL_H_
#define AGORAEO_INDEX_INDEX_WAL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/binary_code.h"
#include "common/status.h"
#include "common/wal_framing.h"

namespace agoraeo::index {

/// One ingest batch as logged: the items of one AddImage/AddImages call.
/// Ids are assigned sequentially by the CbirService, so the record only
/// stores the first — item i of the batch has id `first_seq + i`.  The
/// whole batch is one WAL frame: a crash mid-append tears the frame and
/// recovery drops the batch as a unit, never half of it.
struct IndexWalRecord {
  uint64_t first_seq = 0;
  std::vector<std::string> names;
  std::vector<BinaryCode> codes;  ///< codes[i] belongs to names[i]
};

/// Appends IndexWalRecords over the shared frame format (common/
/// wal_framing): the index WAL and the docstore journal are the same
/// file format with different payloads.
class IndexWalWriter {
 public:
  Status Open(const std::string& path,
              WalSyncMode sync = WalSyncMode::kFlush) {
    return frames_.Open(path, sync);
  }
  Status Append(const IndexWalRecord& record);
  Status Reset() { return frames_.Reset(); }
  void Close() { frames_.Close(); }

  bool is_open() const { return frames_.is_open(); }
  const std::string& path() const { return frames_.path(); }
  WalSyncMode sync_mode() const { return frames_.sync_mode(); }
  size_t records_appended() const { return frames_.frames_appended(); }
  uint64_t bytes_appended() const { return frames_.bytes_appended(); }
  /// Forwards to WalFrameWriter::set_sync_histogram.
  void set_sync_histogram(obs::Histogram* histogram) {
    frames_.set_sync_histogram(histogram);
  }

 private:
  WalFrameWriter frames_;
};

struct IndexWalReplayResult {
  size_t records_applied = 0;
  size_t items_applied = 0;  ///< items across those records
  bool tail_discarded = false;
  uint64_t valid_bytes = 0;
};

/// Replays the index WAL at `path`, invoking `apply` per intact record
/// in append order.  Torn/corrupt tails are discarded, not errors (see
/// ReplayWalFrames); a missing file is an empty log.
StatusOr<IndexWalReplayResult> ReplayIndexWal(
    const std::string& path,
    const std::function<Status(const IndexWalRecord&)>& apply);

}  // namespace agoraeo::index

#endif  // AGORAEO_INDEX_INDEX_WAL_H_
