#include "index/index_snapshot.h"

#include <filesystem>
#include <system_error>

#include "common/byte_buffer.h"
#include "common/crc32.h"

namespace agoraeo::index {

namespace {

/// "AQSN" little-endian.
constexpr uint32_t kSnapshotMagic = 0x4e535141u;
constexpr uint32_t kSnapshotVersion = 1;

}  // namespace

std::string ShardSnapshotPath(const std::string& dir, size_t shard) {
  return (std::filesystem::path(dir) /
          ("shard-" + std::to_string(shard) + ".snap"))
      .string();
}

StatusOr<std::vector<uint8_t>> SerializeIndexSnapshot(
    const IndexSnapshot& snap) {
  if (snap.names.size() != snap.ids.size() ||
      snap.code_words.size() !=
          snap.ids.size() * static_cast<size_t>(snap.words_per_code)) {
    return Status::InvalidArgument("snapshot arrays are inconsistent");
  }
  ByteWriter payload;
  payload.PutU32(snap.shard_index);
  payload.PutU32(snap.num_shards);
  payload.PutU64(snap.watermark);
  payload.PutU32(snap.code_bits);
  payload.PutU32(snap.words_per_code);
  payload.PutU64(snap.ids.size());
  for (ItemId id : snap.ids) payload.PutU64(id);
  for (const std::string& name : snap.names) payload.PutString(name);
  payload.PutRaw(snap.code_words.data(),
                 snap.code_words.size() * sizeof(uint64_t));

  ByteWriter file;
  file.PutU32(kSnapshotMagic);
  file.PutU32(kSnapshotVersion);
  file.PutU32(static_cast<uint32_t>(payload.size()));
  file.PutU32(Crc32(payload.data()));
  file.PutRaw(payload.data().data(), payload.size());
  return file.data();
}

Status WriteIndexSnapshot(const std::string& path, const IndexSnapshot& snap) {
  AGORAEO_ASSIGN_OR_RETURN(std::vector<uint8_t> file,
                           SerializeIndexSnapshot(snap));
  const std::string tmp = path + ".tmp";
  AGORAEO_RETURN_IF_ERROR(WriteFileBytes(tmp, file));
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::IOError("snapshot rename failed: " + ec.message());
  }
  return Status::OK();
}

StatusOr<IndexSnapshot> ParseIndexSnapshot(const uint8_t* data, size_t size) {
  ByteReader header(data, size);
  AGORAEO_ASSIGN_OR_RETURN(uint32_t magic, header.GetU32());
  if (magic != kSnapshotMagic) {
    return Status::Corruption("snapshot magic mismatch");
  }
  AGORAEO_ASSIGN_OR_RETURN(uint32_t version, header.GetU32());
  if (version != kSnapshotVersion) {
    return Status::Corruption("snapshot version " + std::to_string(version) +
                              " is unknown");
  }
  AGORAEO_ASSIGN_OR_RETURN(uint32_t payload_len, header.GetU32());
  AGORAEO_ASSIGN_OR_RETURN(uint32_t expected_crc, header.GetU32());
  if (header.remaining() != payload_len) {
    return Status::Corruption("snapshot payload is truncated");
  }
  const uint8_t* payload_bytes = data + (size - payload_len);
  if (Crc32(payload_bytes, payload_len) != expected_crc) {
    return Status::Corruption("snapshot CRC mismatch");
  }

  ByteReader payload(payload_bytes, payload_len);
  IndexSnapshot snap;
  AGORAEO_ASSIGN_OR_RETURN(snap.shard_index, payload.GetU32());
  AGORAEO_ASSIGN_OR_RETURN(snap.num_shards, payload.GetU32());
  AGORAEO_ASSIGN_OR_RETURN(snap.watermark, payload.GetU64());
  AGORAEO_ASSIGN_OR_RETURN(snap.code_bits, payload.GetU32());
  AGORAEO_ASSIGN_OR_RETURN(snap.words_per_code, payload.GetU32());
  AGORAEO_ASSIGN_OR_RETURN(uint64_t count, payload.GetU64());
  // A CRC-valid payload can still be structurally absurd if the writer
  // was buggy; keep the reader bounded.
  if (count > payload.remaining() / sizeof(uint64_t)) {
    return Status::Corruption("snapshot item count is implausible");
  }
  snap.ids.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    AGORAEO_ASSIGN_OR_RETURN(uint64_t id, payload.GetU64());
    snap.ids.push_back(id);
  }
  snap.names.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    AGORAEO_ASSIGN_OR_RETURN(std::string name, payload.GetString());
    snap.names.push_back(std::move(name));
  }
  const size_t num_words = count * static_cast<size_t>(snap.words_per_code);
  if (payload.remaining() != num_words * sizeof(uint64_t)) {
    return Status::Corruption("snapshot code array length mismatch");
  }
  snap.code_words.resize(num_words);
  for (size_t i = 0; i < num_words; ++i) {
    AGORAEO_ASSIGN_OR_RETURN(snap.code_words[i], payload.GetU64());
  }
  return snap;
}

StatusOr<IndexSnapshot> ReadIndexSnapshot(const std::string& path) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) {
    return Status::NotFound("no snapshot at " + path);
  }
  AGORAEO_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadFileBytes(path));
  return ParseIndexSnapshot(bytes.data(), bytes.size());
}

}  // namespace agoraeo::index
