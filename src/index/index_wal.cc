#include "index/index_wal.h"

#include "common/byte_buffer.h"

namespace agoraeo::index {

namespace {

/// Payload layout: u64 first_seq, u32 count, u32 code_bits,
/// u32 words_per_code, count names (length-prefixed), then the packed
/// code words ([count × words_per_code], row-major).
std::vector<uint8_t> EncodeRecord(const IndexWalRecord& record) {
  const uint32_t code_bits =
      record.codes.empty() ? 0
                           : static_cast<uint32_t>(record.codes.front().size());
  const uint32_t words_per_code =
      record.codes.empty()
          ? 0
          : static_cast<uint32_t>(record.codes.front().words().size());
  ByteWriter w;
  w.PutU64(record.first_seq);
  w.PutU32(static_cast<uint32_t>(record.names.size()));
  w.PutU32(code_bits);
  w.PutU32(words_per_code);
  for (const std::string& name : record.names) w.PutString(name);
  for (const BinaryCode& code : record.codes) {
    w.PutRaw(code.words().data(), code.words().size() * sizeof(uint64_t));
  }
  return w.Release();
}

StatusOr<IndexWalRecord> DecodeRecord(const std::vector<uint8_t>& payload) {
  ByteReader r(payload);
  IndexWalRecord record;
  AGORAEO_ASSIGN_OR_RETURN(record.first_seq, r.GetU64());
  AGORAEO_ASSIGN_OR_RETURN(uint32_t count, r.GetU32());
  AGORAEO_ASSIGN_OR_RETURN(uint32_t code_bits, r.GetU32());
  AGORAEO_ASSIGN_OR_RETURN(uint32_t words_per_code, r.GetU32());
  if (words_per_code != (code_bits + 63) / 64) {
    return Status::Corruption("index WAL record word count mismatch");
  }
  record.names.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    AGORAEO_ASSIGN_OR_RETURN(std::string name, r.GetString());
    record.names.push_back(std::move(name));
  }
  if (r.remaining() !=
      static_cast<size_t>(count) * words_per_code * sizeof(uint64_t)) {
    return Status::Corruption("index WAL record code array mismatch");
  }
  record.codes.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::vector<uint64_t> words(words_per_code);
    for (uint32_t wi = 0; wi < words_per_code; ++wi) {
      AGORAEO_ASSIGN_OR_RETURN(words[wi], r.GetU64());
    }
    record.codes.push_back(BinaryCode::FromWords(code_bits, std::move(words)));
  }
  return record;
}

}  // namespace

Status IndexWalWriter::Append(const IndexWalRecord& record) {
  if (record.names.size() != record.codes.size()) {
    return Status::InvalidArgument("index WAL record names/codes mismatch");
  }
  for (const BinaryCode& code : record.codes) {
    if (code.size() != record.codes.front().size()) {
      return Status::InvalidArgument(
          "index WAL record mixes code lengths");
    }
  }
  return frames_.Append(EncodeRecord(record));
}

StatusOr<IndexWalReplayResult> ReplayIndexWal(
    const std::string& path,
    const std::function<Status(const IndexWalRecord&)>& apply) {
  IndexWalReplayResult result;
  AGORAEO_ASSIGN_OR_RETURN(
      WalFrameReplayResult frames,
      ReplayWalFrames(path, [&](const std::vector<uint8_t>& payload) {
        AGORAEO_ASSIGN_OR_RETURN(IndexWalRecord record, DecodeRecord(payload));
        AGORAEO_RETURN_IF_ERROR(apply(record));
        result.items_applied += record.names.size();
        return Status::OK();
      }));
  result.records_applied = frames.frames_applied;
  result.tail_discarded = frames.tail_discarded;
  result.valid_bytes = frames.valid_bytes;
  return result;
}

}  // namespace agoraeo::index
