#include "index/segmented_index.h"

#include <mutex>

#include "index/frontier.h"

namespace agoraeo::index {

namespace {

void AccumulateStats(const SearchStats& part, SearchStats* total) {
  total->buckets_probed += part.buckets_probed;
  total->candidates += part.candidates;
}

}  // namespace

SegmentedHammingIndex::SegmentedHammingIndex(SegmentFactory factory,
                                             size_t seal_threshold,
                                             size_t compact_threshold)
    : factory_(std::move(factory)),
      seal_threshold_(seal_threshold),
      compact_threshold_(compact_threshold),
      mutable_(factory_()),
      sealed_(std::make_shared<const SegmentList>()) {
  base_name_ = mutable_->Name();
}

Status SegmentedHammingIndex::CheckCodeLength(const BinaryCode& code) {
  // Empty codes fall through: every wrapped kind rejects them with its
  // own message, and anchoring on 0 would wedge the index.
  if (code.size() == 0) return Status::OK();
  size_t expected = code_bits_.load();
  if (expected == 0) {
    code_bits_.compare_exchange_strong(expected, code.size());
    expected = code_bits_.load();
  }
  if (code.size() != expected) {
    return Status::InvalidArgument(
        "code length mismatch: index holds " + std::to_string(expected) +
        "-bit codes, got " + std::to_string(code.size()));
  }
  return Status::OK();
}

void SegmentedHammingIndex::SealLocked() {
  if (mutable_->size() == 0) return;
  std::shared_ptr<const SegmentList> old = sealed_.load();
  auto next = std::make_shared<SegmentList>(*old);
  SealedSegment sealed;
  sealed.index = std::shared_ptr<const HammingIndex>(std::move(mutable_));
  if (compact_threshold_ > 0) {
    sealed.items =
        std::make_shared<const std::vector<std::pair<ItemId, BinaryCode>>>(
            std::move(mutable_items_));
  }
  next->push_back(std::move(sealed));
  mutable_ = factory_();
  mutable_items_.clear();
  MaybeCompactLocked(&next);
  sealed_.store(std::shared_ptr<const SegmentList>(std::move(next)));
  seals_.fetch_add(1);
}

void SegmentedHammingIndex::MaybeCompactLocked(
    std::shared_ptr<SegmentList>* next) {
  if (compact_threshold_ == 0 || (*next)->size() <= compact_threshold_) {
    return;
  }
  std::vector<ItemId> ids;
  std::vector<BinaryCode> codes;
  size_t total = 0;
  for (const SealedSegment& segment : **next) total += segment.items->size();
  ids.reserve(total);
  codes.reserve(total);
  auto merged_items =
      std::make_shared<std::vector<std::pair<ItemId, BinaryCode>>>();
  merged_items->reserve(total);
  for (const SealedSegment& segment : **next) {
    for (const auto& [id, code] : *segment.items) {
      ids.push_back(id);
      codes.push_back(code);
      merged_items->emplace_back(id, code);
    }
  }
  std::unique_ptr<HammingIndex> merged = factory_();
  if (!merged->BatchAdd(ids, codes).ok()) {
    // Codes were validated at ingest, so this cannot realistically
    // fail; if it somehow does, serving the uncompacted list is
    // correct, just slower.
    return;
  }
  const uint64_t consumed = (*next)->size();
  auto compacted = std::make_shared<SegmentList>();
  compacted->push_back(
      SealedSegment{std::shared_ptr<const HammingIndex>(std::move(merged)),
                    std::move(merged_items)});
  *next = std::move(compacted);
  compactions_.fetch_add(1);
  compacted_segments_.fetch_add(consumed);
}

Status SegmentedHammingIndex::Seal() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  SealLocked();
  return Status::OK();
}

Status SegmentedHammingIndex::Add(ItemId id, const BinaryCode& code) {
  AGORAEO_RETURN_IF_ERROR(CheckCodeLength(code));
  std::unique_lock<std::shared_mutex> lock(mu_);
  AGORAEO_RETURN_IF_ERROR(mutable_->Add(id, code));
  if (compact_threshold_ > 0) mutable_items_.emplace_back(id, code);
  if (seal_threshold_ > 0 && mutable_->size() >= seal_threshold_) {
    SealLocked();
  }
  return Status::OK();
}

Status SegmentedHammingIndex::BatchAdd(const std::vector<ItemId>& ids,
                                       const std::vector<BinaryCode>& codes,
                                       ThreadPool* /*pool*/) {
  if (ids.size() != codes.size()) {
    return Status::InvalidArgument("BatchAdd ids/codes length mismatch");
  }
  // Validate every code up front so a mismatch cannot strand a
  // partially applied batch across segments.
  for (const BinaryCode& code : codes) {
    AGORAEO_RETURN_IF_ERROR(CheckCodeLength(code));
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (size_t i = 0; i < ids.size(); ++i) {
    AGORAEO_RETURN_IF_ERROR(mutable_->Add(ids[i], codes[i]));
    if (compact_threshold_ > 0) mutable_items_.emplace_back(ids[i], codes[i]);
    if (seal_threshold_ > 0 && mutable_->size() >= seal_threshold_) {
      SealLocked();
    }
  }
  return Status::OK();
}

std::vector<SearchResult> SegmentedHammingIndex::GatherSegments(
    size_t k, SearchStats* stats,
    const std::function<std::vector<SearchResult>(const HammingIndex&,
                                                  SearchStats*)>&
        query_segment) const {
  if (stats != nullptr) *stats = SearchStats{};
  std::vector<std::vector<SearchResult>> per_segment;
  std::shared_ptr<const SegmentList> sealed;
  {
    // Pin the view: the sealed list is loaded in the same critical
    // section the mutable tail is queried in, so a concurrent seal
    // cannot make an item appear in both (or neither).
    std::shared_lock<std::shared_mutex> lock(mu_);
    sealed = sealed_.load();
    if (mutable_->size() > 0) {
      SearchStats seg_stats;
      per_segment.push_back(
          query_segment(*mutable_, stats != nullptr ? &seg_stats : nullptr));
      if (stats != nullptr) AccumulateStats(seg_stats, stats);
    }
  }
  // The bulk of the data: sealed segments, scanned with no lock held.
  per_segment.reserve(per_segment.size() + sealed->size());
  for (const auto& segment : *sealed) {
    SearchStats seg_stats;
    per_segment.push_back(query_segment(*segment.index,
                                        stats != nullptr ? &seg_stats : nullptr));
    if (stats != nullptr) AccumulateStats(seg_stats, stats);
  }
  std::vector<SearchResult> out = MergeHitLists(&per_segment, k);
  if (stats != nullptr) stats->results = out.size();
  return out;
}

std::vector<SearchResult> SegmentedHammingIndex::RadiusSearch(
    const BinaryCode& query, uint32_t radius, SearchStats* stats) const {
  return GatherSegments(
      0, stats, [&](const HammingIndex& segment, SearchStats* seg_stats) {
        return segment.RadiusSearch(query, radius, seg_stats);
      });
}

std::vector<SearchResult> SegmentedHammingIndex::KnnSearch(
    const BinaryCode& query, size_t k, SearchStats* stats) const {
  return GatherSegments(
      k, stats, [&](const HammingIndex& segment, SearchStats* seg_stats) {
        return segment.KnnSearch(query, k, seg_stats);
      });
}

std::vector<SearchResult> SegmentedHammingIndex::RadiusSearchIn(
    const BinaryCode& query, uint32_t radius, const CandidateSet& allowed,
    SearchStats* stats) const {
  // Segments are time-partitioned, not id-routed, so the allowlist
  // cannot be split — each segment filters against the full set.
  return GatherSegments(
      0, stats, [&](const HammingIndex& segment, SearchStats* seg_stats) {
        return segment.RadiusSearchIn(query, radius, allowed, seg_stats);
      });
}

std::vector<SearchResult> SegmentedHammingIndex::KnnSearchIn(
    const BinaryCode& query, size_t k, const CandidateSet& allowed,
    SearchStats* stats) const {
  return GatherSegments(
      k, stats, [&](const HammingIndex& segment, SearchStats* seg_stats) {
        return segment.KnnSearchIn(query, k, allowed, seg_stats);
      });
}

std::vector<std::vector<SearchResult>> SegmentedHammingIndex::
    GatherSegmentsBatch(
        size_t num_queries, size_t k, std::vector<SearchStats>* stats,
        const std::function<std::vector<std::vector<SearchResult>>(
            const HammingIndex&, std::vector<SearchStats>*)>& run_segment)
        const {
  if (stats != nullptr) stats->assign(num_queries, SearchStats{});
  std::vector<std::vector<std::vector<SearchResult>>> per_segment;
  std::vector<std::vector<SearchStats>> per_segment_stats;
  std::shared_ptr<const SegmentList> sealed;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    sealed = sealed_.load();
    if (mutable_->size() > 0) {
      std::vector<SearchStats> seg_stats;
      per_segment.push_back(
          run_segment(*mutable_, stats != nullptr ? &seg_stats : nullptr));
      if (stats != nullptr) per_segment_stats.push_back(std::move(seg_stats));
    }
  }
  per_segment.reserve(per_segment.size() + sealed->size());
  for (const auto& segment : *sealed) {
    std::vector<SearchStats> seg_stats;
    per_segment.push_back(
        run_segment(*segment.index, stats != nullptr ? &seg_stats : nullptr));
    if (stats != nullptr) per_segment_stats.push_back(std::move(seg_stats));
  }

  // Gather: merge every query slot across segments.
  std::vector<std::vector<SearchResult>> out(num_queries);
  std::vector<std::vector<SearchResult>> slot(per_segment.size());
  for (size_t i = 0; i < num_queries; ++i) {
    for (size_t s = 0; s < per_segment.size(); ++s) {
      slot[s] = std::move(per_segment[s][i]);
      if (stats != nullptr && i < per_segment_stats[s].size()) {
        AccumulateStats(per_segment_stats[s][i], &(*stats)[i]);
      }
    }
    out[i] = MergeHitLists(&slot, k);
    if (stats != nullptr) (*stats)[i].results = out[i].size();
  }
  return out;
}

std::vector<std::vector<SearchResult>> SegmentedHammingIndex::BatchRadiusSearch(
    const std::vector<BinaryCode>& queries, uint32_t radius, ThreadPool* pool,
    std::vector<SearchStats>* stats) const {
  // The pool is forwarded into each segment's batch kernel (which
  // shards queries across it); segments themselves run sequentially —
  // nested parallelism belongs to the shard layer above.
  return GatherSegmentsBatch(
      queries.size(), 0, stats,
      [&](const HammingIndex& segment, std::vector<SearchStats>* seg_stats) {
        return segment.BatchRadiusSearch(queries, radius, pool, seg_stats);
      });
}

std::vector<std::vector<SearchResult>> SegmentedHammingIndex::BatchKnnSearch(
    const std::vector<BinaryCode>& queries, size_t k, ThreadPool* pool,
    std::vector<SearchStats>* stats) const {
  return GatherSegmentsBatch(
      queries.size(), k, stats,
      [&](const HammingIndex& segment, std::vector<SearchStats>* seg_stats) {
        return segment.BatchKnnSearch(queries, k, pool, seg_stats);
      });
}

std::vector<std::vector<SearchResult>>
SegmentedHammingIndex::BatchRadiusSearchIn(
    const std::vector<BinaryCode>& queries, uint32_t radius,
    const CandidateSet& allowed, ThreadPool* pool,
    std::vector<SearchStats>* stats) const {
  return GatherSegmentsBatch(
      queries.size(), 0, stats,
      [&](const HammingIndex& segment, std::vector<SearchStats>* seg_stats) {
        return segment.BatchRadiusSearchIn(queries, radius, allowed, pool,
                                           seg_stats);
      });
}

std::vector<std::vector<SearchResult>> SegmentedHammingIndex::BatchKnnSearchIn(
    const std::vector<BinaryCode>& queries, size_t k,
    const CandidateSet& allowed, ThreadPool* pool,
    std::vector<SearchStats>* stats) const {
  return GatherSegmentsBatch(
      queries.size(), k, stats,
      [&](const HammingIndex& segment, std::vector<SearchStats>* seg_stats) {
        return segment.BatchKnnSearchIn(queries, k, allowed, pool, seg_stats);
      });
}

std::unique_ptr<HitFrontier> SegmentedHammingIndex::OpenFrontier(
    const BinaryCode& query, const FrontierOptions& options) const {
  auto merge = std::make_unique<MergingFrontier>();
  std::shared_ptr<const SegmentList> sealed;
  {
    // Same pinning protocol as GatherSegments: the sealed list is
    // loaded in the critical section the mutable tail is snapshotted
    // in, so a concurrent seal cannot make an item appear twice (or
    // vanish) in the frontier's view.
    std::shared_lock<std::shared_mutex> lock(mu_);
    sealed = sealed_.load();
    if (mutable_->size() > 0) {
      // The mutable tail is small by construction (it seals at
      // seal_threshold); materialise it eagerly — lazy streaming from
      // a segment that keeps mutating would not be a snapshot.
      std::vector<SearchResult> hits;
      if (options.radius.has_value()) {
        hits = options.allowed != nullptr
                   ? mutable_->RadiusSearchIn(query, *options.radius,
                                              *options.allowed)
                   : mutable_->RadiusSearch(query, *options.radius);
      } else {
        hits = options.allowed != nullptr
                   ? mutable_->KnnSearchIn(query, mutable_->size(),
                                           *options.allowed)
                   : mutable_->KnnSearch(query, mutable_->size());
      }
      merge->AddChild(std::make_unique<MaterializedFrontier>(std::move(hits)));
    }
  }
  for (const SealedSegment& segment : *sealed) {
    merge->AddChild(segment.index->OpenFrontier(query, options));
    merge->AddPin(segment.index);  // the lazy child borrows the segment
  }
  return merge;
}

size_t SegmentedHammingIndex::size() const {
  size_t total = 0;
  std::shared_ptr<const SegmentList> sealed;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    sealed = sealed_.load();
    total = mutable_->size();
  }
  for (const auto& segment : *sealed) total += segment.index->size();
  return total;
}

SegmentedIndexStats SegmentedHammingIndex::Stats() const {
  SegmentedIndexStats stats;
  std::shared_ptr<const SegmentList> sealed;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    sealed = sealed_.load();
    stats.mutable_items = mutable_->size();
  }
  stats.num_sealed = sealed->size();
  for (const auto& segment : *sealed) {
    stats.sealed_items += segment.index->size();
  }
  stats.seals = seals_.load();
  stats.compactions = compactions_.load();
  stats.compacted_segments = compacted_segments_.load();
  return stats;
}

}  // namespace agoraeo::index
