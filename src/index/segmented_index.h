#ifndef AGORAEO_INDEX_SEGMENTED_INDEX_H_
#define AGORAEO_INDEX_SEGMENTED_INDEX_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "index/hamming_index.h"

namespace agoraeo::index {

/// Observability counters of one SegmentedHammingIndex.
struct SegmentedIndexStats {
  size_t num_sealed = 0;     ///< sealed (immutable) segments
  size_t sealed_items = 0;   ///< items across sealed segments
  size_t mutable_items = 0;  ///< items in the mutable segment
  uint64_t seals = 0;        ///< lifetime seal (rotate) count
  uint64_t compactions = 0;  ///< lifetime sealed-segment merges
  uint64_t compacted_segments = 0;  ///< segments consumed by compactions
};

/// Memtable-style segment structure over any HammingIndex kind: one
/// small MUTABLE segment absorbs Add/BatchAdd while a list of SEALED
/// immutable segments serves the bulk of every read lock-free.
///
/// Concurrency protocol (the whole point of the structure):
///   - The sealed-segment list lives behind an atomic shared_ptr.
///     Readers pin it with one atomic load and scan the sealed segments
///     with NO lock — sealed segments are never mutated again, so the
///     pinned view stays valid however long the scan takes and however
///     many seals happen meanwhile.
///   - Only the mutable segment is guarded by a shared_mutex: writers
///     take it exclusively for the duration of one (small) segment's
///     Add, readers take it shared just long enough to query the small
///     mutable tail and load the sealed list — the list load happens
///     under the same lock the sealer swaps under, so a reader's view
///     (sealed ∪ mutable) never misses or double-counts an item that a
///     concurrent seal is moving between the two.
///   - Seal (rotate) freezes the mutable segment: under the exclusive
///     lock it is appended to a copy of the sealed list, the copy is
///     atomically published, and a fresh empty mutable segment is
///     installed.  O(segments) pointer copies; no data moves.
///
/// Reads gather across segments exactly like the sharded index gathers
/// across shards — per-segment (distance, id)-sorted lists merged by
/// MergeHitLists — so results are byte-identical to one flat index over
/// the same items.  `seal_threshold` of 0 never auto-seals: everything
/// stays in the mutable segment and the structure degenerates to the
/// plain locked index it replaced (the pre-segment behaviour).
class SegmentedHammingIndex : public HammingIndex {
 public:
  using SegmentFactory = std::function<std::unique_ptr<HammingIndex>()>;

  /// `factory` builds each segment (all of one kind); the mutable
  /// segment seals automatically when it reaches `seal_threshold` items
  /// (0 = only on explicit Seal()).  `compact_threshold` bounds the
  /// per-query segment fan-out: whenever a seal leaves MORE than this
  /// many sealed segments they are merged into one (0 = never compact —
  /// the pre-compaction behaviour).  Compaction retains a copy of every
  /// sealed item's (id, code), so enabling it costs one extra code copy
  /// per item; the merge itself runs under the writer lock (readers on
  /// the old pinned list are unaffected) and rebuilds one segment with
  /// a single BatchAdd.  Results are unchanged by construction: every
  /// segment kind returns (distance, id)-sorted hits and MergeHitLists
  /// is associative over segment boundaries.
  explicit SegmentedHammingIndex(SegmentFactory factory,
                                 size_t seal_threshold = 0,
                                 size_t compact_threshold = 0);

  Status Add(ItemId id, const BinaryCode& code) override;
  /// Adds the whole batch under ONE exclusive-lock acquisition (readers
  /// see none or all of it), sealing at every threshold crossing.
  /// `pool` is ignored: segment fills are inherently sequential; the
  /// partition layer above parallelises across shards.
  Status BatchAdd(const std::vector<ItemId>& ids,
                  const std::vector<BinaryCode>& codes,
                  ThreadPool* pool = nullptr) override;

  std::vector<SearchResult> RadiusSearch(
      const BinaryCode& query, uint32_t radius,
      SearchStats* stats = nullptr) const override;
  std::vector<SearchResult> KnnSearch(
      const BinaryCode& query, size_t k,
      SearchStats* stats = nullptr) const override;
  std::vector<SearchResult> RadiusSearchIn(
      const BinaryCode& query, uint32_t radius, const CandidateSet& allowed,
      SearchStats* stats = nullptr) const override;
  std::vector<SearchResult> KnnSearchIn(
      const BinaryCode& query, size_t k, const CandidateSet& allowed,
      SearchStats* stats = nullptr) const override;

  std::vector<std::vector<SearchResult>> BatchRadiusSearch(
      const std::vector<BinaryCode>& queries, uint32_t radius,
      ThreadPool* pool = nullptr,
      std::vector<SearchStats>* stats = nullptr) const override;
  std::vector<std::vector<SearchResult>> BatchKnnSearch(
      const std::vector<BinaryCode>& queries, size_t k,
      ThreadPool* pool = nullptr,
      std::vector<SearchStats>* stats = nullptr) const override;
  std::vector<std::vector<SearchResult>> BatchRadiusSearchIn(
      const std::vector<BinaryCode>& queries, uint32_t radius,
      const CandidateSet& allowed, ThreadPool* pool = nullptr,
      std::vector<SearchStats>* stats = nullptr) const override;
  std::vector<std::vector<SearchResult>> BatchKnnSearchIn(
      const std::vector<BinaryCode>& queries, size_t k,
      const CandidateSet& allowed, ThreadPool* pool = nullptr,
      std::vector<SearchStats>* stats = nullptr) const override;

  /// Lazy ranked access with snapshot semantics: the sealed-segment
  /// list is pinned and the small mutable tail materialised in one
  /// critical section (the same protocol as GatherSegments), so the
  /// frontier never observes later ingest however long it lives.  The
  /// returned frontier owns shared_ptr pins on every sealed segment it
  /// streams from and is safe to hold across seals and compactions.
  std::unique_ptr<HitFrontier> OpenFrontier(
      const BinaryCode& query, const FrontierOptions& options) const override;

  size_t size() const override;
  /// Transparent: the wrapped kind's name, so observability strings
  /// ("sharded(LinearScan, 4)") are independent of segmentation.
  std::string Name() const override { return base_name_; }

  /// Seals (rotates) the mutable segment now — a no-op when it is
  /// empty.  Used by on-demand snapshots so the snapshot boundary
  /// coincides with a segment boundary.
  Status Seal();

  size_t seal_threshold() const { return seal_threshold_; }
  size_t compact_threshold() const { return compact_threshold_; }
  SegmentedIndexStats Stats() const;

 private:
  /// One sealed segment: the immutable index plus (when compaction is
  /// on) the retained items it was built from, so a later merge can
  /// rebuild without enumerating the index.
  struct SealedSegment {
    std::shared_ptr<const HammingIndex> index;
    std::shared_ptr<const std::vector<std::pair<ItemId, BinaryCode>>> items;
  };
  using SegmentList = std::vector<SealedSegment>;

  /// Same cross-segment code-length anchor as the sharded layer: a
  /// fresh mutable segment would otherwise accept a length the sealed
  /// segments reject.
  Status CheckCodeLength(const BinaryCode& code);

  /// Rotates under an already-held exclusive lock.
  void SealLocked();

  /// Merges all sealed segments into one when their count exceeds
  /// compact_threshold_; called under the exclusive lock after a seal.
  void MaybeCompactLocked(std::shared_ptr<SegmentList>* next);

  /// The shared read protocol: runs `query_segment` against the mutable
  /// segment under the shared lock (pinning the sealed list in the same
  /// critical section), then against every sealed segment lock-free,
  /// and merges the per-segment lists with MergeHitLists(k).
  std::vector<SearchResult> GatherSegments(
      size_t k, SearchStats* stats,
      const std::function<std::vector<SearchResult>(const HammingIndex&,
                                                    SearchStats*)>&
          query_segment) const;

  /// Batch flavour of GatherSegments: `run_segment` produces one
  /// segment's full per-query result matrix; slots are merged across
  /// segments at the gather point.
  std::vector<std::vector<SearchResult>> GatherSegmentsBatch(
      size_t num_queries, size_t k, std::vector<SearchStats>* stats,
      const std::function<std::vector<std::vector<SearchResult>>(
          const HammingIndex&, std::vector<SearchStats>*)>& run_segment) const;

  SegmentFactory factory_;
  size_t seal_threshold_;
  size_t compact_threshold_;
  std::string base_name_;

  /// Guards mutable_ (and orders sealed-list swaps against readers'
  /// list loads).  Sealed-segment scans happen OUTSIDE this lock.
  mutable std::shared_mutex mu_;
  std::unique_ptr<HammingIndex> mutable_;
  /// (id, code) pairs of the mutable segment, retained only when
  /// compaction is on; moves into the SealedSegment on seal.
  std::vector<std::pair<ItemId, BinaryCode>> mutable_items_;
  std::atomic<std::shared_ptr<const SegmentList>> sealed_;

  std::atomic<size_t> code_bits_{0};
  std::atomic<uint64_t> seals_{0};
  std::atomic<uint64_t> compactions_{0};
  std::atomic<uint64_t> compacted_segments_{0};
};

}  // namespace agoraeo::index

#endif  // AGORAEO_INDEX_SEGMENTED_INDEX_H_
