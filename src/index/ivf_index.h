#ifndef AGORAEO_INDEX_IVF_INDEX_H_
#define AGORAEO_INDEX_IVF_INDEX_H_

#include <vector>

#include "common/status.h"
#include "index/linear_scan.h"
#include "tensor/tensor.h"

namespace agoraeo::index {

/// IVF-Flat: the inverted-file ANN index FAISS and Milvus build their
/// float pipelines on, and the natural systems alternative to the
/// paper's hash-table design.  A k-means coarse quantizer partitions the
/// feature space into `nlist` cells; each vector is stored (exactly, no
/// compression — "Flat") in the inverted list of its nearest centroid.
/// A query ranks centroids and scans only the `nprobe` nearest lists
/// with exact L2, trading recall for latency via nprobe.
///
/// Appears in experiment E1 as the float-side middle ground between the
/// exhaustive float scan and binary hashing.
class IvfFlatIndex {
 public:
  struct Config {
    size_t nlist = 64;          ///< number of coarse cells
    size_t kmeans_iterations = 12;
    uint64_t seed = 42;
  };

  /// Learns the coarse quantizer from `training` ([n, dim]); requires
  /// n >= nlist.
  static StatusOr<IvfFlatIndex> Train(const Tensor& training,
                                      const Config& config);

  /// Adds a vector ([dim]) to the inverted list of its nearest centroid.
  Status Add(ItemId id, const Tensor& feature);

  /// The k nearest stored vectors among the `nprobe` closest cells,
  /// ascending by exact squared L2.  nprobe >= nlist degenerates to an
  /// exact scan.
  std::vector<FloatSearchResult> KnnSearch(const Tensor& query, size_t k,
                                           size_t nprobe) const;

  /// Batch k-NN over a [B, dim] query matrix: slot i equals
  /// KnnSearch(queries.Row(i), k, nprobe).  Queries are sharded across
  /// `pool` when one is given (search is read-only and thread-safe).
  std::vector<std::vector<FloatSearchResult>> BatchKnnSearch(
      const Tensor& queries, size_t k, size_t nprobe,
      ThreadPool* pool = nullptr) const;

  /// Items whose cell was scanned for the given nprobe (the candidate
  /// count a query of that setting examines); used by benchmarks.
  size_t CandidatesForProbe(const Tensor& query, size_t nprobe) const;

  size_t size() const { return num_items_; }
  size_t dim() const { return dim_; }
  size_t nlist() const { return centroids_.size() / dim_; }

 private:
  IvfFlatIndex() = default;

  /// Indices of the nprobe nearest centroids, ascending by distance.
  std::vector<size_t> RankCells(const Tensor& query, size_t nprobe) const;

  size_t dim_ = 0;
  size_t num_items_ = 0;
  std::vector<float> centroids_;  ///< [nlist, dim] row-major
  struct ListEntry {
    ItemId id;
    std::vector<float> vec;
  };
  std::vector<std::vector<ListEntry>> lists_;  ///< one per cell
};

}  // namespace agoraeo::index

#endif  // AGORAEO_INDEX_IVF_INDEX_H_
