#include "index/product_quantizer.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace agoraeo::index {

namespace {

/// Squared L2 between two float spans of length n.
float SquaredL2(const float* a, const float* b, size_t n) {
  float acc = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    const float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

}  // namespace

StatusOr<ProductQuantizer> ProductQuantizer::Train(const Tensor& training,
                                                   const Config& config) {
  if (training.rank() != 2) {
    return Status::InvalidArgument("training tensor must be [n, dim]");
  }
  const size_t n = training.shape()[0];
  const size_t dim = training.shape()[1];
  if (config.num_subspaces == 0 || dim % config.num_subspaces != 0) {
    return Status::InvalidArgument(
        "num_subspaces must divide the feature dimension");
  }
  if (config.num_centroids == 0 || config.num_centroids > 256) {
    return Status::InvalidArgument("num_centroids must be in [1, 256]");
  }
  if (n < config.num_centroids) {
    return Status::InvalidArgument(
        "need at least num_centroids training vectors");
  }

  ProductQuantizer pq;
  pq.dim_ = dim;
  pq.m_ = config.num_subspaces;
  pq.k_ = config.num_centroids;
  const size_t sub = pq.sub_dim();
  pq.codebooks_.resize(pq.m_);

  Rng rng(config.seed);
  const float* data = training.data();

  for (size_t s = 0; s < pq.m_; ++s) {
    auto& book = pq.codebooks_[s];
    book.resize(pq.k_ * sub);

    // Seed centroids with distinct random training rows.
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i) order[i] = i;
    rng.Shuffle(&order);
    for (size_t c = 0; c < pq.k_; ++c) {
      const float* row = data + order[c] * dim + s * sub;
      std::copy(row, row + sub, book.begin() + c * sub);
    }

    // Lloyd iterations on the subvectors.
    std::vector<size_t> assignment(n, 0);
    std::vector<float> sums(pq.k_ * sub);
    std::vector<size_t> counts(pq.k_);
    for (size_t iter = 0; iter < config.kmeans_iterations; ++iter) {
      bool changed = false;
      for (size_t i = 0; i < n; ++i) {
        const float* x = data + i * dim + s * sub;
        float best = std::numeric_limits<float>::max();
        size_t arg = 0;
        for (size_t c = 0; c < pq.k_; ++c) {
          const float d = SquaredL2(x, book.data() + c * sub, sub);
          if (d < best) {
            best = d;
            arg = c;
          }
        }
        if (assignment[i] != arg) {
          assignment[i] = arg;
          changed = true;
        }
      }
      if (!changed && iter > 0) break;

      std::fill(sums.begin(), sums.end(), 0.0f);
      std::fill(counts.begin(), counts.end(), 0);
      for (size_t i = 0; i < n; ++i) {
        const float* x = data + i * dim + s * sub;
        float* sum = sums.data() + assignment[i] * sub;
        for (size_t j = 0; j < sub; ++j) sum[j] += x[j];
        ++counts[assignment[i]];
      }
      for (size_t c = 0; c < pq.k_; ++c) {
        if (counts[c] == 0) {
          // Empty cluster: re-seed from a random row to keep K alive.
          const float* row =
              data + order[rng.UniformInt(static_cast<uint32_t>(n))] * dim +
              s * sub;
          std::copy(row, row + sub, book.begin() + c * sub);
          continue;
        }
        const float inv = 1.0f / static_cast<float>(counts[c]);
        for (size_t j = 0; j < sub; ++j) {
          book[c * sub + j] = sums[c * sub + j] * inv;
        }
      }
    }
  }
  return pq;
}

std::vector<uint8_t> ProductQuantizer::Encode(const Tensor& feature) const {
  assert(feature.size() == dim_);
  const size_t sub = sub_dim();
  std::vector<uint8_t> code(m_);
  for (size_t s = 0; s < m_; ++s) {
    const float* x = feature.data() + s * sub;
    const auto& book = codebooks_[s];
    float best = std::numeric_limits<float>::max();
    size_t arg = 0;
    for (size_t c = 0; c < k_; ++c) {
      const float d = SquaredL2(x, book.data() + c * sub, sub);
      if (d < best) {
        best = d;
        arg = c;
      }
    }
    code[s] = static_cast<uint8_t>(arg);
  }
  return code;
}

Tensor ProductQuantizer::Decode(const std::vector<uint8_t>& code) const {
  assert(code.size() == m_);
  const size_t sub = sub_dim();
  Tensor out({dim_});
  for (size_t s = 0; s < m_; ++s) {
    const float* centroid = codebooks_[s].data() + code[s] * sub;
    std::copy(centroid, centroid + sub, out.data() + s * sub);
  }
  return out;
}

std::vector<float> ProductQuantizer::BuildAdcTable(const Tensor& query) const {
  assert(query.size() == dim_);
  const size_t sub = sub_dim();
  std::vector<float> table(m_ * k_);
  for (size_t s = 0; s < m_; ++s) {
    const float* x = query.data() + s * sub;
    const auto& book = codebooks_[s];
    for (size_t c = 0; c < k_; ++c) {
      table[s * k_ + c] = SquaredL2(x, book.data() + c * sub, sub);
    }
  }
  return table;
}

float ProductQuantizer::AdcDistance(const std::vector<float>& table,
                                    const std::vector<uint8_t>& code) const {
  float acc = 0.0f;
  for (size_t s = 0; s < m_; ++s) {
    acc += table[s * k_ + code[s]];
  }
  return acc;
}

// ---------------------------------------------------------------------------
// PqIndex
// ---------------------------------------------------------------------------

Status PqIndex::Add(ItemId id, const Tensor& feature) {
  if (feature.size() != pq_.dim()) {
    return Status::InvalidArgument("feature dimension mismatch");
  }
  const std::vector<uint8_t> code = pq_.Encode(feature);
  ids_.push_back(id);
  codes_.insert(codes_.end(), code.begin(), code.end());
  return Status::OK();
}

std::vector<FloatSearchResult> PqIndex::KnnSearch(const Tensor& query,
                                                  size_t k) const {
  std::vector<FloatSearchResult> best;
  if (ids_.empty() || k == 0) return best;
  const std::vector<float> table = pq_.BuildAdcTable(query);
  const size_t m = pq_.num_subspaces();
  const size_t kk = pq_.num_centroids();

  best.reserve(k + 1);
  auto worse = [](const FloatSearchResult& a, const FloatSearchResult& b) {
    return a.distance < b.distance ||
           (a.distance == b.distance && a.id < b.id);
  };
  for (size_t i = 0; i < ids_.size(); ++i) {
    const uint8_t* code = codes_.data() + i * m;
    float acc = 0.0f;
    for (size_t s = 0; s < m; ++s) acc += table[s * kk + code[s]];
    const FloatSearchResult candidate{ids_[i], acc};
    if (best.size() < k) {
      best.insert(std::lower_bound(best.begin(), best.end(), candidate, worse),
                  candidate);
    } else if (worse(candidate, best.back())) {
      best.pop_back();
      best.insert(std::lower_bound(best.begin(), best.end(), candidate, worse),
                  candidate);
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// TwoStageRetriever
// ---------------------------------------------------------------------------

void TwoStageRetriever::AddFeature(ItemId id, const Tensor& feature) {
  assert(feature.size() == dim_);
  features_[id] =
      std::vector<float>(feature.data(), feature.data() + feature.size());
}

std::vector<FloatSearchResult> TwoStageRetriever::Search(
    const BinaryCode& query_code, const Tensor& query_feature, size_t k,
    size_t shortlist) const {
  const auto stage1 = hamming_->KnnSearch(query_code, shortlist);
  std::vector<FloatSearchResult> reranked;
  reranked.reserve(stage1.size());
  for (const SearchResult& hit : stage1) {
    auto it = features_.find(hit.id);
    if (it == features_.end()) continue;  // no feature registered
    reranked.push_back(
        {hit.id,
         SquaredL2(query_feature.data(), it->second.data(), dim_)});
  }
  std::sort(reranked.begin(), reranked.end(),
            [](const FloatSearchResult& a, const FloatSearchResult& b) {
              return a.distance < b.distance ||
                     (a.distance == b.distance && a.id < b.id);
            });
  if (reranked.size() > k) reranked.resize(k);
  return reranked;
}

}  // namespace agoraeo::index
