#ifndef AGORAEO_INDEX_BK_TREE_H_
#define AGORAEO_INDEX_BK_TREE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "index/hamming_index.h"

namespace agoraeo::index {

/// A Burkhard-Keller tree over Hamming space — the classic metric-tree
/// baseline the hash-table approach is compared against in experiments
/// E1/E3.  Every node holds one code; children are keyed by their exact
/// distance to the parent.  A radius-r search at node n with
/// d = ham(query, n.code) only needs to visit children with edge keys in
/// [d - r, d + r] (triangle inequality), pruning the rest.
///
/// BK-trees answer exact radius queries without bucket enumeration, but
/// their pruning weakens as r grows relative to the code length — the
/// crossover experiment E3 charts exactly that behaviour against the
/// hash table and multi-index hashing.
class BkTree : public HammingIndex {
 public:
  Status Add(ItemId id, const BinaryCode& code) override;
  std::vector<SearchResult> RadiusSearch(
      const BinaryCode& query, uint32_t radius,
      SearchStats* stats = nullptr) const override;
  std::vector<SearchResult> KnnSearch(
      const BinaryCode& query, size_t k,
      SearchStats* stats = nullptr) const override;

  /// Query-sharded batch radius search.  Each shard reuses one DFS
  /// stack buffer across all of its queries, avoiding the per-query
  /// allocation the single-query path pays.
  std::vector<std::vector<SearchResult>> BatchRadiusSearch(
      const std::vector<BinaryCode>& queries, uint32_t radius,
      ThreadPool* pool = nullptr,
      std::vector<SearchStats>* stats = nullptr) const override;

  /// Restricted searches traverse with the usual triangle-inequality
  /// pruning and admit only allowlisted ids when collecting.
  std::vector<SearchResult> RadiusSearchIn(
      const BinaryCode& query, uint32_t radius, const CandidateSet& allowed,
      SearchStats* stats = nullptr) const override;
  std::vector<SearchResult> KnnSearchIn(
      const BinaryCode& query, size_t k, const CandidateSet& allowed,
      SearchStats* stats = nullptr) const override;

  /// Lazy ranked access: a resumable best-first traversal — nodes are
  /// expanded in order of their subtree's distance lower bound, and a
  /// hit is released only once no unexpanded subtree can beat it, so
  /// the pruned walk pauses between pages exactly where it stopped.
  std::unique_ptr<HitFrontier> OpenFrontier(
      const BinaryCode& query, const FrontierOptions& options) const override;

  size_t size() const override { return num_items_; }
  std::string Name() const override { return "BkTree"; }

  /// Tree depth (0 for empty; 1 for a root-only tree).
  size_t Depth() const;

 private:
  class FrontierImpl;  // the resumable best-first traversal (bk_tree.cc)

  struct Node {
    BinaryCode code;
    std::vector<ItemId> ids;  ///< duplicate codes share one node
    // Children keyed by exact Hamming distance to this node's code
    // (distance 0 never occurs: equal codes join ids).
    std::map<uint32_t, std::unique_ptr<Node>> children;
  };

  /// Radius search writing into caller-owned buffers; `stack` is the
  /// DFS work list, cleared on entry so batch shards can reuse its
  /// capacity across queries.  `allowed == nullptr` means unrestricted.
  void RadiusSearchInto(const BinaryCode& query, uint32_t radius,
                        const CandidateSet* allowed,
                        std::vector<const Node*>* stack,
                        std::vector<SearchResult>* out,
                        SearchStats* stats) const;

  /// Shared best-first k-NN (`allowed == nullptr` means unrestricted).
  std::vector<SearchResult> BestFirstKnn(const BinaryCode& query, size_t k,
                                         const CandidateSet* allowed,
                                         SearchStats* stats) const;

  std::unique_ptr<Node> root_;
  size_t code_bits_ = 0;
  size_t num_items_ = 0;
};

}  // namespace agoraeo::index

#endif  // AGORAEO_INDEX_BK_TREE_H_
