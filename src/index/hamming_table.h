#ifndef AGORAEO_INDEX_HAMMING_TABLE_H_
#define AGORAEO_INDEX_HAMMING_TABLE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "index/hamming_index.h"

namespace agoraeo::index {

/// The paper's retrieval structure (Section 2.2): a hash table that
/// "stores all images with the same hash code in the same hash bucket";
/// retrieval probes "all images in the hash buckets that are within a
/// small hamming radius of the query image".
///
/// Radius-r lookup enumerates every code at distance <= r from the query
/// (sum of C(bits, i) probes).  Because that blows up for larger radii,
/// the implementation switches to scanning the non-empty buckets when
/// they are fewer than the probe count — the behaviour stays exact, and
/// experiment E3 charts the crossover.
class HammingHashTable : public HammingIndex {
 public:
  Status Add(ItemId id, const BinaryCode& code) override;
  std::vector<SearchResult> RadiusSearch(const BinaryCode& query,
                                         uint32_t radius,
                                         SearchStats* stats = nullptr) const override;
  std::vector<SearchResult> KnnSearch(const BinaryCode& query, size_t k,
                                      SearchStats* stats = nullptr) const override;

  /// Batch searches that first collapse duplicate query codes (a
  /// common shape for production batches over clustered codes): each
  /// distinct code is probed once, sharded across the pool, and its
  /// result is fanned out to every batch slot that asked for it.
  std::vector<std::vector<SearchResult>> BatchRadiusSearch(
      const std::vector<BinaryCode>& queries, uint32_t radius,
      ThreadPool* pool = nullptr,
      std::vector<SearchStats>* stats = nullptr) const override;
  std::vector<std::vector<SearchResult>> BatchKnnSearch(
      const std::vector<BinaryCode>& queries, size_t k,
      ThreadPool* pool = nullptr,
      std::vector<SearchStats>* stats = nullptr) const override;

  /// Restricted searches probe buckets exactly like the unrestricted
  /// ones but admit only allowlisted ids; the restricted k-NN stops its
  /// radius expansion as soon as the allowlist is exhausted.
  std::vector<SearchResult> RadiusSearchIn(
      const BinaryCode& query, uint32_t radius, const CandidateSet& allowed,
      SearchStats* stats = nullptr) const override;
  std::vector<SearchResult> KnnSearchIn(
      const BinaryCode& query, size_t k, const CandidateSet& allowed,
      SearchStats* stats = nullptr) const override;

  /// Lazy ranked access: walks probe rings outward (exact-distance mask
  /// enumeration per ring), switching to one bucketed scan of the
  /// remaining distances at the same probe-count crossover the eager
  /// search uses.  Ring r is only enumerated when the consumer drains
  /// past distance r-1.
  std::unique_ptr<HitFrontier> OpenFrontier(
      const BinaryCode& query, const FrontierOptions& options) const override;

  size_t size() const override { return num_items_; }
  std::string Name() const override { return "HammingHashTable"; }

  size_t num_buckets() const { return buckets_.size(); }

  /// Number of hash probes a radius-r lookup would enumerate
  /// (sum_{i<=r} C(bits, i), saturated at SIZE_MAX).
  static size_t ProbeCount(size_t bits, uint32_t radius);

 private:
  /// Shared body of RadiusSearch / RadiusSearchIn (`allowed == nullptr`
  /// means unrestricted).
  std::vector<SearchResult> SearchBuckets(const BinaryCode& query,
                                          uint32_t radius,
                                          const CandidateSet* allowed,
                                          SearchStats* stats) const;

  std::unordered_map<BinaryCode, std::vector<ItemId>, BinaryCodeHash> buckets_;
  size_t code_bits_ = 0;
  size_t num_items_ = 0;
};

/// Multi-index hashing (Norouzi, Punjani & Fleet): the code is split into
/// m disjoint substrings, each indexed in its own exact-match table.  If
/// two codes differ by at most r bits, some substring differs by at most
/// floor(r/m) bits (pigeonhole), so probing every substring table at that
/// reduced radius finds a complete candidate set, verified against the
/// full code.  This keeps radius search tractable where single-table
/// mask enumeration explodes (experiment E3's crossover).
class MultiIndexHashing : public HammingIndex {
 public:
  /// `num_substrings` must divide typical code lengths reasonably; each
  /// substring must be <= 64 bits.
  explicit MultiIndexHashing(size_t num_substrings = 4)
      : m_(num_substrings) {}

  Status Add(ItemId id, const BinaryCode& code) override;
  std::vector<SearchResult> RadiusSearch(const BinaryCode& query,
                                         uint32_t radius,
                                         SearchStats* stats = nullptr) const override;
  std::vector<SearchResult> KnnSearch(const BinaryCode& query, size_t k,
                                      SearchStats* stats = nullptr) const override;
  std::vector<SearchResult> RadiusSearchIn(
      const BinaryCode& query, uint32_t radius, const CandidateSet& allowed,
      SearchStats* stats = nullptr) const override;
  std::vector<SearchResult> KnnSearchIn(
      const BinaryCode& query, size_t k, const CandidateSet& allowed,
      SearchStats* stats = nullptr) const override;
  /// Lazy ranked access: deepens the per-table substring probe rings one
  /// sub-distance at a time (each candidate verified against the full
  /// code once), releasing hits as soon as the pigeonhole bound proves
  /// them complete — after sub-ring s every code within full distance
  /// m·(s+1)-1 has been seen.  Falls back to one verified scan when the
  /// enumeration would out-probe the stored codes, like the eager path.
  std::unique_ptr<HitFrontier> OpenFrontier(
      const BinaryCode& query, const FrontierOptions& options) const override;
  size_t size() const override { return ids_.size(); }
  std::string Name() const override { return "MultiIndexHashing"; }

  size_t num_substrings() const { return m_; }

 private:
  /// Bit range of substring j (balanced split).
  void SubstringRange(size_t j, size_t* begin, size_t* len) const;

  /// Shared body of RadiusSearch / RadiusSearchIn (`allowed == nullptr`
  /// means unrestricted).
  std::vector<SearchResult> SearchSubstrings(const BinaryCode& query,
                                             uint32_t radius,
                                             const CandidateSet* allowed,
                                             SearchStats* stats) const;

  size_t m_;
  size_t code_bits_ = 0;
  std::vector<ItemId> ids_;
  std::vector<BinaryCode> codes_;
  /// One exact-match table per substring: low word of substring -> item
  /// positions in ids_/codes_.
  std::vector<std::unordered_map<uint64_t, std::vector<uint32_t>>> tables_;
};

}  // namespace agoraeo::index

#endif  // AGORAEO_INDEX_HAMMING_TABLE_H_
