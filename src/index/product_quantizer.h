#ifndef AGORAEO_INDEX_PRODUCT_QUANTIZER_H_
#define AGORAEO_INDEX_PRODUCT_QUANTIZER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "index/hamming_index.h"
#include "index/linear_scan.h"
#include "tensor/tensor.h"

namespace agoraeo::index {

/// Product quantization (Jégou, Douze & Schmid): the float-vector ANN
/// alternative to binary hashing that systems like FAISS build on.
/// The feature space is split into M contiguous subspaces; each is
/// vector-quantized with its own k-means codebook, so a d-dimensional
/// float vector compresses to M bytes (with K = 256 centroids per
/// codebook).  Search uses asymmetric distance computation (ADC): per
/// query, a [M x K] table of subspace distances is built once, and each
/// database code is scored with M table lookups.
///
/// In experiment E2' PQ is the non-binary compression baseline MiLaN
/// codes are compared against at an equal byte budget.
class ProductQuantizer {
 public:
  struct Config {
    size_t num_subspaces = 8;   ///< M; must divide the feature dim
    size_t num_centroids = 256; ///< K <= 256 (codes are one byte)
    size_t kmeans_iterations = 12;
    uint64_t seed = 42;
  };

  /// Learns the codebooks from `training` ([n, dim]) with per-subspace
  /// Lloyd k-means (k-means++-style seeding by distinct random samples).
  static StatusOr<ProductQuantizer> Train(const Tensor& training,
                                          const Config& config);

  /// Encodes one vector ([dim]) to M bytes.
  std::vector<uint8_t> Encode(const Tensor& feature) const;

  /// Decodes M bytes back to the reconstructed vector (the centroid
  /// concatenation) — used to measure quantization error.
  Tensor Decode(const std::vector<uint8_t>& code) const;

  /// Per-query ADC lookup table: squared L2 from the query's subvector
  /// to every centroid, laid out [M, K] row-major.
  std::vector<float> BuildAdcTable(const Tensor& query) const;

  /// Approximate squared L2 between the query (via its ADC table) and a
  /// database code.
  float AdcDistance(const std::vector<float>& table,
                    const std::vector<uint8_t>& code) const;

  size_t dim() const { return dim_; }
  size_t num_subspaces() const { return m_; }
  size_t num_centroids() const { return k_; }
  size_t sub_dim() const { return dim_ / m_; }

 private:
  ProductQuantizer() = default;

  size_t dim_ = 0;
  size_t m_ = 0;
  size_t k_ = 0;
  /// Codebooks, [M][K * sub_dim] row-major.
  std::vector<std::vector<float>> codebooks_;
};

/// A PQ-compressed ANN index with ADC k-NN search; the FAISS-style
/// float baseline of the retrieval-quality experiments.
class PqIndex {
 public:
  explicit PqIndex(ProductQuantizer quantizer)
      : pq_(std::move(quantizer)) {}

  /// Adds a vector ([dim]).
  Status Add(ItemId id, const Tensor& feature);

  /// The k nearest stored codes by ADC distance, ascending.
  std::vector<FloatSearchResult> KnnSearch(const Tensor& query,
                                           size_t k) const;

  size_t size() const { return ids_.size(); }
  const ProductQuantizer& quantizer() const { return pq_; }
  /// Bytes per stored vector.
  size_t code_bytes() const { return pq_.num_subspaces(); }

 private:
  ProductQuantizer pq_;
  std::vector<ItemId> ids_;
  std::vector<uint8_t> codes_;  ///< [n, M] row-major
};

/// Two-stage CBIR (the standard production refinement of pure Hamming
/// retrieval): a binary index produces a shortlist of `shortlist_size`
/// candidates by Hamming distance, which are re-ranked by exact float
/// L2 over the original features.  Recovers most of the float scan's
/// accuracy at a fraction of its cost; experiment E2' quantifies the
/// trade-off.
class TwoStageRetriever {
 public:
  /// `hamming` must outlive the retriever; features are copied in.
  TwoStageRetriever(const HammingIndex* hamming, size_t feature_dim)
      : hamming_(hamming), dim_(feature_dim) {}

  /// Registers the float feature ([dim]) for an id already added to the
  /// binary index.
  void AddFeature(ItemId id, const Tensor& feature);

  /// Stage 1: Hamming k-NN shortlist of size `shortlist`; stage 2: exact
  /// L2 re-ranking of the shortlist; returns the top `k` ascending by
  /// float distance.
  std::vector<FloatSearchResult> Search(const BinaryCode& query_code,
                                        const Tensor& query_feature, size_t k,
                                        size_t shortlist) const;

  size_t size() const { return features_.size(); }

 private:
  const HammingIndex* hamming_;
  size_t dim_;
  std::unordered_map<ItemId, std::vector<float>> features_;
};

}  // namespace agoraeo::index

#endif  // AGORAEO_INDEX_PRODUCT_QUANTIZER_H_
