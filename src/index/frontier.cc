#include "index/frontier.h"

#include <algorithm>

namespace agoraeo::index {

namespace {

/// Chunk size of child pulls: large enough to amortise virtual-call and
/// heap overhead, small enough that a page-sized consumer pull (~50)
/// never forces a child to over-produce by more than one chunk.
constexpr size_t kPullChunk = 64;

}  // namespace

size_t MaterializedFrontier::Next(size_t n, std::vector<SearchResult>* out) {
  const size_t take = std::min(n, hits_.size() - pos_);
  out->insert(out->end(), hits_.begin() + pos_, hits_.begin() + pos_ + take);
  pos_ += take;
  return take;
}

size_t DistanceBucketFrontier::Next(size_t n, std::vector<SearchResult>* out) {
  size_t produced = 0;
  while (produced < n && distance_ < buckets_.size()) {
    std::vector<SearchResult>& bucket = buckets_[distance_];
    if (pos_ == 0 && bucket.size() > 1) {
      // Buckets are filled in scan order, not id order; sort on first
      // touch (equal distances, so ResultLess is an id sort).
      std::sort(bucket.begin(), bucket.end(), ResultLess);
    }
    if (pos_ >= bucket.size()) {
      std::vector<SearchResult>().swap(bucket);  // drained: drop storage
      ++distance_;
      pos_ = 0;
      continue;
    }
    const size_t take = std::min(n - produced, bucket.size() - pos_);
    out->insert(out->end(), bucket.begin() + pos_, bucket.begin() + pos_ + take);
    pos_ += take;
    produced += take;
  }
  return produced;
}

void MergingFrontier::AddChild(std::unique_ptr<HitFrontier> child) {
  Child c;
  c.frontier = std::move(child);
  children_.push_back(std::move(c));
}

void MergingFrontier::AddPin(std::shared_ptr<const void> pin) {
  pins_.push_back(std::move(pin));
}

void MergingFrontier::Refill(Child* child) {
  if (!child->buffer.empty() || child->exhausted) return;
  std::vector<SearchResult> chunk;
  chunk.reserve(kPullChunk);
  const size_t got = child->frontier->Next(kPullChunk, &chunk);
  if (got == 0) {
    child->exhausted = true;
    return;
  }
  child->buffer.insert(child->buffer.end(), chunk.begin(), chunk.end());
}

size_t MergingFrontier::Next(size_t n, std::vector<SearchResult>* out) {
  // std::push_heap/pop_heap build a MAX-heap, so "greater" under
  // (distance, id) puts the smallest head at the front.
  auto head_greater = [this](size_t a, size_t b) {
    return ResultLess(children_[b].buffer.front(),
                      children_[a].buffer.front());
  };
  if (!started_) {
    started_ = true;
    heap_.reserve(children_.size());
    for (size_t c = 0; c < children_.size(); ++c) {
      Refill(&children_[c]);
      if (!children_[c].exhausted) heap_.push_back(c);
    }
    std::make_heap(heap_.begin(), heap_.end(), head_greater);
  }
  size_t produced = 0;
  while (produced < n && !heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), head_greater);
    const size_t c = heap_.back();
    Child& child = children_[c];
    out->push_back(child.buffer.front());
    child.buffer.pop_front();
    ++produced;
    Refill(&child);
    if (child.exhausted && child.buffer.empty()) {
      heap_.pop_back();
    } else {
      std::push_heap(heap_.begin(), heap_.end(), head_greater);
    }
  }
  return produced;
}

}  // namespace agoraeo::index
