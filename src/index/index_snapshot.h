#ifndef AGORAEO_INDEX_INDEX_SNAPSHOT_H_
#define AGORAEO_INDEX_INDEX_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "index/hamming_index.h"

namespace agoraeo::index {

/// One shard's durable state: the (id, name, code) triples of every item
/// routed to the shard, plus the global ingest watermark the file covers.
///
/// Codes are stored as one flat array of packed 64-bit words
/// ([items × words_per_code], row-major) rather than per-item vectors —
/// the restore path hands contiguous word rows straight to
/// BinaryCode::FromWords and bulk-loads the shard with one BatchAdd, so
/// a restart replays no model inference at all.
struct IndexSnapshot {
  uint32_t shard_index = 0;  ///< which shard this file holds
  uint32_t num_shards = 1;   ///< sharding the ids were routed under
  /// Global num_indexed at snapshot time: every item with id < watermark
  /// that routes to this shard is in the file, so WAL catch-up skips
  /// records below it.
  uint64_t watermark = 0;
  uint32_t code_bits = 0;       ///< bits per code (0 when empty)
  uint32_t words_per_code = 0;  ///< packed words per code
  std::vector<ItemId> ids;
  std::vector<std::string> names;  ///< names[i] belongs to ids[i]
  std::vector<uint64_t> code_words;  ///< flat [ids.size() × words_per_code]
};

/// `<dir>/shard-<shard>.snap` — where one shard's snapshot lives.
std::string ShardSnapshotPath(const std::string& dir, size_t shard);

/// Serialises a snapshot into the framed byte format the .snap files
/// use (magic, version, payload length, payload CRC, payload).  The
/// cluster tier ships slot migrations in this exact framing, so a
/// migration payload and a snapshot file are byte-interchangeable.
StatusOr<std::vector<uint8_t>> SerializeIndexSnapshot(
    const IndexSnapshot& snap);

/// Parses and validates framed snapshot bytes — the inverse of
/// SerializeIndexSnapshot, and the body of ReadIndexSnapshot.  Returns
/// Corruption for anything structurally wrong.
StatusOr<IndexSnapshot> ParseIndexSnapshot(const uint8_t* data, size_t size);

/// Serialises and writes `snap` with a whole-payload CRC, via a
/// temporary file + rename so a crash mid-write can never leave a
/// half-written file under the final name (the reader sees either the
/// old complete snapshot or the new one).
Status WriteIndexSnapshot(const std::string& path, const IndexSnapshot& snap);

/// Reads and validates a snapshot.  Returns NotFound when no file
/// exists, and Corruption for anything structurally wrong — bad magic,
/// unknown version, CRC mismatch, truncation, inconsistent array
/// lengths.  Callers treat Corruption as "discard the snapshot and fall
/// back to the WAL"; it is never fatal.
StatusOr<IndexSnapshot> ReadIndexSnapshot(const std::string& path);

}  // namespace agoraeo::index

#endif  // AGORAEO_INDEX_INDEX_SNAPSHOT_H_
