#include "index/sharded_index.h"

#include <algorithm>
#include <chrono>

#include "common/thread_pool.h"
#include "index/frontier.h"

namespace agoraeo::index {

namespace {

/// splitmix64 finaliser: sequential ItemIds (the CbirService assigns
/// 0..n-1) spread uniformly over the shards instead of striping.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void AccumulateStats(const SearchStats& shard, SearchStats* total) {
  total->buckets_probed += shard.buckets_probed;
  total->candidates += shard.candidates;
}

}  // namespace

ShardedHammingIndex::ShardedHammingIndex(size_t num_shards,
                                         const ShardFactory& factory,
                                         size_t seal_threshold,
                                         size_t compact_threshold)
    : seal_threshold_(seal_threshold) {
  num_shards = std::max<size_t>(1, num_shards);
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<SegmentedHammingIndex>(
        factory, seal_threshold, compact_threshold));
  }
}

size_t ShardedHammingIndex::ShardOf(ItemId id, size_t num_shards) {
  return num_shards <= 1 ? 0 : static_cast<size_t>(Mix64(id) % num_shards);
}

Status ShardedHammingIndex::CheckCodeLength(const BinaryCode& code) {
  // Empty codes fall through: every wrapped kind rejects them with its
  // own message, and anchoring on 0 would wedge the index.
  if (code.size() == 0) return Status::OK();
  size_t expected = code_bits_.load();
  if (expected == 0) {
    code_bits_.compare_exchange_strong(expected, code.size());
    expected = code_bits_.load();
  }
  if (code.size() != expected) {
    return Status::InvalidArgument(
        "code length mismatch: index holds " + std::to_string(expected) +
        "-bit codes, got " + std::to_string(code.size()));
  }
  return Status::OK();
}

Status ShardedHammingIndex::Add(ItemId id, const BinaryCode& code) {
  AGORAEO_RETURN_IF_ERROR(CheckCodeLength(code));
  return shards_[ShardOf(id, shards_.size())]->Add(id, code);
}

Status ShardedHammingIndex::BatchAdd(const std::vector<ItemId>& ids,
                                     const std::vector<BinaryCode>& codes,
                                     ThreadPool* pool) {
  if (ids.size() != codes.size()) {
    return Status::InvalidArgument("BatchAdd ids/codes length mismatch");
  }
  // Validate every code up front so a mismatch cannot strand a
  // partially ingested batch across shards.
  for (const BinaryCode& code : codes) {
    AGORAEO_RETURN_IF_ERROR(CheckCodeLength(code));
  }
  // Partition the batch by routing, then ingest every shard's slice in
  // parallel — each slice touches one shard only, so one task per shard
  // is race-free by construction (the shard's own segment locking
  // covers concurrent readers).
  std::vector<std::vector<ItemId>> ids_by_shard(shards_.size());
  std::vector<std::vector<BinaryCode>> codes_by_shard(shards_.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    const size_t s = ShardOf(ids[i], shards_.size());
    ids_by_shard[s].push_back(ids[i]);
    codes_by_shard[s].push_back(codes[i]);
  }
  std::vector<Status> statuses(shards_.size(), Status::OK());
  ForEachShard(pool, [&](size_t s) {
    statuses[s] = shards_[s]->BatchAdd(ids_by_shard[s], codes_by_shard[s]);
  });
  for (const Status& status : statuses) {
    if (!status.ok()) return status;
  }
  return Status::OK();
}

std::vector<CandidateSet> ShardedHammingIndex::SplitAllowlist(
    const CandidateSet& allowed) const {
  // allowed.ids() is sorted and deduplicated; routing preserves both
  // within a shard, so the per-shard CandidateSet constructor's
  // sort+unique is a no-op pass over already-clean input.
  std::vector<std::vector<ItemId>> ids_by_shard(shards_.size());
  for (ItemId id : allowed.ids()) {
    ids_by_shard[ShardOf(id, shards_.size())].push_back(id);
  }
  std::vector<CandidateSet> out;
  out.reserve(shards_.size());
  for (auto& ids : ids_by_shard) out.emplace_back(std::move(ids));
  return out;
}

void ShardedHammingIndex::ForEachShard(
    ThreadPool* pool, const std::function<void(size_t)>& task) const {
  if (pool != nullptr && pool->num_threads() > 1 && shards_.size() > 1) {
    pool->ParallelFor(shards_.size(), task);
  } else {
    for (size_t s = 0; s < shards_.size(); ++s) task(s);
  }
}

std::vector<SearchResult> ShardedHammingIndex::RadiusSearch(
    const BinaryCode& query, uint32_t radius, SearchStats* stats) const {
  single_fanouts_.fetch_add(1);
  if (stats != nullptr) *stats = SearchStats{};
  std::vector<std::vector<SearchResult>> per_shard(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    SearchStats shard_stats;
    obs::ScopedTimer scan_timer(scan_histogram_);
    per_shard[s] = shards_[s]->RadiusSearch(
        query, radius, stats != nullptr ? &shard_stats : nullptr);
    if (stats != nullptr) AccumulateStats(shard_stats, stats);
  }
  const uint64_t merge_begin = NowNanos();
  std::vector<SearchResult> out = MergeHitLists(&per_shard, 0);
  merge_nanos_.fetch_add(NowNanos() - merge_begin);
  if (stats != nullptr) stats->results = out.size();
  return out;
}

std::vector<SearchResult> ShardedHammingIndex::KnnSearch(
    const BinaryCode& query, size_t k, SearchStats* stats) const {
  single_fanouts_.fetch_add(1);
  if (stats != nullptr) *stats = SearchStats{};
  std::vector<std::vector<SearchResult>> per_shard(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    SearchStats shard_stats;
    obs::ScopedTimer scan_timer(scan_histogram_);
    per_shard[s] = shards_[s]->KnnSearch(
        query, k, stats != nullptr ? &shard_stats : nullptr);
    if (stats != nullptr) AccumulateStats(shard_stats, stats);
  }
  const uint64_t merge_begin = NowNanos();
  std::vector<SearchResult> out = MergeHitLists(&per_shard, k);
  merge_nanos_.fetch_add(NowNanos() - merge_begin);
  if (stats != nullptr) stats->results = out.size();
  return out;
}

std::vector<SearchResult> ShardedHammingIndex::RadiusSearchIn(
    const BinaryCode& query, uint32_t radius, const CandidateSet& allowed,
    SearchStats* stats) const {
  single_fanouts_.fetch_add(1);
  if (stats != nullptr) *stats = SearchStats{};
  const std::vector<CandidateSet> split = SplitAllowlist(allowed);
  std::vector<std::vector<SearchResult>> per_shard(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (split[s].empty()) continue;  // no allowed id routes here
    SearchStats shard_stats;
    obs::ScopedTimer scan_timer(scan_histogram_);
    per_shard[s] = shards_[s]->RadiusSearchIn(
        query, radius, split[s], stats != nullptr ? &shard_stats : nullptr);
    if (stats != nullptr) AccumulateStats(shard_stats, stats);
  }
  const uint64_t merge_begin = NowNanos();
  std::vector<SearchResult> out = MergeHitLists(&per_shard, 0);
  merge_nanos_.fetch_add(NowNanos() - merge_begin);
  if (stats != nullptr) stats->results = out.size();
  return out;
}

std::vector<SearchResult> ShardedHammingIndex::KnnSearchIn(
    const BinaryCode& query, size_t k, const CandidateSet& allowed,
    SearchStats* stats) const {
  single_fanouts_.fetch_add(1);
  if (stats != nullptr) *stats = SearchStats{};
  const std::vector<CandidateSet> split = SplitAllowlist(allowed);
  std::vector<std::vector<SearchResult>> per_shard(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (split[s].empty()) continue;
    SearchStats shard_stats;
    obs::ScopedTimer scan_timer(scan_histogram_);
    per_shard[s] = shards_[s]->KnnSearchIn(
        query, k, split[s], stats != nullptr ? &shard_stats : nullptr);
    if (stats != nullptr) AccumulateStats(shard_stats, stats);
  }
  const uint64_t merge_begin = NowNanos();
  std::vector<SearchResult> out = MergeHitLists(&per_shard, k);
  merge_nanos_.fetch_add(NowNanos() - merge_begin);
  if (stats != nullptr) stats->results = out.size();
  return out;
}

std::vector<std::vector<SearchResult>> ShardedHammingIndex::ScatterGatherBatch(
    size_t num_queries, size_t k, ThreadPool* pool,
    std::vector<SearchStats>* stats,
    const std::function<std::vector<std::vector<SearchResult>>(
        size_t, std::vector<SearchStats>*)>& run_shard) const {
  batch_fanouts_.fetch_add(1);
  fanout_tasks_.fetch_add(shards_.size());
  if (stats != nullptr) stats->assign(num_queries, SearchStats{});

  // Scatter: one task per shard per batch.  Each task runs the whole
  // query batch against its shard sequentially (null inner pool), so
  // parallelism is purely across shards — no nested sharding.
  std::vector<std::vector<std::vector<SearchResult>>> per_shard(
      shards_.size());
  std::vector<std::vector<SearchStats>> per_shard_stats(
      stats != nullptr ? shards_.size() : 0);
  ForEachShard(pool, [&](size_t s) {
    obs::ScopedTimer scan_timer(scan_histogram_);
    per_shard[s] =
        run_shard(s, stats != nullptr ? &per_shard_stats[s] : nullptr);
  });

  // Gather: merge every query slot across shards.
  const uint64_t merge_begin = NowNanos();
  std::vector<std::vector<SearchResult>> out(num_queries);
  std::vector<std::vector<SearchResult>> slot(shards_.size());
  for (size_t i = 0; i < num_queries; ++i) {
    for (size_t s = 0; s < shards_.size(); ++s) {
      slot[s] = per_shard[s].empty() ? std::vector<SearchResult>{}
                                     : std::move(per_shard[s][i]);
      if (stats != nullptr && !per_shard_stats[s].empty()) {
        AccumulateStats(per_shard_stats[s][i], &(*stats)[i]);
      }
    }
    out[i] = MergeHitLists(&slot, k);
    if (stats != nullptr) (*stats)[i].results = out[i].size();
  }
  merge_nanos_.fetch_add(NowNanos() - merge_begin);
  return out;
}

std::vector<std::vector<SearchResult>> ShardedHammingIndex::BatchRadiusSearch(
    const std::vector<BinaryCode>& queries, uint32_t radius, ThreadPool* pool,
    std::vector<SearchStats>* stats) const {
  return ScatterGatherBatch(
      queries.size(), 0, pool, stats,
      [&](size_t s, std::vector<SearchStats>* shard_stats) {
        return shards_[s]->BatchRadiusSearch(queries, radius, nullptr,
                                             shard_stats);
      });
}

std::vector<std::vector<SearchResult>> ShardedHammingIndex::BatchKnnSearch(
    const std::vector<BinaryCode>& queries, size_t k, ThreadPool* pool,
    std::vector<SearchStats>* stats) const {
  return ScatterGatherBatch(
      queries.size(), k, pool, stats,
      [&](size_t s, std::vector<SearchStats>* shard_stats) {
        return shards_[s]->BatchKnnSearch(queries, k, nullptr, shard_stats);
      });
}

std::vector<std::vector<SearchResult>> ShardedHammingIndex::BatchRadiusSearchIn(
    const std::vector<BinaryCode>& queries, uint32_t radius,
    const CandidateSet& allowed, ThreadPool* pool,
    std::vector<SearchStats>* stats) const {
  // The allowlist splits ONCE per batched pass (not per query) — the
  // micro-batched hybrid path shares one allowlist across the batch.
  const auto split =
      std::make_shared<const std::vector<CandidateSet>>(
          SplitAllowlist(allowed));
  return ScatterGatherBatch(
      queries.size(), 0, pool, stats,
      [&queries, radius, split, this](size_t s,
                                      std::vector<SearchStats>* shard_stats) {
        if ((*split)[s].empty()) {
          if (shard_stats != nullptr) {
            shard_stats->assign(queries.size(), SearchStats{});
          }
          return std::vector<std::vector<SearchResult>>(queries.size());
        }
        return shards_[s]->BatchRadiusSearchIn(queries, radius, (*split)[s],
                                               nullptr, shard_stats);
      });
}

std::vector<std::vector<SearchResult>> ShardedHammingIndex::BatchKnnSearchIn(
    const std::vector<BinaryCode>& queries, size_t k,
    const CandidateSet& allowed, ThreadPool* pool,
    std::vector<SearchStats>* stats) const {
  const auto split =
      std::make_shared<const std::vector<CandidateSet>>(
          SplitAllowlist(allowed));
  return ScatterGatherBatch(
      queries.size(), k, pool, stats,
      [&queries, k, split, this](size_t s,
                                 std::vector<SearchStats>* shard_stats) {
        if ((*split)[s].empty()) {
          if (shard_stats != nullptr) {
            shard_stats->assign(queries.size(), SearchStats{});
          }
          return std::vector<std::vector<SearchResult>>(queries.size());
        }
        return shards_[s]->BatchKnnSearchIn(queries, k, (*split)[s], nullptr,
                                            shard_stats);
      });
}

std::unique_ptr<HitFrontier> ShardedHammingIndex::OpenFrontier(
    const BinaryCode& query, const FrontierOptions& options) const {
  single_fanouts_.fetch_add(1);
  auto merge = std::make_unique<MergingFrontier>();
  if (options.allowed != nullptr) {
    // Split once by routing (like the batched *In paths) and pin the
    // split inside the frontier — the per-shard children borrow it.
    auto split = std::make_shared<const std::vector<CandidateSet>>(
        SplitAllowlist(*options.allowed));
    merge->AddPin(split);
    for (size_t s = 0; s < shards_.size(); ++s) {
      if ((*split)[s].empty()) continue;  // no allowed id routes here
      FrontierOptions shard_options = options;
      shard_options.allowed = &(*split)[s];
      merge->AddChild(shards_[s]->OpenFrontier(query, shard_options));
    }
  } else {
    for (const auto& shard : shards_) {
      merge->AddChild(shard->OpenFrontier(query, options));
    }
  }
  return merge;
}

size_t ShardedHammingIndex::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->size();
  return total;
}

std::string ShardedHammingIndex::Name() const {
  return "sharded(" + shards_.front()->Name() + ", " +
         std::to_string(shards_.size()) + ")";
}

Status ShardedHammingIndex::SealAll() {
  for (const auto& shard : shards_) {
    AGORAEO_RETURN_IF_ERROR(shard->Seal());
  }
  return Status::OK();
}

ShardedIndexStats ShardedHammingIndex::Stats() const {
  ShardedIndexStats stats;
  stats.num_shards = shards_.size();
  stats.shard_sizes.reserve(shards_.size());
  stats.shard_segments.reserve(shards_.size());
  for (const auto& shard : shards_) {
    const SegmentedIndexStats seg = shard->Stats();
    stats.shard_sizes.push_back(seg.sealed_items + seg.mutable_items);
    stats.shard_segments.push_back(seg.num_sealed);
    stats.seals += seg.seals;
    stats.sealed_items += seg.sealed_items;
    stats.mutable_items += seg.mutable_items;
    stats.compactions += seg.compactions;
  }
  stats.single_fanouts = single_fanouts_.load();
  stats.batch_fanouts = batch_fanouts_.load();
  stats.fanout_tasks = fanout_tasks_.load();
  stats.merge_nanos = merge_nanos_.load();
  return stats;
}

}  // namespace agoraeo::index
