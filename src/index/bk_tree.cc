#include "index/bk_tree.h"

#include <algorithm>
#include <queue>

#include "index/batch_util.h"
#include "index/frontier.h"

namespace agoraeo::index {

/// Resumable best-first traversal: the paused state of BestFirstKnn.
/// Nodes wait in a min-heap keyed by their subtree's distance lower
/// bound |d - e| (every item under a child at edge e sits at exact
/// distance e from its parent, so the triangle inequality bounds the
/// whole subtree); verified items wait in a (distance, id) min-heap and
/// are released only while strictly closer than the best unexpanded
/// bound — an unexpanded subtree with bound b may still hold (b, any
/// id), so ties force expansion first.
class BkTree::FrontierImpl : public HitFrontier {
 public:
  FrontierImpl(const Node* root, const BinaryCode& query,
               std::optional<uint32_t> radius, const CandidateSet* allowed)
      : query_(query), radius_(radius), allowed_(allowed) {
    if (root != nullptr) queue_.push({0, root});
  }

  size_t Next(size_t n, std::vector<SearchResult>* out) override {
    size_t produced = 0;
    while (produced < n) {
      // Expand until the pending head is provably next: every
      // unexpanded subtree's bound strictly exceeds it.
      while (!queue_.empty() &&
             (pending_.empty() ||
              queue_.top().bound <= pending_.top().distance)) {
        Expand();
      }
      if (pending_.empty()) break;  // nothing left anywhere: exhausted
      out->push_back(pending_.top());
      pending_.pop();
      ++produced;
    }
    return produced;
  }

 private:
  struct Entry {
    uint32_t bound;  ///< lower bound on distances within the subtree
    const Node* node;
    bool operator>(const Entry& o) const { return bound > o.bound; }
  };

  void Expand() {
    const Entry top = queue_.top();
    queue_.pop();
    if (radius_.has_value() && top.bound > *radius_) {
      // Min-heap: every remaining subtree is at least as far out.
      queue_ = {};
      return;
    }
    const uint32_t d =
        static_cast<uint32_t>(top.node->code.HammingDistance(query_));
    if (!radius_.has_value() || d <= *radius_) {
      for (ItemId id : top.node->ids) {
        if (allowed_ != nullptr && !allowed_->Contains(id)) continue;
        pending_.push({id, d});
      }
    }
    for (const auto& [edge, child] : top.node->children) {
      const uint32_t bound = d > edge ? d - edge : edge - d;
      if (radius_.has_value() && bound > *radius_) continue;
      queue_.push({bound, child.get()});
    }
  }

  const BinaryCode query_;
  const std::optional<uint32_t> radius_;
  const CandidateSet* allowed_;

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  struct ResultGreater {
    bool operator()(const SearchResult& a, const SearchResult& b) const {
      return ResultLess(b, a);
    }
  };
  std::priority_queue<SearchResult, std::vector<SearchResult>, ResultGreater>
      pending_;
};

std::unique_ptr<HitFrontier> BkTree::OpenFrontier(
    const BinaryCode& query, const FrontierOptions& options) const {
  return std::make_unique<FrontierImpl>(root_.get(), query, options.radius,
                                        options.allowed);
}

Status BkTree::Add(ItemId id, const BinaryCode& code) {
  if (code.empty()) return Status::InvalidArgument("empty code");
  if (code_bits_ == 0) code_bits_ = code.size();
  if (code.size() != code_bits_) {
    return Status::InvalidArgument("code length mismatch");
  }
  if (root_ == nullptr) {
    root_ = std::make_unique<Node>();
    root_->code = code;
    root_->ids.push_back(id);
    ++num_items_;
    return Status::OK();
  }
  Node* node = root_.get();
  while (true) {
    const uint32_t d =
        static_cast<uint32_t>(node->code.HammingDistance(code));
    if (d == 0) {
      node->ids.push_back(id);
      ++num_items_;
      return Status::OK();
    }
    auto it = node->children.find(d);
    if (it == node->children.end()) {
      auto child = std::make_unique<Node>();
      child->code = code;
      child->ids.push_back(id);
      node->children.emplace(d, std::move(child));
      ++num_items_;
      return Status::OK();
    }
    node = it->second.get();
  }
}

void BkTree::RadiusSearchInto(const BinaryCode& query, uint32_t radius,
                              const CandidateSet* allowed,
                              std::vector<const Node*>* stack,
                              std::vector<SearchResult>* out,
                              SearchStats* stats) const {
  SearchStats local;
  if (root_ != nullptr) {
    // Iterative DFS; triangle-inequality pruning on edge keys.
    stack->clear();
    stack->push_back(root_.get());
    while (!stack->empty()) {
      const Node* node = stack->back();
      stack->pop_back();
      ++local.buckets_probed;  // nodes visited
      const uint32_t d =
          static_cast<uint32_t>(node->code.HammingDistance(query));
      local.candidates += node->ids.size();
      if (d <= radius) {
        for (ItemId id : node->ids) {
          if (allowed != nullptr && !allowed->Contains(id)) continue;
          out->push_back({id, d});
        }
      }
      // Children with edge key in [d - radius, d + radius] can contain
      // matches; std::map's ordering gives the window as a range scan.
      const uint32_t lo = d > radius ? d - radius : 0;
      const uint32_t hi = d + radius;
      for (auto it = node->children.lower_bound(lo);
           it != node->children.end() && it->first <= hi; ++it) {
        stack->push_back(it->second.get());
      }
    }
  }
  std::sort(out->begin(), out->end(), ResultLess);
  local.results = out->size();
  if (stats != nullptr) *stats = local;
}

std::vector<SearchResult> BkTree::RadiusSearch(const BinaryCode& query,
                                               uint32_t radius,
                                               SearchStats* stats) const {
  std::vector<SearchResult> out;
  std::vector<const Node*> stack;
  RadiusSearchInto(query, radius, /*allowed=*/nullptr, &stack, &out, stats);
  return out;
}

std::vector<SearchResult> BkTree::RadiusSearchIn(const BinaryCode& query,
                                                 uint32_t radius,
                                                 const CandidateSet& allowed,
                                                 SearchStats* stats) const {
  std::vector<SearchResult> out;
  std::vector<const Node*> stack;
  RadiusSearchInto(query, radius, &allowed, &stack, &out, stats);
  return out;
}

std::vector<SearchResult> BkTree::KnnSearchIn(const BinaryCode& query,
                                              size_t k,
                                              const CandidateSet& allowed,
                                              SearchStats* stats) const {
  return BestFirstKnn(query, k, &allowed, stats);
}

std::vector<std::vector<SearchResult>> BkTree::BatchRadiusSearch(
    const std::vector<BinaryCode>& queries, uint32_t radius, ThreadPool* pool,
    std::vector<SearchStats>* stats) const {
  std::vector<std::vector<SearchResult>> out(queries.size());
  if (stats != nullptr) stats->assign(queries.size(), SearchStats{});
  RunSharded(queries.size(), pool, [&](size_t begin, size_t end) {
    std::vector<const Node*> stack;  // reused across the shard's queries
    for (size_t q = begin; q < end; ++q) {
      RadiusSearchInto(queries[q], radius, /*allowed=*/nullptr, &stack,
                       &out[q], stats != nullptr ? &(*stats)[q] : nullptr);
    }
  });
  return out;
}

std::vector<SearchResult> BkTree::KnnSearch(const BinaryCode& query, size_t k,
                                            SearchStats* stats) const {
  return BestFirstKnn(query, k, /*allowed=*/nullptr, stats);
}

std::vector<SearchResult> BkTree::BestFirstKnn(const BinaryCode& query,
                                               size_t k,
                                               const CandidateSet* allowed,
                                               SearchStats* stats) const {
  // Best-first search: expand nodes in order of an optimistic bound on
  // the distance their subtree can contain.  When the bound of the next
  // frontier entry exceeds the current k-th best distance, the answer is
  // complete.
  std::vector<SearchResult> best;
  SearchStats local;
  if (root_ == nullptr || k == 0) {
    if (stats != nullptr) *stats = local;
    return best;
  }

  struct Frontier {
    uint32_t bound;  // lower bound on distances within the subtree
    const Node* node;
    bool operator>(const Frontier& o) const { return bound > o.bound; }
  };
  std::priority_queue<Frontier, std::vector<Frontier>, std::greater<>> queue;
  queue.push({0, root_.get()});

  auto worst = [&]() -> uint32_t {
    return best.size() < k ? UINT32_MAX : best.back().distance;
  };

  while (!queue.empty()) {
    const Frontier top = queue.top();
    queue.pop();
    if (top.bound > worst()) break;  // no subtree can improve the result
    const Node* node = top.node;
    ++local.buckets_probed;
    const uint32_t d =
        static_cast<uint32_t>(node->code.HammingDistance(query));
    local.candidates += node->ids.size();
    for (ItemId id : node->ids) {
      if (allowed != nullptr && !allowed->Contains(id)) continue;
      const SearchResult candidate{id, d};
      if (best.size() < k || ResultLess(candidate, best.back())) {
        best.insert(
            std::lower_bound(best.begin(), best.end(), candidate, ResultLess),
            candidate);
        if (best.size() > k) best.pop_back();
      }
    }
    for (const auto& [edge, child] : node->children) {
      // Subtree at edge key e holds codes at distance within
      // |d - e| of the query (triangle inequality, both directions).
      const uint32_t bound = d > edge ? d - edge : edge - d;
      if (bound <= worst()) queue.push({bound, child.get()});
    }
  }
  local.results = best.size();
  if (stats != nullptr) *stats = local;
  return best;
}

size_t BkTree::Depth() const {
  if (root_ == nullptr) return 0;
  size_t max_depth = 0;
  std::vector<std::pair<const Node*, size_t>> stack = {{root_.get(), 1}};
  while (!stack.empty()) {
    auto [node, depth] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, depth);
    for (const auto& [edge, child] : node->children) {
      stack.push_back({child.get(), depth + 1});
    }
  }
  return max_depth;
}

}  // namespace agoraeo::index
