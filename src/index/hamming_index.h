#ifndef AGORAEO_INDEX_HAMMING_INDEX_H_
#define AGORAEO_INDEX_HAMMING_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/binary_code.h"
#include "common/status.h"

namespace agoraeo::index {

/// Identifier of an indexed item (EarthQube uses the metadata DocId of
/// the image patch).
using ItemId = uint64_t;

/// One search hit: an item and its Hamming distance to the query.
struct SearchResult {
  ItemId id;
  uint32_t distance;

  bool operator==(const SearchResult& o) const {
    return id == o.id && distance == o.distance;
  }
};

/// Orders results by (distance, id) — the canonical result order all
/// index implementations return, so they are comparable in tests.
bool ResultLess(const SearchResult& a, const SearchResult& b);

/// Counters describing the work one query performed; used by the
/// benchmark harness to report candidate counts (experiment E3).
struct SearchStats {
  size_t buckets_probed = 0;    ///< hash buckets / cells examined
  size_t candidates = 0;        ///< items whose distance was evaluated
  size_t results = 0;           ///< items within the radius
};

/// Interface of a binary-code nearest-neighbour index.  All codes added
/// to one index must have the same length.
class HammingIndex {
 public:
  virtual ~HammingIndex() = default;

  /// Adds an item; InvalidArgument when the code length differs from
  /// previously added codes.
  virtual Status Add(ItemId id, const BinaryCode& code) = 0;

  /// All items within Hamming distance <= radius, ordered by
  /// (distance, id).
  virtual std::vector<SearchResult> RadiusSearch(
      const BinaryCode& query, uint32_t radius,
      SearchStats* stats = nullptr) const = 0;

  /// The k nearest items by Hamming distance (ties by id), ordered by
  /// (distance, id).  May return fewer than k when the index is small.
  virtual std::vector<SearchResult> KnnSearch(
      const BinaryCode& query, size_t k,
      SearchStats* stats = nullptr) const = 0;

  virtual size_t size() const = 0;
  virtual std::string Name() const = 0;
};

}  // namespace agoraeo::index

#endif  // AGORAEO_INDEX_HAMMING_INDEX_H_
