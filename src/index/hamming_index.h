#ifndef AGORAEO_INDEX_HAMMING_INDEX_H_
#define AGORAEO_INDEX_HAMMING_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/binary_code.h"
#include "common/status.h"

namespace agoraeo {
class ThreadPool;
}

namespace agoraeo::index {

struct FrontierOptions;  // index/frontier.h
class HitFrontier;       // index/frontier.h

/// Identifier of an indexed item (EarthQube uses the metadata DocId of
/// the image patch).
using ItemId = uint64_t;

/// One search hit: an item and its Hamming distance to the query.
struct SearchResult {
  ItemId id;
  uint32_t distance;

  bool operator==(const SearchResult& o) const {
    return id == o.id && distance == o.distance;
  }
};

/// Orders results by (distance, id) — the canonical result order all
/// index implementations return, so they are comparable in tests.
bool ResultLess(const SearchResult& a, const SearchResult& b);

/// Merges per-partition (distance, id)-sorted hit lists into one list in
/// the same canonical order — the shared gather step of every partition
/// layer in the index stack: the sharded index gathers across shards,
/// the segmented index across a shard's sealed + mutable segments.
/// Partitions hold disjoint ids, so a pairwise merge reproduces exactly
/// what one flat index over the union would return.  `k` of 0 keeps
/// everything; otherwise the merged list is truncated to the k best (the
/// k-NN overfetch merge: every partition returned its own top-k, and the
/// global top-k is the head of the merged order).  Consumes `lists`.
std::vector<SearchResult> MergeHitLists(
    std::vector<std::vector<SearchResult>>* lists, size_t k);

/// An allowlist of item ids for candidate-restricted searches (the
/// pre-filter side of hybrid metadata ∧ similarity queries): the ids a
/// search may return, held sorted for O(log n) membership tests.
class CandidateSet {
 public:
  CandidateSet() = default;
  /// Takes any id list; sorts and deduplicates it.
  explicit CandidateSet(std::vector<ItemId> ids);

  bool Contains(ItemId id) const;
  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }
  /// Sorted, deduplicated ids.
  const std::vector<ItemId>& ids() const { return ids_; }

 private:
  std::vector<ItemId> ids_;
};

/// Counters describing the work one query performed; used by the
/// benchmark harness to report candidate counts (experiment E3).
struct SearchStats {
  size_t buckets_probed = 0;    ///< hash buckets / cells examined
  size_t candidates = 0;        ///< items whose distance was evaluated
  size_t results = 0;           ///< items within the radius
};

/// Interface of a binary-code nearest-neighbour index.  All codes added
/// to one index must have the same length.
class HammingIndex {
 public:
  virtual ~HammingIndex() = default;

  /// Adds an item; InvalidArgument when the code length differs from
  /// previously added codes.
  virtual Status Add(ItemId id, const BinaryCode& code) = 0;

  /// Adds a whole id/code batch (`ids[i]` ↔ `codes[i]`; the vectors must
  /// match in length).  The default is a sequential Add loop and ignores
  /// `pool`; the sharded index overrides it to ingest every partition's
  /// slice in parallel.  On error the batch may be partially applied
  /// (the same contract a caller's own Add loop would have).
  virtual Status BatchAdd(const std::vector<ItemId>& ids,
                          const std::vector<BinaryCode>& codes,
                          ThreadPool* pool = nullptr);

  /// All items within Hamming distance <= radius, ordered by
  /// (distance, id).
  virtual std::vector<SearchResult> RadiusSearch(
      const BinaryCode& query, uint32_t radius,
      SearchStats* stats = nullptr) const = 0;

  /// The k nearest items by Hamming distance (ties by id), ordered by
  /// (distance, id).  May return fewer than k when the index is small.
  virtual std::vector<SearchResult> KnnSearch(
      const BinaryCode& query, size_t k,
      SearchStats* stats = nullptr) const = 0;

  // --- candidate-restricted search ----------------------------------------
  //
  // The pre-filter leg of hybrid (metadata ∧ similarity) queries: the
  // docstore filter produces an id allowlist, and the index searches
  // only within it.  Both calls return exactly what filtering the
  // unrestricted result down to `allowed` would — RadiusSearchIn(q, r,
  // allowed) == {h ∈ RadiusSearch(q, r) : allowed.Contains(h.id)}, and
  // KnnSearchIn returns the k nearest *allowed* items — in the same
  // canonical (distance, id) order.

  /// All allowed items within the radius.  The default filters a full
  /// RadiusSearch; implementations override it to restrict the scan
  /// itself (e.g. the linear scan walks only the allowlist).
  virtual std::vector<SearchResult> RadiusSearchIn(
      const BinaryCode& query, uint32_t radius, const CandidateSet& allowed,
      SearchStats* stats = nullptr) const;

  /// The k nearest allowed items.  The default ranks every allowed item
  /// (exact but O(n log n)); implementations override it with bounded
  /// traversals.
  virtual std::vector<SearchResult> KnnSearchIn(
      const BinaryCode& query, size_t k, const CandidateSet& allowed,
      SearchStats* stats = nullptr) const;

  /// Batch flavour of RadiusSearch: slot i of the returned vector holds
  /// exactly what RadiusSearch(queries[i], radius) would return, in the
  /// same canonical (distance, id) order.  When `pool` is non-null the
  /// batch is sharded across its workers (implementations are read-only
  /// and therefore safe to query concurrently); a null pool runs
  /// sequentially.  When `stats` is non-null it is resized to the batch
  /// size and per-query counters are written to the matching slot.
  ///
  /// The default implementation shards single queries; backends override
  /// it when they can do better (e.g. the linear scan blocks over the
  /// code array so one block of codes serves many queries from cache).
  virtual std::vector<std::vector<SearchResult>> BatchRadiusSearch(
      const std::vector<BinaryCode>& queries, uint32_t radius,
      ThreadPool* pool = nullptr,
      std::vector<SearchStats>* stats = nullptr) const;

  /// Batch flavour of KnnSearch with the same guarantees as
  /// BatchRadiusSearch: slot i equals KnnSearch(queries[i], k).
  virtual std::vector<std::vector<SearchResult>> BatchKnnSearch(
      const std::vector<BinaryCode>& queries, size_t k,
      ThreadPool* pool = nullptr,
      std::vector<SearchStats>* stats = nullptr) const;

  // --- batched candidate-restricted search --------------------------------
  //
  // The shared pass of micro-batched pre-filter hybrid queries: many
  // query codes against one allowlist.  Slot i equals the corresponding
  // single restricted call; sharding semantics match BatchRadiusSearch.

  /// Slot i equals RadiusSearchIn(queries[i], radius, allowed).
  virtual std::vector<std::vector<SearchResult>> BatchRadiusSearchIn(
      const std::vector<BinaryCode>& queries, uint32_t radius,
      const CandidateSet& allowed, ThreadPool* pool = nullptr,
      std::vector<SearchStats>* stats = nullptr) const;

  /// Slot i equals KnnSearchIn(queries[i], k, allowed).
  virtual std::vector<std::vector<SearchResult>> BatchKnnSearchIn(
      const std::vector<BinaryCode>& queries, size_t k,
      const CandidateSet& allowed, ThreadPool* pool = nullptr,
      std::vector<SearchStats>* stats = nullptr) const;

  // --- ranked direct access ------------------------------------------------

  /// Opens a lazy (distance, id)-ordered hit stream (see
  /// index/frontier.h).  Draining it yields exactly RadiusSearch[In]
  /// when `options.radius` is set, and the full KnnSearch[In] ranking of
  /// every (allowed) item otherwise — but implementations defer work to
  /// Next() pulls where they can: the linear scan drains distance
  /// buckets fed by one kernel pass, the hash tables walk probe rings
  /// outward, the BK-tree resumes its pruned best-first traversal.  The
  /// default materialises the eager search, which is always correct.
  ///
  /// The returned frontier borrows this index (and `options.allowed`);
  /// the caller keeps both alive — partition wrappers instead return
  /// self-contained frontiers pinning their sealed segments.
  virtual std::unique_ptr<HitFrontier> OpenFrontier(
      const BinaryCode& query, const FrontierOptions& options) const;

  virtual size_t size() const = 0;
  virtual std::string Name() const = 0;
};

}  // namespace agoraeo::index

#endif  // AGORAEO_INDEX_HAMMING_INDEX_H_
