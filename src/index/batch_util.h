#ifndef AGORAEO_INDEX_BATCH_UTIL_H_
#define AGORAEO_INDEX_BATCH_UTIL_H_

#include <algorithm>
#include <cstddef>
#include <functional>

#include "common/thread_pool.h"

namespace agoraeo::index {

/// Splits [0, n) into one contiguous range per pool worker and runs
/// `shard(begin, end)` on each, blocking until all shards finish.  A
/// null pool (or a single-worker pool) runs the whole range inline.
/// Used by the batch search implementations to shard a query batch.
/// Dispatch and completion are delegated to ThreadPool::ParallelFor,
/// whose per-call latch keeps concurrent batch calls sharing one pool
/// independent of each other.
inline void RunSharded(size_t n, ThreadPool* pool,
                       const std::function<void(size_t, size_t)>& shard) {
  if (n == 0) return;
  const size_t num_shards =
      pool != nullptr ? std::min(pool->num_threads(), n) : 1;
  if (num_shards <= 1) {
    shard(0, n);
    return;
  }
  const size_t chunk = (n + num_shards - 1) / num_shards;
  pool->ParallelFor(num_shards, [&](size_t s) {
    const size_t begin = s * chunk;
    const size_t end = std::min(n, begin + chunk);
    if (begin < end) shard(begin, end);
  });
}

}  // namespace agoraeo::index

#endif  // AGORAEO_INDEX_BATCH_UTIL_H_
