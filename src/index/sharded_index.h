#ifndef AGORAEO_INDEX_SHARDED_INDEX_H_
#define AGORAEO_INDEX_SHARDED_INDEX_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "index/hamming_index.h"
#include "index/segmented_index.h"
#include "obs/metrics.h"

namespace agoraeo::index {

/// Observability counters of one ShardedHammingIndex (the per-shard
/// numbers behind GET /api/v2/index/stats).  All counters are monotonic
/// over the index lifetime.
struct ShardedIndexStats {
  size_t num_shards = 0;
  std::vector<size_t> shard_sizes;     ///< items per shard (routing balance)
  std::vector<size_t> shard_segments;  ///< sealed segments per shard
  uint64_t seals = 0;                  ///< seal (rotate) events across shards
  uint64_t compactions = 0;            ///< sealed-segment merges across shards
  uint64_t sealed_items = 0;           ///< items served lock-free from sealed segments
  uint64_t mutable_items = 0;          ///< items still in mutable segments
  uint64_t single_fanouts = 0;         ///< single-query scatter–gather passes
  uint64_t batch_fanouts = 0;          ///< batched passes fanned across shards
  uint64_t fanout_tasks = 0;           ///< per-shard tasks those batches issued
  uint64_t merge_nanos = 0;            ///< time spent gathering/merging results
};

/// The partition layer of the index stack: wraps N independent
/// segment-structured indexes (any of the four kinds, built by a
/// factory) into one hash-partitioned index.
///
/// Routing is id-stable: shard(id) = mix64(id) % N, so an item lives on
/// exactly one shard for the index lifetime and candidate allowlists can
/// be split per shard without consulting the data.  Every search
/// scatters to all shards and gathers with the canonical (distance, id)
/// merge, so results are identical to an unsharded index over the same
/// items:
///   - RadiusSearch: per-shard sorted results are k-way merged.
///   - KnnSearch: each shard returns its own top-k (the global top-k is
///     a subset of the union), merged and truncated at the gather point.
///   - *In flavours: the allowlist is split per shard by routing, so a
///     shard only tests membership against ids it can actually hold.
///   - Batch* flavours: ONE task per shard per batch — each task runs
///     the whole query batch against its shard (sequentially, so there
///     is no nested sharding) — which is what lets the execution
///     engine's fused micro-batches use multiple cores inside a single
///     index pass.  A null pool degrades to a sequential shard loop.
///
/// Concurrency: each shard IS a SegmentedHammingIndex, which owns the
/// synchronisation — sealed segments are read with no lock at all
/// (readers pin the segment list via an atomic shared_ptr), and only
/// the small mutable segment takes a shared_mutex.  This layer holds no
/// locks of its own; the per-shard shared_mutex that used to serialise
/// every read against ingest is gone from the read hot path.
class ShardedHammingIndex : public HammingIndex {
 public:
  using ShardFactory = std::function<std::unique_ptr<HammingIndex>()>;

  /// Builds `num_shards` empty segment-structured shards over `factory`
  /// (0 is clamped to 1).  `seal_threshold` is each shard's mutable-
  /// segment seal point (0 = never auto-seal: one mutable segment per
  /// shard, the exact pre-segment behaviour); `compact_threshold` is
  /// each shard's sealed-segment merge point (0 = never compact — see
  /// SegmentedHammingIndex).
  ShardedHammingIndex(size_t num_shards, const ShardFactory& factory,
                      size_t seal_threshold = 0, size_t compact_threshold = 0);

  /// The id-stable routing function (exposed so tests and allowlist
  /// splitting agree with the index by construction).
  static size_t ShardOf(ItemId id, size_t num_shards);

  Status Add(ItemId id, const BinaryCode& code) override;
  Status BatchAdd(const std::vector<ItemId>& ids,
                  const std::vector<BinaryCode>& codes,
                  ThreadPool* pool = nullptr) override;

  std::vector<SearchResult> RadiusSearch(
      const BinaryCode& query, uint32_t radius,
      SearchStats* stats = nullptr) const override;
  std::vector<SearchResult> KnnSearch(
      const BinaryCode& query, size_t k,
      SearchStats* stats = nullptr) const override;
  std::vector<SearchResult> RadiusSearchIn(
      const BinaryCode& query, uint32_t radius, const CandidateSet& allowed,
      SearchStats* stats = nullptr) const override;
  std::vector<SearchResult> KnnSearchIn(
      const BinaryCode& query, size_t k, const CandidateSet& allowed,
      SearchStats* stats = nullptr) const override;

  std::vector<std::vector<SearchResult>> BatchRadiusSearch(
      const std::vector<BinaryCode>& queries, uint32_t radius,
      ThreadPool* pool = nullptr,
      std::vector<SearchStats>* stats = nullptr) const override;
  std::vector<std::vector<SearchResult>> BatchKnnSearch(
      const std::vector<BinaryCode>& queries, size_t k,
      ThreadPool* pool = nullptr,
      std::vector<SearchStats>* stats = nullptr) const override;
  std::vector<std::vector<SearchResult>> BatchRadiusSearchIn(
      const std::vector<BinaryCode>& queries, uint32_t radius,
      const CandidateSet& allowed, ThreadPool* pool = nullptr,
      std::vector<SearchStats>* stats = nullptr) const override;
  std::vector<std::vector<SearchResult>> BatchKnnSearchIn(
      const std::vector<BinaryCode>& queries, size_t k,
      const CandidateSet& allowed, ThreadPool* pool = nullptr,
      std::vector<SearchStats>* stats = nullptr) const override;

  /// Lazy ranked access: a k-way merge over per-shard frontiers, each
  /// pulled in small chunks — page N of the global ranking costs an
  /// O(k·log shards) heap resume instead of every shard overfetching
  /// its full top-k.  Allowlists are split per shard by routing (the
  /// split is pinned inside the returned frontier).
  std::unique_ptr<HitFrontier> OpenFrontier(
      const BinaryCode& query, const FrontierOptions& options) const override;

  size_t size() const override;
  std::string Name() const override;

  /// Seals (rotates) every shard's mutable segment — the on-demand
  /// snapshot path calls this so snapshot boundaries coincide with
  /// segment boundaries.
  Status SealAll();

  size_t num_shards() const { return shards_.size(); }
  size_t seal_threshold() const { return seal_threshold_; }
  /// Direct access to one shard's segment structure (tests, stats).
  const SegmentedHammingIndex& shard(size_t s) const { return *shards_[s]; }
  ShardedIndexStats Stats() const;

  /// Installs a latency histogram over individual per-shard scan tasks
  /// (single-query and batched passes alike).  Null uninstalls; the
  /// histogram must outlive the index.
  void set_scan_histogram(obs::Histogram* histogram) {
    scan_histogram_ = histogram;
  }

 private:
  /// Enforces the one-code-length contract ACROSS shards: without this
  /// a mismatched code could land on a still-empty shard and be
  /// accepted, which a monolithic index would reject.
  Status CheckCodeLength(const BinaryCode& code);

  /// Splits an allowlist into one CandidateSet per shard by routing.
  std::vector<CandidateSet> SplitAllowlist(const CandidateSet& allowed) const;

  /// Runs `task(shard)` for every shard: one pool task per shard when a
  /// multi-worker pool is given, a plain loop otherwise.  Blocks until
  /// all shards finish.
  void ForEachShard(ThreadPool* pool,
                    const std::function<void(size_t)>& task) const;

  /// The shared scatter–gather core of the four Batch* overrides:
  /// `run_shard(s)` produces shard s's full per-query result matrix
  /// (and per-query stats when `stats` is non-null).
  std::vector<std::vector<SearchResult>> ScatterGatherBatch(
      size_t num_queries, size_t k, ThreadPool* pool,
      std::vector<SearchStats>* stats,
      const std::function<std::vector<std::vector<SearchResult>>(
          size_t, std::vector<SearchStats>*)>& run_shard) const;

  std::vector<std::unique_ptr<SegmentedHammingIndex>> shards_;
  size_t seal_threshold_ = 0;
  /// Code length every shard must agree on; 0 until the first accepted
  /// code anchors it.
  std::atomic<size_t> code_bits_{0};

  mutable std::atomic<uint64_t> single_fanouts_{0};
  mutable std::atomic<uint64_t> batch_fanouts_{0};
  mutable std::atomic<uint64_t> fanout_tasks_{0};
  mutable std::atomic<uint64_t> merge_nanos_{0};
  obs::Histogram* scan_histogram_ = nullptr;
};

}  // namespace agoraeo::index

#endif  // AGORAEO_INDEX_SHARDED_INDEX_H_
