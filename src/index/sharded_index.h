#ifndef AGORAEO_INDEX_SHARDED_INDEX_H_
#define AGORAEO_INDEX_SHARDED_INDEX_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "index/hamming_index.h"

namespace agoraeo::index {

/// Observability counters of one ShardedHammingIndex (the per-shard
/// numbers behind GET /api/v2/index/stats).  All counters are monotonic
/// over the index lifetime.
struct ShardedIndexStats {
  size_t num_shards = 0;
  std::vector<size_t> shard_sizes;   ///< items per shard (routing balance)
  uint64_t single_fanouts = 0;       ///< single-query scatter–gather passes
  uint64_t batch_fanouts = 0;        ///< batched passes fanned across shards
  uint64_t fanout_tasks = 0;         ///< per-shard tasks those batches issued
  uint64_t merge_nanos = 0;          ///< time spent gathering/merging results
};

/// The partition layer of the index stack: wraps N independent
/// HammingIndex instances (any of the four kinds, built by a factory)
/// into one hash-partitioned index.
///
/// Routing is id-stable: shard(id) = mix64(id) % N, so an item lives on
/// exactly one shard for the index lifetime and candidate allowlists can
/// be split per shard without consulting the data.  Every search
/// scatters to all shards and gathers with the canonical (distance, id)
/// merge, so results are identical to an unsharded index over the same
/// items:
///   - RadiusSearch: per-shard sorted results are k-way merged.
///   - KnnSearch: each shard returns its own top-k (the global top-k is
///     a subset of the union), merged and truncated at the gather point.
///   - *In flavours: the allowlist is split per shard by routing, so a
///     shard only tests membership against ids it can actually hold.
///   - Batch* flavours: ONE task per shard per batch — each task runs
///     the whole query batch against its shard (sequentially, so there
///     is no nested parallelism), which is what lets the execution
///     engine's fused micro-batches use multiple cores inside a single
///     index pass.  A null pool degrades to a sequential shard loop.
///
/// Concurrency: each shard carries a shared_mutex — Add/BatchAdd take
/// the shard's exclusive lock, searches its shared lock — so concurrent
/// ingest and queries are safe at this layer even though the wrapped
/// index kinds are not themselves synchronised.
class ShardedHammingIndex : public HammingIndex {
 public:
  using ShardFactory = std::function<std::unique_ptr<HammingIndex>()>;

  /// Builds `num_shards` empty shards via `factory` (0 is clamped to 1).
  ShardedHammingIndex(size_t num_shards, const ShardFactory& factory);

  /// The id-stable routing function (exposed so tests and allowlist
  /// splitting agree with the index by construction).
  static size_t ShardOf(ItemId id, size_t num_shards);

  Status Add(ItemId id, const BinaryCode& code) override;
  Status BatchAdd(const std::vector<ItemId>& ids,
                  const std::vector<BinaryCode>& codes,
                  ThreadPool* pool = nullptr) override;

  std::vector<SearchResult> RadiusSearch(
      const BinaryCode& query, uint32_t radius,
      SearchStats* stats = nullptr) const override;
  std::vector<SearchResult> KnnSearch(
      const BinaryCode& query, size_t k,
      SearchStats* stats = nullptr) const override;
  std::vector<SearchResult> RadiusSearchIn(
      const BinaryCode& query, uint32_t radius, const CandidateSet& allowed,
      SearchStats* stats = nullptr) const override;
  std::vector<SearchResult> KnnSearchIn(
      const BinaryCode& query, size_t k, const CandidateSet& allowed,
      SearchStats* stats = nullptr) const override;

  std::vector<std::vector<SearchResult>> BatchRadiusSearch(
      const std::vector<BinaryCode>& queries, uint32_t radius,
      ThreadPool* pool = nullptr,
      std::vector<SearchStats>* stats = nullptr) const override;
  std::vector<std::vector<SearchResult>> BatchKnnSearch(
      const std::vector<BinaryCode>& queries, size_t k,
      ThreadPool* pool = nullptr,
      std::vector<SearchStats>* stats = nullptr) const override;
  std::vector<std::vector<SearchResult>> BatchRadiusSearchIn(
      const std::vector<BinaryCode>& queries, uint32_t radius,
      const CandidateSet& allowed, ThreadPool* pool = nullptr,
      std::vector<SearchStats>* stats = nullptr) const override;
  std::vector<std::vector<SearchResult>> BatchKnnSearchIn(
      const std::vector<BinaryCode>& queries, size_t k,
      const CandidateSet& allowed, ThreadPool* pool = nullptr,
      std::vector<SearchStats>* stats = nullptr) const override;

  size_t size() const override;
  std::string Name() const override;

  size_t num_shards() const { return shards_.size(); }
  ShardedIndexStats Stats() const;

 private:
  struct Shard {
    mutable std::shared_mutex mu;
    std::unique_ptr<HammingIndex> index;
  };

  /// Enforces the one-code-length contract ACROSS shards: without this
  /// a mismatched code could land on a still-empty shard and be
  /// accepted, which a monolithic index would reject.
  Status CheckCodeLength(const BinaryCode& code);

  /// Splits an allowlist into one CandidateSet per shard by routing.
  std::vector<CandidateSet> SplitAllowlist(const CandidateSet& allowed) const;

  /// Runs `task(shard)` for every shard: one pool task per shard when a
  /// multi-worker pool is given, a plain loop otherwise.  Blocks until
  /// all shards finish.
  void ForEachShard(ThreadPool* pool,
                    const std::function<void(size_t)>& task) const;

  /// Gathers one query slot: merges per-shard (distance, id)-sorted hit
  /// lists; `k` of 0 keeps everything, otherwise truncates to the k
  /// best (the k-NN overfetch merge).
  static std::vector<SearchResult> MergeShardHits(
      std::vector<std::vector<SearchResult>>* per_shard, size_t k);

  /// The shared scatter–gather core of the four Batch* overrides:
  /// `run_shard(s)` produces shard s's full per-query result matrix
  /// (and per-query stats when `stats` is non-null).
  std::vector<std::vector<SearchResult>> ScatterGatherBatch(
      size_t num_queries, size_t k, ThreadPool* pool,
      std::vector<SearchStats>* stats,
      const std::function<std::vector<std::vector<SearchResult>>(
          size_t, std::vector<SearchStats>*)>& run_shard) const;

  std::vector<std::unique_ptr<Shard>> shards_;
  /// Code length every shard must agree on; 0 until the first accepted
  /// code anchors it.
  std::atomic<size_t> code_bits_{0};

  mutable std::atomic<uint64_t> single_fanouts_{0};
  mutable std::atomic<uint64_t> batch_fanouts_{0};
  mutable std::atomic<uint64_t> fanout_tasks_{0};
  mutable std::atomic<uint64_t> merge_nanos_{0};
};

}  // namespace agoraeo::index

#endif  // AGORAEO_INDEX_SHARDED_INDEX_H_
