#ifndef AGORAEO_INDEX_FRONTIER_H_
#define AGORAEO_INDEX_FRONTIER_H_

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "index/hamming_index.h"

namespace agoraeo::index {

/// How a frontier is opened: bounded by a radius (nullopt = rank the
/// whole index) and optionally restricted to an allowlist.  `allowed`
/// is borrowed — the caller must keep it alive for the frontier's whole
/// lifetime (partition wrappers pin split allowlists themselves).
struct FrontierOptions {
  std::optional<uint32_t> radius;
  const CandidateSet* allowed = nullptr;
};

/// A lazy, resumable hit stream in canonical (distance, id) order — the
/// ranked-access counterpart of RadiusSearch/KnnSearch.  Draining a
/// frontier yields exactly what the corresponding eager search returns
/// (RadiusSearch for a radius-bounded frontier, KnnSearch(size()) for a
/// full-ranked one), but work is deferred: implementations expand probe
/// rings, resume pruned traversals, or drain distance buckets only as
/// far as the consumer actually pulls.
///
/// Frontiers are snapshots: once opened they never observe later index
/// mutations (partition wrappers open them on pinned immutable sealed
/// segments and materialise the small mutable tail up front).  They are
/// single-consumer — callers serialise Next() themselves.
class HitFrontier {
 public:
  virtual ~HitFrontier() = default;

  /// Appends up to `n` further hits to `out` in (distance, id) order.
  /// Returns the number appended; 0 means the frontier is exhausted
  /// (and every later call returns 0).  May return fewer than `n`
  /// without being exhausted only when exhaustion follows immediately.
  virtual size_t Next(size_t n, std::vector<SearchResult>* out) = 0;
};

/// A frontier over an already materialised (distance, id)-sorted hit
/// list — the default for index kinds without a lazy override, the
/// mutable-segment snapshot, and tests.
class MaterializedFrontier : public HitFrontier {
 public:
  explicit MaterializedFrontier(std::vector<SearchResult> hits)
      : hits_(std::move(hits)) {}

  size_t Next(size_t n, std::vector<SearchResult>* out) override;

 private:
  std::vector<SearchResult> hits_;
  size_t pos_ = 0;
};

/// A frontier over per-distance hit buckets filled eagerly (one scan
/// pass at open) but sorted lazily: bucket d is put into id order only
/// when the consumer reaches distance d, so deep buckets a shallow page
/// never touches are never sorted.  Slot d of `buckets` holds the hits
/// at distance exactly d, in any order.
class DistanceBucketFrontier : public HitFrontier {
 public:
  explicit DistanceBucketFrontier(
      std::vector<std::vector<SearchResult>> buckets)
      : buckets_(std::move(buckets)) {}

  size_t Next(size_t n, std::vector<SearchResult>* out) override;

 private:
  std::vector<std::vector<SearchResult>> buckets_;
  size_t distance_ = 0;  ///< bucket currently being drained
  size_t pos_ = 0;       ///< next slot within that bucket
};

/// K-way merge of child frontiers into one (distance, id)-ordered
/// stream — the gather step of the partition layers (segments within a
/// shard, shards within an index), pulling children in small chunks so
/// a deep merge stays as lazy as its laziest child.  Children hold
/// disjoint ids, so the merge reproduces exactly what one flat frontier
/// over the union would emit.  Also carries opaque pins keeping
/// whatever the children borrow (sealed segments, split allowlists)
/// alive for the frontier's lifetime.
class MergingFrontier : public HitFrontier {
 public:
  /// Children must be added before the first Next() call.
  void AddChild(std::unique_ptr<HitFrontier> child);
  /// Keeps `pin` alive as long as this frontier (sealed-segment
  /// indexes, per-shard allowlist splits, ...).
  void AddPin(std::shared_ptr<const void> pin);

  size_t Next(size_t n, std::vector<SearchResult>* out) override;

 private:
  struct Child {
    std::unique_ptr<HitFrontier> frontier;
    std::deque<SearchResult> buffer;
    bool exhausted = false;
  };

  /// Ensures child c has a buffered head (or is marked exhausted).
  void Refill(Child* child);

  std::vector<Child> children_;
  std::vector<std::shared_ptr<const void>> pins_;
  /// Heads heap: indices into children_, ordered so the child whose
  /// buffered head is smallest under (distance, id) is popped first.
  std::vector<size_t> heap_;
  bool started_ = false;
};

}  // namespace agoraeo::index

#endif  // AGORAEO_INDEX_FRONTIER_H_
