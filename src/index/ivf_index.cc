#include "index/ivf_index.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>

#include "common/random.h"
#include "index/batch_util.h"

namespace agoraeo::index {

namespace {

float SquaredL2(const float* a, const float* b, size_t n) {
  float acc = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    const float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

}  // namespace

StatusOr<IvfFlatIndex> IvfFlatIndex::Train(const Tensor& training,
                                           const Config& config) {
  if (training.rank() != 2) {
    return Status::InvalidArgument("training tensor must be [n, dim]");
  }
  const size_t n = training.shape()[0];
  const size_t dim = training.shape()[1];
  if (config.nlist == 0 || n < config.nlist) {
    return Status::InvalidArgument("need at least nlist training vectors");
  }

  IvfFlatIndex index;
  index.dim_ = dim;
  index.centroids_.resize(config.nlist * dim);
  index.lists_.resize(config.nlist);

  // Seed with distinct random rows, then Lloyd iterations.
  Rng rng(config.seed);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(&order);
  const float* data = training.data();
  for (size_t c = 0; c < config.nlist; ++c) {
    std::copy(data + order[c] * dim, data + (order[c] + 1) * dim,
              index.centroids_.begin() + c * dim);
  }

  std::vector<size_t> assignment(n, 0);
  std::vector<float> sums(config.nlist * dim);
  std::vector<size_t> counts(config.nlist);
  for (size_t iter = 0; iter < config.kmeans_iterations; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      const float* x = data + i * dim;
      float best = std::numeric_limits<float>::max();
      size_t arg = 0;
      for (size_t c = 0; c < config.nlist; ++c) {
        const float d = SquaredL2(x, index.centroids_.data() + c * dim, dim);
        if (d < best) {
          best = d;
          arg = c;
        }
      }
      if (assignment[i] != arg) {
        assignment[i] = arg;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
    std::fill(sums.begin(), sums.end(), 0.0f);
    std::fill(counts.begin(), counts.end(), 0);
    for (size_t i = 0; i < n; ++i) {
      const float* x = data + i * dim;
      float* sum = sums.data() + assignment[i] * dim;
      for (size_t j = 0; j < dim; ++j) sum[j] += x[j];
      ++counts[assignment[i]];
    }
    for (size_t c = 0; c < config.nlist; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cell from a random row.
        const size_t r = order[rng.UniformInt(static_cast<uint32_t>(n))];
        std::copy(data + r * dim, data + (r + 1) * dim,
                  index.centroids_.begin() + c * dim);
        continue;
      }
      const float inv = 1.0f / static_cast<float>(counts[c]);
      for (size_t j = 0; j < dim; ++j) {
        index.centroids_[c * dim + j] = sums[c * dim + j] * inv;
      }
    }
  }
  return index;
}

Status IvfFlatIndex::Add(ItemId id, const Tensor& feature) {
  if (feature.size() != dim_) {
    return Status::InvalidArgument("feature dimension mismatch");
  }
  float best = std::numeric_limits<float>::max();
  size_t arg = 0;
  for (size_t c = 0; c < lists_.size(); ++c) {
    const float d =
        SquaredL2(feature.data(), centroids_.data() + c * dim_, dim_);
    if (d < best) {
      best = d;
      arg = c;
    }
  }
  lists_[arg].push_back(
      {id, std::vector<float>(feature.data(), feature.data() + dim_)});
  ++num_items_;
  return Status::OK();
}

std::vector<size_t> IvfFlatIndex::RankCells(const Tensor& query,
                                            size_t nprobe) const {
  std::vector<std::pair<float, size_t>> ranked;
  ranked.reserve(lists_.size());
  for (size_t c = 0; c < lists_.size(); ++c) {
    ranked.emplace_back(
        SquaredL2(query.data(), centroids_.data() + c * dim_, dim_), c);
  }
  const size_t probe = std::min(nprobe, ranked.size());
  std::partial_sort(ranked.begin(), ranked.begin() + probe, ranked.end());
  std::vector<size_t> cells(probe);
  for (size_t i = 0; i < probe; ++i) cells[i] = ranked[i].second;
  return cells;
}

std::vector<FloatSearchResult> IvfFlatIndex::KnnSearch(const Tensor& query,
                                                       size_t k,
                                                       size_t nprobe) const {
  std::vector<FloatSearchResult> best;
  if (k == 0 || num_items_ == 0 || nprobe == 0) return best;
  auto worse = [](const FloatSearchResult& a, const FloatSearchResult& b) {
    return a.distance < b.distance ||
           (a.distance == b.distance && a.id < b.id);
  };
  for (size_t cell : RankCells(query, nprobe)) {
    for (const ListEntry& entry : lists_[cell]) {
      const FloatSearchResult candidate{
          entry.id, SquaredL2(query.data(), entry.vec.data(), dim_)};
      if (best.size() < k) {
        best.insert(
            std::lower_bound(best.begin(), best.end(), candidate, worse),
            candidate);
      } else if (worse(candidate, best.back())) {
        best.pop_back();
        best.insert(
            std::lower_bound(best.begin(), best.end(), candidate, worse),
            candidate);
      }
    }
  }
  return best;
}

std::vector<std::vector<FloatSearchResult>> IvfFlatIndex::BatchKnnSearch(
    const Tensor& queries, size_t k, size_t nprobe, ThreadPool* pool) const {
  assert(queries.rank() == 2 && queries.shape()[1] == dim_);
  const size_t batch = queries.shape()[0];
  std::vector<std::vector<FloatSearchResult>> out(batch);
  RunSharded(batch, pool, [&](size_t begin, size_t end) {
    for (size_t q = begin; q < end; ++q) {
      out[q] = KnnSearch(queries.Row(q), k, nprobe);
    }
  });
  return out;
}

size_t IvfFlatIndex::CandidatesForProbe(const Tensor& query,
                                        size_t nprobe) const {
  size_t total = 0;
  for (size_t cell : RankCells(query, nprobe)) total += lists_[cell].size();
  return total;
}

}  // namespace agoraeo::index
