#include "index/hamming_table.h"

#include <algorithm>
#include <cassert>
#include <functional>

#include "index/batch_util.h"

namespace agoraeo::index {

namespace {

/// Enumerates every code within Hamming distance `radius` of `base`
/// (including base itself) and invokes `visit` on each.  Recursive
/// combination enumeration: flip positions are strictly increasing.
void EnumerateWithinRadius(const BinaryCode& base, uint32_t radius,
                           const std::function<void(const BinaryCode&)>& visit) {
  BinaryCode current = base;
  std::function<void(size_t, uint32_t)> recurse = [&](size_t start,
                                                      uint32_t remaining) {
    visit(current);
    if (remaining == 0) return;
    for (size_t i = start; i < base.size(); ++i) {
      current.FlipBit(i);
      recurse(i + 1, remaining - 1);
      current.FlipBit(i);
    }
  };
  recurse(0, radius);
}

/// Enumerates all 64-bit keys within `radius` of `base`, restricted to
/// the low `bits` bits.
void EnumerateWithinRadius64(uint64_t base, size_t bits, uint32_t radius,
                             const std::function<void(uint64_t)>& visit) {
  std::function<void(size_t, uint64_t, uint32_t)> recurse =
      [&](size_t start, uint64_t value, uint32_t remaining) {
        visit(value);
        if (remaining == 0) return;
        for (size_t i = start; i < bits; ++i) {
          recurse(i + 1, value ^ (1ULL << i), remaining - 1);
        }
      };
  recurse(0, base, radius);
}

}  // namespace

// ---------------------------------------------------------------------------
// HammingHashTable
// ---------------------------------------------------------------------------

size_t HammingHashTable::ProbeCount(size_t bits, uint32_t radius) {
  size_t total = 0;
  // C(bits, 0) + C(bits, 1) + ... + C(bits, radius), saturating.
  double binom = 1.0;
  for (uint32_t i = 0; i <= radius; ++i) {
    if (binom > 1e18) return SIZE_MAX;
    total += static_cast<size_t>(binom);
    binom = binom * static_cast<double>(bits - i) / static_cast<double>(i + 1);
  }
  return total;
}

Status HammingHashTable::Add(ItemId id, const BinaryCode& code) {
  if (code.empty()) return Status::InvalidArgument("empty code");
  if (code_bits_ == 0) code_bits_ = code.size();
  if (code.size() != code_bits_) {
    return Status::InvalidArgument("code length mismatch");
  }
  buckets_[code].push_back(id);
  ++num_items_;
  return Status::OK();
}

std::vector<SearchResult> HammingHashTable::SearchBuckets(
    const BinaryCode& query, uint32_t radius, const CandidateSet* allowed,
    SearchStats* stats) const {
  std::vector<SearchResult> out;
  SearchStats local;

  auto collect = [&](const std::vector<ItemId>& items, uint32_t d) {
    for (ItemId id : items) {
      ++local.candidates;
      if (allowed != nullptr && !allowed->Contains(id)) continue;
      out.push_back({id, d});
    }
  };
  const size_t probes = ProbeCount(code_bits_, radius);
  if (probes <= buckets_.size() * 2) {
    // Mask enumeration: probe every code within the radius.
    EnumerateWithinRadius(query, radius, [&](const BinaryCode& probe) {
      ++local.buckets_probed;
      auto it = buckets_.find(probe);
      if (it == buckets_.end()) return;
      collect(it->second,
              static_cast<uint32_t>(query.HammingDistance(probe)));
    });
  } else {
    // Bucket scan: fewer non-empty buckets than probe codes.
    for (const auto& [code, items] : buckets_) {
      ++local.buckets_probed;
      const uint32_t d = static_cast<uint32_t>(query.HammingDistance(code));
      if (d > radius) continue;
      collect(items, d);
    }
  }
  std::sort(out.begin(), out.end(), ResultLess);
  local.results = out.size();
  if (stats != nullptr) *stats = local;
  return out;
}

std::vector<SearchResult> HammingHashTable::RadiusSearch(
    const BinaryCode& query, uint32_t radius, SearchStats* stats) const {
  return SearchBuckets(query, radius, /*allowed=*/nullptr, stats);
}

std::vector<SearchResult> HammingHashTable::RadiusSearchIn(
    const BinaryCode& query, uint32_t radius, const CandidateSet& allowed,
    SearchStats* stats) const {
  return SearchBuckets(query, radius, &allowed, stats);
}

std::vector<SearchResult> HammingHashTable::KnnSearchIn(
    const BinaryCode& query, size_t k, const CandidateSet& allowed,
    SearchStats* stats) const {
  // Progressive radius expansion over the restricted search; complete
  // when k allowed items were found, the whole allowlist was retrieved,
  // or the radius covers the code space.
  std::vector<SearchResult> out;
  SearchStats local;
  if (k > 0) {
    for (uint32_t radius = 0; radius <= code_bits_; ++radius) {
      SearchStats step;
      out = SearchBuckets(query, radius, &allowed, &step);
      local.buckets_probed += step.buckets_probed;
      local.candidates += step.candidates;
      if (out.size() >= k || out.size() == allowed.size()) break;
    }
  }
  if (out.size() > k) out.resize(k);
  local.results = out.size();
  if (stats != nullptr) *stats = local;
  return out;
}

std::vector<SearchResult> HammingHashTable::KnnSearch(const BinaryCode& query,
                                                      size_t k,
                                                      SearchStats* stats) const {
  // Progressive radius expansion: results within radius r are complete
  // before radius r+1 is explored, so the first k collected are exact.
  std::vector<SearchResult> out;
  SearchStats local;
  for (uint32_t radius = 0; radius <= code_bits_; ++radius) {
    SearchStats step;
    out = RadiusSearch(query, radius, &step);
    local.buckets_probed += step.buckets_probed;
    local.candidates += step.candidates;
    if (out.size() >= k || out.size() == num_items_) break;
  }
  if (out.size() > k) out.resize(k);
  local.results = out.size();
  if (stats != nullptr) *stats = local;
  return out;
}

namespace {

/// Collapses duplicate query codes to one representative slot, runs
/// `search_one(slot, stats_slot)` for each distinct code sharded across
/// the pool, and fans results out to the duplicate slots.
std::vector<std::vector<SearchResult>> DedupedBatch(
    const std::vector<BinaryCode>& queries, ThreadPool* pool,
    std::vector<SearchStats>* stats,
    const std::function<std::vector<SearchResult>(size_t, SearchStats*)>&
        search_one) {
  std::vector<std::vector<SearchResult>> out(queries.size());
  if (stats != nullptr) stats->assign(queries.size(), SearchStats{});

  std::unordered_map<BinaryCode, size_t, BinaryCodeHash> representative;
  representative.reserve(queries.size());
  std::vector<size_t> unique_slots;
  unique_slots.reserve(queries.size());
  std::vector<size_t> source(queries.size());  // slot -> representative slot
  for (size_t i = 0; i < queries.size(); ++i) {
    auto [it, inserted] = representative.emplace(queries[i], i);
    if (inserted) unique_slots.push_back(i);
    source[i] = it->second;
  }

  RunSharded(unique_slots.size(), pool, [&](size_t begin, size_t end) {
    for (size_t u = begin; u < end; ++u) {
      const size_t slot = unique_slots[u];
      out[slot] =
          search_one(slot, stats != nullptr ? &(*stats)[slot] : nullptr);
    }
  });

  for (size_t i = 0; i < queries.size(); ++i) {
    if (source[i] == i) continue;
    out[i] = out[source[i]];
    if (stats != nullptr) (*stats)[i] = (*stats)[source[i]];
  }
  return out;
}

}  // namespace

std::vector<std::vector<SearchResult>> HammingHashTable::BatchRadiusSearch(
    const std::vector<BinaryCode>& queries, uint32_t radius, ThreadPool* pool,
    std::vector<SearchStats>* stats) const {
  return DedupedBatch(queries, pool, stats,
                      [&](size_t slot, SearchStats* slot_stats) {
                        return RadiusSearch(queries[slot], radius, slot_stats);
                      });
}

std::vector<std::vector<SearchResult>> HammingHashTable::BatchKnnSearch(
    const std::vector<BinaryCode>& queries, size_t k, ThreadPool* pool,
    std::vector<SearchStats>* stats) const {
  return DedupedBatch(queries, pool, stats,
                      [&](size_t slot, SearchStats* slot_stats) {
                        return KnnSearch(queries[slot], k, slot_stats);
                      });
}

// ---------------------------------------------------------------------------
// MultiIndexHashing
// ---------------------------------------------------------------------------

void MultiIndexHashing::SubstringRange(size_t j, size_t* begin,
                                       size_t* len) const {
  // Balanced split: the first (bits % m) substrings get one extra bit.
  const size_t base = code_bits_ / m_;
  const size_t extra = code_bits_ % m_;
  *begin = j * base + std::min(j, extra);
  *len = base + (j < extra ? 1 : 0);
}

Status MultiIndexHashing::Add(ItemId id, const BinaryCode& code) {
  if (code.empty()) return Status::InvalidArgument("empty code");
  if (m_ == 0 || m_ > code.size()) {
    return Status::InvalidArgument("invalid substring count");
  }
  if (code_bits_ == 0) {
    code_bits_ = code.size();
    if ((code_bits_ + m_ - 1) / m_ > 64) {
      return Status::InvalidArgument("substrings longer than 64 bits");
    }
    tables_.resize(m_);
  }
  if (code.size() != code_bits_) {
    return Status::InvalidArgument("code length mismatch");
  }
  const uint32_t pos = static_cast<uint32_t>(ids_.size());
  ids_.push_back(id);
  codes_.push_back(code);
  for (size_t j = 0; j < m_; ++j) {
    size_t begin, len;
    SubstringRange(j, &begin, &len);
    const uint64_t key = code.Substring(begin, len).LowWord();
    tables_[j][key].push_back(pos);
  }
  return Status::OK();
}

std::vector<SearchResult> MultiIndexHashing::SearchSubstrings(
    const BinaryCode& query, uint32_t radius, const CandidateSet* allowed,
    SearchStats* stats) const {
  SearchStats local;
  std::vector<SearchResult> out;
  if (codes_.empty()) {
    if (stats != nullptr) *stats = local;
    return out;
  }
  // Pigeonhole: ham(a, b) <= r implies some substring differs by at most
  // floor(r / m).
  const uint32_t sub_radius = radius / static_cast<uint32_t>(m_);

  auto verify = [&](size_t pos) {
    if (allowed != nullptr && !allowed->Contains(ids_[pos])) return;
    const uint32_t d =
        static_cast<uint32_t>(codes_[pos].HammingDistance(query));
    if (d <= radius) out.push_back({ids_[pos], d});
  };

  // Adaptive fallback (same idea as HammingHashTable::RadiusSearch): when
  // the mask enumeration would probe more keys than there are stored codes,
  // a direct scan is strictly cheaper.  Without this cap, large radii on
  // long substrings explode combinatorially (C(32, r/m) probes each).
  size_t max_len = 0;
  for (size_t j = 0; j < m_; ++j) {
    size_t begin, len;
    SubstringRange(j, &begin, &len);
    max_len = std::max(max_len, len);
  }
  const size_t probes_per_table =
      HammingHashTable::ProbeCount(max_len, sub_radius);
  if (probes_per_table == SIZE_MAX ||
      probes_per_table > codes_.size() + 1) {
    for (size_t pos = 0; pos < codes_.size(); ++pos) {
      ++local.candidates;
      verify(pos);
    }
    local.buckets_probed = codes_.size();
    std::sort(out.begin(), out.end(), ResultLess);
    local.results = out.size();
    if (stats != nullptr) *stats = local;
    return out;
  }

  std::vector<bool> seen(codes_.size(), false);
  for (size_t j = 0; j < m_; ++j) {
    size_t begin, len;
    SubstringRange(j, &begin, &len);
    const uint64_t key = query.Substring(begin, len).LowWord();
    EnumerateWithinRadius64(key, len, sub_radius, [&](uint64_t probe) {
      ++local.buckets_probed;
      auto it = tables_[j].find(probe);
      if (it == tables_[j].end()) return;
      for (uint32_t pos : it->second) {
        if (seen[pos]) continue;
        seen[pos] = true;
        ++local.candidates;
        verify(pos);
      }
    });
  }
  std::sort(out.begin(), out.end(), ResultLess);
  local.results = out.size();
  if (stats != nullptr) *stats = local;
  return out;
}

std::vector<SearchResult> MultiIndexHashing::RadiusSearch(
    const BinaryCode& query, uint32_t radius, SearchStats* stats) const {
  return SearchSubstrings(query, radius, /*allowed=*/nullptr, stats);
}

std::vector<SearchResult> MultiIndexHashing::RadiusSearchIn(
    const BinaryCode& query, uint32_t radius, const CandidateSet& allowed,
    SearchStats* stats) const {
  return SearchSubstrings(query, radius, &allowed, stats);
}

std::vector<SearchResult> MultiIndexHashing::KnnSearchIn(
    const BinaryCode& query, size_t k, const CandidateSet& allowed,
    SearchStats* stats) const {
  std::vector<SearchResult> out;
  SearchStats local;
  if (k > 0) {
    // Same whole-substring-radius expansion as KnnSearch, over the
    // restricted search; the allowlist size bounds the retrievable set.
    for (uint32_t radius = static_cast<uint32_t>(m_) - 1;
         radius <= code_bits_ + m_; radius += static_cast<uint32_t>(m_)) {
      SearchStats step;
      const uint32_t capped =
          std::min<uint32_t>(radius, static_cast<uint32_t>(code_bits_));
      out = SearchSubstrings(query, capped, &allowed, &step);
      local.buckets_probed += step.buckets_probed;
      local.candidates += step.candidates;
      if (out.size() >= k || out.size() == allowed.size() ||
          capped == code_bits_) {
        break;
      }
    }
  }
  if (out.size() > k) out.resize(k);
  local.results = out.size();
  if (stats != nullptr) *stats = local;
  return out;
}

std::vector<SearchResult> MultiIndexHashing::KnnSearch(
    const BinaryCode& query, size_t k, SearchStats* stats) const {
  std::vector<SearchResult> out;
  SearchStats local;
  // Expand by whole substring-radius steps (radius grows by m each step,
  // the granularity at which the candidate set changes).
  for (uint32_t radius = static_cast<uint32_t>(m_) - 1; radius <= code_bits_ + m_;
       radius += static_cast<uint32_t>(m_)) {
    SearchStats step;
    const uint32_t capped =
        std::min<uint32_t>(radius, static_cast<uint32_t>(code_bits_));
    out = RadiusSearch(query, capped, &step);
    local.buckets_probed += step.buckets_probed;
    local.candidates += step.candidates;
    if (out.size() >= k || out.size() == codes_.size() ||
        capped == code_bits_) {
      break;
    }
  }
  if (out.size() > k) out.resize(k);
  local.results = out.size();
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace agoraeo::index
