#include "index/hamming_table.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <queue>

#include "index/batch_util.h"
#include "index/frontier.h"

namespace agoraeo::index {

namespace {

/// Enumerates every code within Hamming distance `radius` of `base`
/// (including base itself) and invokes `visit` on each.  Recursive
/// combination enumeration: flip positions are strictly increasing.
void EnumerateWithinRadius(const BinaryCode& base, uint32_t radius,
                           const std::function<void(const BinaryCode&)>& visit) {
  BinaryCode current = base;
  std::function<void(size_t, uint32_t)> recurse = [&](size_t start,
                                                      uint32_t remaining) {
    visit(current);
    if (remaining == 0) return;
    for (size_t i = start; i < base.size(); ++i) {
      current.FlipBit(i);
      recurse(i + 1, remaining - 1);
      current.FlipBit(i);
    }
  };
  recurse(0, radius);
}

/// Enumerates all 64-bit keys within `radius` of `base`, restricted to
/// the low `bits` bits.
void EnumerateWithinRadius64(uint64_t base, size_t bits, uint32_t radius,
                             const std::function<void(uint64_t)>& visit) {
  std::function<void(size_t, uint64_t, uint32_t)> recurse =
      [&](size_t start, uint64_t value, uint32_t remaining) {
        visit(value);
        if (remaining == 0) return;
        for (size_t i = start; i < bits; ++i) {
          recurse(i + 1, value ^ (1ULL << i), remaining - 1);
        }
      };
  recurse(0, base, radius);
}

/// Ring flavour of EnumerateWithinRadius: visits only the codes at
/// distance EXACTLY `flips` from the current state of `scratch` (which
/// is restored before returning) — the per-ring step of the lazy
/// frontier, where ring r must not re-visit rings < r.
void EnumerateExactRing(BinaryCode* scratch, uint32_t flips,
                        const std::function<void(const BinaryCode&)>& visit) {
  std::function<void(size_t, uint32_t)> recurse = [&](size_t start,
                                                      uint32_t remaining) {
    if (remaining == 0) {
      visit(*scratch);
      return;
    }
    // i + remaining <= size: leave room for the flips still owed.
    for (size_t i = start; i + remaining <= scratch->size(); ++i) {
      scratch->FlipBit(i);
      recurse(i + 1, remaining - 1);
      scratch->FlipBit(i);
    }
  };
  recurse(0, flips);
}

/// Ring flavour of EnumerateWithinRadius64: keys with EXACTLY `flips`
/// of the low `bits` bits flipped relative to `base`.
void EnumerateExactRing64(uint64_t base, size_t bits, uint32_t flips,
                          const std::function<void(uint64_t)>& visit) {
  std::function<void(size_t, uint64_t, uint32_t)> recurse =
      [&](size_t start, uint64_t value, uint32_t remaining) {
        if (remaining == 0) {
          visit(value);
          return;
        }
        for (size_t i = start; i + remaining <= bits; ++i) {
          recurse(i + 1, value ^ (1ULL << i), remaining - 1);
        }
      };
  recurse(0, base, flips);
}

/// Orders a min-heap of SearchResult under the canonical (distance, id)
/// order.
struct ResultGreater {
  bool operator()(const SearchResult& a, const SearchResult& b) const {
    return ResultLess(b, a);
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// HammingHashTable
// ---------------------------------------------------------------------------

size_t HammingHashTable::ProbeCount(size_t bits, uint32_t radius) {
  size_t total = 0;
  // C(bits, 0) + C(bits, 1) + ... + C(bits, radius), saturating.
  double binom = 1.0;
  for (uint32_t i = 0; i <= radius; ++i) {
    if (binom > 1e18) return SIZE_MAX;
    total += static_cast<size_t>(binom);
    binom = binom * static_cast<double>(bits - i) / static_cast<double>(i + 1);
  }
  return total;
}

Status HammingHashTable::Add(ItemId id, const BinaryCode& code) {
  if (code.empty()) return Status::InvalidArgument("empty code");
  if (code_bits_ == 0) code_bits_ = code.size();
  if (code.size() != code_bits_) {
    return Status::InvalidArgument("code length mismatch");
  }
  buckets_[code].push_back(id);
  ++num_items_;
  return Status::OK();
}

std::vector<SearchResult> HammingHashTable::SearchBuckets(
    const BinaryCode& query, uint32_t radius, const CandidateSet* allowed,
    SearchStats* stats) const {
  std::vector<SearchResult> out;
  SearchStats local;

  auto collect = [&](const std::vector<ItemId>& items, uint32_t d) {
    for (ItemId id : items) {
      ++local.candidates;
      if (allowed != nullptr && !allowed->Contains(id)) continue;
      out.push_back({id, d});
    }
  };
  const size_t probes = ProbeCount(code_bits_, radius);
  if (probes <= buckets_.size() * 2) {
    // Mask enumeration: probe every code within the radius.
    EnumerateWithinRadius(query, radius, [&](const BinaryCode& probe) {
      ++local.buckets_probed;
      auto it = buckets_.find(probe);
      if (it == buckets_.end()) return;
      collect(it->second,
              static_cast<uint32_t>(query.HammingDistance(probe)));
    });
  } else {
    // Bucket scan: fewer non-empty buckets than probe codes.
    for (const auto& [code, items] : buckets_) {
      ++local.buckets_probed;
      const uint32_t d = static_cast<uint32_t>(query.HammingDistance(code));
      if (d > radius) continue;
      collect(items, d);
    }
  }
  std::sort(out.begin(), out.end(), ResultLess);
  local.results = out.size();
  if (stats != nullptr) *stats = local;
  return out;
}

std::vector<SearchResult> HammingHashTable::RadiusSearch(
    const BinaryCode& query, uint32_t radius, SearchStats* stats) const {
  return SearchBuckets(query, radius, /*allowed=*/nullptr, stats);
}

std::vector<SearchResult> HammingHashTable::RadiusSearchIn(
    const BinaryCode& query, uint32_t radius, const CandidateSet& allowed,
    SearchStats* stats) const {
  return SearchBuckets(query, radius, &allowed, stats);
}

std::vector<SearchResult> HammingHashTable::KnnSearchIn(
    const BinaryCode& query, size_t k, const CandidateSet& allowed,
    SearchStats* stats) const {
  // Progressive radius expansion over the restricted search; complete
  // when k allowed items were found, the whole allowlist was retrieved,
  // or the radius covers the code space.
  std::vector<SearchResult> out;
  SearchStats local;
  if (k > 0) {
    for (uint32_t radius = 0; radius <= code_bits_; ++radius) {
      SearchStats step;
      out = SearchBuckets(query, radius, &allowed, &step);
      local.buckets_probed += step.buckets_probed;
      local.candidates += step.candidates;
      if (out.size() >= k || out.size() == allowed.size()) break;
    }
  }
  if (out.size() > k) out.resize(k);
  local.results = out.size();
  if (stats != nullptr) *stats = local;
  return out;
}

std::vector<SearchResult> HammingHashTable::KnnSearch(const BinaryCode& query,
                                                      size_t k,
                                                      SearchStats* stats) const {
  // Progressive radius expansion: results within radius r are complete
  // before radius r+1 is explored, so the first k collected are exact.
  std::vector<SearchResult> out;
  SearchStats local;
  for (uint32_t radius = 0; radius <= code_bits_; ++radius) {
    SearchStats step;
    out = RadiusSearch(query, radius, &step);
    local.buckets_probed += step.buckets_probed;
    local.candidates += step.candidates;
    if (out.size() >= k || out.size() == num_items_) break;
  }
  if (out.size() > k) out.resize(k);
  local.results = out.size();
  if (stats != nullptr) *stats = local;
  return out;
}

namespace {

/// Lazy ring walk over the single hash table: ring r (codes at distance
/// exactly r) is enumerated only when the consumer drains past ring
/// r-1, and once the cumulative probe count passes the same crossover
/// the eager search uses, the remaining distances are collected in one
/// bucketed scan.  Borrows the bucket map — the caller keeps the index
/// alive (the segment layer pins it).
class HashRingFrontier : public HitFrontier {
 public:
  using BucketMap =
      std::unordered_map<BinaryCode, std::vector<ItemId>, BinaryCodeHash>;

  HashRingFrontier(const BucketMap* buckets, size_t code_bits,
                   size_t num_items, const BinaryCode& query, uint32_t max_d,
                   const CandidateSet* allowed)
      : buckets_(buckets),
        code_bits_(code_bits),
        num_items_(num_items),
        query_(query),
        max_d_(max_d),
        allowed_(allowed) {}

  size_t Next(size_t n, std::vector<SearchResult>* out) override {
    size_t produced = 0;
    while (produced < n) {
      if (pos_ < ring_.size()) {
        const size_t take = std::min(n - produced, ring_.size() - pos_);
        out->insert(out->end(), ring_.begin() + pos_,
                    ring_.begin() + pos_ + take);
        pos_ += take;
        produced += take;
        continue;
      }
      if (tail_ != nullptr) {
        const size_t got = tail_->Next(n - produced, out);
        produced += got;
        if (got == 0) break;  // the tail covered every remaining distance
        continue;
      }
      if (done_) break;
      AdvanceRing();
    }
    return produced;
  }

 private:
  void AdvanceRing() {
    ring_.clear();
    pos_ = 0;
    if (r_ > max_d_ || collected_ >= num_items_) {
      done_ = true;
      return;
    }
    if (HammingHashTable::ProbeCount(code_bits_, r_) > buckets_->size() * 2) {
      BuildTail();
      return;
    }
    BinaryCode scratch = query_;
    EnumerateExactRing(&scratch, r_, [&](const BinaryCode& probe) {
      auto it = buckets_->find(probe);
      if (it == buckets_->end()) return;
      for (ItemId id : it->second) {
        ++collected_;
        if (allowed_ != nullptr && !allowed_->Contains(id)) continue;
        ring_.push_back({id, r_});
      }
    });
    std::sort(ring_.begin(), ring_.end(), ResultLess);
    ++r_;
  }

  /// One scan of every bucket for the remaining distances [r_, max_d_],
  /// handed to a lazily-sorted bucket drain.
  void BuildTail() {
    std::vector<std::vector<SearchResult>> tail_buckets(
        static_cast<size_t>(max_d_) + 1);
    for (const auto& [code, items] : *buckets_) {
      const uint32_t d = static_cast<uint32_t>(query_.HammingDistance(code));
      if (d < r_ || d > max_d_) continue;
      for (ItemId id : items) {
        if (allowed_ != nullptr && !allowed_->Contains(id)) continue;
        tail_buckets[d].push_back({id, d});
      }
    }
    tail_ = std::make_unique<DistanceBucketFrontier>(std::move(tail_buckets));
  }

  const BucketMap* buckets_;
  const size_t code_bits_;
  const size_t num_items_;
  const BinaryCode query_;
  const uint32_t max_d_;
  const CandidateSet* allowed_;

  uint32_t r_ = 0;          ///< next ring to enumerate
  size_t collected_ = 0;    ///< items found so far (pre-allowlist)
  std::vector<SearchResult> ring_;  ///< current ring's hits, id-sorted
  size_t pos_ = 0;
  std::unique_ptr<DistanceBucketFrontier> tail_;
  bool done_ = false;
};

/// Collapses duplicate query codes to one representative slot, runs
/// `search_one(slot, stats_slot)` for each distinct code sharded across
/// the pool, and fans results out to the duplicate slots.
std::vector<std::vector<SearchResult>> DedupedBatch(
    const std::vector<BinaryCode>& queries, ThreadPool* pool,
    std::vector<SearchStats>* stats,
    const std::function<std::vector<SearchResult>(size_t, SearchStats*)>&
        search_one) {
  std::vector<std::vector<SearchResult>> out(queries.size());
  if (stats != nullptr) stats->assign(queries.size(), SearchStats{});

  std::unordered_map<BinaryCode, size_t, BinaryCodeHash> representative;
  representative.reserve(queries.size());
  std::vector<size_t> unique_slots;
  unique_slots.reserve(queries.size());
  std::vector<size_t> source(queries.size());  // slot -> representative slot
  for (size_t i = 0; i < queries.size(); ++i) {
    auto [it, inserted] = representative.emplace(queries[i], i);
    if (inserted) unique_slots.push_back(i);
    source[i] = it->second;
  }

  RunSharded(unique_slots.size(), pool, [&](size_t begin, size_t end) {
    for (size_t u = begin; u < end; ++u) {
      const size_t slot = unique_slots[u];
      out[slot] =
          search_one(slot, stats != nullptr ? &(*stats)[slot] : nullptr);
    }
  });

  for (size_t i = 0; i < queries.size(); ++i) {
    if (source[i] == i) continue;
    out[i] = out[source[i]];
    if (stats != nullptr) (*stats)[i] = (*stats)[source[i]];
  }
  return out;
}

}  // namespace

std::unique_ptr<HitFrontier> HammingHashTable::OpenFrontier(
    const BinaryCode& query, const FrontierOptions& options) const {
  const uint32_t max_d =
      options.radius.has_value()
          ? std::min<uint32_t>(*options.radius,
                               static_cast<uint32_t>(code_bits_))
          : static_cast<uint32_t>(code_bits_);
  return std::make_unique<HashRingFrontier>(&buckets_, code_bits_, num_items_,
                                            query, max_d, options.allowed);
}

std::vector<std::vector<SearchResult>> HammingHashTable::BatchRadiusSearch(
    const std::vector<BinaryCode>& queries, uint32_t radius, ThreadPool* pool,
    std::vector<SearchStats>* stats) const {
  return DedupedBatch(queries, pool, stats,
                      [&](size_t slot, SearchStats* slot_stats) {
                        return RadiusSearch(queries[slot], radius, slot_stats);
                      });
}

std::vector<std::vector<SearchResult>> HammingHashTable::BatchKnnSearch(
    const std::vector<BinaryCode>& queries, size_t k, ThreadPool* pool,
    std::vector<SearchStats>* stats) const {
  return DedupedBatch(queries, pool, stats,
                      [&](size_t slot, SearchStats* slot_stats) {
                        return KnnSearch(queries[slot], k, slot_stats);
                      });
}

// ---------------------------------------------------------------------------
// MultiIndexHashing
// ---------------------------------------------------------------------------

void MultiIndexHashing::SubstringRange(size_t j, size_t* begin,
                                       size_t* len) const {
  // Balanced split: the first (bits % m) substrings get one extra bit.
  const size_t base = code_bits_ / m_;
  const size_t extra = code_bits_ % m_;
  *begin = j * base + std::min(j, extra);
  *len = base + (j < extra ? 1 : 0);
}

Status MultiIndexHashing::Add(ItemId id, const BinaryCode& code) {
  if (code.empty()) return Status::InvalidArgument("empty code");
  if (m_ == 0 || m_ > code.size()) {
    return Status::InvalidArgument("invalid substring count");
  }
  if (code_bits_ == 0) {
    code_bits_ = code.size();
    if ((code_bits_ + m_ - 1) / m_ > 64) {
      return Status::InvalidArgument("substrings longer than 64 bits");
    }
    tables_.resize(m_);
  }
  if (code.size() != code_bits_) {
    return Status::InvalidArgument("code length mismatch");
  }
  const uint32_t pos = static_cast<uint32_t>(ids_.size());
  ids_.push_back(id);
  codes_.push_back(code);
  for (size_t j = 0; j < m_; ++j) {
    size_t begin, len;
    SubstringRange(j, &begin, &len);
    const uint64_t key = code.Substring(begin, len).LowWord();
    tables_[j][key].push_back(pos);
  }
  return Status::OK();
}

std::vector<SearchResult> MultiIndexHashing::SearchSubstrings(
    const BinaryCode& query, uint32_t radius, const CandidateSet* allowed,
    SearchStats* stats) const {
  SearchStats local;
  std::vector<SearchResult> out;
  if (codes_.empty()) {
    if (stats != nullptr) *stats = local;
    return out;
  }
  // Pigeonhole: ham(a, b) <= r implies some substring differs by at most
  // floor(r / m).
  const uint32_t sub_radius = radius / static_cast<uint32_t>(m_);

  auto verify = [&](size_t pos) {
    if (allowed != nullptr && !allowed->Contains(ids_[pos])) return;
    const uint32_t d =
        static_cast<uint32_t>(codes_[pos].HammingDistance(query));
    if (d <= radius) out.push_back({ids_[pos], d});
  };

  // Adaptive fallback (same idea as HammingHashTable::RadiusSearch): when
  // the mask enumeration would probe more keys than there are stored codes,
  // a direct scan is strictly cheaper.  Without this cap, large radii on
  // long substrings explode combinatorially (C(32, r/m) probes each).
  size_t max_len = 0;
  for (size_t j = 0; j < m_; ++j) {
    size_t begin, len;
    SubstringRange(j, &begin, &len);
    max_len = std::max(max_len, len);
  }
  const size_t probes_per_table =
      HammingHashTable::ProbeCount(max_len, sub_radius);
  if (probes_per_table == SIZE_MAX ||
      probes_per_table > codes_.size() + 1) {
    for (size_t pos = 0; pos < codes_.size(); ++pos) {
      ++local.candidates;
      verify(pos);
    }
    local.buckets_probed = codes_.size();
    std::sort(out.begin(), out.end(), ResultLess);
    local.results = out.size();
    if (stats != nullptr) *stats = local;
    return out;
  }

  std::vector<bool> seen(codes_.size(), false);
  for (size_t j = 0; j < m_; ++j) {
    size_t begin, len;
    SubstringRange(j, &begin, &len);
    const uint64_t key = query.Substring(begin, len).LowWord();
    EnumerateWithinRadius64(key, len, sub_radius, [&](uint64_t probe) {
      ++local.buckets_probed;
      auto it = tables_[j].find(probe);
      if (it == tables_[j].end()) return;
      for (uint32_t pos : it->second) {
        if (seen[pos]) continue;
        seen[pos] = true;
        ++local.candidates;
        verify(pos);
      }
    });
  }
  std::sort(out.begin(), out.end(), ResultLess);
  local.results = out.size();
  if (stats != nullptr) *stats = local;
  return out;
}

std::vector<SearchResult> MultiIndexHashing::RadiusSearch(
    const BinaryCode& query, uint32_t radius, SearchStats* stats) const {
  return SearchSubstrings(query, radius, /*allowed=*/nullptr, stats);
}

std::vector<SearchResult> MultiIndexHashing::RadiusSearchIn(
    const BinaryCode& query, uint32_t radius, const CandidateSet& allowed,
    SearchStats* stats) const {
  return SearchSubstrings(query, radius, &allowed, stats);
}

std::vector<SearchResult> MultiIndexHashing::KnnSearchIn(
    const BinaryCode& query, size_t k, const CandidateSet& allowed,
    SearchStats* stats) const {
  std::vector<SearchResult> out;
  SearchStats local;
  if (k > 0) {
    // Same whole-substring-radius expansion as KnnSearch, over the
    // restricted search; the allowlist size bounds the retrievable set.
    for (uint32_t radius = static_cast<uint32_t>(m_) - 1;
         radius <= code_bits_ + m_; radius += static_cast<uint32_t>(m_)) {
      SearchStats step;
      const uint32_t capped =
          std::min<uint32_t>(radius, static_cast<uint32_t>(code_bits_));
      out = SearchSubstrings(query, capped, &allowed, &step);
      local.buckets_probed += step.buckets_probed;
      local.candidates += step.candidates;
      if (out.size() >= k || out.size() == allowed.size() ||
          capped == code_bits_) {
        break;
      }
    }
  }
  if (out.size() > k) out.resize(k);
  local.results = out.size();
  if (stats != nullptr) *stats = local;
  return out;
}

namespace {

/// Lazy substring-ring deepening over the multi-index tables.  Sub-ring
/// s probes every table at sub-distance exactly s; each newly seen
/// candidate is verified against the full code once and parked in a
/// (distance, id) min-heap.  The pigeonhole argument releases hits
/// incrementally: after sub-ring s completes, any code at full distance
/// D <= m*(s+1)-1 has some substring within distance floor(D/m) <= s of
/// the query's, so it has been seen — everything parked at or below
/// that bound is final.  Mirrors the eager path's verified-scan
/// fallback when the enumeration would out-probe the stored codes.
class SubRingFrontier : public HitFrontier {
 public:
  using Table = std::unordered_map<uint64_t, std::vector<uint32_t>>;

  SubRingFrontier(const std::vector<Table>* tables,
                  const std::vector<ItemId>* ids,
                  const std::vector<BinaryCode>* codes, size_t m,
                  std::vector<std::pair<size_t, size_t>> ranges,
                  std::vector<uint64_t> keys, const BinaryCode& query,
                  uint32_t max_d, const CandidateSet* allowed)
      : tables_(tables),
        ids_(ids),
        codes_(codes),
        m_(m),
        ranges_(std::move(ranges)),
        keys_(std::move(keys)),
        query_(query),
        max_d_(max_d),
        allowed_(allowed),
        seen_(codes->size(), false) {
    for (const auto& [begin, len] : ranges_) {
      max_len_ = std::max(max_len_, len);
    }
  }

  size_t Next(size_t n, std::vector<SearchResult>* out) override {
    size_t produced = 0;
    while (produced < n) {
      if (!pending_.empty() &&
          (done_deepening_ ||
           static_cast<int64_t>(pending_.top().distance) <= safe_bound_)) {
        out->push_back(pending_.top());
        pending_.pop();
        ++produced;
        continue;
      }
      if (done_deepening_) break;  // pending drained: exhausted
      DeepenOneSubRing();
    }
    return produced;
  }

 private:
  void DeepenOneSubRing() {
    if (seen_count_ == codes_->size() ||
        s_ > static_cast<uint32_t>(max_len_)) {
      done_deepening_ = true;
      return;
    }
    const size_t probes = HammingHashTable::ProbeCount(max_len_, s_);
    if (probes == SIZE_MAX || probes > codes_->size() + 1) {
      // Verified scan of everything not yet seen; completes discovery.
      for (size_t pos = 0; pos < codes_->size(); ++pos) {
        if (seen_[pos]) continue;
        seen_[pos] = true;
        ++seen_count_;
        Verify(pos);
      }
      done_deepening_ = true;
      return;
    }
    for (size_t j = 0; j < m_; ++j) {
      const auto [begin, len] = ranges_[j];
      if (s_ > len) continue;
      EnumerateExactRing64(keys_[j], len, s_, [&](uint64_t probe) {
        auto it = (*tables_)[j].find(probe);
        if (it == (*tables_)[j].end()) return;
        for (uint32_t pos : it->second) {
          if (seen_[pos]) continue;
          seen_[pos] = true;
          ++seen_count_;
          Verify(pos);
        }
      });
    }
    safe_bound_ = static_cast<int64_t>(m_) * (s_ + 1) - 1;
    ++s_;
  }

  void Verify(size_t pos) {
    if (allowed_ != nullptr && !allowed_->Contains((*ids_)[pos])) return;
    const uint32_t d =
        static_cast<uint32_t>((*codes_)[pos].HammingDistance(query_));
    if (d <= max_d_) pending_.push({(*ids_)[pos], d});
  }

  const std::vector<Table>* tables_;
  const std::vector<ItemId>* ids_;
  const std::vector<BinaryCode>* codes_;
  const size_t m_;
  const std::vector<std::pair<size_t, size_t>> ranges_;  ///< (begin, len)
  const std::vector<uint64_t> keys_;  ///< query's per-table substring keys
  const BinaryCode query_;
  const uint32_t max_d_;
  const CandidateSet* allowed_;

  size_t max_len_ = 0;
  std::vector<bool> seen_;
  size_t seen_count_ = 0;
  uint32_t s_ = 0;          ///< next sub-ring depth
  int64_t safe_bound_ = -1; ///< full distances proven complete so far
  bool done_deepening_ = false;
  std::priority_queue<SearchResult, std::vector<SearchResult>, ResultGreater>
      pending_;
};

}  // namespace

std::unique_ptr<HitFrontier> MultiIndexHashing::OpenFrontier(
    const BinaryCode& query, const FrontierOptions& options) const {
  if (codes_.empty()) {
    return std::make_unique<MaterializedFrontier>(std::vector<SearchResult>{});
  }
  const uint32_t max_d =
      options.radius.has_value()
          ? std::min<uint32_t>(*options.radius,
                               static_cast<uint32_t>(code_bits_))
          : static_cast<uint32_t>(code_bits_);
  std::vector<std::pair<size_t, size_t>> ranges(m_);
  std::vector<uint64_t> keys(m_);
  for (size_t j = 0; j < m_; ++j) {
    SubstringRange(j, &ranges[j].first, &ranges[j].second);
    keys[j] = query.Substring(ranges[j].first, ranges[j].second).LowWord();
  }
  return std::make_unique<SubRingFrontier>(&tables_, &ids_, &codes_, m_,
                                           std::move(ranges), std::move(keys),
                                           query, max_d, options.allowed);
}

std::vector<SearchResult> MultiIndexHashing::KnnSearch(
    const BinaryCode& query, size_t k, SearchStats* stats) const {
  std::vector<SearchResult> out;
  SearchStats local;
  // Expand by whole substring-radius steps (radius grows by m each step,
  // the granularity at which the candidate set changes).
  for (uint32_t radius = static_cast<uint32_t>(m_) - 1; radius <= code_bits_ + m_;
       radius += static_cast<uint32_t>(m_)) {
    SearchStats step;
    const uint32_t capped =
        std::min<uint32_t>(radius, static_cast<uint32_t>(code_bits_));
    out = RadiusSearch(query, capped, &step);
    local.buckets_probed += step.buckets_probed;
    local.candidates += step.candidates;
    if (out.size() >= k || out.size() == codes_.size() ||
        capped == code_bits_) {
      break;
    }
  }
  if (out.size() > k) out.resize(k);
  local.results = out.size();
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace agoraeo::index
