#include "index/hamming_index.h"

#include <algorithm>

#include "index/batch_util.h"
#include "index/frontier.h"

namespace agoraeo::index {

bool ResultLess(const SearchResult& a, const SearchResult& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  return a.id < b.id;
}

CandidateSet::CandidateSet(std::vector<ItemId> ids) : ids_(std::move(ids)) {
  std::sort(ids_.begin(), ids_.end());
  ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
}

bool CandidateSet::Contains(ItemId id) const {
  return std::binary_search(ids_.begin(), ids_.end(), id);
}

std::vector<SearchResult> MergeHitLists(
    std::vector<std::vector<SearchResult>>* lists, size_t k) {
  std::vector<SearchResult> merged;
  for (std::vector<SearchResult>& hits : *lists) {
    if (hits.empty()) continue;
    if (merged.empty()) {
      merged = std::move(hits);
      continue;
    }
    std::vector<SearchResult> next;
    next.reserve(merged.size() + hits.size());
    std::merge(merged.begin(), merged.end(), hits.begin(), hits.end(),
               std::back_inserter(next), ResultLess);
    merged = std::move(next);
  }
  if (k != 0 && merged.size() > k) merged.resize(k);
  return merged;
}

Status HammingIndex::BatchAdd(const std::vector<ItemId>& ids,
                              const std::vector<BinaryCode>& codes,
                              ThreadPool* /*pool*/) {
  if (ids.size() != codes.size()) {
    return Status::InvalidArgument("BatchAdd ids/codes length mismatch");
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    AGORAEO_RETURN_IF_ERROR(Add(ids[i], codes[i]));
  }
  return Status::OK();
}

std::vector<SearchResult> HammingIndex::RadiusSearchIn(
    const BinaryCode& query, uint32_t radius, const CandidateSet& allowed,
    SearchStats* stats) const {
  std::vector<SearchResult> out = RadiusSearch(query, radius, stats);
  out.erase(std::remove_if(out.begin(), out.end(),
                           [&](const SearchResult& r) {
                             return !allowed.Contains(r.id);
                           }),
            out.end());
  if (stats != nullptr) stats->results = out.size();
  return out;
}

std::vector<SearchResult> HammingIndex::KnnSearchIn(
    const BinaryCode& query, size_t k, const CandidateSet& allowed,
    SearchStats* stats) const {
  // Rank everything, keep the first k allowed.  Exact but unbounded;
  // implementations override with restricted traversals.
  std::vector<SearchResult> all = KnnSearch(query, size(), stats);
  std::vector<SearchResult> out;
  out.reserve(std::min(k, allowed.size()));
  for (const SearchResult& r : all) {
    if (out.size() >= k) break;
    if (allowed.Contains(r.id)) out.push_back(r);
  }
  if (stats != nullptr) stats->results = out.size();
  return out;
}

std::unique_ptr<HitFrontier> HammingIndex::OpenFrontier(
    const BinaryCode& query, const FrontierOptions& options) const {
  // Materialise the eager search — always correct, never lazy.  A
  // full-ranked frontier over an empty index is empty (KnnSearch(0)
  // would also be, but skip the call for clarity).
  std::vector<SearchResult> hits;
  if (options.radius.has_value()) {
    hits = options.allowed != nullptr
               ? RadiusSearchIn(query, *options.radius, *options.allowed)
               : RadiusSearch(query, *options.radius);
  } else if (size() > 0) {
    hits = options.allowed != nullptr
               ? KnnSearchIn(query, size(), *options.allowed)
               : KnnSearch(query, size());
  }
  return std::make_unique<MaterializedFrontier>(std::move(hits));
}

std::vector<std::vector<SearchResult>> HammingIndex::BatchRadiusSearch(
    const std::vector<BinaryCode>& queries, uint32_t radius, ThreadPool* pool,
    std::vector<SearchStats>* stats) const {
  std::vector<std::vector<SearchResult>> out(queries.size());
  if (stats != nullptr) stats->assign(queries.size(), SearchStats{});
  RunSharded(queries.size(), pool, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      out[i] = RadiusSearch(queries[i], radius,
                            stats != nullptr ? &(*stats)[i] : nullptr);
    }
  });
  return out;
}

std::vector<std::vector<SearchResult>> HammingIndex::BatchKnnSearch(
    const std::vector<BinaryCode>& queries, size_t k, ThreadPool* pool,
    std::vector<SearchStats>* stats) const {
  std::vector<std::vector<SearchResult>> out(queries.size());
  if (stats != nullptr) stats->assign(queries.size(), SearchStats{});
  RunSharded(queries.size(), pool, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      out[i] = KnnSearch(queries[i], k,
                         stats != nullptr ? &(*stats)[i] : nullptr);
    }
  });
  return out;
}

std::vector<std::vector<SearchResult>> HammingIndex::BatchRadiusSearchIn(
    const std::vector<BinaryCode>& queries, uint32_t radius,
    const CandidateSet& allowed, ThreadPool* pool,
    std::vector<SearchStats>* stats) const {
  std::vector<std::vector<SearchResult>> out(queries.size());
  if (stats != nullptr) stats->assign(queries.size(), SearchStats{});
  RunSharded(queries.size(), pool, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      out[i] = RadiusSearchIn(queries[i], radius, allowed,
                              stats != nullptr ? &(*stats)[i] : nullptr);
    }
  });
  return out;
}

std::vector<std::vector<SearchResult>> HammingIndex::BatchKnnSearchIn(
    const std::vector<BinaryCode>& queries, size_t k,
    const CandidateSet& allowed, ThreadPool* pool,
    std::vector<SearchStats>* stats) const {
  std::vector<std::vector<SearchResult>> out(queries.size());
  if (stats != nullptr) stats->assign(queries.size(), SearchStats{});
  RunSharded(queries.size(), pool, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      out[i] = KnnSearchIn(queries[i], k, allowed,
                           stats != nullptr ? &(*stats)[i] : nullptr);
    }
  });
  return out;
}

}  // namespace agoraeo::index
