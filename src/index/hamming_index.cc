#include "index/hamming_index.h"

#include "index/batch_util.h"

namespace agoraeo::index {

bool ResultLess(const SearchResult& a, const SearchResult& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  return a.id < b.id;
}

std::vector<std::vector<SearchResult>> HammingIndex::BatchRadiusSearch(
    const std::vector<BinaryCode>& queries, uint32_t radius, ThreadPool* pool,
    std::vector<SearchStats>* stats) const {
  std::vector<std::vector<SearchResult>> out(queries.size());
  if (stats != nullptr) stats->assign(queries.size(), SearchStats{});
  RunSharded(queries.size(), pool, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      out[i] = RadiusSearch(queries[i], radius,
                            stats != nullptr ? &(*stats)[i] : nullptr);
    }
  });
  return out;
}

std::vector<std::vector<SearchResult>> HammingIndex::BatchKnnSearch(
    const std::vector<BinaryCode>& queries, size_t k, ThreadPool* pool,
    std::vector<SearchStats>* stats) const {
  std::vector<std::vector<SearchResult>> out(queries.size());
  if (stats != nullptr) stats->assign(queries.size(), SearchStats{});
  RunSharded(queries.size(), pool, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      out[i] = KnnSearch(queries[i], k,
                         stats != nullptr ? &(*stats)[i] : nullptr);
    }
  });
  return out;
}

}  // namespace agoraeo::index
