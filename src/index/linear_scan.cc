#include "index/linear_scan.h"

#include <algorithm>
#include <cassert>
#include <queue>

namespace agoraeo::index {

bool ResultLess(const SearchResult& a, const SearchResult& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  return a.id < b.id;
}

Status LinearScanIndex::Add(ItemId id, const BinaryCode& code) {
  if (code.empty()) return Status::InvalidArgument("empty code");
  if (code_bits_ == 0) code_bits_ = code.size();
  if (code.size() != code_bits_) {
    return Status::InvalidArgument("code length mismatch");
  }
  ids_.push_back(id);
  codes_.push_back(code);
  return Status::OK();
}

std::vector<SearchResult> LinearScanIndex::RadiusSearch(
    const BinaryCode& query, uint32_t radius, SearchStats* stats) const {
  std::vector<SearchResult> out;
  for (size_t i = 0; i < codes_.size(); ++i) {
    const uint32_t d = static_cast<uint32_t>(codes_[i].HammingDistance(query));
    if (d <= radius) out.push_back({ids_[i], d});
  }
  std::sort(out.begin(), out.end(), ResultLess);
  if (stats != nullptr) {
    stats->buckets_probed = 0;
    stats->candidates = codes_.size();
    stats->results = out.size();
  }
  return out;
}

std::vector<SearchResult> LinearScanIndex::KnnSearch(const BinaryCode& query,
                                                     size_t k,
                                                     SearchStats* stats) const {
  // Max-heap of the best k; comparator keeps the *worst* on top.
  auto worse = [](const SearchResult& a, const SearchResult& b) {
    return ResultLess(a, b);
  };
  std::priority_queue<SearchResult, std::vector<SearchResult>, decltype(worse)>
      heap(worse);
  for (size_t i = 0; i < codes_.size(); ++i) {
    const uint32_t d = static_cast<uint32_t>(codes_[i].HammingDistance(query));
    if (heap.size() < k) {
      heap.push({ids_[i], d});
    } else if (!heap.empty() &&
               ResultLess({ids_[i], d}, heap.top())) {
      heap.pop();
      heap.push({ids_[i], d});
    }
  }
  std::vector<SearchResult> out;
  out.reserve(heap.size());
  while (!heap.empty()) {
    out.push_back(heap.top());
    heap.pop();
  }
  std::reverse(out.begin(), out.end());
  if (stats != nullptr) {
    stats->buckets_probed = 0;
    stats->candidates = codes_.size();
    stats->results = out.size();
  }
  return out;
}

void FloatLinearScan::Add(ItemId id, const Tensor& vec) {
  assert(vec.size() == dim_);
  ids_.push_back(id);
  data_.insert(data_.end(), vec.data(), vec.data() + vec.size());
}

std::vector<FloatSearchResult> FloatLinearScan::KnnSearch(const Tensor& query,
                                                          size_t k) const {
  assert(query.size() == dim_);
  auto worse = [](const FloatSearchResult& a, const FloatSearchResult& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.id < b.id;
  };
  std::priority_queue<FloatSearchResult, std::vector<FloatSearchResult>,
                      decltype(worse)>
      heap(worse);
  const float* q = query.data();
  for (size_t i = 0; i < ids_.size(); ++i) {
    const float* row = data_.data() + i * dim_;
    float acc = 0.0f;
    for (size_t j = 0; j < dim_; ++j) {
      const float d = row[j] - q[j];
      acc += d * d;
    }
    if (heap.size() < k) {
      heap.push({ids_[i], acc});
    } else if (!heap.empty() && worse({ids_[i], acc}, heap.top())) {
      heap.pop();
      heap.push({ids_[i], acc});
    }
  }
  std::vector<FloatSearchResult> out;
  out.reserve(heap.size());
  while (!heap.empty()) {
    out.push_back(heap.top());
    heap.pop();
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace agoraeo::index
