#include "index/linear_scan.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <queue>

#include "common/thread_pool.h"
#include "index/batch_util.h"

namespace agoraeo::index {

Status LinearScanIndex::Add(ItemId id, const BinaryCode& code) {
  if (code.empty()) return Status::InvalidArgument("empty code");
  if (code_bits_ == 0) {
    code_bits_ = code.size();
    words_per_code_ = code.words().size();
  }
  if (code.size() != code_bits_) {
    return Status::InvalidArgument("code length mismatch");
  }
  pos_by_id_.emplace(id, ids_.size());
  ids_.push_back(id);
  codes_.push_back(code);
  flat_words_.insert(flat_words_.end(), code.words().begin(),
                     code.words().end());
  return Status::OK();
}

Status LinearScanIndex::BatchAdd(const std::vector<ItemId>& ids,
                                 const std::vector<BinaryCode>& codes,
                                 ThreadPool* /*pool*/) {
  if (ids.size() != codes.size()) {
    return Status::InvalidArgument("BatchAdd ids/codes length mismatch");
  }
  ids_.reserve(ids_.size() + ids.size());
  codes_.reserve(codes_.size() + codes.size());
  pos_by_id_.reserve(pos_by_id_.size() + ids.size());
  if (!codes.empty()) {
    flat_words_.reserve(flat_words_.size() +
                        codes.size() * codes.front().words().size());
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    AGORAEO_RETURN_IF_ERROR(Add(ids[i], codes[i]));
  }
  return Status::OK();
}

std::vector<SearchResult> LinearScanIndex::RadiusSearch(
    const BinaryCode& query, uint32_t radius, SearchStats* stats) const {
  std::vector<SearchResult> out;
  for (size_t i = 0; i < codes_.size(); ++i) {
    const uint32_t d = static_cast<uint32_t>(codes_[i].HammingDistance(query));
    if (d <= radius) out.push_back({ids_[i], d});
  }
  std::sort(out.begin(), out.end(), ResultLess);
  if (stats != nullptr) {
    stats->buckets_probed = 0;
    stats->candidates = codes_.size();
    stats->results = out.size();
  }
  return out;
}

std::vector<SearchResult> LinearScanIndex::KnnSearch(const BinaryCode& query,
                                                     size_t k,
                                                     SearchStats* stats) const {
  // Max-heap of the best k; comparator keeps the *worst* on top.
  auto worse = [](const SearchResult& a, const SearchResult& b) {
    return ResultLess(a, b);
  };
  std::priority_queue<SearchResult, std::vector<SearchResult>, decltype(worse)>
      heap(worse);
  for (size_t i = 0; i < codes_.size(); ++i) {
    const uint32_t d = static_cast<uint32_t>(codes_[i].HammingDistance(query));
    if (heap.size() < k) {
      heap.push({ids_[i], d});
    } else if (!heap.empty() &&
               ResultLess({ids_[i], d}, heap.top())) {
      heap.pop();
      heap.push({ids_[i], d});
    }
  }
  std::vector<SearchResult> out;
  out.reserve(heap.size());
  while (!heap.empty()) {
    out.push_back(heap.top());
    heap.pop();
  }
  std::reverse(out.begin(), out.end());
  if (stats != nullptr) {
    stats->buckets_probed = 0;
    stats->candidates = codes_.size();
    stats->results = out.size();
  }
  return out;
}

namespace {

/// Codes per block of the batched scans.  256 codes of 128 bits are
/// 4 KiB of payload — comfortably L1-resident while a shard's queries
/// take turns against the block.
constexpr size_t kCodeBlock = 256;

/// Hamming distance over flat word rows with a cutoff: once the partial
/// distance exceeds `bound` the exact value no longer matters (the
/// caller discards anything beyond it), so remaining words are skipped.
/// For 128-bit codes at radius ~8 most candidates exceed the bound in
/// the first word, nearly halving the scan work.
inline uint32_t BoundedHamming(const uint64_t* a, const uint64_t* b,
                               size_t wpc, uint32_t bound) {
  uint32_t d = 0;
  for (size_t w = 0; w < wpc; ++w) {
    d += static_cast<uint32_t>(PopcountWord(a[w] ^ b[w]));
    if (d > bound) return d;
  }
  return d;
}

}  // namespace

void LinearScanIndex::BlockedRadiusShard(
    const std::vector<BinaryCode>& queries, size_t query_begin,
    size_t query_end, uint32_t radius,
    std::vector<std::vector<SearchResult>>* out,
    std::vector<SearchStats>* stats) const {
  const size_t wpc = words_per_code_;
  for (size_t block = 0; block < codes_.size(); block += kCodeBlock) {
    const size_t block_end = std::min(codes_.size(), block + kCodeBlock);
    for (size_t q = query_begin; q < query_end; ++q) {
      const uint64_t* qw = queries[q].words().data();
      std::vector<SearchResult>& hits = (*out)[q];
      const uint64_t* row = flat_words_.data() + block * wpc;
      for (size_t i = block; i < block_end; ++i, row += wpc) {
        const uint32_t d = BoundedHamming(row, qw, wpc, radius);
        if (d <= radius) hits.push_back({ids_[i], d});
      }
    }
  }
  for (size_t q = query_begin; q < query_end; ++q) {
    std::sort((*out)[q].begin(), (*out)[q].end(), ResultLess);
    if (stats != nullptr) {
      (*stats)[q].candidates = codes_.size();
      (*stats)[q].results = (*out)[q].size();
    }
  }
}

void LinearScanIndex::BlockedKnnShard(
    const std::vector<BinaryCode>& queries, size_t query_begin,
    size_t query_end, size_t k, std::vector<std::vector<SearchResult>>* out,
    std::vector<SearchStats>* stats) const {
  if (k == 0) {
    if (stats != nullptr) {
      for (size_t q = query_begin; q < query_end; ++q) {
        (*stats)[q].candidates = codes_.size();
      }
    }
    return;
  }
  // One sorted top-k buffer per query of the shard; the k best under
  // (distance, id) are scan-order independent, so blocking preserves the
  // single-query result exactly.
  const size_t wpc = words_per_code_;
  for (size_t block = 0; block < codes_.size(); block += kCodeBlock) {
    const size_t block_end = std::min(codes_.size(), block + kCodeBlock);
    for (size_t q = query_begin; q < query_end; ++q) {
      const uint64_t* qw = queries[q].words().data();
      std::vector<SearchResult>& best = (*out)[q];
      const uint64_t* row = flat_words_.data() + block * wpc;
      for (size_t i = block; i < block_end; ++i, row += wpc) {
        // Once the top-k buffer is full, its worst distance bounds the
        // scan: anything strictly beyond it can be cut off early.
        const uint32_t bound = best.size() < k
                                   ? static_cast<uint32_t>(code_bits_)
                                   : best.back().distance;
        const uint32_t d = BoundedHamming(row, qw, wpc, bound);
        if (d > bound) continue;
        const SearchResult candidate{ids_[i], d};
        if (best.size() < k) {
          best.insert(
              std::lower_bound(best.begin(), best.end(), candidate,
                               ResultLess),
              candidate);
        } else if (ResultLess(candidate, best.back())) {
          best.pop_back();
          best.insert(
              std::lower_bound(best.begin(), best.end(), candidate,
                               ResultLess),
              candidate);
        }
      }
    }
  }
  if (stats != nullptr) {
    for (size_t q = query_begin; q < query_end; ++q) {
      (*stats)[q].candidates = codes_.size();
      (*stats)[q].results = (*out)[q].size();
    }
  }
}

std::vector<std::vector<SearchResult>> LinearScanIndex::BatchRadiusSearch(
    const std::vector<BinaryCode>& queries, uint32_t radius, ThreadPool* pool,
    std::vector<SearchStats>* stats) const {
  std::vector<std::vector<SearchResult>> out(queries.size());
  if (stats != nullptr) stats->assign(queries.size(), SearchStats{});
  RunSharded(queries.size(), pool, [&](size_t begin, size_t end) {
    BlockedRadiusShard(queries, begin, end, radius, &out, stats);
  });
  return out;
}

std::vector<std::vector<SearchResult>> LinearScanIndex::BatchKnnSearch(
    const std::vector<BinaryCode>& queries, size_t k, ThreadPool* pool,
    std::vector<SearchStats>* stats) const {
  std::vector<std::vector<SearchResult>> out(queries.size());
  if (stats != nullptr) stats->assign(queries.size(), SearchStats{});
  RunSharded(queries.size(), pool, [&](size_t begin, size_t end) {
    BlockedKnnShard(queries, begin, end, k, &out, stats);
  });
  return out;
}

std::vector<SearchResult> LinearScanIndex::RadiusSearchIn(
    const BinaryCode& query, uint32_t radius, const CandidateSet& allowed,
    SearchStats* stats) const {
  std::vector<SearchResult> out;
  SearchStats local;
  const size_t wpc = words_per_code_;
  const uint64_t* qw = query.words().data();
  // Sparse allowlists pay |allowed| hash lookups + popcounts; dense ones
  // are cheaper as one flat scan with a sorted-membership check.
  if (allowed.size() * 4 < ids_.size()) {
    for (ItemId id : allowed.ids()) {
      auto it = pos_by_id_.find(id);
      if (it == pos_by_id_.end()) continue;
      ++local.candidates;
      const uint32_t d = BoundedHamming(
          flat_words_.data() + it->second * wpc, qw, wpc, radius);
      if (d <= radius) out.push_back({id, d});
    }
  } else {
    const uint64_t* row = flat_words_.data();
    for (size_t i = 0; i < ids_.size(); ++i, row += wpc) {
      if (!allowed.Contains(ids_[i])) continue;
      ++local.candidates;
      const uint32_t d = BoundedHamming(row, qw, wpc, radius);
      if (d <= radius) out.push_back({ids_[i], d});
    }
  }
  std::sort(out.begin(), out.end(), ResultLess);
  local.results = out.size();
  if (stats != nullptr) *stats = local;
  return out;
}

std::vector<SearchResult> LinearScanIndex::KnnSearchIn(
    const BinaryCode& query, size_t k, const CandidateSet& allowed,
    SearchStats* stats) const {
  std::vector<SearchResult> best;  // sorted top-k under (distance, id)
  SearchStats local;
  if (k == 0) {
    if (stats != nullptr) *stats = local;
    return best;
  }
  const size_t wpc = words_per_code_;
  const uint64_t* qw = query.words().data();
  auto consider = [&](ItemId id, size_t pos) {
    ++local.candidates;
    const uint32_t bound = best.size() < k
                               ? static_cast<uint32_t>(code_bits_)
                               : best.back().distance;
    const uint32_t d =
        BoundedHamming(flat_words_.data() + pos * wpc, qw, wpc, bound);
    if (d > bound) return;
    const SearchResult candidate{id, d};
    if (best.size() >= k) {
      if (!ResultLess(candidate, best.back())) return;
      best.pop_back();
    }
    best.insert(
        std::lower_bound(best.begin(), best.end(), candidate, ResultLess),
        candidate);
  };
  if (allowed.size() * 4 < ids_.size()) {
    for (ItemId id : allowed.ids()) {
      auto it = pos_by_id_.find(id);
      if (it != pos_by_id_.end()) consider(id, it->second);
    }
  } else {
    for (size_t i = 0; i < ids_.size(); ++i) {
      if (allowed.Contains(ids_[i])) consider(ids_[i], i);
    }
  }
  local.results = best.size();
  if (stats != nullptr) *stats = local;
  return best;
}

void FloatLinearScan::Add(ItemId id, const Tensor& vec) {
  assert(vec.size() == dim_);
  ids_.push_back(id);
  data_.insert(data_.end(), vec.data(), vec.data() + vec.size());
}

std::vector<FloatSearchResult> FloatLinearScan::KnnSearch(const Tensor& query,
                                                          size_t k) const {
  assert(query.size() == dim_);
  auto worse = [](const FloatSearchResult& a, const FloatSearchResult& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.id < b.id;
  };
  std::priority_queue<FloatSearchResult, std::vector<FloatSearchResult>,
                      decltype(worse)>
      heap(worse);
  const float* q = query.data();
  for (size_t i = 0; i < ids_.size(); ++i) {
    const float* row = data_.data() + i * dim_;
    float acc = 0.0f;
    for (size_t j = 0; j < dim_; ++j) {
      const float d = row[j] - q[j];
      acc += d * d;
    }
    if (heap.size() < k) {
      heap.push({ids_[i], acc});
    } else if (!heap.empty() && worse({ids_[i], acc}, heap.top())) {
      heap.pop();
      heap.push({ids_[i], acc});
    }
  }
  std::vector<FloatSearchResult> out;
  out.reserve(heap.size());
  while (!heap.empty()) {
    out.push_back(heap.top());
    heap.pop();
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace agoraeo::index
