#include "index/linear_scan.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <functional>
#include <queue>

#include "common/thread_pool.h"
#include "index/batch_util.h"
#include "index/frontier.h"

namespace agoraeo::index {

Status LinearScanIndex::Add(ItemId id, const BinaryCode& code) {
  if (code.empty()) return Status::InvalidArgument("empty code");
  if (code_bits_ == 0) {
    code_bits_ = code.size();
    words_per_code_ = code.words().size();
    stride_ = simd::PaddedStride(words_per_code_);
  }
  if (code.size() != code_bits_) {
    return Status::InvalidArgument("code length mismatch");
  }
  pos_by_id_.emplace(id, ids_.size());
  ids_.push_back(id);
  flat_words_.insert(flat_words_.end(), code.words().begin(),
                     code.words().end());
  flat_words_.resize(flat_words_.size() + (stride_ - words_per_code_), 0);
  return Status::OK();
}

Status LinearScanIndex::BatchAdd(const std::vector<ItemId>& ids,
                                 const std::vector<BinaryCode>& codes,
                                 ThreadPool* /*pool*/) {
  if (ids.size() != codes.size()) {
    return Status::InvalidArgument("BatchAdd ids/codes length mismatch");
  }
  // Validate the whole batch before reserving or mutating anything: a
  // mixed-width batch must leave the index unchanged, not fail halfway
  // through with the first codes already added.
  const size_t expect_bits =
      code_bits_ != 0 ? code_bits_ : (codes.empty() ? 0 : codes.front().size());
  for (const BinaryCode& code : codes) {
    if (code.empty()) return Status::InvalidArgument("empty code");
    if (code.size() != expect_bits) {
      return Status::InvalidArgument("BatchAdd code length mismatch");
    }
  }
  ids_.reserve(ids_.size() + ids.size());
  pos_by_id_.reserve(pos_by_id_.size() + ids.size());
  if (!codes.empty()) {
    const size_t stride = stride_ != 0
                              ? stride_
                              : simd::PaddedStride(codes.front().words().size());
    flat_words_.reserve(flat_words_.size() + codes.size() * stride);
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    AGORAEO_RETURN_IF_ERROR(Add(ids[i], codes[i]));
  }
  return Status::OK();
}

namespace {

/// Codes per block of every kernel scan.  256 codes of 128 bits are
/// 4 KiB of payload — comfortably L1-resident while a shard's queries
/// take turns against the block — and 256 distances fit one stack
/// buffer handed to the kernel.
constexpr size_t kCodeBlock = 256;

/// Widens queries [begin, end) to the row stride with zero tails (zero
/// XOR zero contributes nothing), row-major in one aligned buffer, so
/// each kernel call reads a pattern shaped exactly like the rows.
simd::AlignedWordBuffer PadQueries(const std::vector<BinaryCode>& queries,
                                   size_t begin, size_t end, size_t stride) {
  simd::AlignedWordBuffer padded((end - begin) * stride, 0);
  for (size_t q = begin; q < end; ++q) {
    const std::vector<uint64_t>& words = queries[q].words();
    std::copy(words.begin(), words.end(),
              padded.begin() + (q - begin) * stride);
  }
  return padded;
}

/// Sorted-insert into a top-k buffer ordered by (distance, id).  The
/// buffer's worst element bounds admission once full, which preserves
/// the exact single-query result under any scan order.
inline void TopKInsert(std::vector<SearchResult>* best, size_t k,
                       const SearchResult& candidate) {
  if (best->size() >= k) {
    if (!ResultLess(candidate, best->back())) return;
    best->pop_back();
  }
  best->insert(
      std::lower_bound(best->begin(), best->end(), candidate, ResultLess),
      candidate);
}

}  // namespace

std::vector<SearchResult> LinearScanIndex::RadiusSearch(
    const BinaryCode& query, uint32_t radius, SearchStats* stats) const {
  std::vector<SearchResult> out;
  if (!ids_.empty()) {
    assert(query.words().size() == words_per_code_);
    const simd::HammingKernel* kernel = simd::ActiveKernel();
    simd::CountDispatch(kernel);
    simd::AlignedWordBuffer qpad(stride_, 0);
    std::copy(query.words().begin(), query.words().end(), qpad.begin());
    alignas(64) uint32_t dist[kCodeBlock];
    for (size_t block = 0; block < ids_.size(); block += kCodeBlock) {
      const size_t count = std::min(ids_.size() - block, kCodeBlock);
      kernel->batch(flat_words_.data() + block * stride_, count, stride_,
                    qpad.data(), dist);
      for (size_t j = 0; j < count; ++j) {
        if (dist[j] <= radius) out.push_back({ids_[block + j], dist[j]});
      }
    }
  }
  std::sort(out.begin(), out.end(), ResultLess);
  if (stats != nullptr) {
    stats->buckets_probed = 0;
    stats->candidates = ids_.size();
    stats->results = out.size();
  }
  return out;
}

std::vector<SearchResult> LinearScanIndex::KnnSearch(const BinaryCode& query,
                                                     size_t k,
                                                     SearchStats* stats) const {
  std::vector<SearchResult> best;
  if (k != 0 && !ids_.empty()) {
    assert(query.words().size() == words_per_code_);
    const simd::HammingKernel* kernel = simd::ActiveKernel();
    simd::CountDispatch(kernel);
    simd::AlignedWordBuffer qpad(stride_, 0);
    std::copy(query.words().begin(), query.words().end(), qpad.begin());
    alignas(64) uint32_t dist[kCodeBlock];
    for (size_t block = 0; block < ids_.size(); block += kCodeBlock) {
      const size_t count = std::min(ids_.size() - block, kCodeBlock);
      kernel->batch(flat_words_.data() + block * stride_, count, stride_,
                    qpad.data(), dist);
      for (size_t j = 0; j < count; ++j) {
        TopKInsert(&best, k, {ids_[block + j], dist[j]});
      }
    }
  }
  if (stats != nullptr) {
    stats->buckets_probed = 0;
    stats->candidates = ids_.size();
    stats->results = best.size();
  }
  return best;
}

void LinearScanIndex::BlockedRadiusShard(
    const std::vector<BinaryCode>& queries, size_t query_begin,
    size_t query_end, uint32_t radius, const simd::HammingKernel* kernel,
    std::vector<std::vector<SearchResult>>* out,
    std::vector<SearchStats>* stats) const {
  const simd::AlignedWordBuffer padded =
      PadQueries(queries, query_begin, query_end, stride_);
  alignas(64) uint32_t dist[kCodeBlock];
  for (size_t block = 0; block < ids_.size(); block += kCodeBlock) {
    const size_t count = std::min(ids_.size() - block, kCodeBlock);
    const uint64_t* rows = flat_words_.data() + block * stride_;
    for (size_t q = query_begin; q < query_end; ++q) {
      kernel->batch(rows, count, stride_,
                    padded.data() + (q - query_begin) * stride_, dist);
      std::vector<SearchResult>& hits = (*out)[q];
      for (size_t j = 0; j < count; ++j) {
        if (dist[j] <= radius) hits.push_back({ids_[block + j], dist[j]});
      }
    }
  }
  for (size_t q = query_begin; q < query_end; ++q) {
    std::sort((*out)[q].begin(), (*out)[q].end(), ResultLess);
    if (stats != nullptr) {
      (*stats)[q].candidates = ids_.size();
      (*stats)[q].results = (*out)[q].size();
    }
  }
}

void LinearScanIndex::BlockedKnnShard(
    const std::vector<BinaryCode>& queries, size_t query_begin,
    size_t query_end, size_t k, const simd::HammingKernel* kernel,
    std::vector<std::vector<SearchResult>>* out,
    std::vector<SearchStats>* stats) const {
  if (k == 0) {
    if (stats != nullptr) {
      for (size_t q = query_begin; q < query_end; ++q) {
        (*stats)[q].candidates = ids_.size();
      }
    }
    return;
  }
  const simd::AlignedWordBuffer padded =
      PadQueries(queries, query_begin, query_end, stride_);
  alignas(64) uint32_t dist[kCodeBlock];
  for (size_t block = 0; block < ids_.size(); block += kCodeBlock) {
    const size_t count = std::min(ids_.size() - block, kCodeBlock);
    const uint64_t* rows = flat_words_.data() + block * stride_;
    for (size_t q = query_begin; q < query_end; ++q) {
      kernel->batch(rows, count, stride_,
                    padded.data() + (q - query_begin) * stride_, dist);
      std::vector<SearchResult>& best = (*out)[q];
      for (size_t j = 0; j < count; ++j) {
        TopKInsert(&best, k, {ids_[block + j], dist[j]});
      }
    }
  }
  if (stats != nullptr) {
    for (size_t q = query_begin; q < query_end; ++q) {
      (*stats)[q].candidates = ids_.size();
      (*stats)[q].results = (*out)[q].size();
    }
  }
}

std::vector<std::vector<SearchResult>> LinearScanIndex::BatchRadiusSearch(
    const std::vector<BinaryCode>& queries, uint32_t radius, ThreadPool* pool,
    std::vector<SearchStats>* stats) const {
  std::vector<std::vector<SearchResult>> out(queries.size());
  if (stats != nullptr) stats->assign(queries.size(), SearchStats{});
  const simd::HammingKernel* kernel = simd::ActiveKernel();
  if (!queries.empty() && !ids_.empty()) simd::CountDispatch(kernel);
  RunSharded(queries.size(), pool, [&](size_t begin, size_t end) {
    BlockedRadiusShard(queries, begin, end, radius, kernel, &out, stats);
  });
  return out;
}

std::vector<std::vector<SearchResult>> LinearScanIndex::BatchKnnSearch(
    const std::vector<BinaryCode>& queries, size_t k, ThreadPool* pool,
    std::vector<SearchStats>* stats) const {
  std::vector<std::vector<SearchResult>> out(queries.size());
  if (stats != nullptr) stats->assign(queries.size(), SearchStats{});
  const simd::HammingKernel* kernel = simd::ActiveKernel();
  if (!queries.empty() && !ids_.empty()) simd::CountDispatch(kernel);
  RunSharded(queries.size(), pool, [&](size_t begin, size_t end) {
    BlockedKnnShard(queries, begin, end, k, kernel, &out, stats);
  });
  return out;
}

std::vector<SearchResult> LinearScanIndex::RadiusSearchIn(
    const BinaryCode& query, uint32_t radius, const CandidateSet& allowed,
    SearchStats* stats) const {
  std::vector<SearchResult> out;
  SearchStats local;
  const size_t wpc = words_per_code_;
  const uint64_t* qw = query.words().data();
  const simd::HammingKernel* kernel = simd::ActiveKernel();
  if (!ids_.empty() && allowed.size() != 0) simd::CountDispatch(kernel);
  // Sparse allowlists pay |allowed| hash lookups + pair distances; dense
  // ones are cheaper staged through the blocked batch kernel with a
  // membership check.
  if (allowed.size() * 4 < ids_.size()) {
    for (ItemId id : allowed.ids()) {
      auto it = pos_by_id_.find(id);
      if (it == pos_by_id_.end()) continue;
      ++local.candidates;
      const uint32_t d = static_cast<uint32_t>(
          kernel->pair(flat_words_.data() + it->second * stride_, qw, wpc));
      if (d <= radius) out.push_back({id, d});
    }
  } else if (!ids_.empty()) {
    simd::AlignedWordBuffer qpad(stride_, 0);
    std::copy(query.words().begin(), query.words().end(), qpad.begin());
    // Allowed rows are gathered into a contiguous staging block so the
    // batch kernel still sees dense aligned rows despite the filter.
    simd::AlignedWordBuffer stage(kCodeBlock * stride_);
    size_t staged_rows[kCodeBlock];
    alignas(64) uint32_t dist[kCodeBlock];
    size_t count = 0;
    auto flush = [&] {
      kernel->batch(stage.data(), count, stride_, qpad.data(), dist);
      for (size_t j = 0; j < count; ++j) {
        if (dist[j] <= radius) out.push_back({ids_[staged_rows[j]], dist[j]});
      }
      count = 0;
    };
    for (size_t i = 0; i < ids_.size(); ++i) {
      if (!allowed.Contains(ids_[i])) continue;
      ++local.candidates;
      std::memcpy(stage.data() + count * stride_,
                  flat_words_.data() + i * stride_,
                  stride_ * sizeof(uint64_t));
      staged_rows[count++] = i;
      if (count == kCodeBlock) flush();
    }
    if (count > 0) flush();
  }
  std::sort(out.begin(), out.end(), ResultLess);
  local.results = out.size();
  if (stats != nullptr) *stats = local;
  return out;
}

std::vector<SearchResult> LinearScanIndex::KnnSearchIn(
    const BinaryCode& query, size_t k, const CandidateSet& allowed,
    SearchStats* stats) const {
  std::vector<SearchResult> best;  // sorted top-k under (distance, id)
  SearchStats local;
  if (k == 0) {
    if (stats != nullptr) *stats = local;
    return best;
  }
  const size_t wpc = words_per_code_;
  const uint64_t* qw = query.words().data();
  const simd::HammingKernel* kernel = simd::ActiveKernel();
  if (!ids_.empty() && allowed.size() != 0) simd::CountDispatch(kernel);
  if (allowed.size() * 4 < ids_.size()) {
    for (ItemId id : allowed.ids()) {
      auto it = pos_by_id_.find(id);
      if (it == pos_by_id_.end()) continue;
      ++local.candidates;
      const uint32_t d = static_cast<uint32_t>(
          kernel->pair(flat_words_.data() + it->second * stride_, qw, wpc));
      TopKInsert(&best, k, {id, d});
    }
  } else if (!ids_.empty()) {
    simd::AlignedWordBuffer qpad(stride_, 0);
    std::copy(query.words().begin(), query.words().end(), qpad.begin());
    simd::AlignedWordBuffer stage(kCodeBlock * stride_);
    size_t staged_rows[kCodeBlock];
    alignas(64) uint32_t dist[kCodeBlock];
    size_t count = 0;
    auto flush = [&] {
      kernel->batch(stage.data(), count, stride_, qpad.data(), dist);
      for (size_t j = 0; j < count; ++j) {
        TopKInsert(&best, k, {ids_[staged_rows[j]], dist[j]});
      }
      count = 0;
    };
    for (size_t i = 0; i < ids_.size(); ++i) {
      if (!allowed.Contains(ids_[i])) continue;
      ++local.candidates;
      std::memcpy(stage.data() + count * stride_,
                  flat_words_.data() + i * stride_,
                  stride_ * sizeof(uint64_t));
      staged_rows[count++] = i;
      if (count == kCodeBlock) flush();
    }
    if (count > 0) flush();
  }
  local.results = best.size();
  if (stats != nullptr) *stats = local;
  return best;
}

std::unique_ptr<HitFrontier> LinearScanIndex::OpenFrontier(
    const BinaryCode& query, const FrontierOptions& options) const {
  const uint32_t max_d =
      options.radius.has_value()
          ? std::min<uint32_t>(*options.radius,
                               static_cast<uint32_t>(code_bits_))
          : static_cast<uint32_t>(code_bits_);
  std::vector<std::vector<SearchResult>> buckets;
  const CandidateSet* allowed = options.allowed;
  if (!ids_.empty() && (allowed == nullptr || !allowed->empty())) {
    assert(query.words().size() == words_per_code_);
    buckets.resize(static_cast<size_t>(max_d) + 1);
    const simd::HammingKernel* kernel = simd::ActiveKernel();
    simd::CountDispatch(kernel);
    if (allowed != nullptr && allowed->size() * 4 < ids_.size()) {
      // Sparse allowlist: pair distances for just the allowed rows.
      const uint64_t* qw = query.words().data();
      for (ItemId id : allowed->ids()) {
        auto it = pos_by_id_.find(id);
        if (it == pos_by_id_.end()) continue;
        const uint32_t d = static_cast<uint32_t>(kernel->pair(
            flat_words_.data() + it->second * stride_, qw, words_per_code_));
        if (d <= max_d) buckets[d].push_back({id, d});
      }
    } else {
      simd::AlignedWordBuffer qpad(stride_, 0);
      std::copy(query.words().begin(), query.words().end(), qpad.begin());
      alignas(64) uint32_t dist[kCodeBlock];
      for (size_t block = 0; block < ids_.size(); block += kCodeBlock) {
        const size_t count = std::min(ids_.size() - block, kCodeBlock);
        kernel->batch(flat_words_.data() + block * stride_, count, stride_,
                      qpad.data(), dist);
        for (size_t j = 0; j < count; ++j) {
          if (dist[j] > max_d) continue;
          const ItemId id = ids_[block + j];
          if (allowed != nullptr && !allowed->Contains(id)) continue;
          buckets[dist[j]].push_back({id, dist[j]});
        }
      }
    }
  }
  return std::make_unique<DistanceBucketFrontier>(std::move(buckets));
}

void FloatLinearScan::Add(ItemId id, const Tensor& vec) {
  assert(vec.size() == dim_);
  ids_.push_back(id);
  data_.insert(data_.end(), vec.data(), vec.data() + vec.size());
}

std::vector<FloatSearchResult> FloatLinearScan::KnnSearch(const Tensor& query,
                                                          size_t k) const {
  assert(query.size() == dim_);
  auto worse = [](const FloatSearchResult& a, const FloatSearchResult& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.id < b.id;
  };
  std::priority_queue<FloatSearchResult, std::vector<FloatSearchResult>,
                      decltype(worse)>
      heap(worse);
  const float* q = query.data();
  for (size_t i = 0; i < ids_.size(); ++i) {
    const float* row = data_.data() + i * dim_;
    float acc = 0.0f;
    for (size_t j = 0; j < dim_; ++j) {
      const float d = row[j] - q[j];
      acc += d * d;
    }
    if (heap.size() < k) {
      heap.push({ids_[i], acc});
    } else if (!heap.empty() && worse({ids_[i], acc}, heap.top())) {
      heap.pop();
      heap.push({ids_[i], acc});
    }
  }
  std::vector<FloatSearchResult> out;
  out.reserve(heap.size());
  while (!heap.empty()) {
    out.push_back(heap.top());
    heap.pop();
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace agoraeo::index
