#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <thread>

namespace agoraeo::obs {
namespace {

/// Stable per-thread stripe pick; hashing the thread id spreads
/// closed-loop client threads across stripes well enough that the
/// record path never serialises on one cache line.
size_t ThisThreadStripe(size_t num_stripes) {
  static thread_local const size_t stripe =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return stripe % num_stripes;
}

/// Escapes a Prometheus label value (backslash, quote, newline).
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Escapes a string for use as a JSON key or string value.
std::string EscapeJson(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// The metric name with any `{label="..."}` block stripped — the name a
/// `# TYPE` line announces.
std::string BaseName(const std::string& name) {
  const size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

/// Splices an extra `key="value"` pair into a (possibly label-less)
/// metric name, optionally rewriting the base name with a suffix:
/// ("m{a=\"b\"}", "_sum") -> "m_sum{a=\"b\"}".
std::string WithSuffixAndLabel(const std::string& name,
                               const std::string& suffix,
                               const std::string& extra_label) {
  const size_t brace = name.find('{');
  std::string base = BaseName(name) + suffix;
  if (brace == std::string::npos) {
    return extra_label.empty() ? base : base + "{" + extra_label + "}";
  }
  // name ends with '}', existing labels inside.
  std::string labels = name.substr(brace + 1, name.size() - brace - 2);
  if (!extra_label.empty()) {
    labels = labels.empty() ? extra_label : labels + "," + extra_label;
  }
  return labels.empty() ? base : base + "{" + labels + "}";
}

std::string FormatDouble(double v) {
  // Integral values print without a decimal point so counter lines stay
  // stable for the golden test.
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    return std::to_string(static_cast<int64_t>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

uint64_t HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const uint64_t before = cumulative;
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) < target) continue;
    if (i >= bounds.size()) return bounds.empty() ? 0 : bounds.back();
    const uint64_t lo = i == 0 ? 0 : bounds[i - 1];
    const uint64_t hi = bounds[i];
    const double within =
        (target - static_cast<double>(before)) / static_cast<double>(buckets[i]);
    return lo + static_cast<uint64_t>((hi - lo) * std::clamp(within, 0.0, 1.0));
  }
  return bounds.empty() ? 0 : bounds.back();
}

Histogram::Histogram(uint64_t min_ns, uint64_t max_ns) {
  if (min_ns == 0) min_ns = 1;
  if (max_ns < min_ns * 2) max_ns = min_ns * 2;
  bounds_.push_back(min_ns);
  // Four linear sub-steps per octave: x1.25, x1.5, x1.75, x2 of the
  // octave base, repeated until the range is covered.
  uint64_t octave = min_ns;
  while (bounds_.back() < max_ns) {
    for (int sub = 1; sub <= 4; ++sub) {
      const uint64_t bound = octave + (octave * static_cast<uint64_t>(sub)) / 4;
      if (bound > bounds_.back()) bounds_.push_back(bound);
      if (bounds_.back() >= max_ns) break;
    }
    octave *= 2;
  }
  const size_t num_buckets = bounds_.size() + 1;  // + overflow
  for (Stripe& stripe : stripes_) {
    stripe.buckets = std::make_unique<std::atomic<uint64_t>[]>(num_buckets);
    for (size_t i = 0; i < num_buckets; ++i) {
      stripe.buckets[i].store(0, std::memory_order_relaxed);
    }
  }
}

void Histogram::Record(uint64_t value_ns) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value_ns);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());
  Stripe& stripe = stripes_[ThisThreadStripe(kStripes)];
  stripe.count.fetch_add(1, std::memory_order_relaxed);
  stripe.sum.fetch_add(value_ns, std::memory_order_relaxed);
  stripe.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.bounds = bounds_;
  snapshot.buckets.assign(bounds_.size() + 1, 0);
  for (const Stripe& stripe : stripes_) {
    snapshot.count += stripe.count.load(std::memory_order_relaxed);
    snapshot.sum += stripe.sum.load(std::memory_order_relaxed);
    for (size_t i = 0; i < snapshot.buckets.size(); ++i) {
      snapshot.buckets[i] += stripe.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return snapshot;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& entry : entries_) {
    if (entry->name == name && entry->counter) return entry->counter.get();
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->counter = std::make_unique<Counter>();
  Counter* out = entry->counter.get();
  entries_.push_back(std::move(entry));
  return out;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& entry : entries_) {
    if (entry->name == name && entry->gauge) return entry->gauge.get();
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->gauge = std::make_unique<Gauge>();
  Gauge* out = entry->gauge.get();
  entries_.push_back(std::move(entry));
  return out;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         uint64_t min_ns, uint64_t max_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& entry : entries_) {
    if (entry->name == name && entry->histogram) return entry->histogram.get();
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->histogram = std::make_unique<Histogram>(min_ns, max_ns);
  Histogram* out = entry->histogram.get();
  entries_.push_back(std::move(entry));
  return out;
}

void MetricsRegistry::AddCollector(Collector collector) {
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.push_back(std::move(collector));
}

std::string MetricsRegistry::PrometheusText() const {
  // Snapshot the entry list and collectors under the lock, render
  // outside it (collectors may take other locks).
  std::vector<const Entry*> entries;
  std::vector<Collector> collectors;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries.reserve(entries_.size());
    for (const auto& entry : entries_) entries.push_back(entry.get());
    collectors = collectors_;
  }
  std::vector<Sample> samples;
  for (const Collector& collector : collectors) collector(&samples);

  std::string out;
  std::set<std::string> announced;
  auto announce = [&](const std::string& name, const char* type) {
    const std::string base = BaseName(name);
    if (!announced.insert(base).second) return;
    out += "# TYPE " + base + " " + type + "\n";
  };
  for (const Entry* entry : entries) {
    if (entry->counter) {
      announce(entry->name, "counter");
      out += entry->name + " " + std::to_string(entry->counter->value()) + "\n";
    } else if (entry->gauge) {
      announce(entry->name, "gauge");
      out += entry->name + " " + std::to_string(entry->gauge->value()) + "\n";
    } else if (entry->histogram) {
      announce(entry->name, "summary");
      const HistogramSnapshot snapshot = entry->histogram->Snapshot();
      static constexpr struct { const char* label; double q; } kQuantiles[] = {
          {"0.5", 0.5}, {"0.9", 0.9}, {"0.99", 0.99}, {"0.999", 0.999}};
      for (const auto& quantile : kQuantiles) {
        out += WithSuffixAndLabel(
                   entry->name, "",
                   std::string("quantile=\"") + quantile.label + "\"") +
               " " + std::to_string(snapshot.Quantile(quantile.q)) + "\n";
      }
      out += WithSuffixAndLabel(entry->name, "_sum", "") + " " +
             std::to_string(snapshot.sum) + "\n";
      out += WithSuffixAndLabel(entry->name, "_count", "") + " " +
             std::to_string(snapshot.count) + "\n";
    }
  }
  for (const Sample& sample : samples) {
    announce(sample.name,
             sample.kind == SampleKind::kCounter ? "counter" : "gauge");
    out += sample.name + " " + FormatDouble(sample.value) + "\n";
  }
  return out;
}

std::string MetricsRegistry::JsonText() const {
  std::vector<const Entry*> entries;
  std::vector<Collector> collectors;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries.reserve(entries_.size());
    for (const auto& entry : entries_) entries.push_back(entry.get());
    collectors = collectors_;
  }
  std::vector<Sample> samples;
  for (const Collector& collector : collectors) collector(&samples);

  std::string out = "{";
  bool first = true;
  auto key = [&](const std::string& name) {
    if (!first) out += ",";
    first = false;
    out += "\"" + EscapeJson(name) + "\":";
  };
  for (const Entry* entry : entries) {
    key(entry->name);
    if (entry->counter) {
      out += std::to_string(entry->counter->value());
    } else if (entry->gauge) {
      out += std::to_string(entry->gauge->value());
    } else if (entry->histogram) {
      const HistogramSnapshot snapshot = entry->histogram->Snapshot();
      out += "{\"count\":" + std::to_string(snapshot.count) +
             ",\"sum_ns\":" + std::to_string(snapshot.sum) +
             ",\"mean_ns\":" + FormatDouble(snapshot.MeanNs()) +
             ",\"p50_ns\":" + std::to_string(snapshot.Quantile(0.5)) +
             ",\"p90_ns\":" + std::to_string(snapshot.Quantile(0.9)) +
             ",\"p99_ns\":" + std::to_string(snapshot.Quantile(0.99)) +
             ",\"p999_ns\":" + std::to_string(snapshot.Quantile(0.999)) + "}";
    }
  }
  for (const Sample& sample : samples) {
    key(sample.name);
    out += FormatDouble(sample.value);
  }
  out += "}";
  return out;
}

std::string LabeledName(const std::string& base, const std::string& key,
                        const std::string& value) {
  return base + "{" + key + "=\"" + EscapeLabelValue(value) + "\"}";
}

}  // namespace agoraeo::obs
