#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>

#include "obs/metrics.h"

namespace agoraeo::obs {
namespace {

std::string EscapeJsonString(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendSpanArray(const std::vector<TraceSpan>& spans, uint64_t base_ns,
                     std::string* out) {
  *out += "[";
  for (size_t i = 0; i < spans.size(); ++i) {
    if (i > 0) *out += ",";
    const uint64_t start =
        spans[i].start_ns >= base_ns ? spans[i].start_ns - base_ns : 0;
    *out += "{\"name\":\"" + EscapeJsonString(spans[i].name) +
            "\",\"start_us\":" + std::to_string(start / 1000) +
            ",\"dur_us\":" + std::to_string(spans[i].duration_ns / 1000) + "}";
  }
  *out += "]";
}

}  // namespace

uint64_t Trace::Now() { return NowNanos(); }
uint64_t ScopedSpan::NowForSpan() { return NowNanos(); }

void Trace::AddSpan(const std::string& name, uint64_t start_ns,
                    uint64_t duration_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back({name, start_ns, duration_ns});
}

void Trace::AddSpanEndingNow(const std::string& name, uint64_t start_ns) {
  const uint64_t now = Now();
  AddSpan(name, start_ns, now >= start_ns ? now - start_ns : 0);
}

void Trace::AddChild(std::string node_id, std::vector<TraceSpan> spans) {
  std::lock_guard<std::mutex> lock(mu_);
  children_.push_back({std::move(node_id), std::move(spans)});
}

std::vector<TraceSpan> Trace::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::vector<TraceChild> Trace::children() const {
  std::lock_guard<std::mutex> lock(mu_);
  return children_;
}

std::string Trace::SpansToJson() const {
  std::vector<TraceSpan> spans = this->spans();
  std::string out;
  AppendSpanArray(spans, born_ns_, &out);
  return out;
}

std::string Trace::ToJson() const {
  std::vector<TraceSpan> spans;
  std::vector<TraceChild> children;
  {
    std::lock_guard<std::mutex> lock(mu_);
    spans = spans_;
    children = children_;
  }
  std::string out = "{\"trace_id\":\"" + EscapeJsonString(id_) + "\"";
  // Total = the extent of recorded spans (not "now": a slow-log entry
  // rendered long after completion must not keep growing).
  uint64_t end_ns = born_ns_;
  for (const TraceSpan& span : spans) {
    end_ns = std::max(end_ns, span.start_ns + span.duration_ns);
  }
  out += ",\"total_us\":" + std::to_string((end_ns - born_ns_) / 1000);
  out += ",\"spans\":";
  AppendSpanArray(spans, born_ns_, &out);
  out += ",\"children\":[";
  for (size_t i = 0; i < children.size(); ++i) {
    if (i > 0) out += ",";
    out += "{\"node\":\"" + EscapeJsonString(children[i].node_id) +
           "\",\"spans\":";
    // Child spans arrive already relative to the child trace's birth.
    AppendSpanArray(children[i].spans, 0, &out);
    out += "}";
  }
  out += "]}";
  return out;
}

std::string Trace::NewId() {
  static std::atomic<uint64_t> counter{0};
  // splitmix64 over (boot-relative time ^ sequence) gives ids that are
  // unique in-process and effectively unique across nodes.
  uint64_t x = NowNanos() ^ (counter.fetch_add(1, std::memory_order_relaxed)
                             << 32);
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(x));
  return std::string(buf);
}

}  // namespace agoraeo::obs
