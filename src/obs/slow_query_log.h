#ifndef AGORAEO_OBS_SLOW_QUERY_LOG_H_
#define AGORAEO_OBS_SLOW_QUERY_LOG_H_

/// Bounded ring of the most recent slow requests.  Completed traces
/// whose wall time clears the threshold are recorded with a one-line
/// request summary and the full rendered trace; the ring keeps the last
/// `capacity` of them (oldest evicted first) and serves them worst-first
/// at GET /api/v2/debug/slow_queries.

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace agoraeo::obs {

struct SlowQueryRecord {
  uint64_t seq = 0;  ///< admission order; higher = more recent
  std::string trace_id;
  std::string summary;     ///< one-line request description
  uint64_t total_ns = 0;
  std::string trace_json;  ///< Trace::ToJson() at completion time
};

class SlowQueryLog {
 public:
  SlowQueryLog(uint64_t threshold_ns, size_t capacity)
      : threshold_ns_(threshold_ns), capacity_(capacity) {}

  /// Records the request if it is slow enough; cheap rejection for the
  /// fast majority (one load + compare before any lock).
  void Observe(uint64_t total_ns, const std::string& trace_id,
               const std::string& summary, std::string trace_json);

  /// Current ring contents sorted by total_ns descending (ties: newer
  /// first).
  std::vector<SlowQueryRecord> WorstFirst() const;

  /// JSON body for the debug endpoint:
  ///   {"threshold_ms":50,"count":N,"slow_queries":[...]}
  std::string ToJson() const;

  uint64_t threshold_ns() const { return threshold_ns_; }
  size_t capacity() const { return capacity_; }

 private:
  const uint64_t threshold_ns_;
  const size_t capacity_;
  mutable std::mutex mu_;
  uint64_t next_seq_ = 0;
  std::deque<SlowQueryRecord> ring_;
};

}  // namespace agoraeo::obs

#endif  // AGORAEO_OBS_SLOW_QUERY_LOG_H_
