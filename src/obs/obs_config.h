#ifndef AGORAEO_OBS_OBS_CONFIG_H_
#define AGORAEO_OBS_OBS_CONFIG_H_

#include <cstdint>

namespace agoraeo::obs {

/// Knobs for the observability layer.  One ObsConfig rides inside
/// EarthQubeConfig (and Coordinator::Options) and configures that
/// instance's metrics registry, tracer, and slow-query log.
struct ObsConfig {
  /// Master switch for the metrics registry.  When false the owning
  /// component passes null metric pointers down the stack, so the hot
  /// path pays nothing (not even a relaxed atomic add).
  bool enable_metrics = true;

  /// Master switch for per-request tracing.  When false StartTrace()
  /// returns nullptr and every span site no-ops on the null check.
  bool enable_tracing = true;

  /// A completed request whose wall time is >= this lands in the
  /// slow-query ring.  Default 50 ms.  Zero records every traced
  /// request (useful in tests and probes).
  uint64_t slow_query_threshold_ns = 50'000'000;

  /// Bounded capacity of the slow-query ring; the oldest entry is
  /// evicted first.
  size_t slow_query_ring = 64;

  /// Latency histogram range.  Everything below min lands in the first
  /// bucket, everything above max in the overflow bucket.  Defaults
  /// cover 1 us .. 60 s.
  uint64_t histogram_min_ns = 1'000;
  uint64_t histogram_max_ns = 60'000'000'000ULL;
};

}  // namespace agoraeo::obs

#endif  // AGORAEO_OBS_OBS_CONFIG_H_
