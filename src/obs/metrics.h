#ifndef AGORAEO_OBS_METRICS_H_
#define AGORAEO_OBS_METRICS_H_

/// Lock-cheap process metrics: counters, gauges, and log-bucketed
/// latency histograms behind a name-keyed registry that renders both
/// Prometheus text exposition and JSON.
///
/// Design constraints:
///  - The record path is hot (it sits inside the engine's per-request
///    stages and the index scan loop), so Counter/Gauge are single
///    relaxed atomics and Histogram stripes its atomics across sixteen
///    cache-line-aligned shards keyed by thread to avoid one contended
///    line under closed-loop client load.
///  - Metric objects are created once (registry mutex) and then
///    referenced by stable pointer; the hot path never touches the
///    registry map.
///  - Labels are embedded in the metric name string
///    (`agoraeo_http_requests_total{route="/api/v2/query"}`); the
///    exposition renderer understands the brace block when it has to
///    splice in quantile labels.
///  - This header is std-only — no repo dependencies — so every layer
///    (common/, netsvc/, index/) can include it without cycles.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace agoraeo::obs {

/// Monotonic nanoseconds; the clock every span and histogram uses.
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment() { value_.fetch_add(1, std::memory_order_relaxed); }
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time signed level (queue depth, in-flight requests).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Merged view of one histogram at a point in time; quantiles are
/// interpolated within the matched bucket.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  /// Per-bucket counts; buckets[i] counts values in
  /// (bounds[i-1], bounds[i]] with an implicit lower edge of 0, plus a
  /// final overflow bucket past bounds.back().
  std::vector<uint64_t> buckets;
  std::vector<uint64_t> bounds;  ///< inclusive upper edges, ns

  /// Interpolated value at quantile q in [0, 1]; 0 when empty.  Values
  /// in the overflow bucket report the top bound (a floor, not a lie:
  /// "at least this").
  uint64_t Quantile(double q) const;
  double MeanNs() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / count;
  }
};

/// Log-bucketed latency histogram: four linear sub-buckets per octave
/// between min_ns and max_ns (~9% worst-case relative bucket width), an
/// underflow-absorbing first bucket and an overflow bucket.  Record is
/// wait-free: binary-search the bound table, then three relaxed adds on
/// a thread-striped shard.
class Histogram {
 public:
  Histogram(uint64_t min_ns, uint64_t max_ns);

  void Record(uint64_t value_ns);
  HistogramSnapshot Snapshot() const;

 private:
  static constexpr size_t kStripes = 16;
  struct alignas(64) Stripe {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::unique_ptr<std::atomic<uint64_t>[]> buckets;
  };

  std::vector<uint64_t> bounds_;  ///< inclusive upper edges, sorted
  Stripe stripes_[kStripes];
};

/// Records the elapsed scope time into a histogram on destruction; a
/// null histogram makes the whole thing a no-op.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(histogram), start_ns_(histogram ? NowNanos() : 0) {}
  ~ScopedTimer() {
    if (histogram_ != nullptr) histogram_->Record(NowNanos() - start_ns_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  uint64_t start_ns_;
};

/// Scrape-time samples contributed by a collector callback.  Collectors
/// are how existing counter structs (CacheStats, ExecStats, index and
/// persistence stats, the cluster epoch) stay the single counting truth:
/// the registry reads them at scrape time instead of double-counting.
enum class SampleKind { kCounter, kGauge };
struct Sample {
  std::string name;  ///< full metric name, labels embedded
  SampleKind kind = SampleKind::kCounter;
  double value = 0.0;
};
using Collector = std::function<void(std::vector<Sample>*)>;

/// Name-keyed metric store.  Get* registers on first use and returns a
/// stable pointer; rendering walks metrics in registration order so the
/// exposition is deterministic (the golden test depends on it).
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name, uint64_t min_ns,
                          uint64_t max_ns);
  void AddCollector(Collector collector);

  /// Prometheus text exposition (text/plain; version=0.0.4).
  /// Histograms render as summaries: p50/p90/p99/p999 quantile lines
  /// plus _sum and _count.
  std::string PrometheusText() const;
  /// The same data as one JSON object; histogram values become
  /// {count, sum_ns, mean_ns, p50_ns, p90_ns, p99_ns, p999_ns}.
  std::string JsonText() const;

 private:
  struct Entry {
    std::string name;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;  ///< registration order
  std::vector<Collector> collectors_;
};

/// Builds `base{key="value"}`; values are escaped per the exposition
/// format (backslash, double-quote, newline).
std::string LabeledName(const std::string& base, const std::string& key,
                        const std::string& value);

/// Metric hooks for netsvc::HttpClient without obs knowing netsvc's
/// HttpErrorKind enum: the owner indexes errors_by_kind with
/// static_cast<int>(kind).  Null pointers no-op, so a default-constructed
/// struct is an always-off hook.
struct HttpClientMetrics {
  Counter* requests = nullptr;
  Counter* failures = nullptr;
  Counter* retries = nullptr;
  Counter* backoff_sleeps = nullptr;
  static constexpr int kNumErrorKinds = 8;
  Counter* errors_by_kind[kNumErrorKinds] = {};
};

}  // namespace agoraeo::obs

#endif  // AGORAEO_OBS_METRICS_H_
