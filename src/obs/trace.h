#ifndef AGORAEO_OBS_TRACE_H_
#define AGORAEO_OBS_TRACE_H_

/// Per-request tracing: one Trace object rides a request through the
/// stack (by shared_ptr, because the engine completes requests on
/// worker threads), accumulating named spans with start/duration; the
/// coordinator merges child-node span summaries into the parent trace.
///
/// Spans are recorded with absolute NowNanos() timestamps and rendered
/// relative to the trace's birth in microseconds, which keeps the JSON
/// compact enough to ship in an `x-trace-spans` response header across
/// cluster hops.  Std-only, like the rest of src/obs/.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace agoraeo::obs {

struct TraceSpan {
  std::string name;
  uint64_t start_ns = 0;     ///< absolute (NowNanos clock)
  uint64_t duration_ns = 0;
};

/// Span summary contributed by one cluster node during a fan-out.
struct TraceChild {
  std::string node_id;
  std::vector<TraceSpan> spans;  ///< start_ns relative to the child, ns
};

class Trace {
 public:
  Trace() : id_(NewId()), born_ns_(Now()) {}
  explicit Trace(std::string id) : id_(std::move(id)), born_ns_(Now()) {}

  const std::string& id() const { return id_; }
  uint64_t born_ns() const { return born_ns_; }

  void AddSpan(const std::string& name, uint64_t start_ns,
               uint64_t duration_ns);
  /// Convenience: a span that ends now and started `duration` ago.
  void AddSpanEndingNow(const std::string& name, uint64_t start_ns);
  void AddChild(std::string node_id, std::vector<TraceSpan> spans);

  std::vector<TraceSpan> spans() const;
  std::vector<TraceChild> children() const;

  /// Compact JSON array of this trace's own spans with start/duration
  /// relative to born_ns in whole microseconds:
  ///   [{"name":"index_pass","start_us":12,"dur_us":480}, ...]
  /// Small enough for a response header; parsed back by the
  /// coordinator when merging cluster hops.
  std::string SpansToJson() const;

  /// Full trace object: id, total_us since birth, own spans, children.
  std::string ToJson() const;

  /// 16-hex-char id, unique within the process and sufficiently unique
  /// across nodes for log correlation (mixes a process-wide counter
  /// with the clock).
  static std::string NewId();

 private:
  static uint64_t Now();

  const std::string id_;
  const uint64_t born_ns_;
  mutable std::mutex mu_;
  std::vector<TraceSpan> spans_;
  std::vector<TraceChild> children_;
};

/// Adds a span to the trace on destruction; null trace no-ops.
class ScopedSpan {
 public:
  ScopedSpan(Trace* trace, const char* name)
      : trace_(trace), name_(name), start_ns_(trace ? NowForSpan() : 0) {}
  ~ScopedSpan() {
    if (trace_ != nullptr) trace_->AddSpanEndingNow(name_, start_ns_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  static uint64_t NowForSpan();

  Trace* trace_;
  const char* name_;
  uint64_t start_ns_;
};

}  // namespace agoraeo::obs

#endif  // AGORAEO_OBS_TRACE_H_
