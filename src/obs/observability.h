#ifndef AGORAEO_OBS_OBSERVABILITY_H_
#define AGORAEO_OBS_OBSERVABILITY_H_

/// The per-instance observability bundle: one metrics registry, one
/// slow-query log, and the trace factory, configured by one ObsConfig.
/// EarthQube owns one (nodes and the monolith alike); the cluster
/// Coordinator owns its own.  Per-instance rather than process-global
/// because tests and benches boot several full stacks in one process
/// and their numbers must not bleed together.

#include <memory>
#include <string>

#include "obs/metrics.h"
#include "obs/obs_config.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"

namespace agoraeo::obs {

class Observability {
 public:
  explicit Observability(const ObsConfig& config = ObsConfig())
      : config_(config),
        slow_log_(config.slow_query_threshold_ns, config.slow_query_ring) {}

  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  const ObsConfig& config() const { return config_; }
  MetricsRegistry& registry() { return registry_; }
  SlowQueryLog& slow_log() { return slow_log_; }

  bool metrics_enabled() const { return config_.enable_metrics; }
  bool tracing_enabled() const { return config_.enable_tracing; }

  /// A fresh trace for one request, or nullptr when tracing is off —
  /// every span site null-checks, so disabled tracing costs one branch.
  std::shared_ptr<Trace> StartTrace() const {
    if (!config_.enable_tracing) return nullptr;
    return std::make_shared<Trace>();
  }
  /// Same, adopting a propagated id (cluster child executions).
  std::shared_ptr<Trace> StartTrace(std::string id) const {
    if (!config_.enable_tracing) return nullptr;
    return std::make_shared<Trace>(std::move(id));
  }

  /// Registry lookups that respect enable_metrics by returning nullptr:
  /// instrumentation sites hold pointers and null-check, so a disabled
  /// registry truly costs nothing on the hot path.
  Counter* CounterOrNull(const std::string& name) {
    return config_.enable_metrics ? registry_.GetCounter(name) : nullptr;
  }
  Gauge* GaugeOrNull(const std::string& name) {
    return config_.enable_metrics ? registry_.GetGauge(name) : nullptr;
  }
  Histogram* HistogramOrNull(const std::string& name) {
    return config_.enable_metrics
               ? registry_.GetHistogram(name, config_.histogram_min_ns,
                                        config_.histogram_max_ns)
               : nullptr;
  }

 private:
  const ObsConfig config_;
  MetricsRegistry registry_;
  SlowQueryLog slow_log_;
};

}  // namespace agoraeo::obs

#endif  // AGORAEO_OBS_OBSERVABILITY_H_
