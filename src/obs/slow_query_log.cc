#include "obs/slow_query_log.h"

#include <algorithm>
#include <cstdio>

namespace agoraeo::obs {
namespace {

std::string EscapeJsonString(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void SlowQueryLog::Observe(uint64_t total_ns, const std::string& trace_id,
                           const std::string& summary,
                           std::string trace_json) {
  if (total_ns < threshold_ns_ || capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  SlowQueryRecord record;
  record.seq = next_seq_++;
  record.trace_id = trace_id;
  record.summary = summary;
  record.total_ns = total_ns;
  record.trace_json = std::move(trace_json);
  ring_.push_back(std::move(record));
  while (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<SlowQueryRecord> SlowQueryLog::WorstFirst() const {
  std::vector<SlowQueryRecord> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.assign(ring_.begin(), ring_.end());
  }
  std::sort(out.begin(), out.end(),
            [](const SlowQueryRecord& a, const SlowQueryRecord& b) {
              if (a.total_ns != b.total_ns) return a.total_ns > b.total_ns;
              return a.seq > b.seq;
            });
  return out;
}

std::string SlowQueryLog::ToJson() const {
  const std::vector<SlowQueryRecord> records = WorstFirst();
  std::string out = "{\"threshold_ms\":" +
                    std::to_string(threshold_ns_ / 1'000'000) +
                    ",\"count\":" + std::to_string(records.size()) +
                    ",\"slow_queries\":[";
  for (size_t i = 0; i < records.size(); ++i) {
    if (i > 0) out += ",";
    out += "{\"seq\":" + std::to_string(records[i].seq) +
           ",\"trace_id\":\"" + EscapeJsonString(records[i].trace_id) +
           "\",\"summary\":\"" + EscapeJsonString(records[i].summary) +
           "\",\"total_us\":" + std::to_string(records[i].total_ns / 1000) +
           ",\"trace\":" +
           (records[i].trace_json.empty() ? "null" : records[i].trace_json) +
           "}";
  }
  out += "]}";
  return out;
}

}  // namespace agoraeo::obs
