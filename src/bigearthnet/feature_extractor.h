#ifndef AGORAEO_BIGEARTHNET_FEATURE_EXTRACTOR_H_
#define AGORAEO_BIGEARTHNET_FEATURE_EXTRACTOR_H_

#include <vector>

#include "bigearthnet/archive_generator.h"
#include "bigearthnet/patch.h"
#include "tensor/tensor.h"

namespace agoraeo::bigearthnet {

/// Dimensionality of the "deep feature" vectors handed to MiLaN.  The
/// reference MiLaN implementation consumes CNN features; this pipeline
/// substitutes a deterministic spectral-statistics encoder (see DESIGN.md)
/// with the same interface and the same metric property (same-label
/// patches are close, different-label patches are far).
inline constexpr size_t kFeatureDim = 128;

/// Number of raw statistics computed before projection: per-band mean+std
/// for 12 S2 bands and 2 S1 channels (28), mean+std of NDVI/NDWI/NDBI (6),
/// 2x2 NDVI spatial pyramid (4).
inline constexpr size_t kRawFeatureDim = 38;

/// Extracts fixed (non-learned) feature vectors from patches.
///
/// Two paths produce vectors from the *same* distribution family:
///  - the pixel path computes real statistics over synthesised rasters
///    (used by tests, examples, and query-by-new-example);
///  - the metadata fast path computes the expected statistics analytically
///    from the patch's label blend and adds matched sampling noise (used
///    to scale benchmark archives to 100k+ patches without synthesising
///    gigabytes of rasters).
class FeatureExtractor {
 public:
  /// `projection_seed` fixes the random projection; extractors with equal
  /// seeds produce comparable feature spaces.
  explicit FeatureExtractor(uint64_t projection_seed = 0xFEA7);

  /// Raw statistics of a materialised patch (pixel path).
  std::vector<float> RawFromPixels(const Patch& patch) const;

  /// Expected raw statistics of a patch given only metadata (fast path).
  /// Deterministic in (generator seed, patch name).
  std::vector<float> RawFromMetadata(const PatchMetadata& meta,
                                     const ArchiveGenerator& generator) const;

  /// Projects raw statistics to the kFeatureDim-d feature vector.
  Tensor Project(const std::vector<float>& raw) const;

  /// Convenience: RawFromPixels + Project.
  Tensor ExtractFromPixels(const Patch& patch) const;

  /// Convenience: RawFromMetadata + Project.
  Tensor ExtractFromMetadata(const PatchMetadata& meta,
                             const ArchiveGenerator& generator) const;

  /// Extracts features for every patch of `archive` via the fast path,
  /// parallelised across `num_threads`; row i corresponds to
  /// archive.patches[i].  Returns a [N, kFeatureDim] tensor.
  Tensor ExtractArchive(const Archive& archive,
                        const ArchiveGenerator& generator,
                        size_t num_threads = 4) const;

 private:
  Tensor projection_;  ///< [kRawFeatureDim, kFeatureDim], fixed
};

}  // namespace agoraeo::bigearthnet

#endif  // AGORAEO_BIGEARTHNET_FEATURE_EXTRACTOR_H_
