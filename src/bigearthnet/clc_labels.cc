#include "bigearthnet/clc_labels.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "common/string_util.h"

namespace agoraeo::bigearthnet {

namespace {

// Level-1 names.
constexpr const char* kArtificial = "Artificial surfaces";
constexpr const char* kAgricultural = "Agricultural areas";
constexpr const char* kForestSemiNatural = "Forest and semi-natural areas";
constexpr const char* kWetlands = "Wetlands";
constexpr const char* kWater = "Water bodies";

// The 43 BigEarthNet CLC Level-3 classes, in CLC code order.  ASCII keys
// are assigned 'A'.. following the table order, mirroring the paper's
// label->character compression.  Colours approximate the official CLC
// legend so the label-statistics bar chart is recognisable.
const std::vector<ClcLabel> kLabels = {
    {0, 111, "Continuous urban fabric", 11, "Urban fabric", 1, kArtificial, 'A', 0xE6004D},
    {1, 112, "Discontinuous urban fabric", 11, "Urban fabric", 1, kArtificial, 'B', 0xFF0000},
    {2, 121, "Industrial or commercial units", 12, "Industrial, commercial and transport units", 1, kArtificial, 'C', 0xCC4DF2},
    {3, 122, "Road and rail networks and associated land", 12, "Industrial, commercial and transport units", 1, kArtificial, 'D', 0xCC0000},
    {4, 123, "Port areas", 12, "Industrial, commercial and transport units", 1, kArtificial, 'E', 0xE6CCCC},
    {5, 124, "Airports", 12, "Industrial, commercial and transport units", 1, kArtificial, 'F', 0xE6CCE6},
    {6, 131, "Mineral extraction sites", 13, "Mine, dump and construction sites", 1, kArtificial, 'G', 0xA600CC},
    {7, 132, "Dump sites", 13, "Mine, dump and construction sites", 1, kArtificial, 'H', 0xA64DCC},
    {8, 133, "Construction sites", 13, "Mine, dump and construction sites", 1, kArtificial, 'I', 0xFF4DFF},
    {9, 141, "Green urban areas", 14, "Artificial, non-agricultural vegetated areas", 1, kArtificial, 'J', 0xFFA6FF},
    {10, 142, "Sport and leisure facilities", 14, "Artificial, non-agricultural vegetated areas", 1, kArtificial, 'K', 0xFFE6FF},
    {11, 211, "Non-irrigated arable land", 21, "Arable land", 2, kAgricultural, 'L', 0xFFFFA8},
    {12, 212, "Permanently irrigated land", 21, "Arable land", 2, kAgricultural, 'M', 0xFFFF00},
    {13, 213, "Rice fields", 21, "Arable land", 2, kAgricultural, 'N', 0xE6E600},
    {14, 221, "Vineyards", 22, "Permanent crops", 2, kAgricultural, 'O', 0xE68000},
    {15, 222, "Fruit trees and berry plantations", 22, "Permanent crops", 2, kAgricultural, 'P', 0xF2A64D},
    {16, 223, "Olive groves", 22, "Permanent crops", 2, kAgricultural, 'Q', 0xE6A600},
    {17, 231, "Pastures", 23, "Pastures", 2, kAgricultural, 'R', 0xE6E64D},
    {18, 241, "Annual crops associated with permanent crops", 24, "Heterogeneous agricultural areas", 2, kAgricultural, 'S', 0xFFE6A6},
    {19, 242, "Complex cultivation patterns", 24, "Heterogeneous agricultural areas", 2, kAgricultural, 'T', 0xFFE64D},
    {20, 243, "Land principally occupied by agriculture, with significant areas of natural vegetation", 24, "Heterogeneous agricultural areas", 2, kAgricultural, 'U', 0xE6CC4D},
    {21, 244, "Agro-forestry areas", 24, "Heterogeneous agricultural areas", 2, kAgricultural, 'V', 0xF2CCA6},
    {22, 311, "Broad-leaved forest", 31, "Forests", 3, kForestSemiNatural, 'W', 0x80FF00},
    {23, 312, "Coniferous forest", 31, "Forests", 3, kForestSemiNatural, 'X', 0x00A600},
    {24, 313, "Mixed forest", 31, "Forests", 3, kForestSemiNatural, 'Y', 0x4DFF00},
    {25, 321, "Natural grassland", 32, "Scrub and/or herbaceous vegetation associations", 3, kForestSemiNatural, 'Z', 0xCCF24D},
    {26, 322, "Moors and heathland", 32, "Scrub and/or herbaceous vegetation associations", 3, kForestSemiNatural, 'a', 0xA6FF80},
    {27, 323, "Sclerophyllous vegetation", 32, "Scrub and/or herbaceous vegetation associations", 3, kForestSemiNatural, 'b', 0xA6E64D},
    {28, 324, "Transitional woodland/shrub", 32, "Scrub and/or herbaceous vegetation associations", 3, kForestSemiNatural, 'c', 0xA6F200},
    {29, 331, "Beaches, dunes, sands", 33, "Open spaces with little or no vegetation", 3, kForestSemiNatural, 'd', 0xE6E6E6},
    {30, 332, "Bare rock", 33, "Open spaces with little or no vegetation", 3, kForestSemiNatural, 'e', 0xCCCCCC},
    {31, 333, "Sparsely vegetated areas", 33, "Open spaces with little or no vegetation", 3, kForestSemiNatural, 'f', 0xCCFFCC},
    {32, 334, "Burnt areas", 33, "Open spaces with little or no vegetation", 3, kForestSemiNatural, 'g', 0x000000},
    {33, 411, "Inland marshes", 41, "Inland wetlands", 4, kWetlands, 'h', 0xA6A6FF},
    {34, 412, "Peatbogs", 41, "Inland wetlands", 4, kWetlands, 'i', 0x4D4DFF},
    {35, 421, "Salt marshes", 42, "Maritime wetlands", 4, kWetlands, 'j', 0xCCCCFF},
    {36, 422, "Salines", 42, "Maritime wetlands", 4, kWetlands, 'k', 0xE6E6FF},
    {37, 423, "Intertidal flats", 42, "Maritime wetlands", 4, kWetlands, 'l', 0xA6A6E6},
    {38, 511, "Water courses", 51, "Inland waters", 5, kWater, 'm', 0x00CCF2},
    {39, 512, "Water bodies", 51, "Inland waters", 5, kWater, 'n', 0x80F2E6},
    {40, 521, "Coastal lagoons", 52, "Marine waters", 5, kWater, 'o', 0x00FFA6},
    {41, 522, "Estuaries", 52, "Marine waters", 5, kWater, 'p', 0xA6FFE6},
    {42, 523, "Sea and ocean", 52, "Marine waters", 5, kWater, 'q', 0xE6F2FF},
};

const std::unordered_map<int, LabelId>& ClcCodeIndex() {
  static const auto* index = [] {
    auto* m = new std::unordered_map<int, LabelId>();
    for (const auto& l : kLabels) (*m)[l.clc_code] = l.id;
    return m;
  }();
  return *index;
}

const std::unordered_map<std::string, LabelId>& NameIndex() {
  static const auto* index = [] {
    auto* m = new std::unordered_map<std::string, LabelId>();
    for (const auto& l : kLabels) (*m)[l.name] = l.id;
    return m;
  }();
  return *index;
}

const std::unordered_map<char, LabelId>& AsciiIndex() {
  static const auto* index = [] {
    auto* m = new std::unordered_map<char, LabelId>();
    for (const auto& l : kLabels) (*m)[l.ascii_key] = l.id;
    return m;
  }();
  return *index;
}

}  // namespace

const std::vector<ClcLabel>& AllLabels() { return kLabels; }

const ClcLabel& LabelById(LabelId id) {
  assert(id >= 0 && id < kNumLabels);
  return kLabels[static_cast<size_t>(id)];
}

StatusOr<LabelId> LabelIdFromClcCode(int clc_code) {
  auto it = ClcCodeIndex().find(clc_code);
  if (it == ClcCodeIndex().end()) {
    return Status::NotFound(StrFormat("unknown CLC code: %d", clc_code));
  }
  return it->second;
}

StatusOr<LabelId> LabelIdFromName(const std::string& name) {
  auto it = NameIndex().find(name);
  if (it == NameIndex().end()) {
    return Status::NotFound("unknown label name: " + name);
  }
  return it->second;
}

StatusOr<LabelId> LabelIdFromAsciiKey(char key) {
  auto it = AsciiIndex().find(key);
  if (it == AsciiIndex().end()) {
    return Status::NotFound(StrFormat("unknown label ascii key: %c", key));
  }
  return it->second;
}

std::vector<LabelId> LabelsUnderLevel2(int level2_code) {
  std::vector<LabelId> out;
  for (const auto& l : kLabels) {
    if (l.level2_code == level2_code) out.push_back(l.id);
  }
  return out;
}

std::vector<LabelId> LabelsUnderLevel1(int level1_code) {
  std::vector<LabelId> out;
  for (const auto& l : kLabels) {
    if (l.level1_code == level1_code) out.push_back(l.id);
  }
  return out;
}

std::vector<int> AllLevel2Codes() {
  std::vector<int> out;
  for (const auto& l : kLabels) {
    if (out.empty() || out.back() != l.level2_code) out.push_back(l.level2_code);
  }
  return out;
}

std::vector<int> AllLevel1Codes() {
  std::vector<int> out;
  for (const auto& l : kLabels) {
    if (std::find(out.begin(), out.end(), l.level1_code) == out.end()) {
      out.push_back(l.level1_code);
    }
  }
  return out;
}

LabelSet::LabelSet(std::vector<LabelId> ids) : ids_(std::move(ids)) {
  std::sort(ids_.begin(), ids_.end());
  ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
}

bool LabelSet::Contains(LabelId id) const {
  return std::binary_search(ids_.begin(), ids_.end(), id);
}

bool LabelSet::ContainsAll(const LabelSet& other) const {
  return std::includes(ids_.begin(), ids_.end(), other.ids_.begin(),
                       other.ids_.end());
}

bool LabelSet::ContainsAny(const LabelSet& other) const {
  for (LabelId id : other.ids_) {
    if (Contains(id)) return true;
  }
  return false;
}

void LabelSet::Add(LabelId id) {
  auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it == ids_.end() || *it != id) ids_.insert(it, id);
}

std::string LabelSet::ToAsciiKeys() const {
  std::string out;
  out.reserve(ids_.size());
  for (LabelId id : ids_) out.push_back(LabelById(id).ascii_key);
  return out;
}

StatusOr<LabelSet> LabelSet::FromAsciiKeys(const std::string& keys) {
  std::vector<LabelId> ids;
  ids.reserve(keys.size());
  for (char c : keys) {
    AGORAEO_ASSIGN_OR_RETURN(LabelId id, LabelIdFromAsciiKey(c));
    ids.push_back(id);
  }
  return LabelSet(std::move(ids));
}

std::string LabelSet::ToString() const {
  std::vector<std::string> names;
  names.reserve(ids_.size());
  for (LabelId id : ids_) names.emplace_back(LabelById(id).name);
  return StrJoin(names, ", ");
}

}  // namespace agoraeo::bigearthnet
