#ifndef AGORAEO_BIGEARTHNET_CLC_LABELS_H_
#define AGORAEO_BIGEARTHNET_CLC_LABELS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace agoraeo::bigearthnet {

/// Number of CORINE Land Cover Level-3 classes in the (original)
/// BigEarthNet nomenclature.
inline constexpr int kNumLabels = 43;

/// Identifier of a label: a dense index in [0, kNumLabels).
using LabelId = int;

/// One CORINE Land Cover Level-3 class as used by BigEarthNet, together
/// with its position in the 3-level CLC hierarchy (the hierarchy EarthQube
/// renders in its label-selection panel, Figure 2-2 of the paper).
struct ClcLabel {
  LabelId id;               ///< dense index in [0, 43)
  int clc_code;             ///< 3-digit CLC code, e.g. 312
  const char* name;         ///< Level-3 name, e.g. "Coniferous forest"
  int level2_code;          ///< 2-digit parent, e.g. 31
  const char* level2_name;  ///< e.g. "Forests"
  int level1_code;          ///< 1-digit root, e.g. 3
  const char* level1_name;  ///< e.g. "Forest and semi-natural areas"
  /// The single ASCII character EarthQube's data tier substitutes for the
  /// (potentially multi-word) label string to speed up label filtering
  /// (Section 3.2 of the paper).
  char ascii_key;
  /// Representative display colour for the label-statistics bar chart
  /// (Section 3.1), 0xRRGGBB.
  uint32_t color_rgb;
};

/// The full nomenclature table, indexed by LabelId.
const std::vector<ClcLabel>& AllLabels();

/// Lookup by dense id; id must be in range (asserted).
const ClcLabel& LabelById(LabelId id);

/// Lookup by CLC Level-3 code (e.g. 312).
StatusOr<LabelId> LabelIdFromClcCode(int clc_code);

/// Lookup by exact Level-3 name.
StatusOr<LabelId> LabelIdFromName(const std::string& name);

/// Lookup by the ASCII compression character.
StatusOr<LabelId> LabelIdFromAsciiKey(char key);

/// All Level-3 labels under a Level-2 class (e.g. 31 -> the three forest
/// classes).  Empty when the code is unknown.
std::vector<LabelId> LabelsUnderLevel2(int level2_code);

/// All Level-3 labels under a Level-1 class (e.g. 3 -> 12 classes).
std::vector<LabelId> LabelsUnderLevel1(int level1_code);

/// Distinct Level-2 codes in hierarchy order.
std::vector<int> AllLevel2Codes();

/// Distinct Level-1 codes in hierarchy order.
std::vector<int> AllLevel1Codes();

/// A multi-label annotation: sorted, de-duplicated vector of LabelIds.
class LabelSet {
 public:
  LabelSet() = default;
  explicit LabelSet(std::vector<LabelId> ids);

  bool Contains(LabelId id) const;
  /// True when every id in `other` is present here.
  bool ContainsAll(const LabelSet& other) const;
  /// True when at least one id of `other` is present here.
  bool ContainsAny(const LabelSet& other) const;
  /// Exact set equality.
  bool operator==(const LabelSet& other) const { return ids_ == other.ids_; }

  void Add(LabelId id);
  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }
  const std::vector<LabelId>& ids() const { return ids_; }

  /// The ASCII-compressed representation used by the data tier, one char
  /// per label in sorted order (e.g. "AFs").
  std::string ToAsciiKeys() const;
  static StatusOr<LabelSet> FromAsciiKeys(const std::string& keys);

  /// Comma-separated Level-3 names.
  std::string ToString() const;

 private:
  std::vector<LabelId> ids_;
};

}  // namespace agoraeo::bigearthnet

#endif  // AGORAEO_BIGEARTHNET_CLC_LABELS_H_
