#include "bigearthnet/spectral_model.h"

#include <cassert>

namespace agoraeo::bigearthnet {

namespace {

/// Archetype spectra over the 12 S2 bands (DN = reflectance x 10000) in
/// archive band order B01,B02,B03,B04,B05,B06,B07,B08,B8A,B09,B11,B12,
/// plus S1 (VV, VH) backscatter in dB.
struct Archetype {
  std::array<float, kNumS2Bands> s2;
  float vv_db;
  float vh_db;
  float sigma;
};

const Archetype kWater      = {{400, 350, 300, 200, 150, 100, 80, 60, 50, 40, 30, 20}, -20.0f, -28.0f, 40.0f};
const Archetype kBroadleaf  = {{200, 250, 500, 350, 800, 2000, 2500, 3000, 3100, 900, 1500, 700}, -8.0f, -14.0f, 180.0f};
const Archetype kConifer    = {{150, 200, 350, 250, 500, 1200, 1500, 1800, 1900, 600, 900, 450}, -8.5f, -14.5f, 150.0f};
const Archetype kGrass      = {{300, 400, 700, 600, 1100, 2200, 2600, 2900, 3000, 1000, 2000, 1100}, -11.0f, -17.5f, 200.0f};
const Archetype kCropGreen  = {{250, 350, 650, 500, 1000, 2400, 2900, 3300, 3400, 1100, 1800, 900}, -10.0f, -16.5f, 260.0f};
const Archetype kCropDry    = {{500, 700, 1100, 1500, 1800, 2000, 2100, 2200, 2300, 1000, 2900, 2400}, -12.0f, -19.0f, 300.0f};
const Archetype kBareSoil   = {{600, 900, 1300, 1800, 2100, 2300, 2400, 2500, 2600, 1200, 3200, 2800}, -13.0f, -20.5f, 280.0f};
const Archetype kSand       = {{1500, 2000, 2600, 3000, 3200, 3300, 3400, 3500, 3600, 1500, 4200, 3800}, -14.0f, -22.0f, 220.0f};
const Archetype kRock       = {{900, 1100, 1400, 1600, 1700, 1800, 1900, 2000, 2000, 900, 2300, 2100}, -9.0f, -16.0f, 320.0f};
const Archetype kUrban      = {{1200, 1500, 1800, 2000, 2100, 2200, 2300, 2400, 2400, 1100, 2600, 2400}, -5.0f, -11.5f, 450.0f};
const Archetype kBurnt      = {{300, 350, 400, 450, 500, 550, 600, 650, 650, 400, 1400, 1600}, -12.5f, -19.5f, 160.0f};
const Archetype kWetland    = {{300, 350, 500, 400, 600, 1200, 1400, 1600, 1650, 600, 800, 400}, -14.0f, -21.0f, 190.0f};

struct Mix {
  const Archetype* a;
  float wa;
  const Archetype* b;
  float wb;
};

/// Archetype blend per CLC class (dense LabelId order, 43 entries).
/// Weights sum to 1.
const Mix kClassMixes[kNumLabels] = {
    /* 0 Continuous urban fabric */            {&kUrban, 0.95f, &kGrass, 0.05f},
    /* 1 Discontinuous urban fabric */         {&kUrban, 0.65f, &kGrass, 0.35f},
    /* 2 Industrial or commercial units */     {&kUrban, 0.85f, &kBareSoil, 0.15f},
    /* 3 Road and rail networks */             {&kUrban, 0.75f, &kBareSoil, 0.25f},
    /* 4 Port areas */                         {&kUrban, 0.70f, &kWater, 0.30f},
    /* 5 Airports */                           {&kUrban, 0.55f, &kGrass, 0.45f},
    /* 6 Mineral extraction sites */           {&kBareSoil, 0.75f, &kRock, 0.25f},
    /* 7 Dump sites */                         {&kBareSoil, 0.80f, &kUrban, 0.20f},
    /* 8 Construction sites */                 {&kBareSoil, 0.60f, &kUrban, 0.40f},
    /* 9 Green urban areas */                  {&kGrass, 0.60f, &kUrban, 0.40f},
    /* 10 Sport and leisure facilities */      {&kGrass, 0.70f, &kUrban, 0.30f},
    /* 11 Non-irrigated arable land */         {&kCropDry, 0.70f, &kCropGreen, 0.30f},
    /* 12 Permanently irrigated land */        {&kCropGreen, 0.85f, &kWater, 0.15f},
    /* 13 Rice fields */                       {&kCropGreen, 0.60f, &kWater, 0.40f},
    /* 14 Vineyards */                         {&kCropGreen, 0.50f, &kBareSoil, 0.50f},
    /* 15 Fruit trees and berry plantations */ {&kBroadleaf, 0.55f, &kBareSoil, 0.45f},
    /* 16 Olive groves */                      {&kConifer, 0.45f, &kBareSoil, 0.55f},
    /* 17 Pastures */                          {&kGrass, 0.90f, &kCropGreen, 0.10f},
    /* 18 Annual + permanent crops */          {&kCropGreen, 0.55f, &kCropDry, 0.45f},
    /* 19 Complex cultivation patterns */      {&kCropGreen, 0.45f, &kCropDry, 0.55f},
    /* 20 Agriculture + natural vegetation */  {&kCropDry, 0.50f, &kBroadleaf, 0.50f},
    /* 21 Agro-forestry areas */               {&kBroadleaf, 0.50f, &kCropDry, 0.50f},
    /* 22 Broad-leaved forest */               {&kBroadleaf, 1.00f, nullptr, 0.0f},
    /* 23 Coniferous forest */                 {&kConifer, 1.00f, nullptr, 0.0f},
    /* 24 Mixed forest */                      {&kBroadleaf, 0.50f, &kConifer, 0.50f},
    /* 25 Natural grassland */                 {&kGrass, 1.00f, nullptr, 0.0f},
    /* 26 Moors and heathland */               {&kGrass, 0.55f, &kWetland, 0.45f},
    /* 27 Sclerophyllous vegetation */         {&kConifer, 0.40f, &kGrass, 0.60f},
    /* 28 Transitional woodland/shrub */       {&kBroadleaf, 0.55f, &kGrass, 0.45f},
    /* 29 Beaches, dunes, sands */             {&kSand, 1.00f, nullptr, 0.0f},
    /* 30 Bare rock */                         {&kRock, 1.00f, nullptr, 0.0f},
    /* 31 Sparsely vegetated areas */          {&kRock, 0.50f, &kGrass, 0.50f},
    /* 32 Burnt areas */                       {&kBurnt, 1.00f, nullptr, 0.0f},
    /* 33 Inland marshes */                    {&kWetland, 0.80f, &kWater, 0.20f},
    /* 34 Peatbogs */                          {&kWetland, 0.85f, &kGrass, 0.15f},
    /* 35 Salt marshes */                      {&kWetland, 0.65f, &kWater, 0.35f},
    /* 36 Salines */                           {&kSand, 0.55f, &kWater, 0.45f},
    /* 37 Intertidal flats */                  {&kWetland, 0.45f, &kWater, 0.55f},
    /* 38 Water courses */                     {&kWater, 0.90f, &kWetland, 0.10f},
    /* 39 Water bodies */                      {&kWater, 1.00f, nullptr, 0.0f},
    /* 40 Coastal lagoons */                   {&kWater, 0.85f, &kWetland, 0.15f},
    /* 41 Estuaries */                         {&kWater, 0.80f, &kWetland, 0.20f},
    /* 42 Sea and ocean */                     {&kWater, 1.00f, nullptr, 0.0f},
};

float EncodeS1(float db) { return (db + 50.0f) * 100.0f; }

SpectralSignature MakeSignature(const Mix& mix, LabelId id) {
  SpectralSignature sig;
  const Archetype& a = *mix.a;
  const Archetype* b = mix.b;
  const float wa = mix.wa;
  const float wb = b != nullptr ? mix.wb : 0.0f;
  float vv = a.vv_db * wa, vh = a.vh_db * wa, sigma = a.sigma * wa;
  for (int band = 0; band < kNumS2Bands; ++band) {
    float v = a.s2[static_cast<size_t>(band)] * wa;
    if (b != nullptr) v += b->s2[static_cast<size_t>(band)] * wb;
    // Small deterministic per-class offset so sibling classes sharing the
    // same mix stay distinguishable (e.g. water courses vs. coastal
    // lagoons differ slightly).
    v += static_cast<float>((id * 7 + band * 3) % 11) * 8.0f;
    sig.s2_dn[static_cast<size_t>(band)] = v;
  }
  if (b != nullptr) {
    vv += b->vv_db * wb;
    vh += b->vh_db * wb;
    sigma += b->sigma * wb;
  }
  sig.s1_dn[0] = EncodeS1(vv + static_cast<float>(id % 5) * 0.1f);
  sig.s1_dn[1] = EncodeS1(vh + static_cast<float>(id % 7) * 0.1f);
  sig.texture_sigma = sigma;
  return sig;
}

}  // namespace

SpectralModel::SpectralModel() {
  signatures_.reserve(kNumLabels);
  for (LabelId id = 0; id < kNumLabels; ++id) {
    signatures_.push_back(MakeSignature(kClassMixes[id], id));
  }
}

SpectralSignature SpectralModel::Blend(const LabelSet& labels,
                                       const std::vector<float>& weights) const {
  assert(!labels.empty());
  assert(weights.empty() || weights.size() == labels.size());
  SpectralSignature out;
  out.s2_dn.fill(0.0f);
  out.s1_dn.fill(0.0f);
  out.texture_sigma = 0.0f;

  float total = 0.0f;
  for (size_t i = 0; i < labels.size(); ++i) {
    total += weights.empty() ? 1.0f : weights[i];
  }
  if (total <= 0.0f) total = 1.0f;

  for (size_t i = 0; i < labels.size(); ++i) {
    const float w = (weights.empty() ? 1.0f : weights[i]) / total;
    const SpectralSignature& sig = signature(labels.ids()[i]);
    for (int band = 0; band < kNumS2Bands; ++band) {
      out.s2_dn[static_cast<size_t>(band)] += w * sig.s2_dn[static_cast<size_t>(band)];
    }
    out.s1_dn[0] += w * sig.s1_dn[0];
    out.s1_dn[1] += w * sig.s1_dn[1];
    out.texture_sigma += w * sig.texture_sigma;
  }
  return out;
}

}  // namespace agoraeo::bigearthnet
