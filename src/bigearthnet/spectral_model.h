#ifndef AGORAEO_BIGEARTHNET_SPECTRAL_MODEL_H_
#define AGORAEO_BIGEARTHNET_SPECTRAL_MODEL_H_

#include <array>
#include <vector>

#include "bigearthnet/clc_labels.h"
#include "bigearthnet/patch.h"

namespace agoraeo::bigearthnet {

/// Expected Sentinel-2 digital numbers (reflectance x 10000) for the 12
/// archive bands plus Sentinel-1 VV/VH backscatter (encoded as
/// DN = (dB + 50) * 100) for one land-cover class.
struct SpectralSignature {
  std::array<float, kNumS2Bands> s2_dn;
  std::array<float, kNumS1Channels> s1_dn;
  /// Within-class pixel standard deviation (same units as s2_dn), a
  /// single scalar scaled per band.
  float texture_sigma;
};

/// The class-conditional spectral model substituting for real Sentinel
/// radiometry.
///
/// Signatures are blends of physically motivated archetype spectra
/// (water, broadleaf/conifer canopy, grass, crops, bare soil, sand,
/// rock, urban, burnt, wetland), so spectral *relationships* that the
/// feature pipeline relies on hold: NDVI is high for forests and crops,
/// negative for water; SWIR is elevated for burnt areas; urban classes
/// are bright and flat; S1 backscatter separates water / vegetation /
/// built-up.  Same-label patches are therefore close in feature space
/// and different-label patches are far — the property MiLaN's metric
/// learning needs.
class SpectralModel {
 public:
  SpectralModel();

  /// The signature of one class.
  const SpectralSignature& signature(LabelId id) const {
    return signatures_[static_cast<size_t>(id)];
  }

  /// Expected signature of a multi-label patch: the area-weighted blend
  /// of its class signatures (`weights` must align with labels.ids(); pass
  /// empty for uniform weights).
  SpectralSignature Blend(const LabelSet& labels,
                          const std::vector<float>& weights = {}) const;

 private:
  std::vector<SpectralSignature> signatures_;
};

}  // namespace agoraeo::bigearthnet

#endif  // AGORAEO_BIGEARTHNET_SPECTRAL_MODEL_H_
