#include "bigearthnet/feature_extractor.h"

#include <cassert>
#include <cmath>

#include "common/thread_pool.h"

namespace agoraeo::bigearthnet {

namespace {

/// mean and std of a raster's pixels, as reflectance in [0, 1].
void BandStats(const BandRaster& band, float* mean, float* stddev) {
  double sum = 0.0, sum2 = 0.0;
  for (uint16_t dn : band.pixels) {
    const double v = dn / 10000.0;
    sum += v;
    sum2 += v * v;
  }
  const double n = static_cast<double>(band.pixels.size());
  const double m = sum / n;
  *mean = static_cast<float>(m);
  *stddev = static_cast<float>(std::sqrt(std::max(0.0, sum2 / n - m * m)));
}

/// Normalised difference of two co-registered rasters, per pixel; returns
/// mean and std of the index.
void IndexStats(const BandRaster& a, const BandRaster& b, float* mean,
                float* stddev) {
  assert(a.pixels.size() == b.pixels.size());
  double sum = 0.0, sum2 = 0.0;
  for (size_t i = 0; i < a.pixels.size(); ++i) {
    const double va = a.pixels[i], vb = b.pixels[i];
    const double idx = (va + vb) > 0 ? (va - vb) / (va + vb) : 0.0;
    sum += idx;
    sum2 += idx * idx;
  }
  const double n = static_cast<double>(a.pixels.size());
  const double m = sum / n;
  *mean = static_cast<float>(m);
  *stddev = static_cast<float>(std::sqrt(std::max(0.0, sum2 / n - m * m)));
}

/// Mean NDVI over one quadrant of the patch (2x2 spatial pyramid cell).
float QuadrantNdvi(const BandRaster& nir, const BandRaster& red, int qr,
                   int qc) {
  const int half_h = nir.height / 2, half_w = nir.width / 2;
  double sum = 0.0;
  int count = 0;
  for (int r = qr * half_h; r < (qr + 1) * half_h; ++r) {
    for (int c = qc * half_w; c < (qc + 1) * half_w; ++c) {
      const double vn = nir.at(r, c), vr = red.at(r, c);
      sum += (vn + vr) > 0 ? (vn - vr) / (vn + vr) : 0.0;
      ++count;
    }
  }
  return count > 0 ? static_cast<float>(sum / count) : 0.0f;
}

/// Analytic normalised difference of two expected band values.
float ExpectedIndex(float a, float b) {
  return (a + b) > 0.0f ? (a - b) / (a + b) : 0.0f;
}

}  // namespace

FeatureExtractor::FeatureExtractor(uint64_t projection_seed) {
  Rng rng(projection_seed, /*stream=*/3);
  // Gaussian random projection, scaled so outputs land in tanh's useful
  // range for unit-scale inputs.
  projection_ = Tensor::RandomNormal(
      {kRawFeatureDim, kFeatureDim},
      1.0f / std::sqrt(static_cast<float>(kRawFeatureDim)), &rng);
}

std::vector<float> FeatureExtractor::RawFromPixels(const Patch& patch) const {
  std::vector<float> raw;
  raw.reserve(kRawFeatureDim);

  // 12 S2 bands: mean + std.
  for (int b = 0; b < kNumS2Bands; ++b) {
    float m, s;
    BandStats(patch.s2_bands[static_cast<size_t>(b)], &m, &s);
    raw.push_back(m);
    raw.push_back(s);
  }
  // 2 S1 channels: mean + std.
  for (int ch = 0; ch < kNumS1Channels; ++ch) {
    float m, s;
    BandStats(patch.s1_channels[static_cast<size_t>(ch)], &m, &s);
    raw.push_back(m);
    raw.push_back(s);
  }

  // Spectral indices at 10 m: NDVI (B08 vs B04), NDWI (B03 vs B08),
  // NDBI-like (SWIR B11 vs NIR B8A, both 20 m).
  float m, s;
  IndexStats(patch.s2(S2Band::kB08), patch.s2(S2Band::kB04), &m, &s);
  raw.push_back(m);
  raw.push_back(s);
  IndexStats(patch.s2(S2Band::kB03), patch.s2(S2Band::kB08), &m, &s);
  raw.push_back(m);
  raw.push_back(s);
  IndexStats(patch.s2(S2Band::kB11), patch.s2(S2Band::kB8A), &m, &s);
  raw.push_back(m);
  raw.push_back(s);

  // 2x2 NDVI spatial pyramid (coarse layout information).
  for (int qr = 0; qr < 2; ++qr) {
    for (int qc = 0; qc < 2; ++qc) {
      raw.push_back(
          QuadrantNdvi(patch.s2(S2Band::kB08), patch.s2(S2Band::kB04), qr, qc));
    }
  }

  assert(raw.size() == kRawFeatureDim);
  return raw;
}

std::vector<float> FeatureExtractor::RawFromMetadata(
    const PatchMetadata& meta, const ArchiveGenerator& generator) const {
  const std::vector<float> weights = generator.LabelWeightsFor(meta);
  const SpectralSignature blend =
      generator.spectral_model().Blend(meta.labels, weights);

  // Reproduce the per-patch radiometric jitter of SynthesizePatch so the
  // fast path and pixel path share calibration.
  Rng rng(PatchNameHash(meta.name) ^ generator.seed(), /*stream=*/17);
  const float patch_gain = static_cast<float>(rng.Uniform(0.92, 1.08));
  const float season_gain =
      meta.season == Season::kWinter ? 0.85f
      : meta.season == Season::kSummer ? 1.05f : 1.0f;
  const float gain = patch_gain * season_gain;

  // Expected mixing std: within-class texture plus between-class spread.
  const float sigma = blend.texture_sigma / 10000.0f;

  std::vector<float> raw;
  raw.reserve(kRawFeatureDim);
  auto dn_to_refl = [gain](float dn) { return dn * gain / 10000.0f; };

  for (int b = 0; b < kNumS2Bands; ++b) {
    const float mean = dn_to_refl(blend.s2_dn[static_cast<size_t>(b)]);
    raw.push_back(mean + static_cast<float>(rng.Normal(0.0, sigma * 0.05)));
    raw.push_back(sigma + static_cast<float>(rng.Normal(0.0, sigma * 0.1)));
  }
  for (int ch = 0; ch < kNumS1Channels; ++ch) {
    const float mean = dn_to_refl(blend.s1_dn[static_cast<size_t>(ch)]);
    raw.push_back(mean + static_cast<float>(rng.Normal(0.0, sigma * 0.05)));
    raw.push_back(sigma + static_cast<float>(rng.Normal(0.0, sigma * 0.1)));
  }

  const auto b04 = blend.s2_dn[static_cast<size_t>(S2Band::kB04)];
  const auto b03 = blend.s2_dn[static_cast<size_t>(S2Band::kB03)];
  const auto b08 = blend.s2_dn[static_cast<size_t>(S2Band::kB08)];
  const auto b8a = blend.s2_dn[static_cast<size_t>(S2Band::kB8A)];
  const auto b11 = blend.s2_dn[static_cast<size_t>(S2Band::kB11)];

  const float ndvi = ExpectedIndex(b08, b04);
  const float ndwi = ExpectedIndex(b03, b08);
  const float ndbi = ExpectedIndex(b11, b8a);
  const float idx_noise = 0.02f;
  raw.push_back(ndvi + static_cast<float>(rng.Normal(0.0, idx_noise)));
  raw.push_back(sigma * 2.0f);
  raw.push_back(ndwi + static_cast<float>(rng.Normal(0.0, idx_noise)));
  raw.push_back(sigma * 2.0f);
  raw.push_back(ndbi + static_cast<float>(rng.Normal(0.0, idx_noise)));
  raw.push_back(sigma * 2.0f);

  // Quadrant NDVI: expected NDVI per quadrant with layout noise (which
  // labels fall in which quadrant varies per patch).
  for (int q = 0; q < 4; ++q) {
    raw.push_back(ndvi + static_cast<float>(rng.Normal(0.0, 0.08)));
  }

  assert(raw.size() == kRawFeatureDim);
  return raw;
}

Tensor FeatureExtractor::Project(const std::vector<float>& raw) const {
  assert(raw.size() == kRawFeatureDim);
  Tensor x({1, kRawFeatureDim}, std::vector<float>(raw.begin(), raw.end()));
  Tensor projected = MatMul(x, projection_);
  projected.Apply([](float v) { return std::tanh(2.0f * v); });
  return projected.Reshaped({kFeatureDim});
}

Tensor FeatureExtractor::ExtractFromPixels(const Patch& patch) const {
  return Project(RawFromPixels(patch));
}

Tensor FeatureExtractor::ExtractFromMetadata(
    const PatchMetadata& meta, const ArchiveGenerator& generator) const {
  return Project(RawFromMetadata(meta, generator));
}

Tensor FeatureExtractor::ExtractArchive(const Archive& archive,
                                        const ArchiveGenerator& generator,
                                        size_t num_threads) const {
  const size_t n = archive.patches.size();
  Tensor features({n, kFeatureDim});
  ThreadPool pool(num_threads);
  pool.ParallelFor(n, [&](size_t i) {
    const Tensor f = ExtractFromMetadata(archive.patches[i], generator);
    features.SetRow(i, f);
  });
  return features;
}

}  // namespace agoraeo::bigearthnet
