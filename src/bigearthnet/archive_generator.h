#ifndef AGORAEO_BIGEARTHNET_ARCHIVE_GENERATOR_H_
#define AGORAEO_BIGEARTHNET_ARCHIVE_GENERATOR_H_

#include <string>
#include <vector>

#include "bigearthnet/clc_labels.h"
#include "bigearthnet/patch.h"
#include "bigearthnet/spectral_model.h"
#include "common/random.h"
#include "common/status.h"
#include "common/time_util.h"
#include "geo/geo.h"

namespace agoraeo::bigearthnet {

/// One of the 10 countries BigEarthNet covers, with an approximate
/// geographic extent used to place synthetic patches.
struct Country {
  const char* name;
  geo::BoundingBox extent;
  bool has_coast;  ///< whether coastal/marine themes may occur
};

/// The 10 BigEarthNet countries (Austria, Belgium, Finland, Ireland,
/// Kosovo, Lithuania, Luxembourg, Portugal, Serbia, Switzerland).
const std::vector<Country>& BigEarthNetCountries();

StatusOr<const Country*> CountryByName(const std::string& name);

/// A thematic template for a generator scene: which labels co-occur in
/// patches of that scene and how often.  Themes encode the land-cover
/// co-occurrence structure the paper's demo scenarios rely on (e.g.
/// industrial units adjacent to inland water, beaches near coniferous
/// forest on the coast).
struct SceneTheme {
  const char* name;
  /// Labels almost always present (probability kCoreLabelProb each).
  std::vector<LabelId> core_labels;
  /// Labels sometimes present (probability kSatelliteLabelProb each).
  std::vector<LabelId> satellite_labels;
  /// Relative frequency of this theme among scenes.
  double frequency;
  /// Whether this theme requires a coastal country.
  bool coastal_only;
};

/// The built-in theme catalogue (urban, agricultural, forest, coastal,
/// wetland, lake district, mountain, burnt forest, industrial waterfront,
/// river valley, ...).
const std::vector<SceneTheme>& SceneThemes();

/// Configuration for synthesising a BigEarthNet-like archive.
struct ArchiveConfig {
  /// Number of patch (pairs) to generate.  The real archive has 590,326;
  /// tests use a few thousand, benches sweep up to the full size.
  size_t num_patches = 10000;
  /// RNG seed; same seed => bit-identical archive.
  uint64_t seed = 42;
  /// Average number of patches per scene; controls spatial label
  /// correlation (each scene is a contiguous ~10x10 km neighbourhood
  /// sharing a theme).
  size_t patches_per_scene = 48;
  /// Acquisition window; BigEarthNet spans June 2017 - May 2018.
  DateRange dates{CivilDate(2017, 6, 1), CivilDate(2018, 5, 31)};
  /// Restrict generation to these countries (empty = all 10).
  std::vector<std::string> countries;
};

/// A generated archive: patch metadata in generation order plus the scene
/// table.  Pixel rasters are synthesised on demand (patches are ~200 KB
/// each; an eagerly materialised 590k-patch archive would not fit in
/// memory, mirroring why EarthQube keeps pixels in a separate collection).
struct Archive {
  ArchiveConfig config;
  std::vector<PatchMetadata> patches;
  /// Scene centers (diagnostic; index = PatchMetadata::scene_id).
  std::vector<geo::GeoPoint> scene_centers;
  /// Theme index per scene (into SceneThemes()).
  std::vector<int> scene_themes;
};

/// Deterministic archive synthesiser.
class ArchiveGenerator {
 public:
  explicit ArchiveGenerator(ArchiveConfig config);

  /// Generates the metadata for the whole archive.  O(num_patches).
  StatusOr<Archive> Generate();

  /// Materialises the full raster stack for one patch.  Deterministic in
  /// (archive seed, patch name): repeated calls return identical pixels.
  Patch SynthesizePatch(const PatchMetadata& meta) const;

  /// The per-label area weights used when synthesising `meta`'s pixels
  /// (deterministic in the patch name); exposed so the fast feature path
  /// and the pixel path agree.
  std::vector<float> LabelWeightsFor(const PatchMetadata& meta) const;

  const SpectralModel& spectral_model() const { return spectral_model_; }

  /// The archive seed (all per-patch determinism derives from it).
  uint64_t seed() const { return config_.seed; }

 private:
  ArchiveConfig config_;
  SpectralModel spectral_model_;
};

/// Stable 64-bit FNV-1a hash of a patch name; the seed for all per-patch
/// deterministic randomness.
uint64_t PatchNameHash(const std::string& name);

}  // namespace agoraeo::bigearthnet

#endif  // AGORAEO_BIGEARTHNET_ARCHIVE_GENERATOR_H_
