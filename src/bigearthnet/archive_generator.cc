#include "bigearthnet/archive_generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace agoraeo::bigearthnet {

namespace {

constexpr double kCoreLabelProb = 0.92;
constexpr double kSatelliteLabelProb = 0.30;
/// A BigEarthNet patch covers 1.2 km x 1.2 km; in degrees of latitude.
constexpr double kPatchDegLat = 1.2 / 111.0;
/// Scene radius: patches of a scene scatter within ~6 km of its center.
constexpr double kSceneRadiusDeg = 6.0 / 111.0;

const std::vector<Country>& CountriesTable() {
  static const std::vector<Country>* kCountries = new std::vector<Country>{
      {"Austria", {{46.4, 9.5}, {49.0, 17.2}}, false},
      {"Belgium", {{49.5, 2.5}, {51.5, 6.4}}, true},
      {"Finland", {{59.8, 20.6}, {70.1, 31.6}}, true},
      {"Ireland", {{51.4, -10.5}, {55.4, -6.0}}, true},
      {"Kosovo", {{41.8, 20.0}, {43.3, 21.8}}, false},
      {"Lithuania", {{53.9, 21.0}, {56.4, 26.8}}, true},
      {"Luxembourg", {{49.4, 5.7}, {50.2, 6.5}}, false},
      {"Portugal", {{37.0, -9.5}, {42.2, -6.2}}, true},
      {"Serbia", {{42.2, 18.8}, {46.2, 23.0}}, false},
      {"Switzerland", {{45.8, 6.0}, {47.8, 10.5}}, false},
  };
  return *kCountries;
}

// LabelIds (see clc_labels.cc): 0 cont-urban, 1 disc-urban, 2 industrial,
// 3 road/rail, 4 port, 5 airport, 6 mineral, 7 dump, 8 construction,
// 9 green-urban, 10 sport, 11 non-irr-arable, 12 irrigated, 13 rice,
// 14 vineyards, 15 fruit, 16 olive, 17 pastures, 18 annual+perm,
// 19 complex-cult, 20 agri+natural, 21 agro-forestry, 22 broadleaf,
// 23 conifer, 24 mixed-forest, 25 natural-grass, 26 moors, 27 sclero,
// 28 transitional, 29 beaches, 30 bare-rock, 31 sparse, 32 burnt,
// 33 inland-marsh, 34 peatbog, 35 salt-marsh, 36 salines, 37 intertidal,
// 38 water-course, 39 water-body, 40 coastal-lagoon, 41 estuary, 42 sea.
const std::vector<SceneTheme>& ThemesTable() {
  static const std::vector<SceneTheme>* kThemes = new std::vector<SceneTheme>{
      {"dense_urban", {0, 1}, {2, 3, 9, 10, 5}, 0.07, false},
      {"suburban", {1}, {9, 10, 3, 19, 17}, 0.08, false},
      {"industrial_waterfront", {2, 39}, {3, 7, 8, 1, 38}, 0.05, false},
      {"airport_zone", {5}, {1, 3, 17, 11}, 0.02, false},
      {"arable_plain", {11}, {17, 19, 18, 1, 38}, 0.13, false},
      {"irrigated_valley", {12, 38}, {13, 19, 11, 33}, 0.04, false},
      {"vineyard_hills", {14}, {15, 16, 18, 19, 1}, 0.05, false},
      {"pasture_land", {17}, {11, 20, 25, 1}, 0.09, false},
      {"mixed_agriculture", {19, 20}, {11, 17, 21, 28, 18}, 0.08, false},
      {"broadleaf_forest", {22}, {24, 28, 20, 25}, 0.08, false},
      {"conifer_forest", {23}, {24, 28, 34, 25}, 0.09, false},
      {"mixed_forest", {24}, {22, 23, 28, 25}, 0.05, false},
      {"mountain", {30, 31}, {25, 23, 26, 28}, 0.04, false},
      {"moorland", {26}, {34, 25, 28, 17}, 0.03, false},
      {"lake_district", {39}, {23, 22, 17, 33, 38, 2}, 0.06, false},
      {"river_valley", {38}, {20, 17, 33, 1, 19}, 0.04, false},
      {"inland_wetland", {33, 39}, {34, 26, 17, 38}, 0.03, false},
      {"burnt_forest", {32}, {23, 28, 31, 25}, 0.02, false},
      // Coastal themes (coastal countries only).
      {"coastal_beach", {29, 42}, {23, 28, 40, 35, 30}, 0.04, true},
      {"estuary_zone", {41, 42}, {37, 35, 38, 4}, 0.02, true},
      {"port_city", {4, 42}, {2, 0, 1, 3}, 0.02, true},
      {"salt_works", {36, 42}, {35, 37, 29}, 0.01, true},
      {"coastal_lagoon", {40, 42}, {29, 35, 33}, 0.02, true},
  };
  return *kThemes;
}

}  // namespace

const std::vector<Country>& BigEarthNetCountries() { return CountriesTable(); }

StatusOr<const Country*> CountryByName(const std::string& name) {
  for (const Country& c : CountriesTable()) {
    if (c.name == name) return &c;
  }
  return Status::NotFound("unknown BigEarthNet country: " + name);
}

const std::vector<SceneTheme>& SceneThemes() { return ThemesTable(); }

uint64_t PatchNameHash(const std::string& name) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : name) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

ArchiveGenerator::ArchiveGenerator(ArchiveConfig config)
    : config_(std::move(config)) {}

StatusOr<Archive> ArchiveGenerator::Generate() {
  if (config_.num_patches == 0) {
    return Status::InvalidArgument("num_patches must be positive");
  }
  if (config_.patches_per_scene == 0) {
    return Status::InvalidArgument("patches_per_scene must be positive");
  }

  // Resolve the country subset.
  std::vector<const Country*> countries;
  if (config_.countries.empty()) {
    for (const Country& c : CountriesTable()) countries.push_back(&c);
  } else {
    for (const std::string& name : config_.countries) {
      AGORAEO_ASSIGN_OR_RETURN(const Country* c, CountryByName(name));
      countries.push_back(c);
    }
  }

  Archive archive;
  archive.config = config_;
  archive.patches.reserve(config_.num_patches);

  Rng rng(config_.seed, /*stream=*/7);
  const auto& themes = ThemesTable();

  // Theme sampling weights, precomputed per country class (coastal or not).
  std::vector<double> coastal_weights, inland_weights;
  for (const SceneTheme& t : themes) {
    coastal_weights.push_back(t.frequency);
    inland_weights.push_back(t.coastal_only ? 0.0 : t.frequency);
  }

  const size_t num_scenes =
      (config_.num_patches + config_.patches_per_scene - 1) /
      config_.patches_per_scene;

  const int64_t date_begin = config_.dates.begin.ToOrdinal();
  const int64_t date_end = config_.dates.end.ToOrdinal();

  size_t made = 0;
  for (size_t scene = 0; scene < num_scenes && made < config_.num_patches;
       ++scene) {
    const Country& country = *countries[rng.UniformInt(
        static_cast<uint32_t>(countries.size()))];
    const int theme_idx = static_cast<int>(rng.WeightedIndex(
        country.has_coast ? coastal_weights : inland_weights));
    const SceneTheme& theme = themes[static_cast<size_t>(theme_idx)];

    // Scene center uniformly within the country's extent (kept away from
    // the border by the scene radius so patches stay inside).
    geo::GeoPoint center{
        rng.Uniform(country.extent.min.lat + kSceneRadiusDeg,
                    country.extent.max.lat - kSceneRadiusDeg),
        rng.Uniform(country.extent.min.lon + kSceneRadiusDeg,
                    country.extent.max.lon - kSceneRadiusDeg)};
    archive.scene_centers.push_back(center);
    archive.scene_themes.push_back(theme_idx);

    // All patches of a scene share one acquisition date (one Sentinel
    // overpass covers the whole scene).
    const CivilDate date =
        CivilDate::FromOrdinal(rng.UniformInt(date_begin, date_end));

    const size_t in_scene = std::min(config_.patches_per_scene,
                                     config_.num_patches - made);
    for (size_t p = 0; p < in_scene; ++p, ++made) {
      PatchMetadata meta;
      meta.scene_id = static_cast<int>(scene);
      meta.country = country.name;
      meta.acquisition_date = date;
      meta.season = date.GetSeason();

      // Multi-label sampling from the scene theme.
      std::vector<LabelId> ids;
      for (LabelId id : theme.core_labels) {
        if (rng.Bernoulli(kCoreLabelProb)) ids.push_back(id);
      }
      for (LabelId id : theme.satellite_labels) {
        if (rng.Bernoulli(kSatelliteLabelProb)) ids.push_back(id);
      }
      if (ids.empty()) ids.push_back(theme.core_labels.front());
      meta.labels = LabelSet(std::move(ids));

      // Patch position: jittered around the scene center.
      const double lat = center.lat + rng.Normal(0.0, kSceneRadiusDeg / 2.0);
      const double lon = center.lon + rng.Normal(0.0, kSceneRadiusDeg / 2.0);
      const double coslat = std::max(0.2, std::cos(lat * M_PI / 180.0));
      meta.bounds.min = {lat, lon};
      meta.bounds.max = {lat + kPatchDegLat, lon + kPatchDegLat / coslat};

      meta.name = StrFormat(
          "S2%c_MSIL2A_%04d%02d%02dT%02d%02d%02d_%zu_%zu",
          (PatchNameHash(country.name) + scene) % 2 == 0 ? 'A' : 'B',
          date.year(), date.month(), date.day(),
          static_cast<int>(rng.UniformInt(24)),
          static_cast<int>(rng.UniformInt(60)),
          static_cast<int>(rng.UniformInt(60)), scene, p);
      archive.patches.push_back(std::move(meta));
    }
  }

  AGORAEO_LOG(kInfo) << "generated archive: " << archive.patches.size()
                     << " patches, " << archive.scene_centers.size()
                     << " scenes";
  return archive;
}

std::vector<float> ArchiveGenerator::LabelWeightsFor(
    const PatchMetadata& meta) const {
  // Deterministic Dirichlet-like weights from the patch name: the first
  // label of the set tends to dominate (it is the scene's core class).
  Rng rng(PatchNameHash(meta.name), /*stream=*/11);
  std::vector<float> weights(meta.labels.size());
  float total = 0.0f;
  for (size_t i = 0; i < weights.size(); ++i) {
    // Exponential spacing: earlier labels get larger expected area.
    const float base = 1.0f / static_cast<float>(1 + i);
    weights[i] = base * static_cast<float>(0.25 + rng.UniformDouble());
    total += weights[i];
  }
  for (float& w : weights) w /= total;
  return weights;
}

Patch ArchiveGenerator::SynthesizePatch(const PatchMetadata& meta) const {
  Patch patch;
  patch.meta = meta;

  const uint64_t seed = PatchNameHash(meta.name) ^ config_.seed;
  Rng rng(seed, /*stream=*/13);

  const std::vector<float> weights = LabelWeightsFor(meta);
  const auto& ids = meta.labels.ids();

  // Spatial layout: K label regions as a Voronoi partition of the 120x120
  // grid (seeds drawn once); every band samples the same layout at its own
  // resolution, so bands are spatially consistent.
  struct Site {
    float row, col;
    size_t label_index;
  };
  std::vector<Site> sites;
  // More area weight => more Voronoi sites.
  for (size_t i = 0; i < ids.size(); ++i) {
    const int n_sites = std::max(1, static_cast<int>(weights[i] * 8.0f + 0.5f));
    for (int s = 0; s < n_sites; ++s) {
      sites.push_back({static_cast<float>(rng.Uniform(0, 120)),
                       static_cast<float>(rng.Uniform(0, 120)), i});
    }
  }

  auto label_at = [&sites](float row, float col) -> size_t {
    float best = 1e30f;
    size_t best_label = 0;
    for (const Site& s : sites) {
      const float dr = s.row - row, dc = s.col - col;
      const float d = dr * dr + dc * dc;
      if (d < best) {
        best = d;
        best_label = s.label_index;
      }
    }
    return best_label;
  };

  // Per-patch radiometric jitter: one multiplicative factor per patch
  // (atmospheric/illumination variation between acquisitions).
  const float patch_gain = static_cast<float>(rng.Uniform(0.92, 1.08));
  // Seasonal modulation: vegetation is darker in winter.
  const float season_gain =
      meta.season == Season::kWinter ? 0.85f
      : meta.season == Season::kSummer ? 1.05f : 1.0f;

  auto synth_band = [&](const char* name, int resolution, int px,
                        auto&& expected_dn) {
    BandRaster band;
    band.name = name;
    band.resolution_m = resolution;
    band.width = px;
    band.height = px;
    band.pixels.resize(static_cast<size_t>(px) * px);
    const float scale = 120.0f / static_cast<float>(px);
    for (int r = 0; r < px; ++r) {
      for (int c = 0; c < px; ++c) {
        const size_t li = label_at((r + 0.5f) * scale, (c + 0.5f) * scale);
        const SpectralSignature& sig =
            spectral_model_.signature(ids[li]);
        float dn = expected_dn(sig);
        dn *= patch_gain * season_gain;
        dn += static_cast<float>(rng.Normal(0.0, sig.texture_sigma));
        dn = std::clamp(dn, 0.0f, 10000.0f);
        band.at(r, c) = static_cast<uint16_t>(dn);
      }
    }
    return band;
  };

  patch.s2_bands.reserve(kNumS2Bands);
  for (int b = 0; b < kNumS2Bands; ++b) {
    const S2Band band = static_cast<S2Band>(b);
    patch.s2_bands.push_back(synth_band(
        S2BandName(band), S2BandResolution(band), S2BandPixels(band),
        [b](const SpectralSignature& sig) {
          return sig.s2_dn[static_cast<size_t>(b)];
        }));
  }
  patch.s1_channels.reserve(kNumS1Channels);
  for (int ch = 0; ch < kNumS1Channels; ++ch) {
    patch.s1_channels.push_back(synth_band(
        S1ChannelName(static_cast<S1Channel>(ch)), 10, 120,
        [ch](const SpectralSignature& sig) {
          return sig.s1_dn[static_cast<size_t>(ch)];
        }));
  }
  return patch;
}

}  // namespace agoraeo::bigearthnet
