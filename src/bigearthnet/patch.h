#ifndef AGORAEO_BIGEARTHNET_PATCH_H_
#define AGORAEO_BIGEARTHNET_PATCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bigearthnet/clc_labels.h"
#include "common/time_util.h"
#include "geo/geo.h"

namespace agoraeo::bigearthnet {

/// The 12 Sentinel-2 spectral bands kept by BigEarthNet (band 10 is
/// excluded because it carries no surface information), in archive order.
enum class S2Band {
  kB01 = 0,  ///< coastal aerosol, 60 m
  kB02,      ///< blue, 10 m
  kB03,      ///< green, 10 m
  kB04,      ///< red, 10 m
  kB05,      ///< vegetation red edge, 20 m
  kB06,      ///< vegetation red edge, 20 m
  kB07,      ///< vegetation red edge, 20 m
  kB08,      ///< NIR, 10 m
  kB8A,      ///< narrow NIR, 20 m
  kB09,      ///< water vapour, 60 m
  kB11,      ///< SWIR, 20 m
  kB12,      ///< SWIR, 20 m
};

inline constexpr int kNumS2Bands = 12;

/// Band name as used in BigEarthNet file names ("B01".."B12", "B8A").
const char* S2BandName(S2Band band);

/// Ground resolution of a band in meters (10, 20 or 60).
int S2BandResolution(S2Band band);

/// Patch side length in pixels for a band: 120 px @10 m, 60 px @20 m,
/// 20 px @60 m (BigEarthNet patches cover 1.2 x 1.2 km).
int S2BandPixels(S2Band band);

/// Sentinel-1 dual polarisation channels (IW swath mode, 10 m).
enum class S1Channel { kVV = 0, kVH = 1 };
inline constexpr int kNumS1Channels = 2;
const char* S1ChannelName(S1Channel ch);

/// One raster band of a patch.  Pixels are uint16 digital numbers, the
/// encoding Sentinel-2 L2A products use.
struct BandRaster {
  std::string name;          ///< e.g. "B04" or "VV"
  int resolution_m = 0;      ///< ground resolution
  int width = 0;             ///< pixels per row
  int height = 0;            ///< rows
  std::vector<uint16_t> pixels;  ///< row-major, width*height values

  uint16_t at(int row, int col) const { return pixels[row * width + col]; }
  uint16_t& at(int row, int col) { return pixels[row * width + col]; }
};

/// Identifying + queryable attributes of a patch; this is what the
/// EarthQube metadata collection stores per image.
struct PatchMetadata {
  std::string name;          ///< e.g. "S2A_MSIL2A_20170717T113321_42_7"
  LabelSet labels;           ///< CLC multi-labels
  std::string country;       ///< one of the 10 BigEarthNet countries
  CivilDate acquisition_date;
  Season season = Season::kSummer;
  geo::BoundingBox bounds;   ///< 1.2 km x 1.2 km footprint
  /// Index of the generator scene the patch belongs to (diagnostic; lets
  /// tests verify spatial label clustering).
  int scene_id = -1;
};

/// A fully materialised patch: metadata plus the Sentinel-2 bands and
/// Sentinel-1 channels.
struct Patch {
  PatchMetadata meta;
  std::vector<BandRaster> s2_bands;  ///< 12 entries, archive band order
  std::vector<BandRaster> s1_channels;  ///< VV, VH

  const BandRaster& s2(S2Band band) const {
    return s2_bands[static_cast<size_t>(band)];
  }
  const BandRaster& s1(S1Channel ch) const {
    return s1_channels[static_cast<size_t>(ch)];
  }
};

/// Composes the RGB (B04/B03/B02) preview EarthQube renders on the map,
/// as 8-bit interleaved RGB rows (120x120x3).  Digital numbers are
/// linearly stretched per band over [lo_dn, hi_dn].
std::vector<uint8_t> RenderRgb(const Patch& patch, uint16_t lo_dn = 0,
                               uint16_t hi_dn = 4000);

}  // namespace agoraeo::bigearthnet

#endif  // AGORAEO_BIGEARTHNET_PATCH_H_
