#include "bigearthnet/patch.h"

#include <algorithm>

namespace agoraeo::bigearthnet {

const char* S2BandName(S2Band band) {
  switch (band) {
    case S2Band::kB01: return "B01";
    case S2Band::kB02: return "B02";
    case S2Band::kB03: return "B03";
    case S2Band::kB04: return "B04";
    case S2Band::kB05: return "B05";
    case S2Band::kB06: return "B06";
    case S2Band::kB07: return "B07";
    case S2Band::kB08: return "B08";
    case S2Band::kB8A: return "B8A";
    case S2Band::kB09: return "B09";
    case S2Band::kB11: return "B11";
    case S2Band::kB12: return "B12";
  }
  return "?";
}

int S2BandResolution(S2Band band) {
  switch (band) {
    case S2Band::kB02:
    case S2Band::kB03:
    case S2Band::kB04:
    case S2Band::kB08:
      return 10;
    case S2Band::kB05:
    case S2Band::kB06:
    case S2Band::kB07:
    case S2Band::kB8A:
    case S2Band::kB11:
    case S2Band::kB12:
      return 20;
    case S2Band::kB01:
    case S2Band::kB09:
      return 60;
  }
  return 0;
}

int S2BandPixels(S2Band band) {
  switch (S2BandResolution(band)) {
    case 10: return 120;
    case 20: return 60;
    case 60: return 20;
  }
  return 0;
}

const char* S1ChannelName(S1Channel ch) {
  return ch == S1Channel::kVV ? "VV" : "VH";
}

std::vector<uint8_t> RenderRgb(const Patch& patch, uint16_t lo_dn,
                               uint16_t hi_dn) {
  const BandRaster& r = patch.s2(S2Band::kB04);
  const BandRaster& g = patch.s2(S2Band::kB03);
  const BandRaster& b = patch.s2(S2Band::kB02);
  const int w = r.width, h = r.height;
  std::vector<uint8_t> rgb(static_cast<size_t>(w) * h * 3);
  const float span = std::max(1, hi_dn - lo_dn);
  auto stretch = [&](uint16_t dn) -> uint8_t {
    float v = (static_cast<float>(dn) - lo_dn) / span;
    v = std::clamp(v, 0.0f, 1.0f);
    return static_cast<uint8_t>(v * 255.0f + 0.5f);
  };
  for (int i = 0; i < w * h; ++i) {
    rgb[3 * i + 0] = stretch(r.pixels[i]);
    rgb[3 * i + 1] = stretch(g.pixels[i]);
    rgb[3 * i + 2] = stretch(b.pixels[i]);
  }
  return rgb;
}

}  // namespace agoraeo::bigearthnet
