#include "tensor/tensor.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <sstream>

namespace agoraeo {

namespace {
size_t Volume(const std::vector<size_t>& shape) {
  size_t v = 1;
  for (size_t d : shape) v *= d;
  return v;
}
}  // namespace

Tensor::Tensor(std::vector<size_t> shape)
    : shape_(std::move(shape)), data_(Volume(shape_), 0.0f) {}

Tensor::Tensor(std::vector<size_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  assert(data_.size() == Volume(shape_));
}

Tensor Tensor::Full(std::vector<size_t> shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::RandomNormal(std::vector<size_t> shape, float stddev,
                            Rng* rng) {
  Tensor t(std::move(shape));
  for (size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng->Normal(0.0, stddev));
  }
  return t;
}

Tensor Tensor::RandomUniform(std::vector<size_t> shape, float lo, float hi,
                             Rng* rng) {
  Tensor t(std::move(shape));
  for (size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::Reshaped(std::vector<size_t> new_shape) const {
  assert(Volume(new_shape) == data_.size());
  return Tensor(std::move(new_shape), data_);
}

Tensor Tensor::Transposed() const {
  assert(rank() == 2);
  const size_t rows = shape_[0], cols = shape_[1];
  Tensor out({cols, rows});
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      out.at(c, r) = at(r, c);
    }
  }
  return out;
}

Tensor Tensor::Row(size_t r) const {
  assert(rank() == 2 && r < shape_[0]);
  const size_t cols = shape_[1];
  Tensor out({cols});
  std::copy(data_.begin() + r * cols, data_.begin() + (r + 1) * cols,
            out.data());
  return out;
}

void Tensor::SetRow(size_t r, const Tensor& row) {
  assert(rank() == 2 && r < shape_[0] && row.size() == shape_[1]);
  std::copy(row.data(), row.data() + row.size(),
            data_.begin() + r * shape_[1]);
}

Tensor& Tensor::operator+=(const Tensor& other) {
  assert(shape_ == other.shape_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  assert(shape_ == other.shape_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float scalar) {
  for (float& v : data_) v *= scalar;
  return *this;
}

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::Apply(const std::function<float(float)>& fn) {
  for (float& v : data_) v = fn(v);
}

float Tensor::Sum() const {
  return std::accumulate(data_.begin(), data_.end(), 0.0f);
}

float Tensor::Mean() const {
  return data_.empty() ? 0.0f : Sum() / static_cast<float>(data_.size());
}

float Tensor::Min() const {
  assert(!data_.empty());
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::Max() const {
  assert(!data_.empty());
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::L2Norm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

float Tensor::SquaredDistance(const Tensor& other) const {
  assert(shape_ == other.shape_);
  double acc = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    double d = static_cast<double>(data_[i]) - other.data_[i];
    acc += d * d;
  }
  return static_cast<float>(acc);
}

float Tensor::Dot(const Tensor& other) const {
  assert(size() == other.size());
  double acc = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    acc += static_cast<double>(data_[i]) * other.data_[i];
  }
  return static_cast<float>(acc);
}

std::string Tensor::ShapeString() const {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) out << ", ";
    out << shape_[i];
  }
  out << "]";
  return out.str();
}

Tensor Add(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out += b;
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out -= b;
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  assert(a.shape() == b.shape());
  Tensor out = a;
  for (size_t i = 0; i < out.size(); ++i) out[i] *= b[i];
  return out;
}

Tensor Scale(const Tensor& a, float scalar) {
  Tensor out = a;
  out *= scalar;
  return out;
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  assert(a.rank() == 2 && b.rank() == 2 && a.dim(1) == b.dim(0));
  Tensor c({a.dim(0), b.dim(1)});
  MatMulAccumulate(a, b, &c);
  return c;
}

void MatMulAccumulate(const Tensor& a, const Tensor& b, Tensor* c) {
  assert(a.rank() == 2 && b.rank() == 2 && c->rank() == 2);
  const size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  assert(b.dim(0) == k && c->dim(0) == m && c->dim(1) == n);
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c->data();
  // i-k-j loop order: the inner loop streams rows of B and C.
  for (size_t i = 0; i < m; ++i) {
    for (size_t kk = 0; kk < k; ++kk) {
      const float aik = pa[i * k + kk];
      if (aik == 0.0f) continue;
      const float* brow = pb + kk * n;
      float* crow = pc + i * n;
      for (size_t j = 0; j < n; ++j) {
        crow[j] += aik * brow[j];
      }
    }
  }
}

Tensor MatVec(const Tensor& a, const Tensor& x) {
  assert(a.rank() == 2 && x.rank() == 1 && a.dim(1) == x.size());
  const size_t m = a.dim(0), k = a.dim(1);
  Tensor out({m});
  for (size_t i = 0; i < m; ++i) {
    double acc = 0.0;
    const float* row = a.data() + i * k;
    for (size_t j = 0; j < k; ++j) acc += static_cast<double>(row[j]) * x[j];
    out[i] = static_cast<float>(acc);
  }
  return out;
}

void AddBiasRows(Tensor* m, const Tensor& bias) {
  assert(m->rank() == 2 && bias.rank() == 1 && m->dim(1) == bias.size());
  const size_t rows = m->dim(0), cols = m->dim(1);
  float* p = m->data();
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) p[r * cols + c] += bias[c];
  }
}

Tensor SumRows(const Tensor& m) {
  assert(m.rank() == 2);
  const size_t rows = m.dim(0), cols = m.dim(1);
  Tensor out({cols});
  const float* p = m.data();
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) out[c] += p[r * cols + c];
  }
  return out;
}

}  // namespace agoraeo
