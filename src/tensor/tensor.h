#ifndef AGORAEO_TENSOR_TENSOR_H_
#define AGORAEO_TENSOR_TENSOR_H_

#include <cstddef>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace agoraeo {

/// Dense row-major float tensor.  The neural-network substrate only needs
/// rank-1 and rank-2 tensors, but shapes of any rank are supported.
///
/// Tensors own their storage (std::vector<float>); copies are deep.  All
/// shape mismatches are programming errors and are reported via assert in
/// the in-place/arithmetic API; the checked factory functions return
/// StatusOr instead.
class Tensor {
 public:
  /// Rank-0 empty tensor.
  Tensor() = default;

  /// Zero-initialised tensor of the given shape.
  explicit Tensor(std::vector<size_t> shape);

  /// Tensor with explicit contents; `data.size()` must equal the shape
  /// volume (asserted).
  Tensor(std::vector<size_t> shape, std::vector<float> data);

  /// Convenience rank-2 factory.
  static Tensor Matrix(size_t rows, size_t cols) {
    return Tensor({rows, cols});
  }
  /// Convenience rank-1 factory.
  static Tensor Vector(size_t n) { return Tensor({n}); }

  /// All elements set to `value`.
  static Tensor Full(std::vector<size_t> shape, float value);

  /// Elements drawn i.i.d. from N(0, stddev^2).
  static Tensor RandomNormal(std::vector<size_t> shape, float stddev, Rng* rng);

  /// Elements drawn i.i.d. from U(lo, hi).
  static Tensor RandomUniform(std::vector<size_t> shape, float lo, float hi,
                              Rng* rng);

  const std::vector<size_t>& shape() const { return shape_; }
  size_t rank() const { return shape_.size(); }
  size_t dim(size_t i) const { return shape_[i]; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Rank-2 accessors (asserted in debug builds).
  float& at(size_t r, size_t c) { return data_[r * shape_[1] + c]; }
  float at(size_t r, size_t c) const { return data_[r * shape_[1] + c]; }

  float& operator[](size_t i) { return data_[i]; }
  float operator[](size_t i) const { return data_[i]; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Reinterprets the buffer with a new shape of equal volume (asserted).
  Tensor Reshaped(std::vector<size_t> new_shape) const;

  /// Rank-2 transpose.
  Tensor Transposed() const;

  /// Returns row r of a rank-2 tensor as a rank-1 tensor (copy).
  Tensor Row(size_t r) const;

  /// Copies `row` (rank-1, length == cols) into row r.
  void SetRow(size_t r, const Tensor& row);

  /// Elementwise in-place operations; shapes must match exactly.
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(float scalar);
  void Fill(float value);

  /// Applies fn to every element in place.
  void Apply(const std::function<float(float)>& fn);

  /// Sum / mean / min / max over all elements (0 for empty tensors where
  /// applicable; min/max assert non-empty).
  float Sum() const;
  float Mean() const;
  float Min() const;
  float Max() const;

  /// Euclidean norm over all elements.
  float L2Norm() const;

  /// Squared L2 distance to `other` (same shape, asserted).
  float SquaredDistance(const Tensor& other) const;

  /// Dot product with `other` (same volume, asserted).
  float Dot(const Tensor& other) const;

  /// Human-readable shape, e.g. "[32, 128]".
  std::string ShapeString() const;

  bool operator==(const Tensor& other) const {
    return shape_ == other.shape_ && data_ == other.data_;
  }

 private:
  std::vector<size_t> shape_;
  std::vector<float> data_;
};

/// out = a + b (same shape).
Tensor Add(const Tensor& a, const Tensor& b);
/// out = a - b (same shape).
Tensor Sub(const Tensor& a, const Tensor& b);
/// out = a * b elementwise (same shape).
Tensor Mul(const Tensor& a, const Tensor& b);
/// out = a * scalar.
Tensor Scale(const Tensor& a, float scalar);

/// Rank-2 matrix product: [m,k] x [k,n] -> [m,n].  Blocked loop order
/// (i,k,j) for cache friendliness; no BLAS dependency.
Tensor MatMul(const Tensor& a, const Tensor& b);

/// C += A * B without allocating; shapes as MatMul, C must be [m,n].
void MatMulAccumulate(const Tensor& a, const Tensor& b, Tensor* c);

/// Rank-2 x rank-1: [m,k] x [k] -> [m].
Tensor MatVec(const Tensor& a, const Tensor& x);

/// Adds `bias` ([n]) to every row of `m` ([r,n]) in place.
void AddBiasRows(Tensor* m, const Tensor& bias);

/// Sums rows of `m` ([r,n]) into a [n] tensor (gradient of AddBiasRows).
Tensor SumRows(const Tensor& m);

}  // namespace agoraeo

#endif  // AGORAEO_TENSOR_TENSOR_H_
