#ifndef AGORAEO_JSON_JSON_H_
#define AGORAEO_JSON_JSON_H_

#include <string>

#include "common/status.h"
#include "docstore/value.h"

/// JSON (de)serialisation over the docstore value model — the wire
/// format of EarthQube's back-end HTTP API (the paper's three-tier
/// architecture puts a JSON-speaking server between the UI and the data
/// tier).
///
/// Mapping:
///   null / bool / string  <->  the same JSON type
///   int64                 <->  JSON number without fraction/exponent
///   double                <->  JSON number (NaN/Inf serialise as null,
///                              which JSON cannot represent)
///   array / document      <->  JSON array / object
///   binary                 ->  base64 string (lossy direction: parsing
///                              yields a plain string; binary payloads
///                              cross the API base64-tagged by schema)
namespace agoraeo::json {

/// Serialises a value to compact JSON (`pretty` adds two-space
/// indentation and newlines).
std::string Serialize(const docstore::Value& value, bool pretty = false);
std::string Serialize(const docstore::Document& doc, bool pretty = false);

/// Parses a complete JSON text into a value.  InvalidArgument on any
/// syntax error (with offset), on trailing content, and on nesting
/// deeper than 128 levels.  Numbers with fraction or exponent parse as
/// double, others as int64 (falling back to double on overflow).
StatusOr<docstore::Value> Parse(const std::string& text);

/// Parses a JSON object specifically (InvalidArgument when the text is
/// valid JSON but not an object).
StatusOr<docstore::Document> ParseObject(const std::string& text);

/// Standard base64 (RFC 4648) used for binary payloads crossing the API.
std::string Base64Encode(const std::vector<uint8_t>& bytes);
StatusOr<std::vector<uint8_t>> Base64Decode(const std::string& text);

}  // namespace agoraeo::json

#endif  // AGORAEO_JSON_JSON_H_
