#include "json/json.h"

#include <cerrno>
#include <cmath>
#include <cstring>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace agoraeo::json {

using docstore::Document;
using docstore::Value;

// ---------------------------------------------------------------------------
// Serialisation
// ---------------------------------------------------------------------------

namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(double d, std::string* out) {
  if (!std::isfinite(d)) {
    *out += "null";  // JSON has no NaN/Inf
    return;
  }
  char buf[32];
  // %.17g round-trips any double; trim to shortest via %g first.
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  double back = std::strtod(buf, nullptr);
  if (back == d) {
    char shorter[32];
    std::snprintf(shorter, sizeof(shorter), "%.15g", d);
    if (std::strtod(shorter, nullptr) == d) {
      *out += shorter;
      return;
    }
  }
  *out += buf;
}

void AppendIndent(int depth, std::string* out) {
  out->push_back('\n');
  out->append(static_cast<size_t>(depth) * 2, ' ');
}

void SerializeTo(const Value& v, bool pretty, int depth, std::string* out);

void SerializeDoc(const Document& d, bool pretty, int depth,
                  std::string* out) {
  if (d.empty()) {
    *out += "{}";
    return;
  }
  out->push_back('{');
  bool first = true;
  for (const auto& [key, value] : d.fields()) {
    if (!first) out->push_back(',');
    first = false;
    if (pretty) AppendIndent(depth + 1, out);
    AppendEscaped(key, out);
    *out += pretty ? ": " : ":";
    SerializeTo(value, pretty, depth + 1, out);
  }
  if (pretty) AppendIndent(depth, out);
  out->push_back('}');
}

void SerializeTo(const Value& v, bool pretty, int depth, std::string* out) {
  switch (v.type()) {
    case Value::Type::kNull:
      *out += "null";
      break;
    case Value::Type::kBool:
      *out += v.as_bool() ? "true" : "false";
      break;
    case Value::Type::kInt64:
      *out += std::to_string(v.as_int64());
      break;
    case Value::Type::kDouble:
      AppendNumber(v.as_double(), out);
      break;
    case Value::Type::kString:
      AppendEscaped(v.as_string(), out);
      break;
    case Value::Type::kBinary:
      AppendEscaped(Base64Encode(v.as_binary()), out);
      break;
    case Value::Type::kArray: {
      const auto& items = v.as_array();
      if (items.empty()) {
        *out += "[]";
        break;
      }
      out->push_back('[');
      bool first = true;
      for (const Value& item : items) {
        if (!first) out->push_back(',');
        first = false;
        if (pretty) AppendIndent(depth + 1, out);
        SerializeTo(item, pretty, depth + 1, out);
      }
      if (pretty) AppendIndent(depth, out);
      out->push_back(']');
      break;
    }
    case Value::Type::kDocument:
      SerializeDoc(v.as_document(), pretty, depth, out);
      break;
  }
}

}  // namespace

std::string Serialize(const Value& value, bool pretty) {
  std::string out;
  SerializeTo(value, pretty, 0, &out);
  return out;
}

std::string Serialize(const Document& doc, bool pretty) {
  std::string out;
  SerializeDoc(doc, pretty, 0, &out);
  return out;
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

namespace {

constexpr int kMaxDepth = 128;

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  StatusOr<Value> ParseComplete() {
    AGORAEO_ASSIGN_OR_RETURN(Value v, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing content after JSON value");
    }
    return v;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* lit) {
    const size_t n = std::strlen(lit);
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  StatusOr<Value> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return ParseObjectValue(depth);
      case '[': return ParseArray(depth);
      case '"': {
        AGORAEO_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Value(std::move(s));
      }
      case 't':
        if (ConsumeLiteral("true")) return Value(true);
        return Error("bad literal");
      case 'f':
        if (ConsumeLiteral("false")) return Value(false);
        return Error("bad literal");
      case 'n':
        if (ConsumeLiteral("null")) return Value();
        return Error("bad literal");
      default:
        return ParseNumber();
    }
  }

  StatusOr<Value> ParseObjectValue(int depth) {
    ++pos_;  // '{'
    Document doc;
    SkipWhitespace();
    if (Consume('}')) return Value(std::move(doc));
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      AGORAEO_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after key");
      AGORAEO_ASSIGN_OR_RETURN(Value v, ParseValue(depth + 1));
      doc.Set(key, std::move(v));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Value(std::move(doc));
      return Error("expected ',' or '}' in object");
    }
  }

  StatusOr<Value> ParseArray(int depth) {
    ++pos_;  // '['
    std::vector<Value> items;
    SkipWhitespace();
    if (Consume(']')) return Value(std::move(items));
    while (true) {
      AGORAEO_ASSIGN_OR_RETURN(Value v, ParseValue(depth + 1));
      items.push_back(std::move(v));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Value(std::move(items));
      return Error("expected ',' or ']' in array");
    }
  }

  StatusOr<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Error("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            AGORAEO_ASSIGN_OR_RETURN(uint32_t cp, ParseHex4());
            // Surrogate pair handling.
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              if (!(Consume('\\') && Consume('u'))) {
                return Error("unpaired high surrogate");
              }
              AGORAEO_ASSIGN_OR_RETURN(uint32_t low, ParseHex4());
              if (low < 0xDC00 || low > 0xDFFF) {
                return Error("bad low surrogate");
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
            } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
              return Error("unpaired low surrogate");
            }
            AppendUtf8(cp, &out);
            break;
          }
          default:
            return Error("bad escape character");
        }
        continue;
      }
      if (c < 0x20) return Error("raw control character in string");
      out.push_back(static_cast<char>(c));
      ++pos_;
    }
  }

  StatusOr<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<uint32_t>(c - 'A' + 10);
      else return Error("bad hex digit in \\u escape");
    }
    return v;
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  StatusOr<Value> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {}
    if (pos_ >= text_.size()) return Error("truncated number");
    if (!Consume('0')) {
      if (pos_ >= text_.size() || text_[pos_] < '1' || text_[pos_] > '9') {
        return Error("bad number");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    bool is_double = false;
    if (Consume('.')) {
      is_double = true;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("bad fraction");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("bad exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (!is_double) {
      errno = 0;
      char* end = nullptr;
      const long long ll = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        return Value(static_cast<int64_t>(ll));
      }
      // Integer overflow: fall through to double.
    }
    const double d = std::strtod(token.c_str(), nullptr);
    return Value(d);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<Value> Parse(const std::string& text) {
  return Parser(text).ParseComplete();
}

StatusOr<Document> ParseObject(const std::string& text) {
  AGORAEO_ASSIGN_OR_RETURN(Value v, Parse(text));
  if (!v.is_document()) {
    return Status::InvalidArgument("JSON text is not an object");
  }
  return v.as_document();
}

// ---------------------------------------------------------------------------
// Base64
// ---------------------------------------------------------------------------

namespace {
constexpr char kBase64Chars[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

int Base64Index(char c) {
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= 'a' && c <= 'z') return c - 'a' + 26;
  if (c >= '0' && c <= '9') return c - '0' + 52;
  if (c == '+') return 62;
  if (c == '/') return 63;
  return -1;
}
}  // namespace

std::string Base64Encode(const std::vector<uint8_t>& bytes) {
  std::string out;
  out.reserve((bytes.size() + 2) / 3 * 4);
  size_t i = 0;
  while (i + 3 <= bytes.size()) {
    const uint32_t n = (static_cast<uint32_t>(bytes[i]) << 16) |
                       (static_cast<uint32_t>(bytes[i + 1]) << 8) |
                       bytes[i + 2];
    out.push_back(kBase64Chars[(n >> 18) & 63]);
    out.push_back(kBase64Chars[(n >> 12) & 63]);
    out.push_back(kBase64Chars[(n >> 6) & 63]);
    out.push_back(kBase64Chars[n & 63]);
    i += 3;
  }
  const size_t rem = bytes.size() - i;
  if (rem == 1) {
    const uint32_t n = static_cast<uint32_t>(bytes[i]) << 16;
    out.push_back(kBase64Chars[(n >> 18) & 63]);
    out.push_back(kBase64Chars[(n >> 12) & 63]);
    out += "==";
  } else if (rem == 2) {
    const uint32_t n = (static_cast<uint32_t>(bytes[i]) << 16) |
                       (static_cast<uint32_t>(bytes[i + 1]) << 8);
    out.push_back(kBase64Chars[(n >> 18) & 63]);
    out.push_back(kBase64Chars[(n >> 12) & 63]);
    out.push_back(kBase64Chars[(n >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

StatusOr<std::vector<uint8_t>> Base64Decode(const std::string& text) {
  if (text.size() % 4 != 0) {
    return Status::InvalidArgument("base64 length not a multiple of 4");
  }
  std::vector<uint8_t> out;
  out.reserve(text.size() / 4 * 3);
  for (size_t i = 0; i < text.size(); i += 4) {
    int vals[4];
    int pad = 0;
    for (int k = 0; k < 4; ++k) {
      const char c = text[i + k];
      if (c == '=') {
        // Padding only allowed in the last two positions of the final
        // quantum.
        if (i + 4 != text.size() || k < 2) {
          return Status::InvalidArgument("misplaced base64 padding");
        }
        vals[k] = 0;
        ++pad;
      } else {
        if (pad > 0) {
          return Status::InvalidArgument("data after base64 padding");
        }
        vals[k] = Base64Index(c);
        if (vals[k] < 0) {
          return Status::InvalidArgument("bad base64 character");
        }
      }
    }
    const uint32_t n = (static_cast<uint32_t>(vals[0]) << 18) |
                       (static_cast<uint32_t>(vals[1]) << 12) |
                       (static_cast<uint32_t>(vals[2]) << 6) |
                       static_cast<uint32_t>(vals[3]);
    out.push_back(static_cast<uint8_t>((n >> 16) & 0xFF));
    if (pad < 2) out.push_back(static_cast<uint8_t>((n >> 8) & 0xFF));
    if (pad < 1) out.push_back(static_cast<uint8_t>(n & 0xFF));
  }
  return out;
}

}  // namespace agoraeo::json
