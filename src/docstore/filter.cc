#include "docstore/filter.h"

#include <algorithm>
#include <sstream>

namespace agoraeo::docstore {

Filter Filter::True() { return Filter(Op::kTrue); }

Filter Filter::Eq(std::string path, Value v) {
  Filter f(Op::kEq);
  f.path_ = std::move(path);
  f.values_.push_back(std::move(v));
  return f;
}

Filter Filter::Ne(std::string path, Value v) {
  Filter f(Op::kNe);
  f.path_ = std::move(path);
  f.values_.push_back(std::move(v));
  return f;
}

Filter Filter::In(std::string path, std::vector<Value> values) {
  Filter f(Op::kIn);
  f.path_ = std::move(path);
  f.values_ = std::move(values);
  return f;
}

Filter Filter::All(std::string path, std::vector<Value> values) {
  Filter f(Op::kAll);
  f.path_ = std::move(path);
  f.values_ = std::move(values);
  return f;
}

Filter Filter::Size(std::string path, size_t n) {
  Filter f(Op::kSize);
  f.path_ = std::move(path);
  f.size_ = n;
  return f;
}

Filter Filter::Exists(std::string path) {
  Filter f(Op::kExists);
  f.path_ = std::move(path);
  return f;
}

Filter Filter::Gt(std::string path, Value v) {
  Filter f(Op::kGt);
  f.path_ = std::move(path);
  f.values_.push_back(std::move(v));
  return f;
}

Filter Filter::Gte(std::string path, Value v) {
  Filter f(Op::kGte);
  f.path_ = std::move(path);
  f.values_.push_back(std::move(v));
  return f;
}

Filter Filter::Lt(std::string path, Value v) {
  Filter f(Op::kLt);
  f.path_ = std::move(path);
  f.values_.push_back(std::move(v));
  return f;
}

Filter Filter::Lte(std::string path, Value v) {
  Filter f(Op::kLte);
  f.path_ = std::move(path);
  f.values_.push_back(std::move(v));
  return f;
}

Filter Filter::GeoIntersects(std::string path, geo::BoundingBox box) {
  Filter f(Op::kGeoIntersects);
  f.path_ = std::move(path);
  f.box_ = box;
  return f;
}

Filter Filter::GeoWithinCircle(std::string path, geo::Circle circle) {
  Filter f(Op::kGeoWithinCircle);
  f.path_ = std::move(path);
  f.circle_ = circle;
  return f;
}

Filter Filter::GeoWithinPolygon(std::string path, geo::Polygon polygon) {
  Filter f(Op::kGeoWithinPolygon);
  f.path_ = std::move(path);
  f.polygon_ = std::move(polygon);
  return f;
}

Filter Filter::And(std::vector<Filter> children) {
  Filter f(Op::kAnd);
  f.children_ = std::move(children);
  return f;
}

Filter Filter::Or(std::vector<Filter> children) {
  Filter f(Op::kOr);
  f.children_ = std::move(children);
  return f;
}

Filter Filter::Not(Filter child) {
  Filter f(Op::kNot);
  f.children_.push_back(std::move(child));
  return f;
}

bool Filter::ReadStoredBox(const Document& doc, const std::string& path,
                           geo::BoundingBox* out) {
  const Value* loc = doc.GetPath(path);
  if (loc == nullptr || !loc->is_document()) return false;
  const Document& d = loc->as_document();
  const Value* min_lat = d.Get("min_lat");
  const Value* min_lon = d.Get("min_lon");
  const Value* max_lat = d.Get("max_lat");
  const Value* max_lon = d.Get("max_lon");
  if (min_lat == nullptr || !min_lat->is_number() || min_lon == nullptr ||
      !min_lon->is_number() || max_lat == nullptr || !max_lat->is_number() ||
      max_lon == nullptr || !max_lon->is_number()) {
    return false;
  }
  out->min = {min_lat->as_number(), min_lon->as_number()};
  out->max = {max_lat->as_number(), max_lon->as_number()};
  return true;
}

namespace {

/// MongoDB-style scalar-or-any-array-element equality.
bool FieldEquals(const Value& field, const Value& target) {
  if (field.is_array() && !target.is_array()) {
    const auto& arr = field.as_array();
    return std::any_of(arr.begin(), arr.end(),
                       [&](const Value& v) { return v == target; });
  }
  return field == target;
}

/// Scalar-or-any-array-element comparison via `cmp(element, target)`.
template <typename Cmp>
bool FieldCompares(const Value& field, const Value& target, Cmp cmp) {
  if (field.is_array()) {
    const auto& arr = field.as_array();
    return std::any_of(arr.begin(), arr.end(), [&](const Value& v) {
      return cmp(v.Compare(target));
    });
  }
  return cmp(field.Compare(target));
}

}  // namespace

bool Filter::MatchLeaf(const Value& field) const {
  switch (op_) {
    case Op::kEq:
      return FieldEquals(field, values_[0]);
    case Op::kNe:
      return !FieldEquals(field, values_[0]);
    case Op::kIn:
      return std::any_of(values_.begin(), values_.end(), [&](const Value& v) {
        return FieldEquals(field, v);
      });
    case Op::kAll: {
      if (!field.is_array()) {
        // A scalar field satisfies $all only for a single-element query.
        return values_.size() == 1 && field == values_[0];
      }
      return std::all_of(values_.begin(), values_.end(), [&](const Value& v) {
        return FieldEquals(field, v);
      });
    }
    case Op::kSize:
      return field.is_array() && field.as_array().size() == size_;
    case Op::kGt:
      return FieldCompares(field, values_[0], [](int c) { return c > 0; });
    case Op::kGte:
      return FieldCompares(field, values_[0], [](int c) { return c >= 0; });
    case Op::kLt:
      return FieldCompares(field, values_[0], [](int c) { return c < 0; });
    case Op::kLte:
      return FieldCompares(field, values_[0], [](int c) { return c <= 0; });
    default:
      return false;
  }
}

bool Filter::Matches(const Document& doc) const {
  switch (op_) {
    case Op::kTrue:
      return true;
    case Op::kAnd:
      return std::all_of(children_.begin(), children_.end(),
                         [&](const Filter& f) { return f.Matches(doc); });
    case Op::kOr:
      return std::any_of(children_.begin(), children_.end(),
                         [&](const Filter& f) { return f.Matches(doc); });
    case Op::kNot:
      return !children_[0].Matches(doc);
    case Op::kExists:
      return doc.GetPath(path_) != nullptr;
    case Op::kGeoIntersects: {
      geo::BoundingBox stored;
      if (!ReadStoredBox(doc, path_, &stored)) return false;
      return stored.Intersects(box_);
    }
    case Op::kGeoWithinCircle: {
      geo::BoundingBox stored;
      if (!ReadStoredBox(doc, path_, &stored)) return false;
      return circle_.Contains(stored.Center());
    }
    case Op::kGeoWithinPolygon: {
      geo::BoundingBox stored;
      if (!ReadStoredBox(doc, path_, &stored)) return false;
      return polygon_.Contains(stored.Center());
    }
    default: {
      const Value* field = doc.GetPath(path_);
      if (field == nullptr) return op_ == Op::kNe;  // missing != value
      return MatchLeaf(*field);
    }
  }
}

std::string Filter::ToString() const {
  std::ostringstream out;
  auto join_children = [&](const char* name) {
    out << name << "(";
    for (size_t i = 0; i < children_.size(); ++i) {
      if (i > 0) out << ", ";
      out << children_[i].ToString();
    }
    out << ")";
  };
  switch (op_) {
    case Op::kTrue:
      out << "True";
      break;
    case Op::kAnd:
      join_children("And");
      break;
    case Op::kOr:
      join_children("Or");
      break;
    case Op::kNot:
      join_children("Not");
      break;
    case Op::kExists:
      out << "Exists(" << path_ << ")";
      break;
    case Op::kSize:
      out << "Size(" << path_ << ", " << size_ << ")";
      break;
    case Op::kGeoIntersects:
      out << "GeoIntersects(" << path_ << ")";
      break;
    case Op::kGeoWithinCircle:
      out << "GeoWithinCircle(" << path_ << ")";
      break;
    case Op::kGeoWithinPolygon:
      out << "GeoWithinPolygon(" << path_ << ")";
      break;
    default: {
      const char* name = op_ == Op::kEq    ? "Eq"
                         : op_ == Op::kNe  ? "Ne"
                         : op_ == Op::kIn  ? "In"
                         : op_ == Op::kAll ? "All"
                         : op_ == Op::kGt  ? "Gt"
                         : op_ == Op::kGte ? "Gte"
                         : op_ == Op::kLt  ? "Lt"
                                           : "Lte";
      out << name << "(" << path_;
      for (const Value& v : values_) out << ", " << v.ToString();
      out << ")";
    }
  }
  return out.str();
}

}  // namespace agoraeo::docstore
