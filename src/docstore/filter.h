#ifndef AGORAEO_DOCSTORE_FILTER_H_
#define AGORAEO_DOCSTORE_FILTER_H_

#include <memory>
#include <string>
#include <vector>

#include "docstore/value.h"
#include "geo/geo.h"

namespace agoraeo::docstore {

/// A predicate tree over documents, mirroring the subset of MongoDB's
/// query language EarthQube's back end issues: equality, membership,
/// array containment, ranges, existence, geo containment, and boolean
/// combinators.
///
/// Array-field semantics follow MongoDB: a comparison on a path whose
/// value is an array matches when *any* element matches (e.g.
/// Eq("properties.labels", "Airports") matches a labels array containing
/// "Airports"), which is what makes multikey indexes useful.
class Filter {
 public:
  enum class Op {
    kTrue,       ///< matches everything
    kEq,
    kNe,
    kIn,         ///< field value (or any array element) in the given set
    kAll,        ///< array field contains every given value
    kSize,       ///< array field has exactly N elements
    kExists,
    kGt,
    kGte,
    kLt,
    kLte,
    kGeoIntersects,  ///< stored bounding rect intersects the query rect
    kGeoWithinCircle,   ///< stored rect center within the query circle
    kGeoWithinPolygon,  ///< stored rect center within the query polygon
    kAnd,
    kOr,
    kNot,
  };

  /// Matches every document.
  static Filter True();
  static Filter Eq(std::string path, Value v);
  static Filter Ne(std::string path, Value v);
  static Filter In(std::string path, std::vector<Value> values);
  static Filter All(std::string path, std::vector<Value> values);
  static Filter Size(std::string path, size_t n);
  static Filter Exists(std::string path);
  static Filter Gt(std::string path, Value v);
  static Filter Gte(std::string path, Value v);
  static Filter Lt(std::string path, Value v);
  static Filter Lte(std::string path, Value v);

  /// Geo predicates over a location field holding a sub-document
  /// {min_lat, min_lon, max_lat, max_lon} (the image bounding rectangle
  /// the paper describes).
  static Filter GeoIntersects(std::string path, geo::BoundingBox box);
  static Filter GeoWithinCircle(std::string path, geo::Circle circle);
  static Filter GeoWithinPolygon(std::string path, geo::Polygon polygon);

  static Filter And(std::vector<Filter> children);
  static Filter Or(std::vector<Filter> children);
  static Filter Not(Filter child);

  /// Evaluates the predicate against a document.
  bool Matches(const Document& doc) const;

  Op op() const { return op_; }
  const std::string& path() const { return path_; }
  const std::vector<Value>& values() const { return values_; }
  const std::vector<Filter>& children() const { return children_; }
  const geo::BoundingBox& box() const { return box_; }
  const geo::Circle& circle() const { return circle_; }
  const geo::Polygon& polygon() const { return polygon_; }
  size_t size_arg() const { return size_; }

  /// Debug rendering, e.g. `And(Eq(properties.country, "Portugal"), ...)`.
  std::string ToString() const;

  /// Parses the location sub-document {min_lat, min_lon, max_lat,
  /// max_lon} stored at `path` into a BoundingBox; false when malformed.
  static bool ReadStoredBox(const Document& doc, const std::string& path,
                            geo::BoundingBox* out);

 private:
  explicit Filter(Op op) : op_(op) {}

  bool MatchLeaf(const Value& field) const;

  Op op_ = Op::kTrue;
  std::string path_;
  std::vector<Value> values_;
  std::vector<Filter> children_;
  geo::BoundingBox box_;
  geo::Circle circle_;
  geo::Polygon polygon_;
  size_t size_ = 0;
};

}  // namespace agoraeo::docstore

#endif  // AGORAEO_DOCSTORE_FILTER_H_
