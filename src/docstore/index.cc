#include "docstore/index.h"

#include <algorithm>

namespace agoraeo::docstore {

namespace {

void RemoveFromPostingList(std::vector<DocId>* list, DocId id) {
  list->erase(std::remove(list->begin(), list->end(), id), list->end());
}

/// Intersects two sorted posting lists.
std::vector<DocId> IntersectSorted(const std::vector<DocId>& a,
                                   const std::vector<DocId>& b) {
  std::vector<DocId> out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// HashIndex
// ---------------------------------------------------------------------------

Status HashIndex::Insert(DocId id, const Document& doc) {
  const Value* v = doc.GetPath(path_);
  if (v == nullptr) return Status::OK();  // sparse: unindexed
  const std::string key = v->IndexKey();
  auto& list = map_[key];
  if (unique_ && !list.empty()) {
    return Status::AlreadyExists("duplicate key on unique index " + path_ +
                                 ": " + v->ToString());
  }
  list.insert(std::upper_bound(list.begin(), list.end(), id), id);
  return Status::OK();
}

void HashIndex::Remove(DocId id, const Document& doc) {
  const Value* v = doc.GetPath(path_);
  if (v == nullptr) return;
  auto it = map_.find(v->IndexKey());
  if (it == map_.end()) return;
  RemoveFromPostingList(&it->second, id);
  if (it->second.empty()) map_.erase(it);
}

const std::vector<DocId>* HashIndex::Lookup(const Value& v) const {
  auto it = map_.find(v.IndexKey());
  return it == map_.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------
// MultikeyIndex
// ---------------------------------------------------------------------------

void MultikeyIndex::Insert(DocId id, const Document& doc) {
  const Value* v = doc.GetPath(path_);
  if (v == nullptr) return;
  auto add = [&](const Value& element) {
    auto& list = map_[element.IndexKey()];
    auto it = std::upper_bound(list.begin(), list.end(), id);
    // A document may repeat an element; index it once.
    if (it == list.begin() || *(it - 1) != id) list.insert(it, id);
  };
  if (v->is_array()) {
    for (const Value& element : v->as_array()) add(element);
  } else {
    add(*v);  // scalar fields behave as single-element arrays
  }
}

void MultikeyIndex::Remove(DocId id, const Document& doc) {
  const Value* v = doc.GetPath(path_);
  if (v == nullptr) return;
  auto drop = [&](const Value& element) {
    auto it = map_.find(element.IndexKey());
    if (it == map_.end()) return;
    RemoveFromPostingList(&it->second, id);
    if (it->second.empty()) map_.erase(it);
  };
  if (v->is_array()) {
    for (const Value& element : v->as_array()) drop(element);
  } else {
    drop(*v);
  }
}

const std::vector<DocId>* MultikeyIndex::Lookup(const Value& element) const {
  auto it = map_.find(element.IndexKey());
  return it == map_.end() ? nullptr : &it->second;
}

std::vector<DocId> MultikeyIndex::LookupAll(
    const std::vector<Value>& elements) const {
  if (elements.empty()) return {};
  // Fetch all posting lists; any missing one empties the intersection.
  std::vector<const std::vector<DocId>*> lists;
  lists.reserve(elements.size());
  for (const Value& e : elements) {
    const auto* list = Lookup(e);
    if (list == nullptr) return {};
    lists.push_back(list);
  }
  // Intersect starting from the smallest list.
  std::sort(lists.begin(), lists.end(),
            [](const auto* a, const auto* b) { return a->size() < b->size(); });
  std::vector<DocId> result = *lists[0];
  for (size_t i = 1; i < lists.size() && !result.empty(); ++i) {
    result = IntersectSorted(result, *lists[i]);
  }
  return result;
}

size_t MultikeyIndex::CountAny(const std::vector<Value>& elements) const {
  size_t sum = 0;
  for (const Value& e : elements) sum += CountOf(e);
  return sum;
}

size_t MultikeyIndex::CountAll(const std::vector<Value>& elements) const {
  if (elements.empty()) return 0;
  size_t best = SIZE_MAX;
  for (const Value& e : elements) {
    const size_t count = CountOf(e);
    if (count == 0) return 0;  // any absent element empties the intersection
    best = std::min(best, count);
  }
  return best;
}

std::vector<DocId> MultikeyIndex::LookupAny(
    const std::vector<Value>& elements) const {
  std::vector<DocId> result;
  for (const Value& e : elements) {
    const auto* list = Lookup(e);
    if (list == nullptr) continue;
    std::vector<DocId> merged;
    merged.reserve(result.size() + list->size());
    std::set_union(result.begin(), result.end(), list->begin(), list->end(),
                   std::back_inserter(merged));
    result = std::move(merged);
  }
  return result;
}

// ---------------------------------------------------------------------------
// RangeIndex
// ---------------------------------------------------------------------------

void RangeIndex::Insert(DocId id, const Document& doc) {
  const Value* v = doc.GetPath(path_);
  if (v == nullptr) return;
  if (v->is_array()) {
    for (const Value& element : v->as_array()) tree_.Insert(element, id);
  } else {
    tree_.Insert(*v, id);
  }
}

void RangeIndex::Remove(DocId id, const Document& doc) {
  const Value* v = doc.GetPath(path_);
  if (v == nullptr) return;
  if (v->is_array()) {
    for (const Value& element : v->as_array()) tree_.Remove(element, id);
  } else {
    tree_.Remove(*v, id);
  }
}

size_t RangeIndex::CountInRange(const Value* lower, bool lower_inclusive,
                                const Value* upper,
                                bool upper_inclusive) const {
  size_t sum = 0;
  tree_.Scan(lower, lower_inclusive, upper, upper_inclusive,
             [&sum](const Value&, const std::vector<DocId>& postings) {
               sum += postings.size();
             });
  return sum;
}

std::vector<DocId> RangeIndex::Scan(const Value* lower, bool lower_inclusive,
                                    const Value* upper,
                                    bool upper_inclusive) const {
  std::vector<DocId> out =
      tree_.ScanIds(lower, lower_inclusive, upper, upper_inclusive);
  // Callers (the query planner) expect sorted, de-duplicated candidates;
  // array-valued fields can index one document under several keys.
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// GeoIndex
// ---------------------------------------------------------------------------

void GeoIndex::Insert(DocId id, const Document& doc) {
  geo::BoundingBox stored;
  if (!Filter::ReadStoredBox(doc, path_, &stored)) return;
  auto hash = geo::GeohashEncode(stored.Center(), precision_);
  if (!hash.ok()) return;
  auto& list = cells_[*hash];
  list.insert(std::upper_bound(list.begin(), list.end(), id), id);
}

void GeoIndex::Remove(DocId id, const Document& doc) {
  geo::BoundingBox stored;
  if (!Filter::ReadStoredBox(doc, path_, &stored)) return;
  auto hash = geo::GeohashEncode(stored.Center(), precision_);
  if (!hash.ok()) return;
  auto it = cells_.find(*hash);
  if (it == cells_.end()) return;
  RemoveFromPostingList(&it->second, id);
  if (it->second.empty()) cells_.erase(it);
}

namespace {

/// Expands a query box by one patch-size margin so rectangles whose
/// center lies just outside but that still intersect are found.
geo::BoundingBox PadQueryBox(const geo::BoundingBox& query) {
  geo::BoundingBox padded = query;
  const double margin = 0.02;  // ~2 km; generous for 1.2 km patches
  padded.min.lat -= margin;
  padded.min.lon -= margin;
  padded.max.lat += margin;
  padded.max.lon += margin;
  return padded;
}

}  // namespace

std::vector<DocId> GeoIndex::Candidates(const geo::BoundingBox& query) const {
  const std::vector<std::string> cover =
      geo::GeohashCover(PadQueryBox(query), precision_);
  std::vector<DocId> out;
  for (const std::string& prefix : cover) {
    // Ordered prefix scan: covers cells at the index precision even when
    // the cover had to fall back to a coarser precision.
    for (auto it = cells_.lower_bound(prefix);
         it != cells_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
         ++it) {
      out.insert(out.end(), it->second.begin(), it->second.end());
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

size_t GeoIndex::CountCandidates(const geo::BoundingBox& query) const {
  const std::vector<std::string> cover =
      geo::GeohashCover(PadQueryBox(query), precision_);
  size_t sum = 0;
  for (const std::string& prefix : cover) {
    for (auto it = cells_.lower_bound(prefix);
         it != cells_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
         ++it) {
      sum += it->second.size();
    }
  }
  return sum;
}

}  // namespace agoraeo::docstore
