#ifndef AGORAEO_DOCSTORE_WAL_H_
#define AGORAEO_DOCSTORE_WAL_H_

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/byte_buffer.h"
#include "common/status.h"
#include "common/wal_framing.h"
#include "docstore/database.h"

namespace agoraeo::docstore {

/// One logical write-ahead-log record: a mutation against a named
/// collection.  Records are what recovery replays, in order, on top of
/// the last checkpoint snapshot.
struct WalRecord {
  enum class Op : uint8_t {
    kInsert = 1,       ///< doc
    kUpdate = 2,       ///< doc_id + doc
    kRemove = 3,       ///< doc_id
    kCreateIndex = 4,  ///< index kind + path (+ precision)
  };

  Op op = Op::kInsert;
  std::string collection;
  DocId doc_id = 0;
  Document doc;
  Collection::IndexSpec index_spec{Collection::IndexSpec::Kind::kHash, "", 0};
};

/// Appender for the on-disk journal, a thin record-encoding layer over
/// the shared WAL framing (common/wal_framing.h) that every journal in
/// the system uses: [u32 payload length][u32 crc32(payload)][payload].
/// The CRC lets recovery distinguish a cleanly-ended log from a torn
/// tail (a crash mid-append); everything before the first bad frame is
/// trusted, the rest is discarded — MongoDB's journal behaves the same
/// way.
class WalWriter {
 public:
  WalWriter() = default;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens the log for appending (creating it when missing).
  Status Open(const std::string& path);

  /// Appends one record and flushes it to the OS.
  Status Append(const WalRecord& record);

  /// Truncates the log to empty (after a checkpoint made its contents
  /// redundant).
  Status Reset();

  bool is_open() const { return frames_.is_open(); }
  const std::string& path() const { return frames_.path(); }
  /// Records appended through this writer (not counting pre-existing
  /// log content).
  size_t records_appended() const { return frames_.frames_appended(); }

  void Close() { frames_.Close(); }

 private:
  WalFrameWriter frames_;
};

/// Result of scanning a journal during recovery.
struct WalReplayResult {
  size_t records_applied = 0;
  /// True when the log ended in a torn or corrupt frame that was
  /// discarded (expected after a crash mid-append; not an error).
  bool tail_discarded = false;
  /// File offset just past the last intact record (what the log should
  /// be truncated to before appending again).
  uint64_t valid_bytes = 0;
};

/// Reads a journal file and invokes `apply` on each intact record in
/// order.  Stops at the first truncated or checksum-failing frame.
/// A missing file is an empty journal.
StatusOr<WalReplayResult> WalReplay(
    const std::string& path,
    const std::function<Status(const WalRecord&)>& apply);

/// A Database with MongoDB-style durability: every mutation is applied
/// in memory and appended to the journal before the call returns;
/// `Checkpoint` snapshots the full state and resets the journal;
/// `Open` restores snapshot + journal after a crash.
///
/// Mutations must go through this wrapper (not the raw Collection) to be
/// journaled; reads can use the underlying collections directly.
class DurableDatabase {
 public:
  /// `directory` holds `snapshot.bin` and `wal.log`.
  explicit DurableDatabase(std::string directory);

  /// Loads the snapshot (if any), replays the journal on top, and opens
  /// the journal for appending.
  Status Open();

  /// In-memory database (reads, collection access).
  Database& db() { return db_; }
  const Database& db() const { return db_; }

  // --- journaled mutations ---------------------------------------------

  StatusOr<DocId> Insert(const std::string& collection, Document doc);
  Status Update(const std::string& collection, DocId id, Document doc);
  Status Remove(const std::string& collection, DocId id);
  Status CreateHashIndex(const std::string& collection,
                         const std::string& path, bool unique = false);
  Status CreateMultikeyIndex(const std::string& collection,
                             const std::string& path);
  Status CreateGeoIndex(const std::string& collection, const std::string& path,
                        int precision = 5);
  Status CreateRangeIndex(const std::string& collection,
                          const std::string& path);

  /// Writes a full snapshot and truncates the journal.
  Status Checkpoint();

  /// Journal records since open or the last checkpoint.
  size_t journal_records() const { return wal_.records_appended(); }
  /// Whether the last Open() discarded a torn journal tail.
  bool recovered_torn_tail() const { return torn_tail_; }

  std::string snapshot_path() const { return directory_ + "/snapshot.bin"; }
  std::string wal_path() const { return directory_ + "/wal.log"; }

 private:
  Status ApplyRecord(const WalRecord& record);

  std::string directory_;
  Database db_;
  WalWriter wal_;
  bool torn_tail_ = false;
};

}  // namespace agoraeo::docstore

#endif  // AGORAEO_DOCSTORE_WAL_H_
