#ifndef AGORAEO_DOCSTORE_BTREE_H_
#define AGORAEO_DOCSTORE_BTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "docstore/value.h"

namespace agoraeo::docstore {

/// Identifier of a document within a collection (mirrors index.h; kept
/// here so the tree is self-contained).
using DocId = uint64_t;

/// An in-memory B+-tree from Value keys (total order per Value::Compare)
/// to DocId posting lists — the order-preserving index MongoDB's B-tree
/// secondary indexes provide, which EarthQube's acquisition-date range
/// filters rely on.
///
/// Structure: internal nodes hold separator keys and child pointers
/// (children.size() == keys.size() + 1); leaves hold (key, posting list)
/// pairs and are doubly linked for range scans.  Separator key i equals
/// the smallest key in the subtree of child i+1.  Nodes split at
/// `order` keys and rebalance (borrow from a sibling, else merge) when
/// they fall below order/2, so the tree stays height-balanced under
/// arbitrary insert/remove sequences.
class BPlusTree {
 public:
  /// `order` is the maximum number of keys per node (>= 4).
  explicit BPlusTree(size_t order = 32);
  ~BPlusTree();

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  BPlusTree(BPlusTree&&) noexcept;
  BPlusTree& operator=(BPlusTree&&) noexcept;

  /// Adds `id` to the posting list of `key` (creating the key if new).
  /// Duplicate (key, id) pairs are stored once.
  void Insert(const Value& key, DocId id);

  /// Removes `id` from the posting list of `key`; erases the key when
  /// its posting list becomes empty.  Returns false when the pair was
  /// not present.
  bool Remove(const Value& key, DocId id);

  /// Posting list for an exact key (nullptr when absent).  The pointer
  /// is valid until the next mutation.
  const std::vector<DocId>* Find(const Value& key) const;

  /// Visits (key, postings) for every key in the interval, ascending.
  /// A null bound means unbounded on that side.
  void Scan(const Value* lower, bool lower_inclusive, const Value* upper,
            bool upper_inclusive,
            const std::function<void(const Value&, const std::vector<DocId>&)>&
                visit) const;

  /// All DocIds in the interval, ascending by (key, insertion order),
  /// de-duplicated by the caller if needed (a DocId appears under one key
  /// only in index usage).
  std::vector<DocId> ScanIds(const Value* lower, bool lower_inclusive,
                             const Value* upper, bool upper_inclusive) const;

  size_t num_keys() const { return num_keys_; }
  size_t order() const { return order_; }
  /// Tree height (1 for a single leaf).
  size_t height() const;

  /// Verifies structural invariants (sorted keys, node occupancy, uniform
  /// leaf depth, separator correctness, leaf-chain completeness).  Used
  /// by the property tests; returns a description of the first violation
  /// or the empty string when consistent.
  std::string CheckInvariants() const;

 private:
  struct Node;

  Node* LeafFor(const Value& key) const;
  /// First leaf whose greatest key could reach `lower` (leftmost when
  /// lower is null).
  Node* LeafLowerBound(const Value* lower) const;

  /// Inserts into the subtree at `node`.  When the child splits, sets
  /// `*split_key`/`*split_node` to the separator and new right sibling.
  void InsertRec(Node* node, const Value& key, DocId id, bool* split,
                 Value* split_key, std::unique_ptr<Node>* split_node);

  /// Removes from the subtree; returns true when the pair existed.
  /// `*underflow` reports whether `node` fell below minimum occupancy.
  bool RemoveRec(Node* node, const Value& key, DocId id, bool* underflow);

  /// Restores occupancy of children_[child] of `parent` by borrowing
  /// from a sibling or merging with one.
  void FixUnderflow(Node* parent, size_t child);

  size_t min_keys() const { return order_ / 2; }

  size_t order_;
  size_t num_keys_ = 0;
  std::unique_ptr<Node> root_;
};

}  // namespace agoraeo::docstore

#endif  // AGORAEO_DOCSTORE_BTREE_H_
