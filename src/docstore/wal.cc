#include "docstore/wal.h"

#include <functional>

#include "common/logging.h"

namespace agoraeo::docstore {

namespace {

/// Serialises a record payload (everything inside the checksummed frame).
std::vector<uint8_t> EncodeRecord(const WalRecord& r) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(r.op));
  w.PutString(r.collection);
  switch (r.op) {
    case WalRecord::Op::kInsert:
      SerializeDocument(r.doc, &w);
      break;
    case WalRecord::Op::kUpdate:
      w.PutU64(r.doc_id);
      SerializeDocument(r.doc, &w);
      break;
    case WalRecord::Op::kRemove:
      w.PutU64(r.doc_id);
      break;
    case WalRecord::Op::kCreateIndex:
      w.PutU8(static_cast<uint8_t>(r.index_spec.kind));
      w.PutString(r.index_spec.path);
      w.PutU32(static_cast<uint32_t>(r.index_spec.geo_precision));
      break;
  }
  return w.Release();
}

StatusOr<WalRecord> DecodeRecord(const std::vector<uint8_t>& payload) {
  ByteReader in(payload);
  WalRecord r;
  AGORAEO_ASSIGN_OR_RETURN(uint8_t op, in.GetU8());
  if (op < 1 || op > 4) return Status::Corruption("bad WAL op");
  r.op = static_cast<WalRecord::Op>(op);
  AGORAEO_ASSIGN_OR_RETURN(r.collection, in.GetString());
  switch (r.op) {
    case WalRecord::Op::kInsert: {
      AGORAEO_ASSIGN_OR_RETURN(r.doc, DeserializeDocument(&in));
      break;
    }
    case WalRecord::Op::kUpdate: {
      AGORAEO_ASSIGN_OR_RETURN(r.doc_id, in.GetU64());
      AGORAEO_ASSIGN_OR_RETURN(r.doc, DeserializeDocument(&in));
      break;
    }
    case WalRecord::Op::kRemove: {
      AGORAEO_ASSIGN_OR_RETURN(r.doc_id, in.GetU64());
      break;
    }
    case WalRecord::Op::kCreateIndex: {
      AGORAEO_ASSIGN_OR_RETURN(uint8_t kind, in.GetU8());
      if (kind > static_cast<uint8_t>(Collection::IndexSpec::Kind::kRange)) {
        return Status::Corruption("bad WAL index kind");
      }
      r.index_spec.kind = static_cast<Collection::IndexSpec::Kind>(kind);
      AGORAEO_ASSIGN_OR_RETURN(r.index_spec.path, in.GetString());
      AGORAEO_ASSIGN_OR_RETURN(uint32_t precision, in.GetU32());
      r.index_spec.geo_precision = static_cast<int>(precision);
      break;
    }
  }
  if (!in.exhausted()) return Status::Corruption("trailing bytes in WAL record");
  return r;
}

}  // namespace

// ---------------------------------------------------------------------------
// WalWriter
// ---------------------------------------------------------------------------

Status WalWriter::Open(const std::string& path) { return frames_.Open(path); }

Status WalWriter::Append(const WalRecord& record) {
  return frames_.Append(EncodeRecord(record));
}

Status WalWriter::Reset() { return frames_.Reset(); }

// ---------------------------------------------------------------------------
// WalReplay
// ---------------------------------------------------------------------------

StatusOr<WalReplayResult> WalReplay(
    const std::string& path,
    const std::function<Status(const WalRecord&)>& apply) {
  // The framing layer handles torn/corrupt tails; a frame whose payload
  // does not decode is reported as Corruption, which the framing layer
  // folds into tail_discarded as well.
  AGORAEO_ASSIGN_OR_RETURN(
      WalFrameReplayResult frames,
      ReplayWalFrames(path, [&](const std::vector<uint8_t>& payload) {
        AGORAEO_ASSIGN_OR_RETURN(WalRecord record, DecodeRecord(payload));
        return apply(record);
      }));
  WalReplayResult result;
  result.records_applied = frames.frames_applied;
  result.tail_discarded = frames.tail_discarded;
  result.valid_bytes = frames.valid_bytes;
  return result;
}

// ---------------------------------------------------------------------------
// DurableDatabase
// ---------------------------------------------------------------------------

DurableDatabase::DurableDatabase(std::string directory)
    : directory_(std::move(directory)) {}

Status DurableDatabase::Open() {
  // Snapshot first (absent on first run), then the journal on top.
  const Status loaded = db_.LoadFromFile(snapshot_path());
  if (!loaded.ok() && !loaded.IsIOError()) return loaded;

  AGORAEO_ASSIGN_OR_RETURN(
      WalReplayResult replay,
      WalReplay(wal_path(),
                [this](const WalRecord& r) { return ApplyRecord(r); }));
  torn_tail_ = replay.tail_discarded;
  if (replay.tail_discarded) {
    AGORAEO_LOG(kWarning) << "WAL recovery discarded a torn tail after "
                       << replay.records_applied << " records";
    // Cut the unreadable tail off before appending again, so records
    // written after this recovery are not stranded behind garbage the
    // next replay would stop at.
    AGORAEO_RETURN_IF_ERROR(TruncateFile(wal_path(), replay.valid_bytes));
  }
  return wal_.Open(wal_path());
}

Status DurableDatabase::ApplyRecord(const WalRecord& r) {
  Collection* coll = db_.GetOrCreateCollection(r.collection);
  switch (r.op) {
    case WalRecord::Op::kInsert: {
      auto inserted = coll->Insert(r.doc);
      return inserted.ok() ? Status::OK() : inserted.status();
    }
    case WalRecord::Op::kUpdate:
      return coll->Update(r.doc_id, r.doc);
    case WalRecord::Op::kRemove:
      return coll->Remove(r.doc_id);
    case WalRecord::Op::kCreateIndex:
      switch (r.index_spec.kind) {
        case Collection::IndexSpec::Kind::kHash:
          return coll->CreateHashIndex(r.index_spec.path, false);
        case Collection::IndexSpec::Kind::kUniqueHash:
          return coll->CreateHashIndex(r.index_spec.path, true);
        case Collection::IndexSpec::Kind::kMultikey:
          return coll->CreateMultikeyIndex(r.index_spec.path);
        case Collection::IndexSpec::Kind::kGeo:
          return coll->CreateGeoIndex(r.index_spec.path,
                                      r.index_spec.geo_precision);
        case Collection::IndexSpec::Kind::kRange:
          return coll->CreateRangeIndex(r.index_spec.path);
      }
      return Status::Corruption("bad index kind");
  }
  return Status::Corruption("bad WAL op");
}

// Mutations apply in memory first and journal on success: only applied
// mutations reach the log, so a replay reproduces exactly the applied
// sequence (and therefore the same DocId assignment).  The append is
// flushed before the call returns, which is the durability point.

StatusOr<DocId> DurableDatabase::Insert(const std::string& collection,
                                        Document doc) {
  WalRecord r;
  r.op = WalRecord::Op::kInsert;
  r.collection = collection;
  r.doc = std::move(doc);
  AGORAEO_ASSIGN_OR_RETURN(
      DocId id, db_.GetOrCreateCollection(collection)->Insert(r.doc));
  AGORAEO_RETURN_IF_ERROR(wal_.Append(r));
  return id;
}

Status DurableDatabase::Update(const std::string& collection, DocId id,
                               Document doc) {
  WalRecord r;
  r.op = WalRecord::Op::kUpdate;
  r.collection = collection;
  r.doc_id = id;
  r.doc = std::move(doc);
  AGORAEO_RETURN_IF_ERROR(
      db_.GetOrCreateCollection(collection)->Update(id, r.doc));
  return wal_.Append(r);
}

Status DurableDatabase::Remove(const std::string& collection, DocId id) {
  WalRecord r;
  r.op = WalRecord::Op::kRemove;
  r.collection = collection;
  r.doc_id = id;
  AGORAEO_RETURN_IF_ERROR(db_.GetOrCreateCollection(collection)->Remove(id));
  return wal_.Append(r);
}

Status DurableDatabase::CreateHashIndex(const std::string& collection,
                                        const std::string& path, bool unique) {
  WalRecord r;
  r.op = WalRecord::Op::kCreateIndex;
  r.collection = collection;
  r.index_spec = {unique ? Collection::IndexSpec::Kind::kUniqueHash
                         : Collection::IndexSpec::Kind::kHash,
                  path, 0};
  AGORAEO_RETURN_IF_ERROR(
      db_.GetOrCreateCollection(collection)->CreateHashIndex(path, unique));
  return wal_.Append(r);
}

Status DurableDatabase::CreateMultikeyIndex(const std::string& collection,
                                            const std::string& path) {
  WalRecord r;
  r.op = WalRecord::Op::kCreateIndex;
  r.collection = collection;
  r.index_spec = {Collection::IndexSpec::Kind::kMultikey, path, 0};
  AGORAEO_RETURN_IF_ERROR(
      db_.GetOrCreateCollection(collection)->CreateMultikeyIndex(path));
  return wal_.Append(r);
}

Status DurableDatabase::CreateGeoIndex(const std::string& collection,
                                       const std::string& path,
                                       int precision) {
  WalRecord r;
  r.op = WalRecord::Op::kCreateIndex;
  r.collection = collection;
  r.index_spec = {Collection::IndexSpec::Kind::kGeo, path, precision};
  AGORAEO_RETURN_IF_ERROR(
      db_.GetOrCreateCollection(collection)->CreateGeoIndex(path, precision));
  return wal_.Append(r);
}

Status DurableDatabase::CreateRangeIndex(const std::string& collection,
                                         const std::string& path) {
  WalRecord r;
  r.op = WalRecord::Op::kCreateIndex;
  r.collection = collection;
  r.index_spec = {Collection::IndexSpec::Kind::kRange, path, 0};
  AGORAEO_RETURN_IF_ERROR(
      db_.GetOrCreateCollection(collection)->CreateRangeIndex(path));
  return wal_.Append(r);
}

Status DurableDatabase::Checkpoint() {
  AGORAEO_RETURN_IF_ERROR(db_.SaveToFile(snapshot_path()));
  return wal_.Reset();
}

}  // namespace agoraeo::docstore
