#include "docstore/btree.h"

#include <algorithm>
#include <cassert>

namespace agoraeo::docstore {

struct BPlusTree::Node {
  explicit Node(bool is_leaf) : leaf(is_leaf) {}

  bool leaf;
  std::vector<Value> keys;
  // Leaf payload, parallel to keys.
  std::vector<std::vector<DocId>> postings;
  // Internal children; children.size() == keys.size() + 1.
  std::vector<std::unique_ptr<Node>> children;
  // Leaf chain.
  Node* next = nullptr;
  Node* prev = nullptr;
};

namespace {

/// Index of the first key in `keys` not less than `key`.
size_t LowerBound(const std::vector<Value>& keys, const Value& key) {
  size_t lo = 0, hi = keys.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (keys[mid].Compare(key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Child index a search for `key` routes to: the number of separators
/// <= key (equal keys live in the right subtree of their separator).
size_t RouteIndex(const std::vector<Value>& keys, const Value& key) {
  size_t lo = 0, hi = keys.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (keys[mid].Compare(key) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

BPlusTree::BPlusTree(size_t order)
    : order_(std::max<size_t>(4, order)),
      root_(std::make_unique<Node>(/*is_leaf=*/true)) {}

BPlusTree::~BPlusTree() = default;
BPlusTree::BPlusTree(BPlusTree&&) noexcept = default;
BPlusTree& BPlusTree::operator=(BPlusTree&&) noexcept = default;

BPlusTree::Node* BPlusTree::LeafFor(const Value& key) const {
  Node* node = root_.get();
  while (!node->leaf) {
    node = node->children[RouteIndex(node->keys, key)].get();
  }
  return node;
}

BPlusTree::Node* BPlusTree::LeafLowerBound(const Value* lower) const {
  Node* node = root_.get();
  while (!node->leaf) {
    node = lower == nullptr
               ? node->children.front().get()
               : node->children[RouteIndex(node->keys, *lower)].get();
  }
  return node;
}

const std::vector<DocId>* BPlusTree::Find(const Value& key) const {
  const Node* leaf = LeafFor(key);
  const size_t pos = LowerBound(leaf->keys, key);
  if (pos < leaf->keys.size() && leaf->keys[pos].Compare(key) == 0) {
    return &leaf->postings[pos];
  }
  return nullptr;
}

void BPlusTree::Insert(const Value& key, DocId id) {
  bool split = false;
  Value split_key;
  std::unique_ptr<Node> split_node;
  InsertRec(root_.get(), key, id, &split, &split_key, &split_node);
  if (split) {
    auto new_root = std::make_unique<Node>(/*is_leaf=*/false);
    new_root->keys.push_back(std::move(split_key));
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split_node));
    root_ = std::move(new_root);
  }
}

void BPlusTree::InsertRec(Node* node, const Value& key, DocId id, bool* split,
                          Value* split_key,
                          std::unique_ptr<Node>* split_node) {
  *split = false;
  if (node->leaf) {
    const size_t pos = LowerBound(node->keys, key);
    if (pos < node->keys.size() && node->keys[pos].Compare(key) == 0) {
      auto& list = node->postings[pos];
      if (std::find(list.begin(), list.end(), id) == list.end()) {
        list.push_back(id);
      }
      return;
    }
    node->keys.insert(node->keys.begin() + pos, key);
    node->postings.insert(node->postings.begin() + pos, {id});
    ++num_keys_;
    if (node->keys.size() <= order_) return;

    // Split the leaf: right half moves to a new sibling.
    const size_t mid = node->keys.size() / 2;
    auto right = std::make_unique<Node>(/*is_leaf=*/true);
    right->keys.assign(std::make_move_iterator(node->keys.begin() + mid),
                       std::make_move_iterator(node->keys.end()));
    right->postings.assign(
        std::make_move_iterator(node->postings.begin() + mid),
        std::make_move_iterator(node->postings.end()));
    node->keys.resize(mid);
    node->postings.resize(mid);
    right->next = node->next;
    right->prev = node;
    if (node->next != nullptr) node->next->prev = right.get();
    node->next = right.get();
    *split = true;
    *split_key = right->keys.front();
    *split_node = std::move(right);
    return;
  }

  const size_t idx = RouteIndex(node->keys, key);
  bool child_split = false;
  Value child_key;
  std::unique_ptr<Node> child_node;
  InsertRec(node->children[idx].get(), key, id, &child_split, &child_key,
            &child_node);
  if (!child_split) return;
  node->keys.insert(node->keys.begin() + idx, std::move(child_key));
  node->children.insert(node->children.begin() + idx + 1,
                        std::move(child_node));
  if (node->keys.size() <= order_) return;

  // Split the internal node: the middle separator moves up.
  const size_t mid = node->keys.size() / 2;
  auto right = std::make_unique<Node>(/*is_leaf=*/false);
  *split_key = std::move(node->keys[mid]);
  right->keys.assign(std::make_move_iterator(node->keys.begin() + mid + 1),
                     std::make_move_iterator(node->keys.end()));
  right->children.assign(
      std::make_move_iterator(node->children.begin() + mid + 1),
      std::make_move_iterator(node->children.end()));
  node->keys.resize(mid);
  node->children.resize(mid + 1);
  *split = true;
  *split_node = std::move(right);
}

bool BPlusTree::Remove(const Value& key, DocId id) {
  bool underflow = false;
  const bool found = RemoveRec(root_.get(), key, id, &underflow);
  // Shrink the height when the root is an internal node with one child.
  if (!root_->leaf && root_->keys.empty()) {
    root_ = std::move(root_->children.front());
  }
  return found;
}

bool BPlusTree::RemoveRec(Node* node, const Value& key, DocId id,
                          bool* underflow) {
  *underflow = false;
  if (node->leaf) {
    const size_t pos = LowerBound(node->keys, key);
    if (pos >= node->keys.size() || node->keys[pos].Compare(key) != 0) {
      return false;
    }
    auto& list = node->postings[pos];
    auto it = std::find(list.begin(), list.end(), id);
    if (it == list.end()) return false;
    list.erase(it);
    if (list.empty()) {
      node->keys.erase(node->keys.begin() + pos);
      node->postings.erase(node->postings.begin() + pos);
      --num_keys_;
      *underflow = node->keys.size() < min_keys();
    }
    return true;
  }

  const size_t idx = RouteIndex(node->keys, key);
  bool child_underflow = false;
  const bool found =
      RemoveRec(node->children[idx].get(), key, id, &child_underflow);
  if (child_underflow) FixUnderflow(node, idx);
  *underflow = node->keys.size() < min_keys();
  return found;
}

void BPlusTree::FixUnderflow(Node* parent, size_t child_idx) {
  Node* child = parent->children[child_idx].get();
  Node* left =
      child_idx > 0 ? parent->children[child_idx - 1].get() : nullptr;
  Node* right = child_idx + 1 < parent->children.size()
                    ? parent->children[child_idx + 1].get()
                    : nullptr;

  if (left != nullptr && left->keys.size() > min_keys()) {
    // Borrow the greatest entry of the left sibling.
    if (child->leaf) {
      child->keys.insert(child->keys.begin(), std::move(left->keys.back()));
      child->postings.insert(child->postings.begin(),
                             std::move(left->postings.back()));
      left->keys.pop_back();
      left->postings.pop_back();
      parent->keys[child_idx - 1] = child->keys.front();
    } else {
      child->keys.insert(child->keys.begin(),
                         std::move(parent->keys[child_idx - 1]));
      parent->keys[child_idx - 1] = std::move(left->keys.back());
      left->keys.pop_back();
      child->children.insert(child->children.begin(),
                             std::move(left->children.back()));
      left->children.pop_back();
    }
    return;
  }
  if (right != nullptr && right->keys.size() > min_keys()) {
    // Borrow the smallest entry of the right sibling.
    if (child->leaf) {
      child->keys.push_back(std::move(right->keys.front()));
      child->postings.push_back(std::move(right->postings.front()));
      right->keys.erase(right->keys.begin());
      right->postings.erase(right->postings.begin());
      parent->keys[child_idx] = right->keys.front();
    } else {
      child->keys.push_back(std::move(parent->keys[child_idx]));
      parent->keys[child_idx] = std::move(right->keys.front());
      right->keys.erase(right->keys.begin());
      child->children.push_back(std::move(right->children.front()));
      right->children.erase(right->children.begin());
    }
    return;
  }

  // Merge: fold the child into its left sibling, or the right sibling
  // into the child (one of the two must exist; the root has >= 2
  // children whenever FixUnderflow is reached).
  if (left != nullptr) {
    if (child->leaf) {
      for (size_t i = 0; i < child->keys.size(); ++i) {
        left->keys.push_back(std::move(child->keys[i]));
        left->postings.push_back(std::move(child->postings[i]));
      }
      left->next = child->next;
      if (child->next != nullptr) child->next->prev = left;
    } else {
      left->keys.push_back(std::move(parent->keys[child_idx - 1]));
      for (auto& k : child->keys) left->keys.push_back(std::move(k));
      for (auto& c : child->children) left->children.push_back(std::move(c));
    }
    parent->keys.erase(parent->keys.begin() + child_idx - 1);
    parent->children.erase(parent->children.begin() + child_idx);
  } else {
    if (child->leaf) {
      for (size_t i = 0; i < right->keys.size(); ++i) {
        child->keys.push_back(std::move(right->keys[i]));
        child->postings.push_back(std::move(right->postings[i]));
      }
      child->next = right->next;
      if (right->next != nullptr) right->next->prev = child;
    } else {
      child->keys.push_back(std::move(parent->keys[child_idx]));
      for (auto& k : right->keys) child->keys.push_back(std::move(k));
      for (auto& c : right->children) child->children.push_back(std::move(c));
    }
    parent->keys.erase(parent->keys.begin() + child_idx);
    parent->children.erase(parent->children.begin() + child_idx + 1);
  }
}

void BPlusTree::Scan(
    const Value* lower, bool lower_inclusive, const Value* upper,
    bool upper_inclusive,
    const std::function<void(const Value&, const std::vector<DocId>&)>& visit)
    const {
  const Node* leaf = LeafLowerBound(lower);
  size_t pos = 0;
  if (lower != nullptr) {
    pos = LowerBound(leaf->keys, *lower);
    // Skip an equal key on an exclusive lower bound.
    if (!lower_inclusive && pos < leaf->keys.size() &&
        leaf->keys[pos].Compare(*lower) == 0) {
      ++pos;
    }
  }
  while (leaf != nullptr) {
    for (; pos < leaf->keys.size(); ++pos) {
      if (upper != nullptr) {
        const int cmp = leaf->keys[pos].Compare(*upper);
        if (cmp > 0 || (cmp == 0 && !upper_inclusive)) return;
      }
      visit(leaf->keys[pos], leaf->postings[pos]);
    }
    leaf = leaf->next;
    pos = 0;
  }
}

std::vector<DocId> BPlusTree::ScanIds(const Value* lower, bool lower_inclusive,
                                      const Value* upper,
                                      bool upper_inclusive) const {
  std::vector<DocId> out;
  Scan(lower, lower_inclusive, upper, upper_inclusive,
       [&](const Value&, const std::vector<DocId>& postings) {
         out.insert(out.end(), postings.begin(), postings.end());
       });
  return out;
}

size_t BPlusTree::height() const {
  size_t h = 1;
  const Node* node = root_.get();
  while (!node->leaf) {
    node = node->children.front().get();
    ++h;
  }
  return h;
}

std::string BPlusTree::CheckInvariants() const {
  // Walk the tree verifying ordering and occupancy; then verify the leaf
  // chain covers every key in ascending order.
  std::string error;
  size_t leaf_depth = 0;
  bool leaf_depth_set = false;

  // (node, depth, lower, upper): every key k in the subtree must satisfy
  // lower <= k < upper (null = unbounded).
  std::function<void(const Node*, size_t, const Value*, const Value*)> walk =
      [&](const Node* node, size_t depth, const Value* lo, const Value* hi) {
        if (!error.empty()) return;
        const bool is_root = node == root_.get();
        if (!is_root && node->keys.size() < min_keys()) {
          error = "node below minimum occupancy";
          return;
        }
        if (node->keys.size() > order_) {
          error = "node above maximum occupancy";
          return;
        }
        for (size_t i = 0; i + 1 < node->keys.size(); ++i) {
          if (node->keys[i].Compare(node->keys[i + 1]) >= 0) {
            error = "keys not strictly ascending";
            return;
          }
        }
        for (const Value& k : node->keys) {
          if (lo != nullptr && k.Compare(*lo) < 0) {
            error = "key below subtree lower bound";
            return;
          }
          if (hi != nullptr && k.Compare(*hi) >= 0) {
            error = "key at or above subtree upper bound";
            return;
          }
        }
        if (node->leaf) {
          if (node->postings.size() != node->keys.size()) {
            error = "leaf postings/keys size mismatch";
            return;
          }
          for (const auto& p : node->postings) {
            if (p.empty()) {
              error = "empty posting list retained";
              return;
            }
          }
          if (!leaf_depth_set) {
            leaf_depth = depth;
            leaf_depth_set = true;
          } else if (depth != leaf_depth) {
            error = "leaves at differing depths";
          }
          return;
        }
        if (node->children.size() != node->keys.size() + 1) {
          error = "internal child count != keys + 1";
          return;
        }
        for (size_t i = 0; i < node->children.size(); ++i) {
          const Value* child_lo = i == 0 ? lo : &node->keys[i - 1];
          const Value* child_hi = i == node->keys.size() ? hi : &node->keys[i];
          walk(node->children[i].get(), depth + 1, child_lo, child_hi);
        }
      };
  walk(root_.get(), 1, nullptr, nullptr);
  if (!error.empty()) return error;

  // Leaf chain: ascending keys, count matches, prev links consistent.
  const Node* leftmost = root_.get();
  while (!leftmost->leaf) leftmost = leftmost->children.front().get();
  size_t count = 0;
  const Value* prev_key = nullptr;
  const Node* prev_leaf = nullptr;
  for (const Node* leaf = leftmost; leaf != nullptr; leaf = leaf->next) {
    if (leaf->prev != prev_leaf) return "leaf prev pointer inconsistent";
    for (const Value& k : leaf->keys) {
      if (prev_key != nullptr && prev_key->Compare(k) >= 0) {
        return "leaf chain keys not ascending";
      }
      prev_key = &k;
      ++count;
    }
    prev_leaf = leaf;
  }
  if (count != num_keys_) return "leaf chain key count != num_keys";
  return "";
}

}  // namespace agoraeo::docstore
