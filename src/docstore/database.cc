#include "docstore/database.h"

#include "common/logging.h"

namespace agoraeo::docstore {

namespace {
constexpr uint32_t kMagic = 0x41474f44;  // "AGOD"
constexpr uint32_t kVersion = 1;
}  // namespace

Collection* Database::GetOrCreateCollection(const std::string& name) {
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    it = collections_.emplace(name, std::make_unique<Collection>(name)).first;
  }
  return it->second.get();
}

Collection* Database::GetCollection(const std::string& name) {
  auto it = collections_.find(name);
  return it == collections_.end() ? nullptr : it->second.get();
}

const Collection* Database::GetCollection(const std::string& name) const {
  auto it = collections_.find(name);
  return it == collections_.end() ? nullptr : it->second.get();
}

Status Database::DropCollection(const std::string& name) {
  if (collections_.erase(name) == 0) {
    return Status::NotFound("no collection named " + name);
  }
  return Status::OK();
}

std::vector<std::string> Database::CollectionNames() const {
  std::vector<std::string> names;
  names.reserve(collections_.size());
  for (const auto& [name, _] : collections_) names.push_back(name);
  return names;
}

void SerializeValue(const Value& v, ByteWriter* out) {
  out->PutU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case Value::Type::kNull:
      break;
    case Value::Type::kBool:
      out->PutU8(v.as_bool() ? 1 : 0);
      break;
    case Value::Type::kInt64:
      out->PutI64(v.as_int64());
      break;
    case Value::Type::kDouble:
      out->PutF64(v.as_double());
      break;
    case Value::Type::kString:
      out->PutString(v.as_string());
      break;
    case Value::Type::kBinary: {
      const auto& bytes = v.as_binary();
      out->PutU32(static_cast<uint32_t>(bytes.size()));
      out->PutRaw(bytes.data(), bytes.size());
      break;
    }
    case Value::Type::kArray: {
      const auto& arr = v.as_array();
      out->PutU32(static_cast<uint32_t>(arr.size()));
      for (const Value& element : arr) SerializeValue(element, out);
      break;
    }
    case Value::Type::kDocument:
      SerializeDocument(v.as_document(), out);
      break;
  }
}

StatusOr<Value> DeserializeValue(ByteReader* in) {
  AGORAEO_ASSIGN_OR_RETURN(uint8_t type_byte, in->GetU8());
  switch (static_cast<Value::Type>(type_byte)) {
    case Value::Type::kNull:
      return Value();
    case Value::Type::kBool: {
      AGORAEO_ASSIGN_OR_RETURN(uint8_t b, in->GetU8());
      return Value(b != 0);
    }
    case Value::Type::kInt64: {
      AGORAEO_ASSIGN_OR_RETURN(int64_t v, in->GetI64());
      return Value(v);
    }
    case Value::Type::kDouble: {
      AGORAEO_ASSIGN_OR_RETURN(double v, in->GetF64());
      return Value(v);
    }
    case Value::Type::kString: {
      AGORAEO_ASSIGN_OR_RETURN(std::string s, in->GetString());
      return Value(std::move(s));
    }
    case Value::Type::kBinary: {
      AGORAEO_ASSIGN_OR_RETURN(uint32_t n, in->GetU32());
      std::vector<uint8_t> bytes;
      bytes.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        AGORAEO_ASSIGN_OR_RETURN(uint8_t b, in->GetU8());
        bytes.push_back(b);
      }
      return Value(std::move(bytes));
    }
    case Value::Type::kArray: {
      AGORAEO_ASSIGN_OR_RETURN(uint32_t n, in->GetU32());
      std::vector<Value> arr;
      arr.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        AGORAEO_ASSIGN_OR_RETURN(Value element, DeserializeValue(in));
        arr.push_back(std::move(element));
      }
      return Value(std::move(arr));
    }
    case Value::Type::kDocument: {
      AGORAEO_ASSIGN_OR_RETURN(Document doc, DeserializeDocument(in));
      return Value(std::move(doc));
    }
  }
  return Status::Corruption("unknown value type tag");
}

void SerializeDocument(const Document& doc, ByteWriter* out) {
  out->PutU32(static_cast<uint32_t>(doc.fields().size()));
  for (const auto& [key, value] : doc.fields()) {
    out->PutString(key);
    SerializeValue(value, out);
  }
}

StatusOr<Document> DeserializeDocument(ByteReader* in) {
  AGORAEO_ASSIGN_OR_RETURN(uint32_t n, in->GetU32());
  Document doc;
  for (uint32_t i = 0; i < n; ++i) {
    AGORAEO_ASSIGN_OR_RETURN(std::string key, in->GetString());
    AGORAEO_ASSIGN_OR_RETURN(Value value, DeserializeValue(in));
    doc.Set(key, std::move(value));
  }
  return doc;
}

Status Database::SaveToFile(const std::string& path) const {
  ByteWriter out;
  out.PutU32(kMagic);
  out.PutU32(kVersion);
  out.PutU32(static_cast<uint32_t>(collections_.size()));
  for (const auto& [name, coll] : collections_) {
    out.PutString(name);
    // Index definitions.
    const auto specs = coll->IndexSpecs();
    out.PutU32(static_cast<uint32_t>(specs.size()));
    for (const auto& spec : specs) {
      out.PutU8(static_cast<uint8_t>(spec.kind));
      out.PutString(spec.path);
      out.PutU32(static_cast<uint32_t>(spec.geo_precision));
    }
    // Documents (ids are regenerated on load; insertion order preserved).
    out.PutU64(coll->size());
    for (const auto& [id, doc] : coll->docs()) {
      SerializeDocument(doc, &out);
    }
  }
  return WriteFileBytes(path, out.data());
}

Status Database::LoadFromFile(const std::string& path) {
  AGORAEO_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadFileBytes(path));
  ByteReader in(bytes);
  AGORAEO_ASSIGN_OR_RETURN(uint32_t magic, in.GetU32());
  if (magic != kMagic) return Status::Corruption("bad database file magic");
  AGORAEO_ASSIGN_OR_RETURN(uint32_t version, in.GetU32());
  if (version != kVersion) {
    return Status::Corruption("unsupported database file version");
  }
  collections_.clear();
  AGORAEO_ASSIGN_OR_RETURN(uint32_t num_collections, in.GetU32());
  for (uint32_t c = 0; c < num_collections; ++c) {
    AGORAEO_ASSIGN_OR_RETURN(std::string name, in.GetString());
    Collection* coll = GetOrCreateCollection(name);
    AGORAEO_ASSIGN_OR_RETURN(uint32_t num_specs, in.GetU32());
    for (uint32_t s = 0; s < num_specs; ++s) {
      AGORAEO_ASSIGN_OR_RETURN(uint8_t kind, in.GetU8());
      AGORAEO_ASSIGN_OR_RETURN(std::string spec_path, in.GetString());
      AGORAEO_ASSIGN_OR_RETURN(uint32_t precision, in.GetU32());
      switch (static_cast<Collection::IndexSpec::Kind>(kind)) {
        case Collection::IndexSpec::Kind::kHash:
          AGORAEO_RETURN_IF_ERROR(coll->CreateHashIndex(spec_path, false));
          break;
        case Collection::IndexSpec::Kind::kUniqueHash:
          AGORAEO_RETURN_IF_ERROR(coll->CreateHashIndex(spec_path, true));
          break;
        case Collection::IndexSpec::Kind::kMultikey:
          AGORAEO_RETURN_IF_ERROR(coll->CreateMultikeyIndex(spec_path));
          break;
        case Collection::IndexSpec::Kind::kGeo:
          AGORAEO_RETURN_IF_ERROR(
              coll->CreateGeoIndex(spec_path, static_cast<int>(precision)));
          break;
        case Collection::IndexSpec::Kind::kRange:
          AGORAEO_RETURN_IF_ERROR(coll->CreateRangeIndex(spec_path));
          break;
      }
    }
    AGORAEO_ASSIGN_OR_RETURN(uint64_t num_docs, in.GetU64());
    for (uint64_t d = 0; d < num_docs; ++d) {
      AGORAEO_ASSIGN_OR_RETURN(Document doc, DeserializeDocument(&in));
      auto inserted = coll->Insert(std::move(doc));
      if (!inserted.ok()) return inserted.status();
    }
  }
  AGORAEO_LOG(kInfo) << "loaded database from " << path << " ("
                     << collections_.size() << " collections)";
  return Status::OK();
}

}  // namespace agoraeo::docstore
