#include "docstore/collection.h"

#include <algorithm>

namespace agoraeo::docstore {

StatusOr<DocId> Collection::Insert(Document doc) {
  const DocId id = next_id_;
  // Unique-index check first so a rejected insert leaves no trace.
  for (const auto& idx : hash_indexes_) {
    if (!idx->unique()) continue;
    const Value* v = doc.GetPath(idx->path());
    if (v != nullptr && idx->Lookup(*v) != nullptr) {
      return Status::AlreadyExists("duplicate key on unique index " +
                                   idx->path() + ": " + v->ToString());
    }
  }
  for (const auto& idx : hash_indexes_) {
    AGORAEO_RETURN_IF_ERROR(idx->Insert(id, doc));
  }
  for (const auto& idx : multikey_indexes_) idx->Insert(id, doc);
  for (const auto& idx : geo_indexes_) idx->Insert(id, doc);
  for (const auto& idx : range_indexes_) idx->Insert(id, doc);
  docs_.emplace(id, std::move(doc));
  ++next_id_;
  return id;
}

Status Collection::Remove(DocId id) {
  auto it = docs_.find(id);
  if (it == docs_.end()) {
    return Status::NotFound("no document with id " + std::to_string(id));
  }
  for (const auto& idx : hash_indexes_) idx->Remove(id, it->second);
  for (const auto& idx : multikey_indexes_) idx->Remove(id, it->second);
  for (const auto& idx : geo_indexes_) idx->Remove(id, it->second);
  for (const auto& idx : range_indexes_) idx->Remove(id, it->second);
  docs_.erase(it);
  return Status::OK();
}

Status Collection::Update(DocId id, Document doc) {
  auto it = docs_.find(id);
  if (it == docs_.end()) {
    return Status::NotFound("no document with id " + std::to_string(id));
  }
  // Check unique constraints against other documents.
  for (const auto& idx : hash_indexes_) {
    if (!idx->unique()) continue;
    const Value* v = doc.GetPath(idx->path());
    if (v == nullptr) continue;
    const auto* list = idx->Lookup(*v);
    if (list != nullptr && !(list->size() == 1 && (*list)[0] == id)) {
      return Status::AlreadyExists("duplicate key on unique index " +
                                   idx->path() + ": " + v->ToString());
    }
  }
  for (const auto& idx : hash_indexes_) idx->Remove(id, it->second);
  for (const auto& idx : multikey_indexes_) idx->Remove(id, it->second);
  for (const auto& idx : geo_indexes_) idx->Remove(id, it->second);
  for (const auto& idx : range_indexes_) idx->Remove(id, it->second);
  it->second = std::move(doc);
  for (const auto& idx : hash_indexes_) {
    AGORAEO_RETURN_IF_ERROR(idx->Insert(id, it->second));
  }
  for (const auto& idx : multikey_indexes_) idx->Insert(id, it->second);
  for (const auto& idx : geo_indexes_) idx->Insert(id, it->second);
  for (const auto& idx : range_indexes_) idx->Insert(id, it->second);
  return Status::OK();
}

const Document* Collection::Get(DocId id) const {
  auto it = docs_.find(id);
  return it == docs_.end() ? nullptr : &it->second;
}

bool Collection::PlanLeaf(const Filter& leaf, std::vector<DocId>* candidates,
                          std::string* plan) const {
  switch (leaf.op()) {
    case Filter::Op::kEq: {
      for (const auto& idx : hash_indexes_) {
        if (idx->path() != leaf.path()) continue;
        const auto* list = idx->Lookup(leaf.values()[0]);
        *candidates = list != nullptr ? *list : std::vector<DocId>{};
        *plan = "IXSCAN(hash:" + idx->path() + ")";
        return true;
      }
      for (const auto& idx : multikey_indexes_) {
        if (idx->path() != leaf.path()) continue;
        const auto* list = idx->Lookup(leaf.values()[0]);
        *candidates = list != nullptr ? *list : std::vector<DocId>{};
        *plan = "IXSCAN(multikey:" + idx->path() + ")";
        return true;
      }
      for (const auto& idx : range_indexes_) {
        if (idx->path() != leaf.path()) continue;
        const auto* list = idx->Lookup(leaf.values()[0]);
        *candidates = list != nullptr ? *list : std::vector<DocId>{};
        *plan = "IXSCAN(range:" + idx->path() + ")";
        return true;
      }
      return false;
    }
    case Filter::Op::kGt:
    case Filter::Op::kGte:
    case Filter::Op::kLt:
    case Filter::Op::kLte: {
      for (const auto& idx : range_indexes_) {
        if (idx->path() != leaf.path()) continue;
        const Value& bound = leaf.values()[0];
        const bool is_lower = leaf.op() == Filter::Op::kGt ||
                              leaf.op() == Filter::Op::kGte;
        const bool inclusive = leaf.op() == Filter::Op::kGte ||
                               leaf.op() == Filter::Op::kLte;
        *candidates = is_lower
                          ? idx->Scan(&bound, inclusive, nullptr, false)
                          : idx->Scan(nullptr, false, &bound, inclusive);
        *plan = "IXSCAN(range:" + idx->path() + ")";
        return true;
      }
      return false;
    }
    case Filter::Op::kIn: {
      for (const auto& idx : multikey_indexes_) {
        if (idx->path() != leaf.path()) continue;
        *candidates = idx->LookupAny(leaf.values());
        *plan = "IXSCAN(multikey:" + idx->path() + ")";
        return true;
      }
      return false;
    }
    case Filter::Op::kAll: {
      for (const auto& idx : multikey_indexes_) {
        if (idx->path() != leaf.path()) continue;
        *candidates = idx->LookupAll(leaf.values());
        *plan = "IXSCAN(multikey:" + idx->path() + ")";
        return true;
      }
      return false;
    }
    case Filter::Op::kGeoIntersects: {
      for (const auto& idx : geo_indexes_) {
        if (idx->path() != leaf.path()) continue;
        *candidates = idx->Candidates(leaf.box());
        *plan = "IXSCAN(geo:" + idx->path() + ")";
        return true;
      }
      return false;
    }
    case Filter::Op::kGeoWithinCircle: {
      for (const auto& idx : geo_indexes_) {
        if (idx->path() != leaf.path()) continue;
        *candidates = idx->Candidates(leaf.circle().Bounds());
        *plan = "IXSCAN(geo:" + idx->path() + ")";
        return true;
      }
      return false;
    }
    case Filter::Op::kGeoWithinPolygon: {
      for (const auto& idx : geo_indexes_) {
        if (idx->path() != leaf.path()) continue;
        *candidates = idx->Candidates(leaf.polygon().Bounds());
        *plan = "IXSCAN(geo:" + idx->path() + ")";
        return true;
      }
      return false;
    }
    default:
      return false;
  }
}

bool Collection::PlanCandidates(const Filter& filter,
                                std::vector<DocId>* candidates,
                                std::string* plan) const {
  // Try the filter itself as an indexable leaf.
  if (PlanLeaf(filter, candidates, plan)) return true;
  // For a conjunction, use the applicable conjunct with the fewest
  // candidates; remaining conjuncts are applied during verification.
  if (filter.op() == Filter::Op::kAnd) {
    bool found = false;
    std::vector<DocId> best;
    std::string best_plan;
    for (const Filter& child : filter.children()) {
      std::vector<DocId> cand;
      std::string child_plan;
      if (!PlanLeaf(child, &cand, &child_plan)) continue;
      if (!found || cand.size() < best.size()) {
        best = std::move(cand);
        best_plan = std::move(child_plan);
        found = true;
      }
    }
    // A combined interval over several range conjuncts on one path can
    // beat any single conjunct (e.g. date >= a AND date <= b).
    std::vector<DocId> range_cand;
    std::string range_plan;
    if (PlanRangeConjunction(filter.children(), &range_cand, &range_plan) &&
        (!found || range_cand.size() < best.size())) {
      best = std::move(range_cand);
      best_plan = std::move(range_plan);
      found = true;
    }
    if (found) {
      *candidates = std::move(best);
      *plan = std::move(best_plan);
      return true;
    }
  }
  return false;
}

bool Collection::PlanRangeConjunction(const std::vector<Filter>& conjuncts,
                                      std::vector<DocId>* candidates,
                                      std::string* plan) const {
  for (const auto& idx : range_indexes_) {
    // Tightest interval implied by the conjuncts on this path.
    const Value* lower = nullptr;
    const Value* upper = nullptr;
    bool lower_inc = true, upper_inc = true;
    size_t bounds = 0;
    for (const Filter& child : conjuncts) {
      if (child.path() != idx->path()) continue;
      switch (child.op()) {
        case Filter::Op::kEq:
          lower = upper = &child.values()[0];
          lower_inc = upper_inc = true;
          ++bounds;
          break;
        case Filter::Op::kGt:
        case Filter::Op::kGte: {
          const Value& b = child.values()[0];
          const bool inc = child.op() == Filter::Op::kGte;
          if (lower == nullptr || b.Compare(*lower) > 0 ||
              (b.Compare(*lower) == 0 && !inc)) {
            lower = &b;
            lower_inc = inc;
          }
          ++bounds;
          break;
        }
        case Filter::Op::kLt:
        case Filter::Op::kLte: {
          const Value& b = child.values()[0];
          const bool inc = child.op() == Filter::Op::kLte;
          if (upper == nullptr || b.Compare(*upper) < 0 ||
              (b.Compare(*upper) == 0 && !inc)) {
            upper = &b;
            upper_inc = inc;
          }
          ++bounds;
          break;
        }
        default:
          break;
      }
    }
    if (bounds == 0) continue;
    *candidates = idx->Scan(lower, lower_inc, upper, upper_inc);
    *plan = "IXSCAN(range:" + idx->path() + ")";
    return true;
  }
  return false;
}

std::vector<DocId> Collection::FindIds(const Filter& filter, size_t limit,
                                       QueryStats* stats) const {
  QueryStats local;
  std::vector<DocId> out;

  std::vector<DocId> candidates;
  if (PlanCandidates(filter, &candidates, &local.plan)) {
    local.index_candidates = candidates.size();
    for (DocId id : candidates) {
      auto it = docs_.find(id);
      if (it == docs_.end()) continue;
      ++local.docs_examined;
      if (filter.Matches(it->second)) {
        out.push_back(id);
        if (limit != 0 && out.size() >= limit) break;
      }
    }
  } else {
    local.plan = "COLLSCAN";
    for (const auto& [id, doc] : docs_) {
      ++local.docs_examined;
      if (filter.Matches(doc)) {
        out.push_back(id);
        if (limit != 0 && out.size() >= limit) break;
      }
    }
  }
  if (stats != nullptr) *stats = std::move(local);
  return out;
}

std::vector<const Document*> Collection::Find(const Filter& filter,
                                              size_t limit,
                                              QueryStats* stats) const {
  std::vector<const Document*> out;
  for (DocId id : FindIds(filter, limit, stats)) {
    out.push_back(&docs_.at(id));
  }
  return out;
}

StatusOr<DocId> Collection::FindOneId(const Filter& filter) const {
  std::vector<DocId> ids = FindIds(filter, 1);
  if (ids.empty()) {
    return Status::NotFound("no document matches " + filter.ToString());
  }
  return ids[0];
}

size_t Collection::Count(const Filter& filter, QueryStats* stats) const {
  return FindIds(filter, 0, stats).size();
}

size_t Collection::EstimateMatches(const Filter& filter,
                                   std::string* plan) const {
  std::vector<DocId> candidates;
  std::string chosen;
  if (PlanCandidates(filter, &candidates, &chosen)) {
    if (plan != nullptr) *plan = chosen;
    return candidates.size();
  }
  if (plan != nullptr) *plan = "COLLSCAN";
  return docs_.size();
}

std::map<std::string, size_t> Collection::CountByArrayField(
    const std::string& path, const Filter& filter) const {
  std::map<std::string, size_t> counts;
  for (DocId id : FindIds(filter)) {
    const Document& doc = docs_.at(id);
    const Value* v = doc.GetPath(path);
    if (v == nullptr) continue;
    if (v->is_array()) {
      for (const Value& element : v->as_array()) {
        if (element.is_string()) {
          ++counts[element.as_string()];
        } else {
          ++counts[element.ToString()];
        }
      }
    } else if (v->is_string()) {
      ++counts[v->as_string()];
    }
  }
  return counts;
}

Status Collection::CreateHashIndex(const std::string& path, bool unique) {
  for (const auto& idx : hash_indexes_) {
    if (idx->path() == path) {
      return Status::AlreadyExists("hash index exists on " + path);
    }
  }
  auto idx = std::make_unique<HashIndex>(path, unique);
  for (const auto& [id, doc] : docs_) {
    AGORAEO_RETURN_IF_ERROR(idx->Insert(id, doc));
  }
  hash_indexes_.push_back(std::move(idx));
  return Status::OK();
}

Status Collection::CreateMultikeyIndex(const std::string& path) {
  for (const auto& idx : multikey_indexes_) {
    if (idx->path() == path) {
      return Status::AlreadyExists("multikey index exists on " + path);
    }
  }
  auto idx = std::make_unique<MultikeyIndex>(path);
  for (const auto& [id, doc] : docs_) idx->Insert(id, doc);
  multikey_indexes_.push_back(std::move(idx));
  return Status::OK();
}

Status Collection::CreateGeoIndex(const std::string& path, int precision) {
  if (precision < 1 || precision > 12) {
    return Status::InvalidArgument("geo index precision must be in [1, 12]");
  }
  for (const auto& idx : geo_indexes_) {
    if (idx->path() == path) {
      return Status::AlreadyExists("geo index exists on " + path);
    }
  }
  auto idx = std::make_unique<GeoIndex>(path, precision);
  for (const auto& [id, doc] : docs_) idx->Insert(id, doc);
  geo_indexes_.push_back(std::move(idx));
  return Status::OK();
}

Status Collection::CreateRangeIndex(const std::string& path) {
  for (const auto& idx : range_indexes_) {
    if (idx->path() == path) {
      return Status::AlreadyExists("range index exists on " + path);
    }
  }
  auto idx = std::make_unique<RangeIndex>(path);
  for (const auto& [id, doc] : docs_) idx->Insert(id, doc);
  range_indexes_.push_back(std::move(idx));
  return Status::OK();
}

std::vector<Collection::IndexSpec> Collection::IndexSpecs() const {
  std::vector<IndexSpec> specs;
  for (const auto& idx : hash_indexes_) {
    specs.push_back({idx->unique() ? IndexSpec::Kind::kUniqueHash
                                   : IndexSpec::Kind::kHash,
                     idx->path(), 0});
  }
  for (const auto& idx : multikey_indexes_) {
    specs.push_back({IndexSpec::Kind::kMultikey, idx->path(), 0});
  }
  for (const auto& idx : geo_indexes_) {
    specs.push_back({IndexSpec::Kind::kGeo, idx->path(), idx->precision()});
  }
  for (const auto& idx : range_indexes_) {
    specs.push_back({IndexSpec::Kind::kRange, idx->path(), 0});
  }
  return specs;
}

}  // namespace agoraeo::docstore
