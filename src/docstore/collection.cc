#include "docstore/collection.h"

#include <algorithm>
#include <optional>

namespace agoraeo::docstore {

StatusOr<DocId> Collection::Insert(Document doc) {
  const DocId id = next_id_;
  // Unique-index check first so a rejected insert leaves no trace.
  for (const auto& idx : hash_indexes_) {
    if (!idx->unique()) continue;
    const Value* v = doc.GetPath(idx->path());
    if (v != nullptr && idx->Lookup(*v) != nullptr) {
      return Status::AlreadyExists("duplicate key on unique index " +
                                   idx->path() + ": " + v->ToString());
    }
  }
  for (const auto& idx : hash_indexes_) {
    AGORAEO_RETURN_IF_ERROR(idx->Insert(id, doc));
  }
  for (const auto& idx : multikey_indexes_) idx->Insert(id, doc);
  for (const auto& idx : geo_indexes_) idx->Insert(id, doc);
  for (const auto& idx : range_indexes_) idx->Insert(id, doc);
  auto stored = docs_.emplace(id, std::move(doc));
  UpdateHistograms(stored.first->second, /*add=*/true);
  ++next_id_;
  return id;
}

Status Collection::Remove(DocId id) {
  auto it = docs_.find(id);
  if (it == docs_.end()) {
    return Status::NotFound("no document with id " + std::to_string(id));
  }
  for (const auto& idx : hash_indexes_) idx->Remove(id, it->second);
  for (const auto& idx : multikey_indexes_) idx->Remove(id, it->second);
  for (const auto& idx : geo_indexes_) idx->Remove(id, it->second);
  for (const auto& idx : range_indexes_) idx->Remove(id, it->second);
  UpdateHistograms(it->second, /*add=*/false);
  docs_.erase(it);
  return Status::OK();
}

Status Collection::Update(DocId id, Document doc) {
  auto it = docs_.find(id);
  if (it == docs_.end()) {
    return Status::NotFound("no document with id " + std::to_string(id));
  }
  // Check unique constraints against other documents.
  for (const auto& idx : hash_indexes_) {
    if (!idx->unique()) continue;
    const Value* v = doc.GetPath(idx->path());
    if (v == nullptr) continue;
    const auto* list = idx->Lookup(*v);
    if (list != nullptr && !(list->size() == 1 && (*list)[0] == id)) {
      return Status::AlreadyExists("duplicate key on unique index " +
                                   idx->path() + ": " + v->ToString());
    }
  }
  for (const auto& idx : hash_indexes_) idx->Remove(id, it->second);
  for (const auto& idx : multikey_indexes_) idx->Remove(id, it->second);
  for (const auto& idx : geo_indexes_) idx->Remove(id, it->second);
  for (const auto& idx : range_indexes_) idx->Remove(id, it->second);
  UpdateHistograms(it->second, /*add=*/false);
  it->second = std::move(doc);
  UpdateHistograms(it->second, /*add=*/true);
  for (const auto& idx : hash_indexes_) {
    AGORAEO_RETURN_IF_ERROR(idx->Insert(id, it->second));
  }
  for (const auto& idx : multikey_indexes_) idx->Insert(id, it->second);
  for (const auto& idx : geo_indexes_) idx->Insert(id, it->second);
  for (const auto& idx : range_indexes_) idx->Insert(id, it->second);
  return Status::OK();
}

const Document* Collection::Get(DocId id) const {
  auto it = docs_.find(id);
  return it == docs_.end() ? nullptr : &it->second;
}

bool Collection::PlanLeaf(const Filter& leaf, std::vector<DocId>* candidates,
                          std::string* plan) const {
  switch (leaf.op()) {
    case Filter::Op::kEq: {
      for (const auto& idx : hash_indexes_) {
        if (idx->path() != leaf.path()) continue;
        const auto* list = idx->Lookup(leaf.values()[0]);
        *candidates = list != nullptr ? *list : std::vector<DocId>{};
        *plan = "IXSCAN(hash:" + idx->path() + ")";
        return true;
      }
      for (const auto& idx : multikey_indexes_) {
        if (idx->path() != leaf.path()) continue;
        const auto* list = idx->Lookup(leaf.values()[0]);
        *candidates = list != nullptr ? *list : std::vector<DocId>{};
        *plan = "IXSCAN(multikey:" + idx->path() + ")";
        return true;
      }
      for (const auto& idx : range_indexes_) {
        if (idx->path() != leaf.path()) continue;
        const auto* list = idx->Lookup(leaf.values()[0]);
        *candidates = list != nullptr ? *list : std::vector<DocId>{};
        *plan = "IXSCAN(range:" + idx->path() + ")";
        return true;
      }
      return false;
    }
    case Filter::Op::kGt:
    case Filter::Op::kGte:
    case Filter::Op::kLt:
    case Filter::Op::kLte: {
      for (const auto& idx : range_indexes_) {
        if (idx->path() != leaf.path()) continue;
        const Value& bound = leaf.values()[0];
        const bool is_lower = leaf.op() == Filter::Op::kGt ||
                              leaf.op() == Filter::Op::kGte;
        const bool inclusive = leaf.op() == Filter::Op::kGte ||
                               leaf.op() == Filter::Op::kLte;
        *candidates = is_lower
                          ? idx->Scan(&bound, inclusive, nullptr, false)
                          : idx->Scan(nullptr, false, &bound, inclusive);
        *plan = "IXSCAN(range:" + idx->path() + ")";
        return true;
      }
      return false;
    }
    case Filter::Op::kIn: {
      for (const auto& idx : multikey_indexes_) {
        if (idx->path() != leaf.path()) continue;
        *candidates = idx->LookupAny(leaf.values());
        *plan = "IXSCAN(multikey:" + idx->path() + ")";
        return true;
      }
      return false;
    }
    case Filter::Op::kAll: {
      for (const auto& idx : multikey_indexes_) {
        if (idx->path() != leaf.path()) continue;
        *candidates = idx->LookupAll(leaf.values());
        *plan = "IXSCAN(multikey:" + idx->path() + ")";
        return true;
      }
      return false;
    }
    case Filter::Op::kGeoIntersects: {
      for (const auto& idx : geo_indexes_) {
        if (idx->path() != leaf.path()) continue;
        *candidates = idx->Candidates(leaf.box());
        *plan = "IXSCAN(geo:" + idx->path() + ")";
        return true;
      }
      return false;
    }
    case Filter::Op::kGeoWithinCircle: {
      for (const auto& idx : geo_indexes_) {
        if (idx->path() != leaf.path()) continue;
        *candidates = idx->Candidates(leaf.circle().Bounds());
        *plan = "IXSCAN(geo:" + idx->path() + ")";
        return true;
      }
      return false;
    }
    case Filter::Op::kGeoWithinPolygon: {
      for (const auto& idx : geo_indexes_) {
        if (idx->path() != leaf.path()) continue;
        *candidates = idx->Candidates(leaf.polygon().Bounds());
        *plan = "IXSCAN(geo:" + idx->path() + ")";
        return true;
      }
      return false;
    }
    default:
      return false;
  }
}

bool Collection::PlanCandidates(const Filter& filter,
                                std::vector<DocId>* candidates,
                                std::string* plan) const {
  // Try the filter itself as an indexable leaf.
  if (PlanLeaf(filter, candidates, plan)) return true;
  // For a conjunction, use the applicable conjunct with the fewest
  // candidates; remaining conjuncts are applied during verification.
  if (filter.op() == Filter::Op::kAnd) {
    bool found = false;
    std::vector<DocId> best;
    std::string best_plan;
    for (const Filter& child : filter.children()) {
      std::vector<DocId> cand;
      std::string child_plan;
      if (!PlanLeaf(child, &cand, &child_plan)) continue;
      if (!found || cand.size() < best.size()) {
        best = std::move(cand);
        best_plan = std::move(child_plan);
        found = true;
      }
    }
    // A combined interval over several range conjuncts on one path can
    // beat any single conjunct (e.g. date >= a AND date <= b).
    std::vector<DocId> range_cand;
    std::string range_plan;
    if (PlanRangeConjunction(filter.children(), &range_cand, &range_plan) &&
        (!found || range_cand.size() < best.size())) {
      best = std::move(range_cand);
      best_plan = std::move(range_plan);
      found = true;
    }
    if (found) {
      *candidates = std::move(best);
      *plan = std::move(best_plan);
      return true;
    }
  }
  return false;
}

bool Collection::PlanRangeConjunction(const std::vector<Filter>& conjuncts,
                                      std::vector<DocId>* candidates,
                                      std::string* plan) const {
  for (const auto& idx : range_indexes_) {
    // Tightest interval implied by the conjuncts on this path.
    const Value* lower = nullptr;
    const Value* upper = nullptr;
    bool lower_inc = true, upper_inc = true;
    size_t bounds = 0;
    for (const Filter& child : conjuncts) {
      if (child.path() != idx->path()) continue;
      switch (child.op()) {
        case Filter::Op::kEq:
          lower = upper = &child.values()[0];
          lower_inc = upper_inc = true;
          ++bounds;
          break;
        case Filter::Op::kGt:
        case Filter::Op::kGte: {
          const Value& b = child.values()[0];
          const bool inc = child.op() == Filter::Op::kGte;
          if (lower == nullptr || b.Compare(*lower) > 0 ||
              (b.Compare(*lower) == 0 && !inc)) {
            lower = &b;
            lower_inc = inc;
          }
          ++bounds;
          break;
        }
        case Filter::Op::kLt:
        case Filter::Op::kLte: {
          const Value& b = child.values()[0];
          const bool inc = child.op() == Filter::Op::kLte;
          if (upper == nullptr || b.Compare(*upper) < 0 ||
              (b.Compare(*upper) == 0 && !inc)) {
            upper = &b;
            upper_inc = inc;
          }
          ++bounds;
          break;
        }
        default:
          break;
      }
    }
    if (bounds == 0) continue;
    *candidates = idx->Scan(lower, lower_inc, upper, upper_inc);
    *plan = "IXSCAN(range:" + idx->path() + ")";
    return true;
  }
  return false;
}

std::vector<DocId> Collection::FindIds(const Filter& filter, size_t limit,
                                       QueryStats* stats) const {
  QueryStats local;
  std::vector<DocId> out;

  std::vector<DocId> candidates;
  if (PlanCandidates(filter, &candidates, &local.plan)) {
    local.index_candidates = candidates.size();
    for (DocId id : candidates) {
      auto it = docs_.find(id);
      if (it == docs_.end()) continue;
      ++local.docs_examined;
      if (filter.Matches(it->second)) {
        out.push_back(id);
        if (limit != 0 && out.size() >= limit) break;
      }
    }
  } else {
    local.plan = "COLLSCAN";
    for (const auto& [id, doc] : docs_) {
      ++local.docs_examined;
      if (filter.Matches(doc)) {
        out.push_back(id);
        if (limit != 0 && out.size() >= limit) break;
      }
    }
  }
  if (stats != nullptr) *stats = std::move(local);
  return out;
}

std::vector<const Document*> Collection::Find(const Filter& filter,
                                              size_t limit,
                                              QueryStats* stats) const {
  std::vector<const Document*> out;
  for (DocId id : FindIds(filter, limit, stats)) {
    out.push_back(&docs_.at(id));
  }
  return out;
}

StatusOr<DocId> Collection::FindOneId(const Filter& filter) const {
  std::vector<DocId> ids = FindIds(filter, 1);
  if (ids.empty()) {
    return Status::NotFound("no document matches " + filter.ToString());
  }
  return ids[0];
}

size_t Collection::Count(const Filter& filter, QueryStats* stats) const {
  return FindIds(filter, 0, stats).size();
}

const FieldHistogram* Collection::HistogramFor(const std::string& path) const {
  for (const auto& [hist_path, hist] : histograms_) {
    if (hist_path == path) return &hist;
  }
  return nullptr;
}

void Collection::UpdateHistograms(const Document& doc, bool add) {
  for (auto& [path, hist] : histograms_) {
    const Value* v = doc.GetPath(path);
    if (v == nullptr) continue;
    auto apply = [&hist, add](const Value& element) {
      if (!element.is_number()) {
        // Tracked so the estimator knows the histogram misses entries.
        if (add) {
          hist.AddNonNumeric();
        } else {
          hist.RemoveNonNumeric();
        }
        return;
      }
      if (add) {
        hist.Add(element.as_number());
      } else {
        hist.Remove(element.as_number());
      }
    };
    if (v->is_array()) {
      for (const Value& element : v->as_array()) apply(element);
    } else {
      apply(*v);
    }
  }
}

bool Collection::EstimateLeaf(const Filter& leaf, size_t* estimate,
                              std::string* plan) const {
  switch (leaf.op()) {
    case Filter::Op::kEq: {
      for (const auto& idx : hash_indexes_) {
        if (idx->path() != leaf.path()) continue;
        *estimate = idx->CountOf(leaf.values()[0]);
        *plan = "IXSCAN(hash:" + idx->path() + ")";
        return true;
      }
      for (const auto& idx : multikey_indexes_) {
        if (idx->path() != leaf.path()) continue;
        *estimate = idx->CountOf(leaf.values()[0]);
        *plan = "IXSCAN(multikey:" + idx->path() + ")";
        return true;
      }
      for (const auto& idx : range_indexes_) {
        if (idx->path() != leaf.path()) continue;
        const auto* list = idx->Lookup(leaf.values()[0]);
        *estimate = list != nullptr ? list->size() : 0;
        *plan = "IXSCAN(range:" + idx->path() + ")";
        return true;
      }
      return false;
    }
    case Filter::Op::kGt:
    case Filter::Op::kGte:
    case Filter::Op::kLt:
    case Filter::Op::kLte: {
      const Value& bound = leaf.values()[0];
      const bool is_lower =
          leaf.op() == Filter::Op::kGt || leaf.op() == Filter::Op::kGte;
      const FieldHistogram* hist = HistogramFor(leaf.path());
      // The histogram only answers when it covers EVERY index entry on
      // the path: numeric bounds compare against string entries too
      // (Value's type order), so a numeric-only estimate could
      // undercount — breaking the documented upper bound.
      if (hist != nullptr && hist->total() > 0 && hist->numeric_only() &&
          bound.is_number()) {
        *estimate = is_lower
                        ? hist->EstimateRange(bound.as_number(), std::nullopt)
                        : hist->EstimateRange(std::nullopt, bound.as_number());
        *plan = "HISTOGRAM(" + leaf.path() + ")";
        return true;
      }
      for (const auto& idx : range_indexes_) {
        if (idx->path() != leaf.path()) continue;
        const bool inclusive =
            leaf.op() == Filter::Op::kGte || leaf.op() == Filter::Op::kLte;
        *estimate = is_lower
                        ? idx->CountInRange(&bound, inclusive, nullptr, false)
                        : idx->CountInRange(nullptr, false, &bound, inclusive);
        *plan = "IXSCAN(range:" + idx->path() + ")";
        return true;
      }
      return false;
    }
    case Filter::Op::kIn: {
      for (const auto& idx : multikey_indexes_) {
        if (idx->path() != leaf.path()) continue;
        *estimate = idx->CountAny(leaf.values());
        *plan = "IXSCAN(multikey:" + idx->path() + ")";
        return true;
      }
      return false;
    }
    case Filter::Op::kAll: {
      for (const auto& idx : multikey_indexes_) {
        if (idx->path() != leaf.path()) continue;
        *estimate = idx->CountAll(leaf.values());
        *plan = "IXSCAN(multikey:" + idx->path() + ")";
        return true;
      }
      return false;
    }
    case Filter::Op::kGeoIntersects: {
      for (const auto& idx : geo_indexes_) {
        if (idx->path() != leaf.path()) continue;
        *estimate = idx->CountCandidates(leaf.box());
        *plan = "IXSCAN(geo:" + idx->path() + ")";
        return true;
      }
      return false;
    }
    case Filter::Op::kGeoWithinCircle: {
      for (const auto& idx : geo_indexes_) {
        if (idx->path() != leaf.path()) continue;
        *estimate = idx->CountCandidates(leaf.circle().Bounds());
        *plan = "IXSCAN(geo:" + idx->path() + ")";
        return true;
      }
      return false;
    }
    case Filter::Op::kGeoWithinPolygon: {
      for (const auto& idx : geo_indexes_) {
        if (idx->path() != leaf.path()) continue;
        *estimate = idx->CountCandidates(leaf.polygon().Bounds());
        *plan = "IXSCAN(geo:" + idx->path() + ")";
        return true;
      }
      return false;
    }
    default:
      return false;
  }
}

bool Collection::EstimateRangeConjunction(const std::vector<Filter>& conjuncts,
                                          size_t* estimate,
                                          std::string* plan) const {
  for (const auto& idx : range_indexes_) {
    // Tightest interval implied by the conjuncts on this path (mirrors
    // PlanRangeConjunction, but estimates the interval cardinality from
    // the path's histogram instead of scanning the tree).
    const Value* lower = nullptr;
    const Value* upper = nullptr;
    bool lower_inc = true, upper_inc = true;
    size_t bounds = 0;
    for (const Filter& child : conjuncts) {
      if (child.path() != idx->path()) continue;
      switch (child.op()) {
        case Filter::Op::kEq:
          lower = upper = &child.values()[0];
          lower_inc = upper_inc = true;
          ++bounds;
          break;
        case Filter::Op::kGt:
        case Filter::Op::kGte: {
          const Value& b = child.values()[0];
          const bool inc = child.op() == Filter::Op::kGte;
          if (lower == nullptr || b.Compare(*lower) > 0 ||
              (b.Compare(*lower) == 0 && !inc)) {
            lower = &b;
            lower_inc = inc;
          }
          ++bounds;
          break;
        }
        case Filter::Op::kLt:
        case Filter::Op::kLte: {
          const Value& b = child.values()[0];
          const bool inc = child.op() == Filter::Op::kLte;
          if (upper == nullptr || b.Compare(*upper) < 0 ||
              (b.Compare(*upper) == 0 && !inc)) {
            upper = &b;
            upper_inc = inc;
          }
          ++bounds;
          break;
        }
        default:
          break;
      }
    }
    if (bounds == 0) continue;
    const FieldHistogram* hist = HistogramFor(idx->path());
    const bool numeric_bounds = (lower == nullptr || lower->is_number()) &&
                                (upper == nullptr || upper->is_number());
    if (hist != nullptr && hist->total() > 0 && hist->numeric_only() &&
        numeric_bounds) {
      *estimate = hist->EstimateRange(
          lower != nullptr ? std::optional<double>(lower->as_number())
                           : std::nullopt,
          upper != nullptr ? std::optional<double>(upper->as_number())
                           : std::nullopt);
      *plan = "HISTOGRAM(" + idx->path() + ")";
    } else {
      *estimate = idx->CountInRange(lower, lower_inc, upper, upper_inc);
      *plan = "IXSCAN(range:" + idx->path() + ")";
    }
    return true;
  }
  return false;
}

size_t Collection::EstimateMatches(const Filter& filter,
                                   std::string* plan) const {
  size_t estimate = 0;
  std::string chosen;
  bool found = EstimateLeaf(filter, &estimate, &chosen);
  if (!found && filter.op() == Filter::Op::kAnd) {
    // A conjunction matches at most its most selective estimable
    // conjunct; an estimate of zero is an early exit (the intersection
    // cannot grow).
    for (const Filter& child : filter.children()) {
      size_t child_estimate = 0;
      std::string child_plan;
      if (!EstimateLeaf(child, &child_estimate, &child_plan)) continue;
      if (!found || child_estimate < estimate) {
        estimate = child_estimate;
        chosen = std::move(child_plan);
        found = true;
      }
      if (found && estimate == 0) break;
    }
    // A combined interval over several range conjuncts on one path can
    // beat any single conjunct (e.g. date >= a AND date <= b).
    size_t range_estimate = 0;
    std::string range_plan;
    if ((!found || estimate > 0) &&
        EstimateRangeConjunction(filter.children(), &range_estimate,
                                 &range_plan) &&
        (!found || range_estimate < estimate)) {
      estimate = range_estimate;
      chosen = std::move(range_plan);
      found = true;
    }
  }
  if (!found) {
    if (plan != nullptr) *plan = "COLLSCAN";
    return docs_.size();
  }
  if (plan != nullptr) *plan = std::move(chosen);
  // Count-based estimates (multikey sums, geo cell sums, histogram edge
  // buckets) can exceed the collection; the true match count cannot.
  return std::min(estimate, docs_.size());
}

std::map<std::string, size_t> Collection::CountByArrayField(
    const std::string& path, const Filter& filter) const {
  std::map<std::string, size_t> counts;
  for (DocId id : FindIds(filter)) {
    const Document& doc = docs_.at(id);
    const Value* v = doc.GetPath(path);
    if (v == nullptr) continue;
    if (v->is_array()) {
      for (const Value& element : v->as_array()) {
        if (element.is_string()) {
          ++counts[element.as_string()];
        } else {
          ++counts[element.ToString()];
        }
      }
    } else if (v->is_string()) {
      ++counts[v->as_string()];
    }
  }
  return counts;
}

Status Collection::CreateHashIndex(const std::string& path, bool unique) {
  for (const auto& idx : hash_indexes_) {
    if (idx->path() == path) {
      return Status::AlreadyExists("hash index exists on " + path);
    }
  }
  auto idx = std::make_unique<HashIndex>(path, unique);
  for (const auto& [id, doc] : docs_) {
    AGORAEO_RETURN_IF_ERROR(idx->Insert(id, doc));
  }
  hash_indexes_.push_back(std::move(idx));
  return Status::OK();
}

Status Collection::CreateMultikeyIndex(const std::string& path) {
  for (const auto& idx : multikey_indexes_) {
    if (idx->path() == path) {
      return Status::AlreadyExists("multikey index exists on " + path);
    }
  }
  auto idx = std::make_unique<MultikeyIndex>(path);
  for (const auto& [id, doc] : docs_) idx->Insert(id, doc);
  multikey_indexes_.push_back(std::move(idx));
  return Status::OK();
}

Status Collection::CreateGeoIndex(const std::string& path, int precision) {
  if (precision < 1 || precision > 12) {
    return Status::InvalidArgument("geo index precision must be in [1, 12]");
  }
  for (const auto& idx : geo_indexes_) {
    if (idx->path() == path) {
      return Status::AlreadyExists("geo index exists on " + path);
    }
  }
  auto idx = std::make_unique<GeoIndex>(path, precision);
  for (const auto& [id, doc] : docs_) idx->Insert(id, doc);
  geo_indexes_.push_back(std::move(idx));
  return Status::OK();
}

Status Collection::CreateRangeIndex(const std::string& path) {
  for (const auto& idx : range_indexes_) {
    if (idx->path() == path) {
      return Status::AlreadyExists("range index exists on " + path);
    }
  }
  auto idx = std::make_unique<RangeIndex>(path);
  for (const auto& [id, doc] : docs_) idx->Insert(id, doc);
  range_indexes_.push_back(std::move(idx));
  // Every range-indexed path gets a cardinality histogram; backfill it
  // from the existing documents so estimates are live immediately.
  FieldHistogram hist;
  for (const auto& [id, doc] : docs_) {
    (void)id;
    const Value* v = doc.GetPath(path);
    if (v == nullptr) continue;
    auto backfill = [&hist](const Value& element) {
      if (element.is_number()) {
        hist.Add(element.as_number());
      } else {
        hist.AddNonNumeric();
      }
    };
    if (v->is_array()) {
      for (const Value& element : v->as_array()) backfill(element);
    } else {
      backfill(*v);
    }
  }
  histograms_.emplace_back(path, std::move(hist));
  return Status::OK();
}

std::vector<Collection::IndexSpec> Collection::IndexSpecs() const {
  std::vector<IndexSpec> specs;
  for (const auto& idx : hash_indexes_) {
    specs.push_back({idx->unique() ? IndexSpec::Kind::kUniqueHash
                                   : IndexSpec::Kind::kHash,
                     idx->path(), 0});
  }
  for (const auto& idx : multikey_indexes_) {
    specs.push_back({IndexSpec::Kind::kMultikey, idx->path(), 0});
  }
  for (const auto& idx : geo_indexes_) {
    specs.push_back({IndexSpec::Kind::kGeo, idx->path(), idx->precision()});
  }
  for (const auto& idx : range_indexes_) {
    specs.push_back({IndexSpec::Kind::kRange, idx->path(), 0});
  }
  return specs;
}

}  // namespace agoraeo::docstore
