#ifndef AGORAEO_DOCSTORE_INDEX_H_
#define AGORAEO_DOCSTORE_INDEX_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "docstore/btree.h"
#include "docstore/filter.h"
#include "docstore/value.h"
#include "geo/geo.h"

namespace agoraeo::docstore {

/// Exact-match index over one field path.  When `unique` is set, inserts
/// of duplicate keys are rejected — EarthQube relies on this for the
/// patch-name primary key of the image-data collection.
class HashIndex {
 public:
  HashIndex(std::string path, bool unique)
      : path_(std::move(path)), unique_(unique) {}

  /// Indexes `doc`; AlreadyExists for duplicate keys on a unique index.
  /// Documents lacking the path are not indexed (sparse behaviour).
  Status Insert(DocId id, const Document& doc);
  void Remove(DocId id, const Document& doc);

  /// Posting list for a key (nullptr when absent).
  const std::vector<DocId>* Lookup(const Value& v) const;

  /// Posting-list length for a key (0 when absent) — the O(1) count the
  /// planner's cardinality estimator uses without materialising ids.
  size_t CountOf(const Value& v) const {
    const auto* list = Lookup(v);
    return list == nullptr ? 0 : list->size();
  }

  const std::string& path() const { return path_; }
  bool unique() const { return unique_; }
  size_t num_keys() const { return map_.size(); }

 private:
  std::string path_;
  bool unique_;
  std::unordered_map<std::string, std::vector<DocId>> map_;
};

/// Multikey index over an array-valued field: every element of the array
/// points back to the document, which accelerates label filters
/// (Some/Exactly/AtLeast&More resolve to In/Eq/All over the labels array).
class MultikeyIndex {
 public:
  explicit MultikeyIndex(std::string path) : path_(std::move(path)) {}

  void Insert(DocId id, const Document& doc);
  void Remove(DocId id, const Document& doc);

  /// Posting list of documents whose array contains `element`.
  const std::vector<DocId>* Lookup(const Value& element) const;

  /// Documents containing every element (posting-list intersection,
  /// smallest list first).
  std::vector<DocId> LookupAll(const std::vector<Value>& elements) const;

  /// Documents containing any element (posting-list union).
  std::vector<DocId> LookupAny(const std::vector<Value>& elements) const;

  // --- count-only estimators (no posting-list materialisation) ----------

  /// Posting-list length of one element (0 when absent).
  size_t CountOf(const Value& element) const {
    const auto* list = Lookup(element);
    return list == nullptr ? 0 : list->size();
  }
  /// Upper bound on |LookupAny(elements)|: the sum of posting-list
  /// lengths (skips the union merge).
  size_t CountAny(const std::vector<Value>& elements) const;
  /// Upper bound on |LookupAll(elements)|: the shortest posting-list
  /// length (skips the intersections; 0 when any element is absent).
  size_t CountAll(const std::vector<Value>& elements) const;

  const std::string& path() const { return path_; }
  size_t num_keys() const { return map_.size(); }

 private:
  std::string path_;
  std::unordered_map<std::string, std::vector<DocId>> map_;
};

/// Order-preserving secondary index over one field path, backed by a
/// B+-tree — the analogue of MongoDB's default B-tree index.  EarthQube
/// uses it for acquisition-date range filters (Gt/Gte/Lt/Lte and their
/// conjunctions) where hash indexes cannot help.
class RangeIndex {
 public:
  explicit RangeIndex(std::string path, size_t order = 64)
      : path_(std::move(path)), tree_(order) {}

  /// Indexes `doc` (sparse: documents lacking the path are skipped).
  /// Array values index every element, like the multikey index.
  void Insert(DocId id, const Document& doc);
  void Remove(DocId id, const Document& doc);

  /// Ids of documents whose key lies in the interval; null bounds are
  /// unbounded.  Ascending key order.
  std::vector<DocId> Scan(const Value* lower, bool lower_inclusive,
                          const Value* upper, bool upper_inclusive) const;

  /// Posting list for an exact key (nullptr when absent).
  const std::vector<DocId>* Lookup(const Value& v) const {
    return tree_.Find(v);
  }

  /// Upper bound on |Scan(...)|: sums posting-list lengths over the
  /// interval without materialising or de-duplicating ids.  O(keys in
  /// interval) — the fallback estimator when no histogram covers the
  /// path (non-numeric keys).
  size_t CountInRange(const Value* lower, bool lower_inclusive,
                      const Value* upper, bool upper_inclusive) const;

  const std::string& path() const { return path_; }
  size_t num_keys() const { return tree_.num_keys(); }
  const BPlusTree& tree() const { return tree_; }

 private:
  std::string path_;
  BPlusTree tree_;
};

/// 2D geohash index over a location field holding the image bounding
/// rectangle — the substitute for MongoDB's built-in geohashing index the
/// paper mentions.  Rectangle centers are hashed at a fixed precision;
/// queries expand to a geohash cell cover and do ordered prefix scans, so
/// coarser covers still find finer cells.
class GeoIndex {
 public:
  GeoIndex(std::string path, int precision)
      : path_(std::move(path)), precision_(precision) {}

  void Insert(DocId id, const Document& doc);
  void Remove(DocId id, const Document& doc);

  /// Candidate documents for a query area (superset of true matches;
  /// callers re-verify with the filter).
  std::vector<DocId> Candidates(const geo::BoundingBox& query) const;

  /// Upper bound on |Candidates(query)|: sums cell posting-list lengths
  /// over the cover without materialising or de-duplicating ids.
  size_t CountCandidates(const geo::BoundingBox& query) const;

  const std::string& path() const { return path_; }
  int precision() const { return precision_; }
  size_t num_cells() const { return cells_.size(); }

 private:
  std::string path_;
  int precision_;
  // Ordered so that coarse prefixes can range-scan finer cells.
  std::map<std::string, std::vector<DocId>> cells_;
};

}  // namespace agoraeo::docstore

#endif  // AGORAEO_DOCSTORE_INDEX_H_
