#include "docstore/aggregate.h"

#include <algorithm>
#include <map>

namespace agoraeo::docstore {

void SetDottedPath(Document* doc, const std::string& dotted_path, Value v) {
  const size_t dot = dotted_path.find('.');
  if (dot == std::string::npos) {
    doc->Set(dotted_path, std::move(v));
    return;
  }
  const std::string head = dotted_path.substr(0, dot);
  const std::string rest = dotted_path.substr(dot + 1);
  const Value* existing = doc->Get(head);
  Document nested;
  if (existing != nullptr && existing->is_document()) {
    nested = existing->as_document();
  }
  SetDottedPath(&nested, rest, std::move(v));
  doc->Set(head, Value(std::move(nested)));
}

Pipeline& Pipeline::Match(Filter filter) {
  Stage s;
  s.kind = Stage::Kind::kMatch;
  s.filter = std::move(filter);
  stages_.push_back(std::move(s));
  return *this;
}

Pipeline& Pipeline::Unwind(std::string path) {
  Stage s;
  s.kind = Stage::Kind::kUnwind;
  s.path = std::move(path);
  stages_.push_back(std::move(s));
  return *this;
}

Pipeline& Pipeline::Group(std::string by_path,
                          std::vector<Accumulator> accumulators) {
  Stage s;
  s.kind = Stage::Kind::kGroup;
  s.path = std::move(by_path);
  s.accumulators = std::move(accumulators);
  stages_.push_back(std::move(s));
  return *this;
}

Pipeline& Pipeline::Sort(std::string path, bool ascending) {
  Stage s;
  s.kind = Stage::Kind::kSort;
  s.path = std::move(path);
  s.ascending = ascending;
  stages_.push_back(std::move(s));
  return *this;
}

Pipeline& Pipeline::Limit(size_t n) {
  Stage s;
  s.kind = Stage::Kind::kLimit;
  s.limit = n;
  stages_.push_back(std::move(s));
  return *this;
}

Pipeline& Pipeline::Project(std::vector<std::string> fields) {
  Stage s;
  s.kind = Stage::Kind::kProject;
  s.fields = std::move(fields);
  stages_.push_back(std::move(s));
  return *this;
}

namespace {

/// Running state of one group's accumulators.
struct GroupState {
  Value key;
  std::vector<int64_t> counts;
  std::vector<double> sums;
  std::vector<size_t> nums;       // numeric samples seen (for avg)
  std::vector<Value> mins;
  std::vector<Value> maxs;
  std::vector<bool> has_minmax;
};

void AccumulateInto(GroupState* state, const std::vector<Accumulator>& accs,
                    const Document& doc) {
  for (size_t i = 0; i < accs.size(); ++i) {
    const Accumulator& acc = accs[i];
    switch (acc.kind) {
      case Accumulator::Kind::kCount:
        ++state->counts[i];
        break;
      case Accumulator::Kind::kSum:
      case Accumulator::Kind::kAvg: {
        const Value* v = doc.GetPath(acc.input_path);
        if (v != nullptr && v->is_number()) {
          state->sums[i] += v->as_number();
          ++state->nums[i];
        }
        break;
      }
      case Accumulator::Kind::kMin:
      case Accumulator::Kind::kMax: {
        const Value* v = doc.GetPath(acc.input_path);
        if (v == nullptr) break;
        if (!state->has_minmax[i]) {
          state->mins[i] = *v;
          state->maxs[i] = *v;
          state->has_minmax[i] = true;
        } else {
          if (v->Compare(state->mins[i]) < 0) state->mins[i] = *v;
          if (v->Compare(state->maxs[i]) > 0) state->maxs[i] = *v;
        }
        break;
      }
    }
  }
}

Document FinalizeGroup(const GroupState& state,
                       const std::vector<Accumulator>& accs) {
  Document out;
  out.Set("_id", state.key);
  for (size_t i = 0; i < accs.size(); ++i) {
    const Accumulator& acc = accs[i];
    switch (acc.kind) {
      case Accumulator::Kind::kCount:
        out.Set(acc.output_field, Value(state.counts[i]));
        break;
      case Accumulator::Kind::kSum:
        out.Set(acc.output_field, Value(state.sums[i]));
        break;
      case Accumulator::Kind::kAvg:
        out.Set(acc.output_field,
                state.nums[i] > 0
                    ? Value(state.sums[i] / static_cast<double>(state.nums[i]))
                    : Value());
        break;
      case Accumulator::Kind::kMin:
        out.Set(acc.output_field,
                state.has_minmax[i] ? state.mins[i] : Value());
        break;
      case Accumulator::Kind::kMax:
        out.Set(acc.output_field,
                state.has_minmax[i] ? state.maxs[i] : Value());
        break;
    }
  }
  return out;
}

}  // namespace

StatusOr<std::vector<Document>> Pipeline::Run(
    const Collection& collection) const {
  // The first Match stage (if any) runs through the collection's planner
  // so it can use indexes; everything else streams over the working set.
  std::vector<Document> working;
  size_t start = 0;
  if (!stages_.empty() && stages_[0].kind == Stage::Kind::kMatch) {
    for (const Document* doc : collection.Find(stages_[0].filter)) {
      working.push_back(*doc);
    }
    start = 1;
  } else {
    working.reserve(collection.size());
    for (const auto& [id, doc] : collection.docs()) working.push_back(doc);
  }

  for (size_t si = start; si < stages_.size(); ++si) {
    const Stage& stage = stages_[si];
    switch (stage.kind) {
      case Stage::Kind::kMatch: {
        std::vector<Document> next;
        for (Document& doc : working) {
          if (stage.filter.Matches(doc)) next.push_back(std::move(doc));
        }
        working = std::move(next);
        break;
      }
      case Stage::Kind::kUnwind: {
        std::vector<Document> next;
        for (const Document& doc : working) {
          const Value* v = doc.GetPath(stage.path);
          if (v == nullptr) continue;  // $unwind drops docs without the path
          if (!v->is_array()) {
            next.push_back(doc);  // scalar behaves as a 1-element array
            continue;
          }
          for (const Value& element : v->as_array()) {
            Document copy = doc;
            SetDottedPath(&copy, stage.path, element);
            next.push_back(std::move(copy));
          }
        }
        working = std::move(next);
        break;
      }
      case Stage::Kind::kGroup: {
        for (const Accumulator& acc : stage.accumulators) {
          if (acc.output_field.empty()) {
            return Status::InvalidArgument(
                "Group accumulator needs an output field name");
          }
        }
        // Group states keyed by the canonical index key of the group-by
        // value; insertion order preserved for determinism before Sort.
        std::map<std::string, size_t> by_key;
        std::vector<GroupState> states;
        for (const Document& doc : working) {
          const Value* v = doc.GetPath(stage.path);
          const Value key = v != nullptr ? *v : Value();
          const std::string canonical = key.IndexKey();
          auto [it, inserted] = by_key.emplace(canonical, states.size());
          if (inserted) {
            GroupState s;
            s.key = key;
            const size_t n = stage.accumulators.size();
            s.counts.assign(n, 0);
            s.sums.assign(n, 0.0);
            s.nums.assign(n, 0);
            s.mins.assign(n, Value());
            s.maxs.assign(n, Value());
            s.has_minmax.assign(n, false);
            states.push_back(std::move(s));
          }
          AccumulateInto(&states[it->second], stage.accumulators, doc);
        }
        std::vector<Document> next;
        next.reserve(states.size());
        for (const GroupState& s : states) {
          next.push_back(FinalizeGroup(s, stage.accumulators));
        }
        working = std::move(next);
        break;
      }
      case Stage::Kind::kSort: {
        std::stable_sort(working.begin(), working.end(),
                         [&stage](const Document& a, const Document& b) {
                           const Value* va = a.GetPath(stage.path);
                           const Value* vb = b.GetPath(stage.path);
                           const Value na, nb;
                           const Value& ka = va != nullptr ? *va : na;
                           const Value& kb = vb != nullptr ? *vb : nb;
                           const int cmp = ka.Compare(kb);
                           return stage.ascending ? cmp < 0 : cmp > 0;
                         });
        break;
      }
      case Stage::Kind::kLimit: {
        if (working.size() > stage.limit) working.resize(stage.limit);
        break;
      }
      case Stage::Kind::kProject: {
        for (Document& doc : working) {
          Document projected;
          for (const std::string& f : stage.fields) {
            const Value* v = doc.Get(f);
            if (v != nullptr) projected.Set(f, *v);
          }
          doc = std::move(projected);
        }
        break;
      }
    }
  }
  return working;
}

}  // namespace agoraeo::docstore
