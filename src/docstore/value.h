#ifndef AGORAEO_DOCSTORE_VALUE_H_
#define AGORAEO_DOCSTORE_VALUE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/status.h"

namespace agoraeo::docstore {

class Value;

/// An ordered set of named fields, sorted by key — the BSON-document
/// substitute stored in collections.  Field values may themselves be
/// documents or arrays, so metadata like
/// `{location: {min_lat: ..}, properties: {labels: [..]}}` round-trips.
class Document {
 public:
  Document() = default;

  /// Sets (inserting or replacing) a field.  Defined out of line because
  /// Value is incomplete here.
  void Set(const std::string& key, Value value);

  /// Returns the field or nullptr.
  const Value* Get(const std::string& key) const;

  /// Resolves a dotted path ("properties.labels"); nullptr when any
  /// component is missing or a non-document is traversed.
  const Value* GetPath(const std::string& dotted_path) const;

  /// Removes a field; no-op when absent.
  void Remove(const std::string& key);

  bool Has(const std::string& key) const { return Get(key) != nullptr; }
  size_t size() const { return fields_.size(); }
  bool empty() const { return fields_.empty(); }

  const std::vector<std::pair<std::string, Value>>& fields() const {
    return fields_;
  }

  bool operator==(const Document& other) const;

  /// JSON-ish rendering for debugging.
  std::string ToString() const;

 private:
  // Sorted by key; lookup is binary search.
  std::vector<std::pair<std::string, Value>> fields_;
};

/// A dynamically typed value, mirroring the BSON types EarthQube's
/// MongoDB data tier uses: null, bool, int64, double, string, binary,
/// array, embedded document.
class Value {
 public:
  enum class Type {
    kNull = 0,
    kBool,
    kInt64,
    kDouble,
    kString,
    kBinary,
    kArray,
    kDocument,
  };

  Value() : v_(std::monostate{}) {}
  Value(bool b) : v_(b) {}
  Value(int v) : v_(static_cast<int64_t>(v)) {}
  Value(int64_t v) : v_(v) {}
  Value(double v) : v_(v) {}
  Value(const char* s) : v_(std::string(s)) {}
  Value(std::string s) : v_(std::move(s)) {}
  Value(std::vector<uint8_t> bytes) : v_(std::move(bytes)) {}
  Value(std::vector<Value> array) : v_(std::move(array)) {}
  Value(Document doc) : v_(std::move(doc)) {}

  Type type() const { return static_cast<Type>(v_.index()); }
  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_int64() const { return type() == Type::kInt64; }
  bool is_double() const { return type() == Type::kDouble; }
  bool is_number() const { return is_int64() || is_double(); }
  bool is_string() const { return type() == Type::kString; }
  bool is_binary() const { return type() == Type::kBinary; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_document() const { return type() == Type::kDocument; }

  /// Typed accessors; calling the wrong one is a programming error
  /// (std::get enforces).
  bool as_bool() const { return std::get<bool>(v_); }
  int64_t as_int64() const { return std::get<int64_t>(v_); }
  double as_double() const { return std::get<double>(v_); }
  /// Numeric value as double regardless of int64/double storage.
  double as_number() const {
    return is_int64() ? static_cast<double>(as_int64()) : as_double();
  }
  const std::string& as_string() const { return std::get<std::string>(v_); }
  const std::vector<uint8_t>& as_binary() const {
    return std::get<std::vector<uint8_t>>(v_);
  }
  const std::vector<Value>& as_array() const {
    return std::get<std::vector<Value>>(v_);
  }
  const Document& as_document() const { return std::get<Document>(v_); }
  Document& as_document() { return std::get<Document>(v_); }

  /// Total order over values: first by type rank, then by value; numbers
  /// compare numerically across int64/double.  Gives deterministic sort
  /// order for index keys and equality for filters.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Stable string key for hash indexes (type-tagged so 1 != "1").
  std::string IndexKey() const;

  /// JSON-ish rendering.
  std::string ToString() const;

  const char* TypeName() const;

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string,
               std::vector<uint8_t>, std::vector<Value>, Document>
      v_;
};

/// Convenience builder for array values.
Value MakeArray(std::initializer_list<Value> items);
Value MakeStringArray(const std::vector<std::string>& items);

}  // namespace agoraeo::docstore

#endif  // AGORAEO_DOCSTORE_VALUE_H_
