#include "docstore/value.h"

#include <algorithm>
#include <sstream>

#include "common/string_util.h"

namespace agoraeo::docstore {

// ---------------------------------------------------------------------------
// Document
// ---------------------------------------------------------------------------

void Document::Set(const std::string& key, Value value) {
  auto it = std::lower_bound(
      fields_.begin(), fields_.end(), key,
      [](const auto& kv, const std::string& k) { return kv.first < k; });
  if (it != fields_.end() && it->first == key) {
    it->second = std::move(value);
  } else {
    fields_.insert(it, {key, std::move(value)});
  }
}

const Value* Document::Get(const std::string& key) const {
  auto it = std::lower_bound(
      fields_.begin(), fields_.end(), key,
      [](const auto& kv, const std::string& k) { return kv.first < k; });
  if (it != fields_.end() && it->first == key) return &it->second;
  return nullptr;
}

const Value* Document::GetPath(const std::string& dotted_path) const {
  const Document* doc = this;
  size_t start = 0;
  while (true) {
    const size_t dot = dotted_path.find('.', start);
    const std::string component =
        dotted_path.substr(start, dot == std::string::npos ? std::string::npos
                                                           : dot - start);
    const Value* v = doc->Get(component);
    if (v == nullptr) return nullptr;
    if (dot == std::string::npos) return v;
    if (!v->is_document()) return nullptr;
    doc = &v->as_document();
    start = dot + 1;
  }
}

void Document::Remove(const std::string& key) {
  auto it = std::lower_bound(
      fields_.begin(), fields_.end(), key,
      [](const auto& kv, const std::string& k) { return kv.first < k; });
  if (it != fields_.end() && it->first == key) fields_.erase(it);
}

bool Document::operator==(const Document& other) const {
  if (fields_.size() != other.fields_.size()) return false;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].first != other.fields_[i].first) return false;
    if (fields_[i].second != other.fields_[i].second) return false;
  }
  return true;
}

std::string Document::ToString() const {
  std::ostringstream out;
  out << "{";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out << ", ";
    out << "\"" << fields_[i].first << "\": " << fields_[i].second.ToString();
  }
  out << "}";
  return out.str();
}

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

int Value::Compare(const Value& other) const {
  // Numbers of either storage compare numerically with each other.
  if (is_number() && other.is_number()) {
    const double a = as_number(), b = other.as_number();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (type() != other.type()) {
    return static_cast<int>(type()) < static_cast<int>(other.type()) ? -1 : 1;
  }
  switch (type()) {
    case Type::kNull:
      return 0;
    case Type::kBool:
      return static_cast<int>(as_bool()) - static_cast<int>(other.as_bool());
    case Type::kInt64:
    case Type::kDouble:
      return 0;  // handled above
    case Type::kString:
      return as_string().compare(other.as_string());
    case Type::kBinary: {
      const auto& a = as_binary();
      const auto& b = other.as_binary();
      if (a < b) return -1;
      if (b < a) return 1;
      return 0;
    }
    case Type::kArray: {
      const auto& a = as_array();
      const auto& b = other.as_array();
      const size_t n = std::min(a.size(), b.size());
      for (size_t i = 0; i < n; ++i) {
        const int c = a[i].Compare(b[i]);
        if (c != 0) return c;
      }
      if (a.size() < b.size()) return -1;
      if (a.size() > b.size()) return 1;
      return 0;
    }
    case Type::kDocument: {
      const auto& a = as_document().fields();
      const auto& b = other.as_document().fields();
      const size_t n = std::min(a.size(), b.size());
      for (size_t i = 0; i < n; ++i) {
        const int kc = a[i].first.compare(b[i].first);
        if (kc != 0) return kc;
        const int vc = a[i].second.Compare(b[i].second);
        if (vc != 0) return vc;
      }
      if (a.size() < b.size()) return -1;
      if (a.size() > b.size()) return 1;
      return 0;
    }
  }
  return 0;
}

std::string Value::IndexKey() const {
  switch (type()) {
    case Type::kNull:
      return "z";
    case Type::kBool:
      return as_bool() ? "b1" : "b0";
    case Type::kInt64:
    case Type::kDouble:
      // Numeric values index identically whether stored as int or double.
      return "n" + StrFormat("%.17g", as_number());
    case Type::kString:
      return "s" + as_string();
    case Type::kBinary: {
      std::string out = "x";
      for (uint8_t byte : as_binary()) {
        out += StrFormat("%02x", byte);
      }
      return out;
    }
    case Type::kArray: {
      std::string out = "a";
      for (const Value& v : as_array()) {
        const std::string k = v.IndexKey();
        out += StrFormat("%zu:", k.size());
        out += k;
      }
      return out;
    }
    case Type::kDocument: {
      std::string out = "d";
      for (const auto& [k, v] : as_document().fields()) {
        const std::string vk = v.IndexKey();
        out += StrFormat("%zu:%s=%zu:", k.size(), k.c_str(), vk.size());
        out += vk;
      }
      return out;
    }
  }
  return "?";
}

std::string Value::ToString() const {
  switch (type()) {
    case Type::kNull:
      return "null";
    case Type::kBool:
      return as_bool() ? "true" : "false";
    case Type::kInt64:
      return std::to_string(as_int64());
    case Type::kDouble:
      return StrFormat("%g", as_double());
    case Type::kString:
      return "\"" + as_string() + "\"";
    case Type::kBinary:
      return StrFormat("<binary %zu bytes>", as_binary().size());
    case Type::kArray: {
      std::ostringstream out;
      out << "[";
      const auto& arr = as_array();
      for (size_t i = 0; i < arr.size(); ++i) {
        if (i > 0) out << ", ";
        out << arr[i].ToString();
      }
      out << "]";
      return out.str();
    }
    case Type::kDocument:
      return as_document().ToString();
  }
  return "?";
}

const char* Value::TypeName() const {
  switch (type()) {
    case Type::kNull: return "null";
    case Type::kBool: return "bool";
    case Type::kInt64: return "int64";
    case Type::kDouble: return "double";
    case Type::kString: return "string";
    case Type::kBinary: return "binary";
    case Type::kArray: return "array";
    case Type::kDocument: return "document";
  }
  return "?";
}

Value MakeArray(std::initializer_list<Value> items) {
  return Value(std::vector<Value>(items));
}

Value MakeStringArray(const std::vector<std::string>& items) {
  std::vector<Value> arr;
  arr.reserve(items.size());
  for (const auto& s : items) arr.emplace_back(s);
  return Value(std::move(arr));
}

}  // namespace agoraeo::docstore
