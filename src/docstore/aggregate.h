#ifndef AGORAEO_DOCSTORE_AGGREGATE_H_
#define AGORAEO_DOCSTORE_AGGREGATE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "docstore/collection.h"
#include "docstore/filter.h"
#include "docstore/value.h"

namespace agoraeo::docstore {

/// One accumulator of a Group stage (the $group analogue).  `input_path`
/// is unused for kCount.
struct Accumulator {
  enum class Kind { kCount, kSum, kAvg, kMin, kMax };

  Kind kind = Kind::kCount;
  std::string output_field;  ///< field name in the group result document
  std::string input_path;    ///< dotted path read from each input document

  static Accumulator Count(std::string as) {
    return {Kind::kCount, std::move(as), ""};
  }
  static Accumulator Sum(std::string as, std::string path) {
    return {Kind::kSum, std::move(as), std::move(path)};
  }
  static Accumulator Avg(std::string as, std::string path) {
    return {Kind::kAvg, std::move(as), std::move(path)};
  }
  static Accumulator Min(std::string as, std::string path) {
    return {Kind::kMin, std::move(as), std::move(path)};
  }
  static Accumulator Max(std::string as, std::string path) {
    return {Kind::kMax, std::move(as), std::move(path)};
  }
};

/// A document aggregation pipeline over a collection — the embedded
/// analogue of MongoDB's aggregation framework, which is how EarthQube's
/// label-statistics view (paper Figure 2-4) is computed against the real
/// data tier: unwind the labels array, group-count by label, sort
/// descending.
///
/// Stages execute in the order they were added:
///   - Match(filter): keep documents satisfying the filter (uses the
///     collection's indexes when it is the first stage).
///   - Unwind(path): emit one document per element of the array at
///     `path`, with the array replaced by the element.
///   - Group(by, accumulators): group by the value at `by` (missing
///     values group under null); each output document carries
///     {_id: group key, <accumulator outputs>}.
///   - Sort(path, ascending): order documents by the value at `path`
///     (Value::Compare order; stable).
///   - Limit(n): keep the first n documents.
///   - Project(paths): keep only the listed top-level fields.
///
/// Example (label statistics):
///   Pipeline()
///       .Match(Filter::Eq("properties.country", Value("Portugal")))
///       .Unwind("properties.labels")
///       .Group("properties.labels", {Accumulator::Count("count")})
///       .Sort("count", /*ascending=*/false)
///       .Run(collection);
class Pipeline {
 public:
  Pipeline() = default;

  Pipeline& Match(Filter filter);
  Pipeline& Unwind(std::string path);
  Pipeline& Group(std::string by_path, std::vector<Accumulator> accumulators);
  Pipeline& Sort(std::string path, bool ascending = true);
  Pipeline& Limit(size_t n);
  Pipeline& Project(std::vector<std::string> fields);

  /// Executes the pipeline.  InvalidArgument on malformed stages (e.g.
  /// Avg over a non-numeric field is skipped per-document, but a Group
  /// with an empty output field name fails).
  StatusOr<std::vector<Document>> Run(const Collection& collection) const;

  size_t num_stages() const { return stages_.size(); }

 private:
  struct Stage {
    enum class Kind { kMatch, kUnwind, kGroup, kSort, kLimit, kProject };
    Kind kind;
    Filter filter = Filter::True();   // kMatch
    std::string path;                 // kUnwind / kGroup by / kSort
    std::vector<Accumulator> accumulators;  // kGroup
    bool ascending = true;            // kSort
    size_t limit = 0;                 // kLimit
    std::vector<std::string> fields;  // kProject
  };

  std::vector<Stage> stages_;
};

/// Sets a dotted path inside a document, materialising intermediate
/// sub-documents as needed (used by Unwind; exposed for tests).
void SetDottedPath(Document* doc, const std::string& dotted_path, Value v);

}  // namespace agoraeo::docstore

#endif  // AGORAEO_DOCSTORE_AGGREGATE_H_
