#ifndef AGORAEO_DOCSTORE_COLLECTION_H_
#define AGORAEO_DOCSTORE_COLLECTION_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "docstore/filter.h"
#include "docstore/histogram.h"
#include "docstore/index.h"
#include "docstore/value.h"

namespace agoraeo::docstore {

/// Execution trace of one query; lets tests and benchmarks verify which
/// plan was chosen (index scan vs. collection scan) and its work.
struct QueryStats {
  size_t docs_examined = 0;    ///< documents run through the filter
  size_t index_candidates = 0; ///< candidate ids produced by the index
  std::string plan = "COLLSCAN";  ///< "COLLSCAN" or "IXSCAN(<index path>)"
};

/// A named set of documents with secondary indexes and a small query
/// planner — the collection abstraction EarthQube's MongoDB data tier
/// provides (metadata, image data, rendered images, feedback).
///
/// The planner chooses, among applicable indexes for a filter's top-level
/// conjuncts, the access path with the fewest candidates, then re-verifies
/// candidates against the complete filter (indexes never return false
/// positives to callers).
class Collection {
 public:
  explicit Collection(std::string name) : name_(std::move(name)) {}

  Collection(const Collection&) = delete;
  Collection& operator=(const Collection&) = delete;
  Collection(Collection&&) = default;
  Collection& operator=(Collection&&) = default;

  /// Inserts a document, assigning a fresh DocId.  Fails with
  /// AlreadyExists when a unique index key collides (document not
  /// inserted).
  StatusOr<DocId> Insert(Document doc);

  /// Removes a document; NotFound when absent.
  Status Remove(DocId id);

  /// Replaces a document in place, maintaining all indexes.
  Status Update(DocId id, Document doc);

  /// Fetches a document (nullptr when absent).
  const Document* Get(DocId id) const;

  /// Ids of documents matching `filter`, in DocId order; `limit` of 0
  /// means unlimited.
  std::vector<DocId> FindIds(const Filter& filter, size_t limit = 0,
                             QueryStats* stats = nullptr) const;

  /// Matching documents (pointers valid until the next mutation).
  std::vector<const Document*> Find(const Filter& filter, size_t limit = 0,
                                    QueryStats* stats = nullptr) const;

  /// First match or NotFound.
  StatusOr<DocId> FindOneId(const Filter& filter) const;

  /// Number of matching documents.
  size_t Count(const Filter& filter, QueryStats* stats = nullptr) const;

  /// Cheap upper-bound estimate of how many documents match `filter`,
  /// the collection size when no index or histogram applies.  Purely
  /// count-based: posting-list lengths, geo cell sums and the per-field
  /// equi-width histograms — no candidate id vector is ever materialised
  /// (the old implementation paid a full candidate enumeration on some
  /// filter shapes), and a conjunction short-circuits as soon as one
  /// conjunct estimates zero.  Query planners use this to gauge filter
  /// selectivity without paying for the full query.  `plan` (optional)
  /// receives the access path the estimate came from ("IXSCAN(...)",
  /// "HISTOGRAM(<path>)" or "COLLSCAN").
  size_t EstimateMatches(const Filter& filter,
                         std::string* plan = nullptr) const;

  /// The cardinality histogram maintained for a range-indexed numeric
  /// path (nullptr when the path has no range index).  Exposed for tests
  /// and stats endpoints.
  const FieldHistogram* HistogramFor(const std::string& path) const;

  /// Aggregation used by the label-statistics view: counts occurrences of
  /// every element of the array field at `path` across documents matching
  /// `filter` (e.g. how many retrieved images carry each label).
  std::map<std::string, size_t> CountByArrayField(
      const std::string& path, const Filter& filter) const;

  // --- index management -----------------------------------------------

  /// Creates an exact-match index; `unique` rejects duplicate keys.
  /// Existing documents are indexed immediately.
  Status CreateHashIndex(const std::string& path, bool unique = false);
  Status CreateMultikeyIndex(const std::string& path);
  Status CreateGeoIndex(const std::string& path, int precision = 5);
  /// Creates an order-preserving B+-tree index used for range filters
  /// (Gt/Gte/Lt/Lte and conjunctions of them, e.g. acquisition-date
  /// ranges) as well as equality.
  Status CreateRangeIndex(const std::string& path);

  const std::string& name() const { return name_; }
  size_t size() const { return docs_.size(); }

  /// All documents in id order (for persistence and iteration).
  const std::map<DocId, Document>& docs() const { return docs_; }

  /// Index specs, for persistence.
  struct IndexSpec {
    enum class Kind { kHash, kUniqueHash, kMultikey, kGeo, kRange } kind;
    std::string path;
    int geo_precision = 5;
  };
  std::vector<IndexSpec> IndexSpecs() const;

 private:
  /// The index-assisted candidate set for `filter`, or nullopt when no
  /// index applies.  Candidates are a superset of matches.
  bool PlanCandidates(const Filter& filter, std::vector<DocId>* candidates,
                      std::string* plan) const;
  bool PlanLeaf(const Filter& leaf, std::vector<DocId>* candidates,
                std::string* plan) const;
  /// Combines every Gt/Gte/Lt/Lte/Eq conjunct on a range-indexed path
  /// into a single interval scan (e.g. date >= a AND date <= b becomes
  /// one bounded B+-tree scan).  False when no range index applies.
  bool PlanRangeConjunction(const std::vector<Filter>& conjuncts,
                            std::vector<DocId>* candidates,
                            std::string* plan) const;

  /// Count-only estimate for one indexable leaf; false when no index or
  /// histogram applies.
  bool EstimateLeaf(const Filter& leaf, size_t* estimate,
                    std::string* plan) const;
  /// Count-only analogue of PlanRangeConjunction: estimates the tightest
  /// interval implied by range conjuncts via the path's histogram (or
  /// the B+-tree's interval count for non-numeric keys).
  bool EstimateRangeConjunction(const std::vector<Filter>& conjuncts,
                                size_t* estimate, std::string* plan) const;

  /// Adds (or removes) one document's numeric values to the per-field
  /// histograms of every range-indexed path.
  void UpdateHistograms(const Document& doc, bool add);

  std::string name_;
  DocId next_id_ = 1;
  std::map<DocId, Document> docs_;
  std::vector<std::unique_ptr<HashIndex>> hash_indexes_;
  std::vector<std::unique_ptr<MultikeyIndex>> multikey_indexes_;
  std::vector<std::unique_ptr<GeoIndex>> geo_indexes_;
  std::vector<std::unique_ptr<RangeIndex>> range_indexes_;
  /// One equi-width cardinality histogram per range-indexed path,
  /// maintained on every insert/remove/update; feeds EstimateMatches.
  std::vector<std::pair<std::string, FieldHistogram>> histograms_;
};

}  // namespace agoraeo::docstore

#endif  // AGORAEO_DOCSTORE_COLLECTION_H_
