#ifndef AGORAEO_DOCSTORE_HISTOGRAM_H_
#define AGORAEO_DOCSTORE_HISTOGRAM_H_

#include <cmath>
#include <cstdint>
#include <optional>
#include <vector>

namespace agoraeo::docstore {

/// A cheap equi-width histogram over one numeric field, maintained
/// incrementally by the collection for every range-indexed path.  The
/// query planner's EstimateMatches uses it to gauge range-filter
/// selectivity in O(buckets) instead of scanning the B+-tree interval.
///
/// Buckets are [i·w, (i+1)·w) for integer i (floor semantics, so
/// negative values bucket correctly); the window covers `num_buckets`
/// consecutive indices starting at `base`.  When a value lands outside
/// the window the width doubles and adjacent bucket pairs merge — an
/// exact re-bucketing, because every old bucket nests inside exactly one
/// new bucket — until the window covers it, so any finite value range is
/// absorbed in O(log range) doublings without losing counts.
///
/// Estimates are upper bounds relative to the histogram contents:
/// buckets partially overlapping the query interval are counted fully.
/// Array-valued fields contribute one count per element (like the range
/// index itself), so the bound is against index entries, not documents.
class FieldHistogram {
 public:
  /// 512 buckets by default: a year of day ordinals (the planner's main
  /// customer) keeps width 1, i.e. exact per-day counts, at 4 KiB per
  /// indexed path.
  explicit FieldHistogram(size_t num_buckets = 512)
      : num_buckets_(num_buckets < 2 ? 2 : num_buckets),
        counts_(num_buckets_, 0) {}

  void Add(double v) {
    if (!std::isfinite(v)) return;
    if (total_ == 0 && !anchored_) {
      // First value anchors the window around its bucket.
      base_ = IndexFor(v);
      anchored_ = true;
    }
    // Use the index WidenToInclude converged on: for clamped-overflow
    // outliers a recomputed IndexFor(v) would clamp again (the clamp
    // breaks the floor(v/2w) == floor(floor(v/w)/2) identity), landing
    // outside the widened window.
    const int64_t idx = WidenToInclude(IndexFor(v));
    ++counts_[static_cast<size_t>(idx - base_)];
    ++total_;
  }

  void Remove(double v) {
    if (!std::isfinite(v) || total_ == 0) return;
    const int64_t idx = IndexFor(v);
    if (idx < base_ || idx >= base_ + static_cast<int64_t>(num_buckets_)) {
      return;  // never added (the window only widens)
    }
    uint64_t& count = counts_[static_cast<size_t>(idx - base_)];
    if (count == 0) return;
    --count;
    --total_;
  }

  /// Non-numeric values on the path are counted (not bucketed) so the
  /// estimator knows when the histogram does NOT cover every index
  /// entry — Value's type ordering makes numeric bounds match string
  /// entries, so a numeric-only estimate would break the upper bound.
  void AddNonNumeric() { ++non_numeric_; }
  void RemoveNonNumeric() {
    if (non_numeric_ > 0) --non_numeric_;
  }
  bool numeric_only() const { return non_numeric_ == 0; }

  uint64_t total() const { return total_; }

  /// Upper-bound count of entries in [lower, upper]; a nullopt bound is
  /// unbounded on that side.  Bound inclusivity is ignored (the boundary
  /// bucket is counted fully either way — still an upper bound).
  uint64_t EstimateRange(std::optional<double> lower,
                         std::optional<double> upper) const {
    if (total_ == 0) return 0;
    const int64_t last = base_ + static_cast<int64_t>(num_buckets_) - 1;
    int64_t lo = lower.has_value() ? IndexFor(*lower) : base_;
    int64_t hi = upper.has_value() ? IndexFor(*upper) : last;
    if (hi < base_ || lo > last || hi < lo) return 0;
    lo = lo < base_ ? base_ : lo;
    hi = hi > last ? last : hi;
    uint64_t sum = 0;
    for (int64_t i = lo; i <= hi; ++i) {
      sum += counts_[static_cast<size_t>(i - base_)];
    }
    return sum;
  }

 private:
  static int64_t FloorDiv2(int64_t i) { return i >= 0 ? i / 2 : (i - 1) / 2; }

  int64_t IndexFor(double v) const {
    // Clamp before the float->int conversion: |v/width| can exceed
    // int64's range for finite doubles (UB on the cast).  Clamped
    // outliers land in the extreme bucket — fine for an estimator.
    constexpr double kClamp = 9.0e18;  // < 2^63 - 1
    const double idx = std::floor(v / width_);
    if (idx >= kClamp) return static_cast<int64_t>(kClamp);
    if (idx <= -kClamp) return static_cast<int64_t>(-kClamp);
    return static_cast<int64_t>(idx);
  }

  /// Grows the window to cover `idx` and returns the in-window bucket
  /// index `idx` mapped to (identical to `idx` when no widening ran).
  int64_t WidenToInclude(int64_t idx) {
    // Fast path: the common in-window Add costs O(1); only genuine
    // widenings pay the bucket scans below.
    if (idx >= base_ && idx < base_ + static_cast<int64_t>(num_buckets_)) {
      return idx;
    }
    for (;;) {
      // The absolute index span that must fit in the window: every
      // occupied bucket plus the incoming index.
      int64_t lo = idx;
      int64_t hi = idx;
      for (size_t i = 0; i < num_buckets_; ++i) {
        if (counts_[i] == 0) continue;
        const int64_t abs_index = base_ + static_cast<int64_t>(i);
        lo = abs_index < lo ? abs_index : lo;
        hi = abs_index > hi ? abs_index : hi;
      }
      if (hi - lo < static_cast<int64_t>(num_buckets_)) {
        // Fits at the current width: shift the window (bucket
        // boundaries are absolute multiples of the width, so moving the
        // window start loses nothing).
        if (lo != base_) {
          std::vector<uint64_t> next(num_buckets_, 0);
          for (size_t i = 0; i < num_buckets_; ++i) {
            const int64_t abs_index = base_ + static_cast<int64_t>(i);
            if (counts_[i] != 0) {
              next[static_cast<size_t>(abs_index - lo)] = counts_[i];
            }
          }
          counts_ = std::move(next);
          base_ = lo;
        }
        return idx;
      }
      // Too wide: double the width — old bucket i folds into
      // floor(i/2) exactly — and retry.
      std::vector<uint64_t> next(num_buckets_, 0);
      const int64_t next_base = FloorDiv2(base_);
      for (size_t i = 0; i < num_buckets_; ++i) {
        next[static_cast<size_t>(
            FloorDiv2(base_ + static_cast<int64_t>(i)) - next_base)] +=
            counts_[i];
      }
      counts_ = std::move(next);
      base_ = next_base;
      width_ *= 2.0;
      idx = FloorDiv2(idx);
    }
  }

  size_t num_buckets_;
  double width_ = 1.0;
  int64_t base_ = 0;
  bool anchored_ = false;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
  uint64_t non_numeric_ = 0;
};

}  // namespace agoraeo::docstore

#endif  // AGORAEO_DOCSTORE_HISTOGRAM_H_
