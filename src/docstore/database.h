#ifndef AGORAEO_DOCSTORE_DATABASE_H_
#define AGORAEO_DOCSTORE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/byte_buffer.h"
#include "common/status.h"
#include "docstore/collection.h"

namespace agoraeo::docstore {

/// A set of named collections with file persistence — the embedded
/// stand-in for EarthQube's MongoDB server.  EarthQube's data tier holds
/// four collections: metadata, image data, rendered images, and user
/// feedback (paper Section 3.2).
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Gets or creates a collection.
  Collection* GetOrCreateCollection(const std::string& name);

  /// Gets an existing collection (nullptr when absent).
  Collection* GetCollection(const std::string& name);
  const Collection* GetCollection(const std::string& name) const;

  Status DropCollection(const std::string& name);

  std::vector<std::string> CollectionNames() const;
  size_t NumCollections() const { return collections_.size(); }

  /// Serialises every collection (documents + index definitions) to a
  /// single binary file.
  Status SaveToFile(const std::string& path) const;

  /// Restores a database saved with SaveToFile; replaces current content.
  /// Indexes are rebuilt from their persisted definitions.
  Status LoadFromFile(const std::string& path);

 private:
  std::map<std::string, std::unique_ptr<Collection>> collections_;
};

/// Binary (de)serialisation of values/documents, used by Database
/// persistence and by the image-payload collections.
void SerializeValue(const Value& v, ByteWriter* out);
StatusOr<Value> DeserializeValue(ByteReader* in);
void SerializeDocument(const Document& doc, ByteWriter* out);
StatusOr<Document> DeserializeDocument(ByteReader* in);

}  // namespace agoraeo::docstore

#endif  // AGORAEO_DOCSTORE_DATABASE_H_
