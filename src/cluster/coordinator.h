#ifndef AGORAEO_CLUSTER_COORDINATOR_H_
#define AGORAEO_CLUSTER_COORDINATOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "bigearthnet/archive_generator.h"
#include "cache/cache_stats.h"
#include "cache/epoch.h"
#include "cache/sharded_lru_cache.h"
#include "common/binary_code.h"
#include "common/status.h"
#include "netsvc/client.h"
#include "netsvc/server.h"
#include "obs/observability.h"

#include "cluster/slot_table.h"
#include "cluster/wire.h"

namespace agoraeo::cluster {

/// The query tier's entry point into a slot-sharded deployment: holds a
/// cached copy of the slot table, routes ingest to slot owners, fans
/// queries out to every node, and merges the partial answers back into
/// ONE response that is row-identical to what a monolithic deployment
/// over the same archive would serve.
///
/// Merge semantics (why the cluster answer matches the monolith):
///   - Each node ingests its patches in global archive order, so a
///     node's local item ids are increasing in the coordinator's global
///     ingest sequence; similarity hits merge by (distance, seq) — the
///     exact (distance, id) order the monolithic index produces — and
///     panel rows merge by seq, the docstore's ascending-DocId order.
///   - Limits (panel limit, similarity limit, paging) are stripped from
///     the fan-out and re-applied after the merge, so a node never
///     truncates away a row that is globally in range.
///   - A k-NN fan-out asks each node for the same k (k+1 for by-name
///     subjects, whose excluded subject occupies one rank); the global
///     top-k is a subset of the union of per-node top-ks.
///   - By-NAME subjects are resolved to a code at the slot owner first
///     (GET /cluster/code/<name>), then fanned out by code, so every
///     node searches the same subject; the subject row is dropped after
///     the merge exactly as the monolithic exclude does.
///   - Rows dedup by name before ordering: during a migration's
///     forwarding window the outgoing and incoming owner BOTH answer
///     for the moving slot, and the union-then-dedup is what makes a
///     racing query lose nothing and double-count nothing.
///
/// Redirect discipline: a 308 MOVED answer is followed exactly once
/// (after refreshing the cached table from the redirecting node); a
/// second 308 for the same request is an error, never a loop.  Response
/// `x-cluster-epoch` headers are the staleness signal: any epoch newer
/// than the cached table triggers a refresh.
class Coordinator {
 public:
  struct Options {
    netsvc::HttpClientOptions client_options;
    /// Coordinator-tier observability: its own registry, tracing switch
    /// and slow-query log, separate from every node's.  The client
    /// metric hooks are wired automatically (client_options.metrics is
    /// overwritten when metrics are enabled).
    obs::ObsConfig obs;
    /// Coordinator-side result cache: the merged, deduped, capped global
    /// ranking is kept per page-free request fingerprint, so resuming a
    /// cursor (or re-asking any page of a recent ranking) is a slice of
    /// the cached rows instead of a cluster-wide fan-out.  Entries are
    /// epoch-validated: routed ingest and topology changes invalidate
    /// lazily.
    bool enable_result_cache = true;
    /// Knobs of that cache; `validator` and `clock` are overwritten.
    cache::ShardedLruCacheOptions result_cache;
  };

  // Two overloads instead of one defaulted argument: a `= {}` default
  // would need Options' member initializers inside Coordinator's own
  // complete-class context, which nested aggregates cannot provide.
  Coordinator();
  explicit Coordinator(Options options);

  /// Installs a known topology directly (bootstrap from config).
  void AttachTable(const SlotTable& table);

  /// Fetches the slot table from `seed` (any cluster member).
  Status RefreshTopology(const NodeAddress& seed);

  SlotTable table() const;
  uint64_t epoch() const;

  /// Routed ingest: assigns each patch the next global ingest sequence
  /// number, groups patches by slot owner, and ships each group (codes
  /// + metadata, snapshot-framed) to its owner's /cluster/ingest.  A
  /// stale-table 308 refreshes the topology and re-routes once.
  Status IngestArchive(const bigearthnet::Archive& archive,
                       const std::vector<BinaryCode>& codes);

  /// Executes one /api/v2/query body (single or batch flavour) against
  /// the cluster and returns the response JSON — the same wire shape
  /// the monolithic service serves.
  StatusOr<std::string> Query(const std::string& body_json);

  /// Registers the coordinator's public face on an HttpServer:
  /// POST /api/v2/query (fan-out) and GET /api/v2/cluster/slots (the
  /// cached table).
  void RegisterRoutes(netsvc::HttpServer* server);

  /// Redirects followed across this coordinator's lifetime (tests).
  uint64_t redirects_followed() const { return redirects_followed_; }

  /// Counters of the merged-ranking result cache (all zero when the
  /// cache is disabled); also served on GET /api/v2/cache/stats.
  cache::CacheStats result_cache_stats() const;

  /// The coordinator's result-cache epoch: bumped by routed ingest and
  /// by topology adoption, lazily invalidating cached rankings.
  uint64_t result_epoch() const { return result_epoch_.Current(); }

  /// The coordinator tier's observability bundle (its /metrics and
  /// slow-query endpoints read it).
  obs::Observability& obs() { return obs_; }

 private:
  StatusOr<std::string> QuerySingle(const docstore::Document& body);
  StatusOr<earthqube::QueryResponse> ExecuteFanout(
      earthqube::QueryRequest request);

  /// Resolves a by-name similarity subject to its code at the slot
  /// owner, following at most one MOVED redirect.
  StatusOr<BinaryCode> ResolveSubjectCode(const std::string& name);

  /// POSTs `body` to one node, surfacing transport errors as Status.
  /// `detail` (optional) reports the typed error kind and attempt count;
  /// `extra_headers` rides along verbatim (trace propagation).
  StatusOr<netsvc::HttpResponse> PostNode(
      const NodeAddress& node, const std::string& target,
      const std::string& body,
      netsvc::HttpRequestDetail* detail = nullptr,
      const std::map<std::string, std::string>& extra_headers = {});

  /// Notes a response's x-cluster-epoch header; refreshes the table
  /// from `node` when the header advertises a newer topology.
  void ObserveEpoch(const NodeAddress& node,
                    const netsvc::HttpResponse& response);

  uint64_t SeqOf(const std::string& name) const;

  Options options_;
  /// Declared before the metric pointers below, which index into it.
  obs::Observability obs_;
  /// The client-side metric hooks every PostNode/RefreshTopology client
  /// records into (options_.client_options.metrics points here).
  obs::HttpClientMetrics client_metrics_;
  obs::Histogram* fanout_ns_ = nullptr;
  obs::Gauge* epoch_gauge_ = nullptr;
  obs::Counter* redirects_metric_ = nullptr;
  obs::Counter* fanout_node_failures_ = nullptr;
  mutable std::mutex mu_;
  SlotTable table_;
  /// name -> global ingest sequence, assigned in routed-ingest order.
  std::unordered_map<std::string, uint64_t> seq_;
  uint64_t next_seq_ = 0;
  std::atomic<uint64_t> redirects_followed_{0};

  /// Merged global rankings per page-free request fingerprint.  Shared
  /// pointers keep a ranking alive for a reader even if an epoch bump
  /// or LRU pressure drops it from the cache mid-slice.
  using MergedRows = std::vector<WireResult>;
  cache::EpochValidator result_epoch_;
  std::unique_ptr<
      cache::ShardedLruCache<std::string, std::shared_ptr<const MergedRows>>>
      result_cache_;
};

}  // namespace agoraeo::cluster

#endif  // AGORAEO_CLUSTER_COORDINATOR_H_
