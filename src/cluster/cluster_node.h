#ifndef AGORAEO_CLUSTER_CLUSTER_NODE_H_
#define AGORAEO_CLUSTER_CLUSTER_NODE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "earthqube/earthqube.h"
#include "netsvc/client.h"
#include "netsvc/earthqube_service.h"
#include "netsvc/server.h"

#include "cluster/slot_table.h"
#include "cluster/wire.h"

namespace agoraeo::cluster {

/// One member of a slot-sharded EarthQube deployment.  A node runs the
/// FULL single-node stack — engine, caches, segmented index, WAL — over
/// the subset of the archive whose names route to its slots, and wraps
/// it in the standard HTTP service plus the cluster control plane:
///
///   GET  /api/v2/cluster/slots     the node's copy of the slot table
///   POST /api/v2/cluster/migrate   {"slot": S, "target": "<node id>"} —
///                                  drives the source side of a live
///                                  slot hand-off to a peer
///   POST /api/v2/cluster/import    target side: one slot's items in
///                                  the snapshot-framed wire payload
///   POST /api/v2/cluster/ingest    routed ingest from the coordinator
///                                  (names must route to owned slots)
///   GET  /api/v2/cluster/code/<name>  the binary code of one owned
///                                  image (the coordinator's by-name
///                                  subject resolution)
///
/// The node registers its own /api/v2/query in place of the standard
/// one.  Data queries (by-code similarity, panel filters) execute
/// locally over whatever the node holds; a by-NAME similarity subject is
/// slot-addressed, so asking the wrong node answers HTTP 308 with the
/// owner's address in a MOVED envelope rather than a wrong local answer.
///
/// Migration protocol (slot S, source -> target):
///   1. Source collects S's (name, code, metadata) triples and POSTs
///      them to the target's /cluster/import; S keeps serving reads on
///      the source the whole time, and ingest is refused (503) so the
///      transferred set is stable.
///   2. Target ingests the payload, marks itself S's owner, adopts the
///      payload's epoch.  From here BOTH nodes answer S-queries (the
///      ASK-style forwarding window) — the coordinator's name-keyed
///      dedup makes the union exact: no duplicates, no drops.
///   3. Source commits: flips S to the target in its table, bumps its
///      epoch, and tombstones S — its copy of the items stays in the
///      local index (an append-only index cannot unlearn), but every
///      response is filtered against the tombstone set, so the slot is
///      immediately invisible locally and 308s point at the new owner.
///
/// Every cluster-aware response carries the node's topology epoch in an
/// `x-cluster-epoch` header — the cross-node staleness token: a reader
/// holding an older table refreshes when it sees a higher epoch.
class ClusterNode {
 public:
  struct Options {
    std::string id;
    std::string host = "127.0.0.1";
    /// Server connection-worker pool size.
    size_t num_workers = 4;
    /// Client knobs for node->node calls (migration push).
    netsvc::HttpClientOptions client_options;
  };

  /// `system` must outlive the node.
  ClusterNode(earthqube::EarthQube* system, Options options);
  ~ClusterNode();

  ClusterNode(const ClusterNode&) = delete;
  ClusterNode& operator=(const ClusterNode&) = delete;

  /// Binds and starts serving (port 0 picks an ephemeral port).  The
  /// node starts with an empty slot table — it owns nothing and 308s
  /// nowhere — until SetTable installs the bootstrap topology.
  Status Start(uint16_t port = 0);
  void Stop();

  /// Installs/replaces the node's copy of the slot table (bootstrap, or
  /// an operator pushing a newer topology).  Keeps the higher epoch.
  void SetTable(const SlotTable& table);

  /// Drives the source side of a live migration of `slot` to the peer
  /// `target_id` (which must be in the table).  Safe under concurrent
  /// query load; concurrent ingest is refused while the transfer runs.
  Status MigrateSlot(size_t slot, const std::string& target_id);

  const std::string& id() const { return options_.id; }
  uint16_t port() const { return server_->port(); }
  /// This node's address as peers should dial it.
  NodeAddress address() const;
  uint64_t epoch() const;
  SlotTable table() const;
  size_t owned_slot_count() const;
  /// Slots this node has handed away but whose items are still in the
  /// local index (filtered out of every response).
  std::vector<size_t> tombstoned_slots() const;

  earthqube::EarthQube* system() const { return system_; }

 private:
  netsvc::HttpResponse HandleQuery(const netsvc::HttpRequest& request) const;
  /// One parsed single-query execution (shared by single and batch
  /// bodies).  Returns the serialised response or an error response.
  /// A non-empty `trace_id` (the coordinator's x-trace-id) executes
  /// traced: the engine's stage spans come back in the response's
  /// x-trace-spans header for the coordinator's merged trace.
  netsvc::HttpResponse ExecuteOne(const earthqube::QueryRequest& request,
                                  const std::string& trace_id = {}) const;
  netsvc::HttpResponse HandleSlots() const;
  netsvc::HttpResponse HandleMigrate(const netsvc::HttpRequest& request);
  netsvc::HttpResponse HandleImport(const netsvc::HttpRequest& request);
  netsvc::HttpResponse HandleIngest(const netsvc::HttpRequest& request);
  netsvc::HttpResponse HandleCode(const netsvc::HttpRequest& request) const;

  /// Stamps the x-cluster-epoch staleness token onto a response.
  netsvc::HttpResponse Stamp(netsvc::HttpResponse response) const;

  /// The 308 MOVED answer for a slot this node does not serve; nullopt
  /// when the table has no owner to point at.
  std::optional<netsvc::HttpResponse> MovedResponse(size_t slot) const;

  /// Drops tombstoned-slot rows from a response and repairs the
  /// dependent fields (statistics, cursor).
  void FilterTombstoned(const std::set<size_t>& tombstones,
                        earthqube::QueryResponse* response) const;

  earthqube::EarthQube* system_;
  Options options_;
  std::unique_ptr<netsvc::HttpServer> server_;
  netsvc::EarthQubeService service_;

  /// Cluster-tier metrics, registered into the SYSTEM's registry (the
  /// node serves /metrics through the standard service routes); all
  /// null when the system's metrics are disabled.
  obs::Counter* moved_metric_ = nullptr;
  obs::Gauge* epoch_gauge_ = nullptr;
  obs::Histogram* migration_ns_ = nullptr;

  mutable std::mutex mu_;
  SlotTable table_;
  std::set<size_t> tombstones_;
  bool migrating_ = false;

  /// The docstore has no internal ingest/query synchronization — the
  /// single-node stack serializes ingest externally.  In a cluster that
  /// assumption breaks: a migration import or routed ingest arrives
  /// concurrently with fan-out queries, so the node itself provides the
  /// serialization.  Writers (import, routed ingest) take this
  /// exclusively; query execution and code/metadata reads take it
  /// shared.  Never held together with mu_.
  mutable std::shared_mutex data_mu_;
};

}  // namespace agoraeo::cluster

#endif  // AGORAEO_CLUSTER_CLUSTER_NODE_H_
