#include "cluster/slot_table.h"

#include <utility>

namespace agoraeo::cluster {

using docstore::Document;
using docstore::Value;

namespace {

/// splitmix64 finaliser — scrambles the FNV digest so the modulo sees
/// avalanche-quality bits (FNV-1a alone is weak in the low bits for
/// short, similar strings like patch names that share a long prefix).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t Fnv1a(const std::string& bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

size_t SlotOf(const std::string& name, size_t num_slots) {
  if (num_slots <= 1) return 0;
  return static_cast<size_t>(Mix64(Fnv1a(name)) % num_slots);
}

SlotTable::SlotTable(std::vector<NodeAddress> nodes, size_t num_slots)
    : epoch_(1), nodes_(std::move(nodes)) {
  if (num_slots == 0) num_slots = 1;
  owner_.assign(num_slots, -1);
  const size_t n = nodes_.size();
  if (n == 0) return;
  for (size_t slot = 0; slot < num_slots; ++slot) {
    owner_[slot] = static_cast<int>(slot * n / num_slots);
  }
}

const NodeAddress* SlotTable::NodeById(const std::string& id) const {
  for (const NodeAddress& node : nodes_) {
    if (node.id == id) return &node;
  }
  return nullptr;
}

const NodeAddress* SlotTable::OwnerOfSlot(size_t slot) const {
  if (slot >= owner_.size() || owner_[slot] < 0) return nullptr;
  return &nodes_[static_cast<size_t>(owner_[slot])];
}

const NodeAddress* SlotTable::OwnerOfName(const std::string& name) const {
  return OwnerOfSlot(SlotOf(name, num_slots()));
}

Status SlotTable::AssignSlot(size_t slot, const std::string& node_id) {
  if (slot >= owner_.size()) {
    return Status::InvalidArgument("slot out of range: " +
                                   std::to_string(slot));
  }
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].id == node_id) {
      owner_[slot] = static_cast<int>(i);
      return Status::OK();
    }
  }
  return Status::NotFound("unknown node id: " + node_id);
}

size_t SlotTable::CountOwnedBy(const std::string& node_id) const {
  return SlotsOwnedBy(node_id).size();
}

std::vector<size_t> SlotTable::SlotsOwnedBy(const std::string& node_id) const {
  std::vector<size_t> slots;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].id != node_id) continue;
    for (size_t slot = 0; slot < owner_.size(); ++slot) {
      if (owner_[slot] == static_cast<int>(i)) slots.push_back(slot);
    }
    break;
  }
  return slots;
}

Document SlotTable::ToJson() const {
  Document doc;
  doc.Set("epoch", Value(static_cast<int64_t>(epoch_)));
  doc.Set("num_slots", Value(static_cast<int64_t>(owner_.size())));
  std::vector<Value> nodes;
  nodes.reserve(nodes_.size());
  for (const NodeAddress& node : nodes_) {
    Document n;
    n.Set("id", Value(node.id));
    n.Set("host", Value(node.host));
    n.Set("port", Value(static_cast<int64_t>(node.port)));
    nodes.emplace_back(std::move(n));
  }
  doc.Set("nodes", Value(std::move(nodes)));
  std::vector<Value> slots;
  slots.reserve(owner_.size());
  for (const int owner : owner_) {
    slots.emplace_back(static_cast<int64_t>(owner));
  }
  doc.Set("slots", Value(std::move(slots)));
  return doc;
}

StatusOr<SlotTable> SlotTable::FromJson(const Document& doc) {
  const Value* epoch = doc.Get("epoch");
  const Value* num_slots = doc.Get("num_slots");
  const Value* nodes = doc.Get("nodes");
  const Value* slots = doc.Get("slots");
  if (epoch == nullptr || !epoch->is_int64() || epoch->as_int64() < 0) {
    return Status::InvalidArgument("slot table: bad epoch");
  }
  if (num_slots == nullptr || !num_slots->is_int64() ||
      num_slots->as_int64() <= 0) {
    return Status::InvalidArgument("slot table: bad num_slots");
  }
  if (nodes == nullptr || !nodes->is_array()) {
    return Status::InvalidArgument("slot table: nodes must be an array");
  }
  if (slots == nullptr || !slots->is_array()) {
    return Status::InvalidArgument("slot table: slots must be an array");
  }

  SlotTable table;
  table.epoch_ = static_cast<uint64_t>(epoch->as_int64());
  for (const Value& v : nodes->as_array()) {
    if (!v.is_document()) {
      return Status::InvalidArgument("slot table: node must be an object");
    }
    const Document& n = v.as_document();
    const Value* id = n.Get("id");
    const Value* host = n.Get("host");
    const Value* port = n.Get("port");
    if (id == nullptr || !id->is_string() || host == nullptr ||
        !host->is_string() || port == nullptr || !port->is_int64()) {
      return Status::InvalidArgument("slot table: malformed node entry");
    }
    table.nodes_.push_back({id->as_string(), host->as_string(),
                            static_cast<int>(port->as_int64())});
  }
  const auto& slot_array = slots->as_array();
  if (slot_array.size() != static_cast<size_t>(num_slots->as_int64())) {
    return Status::InvalidArgument("slot table: slots length != num_slots");
  }
  table.owner_.reserve(slot_array.size());
  for (const Value& v : slot_array) {
    if (!v.is_int64()) {
      return Status::InvalidArgument("slot table: slot owner must be int");
    }
    const int64_t owner = v.as_int64();
    if (owner < -1 || owner >= static_cast<int64_t>(table.nodes_.size())) {
      return Status::InvalidArgument("slot table: owner index out of range");
    }
    table.owner_.push_back(static_cast<int>(owner));
  }
  return table;
}

}  // namespace agoraeo::cluster
