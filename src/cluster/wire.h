#ifndef AGORAEO_CLUSTER_WIRE_H_
#define AGORAEO_CLUSTER_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bigearthnet/patch.h"
#include "common/binary_code.h"
#include "common/status.h"
#include "docstore/value.h"
#include "earthqube/query_request.h"
#include "geo/geo.h"

#include "cluster/slot_table.h"

namespace agoraeo::cluster {

/// The cluster's JSON wire codec: everything the coordinator and the
/// nodes exchange beyond the public /api/v2/query schema itself.
///
/// Fan-out requests reuse the public schema verbatim —
/// QueryRequestToJson below is the exact inverse of
/// EarthQubeService::QueryRequestFromJson, so a node cannot tell a
/// coordinator sub-query from a direct client request.

/// Serialises a QueryRequest into the /api/v2/query body the service
/// parser accepts.  Subjects: archive_name and code serialise; a
/// `patch` subject has no wire form (the coordinator hashes it to a
/// code first) and yields InvalidArgument.
StatusOr<docstore::Document> QueryRequestToJson(
    const earthqube::QueryRequest& request);

/// One result row parsed back out of a node's /api/v2/query response —
/// the merge currency of the coordinator.  A hits-projection row
/// carries only (name, distance); a full-projection row carries the
/// joined metadata, and `distance` only for similarity queries.
struct WireResult {
  std::string name;
  bool has_distance = false;
  uint32_t distance = 0;
  bool has_metadata = false;
  bigearthnet::LabelSet labels;
  std::string country;
  std::string date;
  geo::GeoPoint location;
};

/// The parts of a node's /api/v2/query response the coordinator merges.
/// Plan and cache flags are per-node execution detail and intentionally
/// not carried.
struct WireQueryResponse {
  size_t total = 0;
  std::vector<WireResult> results;
};

StatusOr<WireQueryResponse> ParseQueryResponse(const docstore::Document& doc);

/// The redirect envelope a node answers with when asked about a slot it
/// does not own (HTTP 308, the MOVED of the slot protocol):
///   {"moved": {"slot": S, "id": "...", "host": "...", "port": P},
///    "epoch": E}
docstore::Document MovedBody(size_t slot, const NodeAddress& owner,
                             uint64_t epoch);

struct MovedInfo {
  size_t slot = 0;
  NodeAddress owner;
  uint64_t epoch = 0;
};

StatusOr<MovedInfo> ParseMovedBody(const docstore::Document& doc);

/// One slot's transferable state: every (name, code, metadata) triple
/// routed to the slot.  Codes cross the wire inside the index-snapshot
/// frame (magic + version + length + CRC), base64-wrapped — byte-
/// interchangeable with a .snap file, so the transfer inherits the
/// snapshot format's corruption detection:
///   {"slot": S, "epoch": E, "codes_snapshot": "<base64 frame>",
///    "metadata": [<metadata documents>, ...]}
/// Names travel inside the snapshot frame; metadata[i] describes the
/// frame's names[i].
struct SlotPayload {
  size_t slot = 0;
  uint64_t epoch = 0;
  std::vector<std::string> names;
  std::vector<BinaryCode> codes;
  std::vector<bigearthnet::PatchMetadata> metadata;
};

StatusOr<docstore::Document> SlotPayloadToJson(const SlotPayload& payload);
StatusOr<SlotPayload> ParseSlotPayload(const docstore::Document& doc);

}  // namespace agoraeo::cluster

#endif  // AGORAEO_CLUSTER_WIRE_H_
