#ifndef AGORAEO_CLUSTER_SLOT_TABLE_H_
#define AGORAEO_CLUSTER_SLOT_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "docstore/value.h"

namespace agoraeo::cluster {

/// Default size of the slot space.  Every patch name hashes onto one of
/// these slots for the lifetime of the deployment; nodes own contiguous
/// slot ranges initially and arbitrary sets after migrations.  1024 is
/// small enough that the whole table ships in one /cluster/slots
/// response and large enough that rebalancing moves ~0.1% of the data
/// per slot.
inline constexpr size_t kDefaultNumSlots = 1024;

/// Routes a patch name onto the slot space: FNV-1a over the bytes, then
/// a splitmix64 finalising scramble, mod `num_slots`.  Names (not local
/// item ids) key the slot space because ids are assigned per node in
/// ingest order and are NOT stable across nodes; names are the one
/// cluster-wide identity an image has.
size_t SlotOf(const std::string& name, size_t num_slots);

/// One member of the cluster as the slot table describes it: a stable
/// id plus the HTTP address its peers and the coordinator dial.
struct NodeAddress {
  std::string id;
  std::string host;
  int port = 0;

  bool operator==(const NodeAddress& other) const {
    return id == other.id && host == other.host && port == other.port;
  }
};

/// The cluster's routing authority: which node owns each slot, plus a
/// monotonically increasing epoch that versions the assignment.  Every
/// node carries a copy; a node bumps its epoch when a migration it
/// participates in commits, and readers treat a higher epoch as strictly
/// newer (the cross-node staleness token: coordinators refresh their
/// cached table whenever a node response advertises a newer epoch).
///
/// The table itself is a plain value type — ClusterNode guards its copy
/// with a mutex; Coordinator swaps whole tables atomically.
class SlotTable {
 public:
  SlotTable() = default;

  /// Builds the bootstrap table: `nodes` split the slot space into
  /// contiguous, maximally even ranges (node i owns slots
  /// [i*S/N, (i+1)*S/N)), epoch 1.
  SlotTable(std::vector<NodeAddress> nodes, size_t num_slots);

  size_t num_slots() const { return owner_.size(); }
  uint64_t epoch() const { return epoch_; }
  void set_epoch(uint64_t epoch) { epoch_ = epoch; }

  size_t num_nodes() const { return nodes_.size(); }
  const NodeAddress& node(size_t i) const { return nodes_[i]; }
  const std::vector<NodeAddress>& nodes() const { return nodes_; }

  /// nullptr when no node has that id.
  const NodeAddress* NodeById(const std::string& id) const;

  /// Owner of one slot; nullptr when the slot is out of range or
  /// unassigned.
  const NodeAddress* OwnerOfSlot(size_t slot) const;
  /// Owner of the slot `name` routes to.
  const NodeAddress* OwnerOfName(const std::string& name) const;

  /// Reassigns one slot (the commit step of a migration).  Does NOT
  /// bump the epoch — the caller decides when a batch of reassignments
  /// becomes a new topology version.
  Status AssignSlot(size_t slot, const std::string& node_id);

  size_t CountOwnedBy(const std::string& node_id) const;
  std::vector<size_t> SlotsOwnedBy(const std::string& node_id) const;

  /// Wire form served by GET /api/v2/cluster/slots:
  ///   {"epoch": E, "num_slots": S,
  ///    "nodes": [{"id","host","port"}, ...],
  ///    "slots": [<owner index into nodes, -1 unassigned>, ...]}
  docstore::Document ToJson() const;
  static StatusOr<SlotTable> FromJson(const docstore::Document& doc);

 private:
  uint64_t epoch_ = 0;
  std::vector<NodeAddress> nodes_;
  /// Per-slot owner as an index into nodes_ (-1 = unassigned).
  std::vector<int> owner_;
};

}  // namespace agoraeo::cluster

#endif  // AGORAEO_CLUSTER_SLOT_TABLE_H_
