#include "cluster/cluster_node.h"

#include <algorithm>
#include <utility>

#include "bigearthnet/archive_generator.h"
#include "common/logging.h"
#include "earthqube/statistics.h"
#include "json/json.h"
#include "netsvc/http.h"

namespace agoraeo::cluster {

using docstore::Document;
using docstore::Value;
using earthqube::QueryRequest;
using earthqube::QueryResponse;
using netsvc::EarthQubeService;
using netsvc::HttpRequest;
using netsvc::HttpResponse;

namespace {

HttpResponse FromStatus(const Status& status) {
  if (status.IsNotFound()) return HttpResponse::NotFound(status.message());
  if (status.IsInvalidArgument()) {
    return HttpResponse::BadRequest(status.message());
  }
  return HttpResponse::InternalError(status.message());
}

}  // namespace

ClusterNode::ClusterNode(earthqube::EarthQube* system, Options options)
    : system_(system),
      options_(std::move(options)),
      server_(std::make_unique<netsvc::HttpServer>(options_.num_workers)),
      service_(system) {
  obs::Observability& obs = system_->obs();
  moved_metric_ = obs.CounterOrNull("agoraeo_cluster_moved_total");
  epoch_gauge_ = obs.GaugeOrNull("agoraeo_cluster_epoch");
  migration_ns_ = obs.HistogramOrNull("agoraeo_cluster_migration_ns");
}

ClusterNode::~ClusterNode() { Stop(); }

Status ClusterNode::Start(uint16_t port) {
  service_.set_node_info_provider([this] {
    EarthQubeService::NodeInfo info;
    info.id = options_.id;
    info.owned_slots = owned_slot_count();
    info.cluster_epoch = epoch();
    return info;
  });
  service_.RegisterRoutes(server_.get(), /*include_query_route=*/false);
  server_->Route("POST", "/api/v2/query", [this](const HttpRequest& request) {
    return HandleQuery(request);
  });
  server_->Route("GET", "/api/v2/cluster/slots",
                 [this](const HttpRequest&) { return HandleSlots(); });
  server_->Route("POST", "/api/v2/cluster/migrate",
                 [this](const HttpRequest& request) {
                   return HandleMigrate(request);
                 });
  server_->Route("POST", "/api/v2/cluster/import",
                 [this](const HttpRequest& request) {
                   return HandleImport(request);
                 });
  server_->Route("POST", "/api/v2/cluster/ingest",
                 [this](const HttpRequest& request) {
                   return HandleIngest(request);
                 });
  server_->Route("GET", "/api/v2/cluster/code/*",
                 [this](const HttpRequest& request) {
                   return HandleCode(request);
                 });
  return server_->Start(port);
}

void ClusterNode::Stop() { server_->Stop(); }

void ClusterNode::SetTable(const SlotTable& table) {
  uint64_t adopted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (table.epoch() >= table_.epoch()) table_ = table;
    adopted = table_.epoch();
  }
  if (epoch_gauge_ != nullptr) {
    epoch_gauge_->Set(static_cast<int64_t>(adopted));
  }
}

NodeAddress ClusterNode::address() const {
  return {options_.id, options_.host, static_cast<int>(server_->port())};
}

uint64_t ClusterNode::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return table_.epoch();
}

SlotTable ClusterNode::table() const {
  std::lock_guard<std::mutex> lock(mu_);
  return table_;
}

size_t ClusterNode::owned_slot_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return table_.CountOwnedBy(options_.id);
}

std::vector<size_t> ClusterNode::tombstoned_slots() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {tombstones_.begin(), tombstones_.end()};
}

HttpResponse ClusterNode::Stamp(HttpResponse response) const {
  response.headers["x-cluster-epoch"] = std::to_string(epoch());
  return response;
}

std::optional<HttpResponse> ClusterNode::MovedResponse(size_t slot) const {
  std::lock_guard<std::mutex> lock(mu_);
  const NodeAddress* owner = table_.OwnerOfSlot(slot);
  if (owner == nullptr || owner->id == options_.id) return std::nullopt;
  if (moved_metric_ != nullptr) moved_metric_->Increment();
  HttpResponse response = HttpResponse::Json(
      308, json::Serialize(MovedBody(slot, *owner, table_.epoch())));
  response.reason = netsvc::ReasonPhrase(308);
  return response;
}

void ClusterNode::FilterTombstoned(const std::set<size_t>& tombstones,
                                   QueryResponse* response) const {
  const size_t num_slots = [this] {
    std::lock_guard<std::mutex> lock(mu_);
    return table_.num_slots();
  }();
  if (num_slots == 0) return;
  const auto keep = [&](const std::string& name) {
    return tombstones.count(SlotOf(name, num_slots)) == 0;
  };
  if (response->projection == earthqube::Projection::kHitsOnly) {
    std::vector<earthqube::CbirResult> hits;
    hits.reserve(response->hits.size());
    for (earthqube::CbirResult& hit : response->hits) {
      if (keep(hit.patch_name)) hits.push_back(std::move(hit));
    }
    response->hits = std::move(hits);
  } else {
    const auto& entries = response->panel.entries();
    const bool aligned = response->hits.size() == entries.size();
    std::vector<earthqube::ResultEntry> kept;
    std::vector<earthqube::CbirResult> kept_hits;
    std::vector<bigearthnet::LabelSet> label_sets;
    kept.reserve(entries.size());
    for (size_t i = 0; i < entries.size(); ++i) {
      if (!keep(entries[i].name)) continue;
      label_sets.push_back(entries[i].labels);
      kept.push_back(entries[i]);
      if (aligned) kept_hits.push_back(response->hits[i]);
    }
    response->panel = earthqube::ResultPanel(std::move(kept));
    if (aligned) response->hits = std::move(kept_hits);
    response->statistics =
        earthqube::LabelStatistics::FromLabelSets(label_sets);
  }
  // The dropped rows change the page math; redo the cursor the way the
  // executor's FinishPaging does.
  response->cursor.clear();
  if (response->page_size > 0 &&
      (response->page + 1) * response->page_size < response->total()) {
    response->cursor = earthqube::EncodeCursor(
        {response->page + 1, response->page_size});
  }
}

HttpResponse ClusterNode::ExecuteOne(const QueryRequest& request,
                                     const std::string& trace_id) const {
  // By-name similarity subjects are slot-addressed: answering one for a
  // slot this node does not serve would silently miss the subject, so
  // redirect instead (the MOVED of the slot protocol).
  if (request.similarity.has_value() &&
      request.similarity->archive_name.has_value()) {
    size_t slot = 0;
    bool addressed_here = true;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (table_.num_slots() > 0) {
        slot = SlotOf(*request.similarity->archive_name, table_.num_slots());
        const NodeAddress* owner = table_.OwnerOfSlot(slot);
        addressed_here = owner != nullptr && owner->id == options_.id &&
                         tombstones_.count(slot) == 0;
      }
    }
    if (!addressed_here) {
      if (auto moved = MovedResponse(slot)) return *std::move(moved);
      return HttpResponse::Error(409, "conflict",
                                 "slot " + std::to_string(slot) +
                                     " is not served here and has no known "
                                     "owner");
    }
  }

  // A coordinator-propagated trace id makes this node's execution one
  // child of the merged cluster trace: the engine stage spans are echoed
  // back in the x-trace-spans response header.
  obs::Observability& obs = system_->obs();
  std::shared_ptr<obs::Trace> trace =
      trace_id.empty() ? nullptr : obs.StartTrace(trace_id);
  const uint64_t start_ns =
      (trace != nullptr || obs.metrics_enabled()) ? obs::NowNanos() : 0;

  StatusOr<QueryResponse> response = [&] {
    std::shared_lock<std::shared_mutex> data_lock(data_mu_);
    return system_->Execute(request, trace);
  }();

  if (start_ns != 0) {
    obs::SlowQueryLog& slow_log = obs.slow_log();
    const uint64_t total_ns = obs::NowNanos() - start_ns;
    if (total_ns >= slow_log.threshold_ns() && slow_log.capacity() > 0) {
      slow_log.Observe(total_ns, trace != nullptr ? trace->id() : "",
                       "cluster /api/v2/query on node " + options_.id,
                       trace != nullptr ? trace->ToJson() : "");
    }
  }

  if (!response.ok()) return FromStatus(response.status());

  const std::set<size_t> tombstones = [this] {
    std::lock_guard<std::mutex> lock(mu_);
    return tombstones_;
  }();
  if (!tombstones.empty()) FilterTombstoned(tombstones, &*response);
  HttpResponse http = HttpResponse::Json(
      200, EarthQubeService::QueryResponseToJson(*response));
  if (trace != nullptr) {
    http.headers["x-trace-id"] = trace->id();
    http.headers["x-trace-spans"] = trace->SpansToJson();
  }
  return http;
}

HttpResponse ClusterNode::HandleQuery(const HttpRequest& request) const {
  auto body = json::ParseObject(request.body.empty() ? "{}" : request.body);
  if (!body.ok()) {
    return Stamp(HttpResponse::BadRequest(body.status().message()));
  }
  if (const Value* batch = body->Get("requests"); batch != nullptr) {
    if (!batch->is_array() || batch->as_array().empty()) {
      return Stamp(
          HttpResponse::BadRequest("requests must be a non-empty array"));
    }
    if (batch->as_array().size() > EarthQubeService::kMaxBatchQueries) {
      return Stamp(HttpResponse::BadRequest(
          "batch too large: at most " +
          std::to_string(EarthQubeService::kMaxBatchQueries) +
          " requests per submission"));
    }
    std::string out = "{\"batch_size\":" +
                      std::to_string(batch->as_array().size()) +
                      ",\"responses\":[";
    bool first = true;
    for (const Value& entry : batch->as_array()) {
      if (!entry.is_document()) {
        return Stamp(
            HttpResponse::BadRequest("requests entries must be objects"));
      }
      auto parsed = EarthQubeService::QueryRequestFromJson(entry.as_document());
      if (!parsed.ok()) return Stamp(FromStatus(parsed.status()));
      HttpResponse one = ExecuteOne(*parsed);
      // Mirrors the monolithic batch contract: the first failing slot
      // (including a redirect) fails the whole submission.
      if (one.status_code != 200) return Stamp(std::move(one));
      if (!first) out += ",";
      first = false;
      out += one.body;
    }
    out += "]}";
    return Stamp(HttpResponse::Json(200, std::move(out)));
  }
  auto parsed = EarthQubeService::QueryRequestFromJson(*body);
  if (!parsed.ok()) return Stamp(FromStatus(parsed.status()));
  return Stamp(ExecuteOne(*parsed, request.Header("x-trace-id")));
}

HttpResponse ClusterNode::HandleSlots() const {
  return Stamp(HttpResponse::Json(200, json::Serialize([this] {
    std::lock_guard<std::mutex> lock(mu_);
    return table_.ToJson();
  }())));
}

HttpResponse ClusterNode::HandleMigrate(const HttpRequest& request) {
  auto body = json::ParseObject(request.body.empty() ? "{}" : request.body);
  if (!body.ok()) {
    return Stamp(HttpResponse::BadRequest(body.status().message()));
  }
  const Value* slot = body->Get("slot");
  const Value* target = body->Get("target");
  if (slot == nullptr || !slot->is_int64() || slot->as_int64() < 0 ||
      target == nullptr || !target->is_string()) {
    return Stamp(HttpResponse::BadRequest(
        "migrate needs {\"slot\": <int>, \"target\": \"<node id>\"}"));
  }
  const Status migrated = MigrateSlot(static_cast<size_t>(slot->as_int64()),
                                      target->as_string());
  if (!migrated.ok()) {
    if (migrated.IsFailedPrecondition()) {
      return Stamp(HttpResponse::Error(409, "conflict", migrated.message()));
    }
    return Stamp(FromStatus(migrated));
  }
  Document out;
  out.Set("migrated", Value(true));
  out.Set("slot", Value(slot->as_int64()));
  out.Set("epoch", Value(static_cast<int64_t>(epoch())));
  return Stamp(HttpResponse::Json(200, json::Serialize(out)));
}

Status ClusterNode::MigrateSlot(size_t slot, const std::string& target_id) {
  obs::ScopedTimer migration_timer(migration_ns_);
  NodeAddress target;
  uint64_t next_epoch = 0;
  size_t num_slots = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (slot >= table_.num_slots()) {
      return Status::InvalidArgument("slot out of range: " +
                                     std::to_string(slot));
    }
    const NodeAddress* owner = table_.OwnerOfSlot(slot);
    if (owner == nullptr || owner->id != options_.id ||
        tombstones_.count(slot) != 0) {
      return Status::FailedPrecondition(
          "this node does not own slot " + std::to_string(slot));
    }
    const NodeAddress* peer = table_.NodeById(target_id);
    if (peer == nullptr) {
      return Status::NotFound("unknown migration target: " + target_id);
    }
    if (peer->id == options_.id) {
      return Status::InvalidArgument("cannot migrate a slot to its owner");
    }
    if (migrating_) {
      return Status::FailedPrecondition("a migration is already running");
    }
    migrating_ = true;
    target = *peer;
    next_epoch = table_.epoch() + 1;
    num_slots = table_.num_slots();
  }
  // From here every exit must clear migrating_.
  const earthqube::CbirService* cbir = system_->cbir();
  Status result = Status::OK();
  if (cbir == nullptr) {
    result = Status::FailedPrecondition("no CBIR service attached");
  } else {
    SlotPayload payload;
    payload.slot = slot;
    payload.epoch = next_epoch;
    {
      std::shared_lock<std::shared_mutex> data_lock(data_mu_);
      for (const std::string& name : cbir->indexed_names()) {
        if (SlotOf(name, num_slots) != slot) continue;
        auto code = cbir->CodeOf(name);
        auto meta = system_->GetMetadata(name);
        if (!code.ok() || !meta.ok()) {
          result = Status::Internal("slot item lookup failed for " + name);
          break;
        }
        payload.names.push_back(name);
        payload.codes.push_back(*std::move(code));
        payload.metadata.push_back(*std::move(meta));
      }
    }
    if (result.ok()) {
      auto body = SlotPayloadToJson(payload);
      if (!body.ok()) {
        result = body.status();
      } else {
        netsvc::HttpClient client(target.host, options_.client_options);
        auto imported = client.Post(target.port, "/api/v2/cluster/import",
                                    json::Serialize(*body));
        if (!imported.ok()) {
          result = imported.status();
        } else if (imported->status_code != 200) {
          result = Status::Internal("import refused by " + target.id + ": " +
                                    imported->body);
        }
      }
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  migrating_ = false;
  if (!result.ok()) return result;
  // Commit: the target confirmed it holds the slot; flip ownership,
  // version the topology, and stop serving the local copy.
  AGORAEO_RETURN_IF_ERROR(table_.AssignSlot(slot, target.id));
  table_.set_epoch(std::max(next_epoch, table_.epoch() + 1));
  tombstones_.insert(slot);
  if (epoch_gauge_ != nullptr) {
    epoch_gauge_->Set(static_cast<int64_t>(table_.epoch()));
  }
  AGORAEO_LOG(kInfo) << "cluster node " << options_.id << " migrated slot "
                     << slot << " to " << target.id << " (epoch "
                     << table_.epoch() << ")";
  return Status::OK();
}

HttpResponse ClusterNode::HandleImport(const HttpRequest& request) {
  auto body = json::ParseObject(request.body.empty() ? "{}" : request.body);
  if (!body.ok()) {
    return Stamp(HttpResponse::BadRequest(body.status().message()));
  }
  auto payload = ParseSlotPayload(*body);
  if (!payload.ok()) {
    return Stamp(HttpResponse::BadRequest(payload.status().message()));
  }
  bigearthnet::Archive archive;
  archive.patches = std::move(payload->metadata);
  const Status ingested = [&] {
    std::unique_lock<std::shared_mutex> data_lock(data_mu_);
    return system_->IngestArchiveWithCodes(archive, payload->codes);
  }();
  if (!ingested.ok()) return Stamp(FromStatus(ingested));
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (table_.NodeById(options_.id) != nullptr) {
      // Adopt ownership immediately: from this moment both ends answer
      // queries for the slot (the forwarding window) until the source
      // commits its side and tombstones.
      (void)table_.AssignSlot(payload->slot, options_.id);
      table_.set_epoch(std::max(table_.epoch(), payload->epoch));
      tombstones_.erase(payload->slot);
    }
  }
  Document out;
  out.Set("imported", Value(static_cast<int64_t>(payload->names.size())));
  out.Set("slot", Value(static_cast<int64_t>(payload->slot)));
  return Stamp(HttpResponse::Json(200, json::Serialize(out)));
}

HttpResponse ClusterNode::HandleIngest(const HttpRequest& request) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (migrating_) {
      return HttpResponse::Error(
          503, "unavailable",
          "ingest refused: a slot migration is in progress");
    }
  }
  auto body = json::ParseObject(request.body.empty() ? "{}" : request.body);
  if (!body.ok()) {
    return Stamp(HttpResponse::BadRequest(body.status().message()));
  }
  auto payload = ParseSlotPayload(*body);
  if (!payload.ok()) {
    return Stamp(HttpResponse::BadRequest(payload.status().message()));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (table_.num_slots() > 0) {
      for (const std::string& name : payload->names) {
        const size_t slot = SlotOf(name, table_.num_slots());
        const NodeAddress* owner = table_.OwnerOfSlot(slot);
        if (owner == nullptr || owner->id != options_.id ||
            tombstones_.count(slot) != 0) {
          if (owner != nullptr && owner->id != options_.id) {
            return Stamp(HttpResponse::Json(
                308,
                json::Serialize(MovedBody(slot, *owner, table_.epoch()))));
          }
          return Stamp(HttpResponse::Error(
              409, "conflict",
              "name " + name + " routes to slot " + std::to_string(slot) +
                  ", which this node does not accept"));
        }
      }
    }
  }
  bigearthnet::Archive archive;
  archive.patches = std::move(payload->metadata);
  const Status ingested = [&] {
    std::unique_lock<std::shared_mutex> data_lock(data_mu_);
    return system_->IngestArchiveWithCodes(archive, payload->codes);
  }();
  if (!ingested.ok()) return Stamp(FromStatus(ingested));
  Document out;
  out.Set("ingested", Value(static_cast<int64_t>(payload->names.size())));
  return Stamp(HttpResponse::Json(200, json::Serialize(out)));
}

HttpResponse ClusterNode::HandleCode(const HttpRequest& request) const {
  const std::string prefix = "/api/v2/cluster/code/";
  auto name = netsvc::UrlDecode(request.path.substr(prefix.size()));
  if (!name.ok()) {
    return Stamp(HttpResponse::BadRequest(name.status().message()));
  }
  size_t slot = 0;
  bool addressed_here = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (table_.num_slots() > 0) {
      slot = SlotOf(*name, table_.num_slots());
      const NodeAddress* owner = table_.OwnerOfSlot(slot);
      addressed_here = owner != nullptr && owner->id == options_.id &&
                       tombstones_.count(slot) == 0;
    }
  }
  if (!addressed_here) {
    if (auto moved = MovedResponse(slot)) return *std::move(moved);
    return Stamp(HttpResponse::Error(
        409, "conflict",
        "slot " + std::to_string(slot) + " has no known owner"));
  }
  const earthqube::CbirService* cbir = system_->cbir();
  if (cbir == nullptr) {
    return Stamp(
        HttpResponse::Error(409, "conflict", "no CBIR service attached"));
  }
  auto code = [&] {
    std::shared_lock<std::shared_mutex> data_lock(data_mu_);
    return cbir->CodeOf(*name);
  }();
  if (!code.ok()) {
    return Stamp(HttpResponse::NotFound("no such indexed image: " + *name));
  }
  Document out;
  out.Set("name", Value(*name));
  out.Set("code", Value(code->ToBitString()));
  return Stamp(HttpResponse::Json(200, json::Serialize(out)));
}

}  // namespace agoraeo::cluster
