#include "cluster/coordinator.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <thread>
#include <unordered_set>
#include <utility>

#include "earthqube/query_cache.h"
#include "earthqube/ranked_access.h"
#include "earthqube/statistics.h"
#include "json/json.h"
#include "netsvc/earthqube_service.h"
#include "netsvc/http.h"

namespace agoraeo::cluster {

using docstore::Document;
using docstore::Value;
using earthqube::QueryRequest;
using earthqube::QueryResponse;
using netsvc::EarthQubeService;
using netsvc::HttpResponse;

namespace {

HttpResponse FromStatus(const Status& status) {
  if (status.IsNotFound()) return HttpResponse::NotFound(status.message());
  if (status.IsInvalidArgument()) {
    return HttpResponse::BadRequest(status.message());
  }
  if (status.IsFailedPrecondition()) {
    return HttpResponse::Error(409, "conflict", std::string(status.message()));
  }
  return HttpResponse::InternalError(status.message());
}

/// Unknown names (data that bypassed this coordinator) sort after every
/// routed name, deterministically by name.
constexpr uint64_t kUnknownSeq = std::numeric_limits<uint64_t>::max();

/// Parses a node's x-trace-spans header — the compact span array
/// rendered by Trace::SpansToJson (relative microseconds) — back into
/// spans for the coordinator's merged trace.
StatusOr<std::vector<obs::TraceSpan>> ParseSpansJson(const std::string& text) {
  AGORAEO_ASSIGN_OR_RETURN(const Value parsed, json::Parse(text));
  if (!parsed.is_array()) {
    return Status::InvalidArgument("x-trace-spans is not an array");
  }
  std::vector<obs::TraceSpan> spans;
  spans.reserve(parsed.as_array().size());
  for (const Value& entry : parsed.as_array()) {
    if (!entry.is_document()) continue;
    const Document& doc = entry.as_document();
    obs::TraceSpan span;
    if (const Value* name = doc.Get("name"); name != nullptr &&
        name->is_string()) {
      span.name = name->as_string();
    }
    if (const Value* start = doc.Get("start_us");
        start != nullptr && start->is_int64()) {
      span.start_ns = static_cast<uint64_t>(start->as_int64()) * 1000;
    }
    if (const Value* dur = doc.Get("dur_us");
        dur != nullptr && dur->is_int64()) {
      span.duration_ns = static_cast<uint64_t>(dur->as_int64()) * 1000;
    }
    spans.push_back(std::move(span));
  }
  return spans;
}

}  // namespace

Coordinator::Coordinator() : Coordinator(Options()) {}

Coordinator::Coordinator(Options options)
    : options_(std::move(options)), obs_(options_.obs) {
  if (options_.enable_result_cache) {
    options_.result_cache.validator = &result_epoch_;
    options_.result_cache.clock = nullptr;
    result_cache_ = std::make_unique<
        cache::ShardedLruCache<std::string, std::shared_ptr<const MergedRows>>>(
        options_.result_cache);
  }
  if (!obs_.metrics_enabled()) return;
  obs::MetricsRegistry& registry = obs_.registry();
  client_metrics_.requests =
      registry.GetCounter("agoraeo_http_client_requests_total");
  client_metrics_.failures =
      registry.GetCounter("agoraeo_http_client_failures_total");
  client_metrics_.retries =
      registry.GetCounter("agoraeo_http_client_retries_total");
  client_metrics_.backoff_sleeps =
      registry.GetCounter("agoraeo_http_client_backoff_sleeps_total");
  // kNone never fails a request; start at the first real kind.
  for (int kind = 1; kind <= static_cast<int>(netsvc::HttpErrorKind::kOther);
       ++kind) {
    client_metrics_.errors_by_kind[kind] = registry.GetCounter(
        obs::LabeledName("agoraeo_http_client_errors_total", "kind",
                         netsvc::HttpErrorKindName(
                             static_cast<netsvc::HttpErrorKind>(kind))));
  }
  options_.client_options.metrics = &client_metrics_;
  fanout_ns_ = obs_.HistogramOrNull("agoraeo_cluster_fanout_ns");
  epoch_gauge_ = obs_.GaugeOrNull("agoraeo_cluster_epoch");
  redirects_metric_ = obs_.CounterOrNull("agoraeo_cluster_redirects_total");
  fanout_node_failures_ =
      obs_.CounterOrNull("agoraeo_cluster_fanout_node_failures_total");
}

void Coordinator::AttachTable(const SlotTable& table) {
  uint64_t adopted;
  bool changed = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (table.epoch() >= table_.epoch()) {
      changed = table.epoch() != table_.epoch();
      table_ = table;
    }
    adopted = table_.epoch();
  }
  // A topology change re-shapes the fan-out (and a migration's
  // forwarding window re-shapes who answers), so cached rankings
  // computed under the old table stop being served as fresh.
  if (changed) result_epoch_.Bump();
  if (epoch_gauge_ != nullptr) {
    epoch_gauge_->Set(static_cast<int64_t>(adopted));
  }
}

Status Coordinator::RefreshTopology(const NodeAddress& seed) {
  netsvc::HttpClient client(seed.host, options_.client_options);
  AGORAEO_ASSIGN_OR_RETURN(
      const HttpResponse response,
      client.Get(static_cast<uint16_t>(seed.port), "/api/v2/cluster/slots"));
  if (response.status_code != 200) {
    return Status::Internal("slot table fetch from " + seed.id +
                            " answered " +
                            std::to_string(response.status_code));
  }
  AGORAEO_ASSIGN_OR_RETURN(const Document doc,
                           json::ParseObject(response.body));
  AGORAEO_ASSIGN_OR_RETURN(const SlotTable table, SlotTable::FromJson(doc));
  AttachTable(table);
  return Status::OK();
}

SlotTable Coordinator::table() const {
  std::lock_guard<std::mutex> lock(mu_);
  return table_;
}

uint64_t Coordinator::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return table_.epoch();
}

uint64_t Coordinator::SeqOf(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = seq_.find(name);
  return it == seq_.end() ? kUnknownSeq : it->second;
}

StatusOr<HttpResponse> Coordinator::PostNode(
    const NodeAddress& node, const std::string& target,
    const std::string& body, netsvc::HttpRequestDetail* detail,
    const std::map<std::string, std::string>& extra_headers) {
  netsvc::HttpClient client(node.host, options_.client_options);
  return client.Request(static_cast<uint16_t>(node.port), "POST", target,
                        body, "application/json", detail, extra_headers);
}

void Coordinator::ObserveEpoch(const NodeAddress& node,
                               const HttpResponse& response) {
  const auto it = response.headers.find("x-cluster-epoch");
  if (it == response.headers.end()) return;
  uint64_t advertised = 0;
  try {
    advertised = std::stoull(it->second);
  } catch (...) {
    return;
  }
  if (advertised > epoch()) {
    // Best effort: a failed refresh leaves the stale table in place and
    // the next MOVED answer will try again.
    (void)RefreshTopology(node);
  }
}

Status Coordinator::IngestArchive(const bigearthnet::Archive& archive,
                                  const std::vector<BinaryCode>& codes) {
  if (codes.size() != archive.patches.size()) {
    return Status::InvalidArgument("codes length mismatch with patches");
  }
  SlotTable snapshot = table();
  if (snapshot.num_nodes() == 0) {
    return Status::FailedPrecondition("no cluster topology attached");
  }
  // Global ingest order is assigned HERE, before any routing: the
  // sequence numbers are what later makes merged results reproduce the
  // monolithic ingest order.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& meta : archive.patches) {
      if (seq_.count(meta.name) == 0) seq_[meta.name] = next_seq_++;
    }
  }

  // One group of patch indices per owner node, archive order preserved.
  const auto route = [&](const std::vector<size_t>& items, int depth,
                         const auto& self) -> Status {
    std::vector<std::pair<NodeAddress, std::vector<size_t>>> groups;
    for (size_t i : items) {
      const NodeAddress* owner = snapshot.OwnerOfName(archive.patches[i].name);
      if (owner == nullptr) {
        return Status::FailedPrecondition(
            "no owner for " + archive.patches[i].name);
      }
      auto group = std::find_if(
          groups.begin(), groups.end(),
          [&](const auto& g) { return g.first.id == owner->id; });
      if (group == groups.end()) {
        groups.push_back({*owner, {}});
        group = groups.end() - 1;
      }
      group->second.push_back(i);
    }
    for (const auto& [node, indices] : groups) {
      SlotPayload payload;
      payload.slot = 0;  // routed ingest spans slots; field unused here
      payload.epoch = snapshot.epoch();
      for (size_t i : indices) {
        payload.names.push_back(archive.patches[i].name);
        payload.codes.push_back(codes[i]);
        payload.metadata.push_back(archive.patches[i]);
      }
      AGORAEO_ASSIGN_OR_RETURN(const Document body,
                               SlotPayloadToJson(payload));
      AGORAEO_ASSIGN_OR_RETURN(
          const HttpResponse response,
          PostNode(node, "/api/v2/cluster/ingest", json::Serialize(body)));
      ObserveEpoch(node, response);
      if (response.status_code == 308) {
        if (depth >= 1) {
          return Status::Internal(
              "ingest redirect loop: node " + node.id +
              " still answers MOVED after a topology refresh");
        }
        redirects_followed_.fetch_add(1, std::memory_order_relaxed);
      if (redirects_metric_ != nullptr) redirects_metric_->Increment();
        // The redirecting node holds a newer table than ours; adopt it
        // and re-route just this group once.
        AGORAEO_RETURN_IF_ERROR(RefreshTopology(node));
        snapshot = table();
        AGORAEO_RETURN_IF_ERROR(self(indices, depth + 1, self));
        continue;
      }
      if (response.status_code != 200) {
        return Status::Internal("ingest refused by " + node.id + ": " +
                                response.body);
      }
    }
    return Status::OK();
  };

  std::vector<size_t> all(archive.patches.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  const Status status = route(all, 0, route);
  // Bump AFTER the node writes (even failed ones — a partial ingest
  // already changed some node's data): rankings cached mid-ingest were
  // stamped with the pre-ingest epoch and go stale on their next Get.
  result_epoch_.Bump();
  return status;
}

StatusOr<BinaryCode> Coordinator::ResolveSubjectCode(const std::string& name) {
  const SlotTable snapshot = table();
  const NodeAddress* owner = snapshot.OwnerOfName(name);
  if (owner == nullptr) {
    return Status::FailedPrecondition("no owner for subject " + name);
  }
  NodeAddress target = *owner;
  for (int attempt = 0; attempt < 2; ++attempt) {
    netsvc::HttpClient client(target.host, options_.client_options);
    AGORAEO_ASSIGN_OR_RETURN(
        const HttpResponse response,
        client.Get(static_cast<uint16_t>(target.port),
                   "/api/v2/cluster/code/" + netsvc::UrlEncode(name)));
    ObserveEpoch(target, response);
    if (response.status_code == 200) {
      AGORAEO_ASSIGN_OR_RETURN(const Document doc,
                               json::ParseObject(response.body));
      const Value* code = doc.Get("code");
      if (code == nullptr || !code->is_string() || code->as_string().empty()) {
        return Status::Internal("malformed code response from " + target.id);
      }
      return BinaryCode::FromBitString(code->as_string());
    }
    if (response.status_code == 404) {
      return Status::NotFound("no such archive image: " + name);
    }
    if (response.status_code == 308) {
      // Follow exactly one MOVED; a second redirect means the topology
      // is churning faster than we can chase, so fail rather than loop.
      if (attempt == 1) break;
      AGORAEO_ASSIGN_OR_RETURN(const Document doc,
                               json::ParseObject(response.body));
      AGORAEO_ASSIGN_OR_RETURN(const MovedInfo moved, ParseMovedBody(doc));
      redirects_followed_.fetch_add(1, std::memory_order_relaxed);
      if (redirects_metric_ != nullptr) redirects_metric_->Increment();
      target = moved.owner;
      continue;
    }
    return Status::Internal("code lookup at " + target.id + " answered " +
                            std::to_string(response.status_code) + ": " +
                            response.body);
  }
  return Status::Internal("subject " + name +
                          " still MOVED after following one redirect");
}

StatusOr<QueryResponse> Coordinator::ExecuteFanout(QueryRequest request) {
  const SlotTable snapshot = table();
  if (snapshot.num_nodes() == 0) {
    return Status::FailedPrecondition("no cluster topology attached");
  }

  // One trace per fan-out; the nodes' x-trace-spans answers merge in as
  // children, so the slow-query log shows the whole cross-cluster
  // request as a single tree.
  const std::shared_ptr<obs::Trace> trace = obs_.StartTrace();
  obs::ScopedTimer fan_timer(fanout_ns_);
  const uint64_t start_ns =
      (trace != nullptr || obs_.metrics_enabled()) ? obs::NowNanos() : 0;

  const bool has_sim = request.similarity.has_value();
  const bool has_panel = request.panel.has_value();
  const size_t page = request.page;
  const size_t page_size = request.page_size;

  // The page-free fingerprint identifies the underlying global ranking;
  // its FNV hash is the handle id carried in v3 cursors — minted here
  // exactly as a monolithic node mints it, so cursors stay portable.
  QueryRequest fp_request = request;
  fp_request.page = 0;
  fp_request.page_size = 0;
  const std::optional<std::string> stream_fp =
      earthqube::QueryCache::RequestFingerprint(fp_request);
  const std::string handle_id =
      stream_fp.has_value() ? earthqube::RankedAccess::HandleIdFor(*stream_fp)
                            : std::string();
  // Epoch BEFORE any node read: an ingest racing the fan-out leaves the
  // cached ranking stale instead of serving pre-ingest rows as fresh.
  const uint64_t epoch_snapshot = result_epoch_.Current();

  std::shared_ptr<const MergedRows> merged;
  bool from_cache = false;
  if (result_cache_ != nullptr && stream_fp.has_value()) {
    if (auto cached = result_cache_->Get(*stream_fp); cached.has_value()) {
      // Cursor resume (or any repeat page of a recent ranking): slice
      // the cached merged rows — no fan-out at all.
      merged = *std::move(cached);
      from_cache = true;
    }
  }

  const std::vector<NodeAddress> nodes = snapshot.nodes();
  if (merged == nullptr) {
  // Rewrite for fan-out: unpaged, uncapped — every global limit is
  // re-applied after the merge, where "first N" means something.
  std::string exclude;
  std::optional<size_t> cap;
  if (has_sim) {
    earthqube::SimilaritySpec& spec = *request.similarity;
    if (spec.patch.has_value()) {
      return Status::InvalidArgument(
          "uploaded-patch subjects are not routable; submit a code");
    }
    if (spec.archive_name.has_value()) {
      exclude = *spec.archive_name;
      BinaryCode code;
      {
        obs::ScopedSpan resolve_span(trace.get(), "resolve_subject");
        AGORAEO_ASSIGN_OR_RETURN(code, ResolveSubjectCode(exclude));
      }
      spec.code = std::move(code);
      spec.archive_name.reset();
      // The subject occupies one rank on its owner node; ask for one
      // more so dropping it cannot starve the global top-k.
      if (spec.k.has_value()) *spec.k += 1;
    }
    if (spec.k.has_value()) {
      cap = *spec.k - (exclude.empty() ? 0 : 1);
    } else if (spec.limit > 0) {
      cap = spec.limit;
    }
    spec.limit = 0;
  } else if (has_panel && request.panel->limit > 0) {
    cap = request.panel->limit;
  }
  if (has_panel) request.panel->limit = 0;
  request.page = 0;
  request.page_size = 0;

  // Scatter: every node holds some of the slots, so every node is
  // asked.  One thread per peer — the win the cluster exists for.
  const auto fan_all =
      [&](const std::string& body) -> StatusOr<std::vector<WireQueryResponse>> {
    obs::ScopedSpan fan_span(trace.get(), "fanout");
    // Propagate the trace id so each node's engine stamps its stage
    // spans under OUR trace and echoes them back in x-trace-spans.
    std::map<std::string, std::string> headers;
    if (trace != nullptr) headers["x-trace-id"] = trace->id();
    std::vector<std::unique_ptr<StatusOr<HttpResponse>>> raw(nodes.size());
    std::vector<netsvc::HttpRequestDetail> details(nodes.size());
    {
      std::vector<std::thread> threads;
      threads.reserve(nodes.size());
      for (size_t i = 0; i < nodes.size(); ++i) {
        threads.emplace_back([this, &nodes, &raw, &details, &body, &headers,
                              i] {
          raw[i] = std::make_unique<StatusOr<HttpResponse>>(
              PostNode(nodes[i], "/api/v2/query", body, &details[i],
                       headers));
        });
      }
      for (std::thread& t : threads) t.join();
    }
    std::vector<WireQueryResponse> partials;
    partials.reserve(nodes.size());
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (!raw[i]->ok()) {
        if (fanout_node_failures_ != nullptr) {
          fanout_node_failures_->Increment();
        }
        // The typed error kind and attempt count tell the operator
        // WHICH node failed and HOW (refused vs timed out vs garbled)
        // without re-running the query.
        return Status::Internal(
            "fan-out to node " + nodes[i].id + " failed (" +
            netsvc::HttpErrorKindName(details[i].error_kind) + " after " +
            std::to_string(details[i].attempts) + " attempt(s)): " +
            std::string(raw[i]->status().message()));
      }
      const HttpResponse& response = **raw[i];
      ObserveEpoch(nodes[i], response);
      if (response.status_code != 200) {
        return Status::Internal("node " + nodes[i].id + " answered " +
                                std::to_string(response.status_code) + ": " +
                                response.body);
      }
      if (trace != nullptr) {
        const auto spans_it = response.headers.find("x-trace-spans");
        if (spans_it != response.headers.end()) {
          auto child_spans = ParseSpansJson(spans_it->second);
          if (child_spans.ok()) {
            trace->AddChild(nodes[i].id, *std::move(child_spans));
          }
        }
      }
      AGORAEO_ASSIGN_OR_RETURN(const Document doc,
                               json::ParseObject(response.body));
      AGORAEO_ASSIGN_OR_RETURN(WireQueryResponse partial,
                               ParseQueryResponse(doc));
      partials.push_back(std::move(partial));
    }
    return partials;
  };

  // Gather: dedup by name (the migration forwarding window can answer
  // one item from two nodes), then restore the global order.
  struct Row {
    WireResult result;
    uint64_t seq;
  };
  std::vector<Row> rows;
  const auto merge = [&](std::vector<WireQueryResponse> partials) {
    obs::ScopedSpan merge_span(trace.get(), "merge");
    rows.clear();
    std::unordered_set<std::string> seen;
    for (WireQueryResponse& partial : partials) {
      for (WireResult& result : partial.results) {
        if (!exclude.empty() && result.name == exclude) continue;
        if (!seen.insert(result.name).second) continue;
        const uint64_t seq = SeqOf(result.name);
        rows.push_back({std::move(result), seq});
      }
    }
    std::sort(rows.begin(), rows.end(), [&](const Row& a, const Row& b) {
      if (has_sim && a.result.distance != b.result.distance) {
        return a.result.distance < b.result.distance;
      }
      if (a.seq != b.seq) return a.seq < b.seq;
      return a.result.name < b.result.name;
    });
  };

  const std::optional<size_t> fanned_k =
      has_sim ? request.similarity->k : std::nullopt;
  AGORAEO_ASSIGN_OR_RETURN(const Document fan_doc,
                           QueryRequestToJson(request));
  AGORAEO_ASSIGN_OR_RETURN(std::vector<WireQueryResponse> partials,
                           fan_all(json::Serialize(fan_doc)));

  // k-NN tie repair.  A node truncates its answer at k by (distance,
  // LOCAL id), and after a slot migration local-id order no longer
  // follows global ingest order — a tie at the global k-th distance can
  // hide an item that belongs in the global top-k.  Detect the only
  // case where that is possible (some node returned a full k rows whose
  // worst distance reaches the merged k-th distance) and re-fan as an
  // inclusive RADIUS search at that boundary: every candidate that
  // could make the top-k comes back, and the merge truncates exactly.
  if (fanned_k.has_value() && cap.has_value()) {
    merge(partials);
    bool may_hide_ties = false;
    if (rows.size() >= *cap && *cap > 0) {
      const uint32_t boundary = rows[*cap - 1].result.distance;
      for (const WireQueryResponse& partial : partials) {
        if (partial.results.size() >= *fanned_k && !partial.results.empty() &&
            partial.results.back().distance <= boundary) {
          may_hide_ties = true;
        }
      }
      if (may_hide_ties) {
        earthqube::SimilaritySpec& spec = *request.similarity;
        spec.k.reset();
        spec.radius = boundary;
        AGORAEO_ASSIGN_OR_RETURN(const Document widened,
                                 QueryRequestToJson(request));
        AGORAEO_ASSIGN_OR_RETURN(partials,
                                 fan_all(json::Serialize(widened)));
      }
    }
    if (may_hide_ties) merge(partials);
  } else {
    merge(partials);
  }
  if (cap.has_value() && rows.size() > *cap) rows.resize(*cap);

  auto owned = std::make_shared<MergedRows>();
  owned->reserve(rows.size());
  for (Row& row : rows) owned->push_back(std::move(row.result));
  merged = std::move(owned);
  if (result_cache_ != nullptr && stream_fp.has_value()) {
    size_t bytes = 64;
    for (const WireResult& r : *merged) {
      bytes += 96 + r.name.size() + r.country.size() + r.date.size();
    }
    result_cache_->Put(*stream_fp, merged, bytes, epoch_snapshot);
  }
  }  // cache miss: fan-out + merge

  // Window or slice.  Similarity responses are windowed exactly like
  // the monolith's ranked direct access (the response holds ONLY the
  // requested page; the serialiser reports the lower-bound total and a
  // v3 cursor), so a cluster answer stays byte-identical to a
  // monolithic one.  Panel-only responses keep the eager shape and let
  // the serialiser slice.
  const MergedRows& all_rows = *merged;
  const bool windowed = has_sim && page_size > 0;
  size_t begin = 0;
  size_t end = all_rows.size();
  bool has_more = false;
  if (windowed) {
    begin = std::min(all_rows.size(), page * page_size);
    end = std::min(all_rows.size(), page * page_size + page_size);
    has_more = all_rows.size() >= page * page_size + page_size + 1;
  }

  QueryResponse out;
  out.projection = request.projection;
  out.page = page;
  out.page_size = page_size;
  out.windowed = windowed;
  out.served_from_cache = from_cache;
  if (has_sim) {
    out.hits.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      out.hits.push_back({all_rows[i].name, all_rows[i].distance});
    }
  }
  if (request.projection == earthqube::Projection::kFullPanel) {
    std::vector<earthqube::ResultEntry> entries;
    std::vector<bigearthnet::LabelSet> label_sets;
    entries.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      const WireResult& row = all_rows[i];
      if (!row.has_metadata) {
        return Status::Internal("node row for " + row.name +
                                " is missing the metadata join");
      }
      earthqube::ResultEntry entry;
      entry.name = row.name;
      entry.labels = row.labels;
      entry.country = row.country;
      entry.acquisition_date = row.date;
      entry.map_location = row.location;
      label_sets.push_back(entry.labels);
      entries.push_back(std::move(entry));
    }
    out.panel = earthqube::ResultPanel(std::move(entries));
    out.statistics = earthqube::LabelStatistics::FromLabelSets(label_sets);
  }
  out.plan.strategy =
      has_sim ? (has_panel ? earthqube::QueryPlan::Strategy::kPreFilter
                           : earthqube::QueryPlan::Strategy::kCbirOnly)
              : earthqube::QueryPlan::Strategy::kPanelOnly;
  out.plan.description =
      "CLUSTER(fan-out over " + std::to_string(nodes.size()) + " nodes)";
  if (windowed) {
    if (has_more) {
      out.cursor = earthqube::EncodeCursor({page + 1, page_size, handle_id});
    }
  } else if (page_size > 0 && (page + 1) * page_size < out.total()) {
    out.cursor = earthqube::EncodeCursor({page + 1, page_size});
  }
  if (start_ns != 0) {
    obs::SlowQueryLog& slow_log = obs_.slow_log();
    const uint64_t total_ns = obs::NowNanos() - start_ns;
    if (total_ns >= slow_log.threshold_ns() && slow_log.capacity() > 0) {
      slow_log.Observe(total_ns, trace != nullptr ? trace->id() : "",
                       "cluster fan-out over " +
                           std::to_string(nodes.size()) + " nodes",
                       trace != nullptr ? trace->ToJson() : "");
    }
  }
  return out;
}

StatusOr<std::string> Coordinator::QuerySingle(const Document& body) {
  AGORAEO_ASSIGN_OR_RETURN(QueryRequest request,
                           EarthQubeService::QueryRequestFromJson(body));
  AGORAEO_ASSIGN_OR_RETURN(QueryResponse response,
                           ExecuteFanout(std::move(request)));
  return EarthQubeService::QueryResponseToJson(response);
}

StatusOr<std::string> Coordinator::Query(const std::string& body_json) {
  AGORAEO_ASSIGN_OR_RETURN(
      const Document body,
      json::ParseObject(body_json.empty() ? "{}" : body_json));
  const Value* batch = body.Get("requests");
  if (batch == nullptr) return QuerySingle(body);
  if (!batch->is_array() || batch->as_array().empty()) {
    return Status::InvalidArgument("requests must be a non-empty array");
  }
  if (batch->as_array().size() > EarthQubeService::kMaxBatchQueries) {
    return Status::InvalidArgument(
        "batch too large: at most " +
        std::to_string(EarthQubeService::kMaxBatchQueries) +
        " requests per submission");
  }
  std::string out = "{\"batch_size\":" +
                    std::to_string(batch->as_array().size()) +
                    ",\"responses\":[";
  bool first = true;
  for (const Value& entry : batch->as_array()) {
    if (!entry.is_document()) {
      return Status::InvalidArgument("requests entries must be objects");
    }
    AGORAEO_ASSIGN_OR_RETURN(const std::string one,
                             QuerySingle(entry.as_document()));
    if (!first) out += ",";
    first = false;
    out += one;
  }
  out += "]}";
  return out;
}

cache::CacheStats Coordinator::result_cache_stats() const {
  return result_cache_ != nullptr ? result_cache_->Stats()
                                  : cache::CacheStats{};
}

void Coordinator::RegisterRoutes(netsvc::HttpServer* server) {
  server->AttachObservability(&obs_);
  server->Route("GET", "/health", [](const netsvc::HttpRequest&) {
    return HttpResponse::Json(200, "{\"status\":\"ok\"}");
  });
  server->Route("GET", "/metrics", [this](const netsvc::HttpRequest&) {
    return HttpResponse::Text(200, obs_.registry().PrometheusText());
  });
  server->Route("GET", "/api/v2/metrics", [this](const netsvc::HttpRequest&) {
    return HttpResponse::Json(200, obs_.registry().JsonText());
  });
  server->Route("GET", "/api/v2/debug/slow_queries",
                [this](const netsvc::HttpRequest&) {
                  return HttpResponse::Json(200, obs_.slow_log().ToJson());
                });
  server->Route("POST", "/api/v2/query",
                [this](const netsvc::HttpRequest& request) {
                  auto response = Query(request.body);
                  if (!response.ok()) return FromStatus(response.status());
                  return HttpResponse::Json(200, *std::move(response));
                });
  server->Route("GET", "/api/v2/cluster/slots",
                [this](const netsvc::HttpRequest&) {
                  return HttpResponse::Json(200,
                                            json::Serialize(table().ToJson()));
                });
  // The merged-ranking result cache: a cursor resumed here without a
  // fan-out shows up as a hit; epoch bumps (routed ingest, topology
  // churn) show up as stale_drops.
  server->Route(
      "GET", "/api/v2/cache/stats", [this](const netsvc::HttpRequest&) {
        const cache::CacheStats s = result_cache_stats();
        Document rows;
        rows.Set("enabled", Value(result_cache_ != nullptr));
        rows.Set("hits", Value(static_cast<int64_t>(s.hits)));
        rows.Set("misses", Value(static_cast<int64_t>(s.misses)));
        rows.Set("puts", Value(static_cast<int64_t>(s.puts)));
        rows.Set("rejected_puts", Value(static_cast<int64_t>(s.rejected_puts)));
        rows.Set("evictions", Value(static_cast<int64_t>(s.evictions)));
        rows.Set("stale_drops", Value(static_cast<int64_t>(s.stale_drops)));
        rows.Set("expired_drops",
                 Value(static_cast<int64_t>(s.expired_drops)));
        rows.Set("entries", Value(static_cast<int64_t>(s.entries)));
        rows.Set("bytes", Value(static_cast<int64_t>(s.bytes)));
        rows.Set("capacity_bytes",
                 Value(static_cast<int64_t>(s.capacity_bytes)));
        rows.Set("hit_rate", Value(s.hit_rate()));
        Document out;
        out.Set("merged_rankings", Value(std::move(rows)));
        out.Set("result_epoch",
                Value(static_cast<int64_t>(result_epoch_.Current())));
        return HttpResponse::Json(200, json::Serialize(out));
      });
}

}  // namespace agoraeo::cluster
