#include "cluster/wire.h"

#include <utility>

#include "bigearthnet/clc_labels.h"
#include "common/time_util.h"
#include "earthqube/schema.h"
#include "index/index_snapshot.h"
#include "json/json.h"

namespace agoraeo::cluster {

using docstore::Document;
using docstore::Value;

namespace {

Value GeoToJson(const earthqube::GeoQuery& geo) {
  Document out;
  switch (geo.shape) {
    case earthqube::GeoQuery::Shape::kRectangle: {
      Document rect;
      rect.Set("min_lat", Value(geo.rectangle.min.lat));
      rect.Set("min_lon", Value(geo.rectangle.min.lon));
      rect.Set("max_lat", Value(geo.rectangle.max.lat));
      rect.Set("max_lon", Value(geo.rectangle.max.lon));
      out.Set("rect", Value(std::move(rect)));
      break;
    }
    case earthqube::GeoQuery::Shape::kCircle: {
      Document circle;
      circle.Set("lat", Value(geo.circle.center.lat));
      circle.Set("lon", Value(geo.circle.center.lon));
      circle.Set("radius_m", Value(geo.circle.radius_meters));
      out.Set("circle", Value(std::move(circle)));
      break;
    }
    case earthqube::GeoQuery::Shape::kPolygon: {
      std::vector<Value> vertices;
      vertices.reserve(geo.polygon.vertices.size());
      for (const geo::GeoPoint& p : geo.polygon.vertices) {
        std::vector<Value> pair;
        pair.emplace_back(p.lat);
        pair.emplace_back(p.lon);
        vertices.emplace_back(std::move(pair));
      }
      out.Set("polygon", Value(std::move(vertices)));
      break;
    }
    case earthqube::GeoQuery::Shape::kNone:
      break;
  }
  return Value(std::move(out));
}

Value PanelToJson(const earthqube::EarthQubeQuery& panel) {
  Document out;
  if (panel.geo.shape != earthqube::GeoQuery::Shape::kNone) {
    out.Set("geo", GeoToJson(panel.geo));
  }
  if (panel.date_range.has_value()) {
    Document range;
    range.Set("begin", Value(panel.date_range->begin.ToString()));
    range.Set("end", Value(panel.date_range->end.ToString()));
    out.Set("date_range", Value(std::move(range)));
  }
  if (!panel.satellites.empty()) {
    std::vector<Value> sats;
    sats.reserve(panel.satellites.size());
    for (const std::string& s : panel.satellites) sats.emplace_back(s);
    out.Set("satellites", Value(std::move(sats)));
  }
  if (!panel.seasons.empty()) {
    std::vector<Value> seasons;
    seasons.reserve(panel.seasons.size());
    for (const Season season : panel.seasons) {
      seasons.emplace_back(std::string(SeasonToString(season)));
    }
    out.Set("seasons", Value(std::move(seasons)));
  }
  if (panel.label_filter.enabled) {
    Document labels;
    switch (panel.label_filter.op) {
      case earthqube::LabelOperator::kSome:
        labels.Set("operator", Value(std::string("some")));
        break;
      case earthqube::LabelOperator::kExactly:
        labels.Set("operator", Value(std::string("exactly")));
        break;
      case earthqube::LabelOperator::kAtLeastAndMore:
        labels.Set("operator", Value(std::string("at_least_and_more")));
        break;
    }
    std::vector<Value> names;
    for (const bigearthnet::LabelId id : panel.label_filter.labels.ids()) {
      names.emplace_back(bigearthnet::LabelById(id).name);
    }
    labels.Set("names", Value(std::move(names)));
    out.Set("labels", Value(std::move(labels)));
  }
  if (panel.limit > 0) {
    out.Set("limit", Value(static_cast<int64_t>(panel.limit)));
  }
  return Value(std::move(out));
}

}  // namespace

StatusOr<Document> QueryRequestToJson(const earthqube::QueryRequest& request) {
  Document body;
  if (request.panel.has_value()) {
    body.Set("panel", PanelToJson(*request.panel));
  }
  if (request.similarity.has_value()) {
    const earthqube::SimilaritySpec& spec = *request.similarity;
    if (spec.patch.has_value()) {
      return Status::InvalidArgument(
          "patch similarity subjects have no wire form; hash to a code "
          "before fanning out");
    }
    Document sim;
    if (spec.archive_name.has_value()) {
      sim.Set("name", Value(*spec.archive_name));
    }
    if (spec.code.has_value()) {
      sim.Set("code", Value(spec.code->ToBitString()));
    }
    if (spec.radius.has_value()) {
      sim.Set("radius", Value(static_cast<int64_t>(*spec.radius)));
    }
    if (spec.k.has_value()) {
      sim.Set("k", Value(static_cast<int64_t>(*spec.k)));
    }
    if (spec.limit > 0) {
      sim.Set("limit", Value(static_cast<int64_t>(spec.limit)));
    }
    body.Set("similarity", Value(std::move(sim)));
  }
  body.Set("projection",
           Value(std::string(request.projection ==
                                     earthqube::Projection::kHitsOnly
                                 ? "hits"
                                 : "full")));
  switch (request.planner) {
    case earthqube::PlannerMode::kAuto:
      body.Set("planner", Value(std::string("auto")));
      break;
    case earthqube::PlannerMode::kForcePreFilter:
      body.Set("planner", Value(std::string("pre_filter")));
      break;
    case earthqube::PlannerMode::kForcePostFilter:
      body.Set("planner", Value(std::string("post_filter")));
      break;
  }
  body.Set("page", Value(static_cast<int64_t>(request.page)));
  body.Set("page_size", Value(static_cast<int64_t>(request.page_size)));
  return body;
}

StatusOr<WireQueryResponse> ParseQueryResponse(const Document& doc) {
  const Value* total = doc.Get("total");
  const Value* results = doc.Get("results");
  if (total == nullptr || !total->is_int64() || total->as_int64() < 0) {
    return Status::InvalidArgument("query response: bad total");
  }
  if (results == nullptr || !results->is_array()) {
    return Status::InvalidArgument("query response: results must be an array");
  }
  WireQueryResponse out;
  out.total = static_cast<size_t>(total->as_int64());
  out.results.reserve(results->as_array().size());
  for (const Value& row : results->as_array()) {
    if (!row.is_document()) {
      return Status::InvalidArgument("query response: result must be object");
    }
    const Document& r = row.as_document();
    WireResult entry;
    const Value* name = r.Get("name");
    if (name == nullptr || !name->is_string()) {
      return Status::InvalidArgument("query response: result without name");
    }
    entry.name = name->as_string();
    if (const Value* distance = r.Get("distance"); distance != nullptr) {
      if (!distance->is_int64() || distance->as_int64() < 0) {
        return Status::InvalidArgument("query response: bad distance");
      }
      entry.has_distance = true;
      entry.distance = static_cast<uint32_t>(distance->as_int64());
    }
    if (const Value* labels = r.Get("labels"); labels != nullptr) {
      if (!labels->is_array()) {
        return Status::InvalidArgument("query response: labels must be array");
      }
      entry.has_metadata = true;
      for (const Value& label : labels->as_array()) {
        if (!label.is_string()) {
          return Status::InvalidArgument(
              "query response: label names must be strings");
        }
        AGORAEO_ASSIGN_OR_RETURN(
            const bigearthnet::LabelId id,
            bigearthnet::LabelIdFromName(label.as_string()));
        entry.labels.Add(id);
      }
      const Value* country = r.Get("country");
      const Value* date = r.Get("date");
      const Value* lat = r.Get("lat");
      const Value* lon = r.Get("lon");
      if (country == nullptr || !country->is_string() || date == nullptr ||
          !date->is_string() || lat == nullptr || !lat->is_number() ||
          lon == nullptr || !lon->is_number()) {
        return Status::InvalidArgument(
            "query response: malformed metadata row");
      }
      entry.country = country->as_string();
      entry.date = date->as_string();
      entry.location = {lat->as_number(), lon->as_number()};
    }
    out.results.push_back(std::move(entry));
  }
  return out;
}

Document MovedBody(size_t slot, const NodeAddress& owner, uint64_t epoch) {
  Document moved;
  moved.Set("slot", Value(static_cast<int64_t>(slot)));
  moved.Set("id", Value(owner.id));
  moved.Set("host", Value(owner.host));
  moved.Set("port", Value(static_cast<int64_t>(owner.port)));
  Document body;
  body.Set("moved", Value(std::move(moved)));
  body.Set("epoch", Value(static_cast<int64_t>(epoch)));
  return body;
}

StatusOr<MovedInfo> ParseMovedBody(const Document& doc) {
  const Value* moved = doc.Get("moved");
  const Value* epoch = doc.Get("epoch");
  if (moved == nullptr || !moved->is_document() || epoch == nullptr ||
      !epoch->is_int64() || epoch->as_int64() < 0) {
    return Status::InvalidArgument("not a moved envelope");
  }
  const Document& m = moved->as_document();
  const Value* slot = m.Get("slot");
  const Value* id = m.Get("id");
  const Value* host = m.Get("host");
  const Value* port = m.Get("port");
  if (slot == nullptr || !slot->is_int64() || slot->as_int64() < 0 ||
      id == nullptr || !id->is_string() || host == nullptr ||
      !host->is_string() || port == nullptr || !port->is_int64()) {
    return Status::InvalidArgument("malformed moved envelope");
  }
  MovedInfo info;
  info.slot = static_cast<size_t>(slot->as_int64());
  info.owner = {id->as_string(), host->as_string(),
                static_cast<int>(port->as_int64())};
  info.epoch = static_cast<uint64_t>(epoch->as_int64());
  return info;
}

StatusOr<Document> SlotPayloadToJson(const SlotPayload& payload) {
  if (payload.codes.size() != payload.names.size() ||
      payload.metadata.size() != payload.names.size()) {
    return Status::InvalidArgument(
        "slot payload: names/codes/metadata lengths differ");
  }
  index::IndexSnapshot snap;
  snap.shard_index = static_cast<uint32_t>(payload.slot);
  snap.num_shards = 1;
  snap.watermark = payload.names.size();
  snap.names = payload.names;
  for (size_t i = 0; i < payload.codes.size(); ++i) {
    const BinaryCode& code = payload.codes[i];
    if (snap.code_bits == 0) {
      snap.code_bits = static_cast<uint32_t>(code.size());
      snap.words_per_code = static_cast<uint32_t>(code.words().size());
    } else if (code.size() != snap.code_bits) {
      return Status::InvalidArgument("slot payload: mixed code lengths");
    }
    snap.ids.push_back(i);
    snap.code_words.insert(snap.code_words.end(), code.words().begin(),
                           code.words().end());
  }
  AGORAEO_ASSIGN_OR_RETURN(const std::vector<uint8_t> frame,
                           index::SerializeIndexSnapshot(snap));
  Document body;
  body.Set("slot", Value(static_cast<int64_t>(payload.slot)));
  body.Set("epoch", Value(static_cast<int64_t>(payload.epoch)));
  body.Set("codes_snapshot", Value(json::Base64Encode(frame)));
  std::vector<Value> metadata;
  metadata.reserve(payload.metadata.size());
  for (const bigearthnet::PatchMetadata& meta : payload.metadata) {
    metadata.emplace_back(earthqube::MetadataToDocument(
        meta, earthqube::LabelEncoding::kFullStrings));
  }
  body.Set("metadata", Value(std::move(metadata)));
  return body;
}

StatusOr<SlotPayload> ParseSlotPayload(const Document& doc) {
  const Value* slot = doc.Get("slot");
  const Value* epoch = doc.Get("epoch");
  const Value* blob = doc.Get("codes_snapshot");
  const Value* metadata = doc.Get("metadata");
  if (slot == nullptr || !slot->is_int64() || slot->as_int64() < 0 ||
      epoch == nullptr || !epoch->is_int64() || epoch->as_int64() < 0 ||
      blob == nullptr || !blob->is_string() || metadata == nullptr ||
      !metadata->is_array()) {
    return Status::InvalidArgument("malformed slot payload");
  }
  SlotPayload out;
  out.slot = static_cast<size_t>(slot->as_int64());
  out.epoch = static_cast<uint64_t>(epoch->as_int64());
  AGORAEO_ASSIGN_OR_RETURN(const std::vector<uint8_t> frame,
                           json::Base64Decode(blob->as_string()));
  AGORAEO_ASSIGN_OR_RETURN(
      const index::IndexSnapshot snap,
      index::ParseIndexSnapshot(frame.data(), frame.size()));
  out.names = snap.names;
  out.codes.reserve(snap.ids.size());
  for (size_t i = 0; i < snap.ids.size(); ++i) {
    out.codes.push_back(BinaryCode::FromWords(
        snap.code_bits,
        {snap.code_words.begin() +
             static_cast<ptrdiff_t>(i * snap.words_per_code),
         snap.code_words.begin() +
             static_cast<ptrdiff_t>((i + 1) * snap.words_per_code)}));
  }
  for (const Value& m : metadata->as_array()) {
    if (!m.is_document()) {
      return Status::InvalidArgument("slot payload: metadata must be objects");
    }
    AGORAEO_ASSIGN_OR_RETURN(bigearthnet::PatchMetadata meta,
                             earthqube::DocumentToMetadata(m.as_document()));
    out.metadata.push_back(std::move(meta));
  }
  if (out.codes.size() != out.names.size() ||
      out.metadata.size() != out.names.size()) {
    return Status::InvalidArgument(
        "slot payload: names/codes/metadata lengths differ");
  }
  return out;
}

}  // namespace agoraeo::cluster
