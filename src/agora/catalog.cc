#include "agora/catalog.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"

namespace agoraeo::agora {

using docstore::Filter;
using docstore::Value;

AssetCatalog::AssetCatalog() : collection_("agora_assets") {
  // Unique composite key (name@version); multikey tag index for
  // discovery; kind hash index.
  (void)collection_.CreateHashIndex("name_version", /*unique=*/true);
  (void)collection_.CreateMultikeyIndex("tags");
  (void)collection_.CreateHashIndex("name");
}

StatusOr<Asset> AssetCatalog::Offer(AssetKind kind, const std::string& name,
                                    const std::string& owner,
                                    const std::string& description,
                                    std::vector<std::string> tags,
                                    docstore::Document metadata,
                                    CivilDate registered_on) {
  if (name.empty()) {
    return Status::InvalidArgument("asset name must not be empty");
  }
  const std::vector<Asset> existing = Versions(name);
  Asset asset;
  asset.id = "ast_" + std::to_string(next_id_++);
  asset.kind = kind;
  asset.name = name;
  asset.version = existing.empty() ? 1 : existing.back().version + 1;
  asset.owner = owner;
  asset.description = description;
  asset.tags = std::move(tags);
  asset.registered_on = registered_on;
  asset.metadata = std::move(metadata);
  auto inserted = collection_.Insert(AssetToDocument(asset));
  if (!inserted.ok()) return inserted.status();
  return asset;
}

std::vector<Asset> AssetCatalog::Versions(const std::string& name) const {
  std::vector<Asset> out;
  for (const auto* doc :
       collection_.Find(Filter::Eq("name", Value(name)))) {
    auto asset = DocumentToAsset(*doc);
    if (asset.ok()) out.push_back(std::move(asset).value());
  }
  std::sort(out.begin(), out.end(),
            [](const Asset& a, const Asset& b) { return a.version < b.version; });
  return out;
}

StatusOr<Asset> AssetCatalog::Lookup(const std::string& name) const {
  const std::vector<Asset> versions = Versions(name);
  if (versions.empty()) {
    return Status::NotFound("no asset named " + name);
  }
  return versions.back();
}

StatusOr<Asset> AssetCatalog::Lookup(const std::string& name,
                                     int version) const {
  auto id = collection_.FindOneId(Filter::Eq(
      "name_version", Value(name + "@" + std::to_string(version))));
  if (!id.ok()) {
    return Status::NotFound(StrFormat("no asset %s@%d", name.c_str(), version));
  }
  return DocumentToAsset(*collection_.Get(*id));
}

std::vector<Asset> AssetCatalog::Discover(const DiscoveryQuery& query) const {
  std::vector<Filter> conjuncts;
  if (!query.kinds.empty()) {
    std::vector<Value> kinds;
    for (AssetKind k : query.kinds) {
      kinds.emplace_back(std::string(AssetKindToString(k)));
    }
    conjuncts.push_back(Filter::In("kind", std::move(kinds)));
  }
  if (!query.any_tags.empty()) {
    std::vector<Value> tags;
    for (const auto& t : query.any_tags) tags.emplace_back(t);
    conjuncts.push_back(Filter::In("tags", std::move(tags)));
  }
  if (!query.all_tags.empty()) {
    std::vector<Value> tags;
    for (const auto& t : query.all_tags) tags.emplace_back(t);
    conjuncts.push_back(Filter::All("tags", std::move(tags)));
  }
  if (!query.owner.empty()) {
    conjuncts.push_back(Filter::Eq("owner", Value(query.owner)));
  }
  const Filter filter = conjuncts.empty()
                            ? Filter::True()
                            : (conjuncts.size() == 1
                                   ? std::move(conjuncts[0])
                                   : Filter::And(std::move(conjuncts)));

  std::vector<Asset> matches;
  const std::string needle = StrToLower(query.text);
  for (const auto* doc : collection_.Find(filter)) {
    auto asset = DocumentToAsset(*doc);
    if (!asset.ok()) continue;
    if (!needle.empty()) {
      const std::string haystack =
          StrToLower(asset->name + " " + asset->description);
      if (!StrContains(haystack, needle)) continue;
    }
    matches.push_back(std::move(asset).value());
  }
  std::sort(matches.begin(), matches.end(), [](const Asset& a, const Asset& b) {
    if (a.name != b.name) return a.name < b.name;
    return a.version < b.version;
  });
  if (query.latest_only) {
    // Keep only the last version per name (matches are name-then-version
    // sorted, so the last of each run wins).
    std::vector<Asset> latest;
    for (auto& asset : matches) {
      if (!latest.empty() && latest.back().name == asset.name) {
        latest.back() = std::move(asset);
      } else {
        latest.push_back(std::move(asset));
      }
    }
    return latest;
  }
  return matches;
}

}  // namespace agoraeo::agora
