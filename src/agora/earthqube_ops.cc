#include "agora/earthqube_ops.h"

#include "common/string_util.h"

namespace agoraeo::agora {

using docstore::Document;
using docstore::Value;
using earthqube::EarthQube;
using earthqube::EarthQubeQuery;
using earthqube::SearchResponse;

namespace {

/// Builds an EarthQubeQuery from an operator parameter document.
StatusOr<EarthQubeQuery> QueryFromParams(const Document& params) {
  EarthQubeQuery query;
  if (const Value* min_lat = params.Get("min_lat"); min_lat != nullptr) {
    const Value* min_lon = params.Get("min_lon");
    const Value* max_lat = params.Get("max_lat");
    const Value* max_lon = params.Get("max_lon");
    if (min_lon == nullptr || max_lat == nullptr || max_lon == nullptr) {
      return Status::InvalidArgument(
          "rectangle params need min_lat/min_lon/max_lat/max_lon");
    }
    query.geo = earthqube::GeoQuery::Rect(
        {{min_lat->as_number(), min_lon->as_number()},
         {max_lat->as_number(), max_lon->as_number()}});
  }
  if (const Value* labels = params.Get("labels");
      labels != nullptr && labels->is_array()) {
    bigearthnet::LabelSet set;
    for (const Value& name : labels->as_array()) {
      AGORAEO_ASSIGN_OR_RETURN(bigearthnet::LabelId id,
                               bigearthnet::LabelIdFromName(name.as_string()));
      set.Add(id);
    }
    std::string op = "some";
    if (const Value* o = params.Get("label_operator"); o != nullptr) {
      op = StrToLower(o->as_string());
    }
    if (op == "some") {
      query.label_filter = earthqube::LabelFilter::Some(set);
    } else if (op == "exactly") {
      query.label_filter = earthqube::LabelFilter::Exactly(set);
    } else if (op == "at_least") {
      query.label_filter = earthqube::LabelFilter::AtLeastAndMore(set);
    } else {
      return Status::InvalidArgument("unknown label_operator: " + op);
    }
  }
  if (const Value* country = params.Get("country"); country != nullptr) {
    AGORAEO_ASSIGN_OR_RETURN(const bigearthnet::Country* c,
                             bigearthnet::CountryByName(country->as_string()));
    query.geo = earthqube::GeoQuery::Rect(c->extent);
  }
  if (const Value* limit = params.Get("limit"); limit != nullptr) {
    query.limit = static_cast<size_t>(limit->as_int64());
  }
  return query;
}

}  // namespace

Status RegisterEarthQubeOperators(EarthQube* system,
                                  OperatorRegistry* registry) {
  AGORAEO_RETURN_IF_ERROR(registry->Register(
      "earthqube.search",
      [system](const std::any&, const Document& params) -> StatusOr<std::any> {
        AGORAEO_ASSIGN_OR_RETURN(EarthQubeQuery query,
                                 QueryFromParams(params));
        AGORAEO_ASSIGN_OR_RETURN(SearchResponse response,
                                 system->Search(query));
        return std::any(std::move(response));
      },
      "() -> SearchResponse"));

  AGORAEO_RETURN_IF_ERROR(registry->Register(
      "earthqube.cbir",
      [system](const std::any& input,
               const Document& params) -> StatusOr<std::any> {
        const auto* response = std::any_cast<SearchResponse>(&input);
        if (response == nullptr) {
          return Status::InvalidArgument(
              "earthqube.cbir expects a SearchResponse input");
        }
        size_t rank = 0;
        if (const Value* r = params.Get("rank"); r != nullptr) {
          rank = static_cast<size_t>(r->as_int64());
        }
        if (rank >= response->panel.total()) {
          return Status::OutOfRange("rank beyond result panel size");
        }
        size_t k = 10;
        if (const Value* kv = params.Get("k"); kv != nullptr) {
          k = static_cast<size_t>(kv->as_int64());
        }
        AGORAEO_ASSIGN_OR_RETURN(
            SearchResponse similar,
            system->NearestToArchiveImage(
                response->panel.entries()[rank].name, k));
        return std::any(std::move(similar));
      },
      "SearchResponse -> SearchResponse"));

  AGORAEO_RETURN_IF_ERROR(registry->Register(
      "earthqube.names",
      [](const std::any& input, const Document&) -> StatusOr<std::any> {
        const auto* response = std::any_cast<SearchResponse>(&input);
        if (response == nullptr) {
          return Status::InvalidArgument(
              "earthqube.names expects a SearchResponse input");
        }
        std::vector<std::string> names;
        names.reserve(response->panel.total());
        for (const auto& entry : response->panel.entries()) {
          names.push_back(entry.name);
        }
        return std::any(std::move(names));
      },
      "SearchResponse -> vector<string>"));

  AGORAEO_RETURN_IF_ERROR(registry->Register(
      "earthqube.statistics",
      [](const std::any& input, const Document&) -> StatusOr<std::any> {
        const auto* response = std::any_cast<SearchResponse>(&input);
        if (response == nullptr) {
          return Status::InvalidArgument(
              "earthqube.statistics expects a SearchResponse input");
        }
        return std::any(response->statistics.RenderAscii());
      },
      "SearchResponse -> string"));

  return Status::OK();
}

Status OfferStandardAssets(AssetCatalog* catalog, size_t archive_size,
                           size_t hash_bits) {
  Document dataset_meta;
  dataset_meta.Set("patches", Value(static_cast<int64_t>(archive_size)));
  dataset_meta.Set("s2_bands", Value(12));
  dataset_meta.Set("s1_channels", Value(2));
  dataset_meta.Set("labels", Value(43));
  dataset_meta.Set("countries", Value(10));
  auto dataset = catalog->Offer(
      AssetKind::kDataset, "bigearthnet", "tu-berlin",
      "Large-scale multi-label Sentinel-1/2 benchmark archive",
      {"remote-sensing", "sentinel-2", "sentinel-1", "multi-label"},
      std::move(dataset_meta));
  if (!dataset.ok()) return dataset.status();

  auto algorithm = catalog->Offer(
      AssetKind::kAlgorithm, "milan", "tu-berlin",
      "Metric-learning based deep hashing network for CBIR",
      {"deep-hashing", "metric-learning", "cbir"});
  if (!algorithm.ok()) return algorithm.status();

  Document model_meta;
  model_meta.Set("hash_bits", Value(static_cast<int64_t>(hash_bits)));
  model_meta.Set("losses",
                 docstore::MakeStringArray(
                     {"triplet", "bit_balance", "quantization"}));
  auto model = catalog->Offer(AssetKind::kModel, "milan-bigearthnet",
                              "tu-berlin",
                              "MiLaN checkpoint trained on BigEarthNet",
                              {"deep-hashing", "checkpoint"},
                              std::move(model_meta));
  if (!model.ok()) return model.status();

  auto tool = catalog->Offer(
      AssetKind::kTool, "earthqube", "tu-berlin/dfki",
      "Browser and search engine for satellite imagery within AgoraEO",
      {"search-engine", "browser", "cbir", "remote-sensing"});
  if (!tool.ok()) return tool.status();
  return Status::OK();
}

}  // namespace agoraeo::agora
