#include "agora/asset.h"

#include "common/string_util.h"

namespace agoraeo::agora {

using docstore::Document;
using docstore::Value;

const char* AssetKindToString(AssetKind kind) {
  switch (kind) {
    case AssetKind::kDataset:
      return "dataset";
    case AssetKind::kAlgorithm:
      return "algorithm";
    case AssetKind::kModel:
      return "model";
    case AssetKind::kTool:
      return "tool";
  }
  return "?";
}

StatusOr<AssetKind> AssetKindFromString(const std::string& name) {
  const std::string lower = StrToLower(name);
  if (lower == "dataset") return AssetKind::kDataset;
  if (lower == "algorithm") return AssetKind::kAlgorithm;
  if (lower == "model") return AssetKind::kModel;
  if (lower == "tool") return AssetKind::kTool;
  return Status::InvalidArgument("unknown asset kind: " + name);
}

Document AssetToDocument(const Asset& asset) {
  Document doc;
  doc.Set("id", Value(asset.id));
  doc.Set("kind", Value(std::string(AssetKindToString(asset.kind))));
  doc.Set("name", Value(asset.name));
  doc.Set("version", Value(static_cast<int64_t>(asset.version)));
  doc.Set("owner", Value(asset.owner));
  doc.Set("description", Value(asset.description));
  doc.Set("tags", docstore::MakeStringArray(asset.tags));
  doc.Set("registered_on", Value(asset.registered_on.ToString()));
  doc.Set("metadata", Value(asset.metadata));
  // Composite key for uniqueness: name@version.
  doc.Set("name_version",
          Value(asset.name + "@" + std::to_string(asset.version)));
  return doc;
}

StatusOr<Asset> DocumentToAsset(const Document& doc) {
  Asset asset;
  const Value* id = doc.Get("id");
  const Value* kind = doc.Get("kind");
  const Value* name = doc.Get("name");
  const Value* version = doc.Get("version");
  if (id == nullptr || kind == nullptr || name == nullptr ||
      version == nullptr) {
    return Status::Corruption("asset document missing required fields");
  }
  asset.id = id->as_string();
  AGORAEO_ASSIGN_OR_RETURN(asset.kind, AssetKindFromString(kind->as_string()));
  asset.name = name->as_string();
  asset.version = static_cast<int>(version->as_int64());
  if (const Value* owner = doc.Get("owner"); owner != nullptr) {
    asset.owner = owner->as_string();
  }
  if (const Value* desc = doc.Get("description"); desc != nullptr) {
    asset.description = desc->as_string();
  }
  if (const Value* tags = doc.Get("tags"); tags != nullptr && tags->is_array()) {
    for (const Value& tag : tags->as_array()) {
      asset.tags.push_back(tag.as_string());
    }
  }
  if (const Value* date = doc.Get("registered_on"); date != nullptr) {
    AGORAEO_ASSIGN_OR_RETURN(asset.registered_on,
                             CivilDate::Parse(date->as_string()));
  }
  if (const Value* meta = doc.Get("metadata");
      meta != nullptr && meta->is_document()) {
    asset.metadata = meta->as_document();
  }
  return asset;
}

}  // namespace agoraeo::agora
