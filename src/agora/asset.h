#ifndef AGORAEO_AGORA_ASSET_H_
#define AGORAEO_AGORA_ASSET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time_util.h"
#include "docstore/value.h"

namespace agoraeo::agora {

/// Kinds of assets the AgoraEO ecosystem exchanges (paper §1: "one can
/// offer, discover, combine, and efficiently execute EO-related assets,
/// such as datasets, algorithms, and tools").
enum class AssetKind {
  kDataset = 0,    ///< e.g. the BigEarthNet archive
  kAlgorithm = 1,  ///< e.g. the MiLaN hashing network
  kModel = 2,      ///< e.g. a trained MiLaN checkpoint
  kTool = 3,       ///< e.g. the EarthQube browser
};

const char* AssetKindToString(AssetKind kind);
StatusOr<AssetKind> AssetKindFromString(const std::string& name);

/// A catalogued asset.  Assets are immutable once registered; updates
/// register a new version under the same name.
struct Asset {
  /// Catalog-assigned identifier ("ast_<n>"), unique per catalog.
  std::string id;
  AssetKind kind = AssetKind::kDataset;
  std::string name;         ///< e.g. "bigearthnet", unique per (name, version)
  int version = 1;          ///< monotonically increasing per name
  std::string owner;        ///< offering party, e.g. "tu-berlin"
  std::string description;
  std::vector<std::string> tags;  ///< free-form discovery tags
  CivilDate registered_on;
  /// Kind-specific metadata (e.g. for datasets: patch count, bands; for
  /// models: code length, training config).
  docstore::Document metadata;
};

/// Serialisation to/from the catalog's document store.
docstore::Document AssetToDocument(const Asset& asset);
StatusOr<Asset> DocumentToAsset(const docstore::Document& doc);

}  // namespace agoraeo::agora

#endif  // AGORAEO_AGORA_ASSET_H_
