#ifndef AGORAEO_AGORA_CATALOG_H_
#define AGORAEO_AGORA_CATALOG_H_

#include <string>
#include <vector>

#include "agora/asset.h"
#include "docstore/collection.h"

namespace agoraeo::agora {

/// Discovery query over the catalog; empty fields are unconstrained.
struct DiscoveryQuery {
  std::vector<AssetKind> kinds;
  std::vector<std::string> any_tags;  ///< at least one tag must match
  std::vector<std::string> all_tags;  ///< every tag must match
  std::string owner;
  std::string text;  ///< case-insensitive substring over name+description
  bool latest_only = true;  ///< collapse to the newest version per name
};

/// The AgoraEO asset catalog: the "offer and discover" half of the
/// ecosystem vision (§1).  Assets are stored in an embedded docstore
/// collection with a unique (name, version) key and a multikey tag
/// index, so discovery by tag is index-accelerated exactly like
/// EarthQube's label filters.
class AssetCatalog {
 public:
  AssetCatalog();

  /// Offers a new asset.  The version is assigned automatically (one
  /// greater than the newest existing version of `name`); the returned
  /// asset carries the assigned id and version.
  StatusOr<Asset> Offer(AssetKind kind, const std::string& name,
                        const std::string& owner,
                        const std::string& description,
                        std::vector<std::string> tags,
                        docstore::Document metadata = {},
                        CivilDate registered_on = CivilDate(2022, 9, 5));

  /// Latest version of a named asset.
  StatusOr<Asset> Lookup(const std::string& name) const;

  /// A specific version.
  StatusOr<Asset> Lookup(const std::string& name, int version) const;

  /// All versions of a named asset, oldest first.
  std::vector<Asset> Versions(const std::string& name) const;

  /// Discovery: all assets matching the query, ordered by (name,
  /// version).
  std::vector<Asset> Discover(const DiscoveryQuery& query) const;

  size_t size() const { return collection_.size(); }

  /// Persistence passthroughs.
  const docstore::Collection& collection() const { return collection_; }

 private:
  docstore::Collection collection_;
  int64_t next_id_ = 1;
};

}  // namespace agoraeo::agora

#endif  // AGORAEO_AGORA_CATALOG_H_
