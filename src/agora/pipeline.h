#ifndef AGORAEO_AGORA_PIPELINE_H_
#define AGORAEO_AGORA_PIPELINE_H_

#include <any>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "docstore/value.h"

namespace agoraeo::agora {

/// An executable EO operator: consumes the value flowing through the
/// pipeline plus per-step parameters, produces the next value.  Values
/// are type-erased (std::any); each operator documents its input/output
/// types and validates them at run time.
using OperatorFn = std::function<StatusOr<std::any>(
    const std::any& input, const docstore::Document& params)>;

/// Registry binding algorithm-asset names to executable operators — the
/// "efficiently execute EO-related assets" half of the Agora vision.
/// Typically an asset catalog entry of kind kAlgorithm has a same-named
/// operator registered here.
class OperatorRegistry {
 public:
  /// Registers an operator; AlreadyExists when the name is taken.
  Status Register(const std::string& name, OperatorFn fn,
                  const std::string& signature = "");

  /// Looks an operator up (NotFound when missing).
  StatusOr<const OperatorFn*> Lookup(const std::string& name) const;

  /// Human-readable "input -> output" signature for documentation.
  StatusOr<std::string> Signature(const std::string& name) const;

  std::vector<std::string> OperatorNames() const;
  size_t size() const { return operators_.size(); }

 private:
  struct Entry {
    OperatorFn fn;
    std::string signature;
  };
  std::map<std::string, Entry> operators_;
};

/// A linear composition of operators ("combine").  Each step names a
/// registered operator and carries a parameter document; the output of
/// step i is the input of step i+1.
class Pipeline {
 public:
  struct Step {
    std::string op;
    docstore::Document params;
  };

  Pipeline& Add(std::string op, docstore::Document params = {});

  /// Per-step execution trace.
  struct StepTrace {
    std::string op;
    double millis = 0.0;
  };
  struct ExecutionResult {
    std::any output;
    std::vector<StepTrace> trace;
  };

  /// Runs the pipeline.  Fails fast on the first erroring step, with the
  /// step name prefixed to the error message.
  StatusOr<ExecutionResult> Execute(const OperatorRegistry& registry,
                                    std::any input) const;

  /// Verifies every step's operator exists before running anything.
  Status Validate(const OperatorRegistry& registry) const;

  const std::vector<Step>& steps() const { return steps_; }
  size_t size() const { return steps_.size(); }

 private:
  std::vector<Step> steps_;
};

}  // namespace agoraeo::agora

#endif  // AGORAEO_AGORA_PIPELINE_H_
