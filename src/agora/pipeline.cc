#include "agora/pipeline.h"

#include <chrono>

namespace agoraeo::agora {

Status OperatorRegistry::Register(const std::string& name, OperatorFn fn,
                                  const std::string& signature) {
  if (operators_.count(name) != 0) {
    return Status::AlreadyExists("operator already registered: " + name);
  }
  operators_.emplace(name, Entry{std::move(fn), signature});
  return Status::OK();
}

StatusOr<const OperatorFn*> OperatorRegistry::Lookup(
    const std::string& name) const {
  auto it = operators_.find(name);
  if (it == operators_.end()) {
    return Status::NotFound("no operator named " + name);
  }
  return &it->second.fn;
}

StatusOr<std::string> OperatorRegistry::Signature(
    const std::string& name) const {
  auto it = operators_.find(name);
  if (it == operators_.end()) {
    return Status::NotFound("no operator named " + name);
  }
  return it->second.signature;
}

std::vector<std::string> OperatorRegistry::OperatorNames() const {
  std::vector<std::string> names;
  names.reserve(operators_.size());
  for (const auto& [name, _] : operators_) names.push_back(name);
  return names;
}

Pipeline& Pipeline::Add(std::string op, docstore::Document params) {
  steps_.push_back({std::move(op), std::move(params)});
  return *this;
}

Status Pipeline::Validate(const OperatorRegistry& registry) const {
  if (steps_.empty()) {
    return Status::FailedPrecondition("pipeline has no steps");
  }
  for (const Step& step : steps_) {
    auto op = registry.Lookup(step.op);
    if (!op.ok()) return op.status();
  }
  return Status::OK();
}

StatusOr<Pipeline::ExecutionResult> Pipeline::Execute(
    const OperatorRegistry& registry, std::any input) const {
  AGORAEO_RETURN_IF_ERROR(Validate(registry));
  ExecutionResult result;
  std::any value = std::move(input);
  for (const Step& step : steps_) {
    AGORAEO_ASSIGN_OR_RETURN(const OperatorFn* fn, registry.Lookup(step.op));
    const auto start = std::chrono::steady_clock::now();
    auto next = (*fn)(value, step.params);
    if (!next.ok()) {
      return Status(next.status().code(),
                    "step '" + step.op + "': " + next.status().message());
    }
    const double millis =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    result.trace.push_back({step.op, millis});
    value = std::move(next).value();
  }
  result.output = std::move(value);
  return result;
}

}  // namespace agoraeo::agora
