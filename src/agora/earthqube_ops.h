#ifndef AGORAEO_AGORA_EARTHQUBE_OPS_H_
#define AGORAEO_AGORA_EARTHQUBE_OPS_H_

#include "agora/catalog.h"
#include "agora/pipeline.h"
#include "earthqube/earthqube.h"

namespace agoraeo::agora {

/// Registers EarthQube's capabilities as executable Agora operators and
/// offers the corresponding assets in the catalog — the integration the
/// paper describes ("EarthQube is a browser and search engine within
/// AgoraEO").  `system` must outlive the registry.
///
/// Operators (pipeline value types in brackets):
///  - "earthqube.search"       [ignored -> SearchResponse]
///        params: country?, labels? (array of level-3 names),
///                label_operator? ("some"|"exactly"|"at_least"),
///                min_lat/min_lon/max_lat/max_lon? (rectangle), limit?
///  - "earthqube.cbir"         [SearchResponse -> SearchResponse]
///        params: rank? (which result to use as query, default 0), k?
///  - "earthqube.names"        [SearchResponse -> std::vector<std::string>]
///  - "earthqube.statistics"   [SearchResponse -> std::string (ascii chart)]
Status RegisterEarthQubeOperators(earthqube::EarthQube* system,
                                  OperatorRegistry* registry);

/// Offers the standard AgoraEO demo assets (the BigEarthNet dataset, the
/// MiLaN algorithm + trained model, the EarthQube tool) in `catalog`,
/// with metadata mirroring the paper's numbers.
Status OfferStandardAssets(AssetCatalog* catalog, size_t archive_size,
                           size_t hash_bits);

}  // namespace agoraeo::agora

#endif  // AGORAEO_AGORA_EARTHQUBE_OPS_H_
