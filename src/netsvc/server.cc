#include "netsvc/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.h"

namespace agoraeo::netsvc {

namespace {

/// Reads from `fd` until the terminator "\r\n\r\n" has been seen and
/// Content-Length further bytes are buffered, or the peer closes.
/// Returns (head, body) split, or an error.
Status ReadFullRequest(int fd, std::string* head, std::string* body,
                       size_t max_bytes) {
  std::string buffer;
  size_t head_end = std::string::npos;
  size_t content_length = 0;
  bool have_length = false;

  char chunk[4096];
  while (true) {
    if (head_end == std::string::npos) {
      head_end = buffer.find("\r\n\r\n");
      if (head_end != std::string::npos) {
        *head = buffer.substr(0, head_end);
        // A paranoia-light parse of Content-Length from the raw head.
        auto parsed = ParseRequestHead(*head);
        if (!parsed.ok()) return parsed.status();
        const std::string& cl = parsed->Header("content-length");
        content_length = cl.empty()
                             ? 0
                             : static_cast<size_t>(std::strtoull(
                                   cl.c_str(), nullptr, 10));
        have_length = true;
      }
    }
    if (have_length) {
      const size_t body_have = buffer.size() - (head_end + 4);
      if (body_have >= content_length) {
        *body = buffer.substr(head_end + 4, content_length);
        return Status::OK();
      }
    }
    if (buffer.size() > max_bytes) {
      return Status::InvalidArgument("request exceeds size limit");
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      return Status::IOError("peer closed before complete request");
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }
}

Status SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

/// The shared state behind a deferred response: the connection fd and
/// the server whose counters the completion must update.  Exactly one
/// Send wins; dropping every Responder copy without sending answers 500
/// from the destructor.
struct HttpServer::Responder::Pending {
  int fd = -1;
  HttpServer* server = nullptr;
  std::atomic<bool> sent{false};
  /// Route metrics carried across the deferral so the latency
  /// histogram covers the parked time too.
  obs::Counter* requests_metric = nullptr;
  obs::Histogram* latency_metric = nullptr;
  obs::Gauge* inflight_gauge = nullptr;
  uint64_t start_ns = 0;

  void Send(HttpResponse response) {
    if (sent.exchange(true)) return;
    if (requests_metric != nullptr) requests_metric->Increment();
    if (latency_metric != nullptr) {
      latency_metric->Record(obs::NowNanos() - start_ns);
    }
    if (inflight_gauge != nullptr) inflight_gauge->Add(-1);
    // Count before sending: a client that has seen the response must
    // be able to observe the incremented counter.
    server->requests_served_.fetch_add(1);
    (void)SendAll(fd, SerializeResponse(response));
    ::close(fd);
    server->DeferredFinished();
  }

  ~Pending() {
    if (!sent.load()) {
      Send(HttpResponse::InternalError("handler dropped the request"));
    }
  }
};

void HttpServer::Responder::Send(HttpResponse response) const {
  pending_->Send(std::move(response));
}

HttpServer::HttpServer(size_t num_workers)
    : num_workers_(std::max<size_t>(1, num_workers)) {}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Route(const std::string& method, const std::string& path,
                       Handler handler) {
  RouteEntry entry;
  entry.method = method;
  if (path.size() >= 2 && path.compare(path.size() - 2, 2, "/*") == 0) {
    entry.path = path.substr(0, path.size() - 1);  // keep trailing '/'
    entry.prefix = true;
  } else {
    entry.path = path;
  }
  entry.handler = std::move(handler);
  routes_.push_back(std::move(entry));
}

void HttpServer::RouteAsync(const std::string& method, const std::string& path,
                            AsyncHandler handler) {
  RouteEntry entry;
  entry.method = method;
  if (path.size() >= 2 && path.compare(path.size() - 2, 2, "/*") == 0) {
    entry.path = path.substr(0, path.size() - 1);  // keep trailing '/'
    entry.prefix = true;
  } else {
    entry.path = path;
  }
  entry.async_handler = std::move(handler);
  routes_.push_back(std::move(entry));
}

Status HttpServer::Start(uint16_t port) {
  if (running_.load()) return Status::FailedPrecondition("already running");

  const int sock = ::socket(AF_INET, SOCK_STREAM, 0);
  if (sock < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(sock, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(sock, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(sock);
    return Status::IOError(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(sock, 64) < 0) {
    ::close(sock);
    return Status::IOError(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(sock, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }

  if (obs_ != nullptr) {
    for (RouteEntry& route : routes_) {
      const std::string label =
          route.method + " " + route.path + (route.prefix ? "*" : "");
      route.requests_metric = obs_->CounterOrNull(
          obs::LabeledName("agoraeo_http_requests_total", "route", label));
      route.latency_metric = obs_->HistogramOrNull(
          obs::LabeledName("agoraeo_http_request_ns", "route", label));
    }
    unmatched_requests_ = obs_->CounterOrNull(obs::LabeledName(
        "agoraeo_http_requests_total", "route", "unmatched"));
    inflight_gauge_ = obs_->GaugeOrNull("agoraeo_http_inflight_requests");
  }

  listen_fd_.store(sock);
  pool_ = std::make_unique<ThreadPool>(num_workers_);
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  AGORAEO_LOG(kInfo) << "EarthQube back-end listening on 127.0.0.1:" << port_;
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) return;
  // Retire the socket: shutdown() unblocks a blocked accept(), but the
  // fd is only close()d after the accept thread joins — closing earlier
  // would let the kernel reuse the fd number while AcceptLoop may still
  // hold a loaded copy, making it accept() on a foreign socket.
  const int sock = listen_fd_.exchange(-1);
  if (sock >= 0) ::shutdown(sock, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (sock >= 0) ::close(sock);
  if (pool_ != nullptr) {
    pool_->Wait();
    pool_.reset();
  }
  // Deferred responses complete on foreign threads (engine workers);
  // wait them out so no completion touches a destroyed server.
  std::unique_lock<std::mutex> lock(deferred_mu_);
  deferred_cv_.wait(lock, [&] { return deferred_in_flight_ == 0; });
}

void HttpServer::DeferredStarted() {
  std::lock_guard<std::mutex> lock(deferred_mu_);
  ++deferred_in_flight_;
}

void HttpServer::DeferredFinished() {
  // Notify under the lock: Stop() may destroy this server the moment
  // the count reaches zero, so the notify must complete before the
  // waiter can observe it.
  std::lock_guard<std::mutex> lock(deferred_mu_);
  --deferred_in_flight_;
  deferred_cv_.notify_all();
}

void HttpServer::AcceptLoop() {
  while (running_.load()) {
    const int listen_fd = listen_fd_.load();
    if (listen_fd < 0) break;  // retired by Stop()
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listening socket closed by Stop()
    }
    pool_->Submit([this, fd] { HandleConnection(fd); });
  }
}

void HttpServer::HandleConnection(int fd) {
  const uint64_t start_ns = inflight_gauge_ != nullptr ||
                                    unmatched_requests_ != nullptr
                                ? obs::NowNanos()
                                : 0;
  if (inflight_gauge_ != nullptr) inflight_gauge_->Add(1);
  std::string head, body;
  const Status read = ReadFullRequest(fd, &head, &body, kMaxRequestBytes);
  HttpResponse response;
  const RouteEntry* matched = nullptr;
  if (!read.ok()) {
    response = HttpResponse::BadRequest(read.message());
  } else {
    auto request = ParseRequestHead(head);
    if (!request.ok()) {
      response = HttpResponse::BadRequest(request.status().message());
    } else {
      request->body = std::move(body);
      HttpResponse route_error;
      const RouteEntry* route = FindRoute(*request, &route_error);
      if (route == nullptr) {
        response = route_error;
      } else if (route->async_handler) {
        // Deferred path: hand the connection to a Responder and release
        // this pool worker.  The handler (or whichever thread it passes
        // the Responder to) completes the response; the Pending state's
        // destructor guarantees the client always hears back.
        DeferredStarted();
        auto pending = std::make_shared<Responder::Pending>();
        pending->fd = fd;
        pending->server = this;
        pending->requests_metric = route->requests_metric;
        pending->latency_metric = route->latency_metric;
        pending->inflight_gauge = inflight_gauge_;
        pending->start_ns = start_ns != 0 ? start_ns : obs::NowNanos();
        Responder responder{std::move(pending)};
        try {
          route->async_handler(*request, responder);
        } catch (const std::exception& e) {
          responder.Send(HttpResponse::InternalError(e.what()));
        }
        return;  // the Responder owns the fd now
      } else {
        matched = route;
        try {
          response = route->handler(*request);
        } catch (const std::exception& e) {
          response = HttpResponse::InternalError(e.what());
        }
      }
    }
  }
  if (matched != nullptr) {
    if (matched->requests_metric != nullptr) {
      matched->requests_metric->Increment();
    }
    if (matched->latency_metric != nullptr) {
      matched->latency_metric->Record(obs::NowNanos() - start_ns);
    }
  } else if (unmatched_requests_ != nullptr) {
    unmatched_requests_->Increment();
  }
  if (inflight_gauge_ != nullptr) inflight_gauge_->Add(-1);
  // Count before sending: a client that has seen the response must be
  // able to observe the incremented counter.
  requests_served_.fetch_add(1);
  (void)SendAll(fd, SerializeResponse(response));
  ::close(fd);
}

const HttpServer::RouteEntry* HttpServer::FindRoute(
    const HttpRequest& request, HttpResponse* error) const {
  const RouteEntry* best = nullptr;
  bool path_matched_any_method = false;
  for (const RouteEntry& route : routes_) {
    const bool path_matches =
        route.prefix ? request.path.rfind(route.path, 0) == 0 &&
                           request.path.size() > route.path.size()
                     : request.path == route.path;
    if (!path_matches) continue;
    path_matched_any_method = true;
    if (route.method != request.method) continue;
    // Exact routes beat prefix routes; longer prefixes beat shorter.
    if (best == nullptr ||
        (best->prefix &&
         (!route.prefix || route.path.size() > best->path.size()))) {
      best = &route;
    }
  }
  if (best == nullptr) {
    *error = path_matched_any_method
                 ? HttpResponse::MethodNotAllowed("method not allowed for " +
                                                  request.path)
                 : HttpResponse::NotFound("no route for " + request.path);
  }
  return best;
}

}  // namespace agoraeo::netsvc
