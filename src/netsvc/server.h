#ifndef AGORAEO_NETSVC_SERVER_H_
#define AGORAEO_NETSVC_SERVER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "netsvc/http.h"

namespace agoraeo::netsvc {

/// A loopback HTTP server: the transport of EarthQube's back-end tier
/// (paper Section 3.2's three-tier architecture).  Listens on
/// 127.0.0.1, accepts on a background thread, and dispatches each
/// connection to a worker pool.  One request per connection
/// (`Connection: close`), which keeps the framing trivial and is ample
/// for the demo's interactive request rates.
///
/// Routes are matched by (method, path): exact paths first, then the
/// longest registered prefix route (a path ending in "/*").  An
/// unmatched request gets 404; a matched path with the wrong method
/// gets 405.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// `num_workers` sizes the connection-handling pool.
  explicit HttpServer(size_t num_workers = 4);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers a handler.  A `path` ending in "/*" is a prefix route
  /// (e.g. "/api/patch/*" matches "/api/patch/S2A_...").  Must be called
  /// before Start.
  void Route(const std::string& method, const std::string& path,
             Handler handler);

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port — query `port()`)
  /// and starts accepting.
  Status Start(uint16_t port = 0);

  /// Stops accepting, drains in-flight connections and joins.
  /// Idempotent.
  void Stop();

  bool is_running() const { return running_.load(); }
  uint16_t port() const { return port_; }
  size_t requests_served() const { return requests_served_.load(); }

  /// Maximum accepted request size (head + body), a guard against
  /// malformed or hostile clients.
  static constexpr size_t kMaxRequestBytes = 64 * 1024 * 1024;

 private:
  struct RouteEntry {
    std::string method;
    std::string path;    // without the trailing '*' for prefix routes
    bool prefix = false;
    Handler handler;
  };

  void AcceptLoop();
  void HandleConnection(int fd);
  HttpResponse Dispatch(const HttpRequest& request) const;

  std::vector<RouteEntry> routes_;
  /// Atomic: Stop() retires the socket concurrently with AcceptLoop()'s
  /// reads.
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<size_t> requests_served_{0};
  std::thread accept_thread_;
  std::unique_ptr<ThreadPool> pool_;
  size_t num_workers_;
};

}  // namespace agoraeo::netsvc

#endif  // AGORAEO_NETSVC_SERVER_H_
