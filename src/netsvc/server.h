#ifndef AGORAEO_NETSVC_SERVER_H_
#define AGORAEO_NETSVC_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "netsvc/http.h"
#include "obs/observability.h"

namespace agoraeo::netsvc {

/// A loopback HTTP server: the transport of EarthQube's back-end tier
/// (paper Section 3.2's three-tier architecture).  Listens on
/// 127.0.0.1, accepts on a background thread, and dispatches each
/// connection to a worker pool.  One request per connection
/// (`Connection: close`), which keeps the framing trivial and is ample
/// for the demo's interactive request rates.
///
/// Routes are matched by (method, path): exact paths first, then the
/// longest registered prefix route (a path ending in "/*").  An
/// unmatched request gets 404; a matched path with the wrong method
/// gets 405.
///
/// Handlers come in two flavours.  A synchronous Handler returns the
/// response and occupies a pool worker for the request's whole
/// lifetime.  An AsyncHandler receives a Responder and may return
/// before responding — the worker is released and the connection is
/// parked until some other thread (e.g. an execution-engine worker)
/// completes the Responder, so in-flight queries no longer pin one
/// thread each.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// Completes one deferred response.  Copyable (hand it to callbacks
  /// freely); the underlying connection accepts exactly one Send —
  /// later calls are no-ops.  If every copy is dropped without
  /// Send, a 500 is sent so the client is never left hanging.
  class Responder {
   public:
    void Send(HttpResponse response) const;

   private:
    friend class HttpServer;
    struct Pending;
    explicit Responder(std::shared_ptr<Pending> pending)
        : pending_(std::move(pending)) {}
    std::shared_ptr<Pending> pending_;
  };

  using AsyncHandler = std::function<void(const HttpRequest&, Responder)>;

  /// `num_workers` sizes the connection-handling pool.
  explicit HttpServer(size_t num_workers = 4);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers a handler.  A `path` ending in "/*" is a prefix route
  /// (e.g. "/api/patch/*" matches "/api/patch/S2A_...").  Must be called
  /// before Start.
  void Route(const std::string& method, const std::string& path,
             Handler handler);

  /// Registers a deferred-response handler (same matching rules).
  void RouteAsync(const std::string& method, const std::string& path,
                  AsyncHandler handler);

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port — query `port()`)
  /// and starts accepting.
  Status Start(uint16_t port = 0);

  /// Stops accepting, drains in-flight connections and joins.
  /// Idempotent.
  void Stop();

  bool is_running() const { return running_.load(); }
  uint16_t port() const { return port_; }
  size_t requests_served() const { return requests_served_.load(); }

  /// Attaches an observability bundle: Start() then registers one
  /// request counter + latency histogram per route (label
  /// `route="METHOD /path"`), a counter for unroutable requests, and an
  /// in-flight connection gauge.  Must be called before Start; `obs`
  /// must outlive the server.  Null (the default) instruments nothing.
  void AttachObservability(obs::Observability* obs) { obs_ = obs; }

  /// Maximum accepted request size (head + body), a guard against
  /// malformed or hostile clients.
  static constexpr size_t kMaxRequestBytes = 64 * 1024 * 1024;

 private:
  struct RouteEntry {
    std::string method;
    std::string path;    // without the trailing '*' for prefix routes
    bool prefix = false;
    Handler handler;
    AsyncHandler async_handler;  // set for RouteAsync registrations
    /// Filled by Start() when observability is attached.
    obs::Counter* requests_metric = nullptr;
    obs::Histogram* latency_metric = nullptr;
  };

  void AcceptLoop();
  void HandleConnection(int fd);
  /// Returns the best route for a request, or null with `error` filled
  /// (404/405).
  const RouteEntry* FindRoute(const HttpRequest& request,
                              HttpResponse* error) const;
  /// Deferred-response bookkeeping (Responder completions).
  void DeferredStarted();
  void DeferredFinished();

  std::vector<RouteEntry> routes_;
  /// Atomic: Stop() retires the socket concurrently with AcceptLoop()'s
  /// reads.
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<size_t> requests_served_{0};
  std::thread accept_thread_;
  std::unique_ptr<ThreadPool> pool_;
  size_t num_workers_;
  /// Parked connections awaiting a Responder; Stop() waits for zero so
  /// no completion can touch a dead server.
  std::mutex deferred_mu_;
  std::condition_variable deferred_cv_;
  size_t deferred_in_flight_ = 0;

  obs::Observability* obs_ = nullptr;
  obs::Counter* unmatched_requests_ = nullptr;
  obs::Gauge* inflight_gauge_ = nullptr;
};

}  // namespace agoraeo::netsvc

#endif  // AGORAEO_NETSVC_SERVER_H_
